#include "check/serial_checker.hh"

#include <algorithm>
#include <cstdio>

namespace tcc {

SerialChecker::Result
SerialChecker::verify() const
{
    Result res;
    std::vector<const Record *> order;
    order.reserve(log.size());
    for (const auto &r : log)
        order.push_back(&r);
    std::sort(order.begin(), order.end(),
              [](const Record *a, const Record *b) {
                  return a->tid < b->tid;
              });

    // TIDs must be unique (the vendor sequence is gap-free but some
    // TIDs are consumed by aborted attempts, so gaps are fine here).
    for (std::size_t i = 1; i < order.size(); ++i) {
        if (order[i]->tid == order[i - 1]->tid) {
            res.ok = false;
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "duplicate TID %llu committed twice",
                          (unsigned long long)order[i]->tid);
            res.error = buf;
            return res;
        }
    }

    std::unordered_map<Addr, std::uint64_t> model = initial;
    for (const Record *r : order) {
        for (const auto &[addr, seen] : r->reads) {
            auto it = model.find(addr);
            const std::uint64_t expect =
                it == model.end() ? 0 : it->second;
            if (seen != expect) {
                res.ok = false;
                char buf[160];
                std::snprintf(
                    buf, sizeof(buf),
                    "TID %llu (proc %u) read %llx=%llu but serial "
                    "replay expects %llu",
                    (unsigned long long)r->tid, r->proc,
                    (unsigned long long)addr,
                    (unsigned long long)seen,
                    (unsigned long long)expect);
                res.error = buf;
                return res;
            }
        }
        for (const auto &[addr, value] : r->writes)
            model[addr] = value;
        ++res.txnsChecked;
    }
    return res;
}

std::unordered_map<Addr, std::uint64_t>
SerialChecker::replayFinalState() const
{
    std::vector<const Record *> order;
    order.reserve(log.size());
    for (const auto &r : log)
        order.push_back(&r);
    std::sort(order.begin(), order.end(),
              [](const Record *a, const Record *b) {
                  return a->tid < b->tid;
              });
    std::unordered_map<Addr, std::uint64_t> model = initial;
    for (const Record *r : order)
        for (const auto &[addr, value] : r->writes)
            model[addr] = value;
    return model;
}

} // namespace tcc
