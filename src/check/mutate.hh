/**
 * @file
 * Deliberate protocol mutations for checker efficacy tests.
 *
 * A checker that has never caught a bug proves nothing. When the
 * library is built with -DTCC_MUTATE (the default), tests can arm
 * exactly one runtime-selected mutation that breaks a protocol rule
 * the invariant checker is supposed to enforce, then assert the
 * checker reports it with a diagnostic naming the invariant and TID
 * (tests/test_invariants.cc). With no mutation armed - the only state
 * any normal run is ever in - every hook site reduces to one load and
 * a predictably-false compare, and simulated behaviour is bit-identical
 * to a build without TCC_MUTATE.
 *
 * The hooks are deliberately NOT thread-safe to arm: tests arm a
 * mutation before constructing Systems and disarm after; concurrent
 * sweeps only ever observe Kind::None.
 */

#ifndef TCC_CHECK_MUTATE_HH
#define TCC_CHECK_MUTATE_HH

#include <cstdint>

namespace tcc::mutate {

enum class Kind : std::uint8_t {
    None,
    /** Directory::advance() consumes one extra (unretired) TID from
     *  the skip window, so a TID is served-or-skipped nowhere. */
    SkipVectorOverConsume,
    /** Directory applies a commit without waiting for all marks. */
    CommitBeforeMarks,
    /** Directory::advance() steps the NSTID backwards once. */
    NstidRewind,
    /** Directory silently drops Skip messages. */
    DropSkip,
    /** A violated, unannounced transaction forgets its retained TID. */
    TidDropOnViolation,
    NumKinds,
};

/** Diagnostic name of a mutation. */
constexpr const char *
name(Kind k)
{
    switch (k) {
      case Kind::None: return "none";
      case Kind::SkipVectorOverConsume: return "skip-vector-over-consume";
      case Kind::CommitBeforeMarks: return "commit-before-marks";
      case Kind::NstidRewind: return "nstid-rewind";
      case Kind::DropSkip: return "drop-skip";
      case Kind::TidDropOnViolation: return "tid-drop-on-violation";
      default: return "?";
    }
}

#ifdef TCC_MUTATE

namespace detail {
inline Kind gActive = Kind::None;
} // namespace detail

/** True when mutation support is compiled in. */
constexpr bool compiledIn() { return true; }

/** The armed mutation (Kind::None outside mutation tests). */
inline Kind active() { return detail::gActive; }

/** Arm @p k (tests only; arm before building Systems). */
inline void set(Kind k) { detail::gActive = k; }

/** Hook-site test: is mutation @p k armed? */
inline bool is(Kind k) { return detail::gActive == k; }

/** RAII arm/disarm for tests. */
class Scoped
{
  public:
    explicit Scoped(Kind k) { set(k); }
    ~Scoped() { set(Kind::None); }
    Scoped(const Scoped &) = delete;
    Scoped &operator=(const Scoped &) = delete;
};

#else // !TCC_MUTATE

constexpr bool compiledIn() { return false; }
constexpr Kind active() { return Kind::None; }
inline void set(Kind) {}
constexpr bool is(Kind) { return false; }

class Scoped
{
  public:
    explicit Scoped(Kind) {}
};

#endif // TCC_MUTATE

} // namespace tcc::mutate

#endif // TCC_CHECK_MUTATE_HH
