/**
 * @file
 * Serializability checker. Records every committed transaction's read
 * and write logs and verifies, after the run, that the execution is
 * equivalent to executing the committed transactions serially in TID
 * order: each transaction's reads must equal the state produced by all
 * lower-TID transactions' writes.
 *
 * This is the strongest end-to-end correctness oracle for the
 * protocol: any missed conflict (lost invalidation, wrong violation
 * rule, commit-order bug) shows up as a read-value mismatch.
 */

#ifndef TCC_CHECK_SERIAL_CHECKER_HH
#define TCC_CHECK_SERIAL_CHECKER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace tcc {

/** Collects commit logs and replays them in TID order. */
class SerialChecker
{
  public:
    /** Pre-run initialization value (non-transactional setup state). */
    void
    setInitial(Addr addr, std::uint64_t value)
    {
        initial[addr] = value;
    }

    /** Record one committed transaction (called from the commit hook). */
    void
    record(Tid tid, NodeId proc,
           const std::vector<std::pair<Addr, std::uint64_t>> &reads,
           const std::vector<std::pair<Addr, std::uint64_t>> &writes)
    {
        log.push_back(Record{tid, proc, reads, writes});
    }

    struct Result {
        bool ok = true;
        std::string error;
        std::uint64_t txnsChecked = 0;
    };

    /** Replay all recorded commits in TID order and check every read. */
    Result verify() const;

    /** Final memory state implied by serial replay (for comparison
     *  against the simulator's GlobalStore). */
    std::unordered_map<Addr, std::uint64_t> replayFinalState() const;

    std::size_t numRecords() const { return log.size(); }

  private:
    struct Record {
        Tid tid;
        NodeId proc;
        std::vector<std::pair<Addr, std::uint64_t>> reads;
        std::vector<std::pair<Addr, std::uint64_t>> writes;
    };

    std::vector<Record> log;
    std::unordered_map<Addr, std::uint64_t> initial;
};

} // namespace tcc

#endif // TCC_CHECK_SERIAL_CHECKER_HH
