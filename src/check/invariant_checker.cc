#include "check/invariant_checker.hh"

#include <cstdarg>
#include <cstdio>

namespace tcc {

InvariantChecker::InvariantChecker(std::uint32_t num_nodes,
                                   const TraceRecorder *tracer_,
                                   std::size_t history)
    : dirs(num_nodes), tracer(tracer_), historyLen(history),
      rangeCount(num_nodes)
{
    for (auto &d : dirs)
        d.retired.reserve(64);
}

void
InvariantChecker::fail(const char *invariant, NodeId node, Tid tid,
                       const char *fmt, ...)
{
    ++verdict.failures;
    if (!verdict.ok)
        return; // first failure wins
    verdict.ok = false;

    char detail[512];
    std::va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(detail, sizeof(detail), fmt, ap);
    va_end(ap);

    char head[160];
    if (tid == kInvalidTid) {
        std::snprintf(head, sizeof(head),
                      "invariant '%s' violated (node %u): ", invariant,
                      node);
    } else {
        std::snprintf(head, sizeof(head),
                      "invariant '%s' violated (node %u, tid %llu): ",
                      invariant, node, (unsigned long long)tid);
    }
    verdict.error = std::string(head) + detail + traceTail();
}

std::string
InvariantChecker::traceTail() const
{
    if (tracer == nullptr || tracer->size() == 0 || historyLen == 0)
        return {};
    std::string out = "\n  last protocol events:";
    const std::size_t n = tracer->size();
    const std::size_t first = n > historyLen ? n - historyLen : 0;
    char buf[160];
    for (std::size_t i = first; i < n; ++i) {
        const TraceEvent &e = tracer->at(i);
        std::snprintf(buf, sizeof(buf),
                      "\n    [%llu] %s node=%u tid=%lld a0=%llx a1=%llx",
                      (unsigned long long)e.tick,
                      traceEventKindName(e.kind), e.node,
                      e.tid == kInvalidTid ? -1LL
                                           : (long long)e.tid,
                      (unsigned long long)e.arg0,
                      (unsigned long long)e.arg1);
        out += buf;
    }
    return out;
}

bool
InvariantChecker::onRetire(NodeId dir, Tid t, Retire how)
{
    ++verdict.checks;
    DirState &d = dirs.at(dir);
    const char *how_name = how == Retire::Skip     ? "skip"
                           : how == Retire::Commit ? "commit"
                                                   : "abort";
    if (t < d.nstid) {
        fail(invariant::kSkipOrService, dir, t,
             "%s retires TID %llu already passed by NSTID %llu",
             how_name, (unsigned long long)t,
             (unsigned long long)d.nstid);
        return false;
    }
    if (!d.retired.insert(t)) {
        fail(invariant::kSkipOrService, dir, t,
             "TID %llu retired twice (second cause: %s)",
             (unsigned long long)t, how_name);
        return false;
    }
    ++d.retireCount;
    return true;
}

void
InvariantChecker::onNstidAdvance(NodeId dir, Tid from, Tid to)
{
    ++verdict.checks;
    DirState &d = dirs.at(dir);
    if (to < from) {
        fail(invariant::kNstidMonotonic, dir, to,
             "NSTID stepped backwards from %llu to %llu",
             (unsigned long long)from, (unsigned long long)to);
        d.nstid = from;
        return;
    }
    for (Tid t = from; t < to; ++t) {
        if (d.retired.erase(t) == 0) {
            fail(invariant::kSkipOrService, dir, t,
                 "NSTID advanced %llu -> %llu past TID %llu, which "
                 "was never serviced or skipped here",
                 (unsigned long long)from, (unsigned long long)to,
                 (unsigned long long)t);
        }
    }
    d.nstid = to;
}

void
InvariantChecker::onCommitApply(NodeId dir, Tid tid,
                                std::uint32_t marks_received,
                                std::uint32_t expected_marks,
                                bool commit_seen, bool partial)
{
    ++verdict.checks;
    DirState &d = dirs.at(dir);
    if (!commit_seen) {
        fail(invariant::kCommitBeforeMarks, dir, tid,
             "commit data applied before any Commit message arrived");
        return;
    }
    if (marks_received != expected_marks) {
        fail(invariant::kCommitBeforeMarks, dir, tid,
             "commit applied with %u of %u announced marks validated",
             marks_received, expected_marks);
        return;
    }
    // Full commits at one directory happen in strictly increasing TID
    // order; solo-mode partial batches may precede their own full
    // commit under the same TID but never follow one.
    if (d.lastCommitTid != kInvalidTid && tid <= d.lastCommitTid) {
        fail(invariant::kCommitTidOrder, dir, tid,
             "%scommit for TID %llu applied after TID %llu already "
             "committed",
             partial ? "partial " : "", (unsigned long long)tid,
             (unsigned long long)d.lastCommitTid);
        return;
    }
    if (!partial)
        d.lastCommitTid = tid;
}

void
InvariantChecker::onViolation(NodeId proc, Tid tid_before,
                              bool announced, Tid tid_after)
{
    ++verdict.checks;
    if (announced) {
        if (tid_after != kInvalidTid) {
            fail(invariant::kTidRetained, proc, tid_before,
                 "announced TID %llu must be released (aborted) on "
                 "violation, but the retry still holds %llu",
                 (unsigned long long)tid_before,
                 (unsigned long long)tid_after);
        }
        return;
    }
    if (tid_before != kInvalidTid && tid_after != tid_before) {
        fail(invariant::kTidRetained, proc, tid_before,
             "unannounced TID %llu dropped on violation (retry holds "
             "%lld); an acquired TID must be retained until committed "
             "or aborted",
             (unsigned long long)tid_before,
             tid_after == kInvalidTid ? -1LL : (long long)tid_after);
    }
}

void
InvariantChecker::finalize(Tid issued, bool completed,
                           bool hit_tick_limit)
{
    ++verdict.checks;
    if (failed())
        return;
    const NodeId range_end = rangeFirst + rangeCount;
    if (completed) {
        for (NodeId n = rangeFirst; n < range_end; ++n) {
            const DirState &d = dirs[n];
            if (d.nstid != issued || d.retireCount != issued) {
                fail(invariant::kServiceComplete, n, d.nstid,
                     "run completed but directory %u retired %llu of "
                     "%llu issued TIDs (NSTID %llu)",
                     n, (unsigned long long)d.retireCount,
                     (unsigned long long)issued,
                     (unsigned long long)d.nstid);
                return;
            }
        }
        return;
    }
    if (hit_tick_limit)
        return; // cut short by max_ticks: incompleteness is expected
    // The event queue drained with work left: the protocol stalled.
    for (NodeId n = rangeFirst; n < range_end; ++n) {
        const DirState &d = dirs[n];
        if (d.nstid < issued) {
            fail(invariant::kServiceComplete, n, d.nstid,
                 "protocol stalled: directory %u stuck at NSTID %llu "
                 "with %llu TIDs issued - TID %llu was never serviced "
                 "or skipped here",
                 n, (unsigned long long)d.nstid,
                 (unsigned long long)issued,
                 (unsigned long long)d.nstid);
            return;
        }
    }
    fail(invariant::kServiceComplete, 0, kInvalidTid,
         "protocol stalled: event queue drained before the sources "
         "finished, with every NSTID caught up (processor-side stall)");
}

} // namespace tcc
