/**
 * @file
 * Online protocol-invariant checker for Scalable TCC.
 *
 * The paper's livelock- and serializability-freedom argument rests on
 * directory-side ordering invariants it states but a simulator can
 * silently erode. This observer is wired into Directory and
 * TccProcessor through direct hooks (the same attachment pattern as
 * the TraceRecorder) and asserts, while the run executes:
 *
 *  1. nstid-monotonic       - a directory's Now-Serving TID never
 *                             decreases;
 *  2. skip-or-service       - every TID a directory's NSTID passes was
 *                             retired there exactly once (serviced
 *                             commit, Skip, or Abort) - no gaps, no
 *                             double retirement;
 *  3. commit-before-marks   - commit data is never applied before the
 *                             announced number of marks arrived and
 *                             the Commit itself was seen;
 *  4. tid-retained-on-violation - a violated transaction that has not
 *                             announced its TID (sent Skips) retains
 *                             it for the retry; one that has announced
 *                             releases it (via Abort);
 *  5. commit-tid-order      - the TIDs of commits applied at one
 *                             directory strictly increase (solo-mode
 *                             partial batches may repeat the TID);
 *  6. tid-service-complete  - at end of run, every issued TID was
 *                             retired at every directory and each
 *                             NSTID reached the vendor's next TID; if
 *                             the event queue drained without the run
 *                             completing, the protocol stalled and the
 *                             lowest unserved TID per directory is
 *                             reported.
 *
 * A failure is recorded (first failure wins) rather than panicking:
 * System::run() halts the simulation at the next event boundary and
 * reports the verdict in RunResult::invariants, so sweeps and the
 * TCC_MUTATE efficacy tests can assert on the diagnostic. The report
 * names the invariant, the offending TID and directory/processor, and
 * appends the last N protocol trace events when tracing is enabled.
 *
 * The checker is passive: it never schedules events or touches
 * simulated state, so armed-but-clean runs keep bit-identical
 * fingerprints.
 */

#ifndef TCC_CHECK_INVARIANT_CHECKER_HH
#define TCC_CHECK_INVARIANT_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_map.hh"
#include "common/types.hh"
#include "obs/trace_recorder.hh"

namespace tcc {

class InvariantChecker
{
  public:
    /** How a directory retired a TID. */
    enum class Retire : std::uint8_t { Skip, Commit, Abort };

    struct Result {
        bool ok = true;
        /** First failure: invariant name, TID, node, trace tail. */
        std::string error;
        /** Total invariant failures observed (first is reported). */
        std::uint64_t failures = 0;
        /** Hook invocations (sanity: the checker actually ran). */
        std::uint64_t checks = 0;
    };

    /**
     * @param num_nodes  directories/processors in the system
     * @param tracer     protocol event ring for failure context
     *                   (may be null)
     * @param history    trace events quoted in a failure report
     */
    InvariantChecker(std::uint32_t num_nodes,
                     const TraceRecorder *tracer,
                     std::size_t history = 8);

    /**
     * Restrict the finalize() completeness pass to directories
     * [first, first + count). PDES arms one checker per domain: the
     * online hooks only ever see that domain's directories, and the
     * end-of-run sweep must not report the other domains' (locally
     * empty) states as stalls. Default: all nodes.
     */
    void
    setNodeRange(NodeId first, std::uint32_t count)
    {
        rangeFirst = first;
        rangeCount = count;
    }

    // --- directory-side hooks ---------------------------------------
    /**
     * TID @p t retired at @p dir. Returns false when the retirement
     * itself violates an invariant (already retired / below NSTID);
     * the caller must then drop the retirement instead of recording it
     * (the failure has been captured here).
     */
    bool onRetire(NodeId dir, Tid t, Retire how);

    /** NSTID moved from @p from to @p to at @p dir. */
    void onNstidAdvance(NodeId dir, Tid from, Tid to);

    /** Commit data for @p tid is being applied at @p dir. */
    void onCommitApply(NodeId dir, Tid tid, std::uint32_t marks_received,
                       std::uint32_t expected_marks, bool commit_seen,
                       bool partial);

    // --- processor-side hooks ---------------------------------------
    /** Processor @p proc violated holding @p tid_before; @p announced
     *  is whether Skips were multicast; @p tid_after is the TID kept
     *  for the retry. */
    void onViolation(NodeId proc, Tid tid_before, bool announced,
                     Tid tid_after);

    // --- end of run --------------------------------------------------
    /**
     * Completeness pass. @p issued is the vendor's total TID count,
     * @p completed whether every processor drained its source, and
     * @p hit_tick_limit whether the run stopped on max_ticks (in which
     * case incompleteness is expected and not reported).
     */
    void finalize(Tid issued, bool completed, bool hit_tick_limit);

    /** True once any invariant failed (System::run() halts on this). */
    bool failed() const { return !verdict.ok; }

    const Result &result() const { return verdict; }

  private:
    struct DirState {
        Tid nstid = 0;
        /** TIDs retired but not yet passed by the NSTID. */
        FlatSet<Tid> retired;
        std::uint64_t retireCount = 0;
        /** TID of the last full commit applied here. */
        Tid lastCommitTid = kInvalidTid;
    };

    /** Record the first failure: "<invariant>: <detail>" + trace tail. */
    void fail(const char *invariant, NodeId node, Tid tid,
              const char *fmt, ...)
#ifdef __GNUC__
        __attribute__((format(printf, 5, 6)))
#endif
        ;

    std::string traceTail() const;

    std::vector<DirState> dirs;
    const TraceRecorder *tracer;
    std::size_t historyLen;
    /** finalize() scans directories [rangeFirst, rangeFirst+rangeCount). */
    NodeId rangeFirst = 0;
    std::uint32_t rangeCount;
    Result verdict;
};

/** Invariant names (stable strings used in diagnostics and tests). */
namespace invariant {
inline constexpr const char *kNstidMonotonic = "nstid-monotonic";
inline constexpr const char *kSkipOrService = "skip-or-service";
inline constexpr const char *kCommitBeforeMarks = "commit-before-marks";
inline constexpr const char *kTidRetained = "tid-retained-on-violation";
inline constexpr const char *kCommitTidOrder = "commit-tid-order";
inline constexpr const char *kServiceComplete = "tid-service-complete";
} // namespace invariant

} // namespace tcc

#endif // TCC_CHECK_INVARIANT_CHECKER_HH
