#include "directory/directory.hh"

#include <algorithm>

#include "check/mutate.hh"
#include "common/log.hh"

namespace tcc {

Directory::Directory(NodeId node, std::uint32_t num_nodes,
                     EventQueue &eq, Network &net,
                     const DirectoryConfig &cfg, Arena *arena_)
    : nodeId(node), numNodes(num_nodes), eventq(eq), network(net),
      config(cfg), arena(arena_), skipWindow(arena_), entries(arena_),
      deferredProbes(ArenaAllocator<Message>(arena_)),
      stalledLoads(ArenaAllocator<Message>(arena_)),
      mcastBuf(ArenaAllocator<NodeId>(arena_)), lruIndex(arena_),
      msgPool(arena_)
{
    // Size the entry map up front: with a directory cache configured
    // its LRU bounds the hot set; otherwise start with a generous
    // default so steady-state inserts never rehash.
    entries.reserve(config.dirCacheEntries != 0 ? config.dirCacheEntries
                                                : 1024);
}

Directory::Entry &
Directory::entry(Addr lineAddr)
{
    auto it = entries.find(lineAddr);
    if (it == entries.end()) {
        it = entries.emplace(lineAddr, Entry{}).first;
        it->second.sharers = NodeSet(numNodes, arena);
    }
    return it->second;
}

bool
Directory::hasRemoteSharer(const Entry &e) const
{
    // Word-level bitmap test: any sharer bit besides our own.
    return e.sharers.anyBesides(nodeId);
}

void
Directory::noteSharerChange(Entry &e, bool had_remote_before)
{
    const bool now = hasRemoteSharer(e);
    if (now && !had_remote_before)
        ++remoteSharerEntries;
    else if (!now && had_remote_before)
        --remoteSharerEntries;
}

std::uint32_t
Directory::sizeOf(MsgType t) const
{
    return msgBytes(t, config.lineBytes);
}

void
Directory::post(Message msg)
{
    msg.src = nodeId;
    msg.bytes = sizeOf(msg.type);
    network.send(std::move(msg));
}

void
Directory::postMulticast(Message msg, std::span<const NodeId> dsts)
{
    msg.src = nodeId;
    msg.bytes = sizeOf(msg.type);
    network.multicast(msg, dsts);
}

Tick
Directory::dirCachePenalty(Addr lineAddr)
{
    if (config.dirCacheEntries == 0)
        return 0;
    auto it = lruIndex.find(lineAddr);
    if (it != lruIndex.end()) {
        lruList.splice(lruList.begin(), lruList, it->second);
        return 0; // hit
    }
    // Miss: fetch the entry from the memory-backed directory.
    ++dirStats.dirCacheMisses;
    lruList.push_front(lineAddr);
    lruIndex[lineAddr] = lruList.begin();
    if (lruList.size() > config.dirCacheEntries) {
        lruIndex.erase(lruList.back());
        lruList.pop_back();
    }
    return config.memLatency;
}

void
Directory::receive(const Message &msg)
{
    // Single-server occupancy model: the controller handles one
    // message at a time, each costing one directory-cache access
    // (plus a memory round trip when the entry misses in the
    // directory cache).
    Tick cost = config.lookupLatency;
    switch (msg.type) {
      case MsgType::LoadReq:
      case MsgType::Mark:
      case MsgType::WriteBack:
      case MsgType::FlushData:
      case MsgType::InvAck:
        cost += dirCachePenalty(msg.addr);
        break;
      default:
        break; // TID-level messages touch no per-line entry
    }
    const Tick start = std::max(eventq.now(), busyUntil);
    busyUntil = start + cost;
    dirStats.busyCycles += cost;
    if (pending.active)
        pending.serviceCycles += cost;

    // Park the message in the pool for the occupancy delay; capturing
    // {this, slot} keeps the event inside the queue's inline storage.
    Message *slot = msgPool.alloc(msg);
    eventq.scheduleAt(busyUntil, [this, slot]() {
        const Message &m = *slot;
        switch (m.type) {
          case MsgType::LoadReq: handleLoad(m); break;
          case MsgType::Skip: handleSkip(m); break;
          case MsgType::Probe: handleProbe(m); break;
          case MsgType::Mark: handleMark(m); break;
          case MsgType::Commit: handleCommit(m); break;
          case MsgType::PartialCommit: handlePartialCommit(m); break;
          case MsgType::Abort: handleAbort(m); break;
          case MsgType::WriteBack: handleWriteBack(m); break;
          case MsgType::FlushData: handleFlushData(m); break;
          case MsgType::InvAck: handleInvAck(m); break;
          default:
            panic("directory %u got unexpected %s", nodeId,
                  msgTypeName(m.type));
        }
        msgPool.free(slot);
    });
}

void
Directory::handleLoad(const Message &msg)
{
    Entry &e = entry(msg.addr);
    if (e.marked) {
        // Loads to lines involved in an ongoing commit are stalled; the
        // commit is expected to succeed, and serving the old value
        // would immediately invalidate-and-violate the loader.
        ++dirStats.loadsStalled;
        stalledLoads.push_back(msg);
        return;
    }
    serveLoad(msg.src, msg.seq, msg.addr);
}

void
Directory::serveLoad(NodeId requester, std::uint32_t seq, Addr lineAddr)
{
    Entry &e = entry(lineAddr);
    if (e.owned && e.owner != requester) {
        // The only up-to-date copy is in the owner's cache.
        e.pendingLoads.push_back({requester, seq});
        if (!e.dataReqOutstanding && !e.awaitingWriteBack) {
            e.dataReqOutstanding = true;
            Message req;
            req.type = MsgType::DataReq;
            req.dst = e.owner;
            req.addr = lineAddr;
            post(req);
        }
        return;
    }
    // Not owned - or the owner itself is filling words of a line it
    // owns only partially (some words were invalidated by an unrelated
    // commit before this line was committed): serve from memory; the
    // owner's per-word valid bits merge the fill with its newer words.
    replyFromMemory(requester, seq, lineAddr);
}

void
Directory::replyFromMemory(NodeId requester, std::uint32_t seq,
                           Addr lineAddr)
{
    Entry &e = entry(lineAddr);
    const bool before = hasRemoteSharer(e);
    e.sharers.set(requester);
    noteSharerChange(e, before);
    ++dirStats.loadsServed;
    TCC_TRACEF(TraceCat::Dir, "%llu: dir %u serve load %llx to proc %u",
           (unsigned long long)eventq.now(), nodeId,
           (unsigned long long)lineAddr, requester);

    // Main-memory access latency before the data leaves the node. The
    // reply is built inside the event so the capture stays inline; it
    // echoes the request's sequence tag so the requester can filter
    // duplicated or stale replies on an adversarial network.
    eventq.schedule(config.memLatency,
                    [this, requester, seq, lineAddr]() {
        Message reply;
        reply.type = MsgType::LoadReply;
        reply.dst = requester;
        reply.addr = lineAddr;
        reply.seq = seq;
        reply.src = nodeId;
        reply.bytes = sizeOf(MsgType::LoadReply);
        network.send(reply);
    });
}

void
Directory::pumpPendingLoads(Addr lineAddr)
{
    Entry &e = entry(lineAddr);
    if (e.marked || e.pendingLoads.empty())
        return;
    if (e.owned) {
        // The owner's own loads are partial-line fills served from
        // memory (see serveLoad); everyone else needs the owner's data.
        std::vector<Entry::PendingLoad> others;
        for (const auto &r : e.pendingLoads) {
            if (r.node == e.owner)
                replyFromMemory(r.node, r.seq, lineAddr);
            else
                others.push_back(r);
        }
        e.pendingLoads = std::move(others);
        if (!e.pendingLoads.empty() && !e.dataReqOutstanding &&
            !e.awaitingWriteBack) {
            e.dataReqOutstanding = true;
            Message req;
            req.type = MsgType::DataReq;
            req.dst = e.owner;
            req.addr = lineAddr;
            post(req);
        }
        return;
    }
    std::vector<Entry::PendingLoad> waiters;
    waiters.swap(e.pendingLoads);
    for (const auto &r : waiters) {
        ++dirStats.loadsForwarded;
        replyFromMemory(r.node, r.seq, lineAddr);
    }
}

void
Directory::handleSkip(const Message &msg)
{
    if (mutate::is(mutate::Kind::DropSkip))
        return; // deliberately lose the skip (checker-efficacy test)
    ++dirStats.skipsReceived;
    traceEmit(tracer, TraceCat::Dir, TraceEventKind::DirSkip, nodeId,
              msg.tid, msg.src);
    recordSkip(msg.tid, InvariantChecker::Retire::Skip);
    advance();
}

void
Directory::recordSkip(Tid t, InvariantChecker::Retire how)
{
    if (invariants && !invariants->onRetire(nodeId, t, how))
        return; // invalid retirement: recorded as an invariant failure
    if (t < nowServing)
        panic("dir %u: skip for already-retired TID %llu (NSTID %llu)",
              nodeId, (unsigned long long)t,
              (unsigned long long)nowServing);
    const std::size_t idx = static_cast<std::size_t>(t - nowServing);
    if (skipWindow.test(idx))
        panic("dir %u: TID %llu retired twice", nodeId,
              (unsigned long long)t);
    skipWindow.set(idx);
}

void
Directory::advance()
{
    // Consume the Skip Vector's leading run of retired TIDs in one
    // word-level pass (count-trailing-ones, no per-TID loop).
    const std::size_t moved = skipWindow.popLeadingRun();
    const Tid previous = nowServing;
    nowServing += moved;
    if (moved == 0)
        return;
    if (mutate::is(mutate::Kind::SkipVectorOverConsume))
        ++nowServing; // swallow one extra, unretired TID
    if (mutate::is(mutate::Kind::NstidRewind) && previous > 0)
        nowServing = previous - 1; // step the NSTID backwards
    if (invariants)
        invariants->onNstidAdvance(nodeId, previous, nowServing);
    traceEmit(tracer, TraceCat::Dir, TraceEventKind::DirNstidAdvance,
              nodeId, kInvalidTid, nowServing, moved);

    // Release deferred probes whose condition now holds.
    MsgVec still(deferredProbes.get_allocator());
    still.reserve(deferredProbes.size());
    for (const Message &p : deferredProbes) {
        // A write probe is normally released when its TID is served
        // (nowServing == tid). nowServing > tid happens only when the
        // prober aborted (its Abort retired the TID); reply anyway -
        // the prober ignores replies for stale attempts.
        const bool ready = nowServing >= p.tid;
        if (ready) {
            Message reply;
            reply.type = MsgType::ProbeReply;
            reply.dst = p.src;
            reply.tid = p.tid;
            reply.nstid = nowServing;
            reply.wantWrite = p.wantWrite;
            post(reply);
        } else {
            still.push_back(p);
        }
    }
    deferredProbes.swap(still);

    // Re-dispatch loads that were stalled on marked lines.
    MsgVec loads(stalledLoads.get_allocator());
    loads.swap(stalledLoads);
    for (const Message &m : loads)
        handleLoad(m);
}

void
Directory::handleProbe(const Message &msg)
{
    auto reply_now = [&]() {
        Message reply;
        reply.type = MsgType::ProbeReply;
        reply.dst = msg.src;
        reply.tid = msg.tid;
        reply.nstid = nowServing;
        reply.wantWrite = msg.wantWrite;
        post(reply);
    };

    if (msg.tid == kInvalidTid) {
        // Early probe (no TID yet): answer immediately with the current
        // NSTID; the prober interprets it once its TID arrives.
        reply_now();
        return;
    }
    if (msg.wantWrite) {
        if (nowServing >= msg.tid) {
            // == : this transaction is now being served, marks may
            //      follow. > : the prober aborted this attempt (its
            //      Abort overtook the probe); it will ignore the reply.
            reply_now();
        } else {
            ++dirStats.probesDeferred;
            traceEmit(tracer, TraceCat::Dir,
                      TraceEventKind::DirProbeDefer, nodeId, msg.tid,
                      msg.src, 1);
            deferredProbes.push_back(msg);
        }
        return;
    }
    if (nowServing >= msg.tid) {
        reply_now();
    } else {
        ++dirStats.probesDeferred;
        traceEmit(tracer, TraceCat::Dir, TraceEventKind::DirProbeDefer,
                  nodeId, msg.tid, msg.src, 0);
        deferredProbes.push_back(msg);
    }
}

void
Directory::handleMark(const Message &msg)
{
    if (msg.tid < nowServing) {
        // Stale mark from an attempt whose Abort overtook it on an
        // unordered network; the abort already retired the TID.
        return;
    }
    if (msg.tid != nowServing)
        panic("dir %u: mark from TID %llu while serving %llu", nodeId,
              (unsigned long long)msg.tid,
              (unsigned long long)nowServing);
    if (!pending.active) {
        pending = PendingCommit{};
        pending.active = true;
        pending.committer = msg.src;
        pending.tid = msg.tid;
        pending.busyStart = eventq.now();
    }
    ++dirStats.marksReceived;
    ++pending.marksReceived;
    pending.markedLines.push_back(msg.addr);

    Entry &e = entry(msg.addr);
    e.marked = true;
    e.markedWords |= msg.wordMask;
    // Write-allocate guarantees the committer is already a sharer, but
    // be defensive in case the line's sharer bit was cleared by an
    // earlier invalidation that raced with this commit.
    const bool before = hasRemoteSharer(e);
    e.sharers.set(msg.src);
    noteSharerChange(e, before);

    if (mutate::is(mutate::Kind::CommitBeforeMarks) &&
        !pending.commitSeen && !pending.invsSent) {
        finishCommit(); // apply commit data before the Commit arrives
        return;
    }
    maybeFinishCommit();
}

void
Directory::handleCommit(const Message &msg)
{
    if (msg.tid != nowServing)
        panic("dir %u: commit from TID %llu while serving %llu", nodeId,
              (unsigned long long)msg.tid,
              (unsigned long long)nowServing);
    if (!pending.active) {
        // Commit overtook every Mark (possible on a jittery network).
        pending = PendingCommit{};
        pending.active = true;
        pending.committer = msg.src;
        pending.tid = msg.tid;
        pending.busyStart = eventq.now();
    }
    pending.commitSeen = true;
    pending.expectedMarks = msg.numMarks;
    maybeFinishCommit();
}

void
Directory::handlePartialCommit(const Message &msg)
{
    // A solo-mode transaction drains a batch of its write-set: the
    // batch commits exactly like a normal commit (upgrade, invalidate,
    // wait for acks) but the TID is NOT retired - the transaction is
    // still running and will commit or drain more later.
    if (msg.tid != nowServing)
        panic("dir %u: partial commit from TID %llu while serving "
              "%llu",
              nodeId, (unsigned long long)msg.tid,
              (unsigned long long)nowServing);
    if (!pending.active) {
        pending = PendingCommit{};
        pending.active = true;
        pending.committer = msg.src;
        pending.tid = msg.tid;
        pending.busyStart = eventq.now();
    }
    pending.commitSeen = true;
    pending.partial = true;
    pending.expectedMarks = msg.numMarks;
    ++dirStats.partialCommitsServed;
    maybeFinishCommit();
}

void
Directory::maybeFinishCommit()
{
    if (!pending.active || !pending.commitSeen)
        return;
    if (pending.marksReceived < pending.expectedMarks)
        return; // marks still in flight
    if (pending.invsSent)
        return; // already processing acks
    finishCommit();
}

void
Directory::finishCommit()
{
    if (invariants)
        invariants->onCommitApply(nodeId, pending.tid,
                                  pending.marksReceived,
                                  pending.expectedMarks,
                                  pending.commitSeen, pending.partial);
    pending.invsSent = true;
    for (Addr a : pending.markedLines) {
        Entry &e = entry(a);
        const bool before = hasRemoteSharer(e);
        e.marked = false;
        // Write-back commit: the committer keeps the only up-to-date
        // copy. Write-through (ablation): memory was updated by the
        // data-carrying marks, so there is no owner.
        e.owned = !config.writeThroughCommit;
        e.owner = config.writeThroughCommit ? kInvalidNode
                                            : pending.committer;
        e.commitTid = pending.tid;
        // A new commit supersedes any stale data-forwarding state.
        e.awaitingWriteBack = false;
        e.dataReqOutstanding = false;

        // Invalidate every sharer except the committing processor; a
        // processor is cleared from the sharers list exactly when an
        // invalidation is sent to it.
        const WordMaskT inv_mask = e.markedWords;
        e.markedWords = 0;
        const std::uint32_t n_inv =
            e.sharers.count() -
            (e.sharers.test(pending.committer) ? 1 : 0);
        TCC_TRACEF(TraceCat::Dir,
                   "%llu: dir %u commit tid=%llu line=%llx invs=%u",
                   (unsigned long long)eventq.now(), nodeId,
                   (unsigned long long)pending.tid,
                   (unsigned long long)a, n_inv);
        traceEmit(tracer, TraceCat::Dir, TraceEventKind::DirInvalidate,
                  nodeId, pending.tid, a, n_inv);
        // forEach visits in ascending node order, so the collected
        // destination list matches the old per-sharer emission order
        // exactly; the single payload then fans out as a multicast.
        mcastBuf.clear();
        e.sharers.forEach([&](NodeId n) {
            if (n == pending.committer)
                return;
            mcastBuf.push_back(n);
        });
        for (NodeId n : mcastBuf)
            e.sharers.clear(n);
        if (!mcastBuf.empty()) {
            Message inv;
            inv.type = MsgType::Inv;
            inv.addr = a;
            inv.tid = pending.tid;
            inv.wordMask = inv_mask;
            postMulticast(inv, mcastBuf);
            dirStats.invalidationsSent += mcastBuf.size();
            pending.pendingAcks +=
                static_cast<std::uint32_t>(mcastBuf.size());
        }
        noteSharerChange(e, before);
    }
    ++dirStats.commitsServed;
    sampleWorkingSet();
    if (pending.pendingAcks == 0)
        retireCurrent();
}

void
Directory::retireCurrent()
{
    const Tid t = pending.tid;
    const bool partial = pending.partial;
    const NodeId committer = pending.committer;
    dirStats.commitOccupancy.sample(
        static_cast<double>(pending.serviceCycles));
    std::vector<Addr> lines = std::move(pending.markedLines);
    pending = PendingCommit{};
    if (partial) {
        // Solo-mode batch: acknowledge, keep serving the same TID.
        Message ack;
        ack.type = MsgType::PartialAck;
        ack.dst = committer;
        ack.tid = t;
        post(ack);
    } else {
        recordSkip(t, InvariantChecker::Retire::Commit);
        advance();
    }
    for (Addr a : lines) {
        // Replay write-backs that had overtaken this commit.
        Entry &e = entry(a);
        if (!e.deferredWriteBacks.empty()) {
            std::vector<Message> wbs;
            wbs.swap(e.deferredWriteBacks);
            for (const Message &wb : wbs)
                handleWriteBack(wb);
        }
        pumpPendingLoads(a);
    }
}

void
Directory::handleAbort(const Message &msg)
{
    ++dirStats.abortsServed;
    std::vector<Addr> lines;
    if (pending.active && pending.tid == msg.tid) {
        if (pending.invsSent)
            panic("dir %u: abort after invalidations were sent",
                  nodeId);
        lines = std::move(pending.markedLines);
        for (Addr a : lines) {
            Entry &e = entry(a);
            e.marked = false;
            e.markedWords = 0;
        }
        pending = PendingCommit{};
    }
    // Whether or not anything was marked, the aborting transaction will
    // never commit here under this TID: treat it as skipped.
    recordSkip(msg.tid, InvariantChecker::Retire::Abort);
    advance();
    for (Addr a : lines)
        pumpPendingLoads(a);
}

void
Directory::handleWriteBack(const Message &msg)
{
    Entry &e = entry(msg.addr);
    // Write-backs carry the TID whose commit produced the data.
    // Ordering against this line's commit record resolves the
    // unordered-network races of Section 3.3 in both directions:
    //  - tag < commitTid: overtaken by a newer commit -> stale, drop;
    //  - tag > commitTid (or no commit seen yet): the write-back
    //    overtook its own commit -> defer until that commit is
    //    processed, or ownership would be resurrected and lost.
    if (msg.tid != kInvalidTid) {
        if (e.commitTid != kInvalidTid && msg.tid < e.commitTid) {
            ++dirStats.writeBacksDropped;
            return;
        }
        if (e.commitTid == kInvalidTid || msg.tid > e.commitTid) {
            e.deferredWriteBacks.push_back(msg);
            return;
        }
    }
    ++dirStats.writeBacksAccepted;
    if (e.owned && e.owner == msg.src) {
        e.owned = false;
        e.owner = kInvalidNode;
    }
    e.awaitingWriteBack = false;
    pumpPendingLoads(msg.addr);
}

void
Directory::handleFlushData(const Message &msg)
{
    Entry &e = entry(msg.addr);
    if (msg.invResponse) {
        // Invalidation of a committed-dirty line: the flush carries the
        // data to memory and doubles as the invalidation ack.
        handleInvAck(msg);
        return;
    }
    // Response to a DataReq.
    e.dataReqOutstanding = false;
    if (msg.hadData) {
        if (e.owned && e.owner == msg.src) {
            e.owned = false;
            e.owner = kInvalidNode;
        }
    } else if (e.owned && e.owner == msg.src) {
        // The owner already evicted; its WriteBack is in flight.
        e.awaitingWriteBack = true;
    }
    pumpPendingLoads(msg.addr);
}

void
Directory::handleInvAck(const Message &msg)
{
    if (!pending.active || !pending.invsSent)
        panic("dir %u: stray inv ack from node %u", nodeId, msg.src);
    if (pending.pendingAcks == 0)
        panic("dir %u: inv ack underflow", nodeId);
    if (msg.keepSharer) {
        // The acking processor still speculatively reads (or writes)
        // other words of this line: keep sending it invalidations.
        Entry &e = entry(msg.addr);
        const bool before = hasRemoteSharer(e);
        e.sharers.set(msg.src);
        noteSharerChange(e, before);
    }
    if (--pending.pendingAcks == 0)
        retireCurrent();
}

void
Directory::sampleWorkingSet()
{
    dirStats.workingSet.sample(
        static_cast<double>(remoteSharerEntries));
}

bool
Directory::quiesced() const
{
    if (pending.active || !deferredProbes.empty() ||
        !stalledLoads.empty())
        return false;
    for (const auto &[addr, e] : entries)
        if (!e.pendingLoads.empty() || e.dataReqOutstanding ||
            e.awaitingWriteBack || !e.deferredWriteBacks.empty())
            return false;
    return true;
}

std::string
Directory::debugDump() const
{
    std::string out;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "dir %u: nstid=%llu pending=%d defProbes=%zu "
                  "stalledLoads=%zu\n",
                  nodeId, (unsigned long long)nowServing,
                  pending.active ? 1 : 0, deferredProbes.size(),
                  stalledLoads.size());
    out += buf;
    for (const auto &[addr, e] : entries) {
        if (e.pendingLoads.empty() && !e.dataReqOutstanding &&
            !e.awaitingWriteBack && !e.marked)
            continue;
        std::snprintf(buf, sizeof(buf),
                      "  line %llx: owned=%d owner=%u marked=%d "
                      "dataReq=%d awaitWB=%d pendingLoads=%zu\n",
                      (unsigned long long)addr, e.owned ? 1 : 0,
                      e.owner, e.marked ? 1 : 0,
                      e.dataReqOutstanding ? 1 : 0,
                      e.awaitingWriteBack ? 1 : 0,
                      e.pendingLoads.size());
        out += buf;
    }
    return out;
}

} // namespace tcc
