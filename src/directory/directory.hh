/**
 * @file
 * Scalable TCC directory controller (paper Figure 4 and Section 3).
 *
 * Each node hosts one directory controlling the slice of physical
 * memory homed at that node. The directory:
 *
 *  - tracks, per line: the speculative sharers list, the owner (last
 *    committer holding the only up-to-date copy), the Marked bit for an
 *    in-flight commit, and the TID of the last commit to the line (used
 *    to drop stale write-backs on an unordered network);
 *  - serves commits strictly in TID order via the Now-Serving TID
 *    (NSTID) register and the Skip Vector;
 *  - defers Probe replies until the probed condition holds (write
 *    probes wait for NSTID == tid, read probes for NSTID >= tid);
 *  - gang-upgrades Marked lines to Owned on Commit, multicasts
 *    invalidations to sharers, and advances the NSTID only after every
 *    invalidation has been acknowledged (race elimination);
 *  - stalls loads that hit Marked lines until the commit resolves.
 */

#ifndef TCC_DIRECTORY_DIRECTORY_HH
#define TCC_DIRECTORY_DIRECTORY_HH

#include <cstdint>
#include <list>
#include <span>
#include <vector>

#include "check/invariant_checker.hh"
#include "common/arena.hh"
#include "common/flat_map.hh"
#include "common/nodeset.hh"
#include "common/skip_vector.hh"
#include "common/types.hh"
#include "mem/global_store.hh"
#include "mem/home_map.hh"
#include "noc/network.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "sim/stats.hh"

namespace tcc {

/** Directory/memory timing parameters (Table 2). */
struct DirectoryConfig {
    /** Directory cache access latency per message (cycles). */
    Tick lookupLatency = 10;
    /** Main memory access latency (cycles). */
    Tick memLatency = 100;
    std::uint32_t lineBytes = 32;
    /**
     * Directory cache capacity in entries (paper: 1 MB directory
     * cache). Protocol state is backed by memory, so a miss costs an
     * extra memLatency on the controller instead of losing state.
     * 0 models a perfectly-sized cache (no misses).
     */
    std::uint32_t dirCacheEntries = 0;
    /** Write-through commit ablation: committed data goes straight to
     *  memory; lines are never owned by a processor. */
    bool writeThroughCommit = false;
};

/**
 * One directory controller. All handling is message-driven; the
 * controller is a single server (messages queue when it is busy),
 * which yields the occupancy statistic of Table 3.
 */
class Directory
{
  public:
    Directory(NodeId node, std::uint32_t num_nodes, EventQueue &eq,
              Network &net, const DirectoryConfig &cfg,
              Arena *arena = nullptr);

    /** Network entry point for all directory-bound messages. */
    void receive(const Message &msg);

    /** Now-Serving TID (tests / assertions). */
    Tid nstid() const { return nowServing; }

    /** Per-directory statistics. */
    struct Stats {
        std::uint64_t loadsServed = 0;
        std::uint64_t loadsStalled = 0;     ///< hit a Marked line
        std::uint64_t loadsForwarded = 0;   ///< served by owner flush
        std::uint64_t skipsReceived = 0;
        std::uint64_t commitsServed = 0;
        std::uint64_t partialCommitsServed = 0;
        std::uint64_t abortsServed = 0;
        std::uint64_t invalidationsSent = 0;
        std::uint64_t writeBacksAccepted = 0;
        std::uint64_t writeBacksDropped = 0; ///< stale TID (race rule)
        std::uint64_t marksReceived = 0;
        std::uint64_t probesDeferred = 0;
        std::uint64_t dirCacheMisses = 0;
        /** Busy cycles per serviced commit (Table 3 "Occupancy"). */
        Distribution commitOccupancy;
        /** Directory working set: entries with remote sharers, sampled
         *  at each commit (Table 3 "Working set"). */
        Distribution workingSet;
        std::uint64_t busyCycles = 0;
    };

    const Stats &stats() const { return dirStats; }

    /** Number of entries currently tracked (diagnostics). */
    std::size_t numEntries() const { return entries.size(); }

    /** Sanity check used by tests: no pending state left behind. */
    bool quiesced() const;

    /** Human-readable dump of any stuck state (debugging aid). */
    std::string debugDump() const;

    /** Attach the System's protocol event ring (may be null). */
    void setTraceRecorder(TraceRecorder *rec) { tracer = rec; }

    /** Attach the online protocol-invariant checker (may be null).
     *  With a checker attached, invalid retirements are recorded as
     *  invariant failures instead of panicking, so checker-efficacy
     *  tests can assert on the diagnostic. */
    void setInvariantChecker(InvariantChecker *c) { invariants = c; }

  private:
    using WordMaskT = std::uint64_t;

    struct Entry {
        NodeSet sharers;
        bool owned = false;
        NodeId owner = kInvalidNode;
        bool marked = false;
        WordMaskT markedWords = 0;
        /** TID of the last commit to this line (write-back ordering);
         *  kInvalidTid until the first commit. */
        Tid commitTid = kInvalidTid;
        /** Write-backs that overtook their own commit on an unordered
         *  network; replayed once the commit is processed. */
        std::vector<Message> deferredWriteBacks;
        /** One load waiting for an owner flush / write-back; the seq
         *  is echoed in the eventual LoadReply so the requester can
         *  match it against its outstanding miss. */
        struct PendingLoad {
            NodeId node;
            std::uint32_t seq;
        };
        std::vector<PendingLoad> pendingLoads;
        bool dataReqOutstanding = false;
        /** Set when the owner answered a DataReq with "already
         *  evicted"; its WriteBack is in flight. */
        bool awaitingWriteBack = false;
    };

    /** In-flight commit bookkeeping for the currently served TID. */
    struct PendingCommit {
        bool active = false;
        NodeId committer = kInvalidNode;
        Tid tid = kInvalidTid;
        std::uint32_t marksReceived = 0;
        std::vector<Addr> markedLines;
        bool commitSeen = false;
        /** Batch commits without retiring the TID (solo-mode drain). */
        bool partial = false;
        std::uint32_t expectedMarks = 0;
        std::uint32_t pendingAcks = 0;
        bool invsSent = false;
        Tick busyStart = 0;
        Tick serviceCycles = 0;
    };

    Entry &entry(Addr lineAddr);

    // Message handlers (run after the controller occupancy delay).
    void handleLoad(const Message &msg);
    void handleSkip(const Message &msg);
    void handleProbe(const Message &msg);
    void handleMark(const Message &msg);
    void handleCommit(const Message &msg);
    void handlePartialCommit(const Message &msg);
    void handleAbort(const Message &msg);
    void handleWriteBack(const Message &msg);
    void handleFlushData(const Message &msg);
    void handleInvAck(const Message &msg);

    /** Record TID @p t in the Skip Vector (t >= nowServing). */
    void recordSkip(Tid t, InvariantChecker::Retire how);

    /** Shift the Skip Vector past every retired TID and release any
     *  deferred probes / stalled loads that become serviceable. */
    void advance();

    /** Start commit processing once all marks and the Commit arrived. */
    void maybeFinishCommit();

    /** Complete the in-flight commit (all marks+commit present):
     *  upgrade marked lines and send invalidations. */
    void finishCommit();

    /** Advance past the served TID after all inv acks arrived. */
    void retireCurrent();

    /** Serve a load from memory or by forwarding to the owner. */
    void serveLoad(NodeId requester, std::uint32_t seq, Addr lineAddr);

    /** Re-try loads waiting on an owner flush / write-back. */
    void pumpPendingLoads(Addr lineAddr);

    /** Reply to a load from the home memory slice. */
    void replyFromMemory(NodeId requester, std::uint32_t seq,
                         Addr lineAddr);

    /** Send one protocol message (fills in src and size). */
    void post(Message msg);

    /** Send one payload to every node in `dsts` via the network's
     *  multicast layer (invalidation fan-out). */
    void postMulticast(Message msg, std::span<const NodeId> dsts);

    /** Message byte size by opcode (traffic accounting). */
    std::uint32_t sizeOf(MsgType t) const;

    void sampleWorkingSet();
    void noteSharerChange(Entry &e, bool had_remote_before);
    bool hasRemoteSharer(const Entry &e) const;

    NodeId nodeId;
    std::uint32_t numNodes;
    EventQueue &eventq;
    Network &network;
    DirectoryConfig config;
    /** Run-private memory for every map/pool below (may be null). */
    Arena *arena;

    Tid nowServing = 0;
    /** Bit i set means TID nowServing + i is retired (packed ring). */
    SkipVector skipWindow;

    /** Per-line protocol state, touched once per directory message:
     *  open addressing keeps the lookup a single probe, no chase. */
    FlatMap<Addr, Entry> entries;
    PendingCommit pending;

    using MsgVec = std::vector<Message, ArenaAllocator<Message>>;
    /** Probes waiting for their TID condition. */
    MsgVec deferredProbes;
    /** Loads stalled on Marked lines. */
    MsgVec stalledLoads;

    /** Scratch destination list for invalidation multicasts. */
    std::vector<NodeId, ArenaAllocator<NodeId>> mcastBuf;

    /** Directory-cache recency tracking (LRU over entry addresses). */
    Tick dirCachePenalty(Addr lineAddr);
    std::list<Addr> lruList;
    FlatMap<Addr, std::list<Addr>::iterator> lruIndex;

    /** Single-server occupancy model. */
    Tick busyUntil = 0;

    /** Slab for messages parked during the occupancy delay, keeping
     *  the deferred-dispatch event capture inline (no allocation). */
    ObjectPool<Message> msgPool;

    /** Entries that currently have a remote sharer (working set). */
    std::uint64_t remoteSharerEntries = 0;

    Stats dirStats;

    /** Protocol event ring (owned by the System; may be null). */
    TraceRecorder *tracer = nullptr;

    /** Online invariant checker (owned by the System; may be null). */
    InvariantChecker *invariants = nullptr;
};

} // namespace tcc

#endif // TCC_DIRECTORY_DIRECTORY_HH
