/**
 * @file
 * Address-to-home-node mapping. The paper uses a first-touch policy to
 * map virtual pages to node memories; we implement that plus a static
 * page-interleaved fallback for controlled experiments.
 */

#ifndef TCC_MEM_HOME_MAP_HH
#define TCC_MEM_HOME_MAP_HH

#include <cstdint>

#include "common/flat_map.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace tcc {

/**
 * Maps line addresses to home nodes (the node whose directory and
 * memory slice own the line).
 */
class HomeMap
{
  public:
    HomeMap(std::uint32_t num_nodes, HomePolicy policy,
            std::uint32_t page_bytes = 4096, Arena *arena = nullptr)
        : numNodes(num_nodes), homePolicy(policy),
          pageBytes(page_bytes), firstTouch(arena)
    {
        if (num_nodes == 0)
            fatal("HomeMap needs at least one node");
        if ((page_bytes & (page_bytes - 1)) != 0)
            fatal("page size must be a power of two");
    }

    /**
     * Home node of @p addr. Under FirstTouch, the first call for a page
     * binds it to @p toucher; later calls ignore @p toucher.
     */
    NodeId
    homeOf(Addr addr, NodeId toucher)
    {
        const Addr page = addr / pageBytes;
        if (homePolicy == HomePolicy::Interleave)
            return static_cast<NodeId>(page % numNodes);
        auto it = firstTouch.find(page);
        if (it != firstTouch.end())
            return it->second;
        const NodeId home =
            toucher < numNodes
                ? toucher
                : static_cast<NodeId>(page % numNodes);
        firstTouch.emplace(page, home);
        return home;
    }

    /**
     * Home of an already-mapped address (panics under FirstTouch if the
     * page was never touched - indicates a protocol bug where a reply
     * precedes any request).
     */
    NodeId
    homeOf(Addr addr) const
    {
        const Addr page = addr / pageBytes;
        if (homePolicy == HomePolicy::Interleave)
            return static_cast<NodeId>(page % numNodes);
        auto it = firstTouch.find(page);
        if (it == firstTouch.end())
            panic("homeOf on untouched page %llx",
                  (unsigned long long)page);
        return it->second;
    }

    /**
     * Explicitly place the page containing @p addr at @p home,
     * overriding first-touch (models OS page placement done by the
     * workload's initialization phase). No-op under Interleave.
     */
    void
    bind(Addr addr, NodeId home)
    {
        if (homePolicy == HomePolicy::Interleave)
            return;
        firstTouch[addr / pageBytes] = home % numNodes;
    }

    HomePolicy policy() const { return homePolicy; }
    std::uint32_t pageSize() const { return pageBytes; }

  private:
    std::uint32_t numNodes;
    HomePolicy homePolicy;
    std::uint32_t pageBytes;
    /** homeOf() runs once per simulated access: keep it flat. */
    FlatMap<Addr, NodeId> firstTouch;
};

} // namespace tcc

#endif // TCC_MEM_HOME_MAP_HH
