/**
 * @file
 * Functional memory state. The timing model moves addresses and
 * abstract "data" through caches and the network; the functional model
 * here holds the actual committed word values so that workloads compute
 * real results and the serializability checker can verify them.
 *
 * TCC semantics map naturally onto a timing/functional split: a load
 * observes (a) the transaction's own speculative write buffer, else
 * (b) the last *committed* value; a commit atomically publishes the
 * transaction's write set. Violations force re-execution, at which
 * point loads re-observe the newer committed state - exactly the
 * behaviour the protocol's invalidations enforce in hardware.
 */

#ifndef TCC_MEM_GLOBAL_STORE_HH
#define TCC_MEM_GLOBAL_STORE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/flat_map.hh"
#include "common/types.hh"

namespace tcc {

/** Committed word values, keyed by word-aligned address. */
class GlobalStore
{
  public:
    /** One write() record: word-aligned address, value, and the tick
     *  the write was published at (0 without an attached clock). */
    struct WriteRec {
        Addr addr = 0;
        std::uint64_t value = 0;
        Tick tick = 0;
    };

    /** Records of every write() since the log was attached, in
     *  execution order (ticks nondecreasing when a clock is attached);
     *  PDES domains broadcast these at window barriers, merged across
     *  domains by (tick, domain id), to keep replicas convergent
     *  (sim/domain.hh). */
    using WriteLog = std::vector<WriteRec>;

    /** @param arena backs the word map (nullptr = global heap). */
    explicit GlobalStore(Arena *arena = nullptr) : words(arena) {}

    /** Read the committed value of the word at @p addr (0 if untouched). */
    std::uint64_t
    read(Addr addr) const
    {
        auto it = words.find(wordAlign(addr));
        return it == words.end() ? 0 : it->second;
    }

    /** Publish a committed value. */
    void
    write(Addr addr, std::uint64_t value)
    {
        const Addr a = wordAlign(addr);
        words[a] = value;
        if (writeLog != nullptr)
            writeLog->push_back(
                WriteRec{a, value, clock != nullptr ? *clock : 0});
    }

    /** Write without logging (replica log replay; @p addr must already
     *  be word-aligned, as log records are). */
    void apply(Addr addr, std::uint64_t value) { words[addr] = value; }

    /** Record every subsequent write() into @p log (nullptr detaches). */
    void setWriteLog(WriteLog *log) { writeLog = log; }

    /** Tag write-log records with *@p now at write() time (PDES
     *  domains pass EventQueue::nowRef(); nullptr tags 0). The tick is
     *  what lets the barrier merge order replica updates by
     *  (tick, writer domain) instead of writer domain alone. */
    void setClock(const Tick *now) { clock = now; }

    /** Replace the contents with a copy of @p other (replica seeding). */
    void
    copyFrom(const GlobalStore &other)
    {
        words.clear();
        for (const auto &kv : other.words)
            words[kv.first] = kv.second;
    }

    /** Number of distinct words ever written. */
    std::size_t footprint() const { return words.size(); }

    /**
     * Order-independent digest of the committed image: each (addr,
     * value) pair is mixed into a 64-bit word and the words are
     * combined commutatively, so two stores holding the same mapping
     * hash equal regardless of iteration order. Used by the timing
     * ablation gates (flat vs tree multicast must produce identical
     * final memory).
     */
    std::uint64_t
    fingerprint() const
    {
        auto mix = [](std::uint64_t x) {
            // splitmix64 finalizer: full avalanche per record.
            x += 0x9e3779b97f4a7c15ULL;
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
            return x ^ (x >> 31);
        };
        std::uint64_t h = mix(words.size());
        for (const auto &kv : words)
            h += mix(mix(kv.first) ^ kv.second);
        return h;
    }

    /** Word size used for alignment (bytes). */
    static constexpr Addr kWordBytes = 4;

    static Addr wordAlign(Addr a) { return a & ~(kWordBytes - 1); }

  private:
    /** Open-addressing map: read() is on the per-access hot path. */
    FlatMap<Addr, std::uint64_t> words;
    /** Optional write log (PDES replica synchronization). */
    WriteLog *writeLog = nullptr;
    /** Optional tick source for write-log records (see setClock). */
    const Tick *clock = nullptr;
};

} // namespace tcc

#endif // TCC_MEM_GLOBAL_STORE_HH
