/**
 * @file
 * Fundamental scalar types and constants shared by every module of the
 * Scalable TCC simulator.
 */

#ifndef TCC_COMMON_TYPES_HH
#define TCC_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace tcc {

/** Simulated time, in processor clock cycles. */
using Tick = std::uint64_t;

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Global transaction identifier (gap-free sequence from the TID vendor). */
using Tid = std::uint64_t;

/** Node number: one processor + one directory + one memory slice per node. */
using NodeId = std::uint32_t;

/** Sentinel meaning "no transaction ID assigned". */
inline constexpr Tid kInvalidTid = std::numeric_limits<Tid>::max();

/** Sentinel meaning "no node" (e.g., a line with no owner). */
inline constexpr NodeId kInvalidNode =
    std::numeric_limits<NodeId>::max();

/** Sentinel tick meaning "never". */
inline constexpr Tick kTickMax = std::numeric_limits<Tick>::max();

/** Conflict-detection granularity for speculative read/write tracking. */
enum class Granularity { Word, Line };

/** Policy for mapping a physical address to its home node/directory. */
enum class HomePolicy { Interleave, FirstTouch };

} // namespace tcc

#endif // TCC_COMMON_TYPES_HH
