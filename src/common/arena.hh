/**
 * @file
 * Per-System bump-pointer arena. Every allocation a simulation run
 * performs after construction - hash-table backing stores, event-queue
 * node slabs, message pools, cache arrays, commit bookkeeping - comes
 * out of one monotonic arena owned by that System.
 *
 * Why: the sweep engine (core/sweep.hh) runs many independent Systems
 * on concurrent workers. With the global allocator, those runs contend
 * on the malloc arenas and, worse, interleave their allocations so two
 * workers end up bumping counters that share a cache line (false
 * sharing). A per-System arena gives each run one private, contiguous,
 * 64-byte-aligned region: no cross-thread allocator locks, no shared
 * lines, and pointer-bump allocation on the rare growth paths.
 *
 * Design:
 *  - chunked monotonic bump: allocation advances a cursor through the
 *    current chunk; exhausted chunks are retained and a bigger one
 *    (geometric growth, capped) is appended. Individual deallocation
 *    is a no-op - per-run state lives exactly as long as the run.
 *  - reset() rewinds the cursor to the first chunk and keeps the
 *    memory for reuse; under AddressSanitizer the reclaimed bytes are
 *    poisoned so use-after-reset faults immediately.
 *  - ArenaAllocator<T> adapts the arena to the standard allocator
 *    interface. A default-constructed (nullptr) allocator falls back
 *    to ::operator new, so containers in contexts without a System
 *    (unit tests, Stats snapshots) keep working unchanged.
 *
 * Thread confinement: an Arena is NOT thread-safe. It inherits the
 * System confinement invariant (DESIGN.md section 8): one sweep worker
 * owns the System - and therefore its arena - for the run's lifetime.
 */

#ifndef TCC_COMMON_ARENA_HH
#define TCC_COMMON_ARENA_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define TCC_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TCC_ARENA_ASAN 1
#endif
#endif

#ifdef TCC_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace tcc {

/** Chunked monotonic bump allocator (see file comment). */
class Arena
{
  public:
    /** Cache-line size every chunk (and its payload) is aligned to. */
    static constexpr std::size_t kAlign = 64;
    /** First chunk payload size; later chunks double up to the cap. */
    static constexpr std::size_t kFirstChunkBytes = std::size_t{256}
                                                    << 10;
    static constexpr std::size_t kMaxChunkBytes = std::size_t{8} << 20;

    explicit Arena(std::size_t first_chunk_bytes = kFirstChunkBytes)
        : nextChunkBytes(roundUp(
              first_chunk_bytes ? first_chunk_bytes : kFirstChunkBytes,
              kAlign))
    {}

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    ~Arena()
    {
        for (Chunk &c : chunks) {
#ifdef TCC_ARENA_ASAN
            __asan_unpoison_memory_region(c.base, c.bytes);
#endif
            ::operator delete(c.base, std::align_val_t{kAlign});
        }
    }

    /**
     * Allocate @p bytes with the given alignment (a power of two).
     * Never returns nullptr; panics only via std::bad_alloc from the
     * underlying chunk allocation.
     */
    void *
    allocate(std::size_t bytes, std::size_t align)
    {
        assert(align != 0 && (align & (align - 1)) == 0);
        for (;;) {
            const std::uintptr_t p =
                (reinterpret_cast<std::uintptr_t>(cur) + align - 1) &
                ~(static_cast<std::uintptr_t>(align) - 1);
            if (p + bytes <= reinterpret_cast<std::uintptr_t>(end)) {
                std::byte *out = reinterpret_cast<std::byte *>(p);
                liveBytes += bytes + (p - reinterpret_cast<std::uintptr_t>(
                                              cur));
                if (liveBytes > peak)
                    peak = liveBytes;
                cur = out + bytes;
#ifdef TCC_ARENA_ASAN
                __asan_unpoison_memory_region(out, bytes);
#endif
                return out;
            }
            advanceChunk(bytes + align);
        }
    }

    /**
     * Rewind to an empty arena, retaining every chunk for reuse. All
     * previously handed-out pointers become invalid; under ASan the
     * reclaimed memory is poisoned so stale pointers fault.
     */
    void
    reset()
    {
#ifdef TCC_ARENA_ASAN
        for (Chunk &c : chunks)
            __asan_poison_memory_region(c.base, c.bytes);
#endif
        liveBytes = 0;
        if (chunks.empty()) {
            curChunk = 0;
            cur = end = nullptr;
            return;
        }
        curChunk = 0;
        cur = chunks[0].base;
        end = chunks[0].base + chunks[0].bytes;
    }

    struct Stats {
        std::size_t liveBytes = 0;  ///< bytes handed out since reset
        std::size_t peakBytes = 0;  ///< high-water mark of liveBytes
        std::size_t chunkBytes = 0; ///< total payload capacity
        std::size_t chunks = 0;     ///< number of chunks allocated
    };

    Stats
    stats() const
    {
        Stats s;
        s.liveBytes = liveBytes;
        s.peakBytes = peak;
        s.chunks = chunks.size();
        for (const Chunk &c : chunks)
            s.chunkBytes += c.bytes;
        return s;
    }

  private:
    struct Chunk {
        std::byte *base = nullptr;
        std::size_t bytes = 0;
    };

    static std::size_t
    roundUp(std::size_t v, std::size_t align)
    {
        return (v + align - 1) & ~(align - 1);
    }

    /**
     * Make the bump window a chunk that fits @p need bytes: reuse the
     * next retained chunk when it is big enough, else append a new one
     * (geometric size, never below @p need).
     */
    void
    advanceChunk(std::size_t need)
    {
        // Reuse retained chunks (after reset) that can satisfy this
        // request; smaller ones are skipped until the next reset.
        while (curChunk + 1 < chunks.size()) {
            ++curChunk;
            if (chunks[curChunk].bytes >= need) {
                cur = chunks[curChunk].base;
                end = cur + chunks[curChunk].bytes;
                return;
            }
        }
        std::size_t size = nextChunkBytes;
        if (size < need)
            size = roundUp(need, kAlign);
        if (nextChunkBytes < kMaxChunkBytes)
            nextChunkBytes = nextChunkBytes * 2 < kMaxChunkBytes
                                 ? nextChunkBytes * 2
                                 : kMaxChunkBytes;
        std::byte *base = static_cast<std::byte *>(
            ::operator new(size, std::align_val_t{kAlign}));
        chunks.push_back(Chunk{base, size});
        curChunk = chunks.size() - 1;
        cur = base;
        end = base + size;
#ifdef TCC_ARENA_ASAN
        // Fresh chunk memory starts poisoned; allocate() unpoisons
        // exactly the bytes handed out.
        __asan_poison_memory_region(base, size);
#endif
    }

    /// Chunk list in allocation order (reused in order after reset).
    std::vector<Chunk> chunks;
    std::size_t curChunk = 0;
    std::byte *cur = nullptr;
    std::byte *end = nullptr;
    std::size_t nextChunkBytes;
    std::size_t liveBytes = 0;
    std::size_t peak = 0;
};

/**
 * Standard-allocator adapter over Arena. Holds a plain pointer; a
 * nullptr arena falls back to the global heap, so default-constructed
 * containers behave exactly as before. deallocate() on arena memory is
 * a no-op (the arena frees wholesale), which is the right trade for
 * the simulator: per-run containers reserve() once and are reused via
 * clear(), so grow-and-abandon churn is bounded.
 */
template <typename T>
class ArenaAllocator
{
  public:
    using value_type = T;
    using propagate_on_container_copy_assignment = std::true_type;
    using propagate_on_container_move_assignment = std::true_type;
    using propagate_on_container_swap = std::true_type;
    using is_always_equal = std::false_type;

    ArenaAllocator() = default;
    explicit ArenaAllocator(Arena *a) : arena(a) {}

    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &o) : arena(o.arena)
    {}

    T *
    allocate(std::size_t n)
    {
        const std::size_t bytes = n * sizeof(T);
        if (arena) {
            return static_cast<T *>(
                arena->allocate(bytes, alignof(T)));
        }
        if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
            return static_cast<T *>(::operator new(
                bytes, std::align_val_t{alignof(T)}));
        } else {
            return static_cast<T *>(::operator new(bytes));
        }
    }

    void
    deallocate(T *p, std::size_t)
    {
        if (arena)
            return; // monotonic: freed wholesale at arena destruction
        if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
            ::operator delete(p, std::align_val_t{alignof(T)});
        } else {
            ::operator delete(p);
        }
    }

    bool
    operator==(const ArenaAllocator &o) const
    {
        return arena == o.arena;
    }
    bool
    operator!=(const ArenaAllocator &o) const
    {
        return arena != o.arena;
    }

    Arena *arena = nullptr;
};

} // namespace tcc

#endif // TCC_COMMON_ARENA_HH
