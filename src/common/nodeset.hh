/**
 * @file
 * NodeSet: a small fixed-capacity bit set over node IDs. Used for
 * directory sharers lists and for the per-processor Sharing and
 * Writing vectors (Figure 1b / Figure 4 of the paper), and - since the
 * bitmap set-algebra work - for the commit engine's per-directory
 * bookkeeping (marks-done, validated, early-answer membership).
 *
 * Storage is an inline array of 64-bit words (no heap): the set is
 * trivially copyable, assignment is a word copy, and membership /
 * emptiness / population checks compile to single AND / OR / POPCNT
 * instructions over at most kMaxWords words. Iteration uses
 * count-trailing-zeros over each word, so forEach visits members in
 * increasing node order - call sites that emit protocol messages rely
 * on that for deterministic emission.
 */

#ifndef TCC_COMMON_NODESET_HH
#define TCC_COMMON_NODESET_HH

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace tcc {

/**
 * A fixed-capacity bit set over node IDs with iteration support.
 *
 * The capacity is set at construction (the number of nodes in the
 * system) and never changes, mirroring a hardware bit vector.
 */
class NodeSet
{
  public:
    /** Largest system this inline representation supports. */
    static constexpr std::uint32_t kMaxNodes = 256;
    static constexpr std::size_t kMaxWords = kMaxNodes / 64;

    NodeSet() = default;

    /** Construct an empty set able to hold nodes [0, num_nodes). */
    explicit NodeSet(std::uint32_t num_nodes) : numNodes(num_nodes)
    {
        if (num_nodes > kMaxNodes)
            fatal("NodeSet capacity %u exceeds kMaxNodes (%u)",
                  num_nodes, kMaxNodes);
    }

    /** Number of node IDs this set can hold. */
    std::uint32_t capacity() const { return numNodes; }

    /** Add @p n to the set. */
    void
    set(NodeId n)
    {
        assert(n < numNodes);
        words[n >> 6] |= (std::uint64_t{1} << (n & 63));
    }

    /** Remove @p n from the set. */
    void
    clear(NodeId n)
    {
        assert(n < numNodes);
        words[n >> 6] &= ~(std::uint64_t{1} << (n & 63));
    }

    /** Remove every node from the set. */
    void
    clearAll()
    {
        for (std::size_t i = 0; i < wordCount(); ++i)
            words[i] = 0;
    }

    /** @return true iff @p n is in the set. */
    bool
    test(NodeId n) const
    {
        assert(n < numNodes);
        return (words[n >> 6] >> (n & 63)) & 1;
    }

    /** @return true iff the set is empty. */
    bool
    empty() const
    {
        for (std::size_t i = 0; i < wordCount(); ++i)
            if (words[i])
                return false;
        return true;
    }

    /** Number of nodes in the set. */
    std::uint32_t
    count() const
    {
        std::uint32_t c = 0;
        for (std::size_t i = 0; i < wordCount(); ++i)
            c += static_cast<std::uint32_t>(
                __builtin_popcountll(words[i]));
        return c;
    }

    /**
     * @return true iff the set contains any member other than @p self.
     * Word algebra for the directory's remote-sharer test: mask out
     * self's bit and OR the words - no per-member iteration.
     */
    bool
    anyBesides(NodeId self) const
    {
        std::uint64_t acc = 0;
        const std::size_t sw = self >> 6;
        for (std::size_t i = 0; i < wordCount(); ++i) {
            std::uint64_t w = words[i];
            if (i == sw)
                w &= ~(std::uint64_t{1} << (self & 63));
            acc |= w;
        }
        return acc != 0;
    }

    /** @return true iff this set and @p o share a member (AND test). */
    bool
    intersects(const NodeSet &o) const
    {
        std::uint64_t acc = 0;
        const std::size_t n = wordCount() < o.wordCount()
                                  ? wordCount()
                                  : o.wordCount();
        for (std::size_t i = 0; i < n; ++i)
            acc |= words[i] & o.words[i];
        return acc != 0;
    }

    /** Invoke @p fn for every member, in increasing node order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t wi = 0; wi < wordCount(); ++wi) {
            std::uint64_t w = words[wi];
            while (w) {
                const int bit = __builtin_ctzll(w);
                fn(static_cast<NodeId>(wi * 64 + bit));
                w &= w - 1;
            }
        }
    }

    /** Collect the members into a vector (mostly for tests). */
    std::vector<NodeId>
    toVector() const
    {
        std::vector<NodeId> v;
        forEach([&](NodeId n) { v.push_back(n); });
        return v;
    }

    bool
    operator==(const NodeSet &o) const
    {
        if (numNodes != o.numNodes)
            return false;
        for (std::size_t i = 0; i < wordCount(); ++i)
            if (words[i] != o.words[i])
                return false;
        return true;
    }

  private:
    std::size_t
    wordCount() const
    {
        return (numNodes + 63) >> 6;
    }

    std::uint32_t numNodes = 0;
    std::uint64_t words[kMaxWords] = {};
};

} // namespace tcc

#endif // TCC_COMMON_NODESET_HH
