/**
 * @file
 * NodeSet: a size-generic bit set over node IDs. Used for directory
 * sharers lists and for the per-processor Sharing and Writing vectors
 * (Figure 1b / Figure 4 of the paper), and - since the bitmap
 * set-algebra work - for the commit engine's per-directory bookkeeping
 * (marks-done, validated, early-answer membership).
 *
 * Storage is hybrid: systems of up to kInlineNodes (256) nodes - every
 * configuration the paper evaluates, and then some - live in an inline
 * array of 64-bit words (no heap, no arena), so assignment is a word
 * copy and membership / emptiness / population checks compile to
 * single AND / OR / POPCNT instructions. Larger systems (the 1024-node
 * scaling sweeps) switch to a wide word array drawn from the owning
 * System's arena at construction time - still a flat popcount bitmap,
 * just not inline - so the per-event hot path never allocates in
 * either mode. Iteration uses count-trailing-zeros over each word, so
 * forEach visits members in increasing node order - call sites that
 * emit protocol messages rely on that for deterministic emission.
 *
 * There is deliberately no fatal() capacity check here anymore:
 * SystemConfig::validate() rejects unsupported node counts at config
 * time (see core/system.cc), which is where a misconfiguration should
 * fail.
 */

#ifndef TCC_COMMON_NODESET_HH
#define TCC_COMMON_NODESET_HH

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/arena.hh"
#include "common/types.hh"

namespace tcc {

/**
 * A fixed-capacity bit set over node IDs with iteration support.
 *
 * The capacity is set at construction (the number of nodes in the
 * system) and never changes, mirroring a hardware bit vector.
 */
class NodeSet
{
  public:
    /** Largest system the inline (allocation-free) storage holds. */
    static constexpr std::uint32_t kInlineNodes = 256;
    static constexpr std::size_t kInlineWords = kInlineNodes / 64;

    NodeSet() = default;

    /**
     * Construct an empty set able to hold nodes [0, num_nodes).
     * Capacities beyond kInlineNodes draw their word array from
     * @p arena (nullptr falls back to the heap - tests, snapshots).
     */
    explicit NodeSet(std::uint32_t num_nodes, Arena *arena = nullptr)
        : numNodes(num_nodes),
          wide(wordCountFor(num_nodes) > kInlineWords
                   ? wordCountFor(num_nodes)
                   : 0,
               0, ArenaAllocator<std::uint64_t>(arena))
    {}

    /** Number of node IDs this set can hold. */
    std::uint32_t capacity() const { return numNodes; }

    /** Add @p n to the set. */
    void
    set(NodeId n)
    {
        assert(n < numNodes);
        words()[n >> 6] |= (std::uint64_t{1} << (n & 63));
    }

    /** Remove @p n from the set. */
    void
    clear(NodeId n)
    {
        assert(n < numNodes);
        words()[n >> 6] &= ~(std::uint64_t{1} << (n & 63));
    }

    /** Remove every node from the set. */
    void
    clearAll()
    {
        std::uint64_t *w = words();
        for (std::size_t i = 0; i < wordCount(); ++i)
            w[i] = 0;
    }

    /** @return true iff @p n is in the set. */
    bool
    test(NodeId n) const
    {
        assert(n < numNodes);
        return (words()[n >> 6] >> (n & 63)) & 1;
    }

    /** @return true iff the set is empty. */
    bool
    empty() const
    {
        const std::uint64_t *w = words();
        for (std::size_t i = 0; i < wordCount(); ++i)
            if (w[i])
                return false;
        return true;
    }

    /** Number of nodes in the set. */
    std::uint32_t
    count() const
    {
        const std::uint64_t *w = words();
        std::uint32_t c = 0;
        for (std::size_t i = 0; i < wordCount(); ++i)
            c += static_cast<std::uint32_t>(
                __builtin_popcountll(w[i]));
        return c;
    }

    /**
     * @return true iff the set contains any member other than @p self.
     * Word algebra for the directory's remote-sharer test: mask out
     * self's bit and OR the words - no per-member iteration.
     */
    bool
    anyBesides(NodeId self) const
    {
        const std::uint64_t *w = words();
        std::uint64_t acc = 0;
        const std::size_t sw = self >> 6;
        for (std::size_t i = 0; i < wordCount(); ++i) {
            std::uint64_t word = w[i];
            if (i == sw)
                word &= ~(std::uint64_t{1} << (self & 63));
            acc |= word;
        }
        return acc != 0;
    }

    /** @return true iff this set and @p o share a member (AND test). */
    bool
    intersects(const NodeSet &o) const
    {
        const std::uint64_t *a = words();
        const std::uint64_t *b = o.words();
        std::uint64_t acc = 0;
        const std::size_t n = wordCount() < o.wordCount()
                                  ? wordCount()
                                  : o.wordCount();
        for (std::size_t i = 0; i < n; ++i)
            acc |= a[i] & b[i];
        return acc != 0;
    }

    /** OR every member of @p o into this set (capacity unchanged). */
    void
    merge(const NodeSet &o)
    {
        std::uint64_t *a = words();
        const std::uint64_t *b = o.words();
        const std::size_t n = wordCount() < o.wordCount()
                                  ? wordCount()
                                  : o.wordCount();
        for (std::size_t i = 0; i < n; ++i)
            a[i] |= b[i];
    }

    /** Invoke @p fn for every member, in increasing node order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        const std::uint64_t *w = words();
        for (std::size_t wi = 0; wi < wordCount(); ++wi) {
            std::uint64_t word = w[wi];
            while (word) {
                const int bit = __builtin_ctzll(word);
                fn(static_cast<NodeId>(wi * 64 + bit));
                word &= word - 1;
            }
        }
    }

    /** Collect the members into a vector (mostly for tests). */
    std::vector<NodeId>
    toVector() const
    {
        std::vector<NodeId> v;
        forEach([&](NodeId n) { v.push_back(n); });
        return v;
    }

    bool
    operator==(const NodeSet &o) const
    {
        if (numNodes != o.numNodes)
            return false;
        const std::uint64_t *a = words();
        const std::uint64_t *b = o.words();
        for (std::size_t i = 0; i < wordCount(); ++i)
            if (a[i] != b[i])
                return false;
        return true;
    }

  private:
    static std::size_t
    wordCountFor(std::uint32_t nodes)
    {
        return (nodes + std::uint32_t{63}) >> 6;
    }

    std::size_t wordCount() const { return wordCountFor(numNodes); }

    /** Active word array: inline for <= kInlineNodes, else wide. */
    std::uint64_t *
    words()
    {
        return wide.empty() ? inlineWords : wide.data();
    }
    const std::uint64_t *
    words() const
    {
        return wide.empty() ? inlineWords : wide.data();
    }

    std::uint32_t numNodes = 0;
    std::uint64_t inlineWords[kInlineWords] = {};
    /// Engaged only beyond kInlineNodes; arena-backed, sized once at
    /// construction (ArenaAllocator propagates on copy/move assign, so
    /// re-assigning an entry's set keeps its arena).
    std::vector<std::uint64_t, ArenaAllocator<std::uint64_t>> wide;
};

} // namespace tcc

#endif // TCC_COMMON_NODESET_HH
