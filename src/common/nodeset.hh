/**
 * @file
 * NodeSet: a small dynamic bit set over node IDs. Used for directory
 * sharers lists and for the per-processor Sharing and Writing vectors
 * (Figure 1b / Figure 4 of the paper).
 */

#ifndef TCC_COMMON_NODESET_HH
#define TCC_COMMON_NODESET_HH

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace tcc {

/**
 * A fixed-capacity bit set over node IDs with iteration support.
 *
 * The capacity is set at construction (the number of nodes in the
 * system) and never changes, mirroring a hardware bit vector.
 */
class NodeSet
{
  public:
    NodeSet() = default;

    /** Construct an empty set able to hold nodes [0, num_nodes). */
    explicit NodeSet(std::uint32_t num_nodes)
        : numNodes(num_nodes), words((num_nodes + 63) / 64, 0)
    {}

    /** Number of node IDs this set can hold. */
    std::uint32_t capacity() const { return numNodes; }

    /** Add @p n to the set. */
    void
    set(NodeId n)
    {
        assert(n < numNodes);
        words[n >> 6] |= (std::uint64_t{1} << (n & 63));
    }

    /** Remove @p n from the set. */
    void
    clear(NodeId n)
    {
        assert(n < numNodes);
        words[n >> 6] &= ~(std::uint64_t{1} << (n & 63));
    }

    /** Remove every node from the set. */
    void
    clearAll()
    {
        for (auto &w : words)
            w = 0;
    }

    /** @return true iff @p n is in the set. */
    bool
    test(NodeId n) const
    {
        assert(n < numNodes);
        return (words[n >> 6] >> (n & 63)) & 1;
    }

    /** @return true iff the set is empty. */
    bool
    empty() const
    {
        for (auto w : words)
            if (w)
                return false;
        return true;
    }

    /** Number of nodes in the set. */
    std::uint32_t
    count() const
    {
        std::uint32_t c = 0;
        for (auto w : words)
            c += static_cast<std::uint32_t>(__builtin_popcountll(w));
        return c;
    }

    /** Invoke @p fn for every member, in increasing node order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t wi = 0; wi < words.size(); ++wi) {
            std::uint64_t w = words[wi];
            while (w) {
                const int bit = __builtin_ctzll(w);
                fn(static_cast<NodeId>(wi * 64 + bit));
                w &= w - 1;
            }
        }
    }

    /** Collect the members into a vector (mostly for tests). */
    std::vector<NodeId>
    toVector() const
    {
        std::vector<NodeId> v;
        forEach([&](NodeId n) { v.push_back(n); });
        return v;
    }

    bool
    operator==(const NodeSet &o) const
    {
        return numNodes == o.numNodes && words == o.words;
    }

  private:
    std::uint32_t numNodes = 0;
    std::vector<std::uint64_t> words;
};

} // namespace tcc

#endif // TCC_COMMON_NODESET_HH
