#include "common/log.hh"

#include <cstdarg>
#include <cstring>
#include <mutex>
#include <vector>

namespace tcc {

namespace {

/**
 * Guards the stderr trace sink. Parallel sweep workers (core/sweep.hh)
 * may trace concurrently; each tracef() formats its whole line into a
 * private buffer first and then performs one locked fwrite, so lines
 * interleave but never shear mid-write.
 */
std::mutex &
traceSinkMutex()
{
    static std::mutex m;
    return m;
}

const char *
catName(TraceCat cat)
{
    switch (cat) {
      case TraceCat::Proc: return "proc";
      case TraceCat::Dir: return "dir";
      case TraceCat::Net: return "net";
      case TraceCat::Cache: return "cache";
      case TraceCat::Commit: return "commit";
      case TraceCat::Workload: return "workload";
      default: return "?";
    }
}

} // namespace

void
panic(const char *fmt, ...)
{
    std::fprintf(stderr, "panic: ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::fprintf(stderr, "warn: ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
}

void
tracef(TraceCat cat, const char *fmt, ...)
{
    if (!Trace::on(cat) || !Trace::textOn())
        return;

    // Format "[cat] <line>\n" into a private buffer before touching
    // the shared sink. 512 bytes covers every line the simulator
    // emits; the heap path is for pathological user format strings.
    char stack[512];
    int n = std::snprintf(stack, sizeof(stack), "[%s] ", catName(cat));

    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int body = std::vsnprintf(stack + n, sizeof(stack) - n - 1,
                                    fmt, ap);
    va_end(ap);

    if (body >= 0 &&
        static_cast<std::size_t>(n + body) < sizeof(stack) - 1) {
        va_end(ap2);
        n += body;
        stack[n++] = '\n';
        std::lock_guard<std::mutex> lock(traceSinkMutex());
        std::fwrite(stack, 1, static_cast<std::size_t>(n), stderr);
        return;
    }

    // Line longer than the stack buffer: re-format into an exactly
    // sized heap buffer (+1 NUL, +1 newline).
    std::vector<char> big(static_cast<std::size_t>(n + body) + 2);
    std::memcpy(big.data(), stack, static_cast<std::size_t>(n));
    std::vsnprintf(big.data() + n, big.size() - n - 1, fmt, ap2);
    va_end(ap2);
    big[big.size() - 2] = '\n';
    std::lock_guard<std::mutex> lock(traceSinkMutex());
    std::fwrite(big.data(), 1, big.size() - 1, stderr);
}

} // namespace tcc
