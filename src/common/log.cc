#include "common/log.hh"

#include <cstdarg>

namespace tcc {

namespace {

const char *
catName(TraceCat cat)
{
    switch (cat) {
      case TraceCat::Proc: return "proc";
      case TraceCat::Dir: return "dir";
      case TraceCat::Net: return "net";
      case TraceCat::Cache: return "cache";
      case TraceCat::Commit: return "commit";
      case TraceCat::Workload: return "workload";
      default: return "?";
    }
}

} // namespace

void
panic(const char *fmt, ...)
{
    std::fprintf(stderr, "panic: ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::fprintf(stderr, "warn: ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
}

void
tracef(TraceCat cat, const char *fmt, ...)
{
    if (!Trace::on(cat))
        return;
    std::fprintf(stderr, "[%s] ", catName(cat));
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
}

} // namespace tcc
