/**
 * @file
 * Minimal leveled logging / fatal-error helpers, in the spirit of gem5's
 * logging.hh: panic() for simulator bugs, fatal() for user errors, and a
 * per-category debug trace that is cheap when disabled.
 */

#ifndef TCC_COMMON_LOG_HH
#define TCC_COMMON_LOG_HH

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace tcc {

/** Trace categories that can be toggled at run time. */
enum class TraceCat : unsigned {
    Proc = 0,
    Dir,
    Net,
    Cache,
    Commit,
    Workload,
    NumCats,
};

/**
 * Global trace switchboard. All categories default to off.
 *
 * The flags are process-global (they configure *logging*, not any
 * simulated machine), so they are the one piece of state every
 * concurrently running System shares. Storage is atomic: readers on
 * the simulation hot path use relaxed loads (free on x86, a plain
 * load on ARM), writers use release stores. The intended discipline
 * under SweepRunner is nevertheless configure-before-spawn: set trace
 * flags once on the main thread, then launch the sweep (DESIGN.md
 * section 7, "Thread confinement").
 */
class Trace
{
  public:
    /** Enable or disable one category. */
    static void
    enable(TraceCat cat, bool on = true)
    {
        flags()[static_cast<unsigned>(cat)].store(
            on, std::memory_order_release);
    }

    /** Enable every category (verbose protocol dumps). */
    static void
    enableAll(bool on = true)
    {
        for (unsigned i = 0;
             i < static_cast<unsigned>(TraceCat::NumCats); ++i) {
            flags()[i].store(on, std::memory_order_release);
        }
    }

    /** @return true iff @p cat is currently traced. */
    static bool
    on(TraceCat cat)
    {
        return flags()[static_cast<unsigned>(cat)].load(
            std::memory_order_relaxed);
    }

    /**
     * Toggle the human-readable stderr sink. Structured recording
     * (obs/trace_recorder.hh) is controlled by the per-category flags
     * alone; turning text off lets a run record events for the
     * Perfetto/ledger exporters without printf-ing every one of them
     * to stderr (tccsim --trace-out, the obs-smoke fixture).
     */
    static void
    setTextOutput(bool on)
    {
        textFlag().store(on, std::memory_order_release);
    }

    /** @return true iff tracef() lines go to stderr. */
    static bool
    textOn()
    {
        return textFlag().load(std::memory_order_relaxed);
    }

  private:
    static std::atomic<bool> *
    flags()
    {
        static std::atomic<bool>
            f[static_cast<unsigned>(TraceCat::NumCats)] = {};
        return f;
    }

    static std::atomic<bool> &
    textFlag()
    {
        static std::atomic<bool> f{true};
        return f;
    }
};

/**
 * Abort the simulation due to an internal simulator bug.
 * Mirrors gem5 panic(): this should never fire regardless of user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit the simulation due to a user/configuration error.
 * Mirrors gem5 fatal().
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr without stopping the simulation. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Print a trace line if @p cat is enabled (prefixed with the
 * category). The line is formatted into a private buffer and written
 * to stderr in a single locked write, so lines from concurrent sweep
 * workers never shear mid-write. Prefer TCC_TRACEF on hot paths: it
 * skips argument evaluation entirely when the category is off.
 */
void tracef(TraceCat cat, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace tcc

/**
 * Trace with zero cost when the category is disabled: the category
 * check happens *before* the argument list is evaluated, so hot-path
 * call sites never pay for formatting work (integer widening, string
 * construction, accessor calls) that tracef() would then discard.
 */
#define TCC_TRACEF(cat, ...)                                          \
    do {                                                              \
        if (::tcc::Trace::on(cat))                                    \
            ::tcc::tracef(cat, __VA_ARGS__);                          \
    } while (0)

#endif // TCC_COMMON_LOG_HH
