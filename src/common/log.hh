/**
 * @file
 * Minimal leveled logging / fatal-error helpers, in the spirit of gem5's
 * logging.hh: panic() for simulator bugs, fatal() for user errors, and a
 * per-category debug trace that is cheap when disabled.
 */

#ifndef TCC_COMMON_LOG_HH
#define TCC_COMMON_LOG_HH

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace tcc {

/** Trace categories that can be toggled at run time. */
enum class TraceCat : unsigned {
    Proc = 0,
    Dir,
    Net,
    Cache,
    Commit,
    Workload,
    NumCats,
};

/**
 * Global trace switchboard. All categories default to off.
 *
 * The flags are process-global (they configure *logging*, not any
 * simulated machine), so they are the one piece of state every
 * concurrently running System shares. Storage is atomic: readers on
 * the simulation hot path use relaxed loads (free on x86, a plain
 * load on ARM), writers use release stores. The intended discipline
 * under SweepRunner is nevertheless configure-before-spawn: set trace
 * flags once on the main thread, then launch the sweep (DESIGN.md
 * section 7, "Thread confinement").
 */
class Trace
{
  public:
    /** Enable or disable one category. */
    static void
    enable(TraceCat cat, bool on = true)
    {
        flags()[static_cast<unsigned>(cat)].store(
            on, std::memory_order_release);
    }

    /** Enable every category (verbose protocol dumps). */
    static void
    enableAll(bool on = true)
    {
        for (unsigned i = 0;
             i < static_cast<unsigned>(TraceCat::NumCats); ++i) {
            flags()[i].store(on, std::memory_order_release);
        }
    }

    /** @return true iff @p cat is currently traced. */
    static bool
    on(TraceCat cat)
    {
        return flags()[static_cast<unsigned>(cat)].load(
            std::memory_order_relaxed);
    }

  private:
    static std::atomic<bool> *
    flags()
    {
        static std::atomic<bool>
            f[static_cast<unsigned>(TraceCat::NumCats)] = {};
        return f;
    }
};

/**
 * Abort the simulation due to an internal simulator bug.
 * Mirrors gem5 panic(): this should never fire regardless of user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit the simulation due to a user/configuration error.
 * Mirrors gem5 fatal().
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr without stopping the simulation. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a trace line if @p cat is enabled (prefixed with the category). */
void tracef(TraceCat cat, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace tcc

#endif // TCC_COMMON_LOG_HH
