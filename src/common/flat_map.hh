/**
 * @file
 * Open-addressing hash containers for the simulator's per-event hot
 * paths. The standard library's node-based `std::unordered_map` costs
 * one cache-missing pointer chase per lookup plus one allocation per
 * insert; on paths executed once per simulated event (directory entry
 * lookup, functional memory reads, the commit engine's per-directory
 * bookkeeping) that dominates the instruction budget. FlatMap stores
 * slots contiguously and resolves collisions with robin-hood linear
 * probing:
 *
 *  - power-of-two capacity, index = mix(key) & mask (the multiplicative
 *    mixer breaks up the simulator's highly regular address keys);
 *  - one byte of metadata per slot holding probe-distance + 1 (0 means
 *    empty), kept in a separate array so probing scans a dense byte
 *    stream instead of striding over whole slots;
 *  - robin-hood insertion (the probe steals the slot of any entry
 *    closer to home), which bounds the variance of probe lengths;
 *  - tombstone-free backward-shift erase: removal shifts the following
 *    displacement chain back one slot, so lookups never scan over
 *    deleted ghosts and the table never degrades with churn.
 *
 * The API mirrors the subset of `std::unordered_map` the simulator
 * uses (find / end / operator[] / emplace / erase / clear / reserve /
 * size / count / contains / iteration), so call sites swap with a type
 * change only. Iteration order is the table's slot order - unspecified,
 * like the standard containers; code whose *behaviour* depends on
 * ordering (e.g. message emission) must iterate over a sorted external
 * structure instead.
 *
 * clear() keeps the slot arrays, so per-transaction state that is
 * cleared and refilled every attempt (the processor's write buffer and
 * commit-tracking sets) performs no steady-state allocation, matching
 * the event kernel's allocation-free design (DESIGN.md section 7).
 */

#ifndef TCC_COMMON_FLAT_MAP_HH
#define TCC_COMMON_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/arena.hh"

namespace tcc {

namespace detail {

/** Finalizer of splitmix64: full-avalanche mix for integer keys. */
inline std::uint64_t
mixBits(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

/** Default hash: bit-mix integral keys, fall back to std::hash. */
template <typename K>
struct FlatHash {
    std::size_t
    operator()(const K &k) const
    {
        if constexpr (std::is_integral_v<K> || std::is_enum_v<K>) {
            return static_cast<std::size_t>(
                mixBits(static_cast<std::uint64_t>(k)));
        } else {
            return mixBits(std::hash<K>{}(k));
        }
    }
};

} // namespace detail

/**
 * Robin-hood open-addressing hash map. Keys and mapped values must be
 * movable; references and iterators are invalidated by any mutation
 * (insert may rehash, erase backward-shifts).
 */
template <typename K, typename V,
          typename Hash = detail::FlatHash<K>>
class FlatMap
{
  public:
    /** Slot layout: named first/second so structured bindings and
     *  `it->second` read like the standard container. */
    struct Slot {
        K first{};
        V second{};
    };

    FlatMap() = default;

    explicit FlatMap(std::size_t expected) { reserve(expected); }

    /** Back the table with @p arena (nullptr = global heap). */
    explicit FlatMap(Arena *arena)
        : slots(ArenaAllocator<Slot>(arena)),
          meta(ArenaAllocator<std::uint8_t>(arena))
    {}

    FlatMap(Arena *arena, std::size_t expected) : FlatMap(arena)
    {
        reserve(expected);
    }

    std::size_t size() const { return used; }
    bool empty() const { return used == 0; }

    /** Grow so @p expected entries fit without rehashing. */
    void
    reserve(std::size_t expected)
    {
        std::size_t want = kMinCapacity;
        // Grow while the load factor at `expected` would exceed 7/8.
        while (expected * 8 > want * 7)
            want <<= 1;
        if (want > capacity())
            rehash(want);
    }

    /** Remove every entry; keeps the allocated table. */
    void
    clear()
    {
        if (used == 0)
            return;
        std::fill(meta.begin(), meta.end(), std::uint8_t{0});
        // Reset slots so element destructors of heavy V (vectors) run
        // now rather than holding memory until overwrite.
        for (auto &s : slots)
            s = Slot{};
        used = 0;
    }

    // --- iteration (slot order; unspecified like unordered_map) ------
    template <bool Const>
    class Iter
    {
        using Owner = std::conditional_t<Const, const FlatMap, FlatMap>;
        using Ref = std::conditional_t<Const, const Slot &, Slot &>;
        using Ptr = std::conditional_t<Const, const Slot *, Slot *>;

      public:
        Iter() = default;
        Iter(Owner *m, std::size_t i) : owner(m), idx(i) { skipEmpty(); }

        Ref operator*() const { return owner->slots[idx]; }
        Ptr operator->() const { return &owner->slots[idx]; }

        Iter &
        operator++()
        {
            ++idx;
            skipEmpty();
            return *this;
        }

        bool
        operator==(const Iter &o) const
        {
            return idx == o.idx;
        }
        bool
        operator!=(const Iter &o) const
        {
            return idx != o.idx;
        }

        /** Const iterators compare against mutable ones (find/end mix). */
        template <bool C2>
        bool
        operator==(const Iter<C2> &o) const
        {
            return idx == o.index();
        }

        std::size_t index() const { return idx; }

      private:
        void
        skipEmpty()
        {
            while (owner && idx < owner->meta.size() &&
                   owner->meta[idx] == 0)
                ++idx;
        }

        Owner *owner = nullptr;
        std::size_t idx = 0;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, meta.size()); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const
    {
        return const_iterator(this, meta.size());
    }

    // --- lookup -------------------------------------------------------
    iterator
    find(const K &key)
    {
        const std::size_t i = findIndex(key);
        return i == kNotFound ? end() : iterator(this, i);
    }

    const_iterator
    find(const K &key) const
    {
        const std::size_t i = findIndex(key);
        return i == kNotFound ? end() : const_iterator(this, i);
    }

    bool contains(const K &key) const { return findIndex(key) != kNotFound; }
    std::size_t count(const K &key) const { return contains(key) ? 1 : 0; }

    V &
    operator[](const K &key)
    {
        return slots[insertIndex(key)].second;
    }

    /** emplace-like insert: default-construct the value if absent.
     *  @return (iterator, inserted). Extra construction args are
     *  assigned into the value on first insertion. */
    template <typename... Args>
    std::pair<iterator, bool>
    emplace(const K &key, Args &&...args)
    {
        const std::size_t before = used;
        const std::size_t i = insertIndex(key);
        const bool inserted = used != before;
        if (inserted && sizeof...(Args) > 0)
            slots[i].second = V(std::forward<Args>(args)...);
        return {iterator(this, i), inserted};
    }

    std::pair<iterator, bool>
    insert(const std::pair<K, V> &kv)
    {
        const std::size_t before = used;
        const std::size_t i = insertIndex(kv.first);
        const bool inserted = used != before;
        if (inserted)
            slots[i].second = kv.second;
        return {iterator(this, i), inserted};
    }

    // --- erase (tombstone-free backward shift) -----------------------
    std::size_t
    erase(const K &key)
    {
        const std::size_t i = findIndex(key);
        if (i == kNotFound)
            return 0;
        eraseAt(i);
        return 1;
    }

    iterator
    erase(iterator it)
    {
        eraseAt(it.index());
        // After a backward shift the same index holds the next element
        // (or a hole the iterator skips over).
        return iterator(this, it.index());
    }

  private:
    static constexpr std::size_t kMinCapacity = 16;
    static constexpr std::size_t kNotFound =
        static_cast<std::size_t>(-1);

    std::size_t capacity() const { return meta.size(); }

    std::size_t
    homeOf(const K &key) const
    {
        return Hash{}(key) & (capacity() - 1);
    }

    /** Index of @p key's slot, or kNotFound. The probe stops early at
     *  any slot whose resident is closer to home than the probe is
     *  long - the robin-hood invariant guarantees the key cannot be
     *  further down the chain. */
    std::size_t
    findIndex(const K &key) const
    {
        if (used == 0)
            return kNotFound;
        const std::size_t mask = capacity() - 1;
        std::size_t i = homeOf(key);
        std::uint8_t dist = 1;
        while (true) {
            const std::uint8_t m = meta[i];
            if (m == 0 || m < dist)
                return kNotFound;
            if (m == dist && slots[i].first == key)
                return i;
            i = (i + 1) & mask;
            ++dist;
        }
    }

    /** Slot index for @p key, inserting a default-constructed value if
     *  absent (robin-hood displacement on the way). */
    std::size_t
    insertIndex(const K &key)
    {
        if (capacity() == 0 || (used + 1) * 8 > capacity() * 7)
            rehash(capacity() ? capacity() * 2 : kMinCapacity);

        const std::size_t mask = capacity() - 1;
        std::size_t i = homeOf(key);
        std::uint8_t dist = 1;
        K k = key;
        V v{};
        std::size_t result = kNotFound;
        while (true) {
            std::uint8_t &m = meta[i];
            if (m == 0) {
                slots[i].first = std::move(k);
                slots[i].second = std::move(v);
                m = dist;
                ++used;
                return result == kNotFound ? i : result;
            }
            if (result == kNotFound && m == dist &&
                slots[i].first == key)
                return i; // already present
            if (m < dist) {
                // Rich entry found: steal the slot, carry the evictee.
                std::swap(slots[i].first, k);
                std::swap(slots[i].second, v);
                std::swap(m, dist);
                if (result == kNotFound)
                    result = i; // the key now lives here
            }
            i = (i + 1) & mask;
            ++dist;
            if (dist == 0) {
                // Probe-distance byte overflow (pathological clustering):
                // grow and restart with the carried entry included.
                rehashWith(capacity() * 2, std::move(k), std::move(v));
                return findIndex(key);
            }
        }
    }

    void
    eraseAt(std::size_t i)
    {
        const std::size_t mask = capacity() - 1;
        // Shift the following displacement chain back one slot until a
        // hole or an at-home entry terminates it.
        std::size_t next = (i + 1) & mask;
        while (meta[next] > 1) {
            slots[i] = std::move(slots[next]);
            meta[i] = static_cast<std::uint8_t>(meta[next] - 1);
            i = next;
            next = (next + 1) & mask;
        }
        slots[i] = Slot{};
        meta[i] = 0;
        --used;
    }

    void
    rehash(std::size_t new_cap)
    {
        // Move-construction carries the (possibly arena-backed)
        // allocator into the temporaries; assign() reuses the
        // moved-from vectors' allocators, so the table stays in its
        // arena across growth.
        SlotVec old_slots = std::move(slots);
        MetaVec old_meta = std::move(meta);
        slots.assign(new_cap, Slot{});
        meta.assign(new_cap, 0);
        used = 0;
        for (std::size_t i = 0; i < old_meta.size(); ++i) {
            if (old_meta[i] == 0)
                continue;
            const std::size_t at = insertIndex(old_slots[i].first);
            slots[at].second = std::move(old_slots[i].second);
        }
    }

    void
    rehashWith(std::size_t new_cap, K k, V v)
    {
        rehash(new_cap);
        const std::size_t at = insertIndex(k);
        slots[at].second = std::move(v);
    }

    using SlotVec = std::vector<Slot, ArenaAllocator<Slot>>;
    using MetaVec = std::vector<std::uint8_t,
                                ArenaAllocator<std::uint8_t>>;

    SlotVec slots;
    MetaVec meta;
    std::size_t used = 0;
};

/**
 * Open-addressing hash set over FlatMap with an empty payload. Covers
 * the simulator's membership-only uses (the commit engine's
 * marks-done / validated-directory tracking).
 */
template <typename K, typename Hash = detail::FlatHash<K>>
class FlatSet
{
    struct Empty {
    };
    using Map = FlatMap<K, Empty, Hash>;

  public:
    FlatSet() = default;
    explicit FlatSet(std::size_t expected) : map(expected) {}
    explicit FlatSet(Arena *arena) : map(arena) {}
    FlatSet(Arena *arena, std::size_t expected) : map(arena, expected)
    {}

    std::size_t size() const { return map.size(); }
    bool empty() const { return map.empty(); }
    void clear() { map.clear(); }
    void reserve(std::size_t expected) { map.reserve(expected); }

    bool contains(const K &key) const { return map.contains(key); }
    std::size_t count(const K &key) const { return map.count(key); }

    /** @return true iff the key was newly inserted. */
    bool
    insert(const K &key)
    {
        return map.emplace(key).second;
    }

    std::size_t erase(const K &key) { return map.erase(key); }

    /** Visit every element (slot order). */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (const auto &slot : map)
            fn(slot.first);
    }

  private:
    Map map;
};

} // namespace tcc

#endif // TCC_COMMON_FLAT_MAP_HH
