/**
 * @file
 * SkipVector: the directory's Skip Vector (paper Figure 4) as a packed
 * bit ring. Bit i records that TID (nowServing + i) has retired -
 * skipped, aborted, or committed. The previous representation was a
 * std::deque<bool> popped one element at a time; every Skip/Commit/
 * Abort handler runs this structure, so it is stored as 64-bit words
 * in a ring buffer:
 *
 *  - membership (double-retire detection) is one bit test;
 *  - recording a retirement is one bit set;
 *  - advancing the NSTID consumes the leading run of set bits with
 *    count-trailing-ones word operations instead of a per-TID loop.
 *
 * The window only needs to span the TIDs in flight at one directory
 * (bounded by the processor count plus network skew), so the ring
 * stays tiny; growth re-lays the bits into a larger power-of-two ring
 * and is effectively a one-time event per run.
 */

#ifndef TCC_COMMON_SKIP_VECTOR_HH
#define TCC_COMMON_SKIP_VECTOR_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/arena.hh"

namespace tcc {

/** Window of retired-TID bits relative to the NSTID (see file docs). */
class SkipVector
{
  public:
    SkipVector() = default;

    /** Back the ring with @p arena (nullptr = global heap). */
    explicit SkipVector(Arena *arena)
        : words(ArenaAllocator<std::uint64_t>(arena))
    {}

    /** @return true iff offset @p idx (from the NSTID) is retired. */
    bool
    test(std::size_t idx) const
    {
        if (idx >= capBits)
            return false;
        const std::size_t pos = (head + idx) & (capBits - 1);
        return (words[pos >> 6] >> (pos & 63)) & 1;
    }

    /** Record offset @p idx as retired (grows the window as needed).
     *  Idempotent: re-setting a retired offset is a no-op. */
    void
    set(std::size_t idx)
    {
        if (idx >= capBits)
            grow(idx + 1);
        const std::size_t pos = (head + idx) & (capBits - 1);
        const std::uint64_t bit = std::uint64_t{1} << (pos & 63);
        if (words[pos >> 6] & bit)
            return;
        words[pos >> 6] |= bit;
        ++population;
    }

    /**
     * Consume the leading run of set bits: clears them, slides the
     * window forward past them, and returns the run length (the number
     * of TIDs the NSTID advances by).
     */
    std::size_t
    popLeadingRun()
    {
        std::size_t n = 0;
        while (population > 0) {
            const std::size_t wi = head >> 6;
            const unsigned b = static_cast<unsigned>(head & 63);
            const std::uint64_t w = words[wi] >> b;
            const unsigned avail = 64 - b;
            unsigned run = static_cast<unsigned>(std::countr_one(w));
            if (run == 0)
                break;
            const unsigned take = run < avail ? run : avail;
            const std::uint64_t mask =
                take == 64 ? ~std::uint64_t{0}
                           : ((std::uint64_t{1} << take) - 1) << b;
            words[wi] &= ~mask;
            head = (head + take) & (capBits - 1);
            n += take;
            population -= take;
            if (run < avail)
                break; // the run ended inside this word
        }
        return n;
    }

    /** Number of retired bits currently recorded. */
    std::size_t count() const { return population; }

    bool empty() const { return population == 0; }

    /** Window capacity in bits (diagnostics). */
    std::size_t windowBits() const { return capBits; }

  private:
    void
    grow(std::size_t min_bits)
    {
        std::size_t new_cap = capBits ? capBits * 2 : 64;
        while (new_cap < min_bits)
            new_cap *= 2;
        WordVec fresh(new_cap / 64, 0, words.get_allocator());
        // Re-lay the window: logical offset i moves to bit i.
        for (std::size_t i = 0; i < capBits; ++i) {
            if (test(i))
                fresh[i >> 6] |= std::uint64_t{1} << (i & 63);
        }
        words = std::move(fresh);
        head = 0;
        capBits = new_cap;
    }

    using WordVec =
        std::vector<std::uint64_t, ArenaAllocator<std::uint64_t>>;

    WordVec words;
    std::size_t capBits = 0;    ///< ring capacity in bits (power of 2)
    std::size_t head = 0;       ///< ring bit position of offset 0
    std::size_t population = 0; ///< number of set bits
};

} // namespace tcc

#endif // TCC_COMMON_SKIP_VECTOR_HH
