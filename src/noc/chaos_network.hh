/**
 * @file
 * Fault-injection network decorator ("chaos network").
 *
 * ChaosNetwork wraps any transport (Mesh or Ideal) and perturbs its
 * delivery schedule under a seeded deterministic random stream:
 *
 *  - per-message latency jitter: every message picks up an extra
 *    uniform delay in [0, jitter] cycles after the base transport
 *    delivers it;
 *  - bounded reordering: with probability reorderProb a message is
 *    additionally held for up to reorderWindow cycles, letting later
 *    messages between the same endpoints overtake it (the total extra
 *    delay is bounded by jitter + reorderWindow, so reordering is
 *    bounded, never starvation);
 *  - duplication of idempotent replies: with probability duplicateProb
 *    a LoadReply or ProbeReply is sent twice, the copy lagging by
 *    duplicateLag cycles. Only reply types the protocol tolerates
 *    receiving twice are eligible - request/ack types (TidReply, Inv,
 *    InvAck, ...) are never duplicated, because a real transport that
 *    duplicates those has genuinely broken exactly-once semantics the
 *    protocol does not (and per the paper need not) defend against.
 *
 * All perturbations are drawn from one Rng seeded from ChaosConfig, and
 * every draw happens inside the deterministic event loop, so a run is a
 * pure function of (seed, config): golden-fingerprint and
 * serial-vs-parallel identity tests keep working with chaos enabled.
 *
 * Where the protocol genuinely requires point-to-point ordering the
 * messages carry explicit tags that restore it (Message::seq on load
 * replies, Message::tid on write-backs and marks); see DESIGN.md
 * section 10 for the full ordering audit.
 */

#ifndef TCC_NOC_CHAOS_NETWORK_HH
#define TCC_NOC_CHAOS_NETWORK_HH

#include <memory>
#include <string>
#include <vector>

#include "noc/network.hh"
#include "sim/random.hh"

namespace tcc {

/** Fault-injection knobs; all delays in cycles. */
struct ChaosConfig {
    /** Layer the faults on an IdealNetwork instead of the mesh. */
    bool overIdeal = false;
    /** Extra uniform delay in [0, jitter] per message. */
    Tick jitter = 6;
    /** Probability a message is held for an extra reorder delay. */
    double reorderProb = 0.25;
    /** Maximum extra hold for a reordered message. */
    Tick reorderWindow = 24;
    /** Probability an idempotent reply is delivered twice. */
    double duplicateProb = 0.0;
    /** The duplicate copy enters the transport this much later. */
    Tick duplicateLag = 9;
    /** Seed of the fault stream (part of the run fingerprint). */
    std::uint64_t seed = 0xC7A05;
};

/** Named fault presets for the CLI / sweep drivers. */
ChaosConfig chaosPreset(const std::string &name);

/** The preset names chaosPreset() accepts. */
const std::vector<std::string> &chaosPresetNames();

/** True when the protocol tolerates receiving @p t twice. */
bool chaosDuplicable(MsgType t);

/**
 * Network decorator owning the base transport. Endpoint handlers are
 * registered on the decorator; the base transport's endpoints all feed
 * back into the decorator, which applies the extra chaos delay and
 * performs the final delivery (so the System's traffic statistics and
 * protocol trace come from the decorator, once per message).
 */
class ChaosNetwork : public Network
{
  public:
    struct ChaosStats {
        std::uint64_t messages = 0;     ///< messages through send()
        std::uint64_t duplicates = 0;   ///< extra copies injected
        std::uint64_t reordersHeld = 0; ///< messages given a hold
        std::uint64_t extraDelayTotal = 0; ///< sum of injected cycles
        Tick maxExtraDelay = 0;
    };

    ChaosNetwork(EventQueue &eq, std::uint32_t num_nodes,
                 std::unique_ptr<Network> base_net,
                 const ChaosConfig &cfg, Arena *arena = nullptr);

    void send(Message msg) override;

    /** The wrapped transport (diagnostics / tests). */
    const Network &base() const { return *inner; }

    const ChaosStats &chaosStats() const { return faultStats; }

    const ChaosConfig &chaosCfg() const { return config; }

  private:
    void onBaseDeliver(const Message &msg);

    std::unique_ptr<Network> inner;
    ChaosConfig config;
    Rng rng;
    /** Parking slab for the lagged duplicate copies. */
    ObjectPool<Message> dupPool;
    ChaosStats faultStats;
};

} // namespace tcc

#endif // TCC_NOC_CHAOS_NETWORK_HH
