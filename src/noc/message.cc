#include "noc/message.hh"

#include <cstdio>

namespace tcc {

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::LoadReq: return "LoadReq";
      case MsgType::LoadReply: return "LoadReply";
      case MsgType::TidReq: return "TidReq";
      case MsgType::TidReply: return "TidReply";
      case MsgType::Skip: return "Skip";
      case MsgType::Probe: return "Probe";
      case MsgType::ProbeReply: return "ProbeReply";
      case MsgType::Mark: return "Mark";
      case MsgType::Commit: return "Commit";
      case MsgType::Abort: return "Abort";
      case MsgType::WriteBack: return "WriteBack";
      case MsgType::DataReq: return "DataReq";
      case MsgType::FlushData: return "FlushData";
      case MsgType::Inv: return "Inv";
      case MsgType::InvAck: return "InvAck";
      case MsgType::PartialCommit: return "PartialCommit";
      case MsgType::PartialAck: return "PartialAck";
      default: return "?";
    }
}

std::string
Message::toString() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%s %u->%u addr=%llx tid=%lld",
                  msgTypeName(type), src, dst,
                  (unsigned long long)addr,
                  tid == kInvalidTid ? -1LL : (long long)tid);
    return buf;
}

std::uint32_t
msgBytes(MsgType t, std::uint32_t line_bytes)
{
    switch (t) {
      case MsgType::LoadReply:
      case MsgType::FlushData:
      case MsgType::WriteBack:
        return 16 + line_bytes;
      case MsgType::LoadReq:
      case MsgType::Mark:
      case MsgType::Inv:
      case MsgType::DataReq:
        return 16; // header + address (+ word flags)
      default:
        return 8;  // header + TID (skip/probe/commit/acks)
    }
}

TrafficClass
trafficClassOf(MsgType t)
{
    switch (t) {
      case MsgType::LoadReq:
      case MsgType::LoadReply:
        return TrafficClass::Miss;
      case MsgType::WriteBack:
        return TrafficClass::WriteBack;
      case MsgType::DataReq:
      case MsgType::FlushData:
        return TrafficClass::Shared;
      default:
        return TrafficClass::Overhead;
    }
}

} // namespace tcc
