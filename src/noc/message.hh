/**
 * @file
 * Coherence messages for the Scalable TCC protocol. The request types
 * mirror Table 1 of the paper; the remaining types are the replies and
 * acknowledgements those requests imply.
 */

#ifndef TCC_NOC_MESSAGE_HH
#define TCC_NOC_MESSAGE_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace tcc {

/**
 * Message opcodes.
 *
 * Paper Table 1 requests:
 *   LoadReq     "Load Request"  load a cache line
 *   TidReq      "TID Request"   request a transaction identifier
 *   Skip        instructs a directory to skip a given TID
 *   Probe       probes for a Now Serving TID
 *   Mark        marks a line intended to be committed
 *   Commit      instructs a directory to commit marked lines
 *   Abort       instructs a directory to abort a given TID
 *   WriteBack   write back a committed line, removing it from the cache
 *   FlushData   "Flush" - write back a committed line (owner responds
 *               to a DataReq, invalidating its copy)
 *   DataReq     "Data Request" - directory asks the owner to flush
 *
 * Replies / acks:
 *   LoadReply, TidReply, ProbeReply, Inv, InvAck
 */
enum class MsgType : std::uint8_t {
    LoadReq,
    LoadReply,
    TidReq,
    TidReply,
    Skip,
    Probe,
    ProbeReply,
    Mark,
    Commit,
    Abort,
    WriteBack,
    DataReq,
    FlushData,
    Inv,
    InvAck,
    /**
     * Overflow virtualization ("solo mode", substituting for the
     * paper's VTM/XTM reference): commit a batch of marked lines
     * without retiring the TID, so an unviolable oldest transaction
     * can drain speculative state that no longer fits in its cache.
     */
    PartialCommit,
    /** Directory -> processor: the partial batch fully committed. */
    PartialAck,
};

/** Human-readable opcode name (tracing / tests). */
const char *msgTypeName(MsgType t);

/**
 * One protocol message. A single POD struct (rather than a class
 * hierarchy) keeps the hot path allocation-free; unused fields are
 * simply ignored by each opcode.
 */
struct Message {
    MsgType type = MsgType::LoadReq;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;

    /** Line-aligned address (Load/Mark/Inv/WriteBack/...). */
    Addr addr = 0;

    /** Transaction ID this message belongs to or reports. */
    Tid tid = kInvalidTid;

    /**
     * Per-word flags within the line. For Mark: the speculatively
     * written words; for Inv: the committed words (used for word-level
     * conflict detection). All-ones under line granularity.
     */
    std::uint64_t wordMask = 0;

    /** Probe: true when the prober intends to commit (write) here. */
    bool wantWrite = false;

    /** ProbeReply: the directory's Now-Serving TID at reply time. */
    Tid nstid = kInvalidTid;

    /**
     * FlushData: true when this flush answers an invalidation of a
     * dirty line during a commit (it doubles as the InvAck); false when
     * it answers a DataReq.
     */
    bool invResponse = false;

    /** FlushData: false when the owner no longer had the dirty data
     *  (its WriteBack is already in flight). */
    bool hadData = true;

    /**
     * InvAck / FlushData(invResponse): the acking processor still
     * holds speculative (SR/SM) state on this line and must stay in
     * the sharers list. Without this, a transaction that survives a
     * non-overlapping word-level invalidation would silently stop
     * receiving invalidations for the words it *did* read.
     */
    bool keepSharer = false;

    /** Commit: number of Mark messages the directory should have. */
    std::uint32_t numMarks = 0;

    /**
     * LoadReq / LoadReply: per-requester sequence number echoed by the
     * directory in the reply. On a network that can duplicate or
     * reorder replies, the miss handler matches replies against the
     * outstanding request's sequence; without the tag, a duplicated
     * reply from an earlier request could satisfy a *later* miss to
     * the same line before the directory re-registers the requester as
     * a sharer - a silently missed conflict window.
     */
    std::uint32_t seq = 0;

    /** Payload size in bytes (for traffic accounting), set by sender. */
    std::uint32_t bytes = 0;

    /** Short rendering for traces. */
    std::string toString() const;
};

/** Traffic classes for the Figure 9 bandwidth breakdown. */
enum class TrafficClass : std::uint8_t {
    Overhead,  ///< protocol control: TID, skip, probe, mark, commit, acks
    Miss,      ///< load requests + data replies from memory
    WriteBack, ///< evicted/flushed committed data to memory
    Shared,    ///< cache-to-cache transfers (DataReq forwarding)
    NumClasses,
};

/** Map an opcode to its Figure-9 traffic class. */
TrafficClass trafficClassOf(MsgType t);

/**
 * Wire size of a message: header-only control messages, address
 * messages, or address + one line of data.
 */
std::uint32_t msgBytes(MsgType t, std::uint32_t line_bytes);

} // namespace tcc

#endif // TCC_NOC_MESSAGE_HH
