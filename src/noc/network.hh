/**
 * @file
 * Interconnection network models. The paper evaluates a 2D grid with
 * 3-cycle links (swept 2-8 in Figure 8); MeshNetwork models that
 * topology with XY dimension-order routing, per-link serialization and
 * contention. IdealNetwork delivers with a fixed latency and is used in
 * unit tests to isolate protocol logic from network timing.
 */

#ifndef TCC_NOC_NETWORK_HH
#define TCC_NOC_NETWORK_HH

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "noc/message.hh"
#include "obs/trace_recorder.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "sim/random.hh"

namespace tcc {

/**
 * Commit fan-out delivery strategy (NetworkConfig::multicast).
 *
 * Flat is the paper's implicit model: the sender's NIC serializes one
 * point-to-point copy per destination, so a commit touching D
 * directories costs D serialized injections at one NIC - O(N) once
 * commit degenerates into a broadcast. Tree stages the copies through
 * a k-ary combining tree embedded in the mesh (relays are destination
 * nodes; every edge still pays the full XY route with contention), so
 * no NIC on the critical path serializes more than k copies per level:
 * O(k log_k N) instead of O(N). The tree changes *timing only* - the
 * same copies reach the same destinations, so protocol outcomes are
 * unchanged (gated by tests and bench_scaling).
 */
struct MulticastConfig {
    enum class Topology { Flat, Tree };
    Topology topology = Topology::Flat;
    /** Tree fan-out k (children per relay); >= 2. */
    std::uint32_t fanout = 4;
    /** Destination count below which even a configured tree falls
     *  back to flat (staging overhead beats serialization savings
     *  only once the fan-out is wide). */
    std::uint32_t minDests = 8;
};

/** What one multicast cost (ledger + bench accounting). */
struct MulticastReceipt {
    /** Copies delivered (== destination count). */
    std::uint32_t dests = 0;
    /** Serialized NIC injections on the critical path: the maximum,
     *  over destinations, of send events any single NIC queued ahead
     *  of that copy's route. Flat: dests. Tree: O(k log_k dests). */
    std::uint32_t nicSerialized = 0;
    /** Relay levels traversed (1 for flat). */
    std::uint32_t depth = 0;
};

/** Per-class traffic counters feeding the Figure 9 reproduction. */
struct NetworkStats {
    std::uint64_t messages = 0;
    std::uint64_t totalBytes = 0;
    /** Bytes by traffic class (indexed by TrafficClass). */
    std::uint64_t classBytes[static_cast<int>(TrafficClass::NumClasses)] =
        {};
    /** Bytes received per node (Figure 9 is per-directory traffic). */
    std::vector<std::uint64_t> nodeBytes;
    std::uint64_t totalHops = 0;
    /** Multicast fan-outs issued and their summed critical-path
     *  NIC-serialized injections (the O(N)-vs-O(log N) axis). */
    std::uint64_t multicasts = 0;
    std::uint64_t multicastNicEvents = 0;

    void
    account(const Message &msg, unsigned hops)
    {
        ++messages;
        totalBytes += msg.bytes;
        classBytes[static_cast<int>(trafficClassOf(msg.type))] +=
            msg.bytes;
        if (msg.dst < nodeBytes.size())
            nodeBytes[msg.dst] += msg.bytes;
        totalHops += hops;
    }

    /** Fold another endpoint's counters into this one (PDES domain
     *  shims merge into the System-level network at finalize). */
    void
    merge(const NetworkStats &o)
    {
        messages += o.messages;
        totalBytes += o.totalBytes;
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(TrafficClass::NumClasses); ++i)
            classBytes[i] += o.classBytes[i];
        for (std::size_t n = 0;
             n < nodeBytes.size() && n < o.nodeBytes.size(); ++n)
            nodeBytes[n] += o.nodeBytes[n];
        totalHops += o.totalHops;
        multicasts += o.multicasts;
        multicastNicEvents += o.multicastNicEvents;
    }
};

/**
 * Abstract network: point-to-point message delivery between nodes.
 * Delivery is always asynchronous through the event queue, even with
 * zero latency, so handlers never run re-entrantly inside send().
 */
class Network
{
  public:
    using Handler = std::function<void(const Message &)>;

    Network(EventQueue &eq, std::uint32_t num_nodes,
            Arena *arena = nullptr)
        : eventq(eq), handlers(num_nodes), msgPool(arena)
    {
        netStats.nodeBytes.assign(num_nodes, 0);
    }

    virtual ~Network() = default;

    /** Register the message handler for node @p n. */
    void
    connect(NodeId n, Handler h)
    {
        handlers.at(n) = std::move(h);
    }

    /** Number of endpoints. */
    std::uint32_t numNodes() const { return handlers.size(); }

    /**
     * Send @p msg from msg.src to msg.dst. @p msg.bytes must already
     * include header + payload. Local (src == dst) messages still pay
     * a minimal turnaround latency of one cycle.
     */
    virtual void send(Message msg) = 0;

    /**
     * Deliver a copy of @p proto to every node in @p dsts, in list
     * order. Call sites pass ascending destination lists; the flat
     * strategy then emits exactly the per-destination send() loop it
     * replaced, byte for byte. Mesh networks may stage the copies
     * through a combining tree instead (see MulticastConfig) - same
     * copies, different timing. @p proto.dst is ignored.
     */
    MulticastReceipt
    multicast(const Message &proto, std::span<const NodeId> dsts)
    {
        if (dsts.empty())
            return {};
        const MulticastReceipt r = doMulticast(proto, dsts);
        ++netStats.multicasts;
        netStats.multicastNicEvents += r.nicSerialized;
        return r;
    }

    /** Select the fan-out strategy (defaults to Flat). */
    void setMulticast(const MulticastConfig &cfg) { mcastCfg = cfg; }
    const MulticastConfig &multicastCfg() const { return mcastCfg; }

    /** Cumulative traffic statistics. */
    const NetworkStats &stats() const { return netStats; }

    /** Reset traffic statistics (e.g., after warmup). */
    void
    resetStats()
    {
        netStats = NetworkStats{};
        netStats.nodeBytes.assign(handlers.size(), 0);
    }

    /** In-flight messages currently owned by the pool (diagnostics). */
    std::size_t messagesInFlight() const { return msgPool.live(); }

    /** Attach the System's protocol event ring (may be null). */
    void setTraceRecorder(TraceRecorder *rec) { tracer = rec; }

    /**
     * PDES plumbing: deliver @p msg at absolute tick @p when without
     * accounting stats or emitting NetSend - the sending domain's shim
     * already did both when the message entered its mailbox. Called by
     * the window coordinator on the destination domain's shim
     * (sim/domain.hh); NetDeliver is still emitted at dispatch.
     */
    void
    deliverAt(Message msg, Tick when)
    {
        Message *slot = msgPool.alloc(std::move(msg));
        eventq.scheduleAt(when, [this, slot]() { dispatch(slot); });
    }

    /** PDES plumbing: fold a domain shim's traffic counters into this
     *  network's (the System-level report reads one stats object). */
    void accumulateStats(const NetworkStats &s) { netStats.merge(s); }

  protected:
    /**
     * Flat fan-out: one point-to-point send per destination through
     * the (possibly overridden, possibly decorated) send() - the
     * default for every network model and the bit-identity baseline
     * the tree strategies are gated against.
     */
    virtual MulticastReceipt
    doMulticast(const Message &proto, std::span<const NodeId> dsts)
    {
        for (NodeId d : dsts) {
            Message copy = proto;
            copy.dst = d;
            send(std::move(copy));
        }
        MulticastReceipt r;
        r.dests = static_cast<std::uint32_t>(dsts.size());
        r.nicSerialized = r.dests;
        r.depth = 1;
        return r;
    }

    /** Stats + NetSend trace for one send (delivery handled by the
     *  caller: either deliver() below or a PDES mailbox). */
    void
    accountSend(const Message &msg, unsigned hops)
    {
        netStats.account(msg, hops);
        traceEmit(tracer, TraceCat::Net, TraceEventKind::NetSend,
                  msg.src, msg.tid, msg.addr,
                  packNetInfo(msg.dst,
                              static_cast<std::uint8_t>(msg.type),
                              static_cast<std::uint8_t>(
                                  trafficClassOf(msg.type)),
                              msg.bytes));
    }

    /**
     * Deliver @p msg at now + @p delay and account @p hops. The message
     * is parked in a pooled slab for the flight; the deliver event only
     * captures {this, slot}, so it always fits the event queue's inline
     * callback storage - no per-hop heap allocation or Message copy
     * inside a closure. The slot is released right after the handler
     * returns, so handlers must not retain the reference.
     */
    void
    deliver(Message msg, Tick delay, unsigned hops)
    {
        accountSend(msg, hops);
        Message *slot = msgPool.alloc(std::move(msg));
        eventq.schedule(delay, [this, slot]() { dispatch(slot); });
    }

    EventQueue &eventq;
    MulticastConfig mcastCfg;

  private:
    void
    dispatch(Message *slot)
    {
        const NodeId dst = slot->dst;
        if (!handlers[dst])
            panic("message to unconnected node %u", dst);
        // NetDeliver packs the *source* in the route-info word, so the
        // pair of events for one message reads as src->dst twice.
        traceEmit(tracer, TraceCat::Net, TraceEventKind::NetDeliver,
                  dst, slot->tid, slot->addr,
                  packNetInfo(slot->src,
                              static_cast<std::uint8_t>(slot->type),
                              static_cast<std::uint8_t>(
                                  trafficClassOf(slot->type)),
                              slot->bytes));
        handlers[dst](*slot);
        msgPool.free(slot);
    }

    std::vector<Handler> handlers;
    NetworkStats netStats;
    ObjectPool<Message> msgPool;
    TraceRecorder *tracer = nullptr;
};

/** Fixed-latency, infinite-bandwidth network for unit tests. */
class IdealNetwork : public Network
{
  public:
    IdealNetwork(EventQueue &eq, std::uint32_t num_nodes,
                 Tick latency = 1, Arena *arena = nullptr)
        : Network(eq, num_nodes, arena), fixedLatency(latency)
    {}

    void
    send(Message msg) override
    {
        deliver(std::move(msg), fixedLatency, 1);
    }

  private:
    Tick fixedLatency;
};

/** Configuration for MeshNetwork. */
struct MeshConfig {
    /** Per-hop link traversal latency in cycles (Figure 8 sweeps this). */
    Tick hopLatency = 3;
    /** Link bandwidth in bytes per cycle (serialization delay). */
    std::uint32_t linkBytesPerCycle = 8;
    /** Fixed router pipeline delay per hop. */
    Tick routerDelay = 1;
    /**
     * Optional uniform random extra delay in [0, jitter] applied per
     * message. Nonzero values create out-of-order delivery, used to
     * exercise the protocol's unordered-network race handling (paper
     * Section 3.3 "Race Elimination").
     */
    Tick reorderJitter = 0;
    /** Seed for the jitter stream. */
    std::uint64_t seed = 12345;
};

/**
 * 2D mesh with XY dimension-order routing.
 *
 * Contention model: each directed link keeps the tick at which it next
 * becomes free. A message crossing the link departs at
 * max(arrival, linkFree) and occupies the link for its serialization
 * time. This analytic store-and-forward model captures queueing delay
 * and link saturation without per-flit events.
 */
class MeshNetwork : public Network
{
  public:
    MeshNetwork(EventQueue &eq, std::uint32_t num_nodes,
                const MeshConfig &cfg = MeshConfig{},
                Arena *arena = nullptr);

    void send(Message msg) override;

    /** Mesh side lengths chosen at construction. */
    std::uint32_t cols() const { return gridCols; }
    std::uint32_t rows() const { return gridRows; }

    /** Manhattan hop count between two nodes. */
    unsigned hopCount(NodeId a, NodeId b) const;

  protected:
    /** Combining-tree staging when configured (Topology::Tree and a
     *  wide enough destination list); flat otherwise. */
    MulticastReceipt doMulticast(const Message &proto,
                                 std::span<const NodeId> dsts) override;

  private:
    /** Directed link index from node @p n toward direction @p d. */
    std::size_t linkIndex(NodeId n, unsigned dir) const;

    /**
     * Walk the XY route from @p from, injected no earlier than
     * @p start, advancing per-link next-free ticks (contention), and
     * return the absolute arrival tick at @p to. @p from == @p to is
     * the one-cycle local loopback (no link usage). send() and the
     * tree multicast share this walk, so a tree edge pays exactly what
     * a point-to-point message between its endpoints would.
     */
    Tick routeArrival(NodeId from, NodeId to, std::uint32_t bytes,
                      Tick start, unsigned &hops);

    MeshConfig config;
    std::uint32_t gridCols;
    std::uint32_t gridRows;
    /** Next-free tick per directed link (4 directions per node). */
    std::vector<Tick> linkFree;
    Rng jitterRng;
    /** Tree-multicast scratch (sized on first use, then reused; never
     *  touched on the flat path). mcNicFree slot 0 is the source,
     *  slot i+1 is destination index i. */
    std::vector<Tick> mcArrival;
    std::vector<Tick> mcNicFree;
    std::vector<std::uint32_t> mcNicPath;
    std::vector<std::uint32_t> mcDepth;
};

} // namespace tcc

#endif // TCC_NOC_NETWORK_HH
