#include "noc/chaos_network.hh"

#include <algorithm>

#include "common/log.hh"

namespace tcc {

bool
chaosDuplicable(MsgType t)
{
    // A duplicated LoadReply is filtered by the Mshr sequence tag; a
    // duplicated ProbeReply is filtered by the commit engine's
    // marksDone / sValidated / TID-match guards. Everything else
    // (TID grants, invalidations, acks, data-carrying flushes) has
    // effects-on-receipt and must arrive exactly once.
    return t == MsgType::LoadReply || t == MsgType::ProbeReply;
}

ChaosConfig
chaosPreset(const std::string &name)
{
    ChaosConfig cfg;
    if (name == "light") {
        cfg.jitter = 3;
        cfg.reorderProb = 0.10;
        cfg.reorderWindow = 8;
        cfg.duplicateProb = 0.0;
    } else if (name == "jitter") {
        cfg.jitter = 12;
        cfg.reorderProb = 0.0;
        cfg.reorderWindow = 0;
        cfg.duplicateProb = 0.0;
    } else if (name == "reorder") {
        cfg.jitter = 4;
        cfg.reorderProb = 0.5;
        cfg.reorderWindow = 32;
        cfg.duplicateProb = 0.0;
    } else if (name == "dup") {
        cfg.jitter = 2;
        cfg.reorderProb = 0.1;
        cfg.reorderWindow = 8;
        cfg.duplicateProb = 0.2;
    } else if (name == "heavy") {
        cfg.jitter = 10;
        cfg.reorderProb = 0.4;
        cfg.reorderWindow = 40;
        cfg.duplicateProb = 0.1;
        cfg.duplicateLag = 17;
    } else {
        fatal("unknown chaos preset '%s' (try: light, jitter, reorder, "
              "dup, heavy)",
              name.c_str());
    }
    return cfg;
}

const std::vector<std::string> &
chaosPresetNames()
{
    static const std::vector<std::string> names = {
        "light", "jitter", "reorder", "dup", "heavy"};
    return names;
}

ChaosNetwork::ChaosNetwork(EventQueue &eq, std::uint32_t num_nodes,
                           std::unique_ptr<Network> base_net,
                           const ChaosConfig &cfg, Arena *arena)
    : Network(eq, num_nodes, arena), inner(std::move(base_net)),
      config(cfg), rng(cfg.seed), dupPool(arena)
{
    if (!inner)
        fatal("ChaosNetwork needs a base transport");
    if (inner->numNodes() != num_nodes)
        fatal("ChaosNetwork node count (%u) != base transport (%u)",
              num_nodes, inner->numNodes());
    // Every base endpoint funnels back into the decorator; the final
    // hop to the real handler happens in onBaseDeliver.
    for (NodeId n = 0; n < num_nodes; ++n)
        inner->connect(n,
                       [this](const Message &m) { onBaseDeliver(m); });
}

void
ChaosNetwork::send(Message msg)
{
    ++faultStats.messages;
    if (config.duplicateProb > 0.0 && chaosDuplicable(msg.type) &&
        rng.chance(config.duplicateProb)) {
        ++faultStats.duplicates;
        // The copy enters the base transport duplicateLag cycles
        // later, so it and the original contend and jitter
        // independently. Parked in a pool slab to keep the event
        // capture inline.
        Message *slot = dupPool.alloc(msg);
        eventq.schedule(config.duplicateLag, [this, slot]() {
            inner->send(*slot);
            dupPool.free(slot);
        });
    }
    inner->send(std::move(msg));
}

void
ChaosNetwork::onBaseDeliver(const Message &msg)
{
    // Draw the chaos delay for this delivery. Draw order is the base
    // transport's (deterministic) delivery order, so the whole run is
    // a function of (seed, config).
    Tick extra = config.jitter != 0 ? rng.below(config.jitter + 1) : 0;
    if (config.reorderProb > 0.0 && rng.chance(config.reorderProb)) {
        ++faultStats.reordersHeld;
        if (config.reorderWindow != 0)
            extra += rng.below(config.reorderWindow + 1);
    }
    faultStats.extraDelayTotal += extra;
    faultStats.maxExtraDelay = std::max(faultStats.maxExtraDelay, extra);
    // Final delivery through the decorator: stats and trace are
    // accounted here, once per (possibly duplicated) message. The base
    // transport's own counters stay untouched for diagnostics.
    deliver(msg, extra, 0);
}

} // namespace tcc
