#include "noc/network.hh"

#include <cmath>

namespace tcc {

namespace {

/** Smallest near-square grid that holds @p n nodes. */
std::uint32_t
gridSide(std::uint32_t n)
{
    std::uint32_t c = 1;
    while (c * c < n)
        ++c;
    return c;
}

enum Dir : unsigned { East = 0, West = 1, North = 2, South = 3 };

} // namespace

MeshNetwork::MeshNetwork(EventQueue &eq, std::uint32_t num_nodes,
                         const MeshConfig &cfg, Arena *arena)
    : Network(eq, num_nodes, arena), config(cfg),
      gridCols(gridSide(num_nodes)),
      gridRows((num_nodes + gridSide(num_nodes) - 1) /
               gridSide(num_nodes)),
      // Routes may pass through unpopulated grid slots when the node
      // count is not a perfect square, so size links for the full grid.
      linkFree(static_cast<std::size_t>(gridCols) * gridRows * 4, 0),
      jitterRng(cfg.seed)
{
    if (config.linkBytesPerCycle == 0)
        fatal("mesh linkBytesPerCycle must be nonzero");
}

std::size_t
MeshNetwork::linkIndex(NodeId n, unsigned dir) const
{
    return static_cast<std::size_t>(n) * 4 + dir;
}

unsigned
MeshNetwork::hopCount(NodeId a, NodeId b) const
{
    const int ax = static_cast<int>(a % gridCols);
    const int ay = static_cast<int>(a / gridCols);
    const int bx = static_cast<int>(b % gridCols);
    const int by = static_cast<int>(b / gridCols);
    return static_cast<unsigned>(std::abs(ax - bx) + std::abs(ay - by));
}

void
MeshNetwork::send(Message msg)
{
    const NodeId src = msg.src;
    const NodeId dst = msg.dst;
    if (src >= numNodes() || dst >= numNodes())
        panic("mesh send with bad endpoint %u->%u", src, dst);

    if (src == dst) {
        // Local loopback: one-cycle turnaround, no link usage.
        deliver(std::move(msg), 1, 0);
        return;
    }

    const Tick ser = std::max<Tick>(
        1, (msg.bytes + config.linkBytesPerCycle - 1) /
               config.linkBytesPerCycle);

    // Walk the XY route, advancing time across each link and updating
    // its next-free tick (store-and-forward with contention).
    Tick t = eventq.now() + config.routerDelay;
    unsigned hops = 0;
    int x = static_cast<int>(src % gridCols);
    int y = static_cast<int>(src / gridCols);
    const int dx = static_cast<int>(dst % gridCols);
    const int dy = static_cast<int>(dst / gridCols);
    NodeId cur = src;

    auto cross = [&](unsigned dir, NodeId next) {
        const std::size_t li = linkIndex(cur, dir);
        const Tick depart = std::max(t, linkFree[li]);
        linkFree[li] = depart + ser;
        t = depart + ser + config.hopLatency + config.routerDelay;
        cur = next;
        ++hops;
    };

    while (x != dx) {
        if (x < dx) {
            cross(East, cur + 1);
            ++x;
        } else {
            cross(West, cur - 1);
            --x;
        }
    }
    while (y != dy) {
        if (y < dy) {
            cross(South, cur + gridCols);
            ++y;
        } else {
            cross(North, cur - gridCols);
            --y;
        }
    }

    Tick delay = t - eventq.now();
    if (config.reorderJitter > 0)
        delay += jitterRng.below(config.reorderJitter + 1);

    deliver(std::move(msg), delay, hops);
}

} // namespace tcc
