#include "noc/network.hh"

#include <cmath>

namespace tcc {

namespace {

/** Smallest near-square grid that holds @p n nodes. */
std::uint32_t
gridSide(std::uint32_t n)
{
    std::uint32_t c = 1;
    while (c * c < n)
        ++c;
    return c;
}

enum Dir : unsigned { East = 0, West = 1, North = 2, South = 3 };

} // namespace

MeshNetwork::MeshNetwork(EventQueue &eq, std::uint32_t num_nodes,
                         const MeshConfig &cfg, Arena *arena)
    : Network(eq, num_nodes, arena), config(cfg),
      gridCols(gridSide(num_nodes)),
      gridRows((num_nodes + gridSide(num_nodes) - 1) /
               gridSide(num_nodes)),
      // Routes may pass through unpopulated grid slots when the node
      // count is not a perfect square, so size links for the full grid.
      linkFree(static_cast<std::size_t>(gridCols) * gridRows * 4, 0),
      jitterRng(cfg.seed)
{
    if (config.linkBytesPerCycle == 0)
        fatal("mesh linkBytesPerCycle must be nonzero");
}

std::size_t
MeshNetwork::linkIndex(NodeId n, unsigned dir) const
{
    return static_cast<std::size_t>(n) * 4 + dir;
}

unsigned
MeshNetwork::hopCount(NodeId a, NodeId b) const
{
    const int ax = static_cast<int>(a % gridCols);
    const int ay = static_cast<int>(a / gridCols);
    const int bx = static_cast<int>(b % gridCols);
    const int by = static_cast<int>(b / gridCols);
    return static_cast<unsigned>(std::abs(ax - bx) + std::abs(ay - by));
}

Tick
MeshNetwork::routeArrival(NodeId from, NodeId to, std::uint32_t bytes,
                          Tick start, unsigned &hops)
{
    hops = 0;
    if (from == to) {
        // Local loopback: one-cycle turnaround, no link usage.
        return start + 1;
    }

    const Tick ser = std::max<Tick>(
        1,
        (bytes + config.linkBytesPerCycle - 1) / config.linkBytesPerCycle);

    // Walk the XY route, advancing time across each link and updating
    // its next-free tick (store-and-forward with contention).
    Tick t = start + config.routerDelay;
    int x = static_cast<int>(from % gridCols);
    int y = static_cast<int>(from / gridCols);
    const int dx = static_cast<int>(to % gridCols);
    const int dy = static_cast<int>(to / gridCols);
    NodeId cur = from;

    auto cross = [&](unsigned dir, NodeId next) {
        const std::size_t li = linkIndex(cur, dir);
        const Tick depart = std::max(t, linkFree[li]);
        linkFree[li] = depart + ser;
        t = depart + ser + config.hopLatency + config.routerDelay;
        cur = next;
        ++hops;
    };

    while (x != dx) {
        if (x < dx) {
            cross(East, cur + 1);
            ++x;
        } else {
            cross(West, cur - 1);
            --x;
        }
    }
    while (y != dy) {
        if (y < dy) {
            cross(South, cur + gridCols);
            ++y;
        } else {
            cross(North, cur - gridCols);
            --y;
        }
    }
    return t;
}

void
MeshNetwork::send(Message msg)
{
    const NodeId src = msg.src;
    const NodeId dst = msg.dst;
    if (src >= numNodes() || dst >= numNodes())
        panic("mesh send with bad endpoint %u->%u", src, dst);

    unsigned hops = 0;
    const Tick arrive =
        routeArrival(src, dst, msg.bytes, eventq.now(), hops);
    Tick delay = arrive - eventq.now();
    if (hops != 0 && config.reorderJitter > 0)
        delay += jitterRng.below(config.reorderJitter + 1);

    deliver(std::move(msg), delay, hops);
}

MulticastReceipt
MeshNetwork::doMulticast(const Message &proto,
                         std::span<const NodeId> dsts)
{
    if (mcastCfg.topology != MulticastConfig::Topology::Tree ||
        dsts.size() < mcastCfg.minDests) {
        return Network::doMulticast(proto, dsts);
    }

    // Combining tree over the destination list (call sites pass it in
    // ascending node order): the source feeds the first k destinations
    // directly; destination index p relays to indices (p+1)*k .. +k-1.
    // Ascending index order is a valid breadth-first schedule (a
    // parent's index is always below its children's), so one pass
    // computes every copy's injection and arrival. The whole staging
    // is resolved analytically at send time against the current link
    // state - exactly how send() resolves a point-to-point route - so
    // relays need no forwarding events, and under PDES the tree lives
    // entirely in the sending domain's timeline.
    const std::uint32_t k = std::max<std::uint32_t>(2, mcastCfg.fanout);
    const std::size_t n = dsts.size();
    const Tick ser = std::max<Tick>(
        1, (proto.bytes + config.linkBytesPerCycle - 1) /
               config.linkBytesPerCycle);

    mcArrival.assign(n, 0);
    mcNicFree.assign(n + 1, 0); // slot 0 = source, i+1 = dsts[i]
    mcNicPath.assign(n, 0);
    mcDepth.assign(n, 0);

    MulticastReceipt r;
    r.dests = static_cast<std::uint32_t>(n);
    const Tick now = eventq.now();
    for (std::size_t i = 0; i < n; ++i) {
        const bool root = i < k;
        const std::size_t pi = root ? 0 : i / k - 1;
        const NodeId parent = root ? proto.src : dsts[pi];
        // A relay re-injects one router pass after the copy reaches it.
        const Tick ready =
            root ? now : mcArrival[pi] + config.routerDelay;
        const std::size_t slot = root ? 0 : pi + 1;
        const Tick inject = std::max(ready, mcNicFree[slot]);
        mcNicFree[slot] = inject + ser;
        unsigned hops = 0;
        const Tick arrive =
            routeArrival(parent, dsts[i], proto.bytes, inject, hops);
        mcArrival[i] = arrive;
        const std::uint32_t rank = static_cast<std::uint32_t>(
            root ? i : i - (pi + 1) * k);
        mcNicPath[i] = (root ? 0 : mcNicPath[pi]) + rank + 1;
        mcDepth[i] = (root ? 0 : mcDepth[pi]) + 1;
        if (mcNicPath[i] > r.nicSerialized)
            r.nicSerialized = mcNicPath[i];
        if (mcDepth[i] > r.depth)
            r.depth = mcDepth[i];

        Message copy = proto;
        copy.dst = dsts[i];
        Tick delay = arrive - now;
        if (hops != 0 && config.reorderJitter > 0)
            delay += jitterRng.below(config.reorderJitter + 1);
        deliver(std::move(copy), delay, hops);
    }
    return r;
}

} // namespace tcc
