/**
 * @file
 * The Scalable TCC processor model (paper Figure 1b and Section 3).
 *
 * Each processor executes a stream of transactions from its
 * TransactionSource with CPI=1 for compute, buffering all speculative
 * state in its private SpecCache, then runs the two-phase commit:
 *
 *   1. acquire a TID from the global vendor (in parallel, early-probe
 *      the directories in its Sharing and Writing vectors);
 *   2. multicast Skip to every directory outside its write-set;
 *   3. for each writing directory, once that directory's NSTID equals
 *      the TID, send Mark messages for the write-set lines homed there;
 *   4. once every writing directory is fully marked and every sharing
 *      directory's NSTID has reached the TID, the transaction is
 *      validated (it can no longer violate): publish the write buffer
 *      and multicast Commit.
 *
 * Violations: an invalidation whose committed words overlap the
 * current transaction's speculatively-read words, carrying a TID lower
 * than ours (or while we have no TID), rolls the transaction back.
 * A violated transaction that had already sent Skips releases its TID
 * by multicasting Abort to its writing directories; after
 * `agingThreshold` consecutive violations it requests its TID eagerly
 * at restart and retains it, which stalls all younger commits until it
 * finishes - the paper's starvation mitigation.
 */

#ifndef TCC_PROC_PROCESSOR_HH
#define TCC_PROC_PROCESSOR_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "cache/spec_cache.hh"
#include "check/invariant_checker.hh"
#include "common/arena.hh"
#include "common/flat_map.hh"
#include "common/nodeset.hh"
#include "common/types.hh"
#include "mem/global_store.hh"
#include "mem/home_map.hh"
#include "noc/network.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "workload/transaction_source.hh"

namespace tcc {

class ContentionProfiler; // obs/contention.hh

/** Per-processor protocol/timing knobs. */
struct ProcessorConfig {
    /** Cycles to restore the register checkpoint after a violation. */
    Tick violationRestartPenalty = 10;
    /**
     * Consecutive violations of one transaction before it requests its
     * TID eagerly at restart and retains it (aging). 0 disables aging.
     */
    std::uint32_t agingThreshold = 3;
    /**
     * Cache overflows of one transaction before the solo-mode fallback
     * engages (overflow virtualization: acquire the TID eagerly, wait
     * until every directory serves it - at which point the transaction
     * is unviolable - then run with conflict tracking off, draining
     * the write-set to the directories in partial-commit batches).
     * 0 disables the fallback. Substitutes for the paper's VTM/XTM
     * reference in Section 3.1.
     */
    std::uint32_t soloOverflowThreshold = 1;
    /**
     * Ablation knob: write-through commit (the small-scale TCC policy)
     * ships data with every Mark and leaves memory as the owner, vs
     * the paper's write-back commit that moves addresses only and
     * forwards data on true sharing. Must match the directories'
     * setting.
     */
    bool writeThroughCommit = false;
};

/**
 * One TCC processor: in-order, CPI=1 core plus the commit engine
 * (paper's "Commit Control" with the Sharing and Writing vectors).
 */
class TccProcessor
{
  public:
    TccProcessor(NodeId node, std::uint32_t num_nodes, EventQueue &eq,
                 Network &net, HomeMap &homes, GlobalStore &store,
                 const CacheConfig &cache_cfg,
                 const ProcessorConfig &cfg, NodeId vendor_node = 0,
                 Arena *arena = nullptr);

    /** Attach the transaction stream (must outlive the processor). */
    void setSource(TransactionSource *src) { source = src; }

    /** Barrier service provided by the System. */
    using BarrierFn =
        std::function<void(NodeId, std::function<void()>)>;
    void setBarrier(BarrierFn fn) { barrier = std::move(fn); }

    /** Hook invoked at every commit (serializability checker). */
    using CommitHook = std::function<void(
        Tid, NodeId,
        const std::vector<std::pair<Addr, std::uint64_t>> &reads,
        const std::vector<std::pair<Addr, std::uint64_t>> &writes)>;
    void setCommitHook(CommitHook hook) { commitHook = std::move(hook); }

    /** Hook invoked when the source is exhausted (barrier accounting). */
    void setDoneHook(std::function<void()> hook)
    {
        doneHook = std::move(hook);
    }

    /** Kick off the first transaction (schedule at current tick). */
    void start();

    /** Network entry point for processor-bound messages. */
    void receive(const Message &msg);

    bool done() const { return phase == Phase::Done; }
    Tick doneTick() const { return doneAt; }

    /** Execution-time breakdown and transaction statistics. */
    struct Stats {
        // Figure 6/7 breakdown buckets (cycles).
        std::uint64_t usefulCycles = 0;
        std::uint64_t missCycles = 0;
        std::uint64_t commitCycles = 0;
        std::uint64_t idleCycles = 0;
        std::uint64_t violationCycles = 0;

        std::uint64_t txnsCommitted = 0;
        std::uint64_t violations = 0;
        std::uint64_t overflows = 0;
        std::uint64_t soloCommits = 0;
        std::uint64_t drains = 0;
        std::uint64_t committedInstructions = 0;
        std::uint64_t tidRequests = 0;
        /** TxProgram value-based validation rollbacks. */
        std::uint64_t valueValidationFailures = 0;

        /**
         * TAPE-style conflict profiling (the paper points to TAPE for
         * diagnosing violations/starvation): violation counts keyed by
         * the conflicting line address.
         */
        FlatMap<Addr, std::uint64_t> violationAddrs;

        // Table 3 distributions (committed transactions only).
        Distribution txnInstructions;
        Distribution txnWriteSetKB;
        Distribution txnReadSetKB;
        Distribution opsPerWordWritten;
        Distribution dirsPerCommit;
        Distribution commitLatency;
        /** Write + sharing-only dirs the commit engine talked to. */
        Distribution dirsTouchedPerCommit;
        /** NIC-serialized multicast send events per commit attempt
         *  (the O(N)-vs-O(log N) fan-out cost; see noc/network.hh). */
        Distribution multicastNicPerCommit;
    };

    const Stats &stats() const { return procStats; }
    Stats &mutableStats() { return procStats; }

    /** The processor's private cache (tests / reporting). */
    const SpecCache &cache() const { return specCache; }

    /** Human-readable dump of the commit-engine state (debugging). */
    std::string debugDump() const;

    /** Attach the System's protocol event ring (may be null). */
    void setTraceRecorder(TraceRecorder *rec) { tracer = rec; }

    /** Attach the online protocol-invariant checker (may be null). */
    void setInvariantChecker(InvariantChecker *c) { invariants = c; }

    /** Attach the conflict-attribution profiler (may be null; see
     *  obs/contention.hh). Pure observation: recording never changes
     *  protocol behavior. */
    void setContentionProfiler(ContentionProfiler *p) { contention = p; }

  private:
    enum class Phase { Idle, Exec, Commit, Done };

    // --- transaction lifecycle -------------------------------------
    void startNextTransaction();
    void beginAttempt();
    void step();
    void resumeAfter(Tick delay);
    void violate();

    // --- execution helpers -----------------------------------------
    void execLoad(const TxOp &op);
    void execStore(const TxOp &op);
    void startMiss(Addr addr);
    void accountAccess(Tick latency);
    NodeId homeOf(Addr addr);

    // --- commit engine ----------------------------------------------
    /** (addr, value) pairs of the write buffer for the commit hook. */
    std::vector<std::pair<Addr, std::uint64_t>> writeLogForHook() const;
    void startCommit();
    void recordCommitStats(std::size_t write_dirs,
                           std::size_t dirs_touched);
    void proceedAfterTid();
    /** Post one Probe (all probe emission funnels through here). */
    void sendProbe(NodeId dir, Tid probe_tid, bool want_write);
    void sendMarksTo(NodeId dir);
    void checkValidationDone();
    void completeCommit();
    void finishTransaction();

    // --- message handlers -------------------------------------------
    void onLoadReply(const Message &msg);
    void onTidReply(const Message &msg);
    void onProbeReply(const Message &msg);
    void interpretNstid(NodeId dir, Tid observed);
    void onInv(const Message &msg);
    void onDataReq(const Message &msg);

    // --- solo mode (overflow virtualization) -------------------------
    void startSoloAcquisition();
    void startDrain();
    void soloCommit();
    void onPartialAck(const Message &msg);

    void post(Message msg);
    /** Stamp src/bytes once and hand @p msg to the network's multicast
     *  engine for delivery to every node in @p dsts (ascending).
     *  Accumulates the NIC-serialized send count into the attempt. */
    void postMulticast(Message msg, std::span<const NodeId> dsts);

    // --- identity / environment -------------------------------------
    NodeId nodeId;
    std::uint32_t numNodes;
    EventQueue &eventq;
    Network &network;
    HomeMap &homeMap;
    GlobalStore &globalStore;
    SpecCache specCache;
    ProcessorConfig config;
    NodeId vendorNode;
    TransactionSource *source = nullptr;
    BarrierFn barrier;
    CommitHook commitHook;
    std::function<void()> doneHook;
    /** Protocol event ring (owned by the System; may be null). */
    TraceRecorder *tracer = nullptr;
    /** Online invariant checker (owned by the System; may be null). */
    InvariantChecker *invariants = nullptr;
    /** Conflict profiler (owned by the System or a PDES domain; may be
     *  null = off). */
    ContentionProfiler *contention = nullptr;

    // --- per-transaction state ---------------------------------------
    Phase phase = Phase::Idle;
    std::vector<TxOp> curOps;
    std::size_t opIdx = 0;
    std::uint64_t lastLoaded = 0;
    /** Speculative write buffer: word address -> value. Probed on
     *  every load and store; cleared (not deallocated) per attempt. */
    FlatMap<Addr, std::uint64_t> writeBuf;
    /** (addr, value) pairs read from committed state (checker log). */
    std::vector<std::pair<Addr, std::uint64_t>> readLog;
    NodeSet sharingVec;
    NodeSet writingVec;
    Tid tid = kInvalidTid;
    Tid lastTidAcquired = kInvalidTid;
    bool tidReqOutstanding = false;
    std::uint32_t consecViolations = 0;
    /** Attempt generation: stale continuations check and bail. */
    std::uint64_t gen = 0;

    // --- commit-phase state ------------------------------------------
    // The per-directory bookkeeping is a set of node-indexed bitmaps
    // and dense arrays (not hash sets): membership is one bit test,
    // completion checks are popcounts, and clearing between attempts
    // is a handful of word stores. All arrays are sized numNodes at
    // construction and arena-backed.
    bool skipsSent = false;
    bool validated = false;
    Tick commitStart = 0;
    std::vector<NodeId> wDirs;
    std::vector<NodeId> sOnlyDirs;
    /** Dirs whose early (TID-less) probe answered; NSTID per dir. */
    NodeSet earlyAnswered;
    std::vector<Tid, ArenaAllocator<Tid>> earlyNstid;
    /** Writing dirs whose Marks have all been sent. */
    NodeSet marksDone;
    /** Sharing-only dirs observed at NSTID >= tid. */
    NodeSet sValidated;
    /** Marks sent per writing dir (Commit.numMarks). */
    std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>>
        marksCount;
    /** Write-set lines grouped by home dir + membership bitmap. */
    using LineVec = std::vector<SpecCache::WriteSetLine,
                                ArenaAllocator<SpecCache::WriteSetLine>>;
    std::vector<LineVec, ArenaAllocator<LineVec>> writeSetByDir;
    NodeSet wsDirs;
    /** Scratch destination list for multicast emission (reused). */
    std::vector<NodeId, ArenaAllocator<NodeId>> mcastBuf;
    /** NIC-serialized multicast sends charged to this attempt. */
    std::uint64_t attemptMcastNic = 0;

    // --- miss handling -----------------------------------------------
    struct Mshr {
        bool active = false;
        Addr lineAddr = 0;
        bool poisoned = false;
        std::uint64_t gen = 0;
        /** Sequence tag of the outstanding LoadReq; replies carrying
         *  any other tag (duplicates, reordered stale replies) are
         *  dropped. */
        std::uint32_t seq = 0;
    };
    Mshr mshr;
    Tick missStart = 0;
    /** Monotonic LoadReq sequence counter (see Message::seq). */
    std::uint32_t loadSeq = 0;

    // --- solo mode ------------------------------------------------------
    bool soloRequested = false;
    bool solo = false;
    std::uint32_t soloProbesPending = 0;
    std::uint32_t overflowsThisTxn = 0;
    std::uint32_t drainAcksPending = 0;

    // --- accounting ----------------------------------------------------
    Tick attemptStart = 0;
    std::uint64_t attemptUseful = 0;
    std::uint64_t attemptMiss = 0;
    std::uint64_t attemptInstr = 0;
    Tick idleStart = 0;
    Tick doneAt = 0;

    Stats procStats;
};

} // namespace tcc

#endif // TCC_PROC_PROCESSOR_HH
