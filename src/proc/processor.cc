#include "proc/processor.hh"

#include <algorithm>

#include "check/mutate.hh"
#include "common/log.hh"
#include "obs/contention.hh"

namespace tcc {

TccProcessor::TccProcessor(NodeId node, std::uint32_t num_nodes,
                           EventQueue &eq, Network &net, HomeMap &homes,
                           GlobalStore &store,
                           const CacheConfig &cache_cfg,
                           const ProcessorConfig &cfg,
                           NodeId vendor_node, Arena *arena)
    : nodeId(node), numNodes(num_nodes), eventq(eq), network(net),
      homeMap(homes), globalStore(store), specCache(cache_cfg, arena),
      config(cfg), vendorNode(vendor_node), writeBuf(arena),
      sharingVec(num_nodes, arena), writingVec(num_nodes, arena),
      earlyAnswered(num_nodes, arena),
      earlyNstid(num_nodes, kInvalidTid, ArenaAllocator<Tid>(arena)),
      marksDone(num_nodes, arena), sValidated(num_nodes, arena),
      marksCount(num_nodes, 0, ArenaAllocator<std::uint32_t>(arena)),
      writeSetByDir(
          num_nodes,
          LineVec(ArenaAllocator<SpecCache::WriteSetLine>(arena)),
          ArenaAllocator<LineVec>(arena)),
      wsDirs(num_nodes, arena),
      mcastBuf(ArenaAllocator<NodeId>(arena))
{
    // Pre-size the write buffer once: clear() keeps the bucket array,
    // so steady-state attempts never rehash.
    writeBuf.reserve(256);
}

void
TccProcessor::post(Message msg)
{
    msg.src = nodeId;
    msg.bytes = msgBytes(msg.type, specCache.cfg().lineBytes);
    // Write-through commit ships the line data with each mark.
    if (msg.type == MsgType::Mark && config.writeThroughCommit)
        msg.bytes += specCache.cfg().lineBytes;
    network.send(std::move(msg));
}

void
TccProcessor::postMulticast(Message msg, std::span<const NodeId> dsts)
{
    msg.src = nodeId;
    msg.bytes = msgBytes(msg.type, specCache.cfg().lineBytes);
    if (msg.type == MsgType::Mark && config.writeThroughCommit)
        msg.bytes += specCache.cfg().lineBytes;
    const MulticastReceipt r = network.multicast(msg, dsts);
    attemptMcastNic += r.nicSerialized;
}

NodeId
TccProcessor::homeOf(Addr addr)
{
    return homeMap.homeOf(addr, nodeId);
}

void
TccProcessor::start()
{
    eventq.schedule(0, [this]() { startNextTransaction(); });
}

// ---------------------------------------------------------------------
// Transaction lifecycle
// ---------------------------------------------------------------------

void
TccProcessor::startNextTransaction()
{
    if (!source)
        panic("proc %u started without a transaction source", nodeId);
    auto txn = source->nextTransaction();
    if (!txn) {
        phase = Phase::Done;
        doneAt = eventq.now();
        if (doneHook)
            doneHook();
        return;
    }
    curOps = std::move(txn->ops);
    consecViolations = 0;
    overflowsThisTxn = 0;
    soloRequested = false;
    if (txn->barrierBefore) {
        if (!barrier)
            panic("proc %u hit a barrier without a barrier service",
                  nodeId);
        idleStart = eventq.now();
        const std::uint64_t my_gen = ++gen;
        barrier(nodeId, [this, my_gen]() {
            if (gen != my_gen)
                panic("proc %u: barrier resume after state change",
                      nodeId);
            procStats.idleCycles += eventq.now() - idleStart;
            beginAttempt();
        });
        return;
    }
    beginAttempt();
}

void
TccProcessor::beginAttempt()
{
    phase = Phase::Exec;
    // A violated value-dependent transaction (TxProgram) regenerates
    // its operation stream against the current committed state.
    if (consecViolations > 0 && source) {
        if (auto fresh = source->regenerateOps())
            curOps = std::move(*fresh);
    }
    traceEmit(tracer, TraceCat::Proc, TraceEventKind::TxBegin, nodeId,
              tid, consecViolations, curOps.size());
    opIdx = 0;
    lastLoaded = 0;
    writeBuf.clear();
    readLog.clear();
    sharingVec.clearAll();
    writingVec.clearAll();
    skipsSent = false;
    validated = false;
    wDirs.clear();
    sOnlyDirs.clear();
    earlyAnswered.clearAll();
    marksDone.clearAll();
    sValidated.clearAll();
    // marksCount entries are always written (sendMarksTo) before they
    // are read (completeCommit), so they need no per-attempt clear.
    // The write-set groups were only filled for dirs in wsDirs.
    wsDirs.forEach([&](NodeId d) { writeSetByDir[d].clear(); });
    wsDirs.clearAll();
    mshr = Mshr{};
    attemptStart = eventq.now();
    attemptUseful = 0;
    attemptMiss = 0;
    attemptInstr = 0;
    attemptMcastNic = 0;
    ++gen;

    // Aging: a repeatedly violated transaction requests its TID at the
    // start of re-execution and retains it, so it ages into the oldest
    // transaction in the system and cannot lose another conflict race.
    if (config.agingThreshold != 0 &&
        consecViolations >= config.agingThreshold &&
        tid == kInvalidTid && !tidReqOutstanding) {
        tidReqOutstanding = true;
        ++procStats.tidRequests;
        Message req;
        req.type = MsgType::TidReq;
        req.dst = vendorNode;
        post(req);
    }

    // Solo-mode fallback for overflowing transactions: acquire the
    // TID, then wait (in startSoloAcquisition) until every directory
    // serves it before executing.
    if (soloRequested && !solo) {
        if (tid == kInvalidTid) {
            if (!tidReqOutstanding) {
                tidReqOutstanding = true;
                ++procStats.tidRequests;
                Message req;
                req.type = MsgType::TidReq;
                req.dst = vendorNode;
                post(req);
            }
            return; // continue in onTidReply
        }
        startSoloAcquisition();
        return;
    }
    step();
}

void
TccProcessor::resumeAfter(Tick delay)
{
    const std::uint64_t my_gen = gen;
    eventq.schedule(delay, [this, my_gen]() {
        if (gen != my_gen)
            return; // attempt was rolled back meanwhile
        step();
    });
}

void
TccProcessor::step()
{
    if (phase != Phase::Exec)
        panic("proc %u stepping outside execution phase", nodeId);
    if (opIdx >= curOps.size()) {
        startCommit();
        return;
    }
    const TxOp &op = curOps[opIdx];
    switch (op.kind) {
      case TxOp::Kind::Compute:
        attemptUseful += op.cycles;
        attemptInstr += op.cycles;
        ++opIdx;
        resumeAfter(op.cycles);
        return;
      case TxOp::Kind::Load:
        execLoad(op);
        return;
      case TxOp::Kind::Store:
      case TxOp::Kind::StoreAdd:
        execStore(op);
        return;
    }
    panic("proc %u: bad op kind", nodeId);
}

void
TccProcessor::accountAccess(Tick latency)
{
    // One cycle of the access is the instruction itself; any extra
    // latency is a stall attributed to the cache-miss bucket.
    attemptUseful += 1;
    if (latency > 1)
        attemptMiss += latency - 1;
    ++attemptInstr;
}

void
TccProcessor::execLoad(const TxOp &op)
{
    auto out = specCache.load(op.addr);
    if (!out.hit) {
        startMiss(op.addr);
        return;
    }
    sharingVec.set(homeOf(op.addr));

    // Functional read: own speculative value first, else the current
    // committed state.
    const Addr word = GlobalStore::wordAlign(op.addr);
    auto it = writeBuf.find(word);
    if (it != writeBuf.end()) {
        lastLoaded = it->second;
    } else {
        lastLoaded = globalStore.read(word);
        readLog.emplace_back(word, lastLoaded);
        if (op.validateValue && lastLoaded != op.value) {
            // Value-based validation (TxProgram): the state this
            // operation stream was generated against has changed;
            // roll back and regenerate.
            ++procStats.valueValidationFailures;
            violate();
            return;
        }
    }

    accountAccess(out.latency);
    ++opIdx;
    resumeAfter(out.latency);
}

void
TccProcessor::execStore(const TxOp &op)
{
    auto out = specCache.store(op.addr);
    if (!out.hit) {
        // Write-allocate: fetch the line, then retry the store.
        startMiss(op.addr);
        return;
    }
    if (out.needsWriteBack) {
        // First speculative write to committed-dirty data: write the
        // old data back to its home first (write-back protocol). The
        // write-back is tagged with the TID whose commit produced the
        // data so the directory can order it against commits on an
        // unordered network (Section 3.3).
        if (out.writeBackTid == kInvalidTid)
            panic("proc %u: dirty data without a prior commit", nodeId);
        Message wb;
        wb.type = MsgType::WriteBack;
        wb.dst = homeOf(op.addr);
        wb.addr = specCache.lineAlign(op.addr);
        wb.tid = out.writeBackTid;
        post(wb);
    }
    writingVec.set(homeOf(op.addr));

    const Addr word = GlobalStore::wordAlign(op.addr);
    const std::uint64_t value = op.kind == TxOp::Kind::Store
                                    ? op.value
                                    : lastLoaded + op.value;
    writeBuf[word] = value;

    accountAccess(out.latency);
    ++opIdx;
    resumeAfter(out.latency);
}

void
TccProcessor::startMiss(Addr addr)
{
    const Addr line = specCache.lineAlign(addr);
    mshr.active = true;
    mshr.lineAddr = line;
    mshr.poisoned = false;
    mshr.gen = gen;
    mshr.seq = ++loadSeq;
    missStart = eventq.now();
    Message req;
    req.type = MsgType::LoadReq;
    req.dst = homeOf(addr);
    req.addr = line;
    req.seq = mshr.seq;
    post(req);
}

void
TccProcessor::onLoadReply(const Message &msg)
{
    const bool relevant = mshr.active && mshr.lineAddr == msg.addr &&
                          mshr.gen == gen && msg.seq == mshr.seq;
    if (!relevant) {
        // Reply for a rolled-back attempt or a stale/duplicated reply
        // (seq mismatch). It must be DROPPED, not filled: the
        // violation that rolled us back also removed us from the
        // directory's sharers list, so caching this data would let
        // later loads hit locally while no invalidations are routed to
        // us - a silently missed conflict. The retry's own LoadReq
        // re-registers us as a sharer, carrying a fresh seq.
        return;
    }
    if (mshr.poisoned) {
        // An invalidation overtook this fill (Section 3.3 race): drop
        // the data and retry the load, re-registering as a sharer. The
        // retry carries a fresh seq so a duplicate of THIS reply
        // cannot satisfy it before the directory re-registers us.
        mshr.poisoned = false;
        mshr.seq = ++loadSeq;
        Message req;
        req.type = MsgType::LoadReq;
        req.dst = homeOf(msg.addr);
        req.addr = msg.addr;
        req.seq = mshr.seq;
        post(req);
        return;
    }
    auto fill = specCache.fill(msg.addr);
    if (fill.overflow) {
        ++procStats.overflows;
        ++overflowsThisTxn;
        if (solo) {
            // Unviolable: drain the write-set to the directories, then
            // retry this access.
            mshr = Mshr{};
            startDrain();
            return;
        }
        // Roll back; after enough overflows the retry runs in solo
        // mode (overflow virtualization).
        if (config.soloOverflowThreshold != 0 &&
            overflowsThisTxn >= config.soloOverflowThreshold) {
            soloRequested = true;
        }
        mshr = Mshr{};
        violate();
        return;
    }
    if (fill.evictedDirty) {
        Message wb;
        wb.type = MsgType::WriteBack;
        wb.dst = homeOf(fill.evictedAddr);
        wb.addr = fill.evictedAddr;
        wb.tid = fill.evictedTid;
        post(wb);
    }
    mshr = Mshr{};
    attemptMiss += eventq.now() - missStart;
    step(); // retry the faulting op; it hits now
}

// ---------------------------------------------------------------------
// Commit engine
// ---------------------------------------------------------------------

void
TccProcessor::startCommit()
{
    phase = Phase::Commit;
    commitStart = eventq.now();

    // Group the write set by home directory and compute the dir sets.
    for (const auto &line : specCache.writeSet()) {
        const NodeId d = homeOf(line.lineAddr);
        writeSetByDir[d].push_back(line);
        wsDirs.set(d);
    }
    writingVec.forEach([&](NodeId d) { wDirs.push_back(d); });
    sharingVec.forEach([&](NodeId d) {
        if (!writingVec.test(d))
            sOnlyDirs.push_back(d);
    });
    traceEmit(tracer, TraceCat::Commit, TraceEventKind::CommitStart,
              nodeId, tid, wDirs.size(), sOnlyDirs.size());

    if (solo) {
        soloCommit();
        return;
    }

    if (tid == kInvalidTid) {
        if (!tidReqOutstanding) {
            tidReqOutstanding = true;
            ++procStats.tidRequests;
            Message req;
            req.type = MsgType::TidReq;
            req.dst = vendorNode;
            post(req);
        }
        // Overlap the TID round trip with early NSTID probes. Each
        // group carries one payload, so it fans out as a multicast
        // (flat mode emits the exact per-directory loop it replaced).
        for (NodeId d : wDirs) {
            traceEmit(tracer, TraceCat::Commit,
                      TraceEventKind::ProbeSend, nodeId, kInvalidTid, d,
                      1);
        }
        if (!wDirs.empty()) {
            Message p;
            p.type = MsgType::Probe;
            p.tid = kInvalidTid;
            p.wantWrite = true;
            postMulticast(p, wDirs);
        }
        for (NodeId d : sOnlyDirs) {
            traceEmit(tracer, TraceCat::Commit,
                      TraceEventKind::ProbeSend, nodeId, kInvalidTid, d,
                      0);
        }
        if (!sOnlyDirs.empty()) {
            Message p;
            p.type = MsgType::Probe;
            p.tid = kInvalidTid;
            p.wantWrite = false;
            postMulticast(p, sOnlyDirs);
        }
        return; // continue in onTidReply
    }
    proceedAfterTid();
}

void
TccProcessor::onTidReply(const Message &msg)
{
    tidReqOutstanding = false;
    tid = msg.tid;
    lastTidAcquired = msg.tid;
    traceEmit(tracer, TraceCat::Commit, TraceEventKind::TidAcquire,
              nodeId, msg.tid);
    if (contention)
        contention->recordTidOwner(msg.tid, nodeId);
    if (phase == Phase::Commit && !skipsSent) {
        proceedAfterTid();
        return;
    }
    if (phase == Phase::Exec && soloRequested && !solo && opIdx == 0)
        startSoloAcquisition();
    // Otherwise this was an aged early request: just hold the TID.
}

void
TccProcessor::proceedAfterTid()
{
    skipsSent = true;
    // Multicast Skip to every directory outside the write-set,
    // including sharing-only directories (they will not see a commit
    // from this TID). This is the broadcast-at-scale hot spot the
    // combining tree exists for: N - |wDirs| identical messages.
    mcastBuf.clear();
    for (NodeId d = 0; d < numNodes; ++d) {
        if (writingVec.test(d))
            continue;
        traceEmit(tracer, TraceCat::Commit, TraceEventKind::SkipSend,
                  nodeId, tid, d);
        mcastBuf.push_back(d);
    }
    if (!mcastBuf.empty()) {
        Message s;
        s.type = MsgType::Skip;
        s.tid = tid;
        postMulticast(s, mcastBuf);
    }
    for (NodeId d : wDirs) {
        if (earlyAnswered.test(d) && earlyNstid[d] == tid)
            sendMarksTo(d);
        else
            sendProbe(d, tid, true);
    }
    for (NodeId d : sOnlyDirs) {
        if (earlyAnswered.test(d) && earlyNstid[d] >= tid)
            sValidated.set(d);
        else
            sendProbe(d, tid, false);
    }
    checkValidationDone();
}

void
TccProcessor::onProbeReply(const Message &msg)
{
    traceEmit(tracer, TraceCat::Commit, TraceEventKind::ProbeReplyRecv,
              nodeId, msg.tid, msg.src, msg.nstid);
    if (phase == Phase::Exec && soloRequested && !solo &&
        msg.tid == tid && msg.tid != kInvalidTid) {
        // Solo acquisition: this directory now serves our TID.
        if (soloProbesPending == 0)
            panic("proc %u: stray solo probe reply", nodeId);
        if (--soloProbesPending == 0) {
            solo = true;
            specCache.setSrTracking(false);
            step();
        }
        return;
    }
    if (phase != Phase::Commit)
        return; // stale reply for a rolled-back attempt
    if (msg.tid == kInvalidTid) {
        // Early probe answer.
        if (tid != kInvalidTid && skipsSent) {
            interpretNstid(msg.src, msg.nstid);
        } else {
            earlyAnswered.set(msg.src);
            earlyNstid[msg.src] = msg.nstid;
        }
        return;
    }
    if (msg.tid != tid)
        return; // reply to an aborted attempt's probe
    interpretNstid(msg.src, msg.nstid);
}

void
TccProcessor::interpretNstid(NodeId dir, Tid observed)
{
    if (writingVec.test(dir)) {
        if (marksDone.test(dir))
            return;
        if (observed == tid) {
            sendMarksTo(dir);
        } else if (observed < tid) {
            // Early snapshot was behind: issue a real (deferred) probe.
            sendProbe(dir, tid, true);
        }
        // observed > tid would mean the directory passed our TID
        // without us committing - only possible for stale replies,
        // which were filtered above.
        return;
    }
    if (!sharingVec.test(dir)) {
        // Stale early (TID-less) probe reply from a rolled-back
        // attempt, for a directory this attempt never read: counting
        // it would corrupt the validation bookkeeping. (For dirs that
        // ARE in the current read set, a stale snapshot only ever
        // under-reports the NSTID, so acting on it stays safe.)
        return;
    }
    if (sValidated.test(dir))
        return;
    if (observed >= tid) {
        sValidated.set(dir);
        checkValidationDone();
    } else {
        sendProbe(dir, tid, false);
    }
}

void
TccProcessor::sendProbe(NodeId dir, Tid probe_tid, bool want_write)
{
    traceEmit(tracer, TraceCat::Commit, TraceEventKind::ProbeSend,
              nodeId, probe_tid, dir, want_write ? 1 : 0);
    Message p;
    p.type = MsgType::Probe;
    p.dst = dir;
    p.tid = probe_tid;
    p.wantWrite = want_write;
    post(p);
}

void
TccProcessor::sendMarksTo(NodeId dir)
{
    if (!wsDirs.test(dir))
        panic("proc %u: writing dir %u with empty write set", nodeId,
              dir);
    const auto &lines = writeSetByDir[dir];
    traceEmit(tracer, TraceCat::Commit, TraceEventKind::MarkSend,
              nodeId, tid, dir, lines.size());
    for (const auto &line : lines) {
        Message m;
        m.type = MsgType::Mark;
        m.dst = dir;
        m.addr = line.lineAddr;
        m.tid = tid;
        m.wordMask = line.smMask;
        post(m);
    }
    marksCount[dir] = static_cast<std::uint32_t>(lines.size());
    marksDone.set(dir);
    checkValidationDone();
}

void
TccProcessor::checkValidationDone()
{
    if (validated || phase != Phase::Commit || !skipsSent)
        return;
    // Popcount the bitmaps against the dir-list sizes.
    if (marksDone.count() != wDirs.size())
        return;
    if (sValidated.count() != sOnlyDirs.size())
        return;
    completeCommit();
}

void
TccProcessor::completeCommit()
{
    validated = true;
    TCC_TRACEF(TraceCat::Commit,
               "%llu: proc %u commits tid=%llu reads=%zu writes=%zu",
               (unsigned long long)eventq.now(), nodeId,
               (unsigned long long)tid, readLog.size(), writeBuf.size());
    // Emitted before TxCommit so ledger folds see the fan-out numbers
    // while the transaction record is still open.
    traceEmit(tracer, TraceCat::Commit, TraceEventKind::CommitFanout,
              nodeId, tid, wDirs.size() + sOnlyDirs.size(),
              attemptMcastNic);
    traceEmit(tracer, TraceCat::Commit, TraceEventKind::TxCommit,
              nodeId, tid, readLog.size(), writeBuf.size());

    // Publish the write buffer: this is the transaction's global
    // serialization point in the functional model.
    for (const auto &[addr, value] : writeBuf)
        globalStore.write(addr, value);
    if (commitHook)
        commitHook(tid, nodeId, readLog, writeLogForHook());

    for (NodeId d : wDirs) {
        Message c;
        c.type = MsgType::Commit;
        c.dst = d;
        c.tid = tid;
        c.numMarks = marksCount[d];
        post(c);
    }

    recordCommitStats(wDirs.size(), wDirs.size() + sOnlyDirs.size());
    specCache.commitSpec(tid, !config.writeThroughCommit);
    finishTransaction();
}

void
TccProcessor::recordCommitStats(std::size_t write_dirs,
                                std::size_t dirs_touched)
{
    // Table 3 statistics (before clearing speculative state).
    const auto ws = specCache.writeSet();
    const double line_kb = specCache.cfg().lineBytes / 1024.0;
    procStats.txnWriteSetKB.sample(ws.size() * line_kb);
    procStats.txnReadSetKB.sample(specCache.readSetLines() * line_kb);
    procStats.txnInstructions.sample(
        static_cast<double>(attemptInstr));
    if (!writeBuf.empty()) {
        procStats.opsPerWordWritten.sample(
            static_cast<double>(attemptInstr) /
            static_cast<double>(writeBuf.size()));
    }
    procStats.dirsPerCommit.sample(
        static_cast<double>(write_dirs));
    procStats.dirsTouchedPerCommit.sample(
        static_cast<double>(dirs_touched));
    procStats.multicastNicPerCommit.sample(
        static_cast<double>(attemptMcastNic));

    const Tick commit_cycles = eventq.now() - commitStart;
    procStats.commitLatency.sample(static_cast<double>(commit_cycles));
    procStats.usefulCycles += attemptUseful;
    procStats.missCycles += attemptMiss;
    procStats.commitCycles += commit_cycles;
    procStats.committedInstructions += attemptInstr;
    ++procStats.txnsCommitted;
}

void
TccProcessor::finishTransaction()
{
    tid = kInvalidTid; // consumed
    phase = Phase::Idle;
    ++gen;
    if (source)
        source->transactionCommitted();
    eventq.schedule(1, [this]() { startNextTransaction(); });
}

// ---------------------------------------------------------------------
// Solo mode (overflow virtualization)
// ---------------------------------------------------------------------

void
TccProcessor::startSoloAcquisition()
{
    // Write-probe every directory; each reply is deferred until that
    // directory's NSTID equals our TID, i.e., until every older
    // transaction retired there. Once all replies arrive, nothing can
    // violate this transaction and nothing younger can commit anywhere.
    soloProbesPending = numNodes;
    mcastBuf.clear();
    for (NodeId d = 0; d < numNodes; ++d) {
        traceEmit(tracer, TraceCat::Commit, TraceEventKind::ProbeSend,
                  nodeId, tid, d, 1);
        mcastBuf.push_back(d);
    }
    Message p;
    p.type = MsgType::Probe;
    p.tid = tid;
    p.wantWrite = true;
    postMulticast(p, mcastBuf);
}

std::vector<std::pair<Addr, std::uint64_t>>
TccProcessor::writeLogForHook() const
{
    std::vector<std::pair<Addr, std::uint64_t>> writes;
    writes.reserve(writeBuf.size());
    for (const auto &[addr, value] : writeBuf)
        writes.emplace_back(addr, value);
    return writes;
}

void
TccProcessor::startDrain()
{
    ++procStats.drains;
    // Publish the values drained so far: the directories are about to
    // make them architecturally visible through invalidations and
    // data forwarding.
    for (const auto &[addr, value] : writeBuf)
        globalStore.write(addr, value);

    FlatMap<NodeId, std::vector<SpecCache::WriteSetLine>> by_dir;
    for (const auto &line : specCache.writeSet())
        by_dir[homeOf(line.lineAddr)].push_back(line);
    if (by_dir.empty())
        panic("proc %u: solo overflow with empty write set", nodeId);

    // Emit batches in ascending directory order: message order must be
    // a function of the write set, never of container iteration order.
    drainAcksPending = static_cast<std::uint32_t>(by_dir.size());
    traceEmit(tracer, TraceCat::Proc, TraceEventKind::SoloDrain, nodeId,
              tid, drainAcksPending);
    for (NodeId d = 0; d < numNodes; ++d) {
        auto it = by_dir.find(d);
        if (it == by_dir.end())
            continue;
        const auto &lines = it->second;
        for (const auto &line : lines) {
            Message m;
            m.type = MsgType::Mark;
            m.dst = d;
            m.addr = line.lineAddr;
            m.tid = tid;
            m.wordMask = line.smMask;
            post(m);
        }
        Message pc;
        pc.type = MsgType::PartialCommit;
        pc.dst = d;
        pc.tid = tid;
        pc.numMarks = static_cast<std::uint32_t>(lines.size());
        post(pc);
    }
    // Locally the drained lines become ordinary committed-dirty data
    // (evictable); execution resumes when every batch is acked.
    specCache.commitSpec(tid);
}

void
TccProcessor::onPartialAck(const Message &msg)
{
    if (!solo || msg.tid != tid)
        return; // stale
    if (drainAcksPending == 0)
        panic("proc %u: unexpected partial ack", nodeId);
    if (--drainAcksPending == 0)
        step(); // retry the access that overflowed
}

void
TccProcessor::soloCommit()
{
    validated = true;
    for (const auto &[addr, value] : writeBuf)
        globalStore.write(addr, value);
    if (commitHook)
        commitHook(tid, nodeId, readLog, writeLogForHook());

    // Remaining (undrained) write-set lines commit normally; every
    // other directory - including ones that only saw partial batches -
    // gets a Skip so the TID retires everywhere. Directories are
    // visited in ascending order for deterministic message emission.
    for (NodeId d = 0; d < numNodes; ++d) {
        if (!wsDirs.test(d))
            continue;
        const auto &lines = writeSetByDir[d];
        for (const auto &line : lines) {
            Message m;
            m.type = MsgType::Mark;
            m.dst = d;
            m.addr = line.lineAddr;
            m.tid = tid;
            m.wordMask = line.smMask;
            post(m);
        }
        Message c;
        c.type = MsgType::Commit;
        c.dst = d;
        c.tid = tid;
        c.numMarks = static_cast<std::uint32_t>(lines.size());
        post(c);
    }
    mcastBuf.clear();
    for (NodeId d = 0; d < numNodes; ++d) {
        if (!wsDirs.test(d))
            mcastBuf.push_back(d);
    }
    if (!mcastBuf.empty()) {
        Message skip;
        skip.type = MsgType::Skip;
        skip.tid = tid;
        postMulticast(skip, mcastBuf);
    }

    // CommitFanout must precede TxCommit so ledger folds see the
    // fan-out numbers while the transaction record is still open; the
    // emission is deferred past the Skip multicast above so the NIC
    // count is final. Same tick, so the projected golden-trace order
    // is unchanged.
    const std::size_t solo_dirs = wsDirs.count();
    traceEmit(tracer, TraceCat::Commit, TraceEventKind::CommitFanout,
              nodeId, tid, solo_dirs, attemptMcastNic);
    traceEmit(tracer, TraceCat::Commit, TraceEventKind::TxCommit,
              nodeId, tid, readLog.size(), writeBuf.size());
    recordCommitStats(solo_dirs, solo_dirs);
    ++procStats.soloCommits;
    specCache.commitSpec(tid);
    specCache.setSrTracking(true);
    solo = false;
    soloRequested = false;
    overflowsThisTxn = 0;
    finishTransaction();
}

// ---------------------------------------------------------------------
// Violations
// ---------------------------------------------------------------------

void
TccProcessor::violate()
{
    TCC_TRACEF(TraceCat::Proc,
               "%llu: proc %u VIOLATES tid=%lld phase=%d skipsSent=%d",
               (unsigned long long)eventq.now(), nodeId,
               tid == kInvalidTid ? -1LL : (long long)tid,
               static_cast<int>(phase), skipsSent ? 1 : 0);
    ++procStats.violations;
    ++consecViolations;
    traceEmit(tracer, TraceCat::Proc, TraceEventKind::TxViolation,
              nodeId, tid, consecViolations);
    procStats.violationCycles +=
        eventq.now() - attemptStart + config.violationRestartPenalty;

    specCache.abortSpec();
    if (source)
        source->transactionViolated();

    const Tid tid_before = tid;
    const bool announced = phase == Phase::Commit && skipsSent;
    if (announced) {
        // The TID was announced to the world; release it so every
        // directory can retire it, and take a fresh one on retry.
        for (NodeId d : wDirs) {
            Message a;
            a.type = MsgType::Abort;
            a.dst = d;
            a.tid = tid;
            post(a);
        }
        tid = kInvalidTid;
    }
    // If a TID request is still outstanding, the eventual reply is
    // retained as an early TID for the retry (see onTidReply).
    if (mutate::is(mutate::Kind::TidDropOnViolation) && !announced)
        tid = kInvalidTid;
    if (invariants)
        invariants->onViolation(nodeId, tid_before, announced, tid);

    mshr = Mshr{};
    phase = Phase::Exec;
    ++gen;
    eventq.schedule(config.violationRestartPenalty,
                    [this, my_gen = gen]() {
                        if (gen != my_gen)
                            return;
                        beginAttempt();
                    });
}

void
TccProcessor::onInv(const Message &msg)
{
    const bool was_dirty = specCache.isDirty(msg.addr);
    auto out = specCache.invalidate(msg.addr, msg.wordMask);
    if (mshr.active && mshr.lineAddr == msg.addr)
        mshr.poisoned = true;

    // Violation decision: our speculatively-read words were committed
    // by a transaction ordered *before* us.
    const bool active_attempt =
        phase == Phase::Exec || (phase == Phase::Commit && !validated);
    const bool violating =
        out.srOverlap && active_attempt &&
        (tid == kInvalidTid || msg.tid < tid);

    // A transaction that survives a non-overlapping invalidation but
    // still holds speculative state on the line (it read or wrote
    // other words) must stay in the sharers list, or it would silently
    // stop receiving invalidations for the words it did read. The ack
    // carries that request; the directory processes every ack before
    // advancing its NSTID, so there is no window.
    const bool keep_sharer =
        !violating && (specCache.srMask(msg.addr) != 0 ||
                       specCache.smMask(msg.addr) != 0);

    // Acknowledge: a committed-dirty line flushes its data with the
    // ack so memory is current before the committing directory
    // advances its NSTID.
    if (was_dirty) {
        Message f;
        f.type = MsgType::FlushData;
        f.dst = msg.src;
        f.addr = msg.addr;
        f.invResponse = true;
        f.hadData = true;
        f.keepSharer = keep_sharer;
        post(f);
    } else {
        Message a;
        a.type = MsgType::InvAck;
        a.dst = msg.src;
        a.addr = msg.addr;
        a.tid = msg.tid;
        a.keepSharer = keep_sharer;
        post(a);
    }

    TCC_TRACEF(TraceCat::Proc,
               "%llu: proc %u inv addr=%llx from tid=%lld sr=%d "
               "myTid=%lld phase=%d validated=%d keep=%d",
               (unsigned long long)eventq.now(), nodeId,
               (unsigned long long)msg.addr, (long long)msg.tid,
               out.srOverlap ? 1 : 0,
               tid == kInvalidTid ? -1LL : (long long)tid,
               static_cast<int>(phase), validated ? 1 : 0,
               keep_sharer ? 1 : 0);

    // Conflict attribution: every overlapping invalidation is a
    // conflict on this word; only a violating one is an abort, and the
    // wasted work charged to it is the same quantity violate() is
    // about to add to violationCycles.
    if (contention && (out.srOverlap || out.smOverlap)) {
        const std::uint64_t wasted =
            violating ? eventq.now() - attemptStart +
                            config.violationRestartPenalty
                      : 0;
        contention->recordConflict(nodeId, msg.tid, msg.addr,
                                   out.srOverlap, out.smOverlap,
                                   violating, wasted);
    }

    if (violating) {
        ++procStats.violationAddrs[msg.addr];
        // The cause record names the *writer's* TID in the tid field.
        traceEmit(tracer, TraceCat::Proc,
                  TraceEventKind::ViolationCause, nodeId, msg.tid,
                  msg.addr);
        violate();
    }
}

void
TccProcessor::onDataReq(const Message &msg)
{
    Message f;
    f.type = MsgType::FlushData;
    f.dst = msg.src;
    f.addr = msg.addr;
    f.invResponse = false;
    if (specCache.isDirty(msg.addr)) {
        specCache.flushLine(msg.addr);
        f.hadData = true;
    } else {
        // Already evicted; the WriteBack is in flight.
        f.hadData = false;
    }
    post(f);
}

std::string
TccProcessor::debugDump() const
{
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "proc %u: phase=%d opIdx=%zu/%zu tid=%lld tidReq=%d "
        "skipsSent=%d validated=%d wDirs=%zu marksDone=%u "
        "sOnly=%zu sValidated=%u mshr={act=%d addr=%llx poison=%d}\n",
        nodeId, static_cast<int>(phase), opIdx, curOps.size(),
        tid == kInvalidTid ? -1LL : (long long)tid,
        tidReqOutstanding ? 1 : 0, skipsSent ? 1 : 0,
        validated ? 1 : 0, wDirs.size(), marksDone.count(),
        sOnlyDirs.size(), sValidated.count(), mshr.active ? 1 : 0,
        (unsigned long long)mshr.lineAddr, mshr.poisoned ? 1 : 0);
    return buf;
}

// ---------------------------------------------------------------------
// Message dispatch
// ---------------------------------------------------------------------

void
TccProcessor::receive(const Message &msg)
{
    switch (msg.type) {
      case MsgType::LoadReply: onLoadReply(msg); break;
      case MsgType::TidReply: onTidReply(msg); break;
      case MsgType::ProbeReply: onProbeReply(msg); break;
      case MsgType::Inv: onInv(msg); break;
      case MsgType::DataReq: onDataReq(msg); break;
      case MsgType::PartialAck: onPartialAck(msg); break;
      default:
        panic("proc %u got unexpected %s", nodeId,
              msgTypeName(msg.type));
    }
}

} // namespace tcc
