/**
 * @file
 * Global TID vendor. The paper requires a *gap-free* sequence of
 * transaction IDs (distributed timestamps a la TLR do not work because
 * directories must be able to account for every TID, serviced or
 * skipped). We model the vendor as a simple serialized server hosted
 * at node 0.
 */

#ifndef TCC_PROC_TID_VENDOR_HH
#define TCC_PROC_TID_VENDOR_HH

#include <algorithm>
#include <cstdint>

#include "common/types.hh"
#include "noc/network.hh"
#include "sim/event_queue.hh"

namespace tcc {

/** Serialized global Transaction-ID vendor. */
class TidVendor
{
  public:
    TidVendor(NodeId node, EventQueue &eq, Network &net,
              Tick service_latency = 5)
        : nodeId(node), eventq(eq), network(net),
          serviceLatency(service_latency)
    {}

    /** Handle one TidReq; replies with the next gap-free TID. */
    void
    receive(const Message &msg)
    {
        const Tick start = std::max(eventq.now(), busyUntil);
        busyUntil = start + serviceLatency;
        const Tid t = nextTid++;
        // Build the reply inside the event: the {this, requester, t}
        // capture fits the queue's inline callback storage.
        const NodeId requester = msg.src;
        eventq.scheduleAt(busyUntil, [this, requester, t]() {
            Message reply;
            reply.type = MsgType::TidReply;
            reply.src = nodeId;
            reply.dst = requester;
            reply.tid = t;
            reply.bytes = msgBytes(MsgType::TidReply, 0);
            network.send(reply);
        });
    }

    /** Total TIDs handed out (== the TID every directory must reach). */
    Tid issued() const { return nextTid; }

  private:
    NodeId nodeId;
    EventQueue &eventq;
    Network &network;
    Tick serviceLatency;
    Tick busyUntil = 0;
    Tid nextTid = 0;
};

} // namespace tcc

#endif // TCC_PROC_TID_VENDOR_HH
