/**
 * @file
 * Speculative private cache hierarchy (paper Figure 1b).
 *
 * Each processor owns a two-level private hierarchy:
 *  - The L2 holds all protocol state: per-word valid bits, per-word
 *    speculatively-read (SR) and speculatively-modified (SM) bits, and
 *    a per-line dirty (D) bit supporting the write-back protocol. The
 *    L2 is inclusive of the L1.
 *  - The L1 is a timing filter only (a tag array deciding 1-cycle vs
 *    L2-latency hits); all coherence/speculation state lives in the L2
 *    entry. The paper tracks SR/SM at all levels; collapsing the state
 *    into the inclusive L2 is behaviourally equivalent and documented
 *    in DESIGN.md.
 *
 * "Ghost" lines: when a line that the current transaction has
 * speculatively read is invalidated or flushed without causing a
 * violation, the tag and SR bits are retained with zero valid bits.
 * Later invalidations can then still be matched against the read set -
 * dropping the SR bits would silently miss conflicts. This corresponds
 * to per-word valid bits in the paper's cache.
 */

#ifndef TCC_CACHE_SPEC_CACHE_HH
#define TCC_CACHE_SPEC_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/arena.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace tcc {

/** Geometry/latency parameters for the private hierarchy (Table 2). */
struct CacheConfig {
    std::uint32_t lineBytes = 32;
    std::uint32_t l1Bytes = 32 * 1024;
    std::uint32_t l1Assoc = 4;
    Tick l1Latency = 1;
    std::uint32_t l2Bytes = 512 * 1024;
    std::uint32_t l2Assoc = 8;
    Tick l2Latency = 16;
    Granularity granularity = Granularity::Word;
};

/** Per-word flag mask within one line. */
using WordMask = std::uint64_t;

/**
 * The speculative cache hierarchy of one processor.
 *
 * This class is purely local state + timing: it never talks to the
 * network. The processor drives it and reacts to its outcomes (e.g.,
 * sending a WriteBack when a dirty line is speculatively written for
 * the first time in a transaction).
 */
class SpecCache
{
  public:
    /** @param arena backs the tag/state arrays (nullptr = heap). */
    explicit SpecCache(const CacheConfig &cfg, Arena *arena = nullptr);

    /** Number of 4-byte words per line. */
    std::uint32_t wordsPerLine() const { return lineWords; }

    /** Line-align an address. */
    Addr lineAlign(Addr a) const { return a & ~Addr(config.lineBytes - 1); }

    /** Bit mask covering the word containing @p a (or the whole line
     *  under line granularity). */
    WordMask maskFor(Addr a) const;

    /** Full-line mask. */
    WordMask
    fullMask() const
    {
        return lineWords >= 64 ? ~WordMask(0)
                               : ((WordMask(1) << lineWords) - 1);
    }

    // ------------------------------------------------------------------
    // Processor-side accesses
    // ------------------------------------------------------------------

    struct LoadOutcome {
        bool hit = false;       ///< word data present
        Tick latency = 0;       ///< access latency when hit
    };

    /**
     * Speculative load. On a hit, sets the SR bit(s) for the word and
     * registers the line in the transaction's read set. On a miss the
     * caller must fetch the line (fill()) and retry.
     */
    LoadOutcome load(Addr addr);

    struct StoreOutcome {
        bool hit = false;           ///< line tag present (store applied)
        bool needsWriteBack = false;///< committed-dirty data must be
                                    ///< written back before this first
                                    ///< speculative write
        Tid writeBackTid = kInvalidTid; ///< TID that committed the
                                        ///< dirty data (tags the WB)
        Tick latency = 0;
    };

    /**
     * Speculative store (write-allocate: the line must be present; on a
     * tag miss the caller fetches first). Sets SM and valid bits. When
     * the line holds committed dirty data and this is the transaction's
     * first speculative write to it, reports needsWriteBack and clears
     * the dirty bit - the caller emits the WriteBack message (paper
     * Section 3.1: "We check the dirty bit on the first speculative
     * write...").
     */
    StoreOutcome store(Addr addr);

    struct FillOutcome {
        bool ok = false;          ///< line inserted
        bool overflow = false;    ///< every candidate way is speculative
        bool evictedDirty = false;///< a committed dirty line was evicted
        Addr evictedAddr = 0;     ///< its address (WriteBack needed)
        Tid evictedTid = kInvalidTid; ///< TID that committed the data
    };

    /**
     * Insert the line containing @p addr after a remote fill. May evict
     * a non-speculative victim (reporting a dirty write-back), or
     * report overflow when every way in the set carries speculative
     * state that cannot be displaced.
     */
    FillOutcome fill(Addr addr);

    // ------------------------------------------------------------------
    // Transaction boundary operations
    // ------------------------------------------------------------------

    /** One speculatively modified line of the current transaction. */
    struct WriteSetLine {
        Addr lineAddr;
        WordMask smMask;
    };

    /** Snapshot of the current write set (for Mark messages). */
    std::vector<WriteSetLine> writeSet() const;

    /** Number of speculatively read lines (read-set footprint stat). */
    std::uint32_t readSetLines() const;

    /**
     * Commit the current transaction's speculative state: SM words
     * become committed dirty data (this processor is now the owner
     * until write-back), all SR/SM bits clear. @p tid tags the dirty
     * lines so later write-backs can be matched against the
     * directory's per-line commit TID (race elimination).
     * @p make_dirty is false under write-through commit: the data went
     * to memory with the commit, so the lines stay clean.
     */
    void commitSpec(Tid tid, bool make_dirty = true);

    /**
     * Abort: discard speculatively written words (their valid bits
     * drop), clear all SR/SM bits.
     */
    void abortSpec();

    // ------------------------------------------------------------------
    // External (directory-initiated) operations
    // ------------------------------------------------------------------

    struct InvOutcome {
        bool srOverlap = false; ///< invalidated words intersect the
                                ///< current transaction's read set
        bool smOverlap = false; ///< ... or its write set (stat only)
    };

    /**
     * Invalidation from a committing transaction. Drops the valid bits
     * for the whole line but retains SR/SM bits (ghost) so the caller
     * can decide on a violation and later invalidations still match.
     */
    InvOutcome invalidate(Addr lineAddr, WordMask mask);

    /**
     * Flush for a DataReq: the directory asked this (owner) processor
     * to write the committed line back. Clears dirty and valid bits,
     * keeps any speculative bits as a ghost.
     * @return true iff the line was present and committed-dirty.
     */
    bool flushLine(Addr lineAddr);

    /** @return true iff the line is present with committed dirty data. */
    bool isDirty(Addr lineAddr) const;

    /** @return true iff the tag is present (any state). */
    bool present(Addr lineAddr) const;

    /** Current-transaction SR mask of the line (0 if absent). */
    WordMask srMask(Addr lineAddr) const;

    /** Current-transaction SM mask of the line (0 if absent). */
    WordMask smMask(Addr lineAddr) const;

    /** TID whose commit produced the line's dirty data. */
    Tid lineCommitTid(Addr lineAddr) const;

    /**
     * Toggle speculative-read tracking. Solo mode (overflow
     * virtualization) disables it: the transaction is provably
     * unviolable, so loads need not pin lines or register conflicts,
     * keeping the cache evictable.
     */
    void setSrTracking(bool on) { srTracking = on; }
    bool srTrackingEnabled() const { return srTracking; }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    struct Stats {
        std::uint64_t loads = 0;
        std::uint64_t stores = 0;
        std::uint64_t l1Hits = 0;
        std::uint64_t l2Hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t fills = 0;
        std::uint64_t dirtyEvictions = 0;
        std::uint64_t overflows = 0;
        std::uint64_t ghostsCreated = 0;
    };

    const Stats &stats() const { return cacheStats; }

    const CacheConfig &cfg() const { return config; }

  private:
    struct Line {
        Addr tag = 0;            ///< line-aligned address
        bool allocated = false;
        bool dirty = false;      ///< committed modified (owner until WB)
        Tid commitTid = kInvalidTid; ///< TID that committed the data
        WordMask valid = 0;
        WordMask sr = 0;
        WordMask sm = 0;
        std::uint64_t lru = 0;
        bool inSpecList = false;
    };

    struct L1Tag {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lru = 0;
    };

    std::uint32_t setOf(Addr lineAddr) const;
    Line *find(Addr lineAddr);
    const Line *find(Addr lineAddr) const;
    void touchL1(Addr lineAddr);
    bool l1Hit(Addr lineAddr) const;
    void dropL1(Addr lineAddr);
    void noteSpec(Line &line, std::uint32_t set, std::uint32_t way);

    CacheConfig config;
    std::uint32_t lineWords;
    std::uint32_t l2Sets;
    std::uint32_t l1Sets;
    /// l2Sets x l2Assoc
    std::vector<Line, ArenaAllocator<Line>> lines;
    /// l1Sets x l1Assoc
    std::vector<L1Tag, ArenaAllocator<L1Tag>> l1Tags;
    /** (set, way) slots holding speculative state, for O(txn) cleanup. */
    std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> specSlots;
    std::uint64_t lruClock = 0;
    bool srTracking = true;
    Stats cacheStats;
};

} // namespace tcc

#endif // TCC_CACHE_SPEC_CACHE_HH
