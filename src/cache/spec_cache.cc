#include "cache/spec_cache.hh"

namespace tcc {

namespace {

bool
isPow2(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

SpecCache::SpecCache(const CacheConfig &cfg, Arena *arena)
    : config(cfg), lines(ArenaAllocator<Line>(arena)),
      l1Tags(ArenaAllocator<L1Tag>(arena)),
      specSlots(ArenaAllocator<std::uint32_t>(arena))
{
    if (!isPow2(cfg.lineBytes) || cfg.lineBytes < 4)
        fatal("line size must be a power of two >= 4");
    lineWords = cfg.lineBytes / 4;
    if (lineWords > 64)
        fatal("lines longer than 64 words are not supported");

    const std::uint32_t l2_lines = cfg.l2Bytes / cfg.lineBytes;
    if (l2_lines % cfg.l2Assoc != 0)
        fatal("L2 size/assoc mismatch");
    l2Sets = l2_lines / cfg.l2Assoc;
    if (!isPow2(l2Sets))
        fatal("L2 set count must be a power of two");
    lines.assign(static_cast<std::size_t>(l2Sets) * cfg.l2Assoc, Line{});

    const std::uint32_t l1_lines = cfg.l1Bytes / cfg.lineBytes;
    if (l1_lines % cfg.l1Assoc != 0)
        fatal("L1 size/assoc mismatch");
    l1Sets = l1_lines / cfg.l1Assoc;
    if (!isPow2(l1Sets))
        fatal("L1 set count must be a power of two");
    l1Tags.assign(static_cast<std::size_t>(l1Sets) * cfg.l1Assoc,
                  L1Tag{});
}

WordMask
SpecCache::maskFor(Addr a) const
{
    if (config.granularity == Granularity::Line)
        return fullMask();
    const std::uint32_t word =
        static_cast<std::uint32_t>((a & (config.lineBytes - 1)) / 4);
    return WordMask(1) << word;
}

std::uint32_t
SpecCache::setOf(Addr lineAddr) const
{
    return static_cast<std::uint32_t>(
        (lineAddr / config.lineBytes) & (l2Sets - 1));
}

SpecCache::Line *
SpecCache::find(Addr lineAddr)
{
    const std::uint32_t set = setOf(lineAddr);
    Line *base = &lines[static_cast<std::size_t>(set) * config.l2Assoc];
    for (std::uint32_t w = 0; w < config.l2Assoc; ++w) {
        if (base[w].allocated && base[w].tag == lineAddr)
            return &base[w];
    }
    return nullptr;
}

const SpecCache::Line *
SpecCache::find(Addr lineAddr) const
{
    return const_cast<SpecCache *>(this)->find(lineAddr);
}

bool
SpecCache::l1Hit(Addr lineAddr) const
{
    const std::uint32_t set = static_cast<std::uint32_t>(
        (lineAddr / config.lineBytes) & (l1Sets - 1));
    const L1Tag *base =
        &l1Tags[static_cast<std::size_t>(set) * config.l1Assoc];
    for (std::uint32_t w = 0; w < config.l1Assoc; ++w) {
        if (base[w].valid && base[w].tag == lineAddr)
            return true;
    }
    return false;
}

void
SpecCache::touchL1(Addr lineAddr)
{
    const std::uint32_t set = static_cast<std::uint32_t>(
        (lineAddr / config.lineBytes) & (l1Sets - 1));
    L1Tag *base = &l1Tags[static_cast<std::size_t>(set) * config.l1Assoc];
    std::uint32_t victim = 0;
    for (std::uint32_t w = 0; w < config.l1Assoc; ++w) {
        if (base[w].valid && base[w].tag == lineAddr) {
            base[w].lru = ++lruClock;
            return;
        }
        if (!base[w].valid) {
            victim = w;
        } else if (base[victim].valid &&
                   base[w].lru < base[victim].lru) {
            victim = w;
        }
    }
    base[victim] = L1Tag{lineAddr, true, ++lruClock};
}

void
SpecCache::dropL1(Addr lineAddr)
{
    const std::uint32_t set = static_cast<std::uint32_t>(
        (lineAddr / config.lineBytes) & (l1Sets - 1));
    L1Tag *base = &l1Tags[static_cast<std::size_t>(set) * config.l1Assoc];
    for (std::uint32_t w = 0; w < config.l1Assoc; ++w) {
        if (base[w].valid && base[w].tag == lineAddr)
            base[w].valid = false;
    }
}

void
SpecCache::noteSpec(Line &line, std::uint32_t set, std::uint32_t way)
{
    if (!line.inSpecList) {
        line.inSpecList = true;
        specSlots.push_back(set * config.l2Assoc + way);
    }
}

SpecCache::LoadOutcome
SpecCache::load(Addr addr)
{
    ++cacheStats.loads;
    const Addr la = lineAlign(addr);
    const WordMask m = maskFor(addr);

    Line *line = find(la);
    if (!line || (line->valid & m) != m) {
        ++cacheStats.misses;
        return LoadOutcome{false, 0};
    }

    // Reading a word this transaction already wrote is not a
    // dependence on other transactions; under word granularity we can
    // avoid the false conflict. Line granularity keeps the coarse bit.
    // Solo mode disables SR tracking entirely (the transaction cannot
    // be violated), keeping lines evictable.
    if (srTracking) {
        if (config.granularity == Granularity::Word)
            line->sr |= (m & ~line->sm);
        else
            line->sr |= m;
        const std::uint32_t set = setOf(la);
        noteSpec(*line, set,
                 static_cast<std::uint32_t>(
                     line - &lines[static_cast<std::size_t>(set) *
                                   config.l2Assoc]));
    }
    line->lru = ++lruClock;

    if (l1Hit(la)) {
        ++cacheStats.l1Hits;
        touchL1(la);
        return LoadOutcome{true, config.l1Latency};
    }
    ++cacheStats.l2Hits;
    touchL1(la);
    return LoadOutcome{true, config.l2Latency};
}

SpecCache::StoreOutcome
SpecCache::store(Addr addr)
{
    ++cacheStats.stores;
    const Addr la = lineAlign(addr);
    const WordMask m = maskFor(addr);

    Line *line = find(la);
    if (!line) {
        ++cacheStats.misses;
        return StoreOutcome{false, false, 0};
    }

    StoreOutcome out;
    out.hit = true;
    // First speculative write to a line holding committed dirty data:
    // the old data must be written back to the non-speculative level
    // first (the caller sends the WriteBack message).
    if (line->dirty && line->sm == 0) {
        out.needsWriteBack = true;
        out.writeBackTid = line->commitTid;
        line->dirty = false;
    }
    line->sm |= m;
    line->valid |= m;
    line->lru = ++lruClock;
    const std::uint32_t set = setOf(la);
    noteSpec(*line, set,
             static_cast<std::uint32_t>(
                 line - &lines[static_cast<std::size_t>(set) *
                               config.l2Assoc]));

    if (l1Hit(la)) {
        ++cacheStats.l1Hits;
        out.latency = config.l1Latency;
    } else {
        ++cacheStats.l2Hits;
        out.latency = config.l2Latency;
    }
    touchL1(la);
    return out;
}

SpecCache::FillOutcome
SpecCache::fill(Addr addr)
{
    const Addr la = lineAlign(addr);
    FillOutcome out;

    Line *line = find(la);
    if (line) {
        // Ghost or partially valid line: refresh the data words.
        line->valid = fullMask();
        line->lru = ++lruClock;
        touchL1(la);
        ++cacheStats.fills;
        out.ok = true;
        return out;
    }

    const std::uint32_t set = setOf(la);
    Line *base = &lines[static_cast<std::size_t>(set) * config.l2Assoc];
    Line *victim = nullptr;
    for (std::uint32_t w = 0; w < config.l2Assoc; ++w) {
        Line &cand = base[w];
        if (!cand.allocated) {
            victim = &cand;
            break;
        }
        if (cand.sr != 0 || cand.sm != 0)
            continue; // speculative lines are not evictable
        if (!victim || cand.lru < victim->lru)
            victim = &cand;
    }

    if (!victim) {
        ++cacheStats.overflows;
        out.overflow = true;
        return out;
    }

    if (victim->allocated) {
        if (victim->dirty) {
            out.evictedDirty = true;
            out.evictedAddr = victim->tag;
            out.evictedTid = victim->commitTid;
            ++cacheStats.dirtyEvictions;
        }
        dropL1(victim->tag);
    }

    *victim = Line{};
    victim->tag = la;
    victim->allocated = true;
    victim->valid = fullMask();
    victim->lru = ++lruClock;
    touchL1(la);
    ++cacheStats.fills;
    out.ok = true;
    return out;
}

std::vector<SpecCache::WriteSetLine>
SpecCache::writeSet() const
{
    std::vector<WriteSetLine> ws;
    for (std::uint32_t slot : specSlots) {
        const Line &line = lines[slot];
        if (line.allocated && line.sm != 0)
            ws.push_back(WriteSetLine{line.tag, line.sm});
    }
    return ws;
}

std::uint32_t
SpecCache::readSetLines() const
{
    std::uint32_t n = 0;
    for (std::uint32_t slot : specSlots) {
        const Line &line = lines[slot];
        if (line.allocated && line.sr != 0)
            ++n;
    }
    return n;
}

void
SpecCache::commitSpec(Tid tid, bool make_dirty)
{
    for (std::uint32_t slot : specSlots) {
        Line &line = lines[slot];
        if (!line.allocated) {
            line.inSpecList = false;
            continue;
        }
        if (line.sm != 0 && make_dirty) {
            line.dirty = true; // now committed data; we are the owner
            line.commitTid = tid;
        }
        line.sr = 0;
        line.sm = 0;
        line.inSpecList = false;
        // Ghost lines (no valid words) with no remaining role free up.
        if (line.valid == 0 && !line.dirty)
            line.allocated = false;
    }
    specSlots.clear();
}

void
SpecCache::abortSpec()
{
    for (std::uint32_t slot : specSlots) {
        Line &line = lines[slot];
        if (!line.allocated) {
            line.inSpecList = false;
            continue;
        }
        // Speculatively written words never became real data.
        line.valid &= ~line.sm;
        line.sr = 0;
        line.sm = 0;
        line.inSpecList = false;
        if (line.valid == 0 && !line.dirty) {
            dropL1(line.tag);
            line.allocated = false;
        }
    }
    specSlots.clear();
}

SpecCache::InvOutcome
SpecCache::invalidate(Addr lineAddr, WordMask mask)
{
    InvOutcome out;
    Line *line = find(lineAlign(lineAddr));
    if (!line)
        return out;

    out.srOverlap = (line->sr & mask) != 0;
    out.smOverlap = (line->sm & mask) != 0;

    // Drop the committed data, but keep (a) speculatively written words
    // - they are this transaction's own pending values - and (b) the
    // SR/SM bits as a ghost so later invalidations still see the read
    // set.
    line->valid &= line->sm;
    line->dirty = false;
    dropL1(line->tag);
    if (line->sr == 0 && line->sm == 0) {
        line->allocated = false;
    } else {
        ++cacheStats.ghostsCreated;
    }
    return out;
}

bool
SpecCache::flushLine(Addr lineAddr)
{
    Line *line = find(lineAlign(lineAddr));
    if (!line || !line->dirty)
        return false;
    line->dirty = false;
    line->valid &= line->sm;
    dropL1(line->tag);
    if (line->sr == 0 && line->sm == 0) {
        line->allocated = false;
    } else {
        ++cacheStats.ghostsCreated;
    }
    return true;
}

bool
SpecCache::isDirty(Addr lineAddr) const
{
    const Line *line = find(lineAlign(lineAddr));
    return line && line->dirty;
}

bool
SpecCache::present(Addr lineAddr) const
{
    return find(lineAlign(lineAddr)) != nullptr;
}

WordMask
SpecCache::srMask(Addr lineAddr) const
{
    const Line *line = find(lineAlign(lineAddr));
    return line ? line->sr : 0;
}

WordMask
SpecCache::smMask(Addr lineAddr) const
{
    const Line *line = find(lineAlign(lineAddr));
    return line ? line->sm : 0;
}

Tid
SpecCache::lineCommitTid(Addr lineAddr) const
{
    const Line *line = find(lineAlign(lineAddr));
    return line ? line->commitTid : kInvalidTid;
}

} // namespace tcc
