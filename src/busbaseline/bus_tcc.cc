#include "busbaseline/bus_tcc.hh"

#include <algorithm>

#include "common/log.hh"

namespace tcc {

BusTcc::BusTcc(const BusConfig &cfg) : config(cfg)
{
    if (cfg.numProcs == 0)
        fatal("bus TCC needs at least one processor");
    for (NodeId n = 0; n < cfg.numProcs; ++n) {
        procs.push_back(std::make_unique<Proc>(cfg.cache));
        procs.back()->id = n;
    }
}

void
BusTcc::setSource(NodeId proc, TransactionSource *src)
{
    procs.at(proc)->source = src;
}

void
BusTcc::initializeWord(Addr addr, std::uint64_t value)
{
    store.write(addr, value);
    if (config.enableChecker)
        serialChecker.setInitial(GlobalStore::wordAlign(addr), value);
}

Tick
BusTcc::busTransfer(std::uint64_t bytes)
{
    const Tick xfer = config.busArbitration +
                      std::max<Tick>(1, bytes /
                                            config.busBytesPerCycle);
    const Tick start = std::max(eventq.now(), busFree);
    busFree = start + xfer;
    busBusy += xfer;
    return (start - eventq.now()) + xfer;
}

void
BusTcc::startNext(Proc &p)
{
    if (!p.source)
        panic("bus proc %u has no source", p.id);
    auto txn = p.source->nextTransaction();
    if (!txn) {
        p.done = true;
        p.doneAt = eventq.now();
        ++doneProcs;
        checkBarrier();
        return;
    }
    p.curOps = std::move(txn->ops);
    if (txn->barrierBefore) {
        p.waitingBarrier = true;
        p.idleStart = eventq.now();
        barrierWaiters.emplace_back(p.id, [this, &p]() {
            p.waitingBarrier = false;
            p.stats.idleCycles += eventq.now() - p.idleStart;
            beginAttempt(p);
        });
        checkBarrier();
        return;
    }
    beginAttempt(p);
}

void
BusTcc::checkBarrier()
{
    const std::uint32_t active = config.numProcs - doneProcs;
    if (active == 0 || barrierWaiters.size() < active)
        return;
    auto waiters = std::move(barrierWaiters);
    barrierWaiters.clear();
    for (auto &[node, fn] : waiters)
        eventq.schedule(1, [f = std::move(fn)]() { f(); });
}

void
BusTcc::beginAttempt(Proc &p)
{
    p.opIdx = 0;
    p.lastLoaded = 0;
    p.writeBuf.clear();
    p.readLog.clear();
    p.attemptStart = eventq.now();
    p.attemptUseful = 0;
    p.attemptMiss = 0;
    p.attemptInstr = 0;
    ++p.gen;
    step(p);
}

void
BusTcc::resume(Proc &p, Tick delay)
{
    const std::uint64_t my_gen = p.gen;
    eventq.schedule(delay, [this, &p, my_gen]() {
        if (p.gen != my_gen)
            return;
        step(p);
    });
}

void
BusTcc::step(Proc &p)
{
    while (p.opIdx < p.curOps.size()) {
        const TxOp &op = p.curOps[p.opIdx];
        switch (op.kind) {
          case TxOp::Kind::Compute:
            p.attemptUseful += op.cycles;
            p.attemptInstr += op.cycles;
            ++p.opIdx;
            resume(p, op.cycles);
            return;
          case TxOp::Kind::Load: {
            auto out = p.cache.load(op.addr);
            Tick lat = out.latency;
            if (!out.hit) {
                // Miss to the shared memory *over the shared bus*: the
                // request+fill occupy the bus, so misses from all
                // processors serialize - the fundamental reason the
                // bus design stops scaling.
                auto fill = p.cache.fill(op.addr);
                if (fill.overflow) {
                    ++p.stats.violations;
                    violate(p);
                    return;
                }
                out = p.cache.load(op.addr);
                lat = busTransfer(config.cache.lineBytes) +
                      config.memLatency;
            }
            const Addr word = GlobalStore::wordAlign(op.addr);
            auto it = p.writeBuf.find(word);
            if (it != p.writeBuf.end()) {
                p.lastLoaded = it->second;
            } else {
                p.lastLoaded = store.read(word);
                p.readLog.emplace_back(word, p.lastLoaded);
            }
            p.attemptUseful += 1;
            p.attemptMiss += lat > 1 ? lat - 1 : 0;
            ++p.attemptInstr;
            ++p.opIdx;
            resume(p, lat);
            return;
          }
          case TxOp::Kind::Store:
          case TxOp::Kind::StoreAdd: {
            auto out = p.cache.store(op.addr);
            Tick lat = out.latency;
            if (!out.hit) {
                auto fill = p.cache.fill(op.addr);
                if (fill.overflow) {
                    ++p.stats.violations;
                    violate(p);
                    return;
                }
                out = p.cache.store(op.addr);
                lat = busTransfer(config.cache.lineBytes) +
                      config.memLatency;
            }
            const Addr word = GlobalStore::wordAlign(op.addr);
            p.writeBuf[word] = op.kind == TxOp::Kind::Store
                                   ? op.value
                                   : p.lastLoaded + op.value;
            p.attemptUseful += 1;
            p.attemptMiss += lat > 1 ? lat - 1 : 0;
            ++p.attemptInstr;
            ++p.opIdx;
            resume(p, lat);
            return;
          }
        }
    }
    requestToken(p);
}

void
BusTcc::requestToken(Proc &p)
{
    p.commitStart = eventq.now();
    p.waitingToken = true;
    tokenQueue.push_back(p.id);
    grantToken();
}

void
BusTcc::grantToken()
{
    if (tokenHeld || tokenQueue.empty())
        return;
    tokenHeld = true;
    const NodeId id = tokenQueue.front();
    tokenQueue.pop_front();
    Proc &p = *procs[id];
    p.waitingToken = false;

    // Flush the write-set over the ordered bus: addresses + data
    // (write-through commit). The bus is the serialization point.
    const auto ws = p.cache.writeSet();
    const std::uint64_t bytes =
        ws.size() *
        (8ull + config.cache.lineBytes); // addr + data per line
    const Tick wait = busTransfer(bytes);

    eventq.schedule(wait, [this, &p]() { doCommit(p); });
}

void
BusTcc::doCommit(Proc &p)
{
    // Snoop: every other processor checks the committed words against
    // its speculative read set and violates on overlap (the committer
    // holds the token, so it always wins).
    const auto ws = p.cache.writeSet();
    for (auto &other : procs) {
        if (other->id == p.id || other->done || other->waitingBarrier)
            continue;
        bool hit = false;
        for (const auto &line : ws) {
            auto out = other->cache.invalidate(line.lineAddr,
                                               line.smMask);
            if (out.srOverlap)
                hit = true;
        }
        if (hit) {
            ++other->stats.violations;
            violate(*other);
        }
    }

    // Publish and retire.
    for (const auto &[addr, value] : p.writeBuf)
        store.write(addr, value);
    if (config.enableChecker) {
        std::vector<std::pair<Addr, std::uint64_t>> writes;
        writes.reserve(p.writeBuf.size());
        for (const auto &[addr, value] : p.writeBuf)
            writes.emplace_back(addr, value);
        serialChecker.record(commitSeq, p.id, p.readLog,
                             std::move(writes));
    }
    ++commitSeq;
    p.cache.commitSpec(commitSeq);

    p.stats.usefulCycles += p.attemptUseful;
    p.stats.missCycles += p.attemptMiss;
    p.stats.commitCycles += eventq.now() - p.commitStart;
    p.stats.committedInstructions += p.attemptInstr;
    ++p.stats.txnsCommitted;
    if (p.source)
        p.source->transactionCommitted();

    tokenHeld = false;
    grantToken();

    ++p.gen;
    eventq.schedule(1, [this, &p]() { startNext(p); });
}

void
BusTcc::violate(Proc &p)
{
    p.stats.violationCycles += eventq.now() - p.attemptStart +
                               config.violationRestartPenalty;
    p.cache.abortSpec();
    if (p.source)
        p.source->transactionViolated();
    if (p.waitingToken) {
        // Withdraw the pending commit request.
        for (auto it = tokenQueue.begin(); it != tokenQueue.end(); ++it) {
            if (*it == p.id) {
                tokenQueue.erase(it);
                break;
            }
        }
        p.waitingToken = false;
    }
    ++p.gen;
    const std::uint64_t my_gen = p.gen;
    eventq.schedule(config.violationRestartPenalty,
                    [this, &p, my_gen]() {
                        if (p.gen != my_gen)
                            return;
                        beginAttempt(p);
                    });
}

RunResult
BusTcc::run(Tick max_ticks)
{
    for (auto &p : procs) {
        Proc *pp = p.get();
        eventq.schedule(0, [this, pp]() { startNext(*pp); });
    }
    RunResult res;
    while (!eventq.empty() && eventq.now() <= max_ticks) {
        eventq.step();
        ++res.events;
    }

    bool all_done = true;
    Tick end = 0;
    for (auto &p : procs) {
        if (!p->done)
            all_done = false;
        else
            end = std::max(end, p->doneAt);
    }
    res.completed = all_done;
    res.cycles = all_done ? end : eventq.now();
    if (all_done)
        for (auto &p : procs)
            p->stats.idleCycles += end - p->doneAt;

    res.quiesced = all_done && !tokenHeld && tokenQueue.empty();
    res.breakdown = computeBreakdown();
    for (const auto &p : procs) {
        ProcRunStats ps;
        ps.txnsCommitted = p->stats.txnsCommitted;
        ps.violations = p->stats.violations;
        ps.committedInstructions = p->stats.committedInstructions;
        res.procs.push_back(ps);
        res.committedTxns += ps.txnsCommitted;
        res.violations += ps.violations;
        res.committedInstructions += ps.committedInstructions;
    }
    if (config.enableChecker) {
        res.serial.checked = true;
        const auto verdict = serialChecker.verify();
        res.serial.ok = verdict.ok;
        res.serial.error = verdict.error;
        res.serial.checks = verdict.txnsChecked;
    }
    return res;
}

Breakdown
BusTcc::computeBreakdown() const
{
    Breakdown bd;
    for (const auto &p : procs) {
        bd.useful += p->stats.usefulCycles;
        bd.miss += p->stats.missCycles;
        bd.commit += p->stats.commitCycles;
        bd.idle += p->stats.idleCycles;
        bd.violation += p->stats.violationCycles;
    }
    return bd;
}

} // namespace tcc
