/**
 * @file
 * Small-scale (bus-based) TCC baseline - the original TCC design the
 * paper scales past (Section 2.2, "Protocol Operation Overview").
 *
 * Characteristics, per the paper:
 *  - commits are serialized by a single commit token (OCC condition 2:
 *    execution overlaps, but only one transaction commits at a time);
 *  - the committing processor flushes its write-set over an ordered
 *    bus (write-through commit: addresses AND data);
 *  - every other processor snoops the commit and violates when the
 *    committed words overlap its speculatively-read words;
 *  - the sum of all commit times lower-bounds execution time, which is
 *    the scaling bottleneck Scalable TCC removes.
 *
 * The model shares the operation vocabulary (TxOp), speculative cache,
 * workload sources, and statistics buckets with the scalable system so
 * the two are directly comparable in the ablation benchmark.
 */

#ifndef TCC_BUSBASELINE_BUS_TCC_HH
#define TCC_BUSBASELINE_BUS_TCC_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cache/spec_cache.hh"
#include "check/serial_checker.hh"
#include "common/flat_map.hh"
#include "core/system.hh"
#include "mem/global_store.hh"
#include "sim/event_queue.hh"
#include "workload/transaction_source.hh"

namespace tcc {

/** Bus-based TCC configuration. */
struct BusConfig {
    std::uint32_t numProcs = 8;
    CacheConfig cache;
    /** Bus transfer bandwidth in bytes/cycle (shared by everyone). */
    std::uint32_t busBytesPerCycle = 16;
    /** Fixed bus arbitration latency per transfer. */
    Tick busArbitration = 3;
    /** Shared L2 / memory access latency for misses. */
    Tick memLatency = 100;
    Tick violationRestartPenalty = 10;
    bool enableChecker = false;
};

/**
 * A bus-based TCC multiprocessor. The public surface mirrors System
 * closely enough for side-by-side benchmarking.
 */
class BusTcc
{
  public:
    explicit BusTcc(const BusConfig &cfg);

    void setSource(NodeId proc, TransactionSource *src);
    void initializeWord(Addr addr, std::uint64_t value);

    /**
     * Run to completion (or @p max_ticks). The result is the same
     * tcc::RunResult System::run() returns, so the bus baseline and
     * the scalable system are drop-in interchangeable in bench code;
     * fields with no bus equivalent (dirs, pdes, overflows,
     * invariants) stay at their defaults.
     */
    RunResult run(Tick max_ticks = kTickMax);

    GlobalStore &memory() { return store; }
    /** The serializability checker's commit log (structural access;
     *  the verdict is in RunResult::serial). */
    const SerialChecker &commitLog() const { return serialChecker; }

    struct ProcStats {
        std::uint64_t usefulCycles = 0;
        std::uint64_t missCycles = 0;
        std::uint64_t commitCycles = 0;
        std::uint64_t idleCycles = 0;
        std::uint64_t violationCycles = 0;
        std::uint64_t txnsCommitted = 0;
        std::uint64_t violations = 0;
        std::uint64_t committedInstructions = 0;
    };

    const ProcStats &procStats(NodeId p) const
    {
        return procs.at(p)->stats;
    }

    /** Total cycles the bus was busy with commit flushes. */
    Tick busBusyCycles() const { return busBusy; }

  private:
    struct Proc {
        explicit Proc(const CacheConfig &cc) : cache(cc) {}

        NodeId id = 0;
        SpecCache cache;
        TransactionSource *source = nullptr;
        std::vector<TxOp> curOps;
        std::size_t opIdx = 0;
        std::uint64_t lastLoaded = 0;
        FlatMap<Addr, std::uint64_t> writeBuf;
        std::vector<std::pair<Addr, std::uint64_t>> readLog;
        bool done = false;
        bool waitingToken = false;
        bool waitingBarrier = false;
        std::uint64_t gen = 0;
        Tick attemptStart = 0;
        Tick idleStart = 0;
        Tick commitStart = 0;
        Tick doneAt = 0;
        std::uint64_t attemptUseful = 0;
        std::uint64_t attemptMiss = 0;
        std::uint64_t attemptInstr = 0;
        ProcStats stats;
    };

    /** Reserve the bus for @p bytes; returns the latency from now
     *  until the transfer completes (queueing + transfer). */
    Tick busTransfer(std::uint64_t bytes);

    /** Sum of per-processor execution-time buckets. */
    Breakdown computeBreakdown() const;

    void startNext(Proc &p);
    void beginAttempt(Proc &p);
    void step(Proc &p);
    void resume(Proc &p, Tick delay);
    void requestToken(Proc &p);
    void grantToken();
    void doCommit(Proc &p);
    void violate(Proc &p);
    void checkBarrier();

    BusConfig config;
    EventQueue eventq;
    GlobalStore store;
    SerialChecker serialChecker;
    std::vector<std::unique_ptr<Proc>> procs;

    /** FIFO of processors waiting for the commit token. */
    std::deque<NodeId> tokenQueue;
    bool tokenHeld = false;
    /** Next tick at which the bus is free (serialized transfers). */
    Tick busFree = 0;
    Tick busBusy = 0;
    std::uint64_t commitSeq = 0; ///< serial commit order (checker TID)
    std::vector<std::pair<NodeId, std::function<void()>>>
        barrierWaiters;
    std::uint32_t doneProcs = 0;
};

} // namespace tcc

#endif // TCC_BUSBASELINE_BUS_TCC_HH
