#include "core/sweep.hh"

#include <cstdlib>

#include "common/log.hh"

namespace tcc {

unsigned
SweepRunner::defaultJobs()
{
    if (const char *env = std::getenv("TCC_JOBS")) {
        char *end = nullptr;
        const unsigned long n = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && n > 0)
            return static_cast<unsigned>(n);
        warn("ignoring malformed TCC_JOBS='%s'", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

SweepRunner::SweepRunner(unsigned jobs)
    : numJobs(jobs > 0 ? jobs : defaultJobs())
{
    if (numJobs <= 1) {
        numJobs = 1;
        return; // inline mode: no queues, no threads
    }
    workers.reserve(numJobs);
    for (unsigned i = 0; i < numJobs; ++i)
        workers.push_back(std::make_unique<Worker>());
    threads.reserve(numJobs);
    for (unsigned i = 0; i < numJobs; ++i)
        threads.emplace_back([this, i]() { workerLoop(i); });
}

SweepRunner::~SweepRunner()
{
    {
        std::lock_guard<std::mutex> lk(stateMtx);
        shuttingDown = true;
    }
    stateCv.notify_all();
    for (auto &t : threads)
        t.join();
}

void
SweepRunner::submit(std::function<void()> fn)
{
    if (numJobs == 1) {
        // Degenerate case: behave exactly like the serial loop this
        // runner replaced, except that errors are still delivered
        // through wait() like in the parallel case.
        try {
            fn();
        } catch (...) {
            std::lock_guard<std::mutex> lk(stateMtx);
            if (!firstError)
                firstError = std::current_exception();
        }
        return;
    }
    unsigned target;
    {
        std::lock_guard<std::mutex> lk(stateMtx);
        ++pending;
        ++queued;
        target = nextWorker;
        nextWorker = (nextWorker + 1) % numJobs;
    }
    {
        std::lock_guard<std::mutex> lk(workers[target]->mtx);
        workers[target]->queue.push_back(std::move(fn));
    }
    stateCv.notify_all();
}

void
SweepRunner::wait()
{
    if (numJobs > 1) {
        // The submitting thread is an extra worker while it waits: it
        // steals from the back of the per-worker deques (slot index
        // numJobs has no deque of its own).
        for (;;) {
            if (runOneJob(numJobs))
                continue;
            std::unique_lock<std::mutex> lk(stateMtx);
            if (pending == 0)
                break;
            if (queued > 0)
                continue; // a job appeared between pop and lock
            stateCv.wait(lk, [this]() {
                return pending == 0 || queued > 0;
            });
            if (pending == 0)
                break;
        }
    }
    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> lk(stateMtx);
        err = firstError;
        firstError = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

void
SweepRunner::workerLoop(unsigned self)
{
    for (;;) {
        if (runOneJob(self))
            continue;
        std::unique_lock<std::mutex> lk(stateMtx);
        if (shuttingDown && queued == 0)
            return;
        stateCv.wait(lk, [this]() {
            return shuttingDown || queued > 0;
        });
        if (shuttingDown && queued == 0)
            return;
    }
}

bool
SweepRunner::runOneJob(unsigned self)
{
    std::function<void()> job;
    if (!popJob(self, job))
        return false;
    std::exception_ptr err;
    try {
        job();
    } catch (...) {
        err = std::current_exception();
    }
    finishJob(err);
    return true;
}

bool
SweepRunner::popJob(unsigned self, std::function<void()> &out)
{
    // Own queue first, front-out: a worker consumes its round-robin
    // share in submission order.
    if (self < workers.size()) {
        std::lock_guard<std::mutex> lk(workers[self]->mtx);
        if (!workers[self]->queue.empty()) {
            out = std::move(workers[self]->queue.front());
            workers[self]->queue.pop_front();
            std::lock_guard<std::mutex> slk(stateMtx);
            --queued;
            return true;
        }
    }
    // Then steal from the back of everyone else's, so a drained
    // worker picks up the jobs its victim would reach last.
    for (unsigned off = 1; off <= numJobs; ++off) {
        const unsigned victim = (self + off) % numJobs;
        if (victim == self)
            continue;
        std::lock_guard<std::mutex> lk(workers[victim]->mtx);
        if (workers[victim]->queue.empty())
            continue;
        out = std::move(workers[victim]->queue.back());
        workers[victim]->queue.pop_back();
        std::lock_guard<std::mutex> slk(stateMtx);
        --queued;
        return true;
    }
    return false;
}

void
SweepRunner::finishJob(std::exception_ptr err)
{
    {
        std::lock_guard<std::mutex> lk(stateMtx);
        if (err && !firstError)
            firstError = err;
        --pending;
    }
    stateCv.notify_all();
}

} // namespace tcc
