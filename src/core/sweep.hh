/**
 * @file
 * SweepRunner: a work-stealing thread pool for running many
 * *independent* simulations concurrently.
 *
 * The simulator's evaluation methodology (Figures 6-9 of the paper,
 * our bench_* drivers and stress sweeps) is embarrassingly parallel:
 * dozens of System instances that share nothing, each fully
 * deterministic on its own event queue. SweepRunner exploits that
 * shape. Every job is a closure; workers pop from the front of their
 * own deque and steal from the back of others', so a worker that
 * drains its share of short runs migrates to help with the long ones
 * (the 64-processor points dominate a sweep's critical path).
 *
 * Determinism contract: a sweep's *results* are a pure function of
 * its configs. Each System is thread-confined to whichever worker
 * runs it (see DESIGN.md section 7), so running jobs concurrently
 * cannot perturb their event ordering, and sweepIndex() returns
 * results in submission order regardless of completion order. A
 * parallel sweep is bit-identical to the serial loop it replaced.
 *
 * jobs == 1 degenerates to exactly the serial loop: submit() runs the
 * closure inline on the calling thread, no worker threads are
 * created.
 */

#ifndef TCC_CORE_SWEEP_HH
#define TCC_CORE_SWEEP_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tcc {

class SweepRunner
{
  public:
    /**
     * @param jobs Worker count; 0 means defaultJobs(). 1 runs every
     *             job inline on the submitting thread.
     */
    explicit SweepRunner(unsigned jobs = 0);

    /** Joins the workers; pending jobs are completed first. */
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    /**
     * Worker count chosen when the constructor gets jobs == 0: the
     * TCC_JOBS environment variable if set and positive, else
     * std::thread::hardware_concurrency(), else 1.
     */
    static unsigned defaultJobs();

    /** Number of workers this runner executes jobs on (>= 1). */
    unsigned jobs() const { return numJobs; }

    /**
     * Enqueue one job. Jobs must be independent: they may not touch
     * shared mutable state (each should own its System outright).
     * With jobs() == 1 the closure runs before submit() returns.
     */
    void submit(std::function<void()> fn);

    /**
     * Block until every submitted job has finished; the calling
     * thread steals and executes queued jobs while it waits. If any
     * job threw, rethrows the first exception (in submission order of
     * capture) after the queue drains. The runner is reusable after
     * wait() returns.
     */
    void wait();

  private:
    /**
     * Cache-line aligned so two workers' mutexes and deque headers
     * never share a line: each worker's hot pop path touches only its
     * own line, and steals pay one coherence miss instead of
     * ping-ponging a shared one.
     */
    struct alignas(64) Worker {
        std::mutex mtx;
        std::deque<std::function<void()>> queue;
    };

    void workerLoop(unsigned self);
    bool runOneJob(unsigned self);
    bool popJob(unsigned self, std::function<void()> &out);
    void finishJob(std::exception_ptr err);

    unsigned numJobs;
    std::vector<std::unique_ptr<Worker>> workers;
    std::vector<std::thread> threads;

    std::mutex stateMtx;
    std::condition_variable stateCv;
    std::size_t pending = 0;   ///< submitted but not yet finished
    std::size_t queued = 0;    ///< submitted but not yet popped
    std::exception_ptr firstError;
    bool shuttingDown = false;
    unsigned nextWorker = 0;   ///< round-robin submission cursor
};

/**
 * Run @p fn(i) for i in [0, n) on @p runner and return the results in
 * index order. T must be default-constructible and movable
 * (RunOutcome and friends are). This is the one-liner the bench
 * drivers use:
 *
 *   auto rows = sweepIndex<Row>(runner, configs.size(),
 *                               [&](std::size_t i) { return runOne(configs[i]); });
 */
template <typename T, typename Fn>
std::vector<T>
sweepIndex(SweepRunner &runner, std::size_t n, Fn fn)
{
    // Each in-flight result gets its own cache line; adjacent jobs
    // finishing on different workers would otherwise false-share one
    // line of the results vector when they store their outcome.
    struct alignas(64) Padded {
        T value{};
    };
    std::vector<Padded> slots(n);
    for (std::size_t i = 0; i < n; ++i)
        runner.submit([&slots, fn, i]() { slots[i].value = fn(i); });
    runner.wait();
    std::vector<T> results;
    results.reserve(n);
    for (auto &s : slots)
        results.push_back(std::move(s.value));
    return results;
}

} // namespace tcc

#endif // TCC_CORE_SWEEP_HH
