/**
 * @file
 * Reporting helpers: render the paper's tables and figure data series
 * as text from a finished System run. Used by the benchmark harness
 * and the examples.
 */

#ifndef TCC_CORE_REPORT_HH
#define TCC_CORE_REPORT_HH

#include <cstdint>
#include <string>

#include "core/system.hh"

namespace tcc {

/** One row of the Table 3 characterization for a finished run. */
struct AppCharacterization {
    std::string name;
    double txnSize90 = 0;        ///< 90th-pct transaction instructions
    double writeSetKB90 = 0;     ///< 90th-pct write-set KB
    double readSetKB90 = 0;      ///< 90th-pct read-set KB
    double opsPerWordWritten90 = 0;
    double dirsPerCommit90 = 0;
    double dirWorkingSet90 = 0;  ///< entries with remote sharers
    double dirOccupancy90 = 0;   ///< busy cycles per commit
};

/** Aggregate the Table 3 row from all processors/directories. */
AppCharacterization characterize(const System &sys,
                                 const std::string &name);

/** Render one Table 3 row (header printed via table3Header()). */
std::string table3Header();
std::string table3Row(const AppCharacterization &c);

/** Normalized execution-time breakdown line: "useful miss idle commit
 *  violation" as percentages (Figures 6/7/8). */
std::string breakdownRow(const std::string &label, const Breakdown &bd);
std::string breakdownHeader();

/** Figure 9 traffic row: bytes/instr by class at each directory. */
struct TrafficRow {
    std::string name;
    double overhead = 0;
    double miss = 0;
    double writeBack = 0;
    double shared = 0;

    double
    total() const
    {
        return overhead + miss + writeBack + shared;
    }
};

TrafficRow trafficPerInstr(const System &sys, const std::string &name);
std::string trafficHeader();
std::string trafficRowText(const TrafficRow &row);

/** One entry of the TAPE-style conflict hotspot report. */
struct ConflictHotspot {
    Addr lineAddr = 0;
    std::uint64_t violations = 0;
};

/**
 * TAPE-style profiling (paper Section 3.3 references TAPE): the lines
 * responsible for the most violations across all processors, sorted by
 * count. Lets a programmer find the contended data that limits
 * scalability.
 */
std::vector<ConflictHotspot> conflictHotspots(const System &sys,
                                              std::size_t top_n = 10);

} // namespace tcc

#endif // TCC_CORE_REPORT_HH
