#include "core/system.hh"

#include <algorithm>

#include "common/log.hh"

namespace tcc {

System::System(const SystemConfig &cfg)
    : config(cfg), eventq(&arena),
      tracer(eventq, &arena, cfg.traceCapacity),
      homes(cfg.numProcs, cfg.homePolicy, cfg.pageBytes, &arena),
      store(&arena)
{
    if (cfg.numProcs == 0)
        fatal("a system needs at least one processor");

    if (cfg.idealNetwork) {
        net = std::make_unique<IdealNetwork>(eventq, cfg.numProcs,
                                             cfg.idealLatency, &arena);
    } else {
        net = std::make_unique<MeshNetwork>(eventq, cfg.numProcs,
                                            cfg.mesh, &arena);
    }

    net->setTraceRecorder(&tracer);

    tidVendor = std::make_unique<TidVendor>(0, eventq, *net,
                                            cfg.tidVendorLatency);

    DirectoryConfig dir_cfg = cfg.directory;
    dir_cfg.lineBytes = cfg.cache.lineBytes;
    dir_cfg.writeThroughCommit = cfg.writeThroughCommit;
    ProcessorConfig proc_cfg = cfg.processor;
    proc_cfg.writeThroughCommit = cfg.writeThroughCommit;
    for (NodeId n = 0; n < cfg.numProcs; ++n) {
        dirs.push_back(std::make_unique<Directory>(
            n, cfg.numProcs, eventq, *net, dir_cfg, &arena));
        procs.push_back(std::make_unique<TccProcessor>(
            n, cfg.numProcs, eventq, *net, homes, store, cfg.cache,
            proc_cfg, /*vendor_node=*/0, &arena));
        dirs.back()->setTraceRecorder(&tracer);
        procs.back()->setTraceRecorder(&tracer);
        procs.back()->setBarrier(
            [this](NodeId node, std::function<void()> resume) {
                barrierArrive(node, std::move(resume));
            });
        procs.back()->setDoneHook([this]() {
            ++doneProcs;
            checkBarrierRelease();
        });
        if (cfg.enableChecker) {
            procs.back()->setCommitHook(
                [this](Tid tid, NodeId proc, const auto &reads,
                       const auto &writes) {
                    serialChecker.record(tid, proc, reads, writes);
                });
        }
        net->connect(n, [this, n](const Message &msg) {
            dispatch(n, msg);
        });
    }
}

void
System::dispatch(NodeId node, const Message &msg)
{
    switch (msg.type) {
      case MsgType::LoadReq:
      case MsgType::Skip:
      case MsgType::Probe:
      case MsgType::Mark:
      case MsgType::Commit:
      case MsgType::Abort:
      case MsgType::WriteBack:
      case MsgType::FlushData:
      case MsgType::InvAck:
      case MsgType::PartialCommit:
        dirs[node]->receive(msg);
        return;
      case MsgType::LoadReply:
      case MsgType::TidReply:
      case MsgType::ProbeReply:
      case MsgType::Inv:
      case MsgType::DataReq:
      case MsgType::PartialAck:
        procs[node]->receive(msg);
        return;
      case MsgType::TidReq:
        if (node != 0)
            panic("TID request routed to node %u (vendor is node 0)",
                  node);
        tidVendor->receive(msg);
        return;
    }
    panic("unroutable message type");
}

void
System::setSource(NodeId proc_id, TransactionSource *src)
{
    procs.at(proc_id)->setSource(src);
}

void
System::bindRegion(Addr base, std::uint64_t bytes, NodeId home)
{
    const Addr page = config.pageBytes;
    for (Addr a = base; a < base + bytes; a += page)
        homes.bind(a, home);
}

void
System::initializeWord(Addr addr, std::uint64_t value)
{
    store.write(addr, value);
    if (config.enableChecker)
        serialChecker.setInitial(GlobalStore::wordAlign(addr), value);
}

void
System::barrierArrive(NodeId node, std::function<void()> resume)
{
    barrierWaiters.emplace_back(node, std::move(resume));
    checkBarrierRelease();
}

void
System::checkBarrierRelease()
{
    const std::uint32_t active = config.numProcs - doneProcs;
    if (active == 0 || barrierWaiters.size() < active)
        return;
    auto waiters = std::move(barrierWaiters);
    barrierWaiters.clear();
    for (auto &[node, resume] : waiters) {
        eventq.schedule(1, [fn = std::move(resume)]() { fn(); });
    }
}

System::RunResult
System::run(Tick max_ticks)
{
    for (auto &p : procs)
        p->start();

    RunResult res;
    while (!eventq.empty() && eventq.now() <= max_ticks) {
        eventq.step();
        ++res.events;
    }

    bool all_done = true;
    Tick end = 0;
    for (auto &p : procs) {
        if (!p->done())
            all_done = false;
        else
            end = std::max(end, p->doneTick());
    }
    res.completed = all_done;
    res.cycles = all_done ? end : eventq.now();

    // Early finishers idle until the last processor completes.
    if (all_done) {
        for (auto &p : procs) {
            p->mutableStats().idleCycles += end - p->doneTick();
        }
    }
    return res;
}

Breakdown
System::breakdown() const
{
    Breakdown bd;
    for (const auto &p : procs) {
        const auto &s = p->stats();
        bd.useful += s.usefulCycles;
        bd.miss += s.missCycles;
        bd.commit += s.commitCycles;
        bd.idle += s.idleCycles;
        bd.violation += s.violationCycles;
    }
    return bd;
}

std::uint64_t
System::committedInstructions() const
{
    std::uint64_t n = 0;
    for (const auto &p : procs)
        n += p->stats().committedInstructions;
    return n;
}

bool
System::protocolQuiesced() const
{
    const Tid issued = tidVendor->issued();
    for (const auto &d : dirs) {
        if (!d->quiesced())
            return false;
        if (d->nstid() != issued)
            return false;
    }
    return true;
}

} // namespace tcc
