#include "core/system.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/contention.hh"
#include "obs/metrics.hh"
#include "sim/domain.hh"

namespace tcc {

std::string
SystemConfig::validate() const
{
    if (numProcs == 0)
        return "a system needs at least one processor";
    const bool uses_mesh =
        network.model == NetworkConfig::Model::Mesh ||
        (network.model == NetworkConfig::Model::Chaos &&
         !network.chaos.overIdeal);
    if (uses_mesh) {
        if (network.mesh.linkBytesPerCycle == 0)
            return "mesh linkBytesPerCycle must be nonzero";
        // The mesh routes around unpopulated grid slots, so ragged
        // node counts work for plain runs; chaos sweeps compare
        // against the paper's topology and insist on full grids.
        if (network.model == NetworkConfig::Model::Chaos &&
            (numProcs & (numProcs - 1)) != 0)
            return "chaos over a mesh requires a power-of-two "
                   "processor count (ragged grids skew the paper's "
                   "topology); use chaos over the ideal network for "
                   "odd sizes";
    }
    const bool uses_ideal =
        network.model == NetworkConfig::Model::Ideal ||
        (network.model == NetworkConfig::Model::Chaos &&
         network.chaos.overIdeal);
    if (uses_ideal && network.model == NetworkConfig::Model::Chaos &&
        network.idealLatency == 0) {
        return "chaos over an ideal base needs idealLatency >= 1: "
               "zero-latency delivery leaves no window for jitter or "
               "reordering to act in";
    }
    if (network.model == NetworkConfig::Model::Chaos) {
        const ChaosConfig &c = network.chaos;
        if (c.reorderProb < 0.0 || c.reorderProb > 1.0 ||
            c.duplicateProb < 0.0 || c.duplicateProb > 1.0)
            return "chaos probabilities must be within [0, 1]";
        if (c.reorderProb > 0.0 && c.reorderWindow == 0)
            return "chaos reorderProb > 0 needs a nonzero "
                   "reorderWindow";
        if (c.duplicateProb > 0.0 && c.duplicateLag == 0)
            return "chaos duplicateProb > 0 needs a nonzero "
                   "duplicateLag (a zero-lag duplicate is "
                   "indistinguishable from the original)";
    }
    if (numProcs > 4096) {
        return "this build supports at most 4096 processors (the "
               "invariant checker and scaling sweeps are sized for "
               "that); reduce numProcs or raise the cap deliberately";
    }
    if (network.multicast.topology == MulticastConfig::Topology::Tree) {
        if (network.model != NetworkConfig::Model::Mesh) {
            return "tree multicast requires the plain mesh network: "
                   "the combining tree is embedded in mesh XY routes "
                   "(keep multicast.topology = Flat for ideal or "
                   "chaos models)";
        }
        if (network.multicast.fanout < 2)
            return "tree multicast fanout must be >= 2";
    }
    if (pdes.domains > 1) {
        if (homePolicy != HomePolicy::Interleave) {
            return "PDES (pdes.domains > 1) requires "
                   "HomePolicy::Interleave: first-touch home "
                   "assignment is an artifact of the global access "
                   "order, which a partitioned run does not have";
        }
        if (uses_ideal && network.idealLatency == 0) {
            return "PDES over an ideal network needs idealLatency >= "
                   "1: the latency is the lookahead window, and a "
                   "zero-width window cannot make progress";
        }
        if (pdes.window != 0) {
            const PdesPlan probe = computePdesPlan(
                numProcs, pdes.domains, /*window_override=*/0,
                uses_mesh, network.mesh, network.idealLatency);
            if (pdes.window > probe.lookahead) {
                return "pdes.window exceeds the network's lookahead: "
                       "widening the window past the minimum "
                       "cross-domain latency would deliver messages "
                       "late (a causality violation)";
            }
        }
    }
    return {};
}

static std::unique_ptr<Network>
buildNetwork(const SystemConfig &cfg, EventQueue &eventq, Arena *arena)
{
    const NetworkConfig &nc = cfg.network;
    switch (nc.model) {
      case NetworkConfig::Model::Ideal:
        return std::make_unique<IdealNetwork>(
            eventq, cfg.numProcs, nc.idealLatency, arena);
      case NetworkConfig::Model::Mesh:
        return std::make_unique<MeshNetwork>(eventq, cfg.numProcs,
                                             nc.mesh, arena);
      case NetworkConfig::Model::Chaos: {
        std::unique_ptr<Network> base;
        if (nc.chaos.overIdeal) {
            base = std::make_unique<IdealNetwork>(
                eventq, cfg.numProcs, nc.idealLatency, arena);
        } else {
            base = std::make_unique<MeshNetwork>(eventq, cfg.numProcs,
                                                 nc.mesh, arena);
        }
        return std::make_unique<ChaosNetwork>(
            eventq, cfg.numProcs, std::move(base), nc.chaos, arena);
      }
    }
    panic("unknown network model");
}

System::System(const SystemConfig &cfg)
    : config(cfg), eventq(&arena),
      tracer(eventq, &arena, cfg.trace.capacity),
      homes(cfg.numProcs, cfg.homePolicy, cfg.pageBytes, &arena),
      store(&arena)
{
    if (const std::string err = cfg.validate(); !err.empty())
        fatal("invalid SystemConfig: %s", err.c_str());

    net = buildNetwork(cfg, eventq, &arena);
    net->setMulticast(cfg.network.multicast);

    // Only the outermost network traces: a chaos wrapper's base would
    // otherwise emit every NetDeliver twice.
    net->setTraceRecorder(&tracer);

    if (cfg.pdes.domains > 1)
        buildPdes(); // leaves pdesState null if the partition collapses
    if (pdesState)
        return;

    if (cfg.check.invariants) {
        invariants = std::make_unique<InvariantChecker>(
            cfg.numProcs, &tracer, cfg.check.invariantHistory);
    }

    tidVendor = std::make_unique<TidVendor>(0, eventq, *net,
                                            cfg.tidVendorLatency);

    DirectoryConfig dir_cfg = cfg.directory;
    dir_cfg.lineBytes = cfg.cache.lineBytes;
    dir_cfg.writeThroughCommit = cfg.writeThroughCommit;
    ProcessorConfig proc_cfg = cfg.processor;
    proc_cfg.writeThroughCommit = cfg.writeThroughCommit;
    for (NodeId n = 0; n < cfg.numProcs; ++n) {
        dirs.push_back(std::make_unique<Directory>(
            n, cfg.numProcs, eventq, *net, dir_cfg, &arena));
        procs.push_back(std::make_unique<TccProcessor>(
            n, cfg.numProcs, eventq, *net, homes, store, cfg.cache,
            proc_cfg, /*vendor_node=*/0, &arena));
        dirs.back()->setTraceRecorder(&tracer);
        procs.back()->setTraceRecorder(&tracer);
        dirs.back()->setInvariantChecker(invariants.get());
        procs.back()->setInvariantChecker(invariants.get());
        procs.back()->setBarrier(
            [this](NodeId node, std::function<void()> resume) {
                barrierArrive(node, std::move(resume));
            });
        procs.back()->setDoneHook([this]() {
            ++doneProcs;
            checkBarrierRelease();
        });
        if (cfg.check.serial) {
            procs.back()->setCommitHook(
                [this](Tid tid, NodeId proc, const auto &reads,
                       const auto &writes) {
                    serialChecker.record(tid, proc, reads, writes);
                });
        }
        net->connect(n, [this, n](const Message &msg) {
            dispatch(n, msg);
        });
    }

    if (cfg.trace.metricsEpoch != 0) {
        metricsSamp = std::make_unique<MetricsSampler>(
            cfg.trace.metricsEpoch, cfg.trace.metricsCapacity, &arena);
        registerMetricProbes(*metricsSamp, 0, cfg.numProcs, *net);
    }
    if (cfg.trace.contentionTopK != 0) {
        contentionProf = std::make_unique<ContentionProfiler>(
            cfg.trace.contentionTopK, &arena);
        for (auto &p : procs)
            p->setContentionProfiler(contentionProf.get());
    }
}

System::~System() = default;

void
System::registerMetricProbes(MetricsSampler &m, NodeId first,
                             std::uint32_t count, const Network &nw)
{
    using K = MetricsSampler::Kind;
    using G = MetricsSampler::Merge;
    const NodeId last = first + count;
    // Probes read only state owned by the nodes [first, last) (or the
    // network shim passed in), so a PDES domain's sampler stays inside
    // its domain's confinement boundary. Registration order here IS
    // the column schema; PDES merging relies on every domain calling
    // this same function.
    m.addProbe("commits", K::Delta, G::Sum, [this, first, last] {
        std::uint64_t v = 0;
        for (NodeId n = first; n < last; ++n)
            v += procs[n]->stats().txnsCommitted;
        return v;
    });
    m.addProbe("violations", K::Delta, G::Sum, [this, first, last] {
        std::uint64_t v = 0;
        for (NodeId n = first; n < last; ++n)
            v += procs[n]->stats().violations;
        return v;
    });
    m.addProbe("useful_cycles", K::Delta, G::Sum, [this, first, last] {
        std::uint64_t v = 0;
        for (NodeId n = first; n < last; ++n)
            v += procs[n]->stats().usefulCycles;
        return v;
    });
    m.addProbe("wasted_cycles", K::Delta, G::Sum, [this, first, last] {
        std::uint64_t v = 0;
        for (NodeId n = first; n < last; ++n)
            v += procs[n]->stats().violationCycles;
        return v;
    });
    // The vendor lives at node 0; other domains contribute 0 and the
    // Max merge selects the owning domain's reading.
    m.addProbe("tids_issued", K::Gauge, G::Max, [this, first] {
        return first == 0 ? tidVendor->issued() : std::uint64_t(0);
    });
    m.addProbe("nstid_min", K::Gauge, G::Min, [this, first, last] {
        std::uint64_t v = ~std::uint64_t(0);
        for (NodeId n = first; n < last; ++n)
            v = std::min<std::uint64_t>(v, dirs[n]->nstid());
        return v;
    });
    m.addProbe("dir_busy_cycles", K::Delta, G::Sum,
               [this, first, last] {
                   std::uint64_t v = 0;
                   for (NodeId n = first; n < last; ++n)
                       v += dirs[n]->stats().busyCycles;
                   return v;
               });
    m.addProbe("net_bytes", K::Delta, G::Sum,
               [&nw] { return nw.stats().totalBytes; });
    m.addProbe("net_messages", K::Delta, G::Sum,
               [&nw] { return nw.stats().messages; });
    m.addProbe("mcast_nic_events", K::Delta, G::Sum,
               [&nw] { return nw.stats().multicastNicEvents; });
}

void
System::buildPdes()
{
    const NetworkConfig &nc = config.network;
    const bool mesh_based =
        nc.model == NetworkConfig::Model::Mesh ||
        (nc.model == NetworkConfig::Model::Chaos &&
         !nc.chaos.overIdeal);
    PdesPlan plan = computePdesPlan(config.numProcs,
                                    config.pdes.domains,
                                    config.pdes.window, mesh_based,
                                    nc.mesh, nc.idealLatency);
    if (plan.domains.size() < 2)
        return; // partition collapsed (tiny machine): serial engine

    pdesState = std::make_unique<PdesState>(std::move(plan));
    PdesState &st = *pdesState;

    DomainNetConfig dnc;
    dnc.meshBased = mesh_based;
    dnc.mesh = nc.mesh;
    dnc.idealLatency = nc.idealLatency;
    dnc.chaos = nc.model == NetworkConfig::Model::Chaos;
    dnc.chaosCfg = nc.chaos;

    for (const DomainSpec &spec : st.plan.domains) {
        auto d = std::make_unique<PdesDomain>(spec,
                                              config.trace.capacity);
        d->net = std::make_unique<DomainNet>(
            d->eq, config.numProcs, spec, st.plan, dnc, &d->arena);
        d->net->setMulticast(nc.multicast);
        d->net->setTraceRecorder(&d->tracer);
        if (config.check.invariants) {
            d->checker = std::make_unique<InvariantChecker>(
                config.numProcs, &d->tracer,
                config.check.invariantHistory);
            d->checker->setNodeRange(spec.firstNode, spec.numNodes);
        }
        st.domains.push_back(std::move(d));
    }

    // The TID vendor lives in the domain owning node 0.
    PdesDomain &d0 = *st.domains[st.plan.nodeDomain[0]];
    tidVendor = std::make_unique<TidVendor>(0, d0.eq, *d0.net,
                                            config.tidVendorLatency);

    DirectoryConfig dir_cfg = config.directory;
    dir_cfg.lineBytes = config.cache.lineBytes;
    dir_cfg.writeThroughCommit = config.writeThroughCommit;
    ProcessorConfig proc_cfg = config.processor;
    proc_cfg.writeThroughCommit = config.writeThroughCommit;
    for (NodeId n = 0; n < config.numProcs; ++n) {
        PdesDomain *d = st.domains[st.plan.nodeDomain[n]].get();
        dirs.push_back(std::make_unique<Directory>(
            n, config.numProcs, d->eq, *d->net, dir_cfg, &d->arena));
        procs.push_back(std::make_unique<TccProcessor>(
            n, config.numProcs, d->eq, *d->net, homes, d->store,
            config.cache, proc_cfg, /*vendor_node=*/0, &d->arena));
        dirs.back()->setTraceRecorder(&d->tracer);
        procs.back()->setTraceRecorder(&d->tracer);
        dirs.back()->setInvariantChecker(d->checker.get());
        procs.back()->setInvariantChecker(d->checker.get());
        // Cross-domain effects defer to the window barrier: arrivals
        // and done-hooks buffer in the domain, and the coordinator
        // merges them in domain-id order between windows.
        procs.back()->setBarrier(
            [d](NodeId node, std::function<void()> resume) {
                d->barrierArrivals.emplace_back(node,
                                                std::move(resume));
            });
        procs.back()->setDoneHook([d]() { ++d->newlyDone; });
        if (config.check.serial) {
            procs.back()->setCommitHook(
                [d](Tid tid, NodeId proc, const auto &reads,
                    const auto &writes) {
                    d->commits.push_back(PdesDomain::CommitRec{
                        tid, proc, reads, writes});
                });
        }
        d->net->connect(n, [this, n](const Message &msg) {
            dispatch(n, msg);
        });
    }

    // Observability layers: one private instance per domain, touched
    // only by that domain's worker thread; merged at finalize.
    for (auto &d : st.domains) {
        if (config.trace.metricsEpoch != 0) {
            d->metrics = std::make_unique<MetricsSampler>(
                config.trace.metricsEpoch, config.trace.metricsCapacity,
                &d->arena);
            registerMetricProbes(*d->metrics, d->spec.firstNode,
                                 d->spec.numNodes, *d->net);
        }
        if (config.trace.contentionTopK != 0) {
            d->contention = std::make_unique<ContentionProfiler>(
                config.trace.contentionTopK, &d->arena);
            for (NodeId n = d->spec.firstNode;
                 n < d->spec.firstNode + d->spec.numNodes; ++n)
                procs[n]->setContentionProfiler(d->contention.get());
        }
    }
}

void
System::dispatch(NodeId node, const Message &msg)
{
    switch (msg.type) {
      case MsgType::LoadReq:
      case MsgType::Skip:
      case MsgType::Probe:
      case MsgType::Mark:
      case MsgType::Commit:
      case MsgType::Abort:
      case MsgType::WriteBack:
      case MsgType::FlushData:
      case MsgType::InvAck:
      case MsgType::PartialCommit:
        dirs[node]->receive(msg);
        return;
      case MsgType::LoadReply:
      case MsgType::TidReply:
      case MsgType::ProbeReply:
      case MsgType::Inv:
      case MsgType::DataReq:
      case MsgType::PartialAck:
        procs[node]->receive(msg);
        return;
      case MsgType::TidReq:
        if (node != 0)
            panic("TID request routed to node %u (vendor is node 0)",
                  node);
        tidVendor->receive(msg);
        return;
    }
    panic("unroutable message type");
}

void
System::setSource(NodeId proc_id, TransactionSource *src)
{
    procs.at(proc_id)->setSource(src);
}

void
System::bindRegion(Addr base, std::uint64_t bytes, NodeId home)
{
    const Addr page = config.pageBytes;
    for (Addr a = base; a < base + bytes; a += page)
        homes.bind(a, home);
}

void
System::initializeWord(Addr addr, std::uint64_t value)
{
    store.write(addr, value);
    if (config.check.serial)
        serialChecker.setInitial(GlobalStore::wordAlign(addr), value);
}

void
System::barrierArrive(NodeId node, std::function<void()> resume)
{
    barrierWaiters.emplace_back(node, std::move(resume));
    checkBarrierRelease();
}

void
System::checkBarrierRelease()
{
    const std::uint32_t active = config.numProcs - doneProcs;
    if (active == 0 || barrierWaiters.size() < active)
        return;
    auto waiters = std::move(barrierWaiters);
    barrierWaiters.clear();
    for (auto &[node, resume] : waiters) {
        eventq.schedule(1, [fn = std::move(resume)]() { fn(); });
    }
}

RunResult
System::run(Tick max_ticks)
{
    if (pdesState)
        return runPdes(max_ticks);

    for (auto &p : procs)
        p->start();

    RunResult res;
    if (metricsSamp) {
        // Identical to the loop below plus the epoch hook: peeking the
        // next event's tick before executing it closes every epoch
        // whose boundary has passed, with the events inside it - and
        // only those - already applied. Sampling never touches sim
        // state, so both loops produce bit-identical results; the off
        // path stays byte-for-byte the legacy loop.
        while (!eventq.empty() && eventq.now() <= max_ticks) {
            metricsSamp->advanceTo(eventq.nextWhen());
            eventq.step();
            ++res.events;
            if (invariants && invariants->failed())
                break;
        }
        metricsSamp->finish(eventq.now());
    } else {
        while (!eventq.empty() && eventq.now() <= max_ticks) {
            eventq.step();
            ++res.events;
            // An invariant failure halts the run at the next event
            // boundary: the protocol state is wrong from here on, and
            // running further would only bury the first diagnostic
            // under follow-on carnage (or trip a panic in the model
            // itself).
            if (invariants && invariants->failed())
                break;
        }
    }
    const bool halted_on_failure = invariants && invariants->failed();
    const bool hit_tick_limit = !eventq.empty() && !halted_on_failure;

    populateRunStats(res, eventq.now());

    if (config.check.serial) {
        res.serial.checked = true;
        const SerialChecker::Result v = serialChecker.verify();
        res.serial.ok = v.ok;
        res.serial.error = v.error;
        res.serial.checks = v.txnsChecked;
    }
    if (invariants) {
        invariants->finalize(tidVendor->issued(), res.completed,
                             hit_tick_limit);
        res.invariants.checked = true;
        const InvariantChecker::Result &v = invariants->result();
        res.invariants.ok = v.ok;
        res.invariants.error = v.error;
        res.invariants.checks = v.checks;
    }
    return res;
}

void
System::populateRunStats(RunResult &res, Tick fallback_now)
{
    bool all_done = true;
    Tick end = 0;
    for (auto &p : procs) {
        if (!p->done())
            all_done = false;
        else
            end = std::max(end, p->doneTick());
    }
    res.completed = all_done;
    res.cycles = all_done ? end : fallback_now;

    // Early finishers idle until the last processor completes.
    if (all_done) {
        for (auto &p : procs) {
            p->mutableStats().idleCycles += end - p->doneTick();
        }
    }

    res.breakdown = computeBreakdown();
    res.procs.reserve(procs.size());
    for (const auto &p : procs) {
        const auto &s = p->stats();
        ProcRunStats ps;
        ps.txnsCommitted = s.txnsCommitted;
        ps.violations = s.violations;
        ps.overflows = s.overflows;
        ps.soloCommits = s.soloCommits;
        ps.committedInstructions = s.committedInstructions;
        res.committedTxns += ps.txnsCommitted;
        res.violations += ps.violations;
        res.overflows += ps.overflows;
        res.committedInstructions += ps.committedInstructions;
        res.procs.push_back(ps);
    }
    res.dirs.reserve(dirs.size());
    for (const auto &d : dirs) {
        const auto &s = d->stats();
        DirRunStats ds;
        ds.nstid = d->nstid();
        ds.commitsServed = s.commitsServed;
        ds.skipsReceived = s.skipsReceived;
        ds.abortsServed = s.abortsServed;
        ds.invalidationsSent = s.invalidationsSent;
        ds.writeBacksDropped = s.writeBacksDropped;
        res.dirs.push_back(ds);
    }
    res.quiesced = protocolQuiesced();
}

void
System::pdesBarrierPhase(Tick at)
{
    PdesState &st = *pdesState;
    for (auto &d : st.domains) {
        doneProcs += d->newlyDone;
        d->newlyDone = 0;
        for (auto &w : d->barrierArrivals)
            barrierWaiters.push_back(std::move(w));
        d->barrierArrivals.clear();
    }
    const std::uint32_t active = config.numProcs - doneProcs;
    if (active != 0 && barrierWaiters.size() < active)
        return;
    auto waiters = std::move(barrierWaiters);
    barrierWaiters.clear();
    for (auto &[node, resume] : waiters) {
        const std::uint32_t dom = st.plan.nodeDomain[node];
        st.domains[dom]->eq.scheduleAt(
            at, [fn = std::move(resume)]() { fn(); });
        st.pulse[dom].next = std::min(st.pulse[dom].next, at);
    }
}

RunResult
System::runPdes(Tick max_ticks)
{
    PdesState &st = *pdesState;
    RunResult res;
    const std::uint32_t num_domains =
        static_cast<std::uint32_t>(st.domains.size());
    std::uint32_t jobs =
        config.pdes.jobs == 0 ? num_domains : config.pdes.jobs;
    jobs = std::max(1u, std::min(jobs, num_domains));
    res.pdes.domains = num_domains;
    res.pdes.jobs = jobs;
    res.pdes.lookahead = st.plan.lookahead;

    // Seed every replica from the master store (initializeWord state),
    // then kick the sources off on their domains' queues.
    for (auto &d : st.domains)
        d->store.copyFrom(store);
    for (auto &p : procs)
        p->start();

    // Each worker runs its domains to the sub-phase limit, then
    // summarizes the domain into its pulse slot while the domain's
    // state is still hot in this worker's cache: next event tick plus
    // flags for parked parcels, store-log writes, and barrier-phase
    // work. Domains with no event inside the sub-phase are never
    // touched at all (the idle-domain fast path) - their pulse is
    // kept current by the coordinator's own injections.
    WindowCrew crew(jobs, [&st, num_domains, jobs](unsigned w) {
        for (std::uint32_t i = w; i < num_domains; i += jobs) {
            PdesState::DomainPulse &pu = st.pulse[i];
            if (pu.next > st.curLimit)
                continue;
            PdesDomain &d = *st.domains[i];
            if (d.metrics) {
                // Metrics-aware stepping, clamped to the window end:
                // parcels injected at the barrier arrive at or after
                // window_end (= curLimit + 1), so every epoch ending
                // inside the window is final once local events have
                // run. The trailing runUntil executes nothing; it only
                // advances now() to the limit, exactly like the plain
                // path below.
                const Tick bound = st.curLimit >= kTickMax - 1
                                       ? kTickMax
                                       : st.curLimit + 1;
                while (d.eq.nextWhen() <= st.curLimit) {
                    d.metrics->advanceTo(d.eq.nextWhen());
                    d.eq.step();
                }
                d.metrics->advanceTo(bound);
                d.eq.runUntil(st.curLimit);
            } else {
                d.eq.runUntil(st.curLimit);
            }
            std::uint32_t f = 0;
            if (d.net->hasParcels())
                f |= PdesState::kPulseParcels;
            if (!d.storeLog.empty())
                f |= PdesState::kPulseStore;
            if (!d.barrierArrivals.empty() || d.newlyDone != 0 ||
                (d.checker && d.checker->failed()))
                f |= PdesState::kPulseSync;
            pu.next = d.eq.nextWhen();
            pu.flags = f;
        }
    });

    const Tick lookahead = st.plan.lookahead;
    const bool adaptive =
        config.pdes.sync == PdesConfig::Sync::Adaptive;
    res.pdes.adaptive = adaptive;
    st.initPulse();
    Tick phase_start = 0;
    /** Upper bound on every epoch boundary any domain has closed (the
     *  last window_end); the common finish() tick that equalizes
     *  per-domain epoch counts for the merge. */
    Tick metrics_end = 0;
    Tick window_start = 0;
    bool window_open = false;
    bool halted = false;
    for (;;) {
        const Tick next = st.earliestNext();
        if (next == kTickMax)
            break; // drained: every queue and mailbox is empty
        if (next > max_ticks)
            break; // remaining work is beyond the tick limit
        // Idle gaps (e.g. everyone waiting out a commit) fast-forward
        // the sub-phase: sub-phases must be contiguous and end at the
        // EOT bound min_d(next_d + lookahead) == next + lookahead -
        // no cross-domain effect can land earlier, so every domain
        // may execute up to (but not at) that bound.
        phase_start = std::max(phase_start, next);
        if (!window_open) {
            window_start = phase_start;
            window_open = true;
        }
        const Tick window_end = pdesWindowEnd(phase_start, lookahead);
        metrics_end = window_end;
        st.curLimit = std::min(window_end - 1, max_ticks);
        crew.runPhase();
        ++res.pdes.phases;

        // Fold the per-domain pulses: one pass over a contiguous
        // array instead of poking every domain's queues and logs.
        std::uint32_t effects = 0;
        for (const PdesState::DomainPulse &pu : st.pulse) {
            effects |= pu.flags;
            if (pu.next > st.curLimit)
                ++res.pdes.idleDomainSkips;
        }

        // Parcels flush every sub-phase: they carry exact arrival
        // ticks, so delivery is independent of the barrier cadence.
        if (effects & PdesState::kPulseParcels)
            res.pdes.mailboxMessages += st.flushMailboxes(window_end);

        // Close the window when the sub-phase produced output only a
        // barrier can publish (store writes, SPMD arrivals, done
        // transitions, a checker failure). Under the fixed cadence,
        // close unconditionally - that is the legacy window grid.
        const bool close =
            !adaptive ||
            (effects &
             (PdesState::kPulseStore | PdesState::kPulseSync)) != 0;
        if (close) {
            if (effects & PdesState::kPulseStore)
                st.applyStoreLogs();
            else
                ++res.pdes.emptyBroadcastsSkipped;
            if (effects & PdesState::kPulseSync)
                pdesBarrierPhase(window_end);
            ++res.pdes.windows;
            res.pdes.windowWidth.sample(
                static_cast<double>(window_end - window_start));
            window_open = false;
            // An invariant failure halts the run at the window
            // boundary; the failing domain raised kPulseSync, so the
            // window closed exactly where the fixed cadence halts.
            if ((effects & PdesState::kPulseSync) &&
                config.check.invariants) {
                for (auto &d : st.domains) {
                    if (d->checker->failed()) {
                        halted = true;
                        break;
                    }
                }
            }
            if (halted)
                break;
        }
        for (PdesState::DomainPulse &pu : st.pulse)
            pu.flags = 0;
        phase_start = window_end;
    }
    const bool hit_tick_limit = !halted && st.earliestNext() != kTickMax;

    for (auto &d : st.domains)
        res.events += d->eq.executed();
    // All replicas are convergent (every write log was applied
    // everywhere); adopt one as the master committed state.
    store.copyFrom(st.domains[0]->store);
    // Fold the domain shims' traffic into the System-level network and
    // the domain trace rings into the System ring, canonically.
    for (auto &d : st.domains)
        net->accumulateStats(d->net->stats());
    st.mergeTraces(tracer);

    // Close and merge the observability layers, in domain-id order.
    // Every domain finishes at the same tick (>= every window bound it
    // ever sampled under), so all close identical epoch counts and the
    // merge is element-wise - independent of jobs by construction.
    if (config.trace.metricsEpoch != 0) {
        for (auto &d : st.domains)
            d->metrics->finish(metrics_end);
        metricsSamp = std::make_unique<MetricsSampler>(
            config.trace.metricsEpoch, config.trace.metricsCapacity,
            &arena);
        registerMetricProbes(*metricsSamp, 0, config.numProcs, *net);
        std::vector<const MetricsSampler *> parts;
        parts.reserve(st.domains.size());
        for (auto &d : st.domains)
            parts.push_back(d->metrics.get());
        metricsSamp->adoptMerged(parts);
    }
    if (config.trace.contentionTopK != 0) {
        contentionProf = std::make_unique<ContentionProfiler>(
            config.trace.contentionTopK, &arena);
        for (auto &d : st.domains)
            contentionProf->mergeFrom(*d->contention);
    }

    populateRunStats(res, phase_start);
    lastPdesStats = res.pdes;

    if (config.check.serial) {
        // The oracle replays in TID order regardless of record order;
        // merge the per-domain buffers in TID order for determinism.
        std::vector<const PdesDomain::CommitRec *> all;
        for (auto &d : st.domains) {
            for (const auto &c : d->commits)
                all.push_back(&c);
        }
        std::sort(all.begin(), all.end(),
                  [](const PdesDomain::CommitRec *a,
                     const PdesDomain::CommitRec *b) {
                      return a->tid < b->tid;
                  });
        for (const PdesDomain::CommitRec *c : all)
            serialChecker.record(c->tid, c->proc, c->reads, c->writes);
        res.serial.checked = true;
        const SerialChecker::Result v = serialChecker.verify();
        res.serial.ok = v.ok;
        res.serial.error = v.error;
        res.serial.checks = v.txnsChecked;
    }
    if (config.check.invariants) {
        res.invariants.checked = true;
        // On a halt the failing verdict is already recorded; running
        // the completeness pass would bury it under the (expected)
        // incompleteness of the aborted run.
        if (!halted) {
            for (auto &d : st.domains) {
                d->checker->finalize(tidVendor->issued(),
                                     res.completed, hit_tick_limit);
            }
        }
        for (auto &d : st.domains) {
            const InvariantChecker::Result &v = d->checker->result();
            res.invariants.checks += v.checks;
            if (res.invariants.ok && !v.ok) {
                res.invariants.ok = false;
                res.invariants.error = v.error;
            }
        }
    }
    return res;
}

Breakdown
System::computeBreakdown() const
{
    Breakdown bd;
    for (const auto &p : procs) {
        const auto &s = p->stats();
        bd.useful += s.usefulCycles;
        bd.miss += s.missCycles;
        bd.commit += s.commitCycles;
        bd.idle += s.idleCycles;
        bd.violation += s.violationCycles;
    }
    return bd;
}

std::uint64_t
System::committedInstructions() const
{
    std::uint64_t n = 0;
    for (const auto &p : procs)
        n += p->stats().committedInstructions;
    return n;
}

bool
System::protocolQuiesced() const
{
    const Tid issued = tidVendor->issued();
    for (const auto &d : dirs) {
        if (!d->quiesced())
            return false;
        if (d->nstid() != issued)
            return false;
    }
    return true;
}

} // namespace tcc
