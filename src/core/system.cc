#include "core/system.hh"

#include <algorithm>

#include "common/log.hh"

namespace tcc {

std::string
SystemConfig::validate() const
{
    if (numProcs == 0)
        return "a system needs at least one processor";
    const bool uses_mesh =
        network.model == NetworkConfig::Model::Mesh ||
        (network.model == NetworkConfig::Model::Chaos &&
         !network.chaos.overIdeal);
    if (uses_mesh) {
        if (network.mesh.linkBytesPerCycle == 0)
            return "mesh linkBytesPerCycle must be nonzero";
        // The mesh routes around unpopulated grid slots, so ragged
        // node counts work for plain runs; chaos sweeps compare
        // against the paper's topology and insist on full grids.
        if (network.model == NetworkConfig::Model::Chaos &&
            (numProcs & (numProcs - 1)) != 0)
            return "chaos over a mesh requires a power-of-two "
                   "processor count (ragged grids skew the paper's "
                   "topology); use chaos over the ideal network for "
                   "odd sizes";
    }
    const bool uses_ideal =
        network.model == NetworkConfig::Model::Ideal ||
        (network.model == NetworkConfig::Model::Chaos &&
         network.chaos.overIdeal);
    if (uses_ideal && network.model == NetworkConfig::Model::Chaos &&
        network.idealLatency == 0) {
        return "chaos over an ideal base needs idealLatency >= 1: "
               "zero-latency delivery leaves no window for jitter or "
               "reordering to act in";
    }
    if (network.model == NetworkConfig::Model::Chaos) {
        const ChaosConfig &c = network.chaos;
        if (c.reorderProb < 0.0 || c.reorderProb > 1.0 ||
            c.duplicateProb < 0.0 || c.duplicateProb > 1.0)
            return "chaos probabilities must be within [0, 1]";
        if (c.reorderProb > 0.0 && c.reorderWindow == 0)
            return "chaos reorderProb > 0 needs a nonzero "
                   "reorderWindow";
        if (c.duplicateProb > 0.0 && c.duplicateLag == 0)
            return "chaos duplicateProb > 0 needs a nonzero "
                   "duplicateLag (a zero-lag duplicate is "
                   "indistinguishable from the original)";
    }
    if (check.invariants && numProcs > 4096)
        return "invariant checker supports at most 4096 nodes";
    return {};
}

static std::unique_ptr<Network>
buildNetwork(const SystemConfig &cfg, EventQueue &eventq, Arena *arena)
{
    const NetworkConfig &nc = cfg.network;
    switch (nc.model) {
      case NetworkConfig::Model::Ideal:
        return std::make_unique<IdealNetwork>(
            eventq, cfg.numProcs, nc.idealLatency, arena);
      case NetworkConfig::Model::Mesh:
        return std::make_unique<MeshNetwork>(eventq, cfg.numProcs,
                                             nc.mesh, arena);
      case NetworkConfig::Model::Chaos: {
        std::unique_ptr<Network> base;
        if (nc.chaos.overIdeal) {
            base = std::make_unique<IdealNetwork>(
                eventq, cfg.numProcs, nc.idealLatency, arena);
        } else {
            base = std::make_unique<MeshNetwork>(eventq, cfg.numProcs,
                                                 nc.mesh, arena);
        }
        return std::make_unique<ChaosNetwork>(
            eventq, cfg.numProcs, std::move(base), nc.chaos, arena);
      }
    }
    panic("unknown network model");
}

System::System(const SystemConfig &cfg)
    : config(cfg), eventq(&arena),
      tracer(eventq, &arena, cfg.trace.capacity),
      homes(cfg.numProcs, cfg.homePolicy, cfg.pageBytes, &arena),
      store(&arena)
{
    if (const std::string err = cfg.validate(); !err.empty())
        fatal("invalid SystemConfig: %s", err.c_str());

    net = buildNetwork(cfg, eventq, &arena);

    // Only the outermost network traces: a chaos wrapper's base would
    // otherwise emit every NetDeliver twice.
    net->setTraceRecorder(&tracer);

    if (cfg.check.invariants) {
        invariants = std::make_unique<InvariantChecker>(
            cfg.numProcs, &tracer, cfg.check.invariantHistory);
    }

    tidVendor = std::make_unique<TidVendor>(0, eventq, *net,
                                            cfg.tidVendorLatency);

    DirectoryConfig dir_cfg = cfg.directory;
    dir_cfg.lineBytes = cfg.cache.lineBytes;
    dir_cfg.writeThroughCommit = cfg.writeThroughCommit;
    ProcessorConfig proc_cfg = cfg.processor;
    proc_cfg.writeThroughCommit = cfg.writeThroughCommit;
    for (NodeId n = 0; n < cfg.numProcs; ++n) {
        dirs.push_back(std::make_unique<Directory>(
            n, cfg.numProcs, eventq, *net, dir_cfg, &arena));
        procs.push_back(std::make_unique<TccProcessor>(
            n, cfg.numProcs, eventq, *net, homes, store, cfg.cache,
            proc_cfg, /*vendor_node=*/0, &arena));
        dirs.back()->setTraceRecorder(&tracer);
        procs.back()->setTraceRecorder(&tracer);
        dirs.back()->setInvariantChecker(invariants.get());
        procs.back()->setInvariantChecker(invariants.get());
        procs.back()->setBarrier(
            [this](NodeId node, std::function<void()> resume) {
                barrierArrive(node, std::move(resume));
            });
        procs.back()->setDoneHook([this]() {
            ++doneProcs;
            checkBarrierRelease();
        });
        if (cfg.check.serial) {
            procs.back()->setCommitHook(
                [this](Tid tid, NodeId proc, const auto &reads,
                       const auto &writes) {
                    serialChecker.record(tid, proc, reads, writes);
                });
        }
        net->connect(n, [this, n](const Message &msg) {
            dispatch(n, msg);
        });
    }
}

void
System::dispatch(NodeId node, const Message &msg)
{
    switch (msg.type) {
      case MsgType::LoadReq:
      case MsgType::Skip:
      case MsgType::Probe:
      case MsgType::Mark:
      case MsgType::Commit:
      case MsgType::Abort:
      case MsgType::WriteBack:
      case MsgType::FlushData:
      case MsgType::InvAck:
      case MsgType::PartialCommit:
        dirs[node]->receive(msg);
        return;
      case MsgType::LoadReply:
      case MsgType::TidReply:
      case MsgType::ProbeReply:
      case MsgType::Inv:
      case MsgType::DataReq:
      case MsgType::PartialAck:
        procs[node]->receive(msg);
        return;
      case MsgType::TidReq:
        if (node != 0)
            panic("TID request routed to node %u (vendor is node 0)",
                  node);
        tidVendor->receive(msg);
        return;
    }
    panic("unroutable message type");
}

void
System::setSource(NodeId proc_id, TransactionSource *src)
{
    procs.at(proc_id)->setSource(src);
}

void
System::bindRegion(Addr base, std::uint64_t bytes, NodeId home)
{
    const Addr page = config.pageBytes;
    for (Addr a = base; a < base + bytes; a += page)
        homes.bind(a, home);
}

void
System::initializeWord(Addr addr, std::uint64_t value)
{
    store.write(addr, value);
    if (config.check.serial)
        serialChecker.setInitial(GlobalStore::wordAlign(addr), value);
}

void
System::barrierArrive(NodeId node, std::function<void()> resume)
{
    barrierWaiters.emplace_back(node, std::move(resume));
    checkBarrierRelease();
}

void
System::checkBarrierRelease()
{
    const std::uint32_t active = config.numProcs - doneProcs;
    if (active == 0 || barrierWaiters.size() < active)
        return;
    auto waiters = std::move(barrierWaiters);
    barrierWaiters.clear();
    for (auto &[node, resume] : waiters) {
        eventq.schedule(1, [fn = std::move(resume)]() { fn(); });
    }
}

RunResult
System::run(Tick max_ticks)
{
    for (auto &p : procs)
        p->start();

    RunResult res;
    while (!eventq.empty() && eventq.now() <= max_ticks) {
        eventq.step();
        ++res.events;
        // An invariant failure halts the run at the next event
        // boundary: the protocol state is wrong from here on, and
        // running further would only bury the first diagnostic under
        // follow-on carnage (or trip a panic in the model itself).
        if (invariants && invariants->failed())
            break;
    }
    const bool halted_on_failure = invariants && invariants->failed();
    const bool hit_tick_limit = !eventq.empty() && !halted_on_failure;

    bool all_done = true;
    Tick end = 0;
    for (auto &p : procs) {
        if (!p->done())
            all_done = false;
        else
            end = std::max(end, p->doneTick());
    }
    res.completed = all_done;
    res.cycles = all_done ? end : eventq.now();

    // Early finishers idle until the last processor completes.
    if (all_done) {
        for (auto &p : procs) {
            p->mutableStats().idleCycles += end - p->doneTick();
        }
    }

    res.breakdown = computeBreakdown();
    res.procs.reserve(procs.size());
    for (const auto &p : procs) {
        const auto &s = p->stats();
        ProcRunStats ps;
        ps.txnsCommitted = s.txnsCommitted;
        ps.violations = s.violations;
        ps.overflows = s.overflows;
        ps.soloCommits = s.soloCommits;
        ps.committedInstructions = s.committedInstructions;
        res.committedTxns += ps.txnsCommitted;
        res.violations += ps.violations;
        res.overflows += ps.overflows;
        res.committedInstructions += ps.committedInstructions;
        res.procs.push_back(ps);
    }
    res.dirs.reserve(dirs.size());
    for (const auto &d : dirs) {
        const auto &s = d->stats();
        DirRunStats ds;
        ds.nstid = d->nstid();
        ds.commitsServed = s.commitsServed;
        ds.skipsReceived = s.skipsReceived;
        ds.abortsServed = s.abortsServed;
        ds.invalidationsSent = s.invalidationsSent;
        ds.writeBacksDropped = s.writeBacksDropped;
        res.dirs.push_back(ds);
    }
    res.quiesced = protocolQuiesced();

    if (config.check.serial) {
        res.serial.checked = true;
        const SerialChecker::Result v = serialChecker.verify();
        res.serial.ok = v.ok;
        res.serial.error = v.error;
        res.serial.checks = v.txnsChecked;
    }
    if (invariants) {
        invariants->finalize(tidVendor->issued(), all_done,
                             hit_tick_limit);
        res.invariants.checked = true;
        const InvariantChecker::Result &v = invariants->result();
        res.invariants.ok = v.ok;
        res.invariants.error = v.error;
        res.invariants.checks = v.checks;
    }
    return res;
}

Breakdown
System::computeBreakdown() const
{
    Breakdown bd;
    for (const auto &p : procs) {
        const auto &s = p->stats();
        bd.useful += s.usefulCycles;
        bd.miss += s.missCycles;
        bd.commit += s.commitCycles;
        bd.idle += s.idleCycles;
        bd.violation += s.violationCycles;
    }
    return bd;
}

std::uint64_t
System::committedInstructions() const
{
    std::uint64_t n = 0;
    for (const auto &p : procs)
        n += p->stats().committedInstructions;
    return n;
}

bool
System::protocolQuiesced() const
{
    const Tid issued = tidVendor->issued();
    for (const auto &d : dirs) {
        if (!d->quiesced())
            return false;
        if (d->nstid() != issued)
            return false;
    }
    return true;
}

} // namespace tcc
