/**
 * @file
 * Scalable TCC system assembly: the library's primary public API.
 *
 * A System instantiates one node per processor - each node hosting a
 * TCC processor with a private speculative cache hierarchy, a
 * directory with the node's memory slice, and a network interface -
 * plus the global TID vendor at node 0 and a 2D-mesh interconnect.
 *
 * Typical use:
 *
 *   tcc::SystemConfig cfg;
 *   cfg.numProcs = 32;
 *   tcc::System sys(cfg);
 *   sys.setSource(p, &mySource);   // one TransactionSource per proc
 *   auto result = sys.run();
 *   auto bd = sys.breakdown();     // execution-time buckets
 */

#ifndef TCC_CORE_SYSTEM_HH
#define TCC_CORE_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/spec_cache.hh"
#include "check/serial_checker.hh"
#include "common/arena.hh"
#include "common/types.hh"
#include "directory/directory.hh"
#include "mem/global_store.hh"
#include "mem/home_map.hh"
#include "noc/network.hh"
#include "obs/trace_recorder.hh"
#include "proc/processor.hh"
#include "proc/tid_vendor.hh"
#include "sim/event_queue.hh"

namespace tcc {

/** Full system configuration (defaults follow the paper's Table 2). */
struct SystemConfig {
    std::uint32_t numProcs = 8;
    CacheConfig cache;
    DirectoryConfig directory;
    MeshConfig mesh;
    ProcessorConfig processor;
    HomePolicy homePolicy = HomePolicy::FirstTouch;
    std::uint32_t pageBytes = 4096;
    /** Use a fixed-latency network instead of the mesh (unit tests). */
    bool idealNetwork = false;
    Tick idealLatency = 1;
    /** TID vendor service latency. */
    Tick tidVendorLatency = 5;
    /** Record commit logs and enable serializability verification. */
    bool enableChecker = false;
    /** Ablation: write-through commit (data with marks) instead of the
     *  paper's write-back commit. */
    bool writeThroughCommit = false;
    /** Protocol trace ring size in events (storage is claimed lazily,
     *  so runs with tracing off pay nothing). */
    std::size_t traceCapacity = TraceRecorder::kDefaultCapacity;
};

/** Aggregated execution-time breakdown across all processors. */
struct Breakdown {
    std::uint64_t useful = 0;
    std::uint64_t miss = 0;
    std::uint64_t commit = 0;
    std::uint64_t idle = 0;
    std::uint64_t violation = 0;

    std::uint64_t
    total() const
    {
        return useful + miss + commit + idle + violation;
    }

    double
    fraction(std::uint64_t part) const
    {
        const std::uint64_t t = total();
        return t == 0 ? 0.0
                      : static_cast<double>(part) /
                            static_cast<double>(t);
    }
};

/** A complete Scalable TCC machine. */
class System
{
  public:
    explicit System(const SystemConfig &cfg);

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Attach the transaction stream for processor @p proc. The source
     *  must outlive the System's run. */
    void setSource(NodeId proc, TransactionSource *src);

    /** Write initial (non-transactional) memory state before running. */
    void initializeWord(Addr addr, std::uint64_t value);

    /** Place all pages of [base, base+bytes) at @p home (models the
     *  OS page placement a real first-touch run would produce). */
    void bindRegion(Addr base, std::uint64_t bytes, NodeId home);

    struct RunResult {
        Tick cycles = 0;       ///< completion time (last proc done)
        bool completed = false;///< all processors drained their sources
        std::uint64_t events = 0;
    };

    /** Run to completion (or @p max_ticks). */
    RunResult run(Tick max_ticks = kTickMax);

    // --- component access -------------------------------------------
    std::uint32_t numProcs() const { return config.numProcs; }
    const TccProcessor &proc(NodeId n) const { return *procs.at(n); }
    TccProcessor &proc(NodeId n) { return *procs.at(n); }
    const Directory &directory(NodeId n) const { return *dirs.at(n); }
    const Network &network() const { return *net; }
    Network &network() { return *net; }
    GlobalStore &memory() { return store; }
    EventQueue &eventQueue() { return eventq; }
    const SerialChecker &checker() const { return serialChecker; }
    const TidVendor &vendor() const { return *tidVendor; }
    const SystemConfig &cfg() const { return config; }
    /** The protocol event ring (populated when Trace categories are
     *  enabled during the run; see obs/trace_recorder.hh). */
    const TraceRecorder &traceRecorder() const { return tracer; }
    TraceRecorder &traceRecorder() { return tracer; }

    /** Memory footprint of this run's arena (reporting/benches). */
    Arena::Stats arenaStats() const { return arena.stats(); }

    // --- aggregate reporting ------------------------------------------
    /** Sum of per-processor breakdown buckets. */
    Breakdown breakdown() const;

    /** Total committed instructions (Figure 9 normalization). */
    std::uint64_t committedInstructions() const;

    /** All directories retired every issued TID and hold no pending
     *  state: the protocol fully quiesced (test invariant). */
    bool protocolQuiesced() const;

  private:
    void dispatch(NodeId node, const Message &msg);
    void barrierArrive(NodeId node, std::function<void()> resume);
    void checkBarrierRelease();

    SystemConfig config;
    /**
     * Run-private memory for every component below. Declared FIRST
     * so it outlives them all (members destroy in reverse order):
     * event-queue slabs, message pools, hash tables, and cache arrays
     * all point into it.
     */
    Arena arena;
    EventQueue eventq;
    /** Structured protocol event ring; components hold a pointer. */
    TraceRecorder tracer;
    std::unique_ptr<Network> net;
    HomeMap homes;
    GlobalStore store;
    SerialChecker serialChecker;
    std::unique_ptr<TidVendor> tidVendor;
    std::vector<std::unique_ptr<Directory>> dirs;
    std::vector<std::unique_ptr<TccProcessor>> procs;

    // Barrier service (SPMD phase barriers between transactions).
    std::vector<std::pair<NodeId, std::function<void()>>> barrierWaiters;
    std::uint32_t doneProcs = 0;
};

} // namespace tcc

#endif // TCC_CORE_SYSTEM_HH
