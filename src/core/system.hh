/**
 * @file
 * Scalable TCC system assembly: the library's primary public API.
 *
 * A System instantiates one node per processor - each node hosting a
 * TCC processor with a private speculative cache hierarchy, a
 * directory with the node's memory slice, and a network interface -
 * plus the global TID vendor at node 0 and a 2D-mesh interconnect.
 *
 * Typical use:
 *
 *   tcc::SystemConfig cfg;
 *   cfg.numProcs = 32;
 *   cfg.check.serial = true;       // end-of-run serializability oracle
 *   tcc::System sys(cfg);
 *   sys.setSource(p, &mySource);   // one TransactionSource per proc
 *   tcc::RunResult res = sys.run();
 *   // res carries cycles, the execution-time breakdown, per-proc and
 *   // per-directory stats, and both checker verdicts.
 */

#ifndef TCC_CORE_SYSTEM_HH
#define TCC_CORE_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/spec_cache.hh"
#include "check/invariant_checker.hh"
#include "check/serial_checker.hh"
#include "common/arena.hh"
#include "common/types.hh"
#include "directory/directory.hh"
#include "mem/global_store.hh"
#include "mem/home_map.hh"
#include "noc/chaos_network.hh"
#include "noc/network.hh"
#include "obs/trace_recorder.hh"
#include "proc/processor.hh"
#include "proc/tid_vendor.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace tcc {

/** Interconnect selection and per-model parameters. */
struct NetworkConfig {
    enum class Model : std::uint8_t {
        Mesh,  ///< 2D mesh, XY routing (the paper's interconnect)
        Ideal, ///< fixed-latency, infinite bandwidth (unit tests)
        Chaos, ///< adversarial wrapper over Mesh or Ideal (see chaos)
    };
    Model model = Model::Mesh;
    /** Mesh parameters (Model::Mesh, and Chaos over a mesh base). */
    MeshConfig mesh;
    /** Fixed latency (Model::Ideal, and Chaos over an ideal base). */
    Tick idealLatency = 1;
    /** Fault-injection parameters (Model::Chaos). chaos.overIdeal
     *  picks the base network the faults are layered on. */
    ChaosConfig chaos;
    /** Commit fan-out strategy: flat per-destination sends (default,
     *  the paper's model) or a k-ary combining tree embedded in the
     *  mesh (Model::Mesh only; see noc/network.hh and DESIGN.md
     *  section 12). */
    MulticastConfig multicast;
};

/** Correctness-checker selection. */
struct CheckConfig {
    /** Record commit logs and verify serializability after the run
     *  (RunResult::serial). */
    bool serial = false;
    /** Online protocol-invariant checker: asserts NSTID monotonicity,
     *  skip-or-service completeness, commit atomicity, and TID
     *  retention while the run executes (RunResult::invariants). A
     *  failure halts the run at the next event boundary. */
    bool invariants = false;
    /** Trace events quoted in an invariant-failure report. */
    std::size_t invariantHistory = 8;
};

/** Protocol event-ring sizing and observability layers. */
struct TraceConfig {
    /** Ring size in events (storage is claimed lazily, so runs with
     *  tracing off pay nothing). */
    std::size_t capacity = TraceRecorder::kDefaultCapacity;
    /** Epoch sampler cadence in cycles; 0 (default) = off. When armed
     *  the run loop closes one metrics row per epoch (see
     *  obs/metrics.hh). Sampling is purely observational: results are
     *  bit-identical armed or not. */
    Tick metricsEpoch = 0;
    /** Epoch ring size in rows (oldest rows are overwritten and
     *  counted as dropped when a run outlives the ring). */
    std::size_t metricsCapacity = 4096;
    /** Contention profiler hot-word table bound; 0 (default) = off
     *  (see obs/contention.hh). */
    std::size_t contentionTopK = 0;
};

/**
 * Conservative parallel single-run execution (sim/domain.hh,
 * DESIGN.md section 11). With domains >= 2 the run executes in the
 * barrier-synchronous PDES engine; otherwise the legacy serial engine
 * runs unchanged. Results depend on the (effective) domain count but
 * never on jobs: any jobs value produces bit-identical RunResults.
 */
struct PdesConfig {
    /** Barrier cadence. Both modes execute the same lockstep
     *  sub-phases (each bounded by the EOT rule min_d next_d +
     *  lookahead) and are bit-identical in every simulation-visible
     *  result; they differ only in when the coordinator runs the
     *  barrier bookkeeping:
     *   - Fixed: close a window (store-log broadcast, barrier phase,
     *     window accounting) after every sub-phase - the legacy
     *     cadence.
     *   - Adaptive: extend the window across sub-phases that produced
     *     no cross-domain output (no store writes, no SPMD arrivals,
     *     no done transitions); mailbox parcels still flush every
     *     sub-phase at their exact arrival ticks. Sparse phases then
     *     cross hundreds of cycles in one window. */
    enum class Sync : std::uint8_t { Fixed, Adaptive };
    /** Requested domain count; clamped to the mesh row count (or the
     *  node count on an ideal network). 0 or 1 = serial engine. */
    std::uint32_t domains = 0;
    /** Worker threads driving the domains; clamped to the domain
     *  count. 0 = one thread per domain. Purely a throughput knob. */
    std::uint32_t jobs = 0;
    /** Optional window-width override in [1, lookahead] cycles;
     *  0 = use the derived lookahead. */
    Tick window = 0;
    /** Barrier cadence (purely a throughput knob, like jobs). */
    Sync sync = Sync::Adaptive;
};

/** Full system configuration (defaults follow the paper's Table 2). */
struct SystemConfig {
    std::uint32_t numProcs = 8;
    CacheConfig cache;
    DirectoryConfig directory;
    ProcessorConfig processor;
    HomePolicy homePolicy = HomePolicy::FirstTouch;
    std::uint32_t pageBytes = 4096;
    /** Interconnect model and parameters. */
    NetworkConfig network;
    /** TID vendor service latency. */
    Tick tidVendorLatency = 5;
    /** Ablation: write-through commit (data with marks) instead of the
     *  paper's write-back commit. */
    bool writeThroughCommit = false;
    /** Correctness checkers to arm for the run. */
    CheckConfig check;
    /** Protocol trace ring. */
    TraceConfig trace;
    /** Parallel single-run execution (off by default). */
    PdesConfig pdes;

    /** Sanity-check the configuration. Returns an empty string when
     *  the config is usable, else a description of the first problem.
     *  The System constructor calls this and fatal()s on failure. */
    std::string validate() const;
};

/** Aggregated execution-time breakdown across all processors. */
struct Breakdown {
    std::uint64_t useful = 0;
    std::uint64_t miss = 0;
    std::uint64_t commit = 0;
    std::uint64_t idle = 0;
    std::uint64_t violation = 0;

    std::uint64_t
    total() const
    {
        return useful + miss + commit + idle + violation;
    }

    double
    fraction(std::uint64_t part) const
    {
        const std::uint64_t t = total();
        return t == 0 ? 0.0
                      : static_cast<double>(part) /
                            static_cast<double>(t);
    }
};

/** Verdict of one correctness checker for a run. */
struct CheckVerdict {
    /** Whether the checker was armed for this run. */
    bool checked = false;
    /** Clean (vacuously true when !checked). */
    bool ok = true;
    /** First failure's diagnostic (empty when ok). */
    std::string error;
    /** Work done: transactions replayed (serial) or hook invocations
     *  (invariants) - sanity that the checker actually ran. */
    std::uint64_t checks = 0;
};

/** Per-processor slice of a RunResult. */
struct ProcRunStats {
    std::uint64_t txnsCommitted = 0;
    std::uint64_t violations = 0;
    std::uint64_t overflows = 0;
    std::uint64_t soloCommits = 0;
    std::uint64_t committedInstructions = 0;
};

/** Per-directory slice of a RunResult. */
struct DirRunStats {
    Tid nstid = 0;
    std::uint64_t commitsServed = 0;
    std::uint64_t skipsReceived = 0;
    std::uint64_t abortsServed = 0;
    std::uint64_t invalidationsSent = 0;
    std::uint64_t writeBacksDropped = 0;
};

/**
 * Everything a caller needs from one run, returned by System::run().
 * Callers should consume this instead of poking component getters
 * post-hoc; the System stays alive for deep inspection (distributions,
 * trace ring, memory) when needed.
 */
struct RunResult {
    Tick cycles = 0;        ///< completion time (last proc done)
    bool completed = false; ///< all processors drained their sources
    std::uint64_t events = 0;
    /** Every directory retired every issued TID and holds no pending
     *  state (end-of-run protocol invariant). */
    bool quiesced = false;

    /** Summed execution-time buckets (Figure 6/7). */
    Breakdown breakdown;
    std::uint64_t committedTxns = 0;
    std::uint64_t violations = 0;
    std::uint64_t overflows = 0;
    std::uint64_t committedInstructions = 0;

    std::vector<ProcRunStats> procs;
    std::vector<DirRunStats> dirs;

    /** Serializability oracle verdict (armed via check.serial). */
    CheckVerdict serial;
    /** Online invariant-checker verdict (armed via check.invariants). */
    CheckVerdict invariants;

    /** PDES execution statistics (all zero for serial-engine runs).
     *  Everything except `jobs` and `adaptive` is part of the
     *  deterministic result for a given sync mode; `jobs` records the
     *  thread count actually used and `adaptive` the barrier cadence.
     *  Between Sync::Fixed and Sync::Adaptive only `windows`,
     *  `emptyBroadcastsSkipped`, and `windowWidth` may differ - every
     *  simulation-visible field is bit-identical. */
    struct PdesRunStats {
        std::uint32_t domains = 0;
        std::uint32_t jobs = 0;
        bool adaptive = false;
        Tick lookahead = 0;
        /** Barrier windows closed (store-log broadcast + barrier
         *  phase). Under Fixed this equals `phases`. */
        std::uint64_t windows = 0;
        /** Lockstep sub-phases executed (EOT-bounded dispatches). */
        std::uint64_t phases = 0;
        std::uint64_t mailboxMessages = 0;
        /** Domain-dispatches skipped because the domain had no event
         *  inside the sub-phase (its state was never touched). */
        std::uint64_t idleDomainSkips = 0;
        /** Window closes whose store write logs were all empty, so
         *  the replica broadcast was skipped outright. */
        std::uint64_t emptyBroadcastsSkipped = 0;
        /** Realized barrier-to-barrier window widths in cycles
         *  (mean/p50/p99; constant = lookahead under Fixed). */
        Distribution windowWidth;
    };
    PdesRunStats pdes;

    /** Both armed checkers came back clean. */
    bool checksPassed() const { return serial.ok && invariants.ok; }
};

struct PdesState;         // sim/domain.hh (PDES engine internals)
class MetricsSampler;     // obs/metrics.hh (epoch time series)
class ContentionProfiler; // obs/contention.hh (conflict attribution)

/** A complete Scalable TCC machine. */
class System
{
  public:
    explicit System(const SystemConfig &cfg);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Attach the transaction stream for processor @p proc. The source
     *  must outlive the System's run. */
    void setSource(NodeId proc, TransactionSource *src);

    /** Write initial (non-transactional) memory state before running. */
    void initializeWord(Addr addr, std::uint64_t value);

    /** Place all pages of [base, base+bytes) at @p home (models the
     *  OS page placement a real first-touch run would produce). */
    void bindRegion(Addr base, std::uint64_t bytes, NodeId home);

    /** Legacy spelling: RunResult now lives at namespace scope. */
    using RunResult = tcc::RunResult;

    /** Run to completion (or @p max_ticks) and report the outcome,
     *  including any armed checker verdicts (CheckConfig). With the
     *  invariant checker armed, a failure halts the run at the next
     *  event boundary and the diagnostic lands in
     *  RunResult::invariants.error. */
    RunResult run(Tick max_ticks = kTickMax);

    // --- component access -------------------------------------------
    std::uint32_t numProcs() const { return config.numProcs; }
    const TccProcessor &proc(NodeId n) const { return *procs.at(n); }
    TccProcessor &proc(NodeId n) { return *procs.at(n); }
    const Directory &directory(NodeId n) const { return *dirs.at(n); }
    const Network &network() const { return *net; }
    Network &network() { return *net; }
    GlobalStore &memory() { return store; }
    EventQueue &eventQueue() { return eventq; }
    /** The serializability checker's commit log (structural access,
     *  e.g. replayFinalState(); the verdict is in RunResult::serial). */
    const SerialChecker &commitLog() const { return serialChecker; }
    /** The online invariant checker, or null when not armed. */
    const InvariantChecker *invariantChecker() const
    {
        return invariants.get();
    }
    const TidVendor &vendor() const { return *tidVendor; }
    const SystemConfig &cfg() const { return config; }
    /** The protocol event ring (populated when Trace categories are
     *  enabled during the run; see obs/trace_recorder.hh). */
    const TraceRecorder &traceRecorder() const { return tracer; }
    TraceRecorder &traceRecorder() { return tracer; }

    /** Epoch time series of the last run, or null when metrics are off
     *  (TraceConfig::metricsEpoch == 0). Under PDES this is the merged
     *  cross-domain series, available after run(). */
    const MetricsSampler *metricsSampler() const
    {
        return metricsSamp.get();
    }

    /** Conflict-attribution profiler, or null when off
     *  (TraceConfig::contentionTopK == 0). Under PDES this is the
     *  merged cross-domain table, available after run(). */
    const ContentionProfiler *contentionProfiler() const
    {
        return contentionProf.get();
    }

    /** PDES stats of the last run() (all zero for serial-engine runs
     *  or before any run); the copy dumpStats reads post-hoc. */
    const RunResult::PdesRunStats &pdesStats() const
    {
        return lastPdesStats;
    }

    /** PDES engine internals, or null for serial-engine systems.
     *  Diagnostics and tests only (e.g. the idle-domain-skip test
     *  inspects a quiesced domain's queue and arena). */
    const PdesState *pdesInternals() const { return pdesState.get(); }

    /** Memory footprint of this run's arena (reporting/benches). */
    Arena::Stats arenaStats() const { return arena.stats(); }

    // --- aggregate reporting ------------------------------------------
    /** Sum of per-processor breakdown buckets. Prefer the copy in
     *  RunResult::breakdown after run(). */
    Breakdown computeBreakdown() const;

    /** Total committed instructions (Figure 9 normalization). */
    std::uint64_t committedInstructions() const;

    /** All directories retired every issued TID and hold no pending
     *  state: the protocol fully quiesced (test invariant). */
    bool protocolQuiesced() const;

  private:
    void dispatch(NodeId node, const Message &msg);
    void barrierArrive(NodeId node, std::function<void()> resume);
    void checkBarrierRelease();

    // --- PDES engine (sim/domain.hh; DESIGN.md section 11) ----------
    void buildPdes();
    RunResult runPdes(Tick max_ticks);
    /** Collect deferred done-hooks and barrier arrivals; release the
     *  SPMD barrier (if complete) at tick @p at. */
    void pdesBarrierPhase(Tick at);
    /** Completion, idle accounting, breakdown, per-node stats, and
     *  quiescence - shared by both engines. @p fallback_now stands in
     *  for "current time" when the run did not complete. */
    void populateRunStats(RunResult &res, Tick fallback_now);

    /** Register the standard probe set on @p m for nodes
     *  [first, first+count) reading @p net's counters; the single
     *  authority for probe order and merge ops (serial system and
     *  every PDES domain register through here, so schemas match). */
    void registerMetricProbes(MetricsSampler &m, NodeId first,
                              std::uint32_t count, const Network &nw);

    SystemConfig config;
    /**
     * Run-private memory for every component below. Declared FIRST
     * so it outlives them all (members destroy in reverse order):
     * event-queue slabs, message pools, hash tables, and cache arrays
     * all point into it.
     */
    Arena arena;
    EventQueue eventq;
    /** Structured protocol event ring; components hold a pointer. */
    TraceRecorder tracer;
    std::unique_ptr<Network> net;
    HomeMap homes;
    GlobalStore store;
    SerialChecker serialChecker;
    /** Online protocol-invariant checker (armed via check.invariants). */
    std::unique_ptr<InvariantChecker> invariants;
    /** PDES engine state (null in serial-engine systems). Declared
     *  before the vendor, directories, and processors: in PDES mode
     *  those are wired to the domains' queues, networks, and arenas. */
    std::unique_ptr<PdesState> pdesState;
    std::unique_ptr<TidVendor> tidVendor;
    std::vector<std::unique_ptr<Directory>> dirs;
    std::vector<std::unique_ptr<TccProcessor>> procs;
    /** Epoch sampler (null when metricsEpoch == 0). Serial: sampled by
     *  the run loop. PDES: created at finalize to hold the merged
     *  per-domain series. */
    std::unique_ptr<MetricsSampler> metricsSamp;
    /** Conflict profiler (null when contentionTopK == 0). Serial: fed
     *  directly by the processors. PDES: merged at finalize. */
    std::unique_ptr<ContentionProfiler> contentionProf;

    // Barrier service (SPMD phase barriers between transactions).
    std::vector<std::pair<NodeId, std::function<void()>>> barrierWaiters;
    std::uint32_t doneProcs = 0;
    /** Copy of the last run's PDES stats (see pdesStats()). */
    RunResult::PdesRunStats lastPdesStats;
};

} // namespace tcc

#endif // TCC_CORE_SYSTEM_HH
