/**
 * @file
 * Full statistics dump, in the spirit of gem5's stats.txt: every
 * counter the simulator keeps, rendered as "name value" lines grouped
 * by component. Meant for regression diffing and offline analysis.
 */

#ifndef TCC_CORE_STATS_DUMP_HH
#define TCC_CORE_STATS_DUMP_HH

#include <ostream>

#include "core/system.hh"

namespace tcc {

/**
 * Write every statistic of @p sys to @p os:
 *   system.*            run-level aggregates
 *   network.*           message/byte/hop counters by traffic class
 *   proc<N>.*           per-processor breakdown + transaction stats
 *   dir<N>.*            per-directory protocol counters
 */
void dumpStats(const System &sys, std::ostream &os);

} // namespace tcc

#endif // TCC_CORE_STATS_DUMP_HH
