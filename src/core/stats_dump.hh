/**
 * @file
 * Full statistics dump, in the spirit of gem5's stats.txt: every
 * counter the simulator keeps, rendered as "name value" lines grouped
 * by component. Meant for regression diffing and offline analysis.
 */

#ifndef TCC_CORE_STATS_DUMP_HH
#define TCC_CORE_STATS_DUMP_HH

#include <ostream>

#include "core/system.hh"

namespace tcc {

/**
 * Write every statistic of @p sys to @p os:
 *   system.*            run-level aggregates
 *   network.*           message/byte/hop counters by traffic class
 *   proc<N>.*           per-processor breakdown + transaction stats
 *   dir<N>.*            per-directory protocol counters
 *   tx_ledger.*         per-transaction lifecycle (when traced)
 */
void dumpStats(const System &sys, std::ostream &os);

/**
 * The same statistics tree as machine-readable JSON: nested objects
 * with stable key order and fixed double formatting ("%.6g"), so the
 * output of a deterministic run is byte-identical across platforms.
 * Top-level shape:
 *
 *   { "system": {...}, "network": {...},
 *     "procs": [...], "dirs": [...], "tx_ledger": [...] }
 *
 * tx_ledger entries come from obs/tx_ledger.hh and are empty unless
 * the Proc + Commit trace categories were enabled during the run.
 */
void dumpStatsJson(const System &sys, std::ostream &os);

} // namespace tcc

#endif // TCC_CORE_STATS_DUMP_HH
