#include "core/report.hh"

#include <algorithm>
#include <cstdio>

#include "common/flat_map.hh"

namespace tcc {

namespace {

/** Merge one distribution from every processor into a single one. */
template <typename Get>
Distribution
mergeProcDist(const System &sys, Get get)
{
    Distribution all;
    for (NodeId p = 0; p < sys.numProcs(); ++p)
        all.merge(get(sys.proc(p).stats()));
    return all;
}

} // namespace

AppCharacterization
characterize(const System &sys, const std::string &name)
{
    AppCharacterization c;
    c.name = name;

    // Pool the per-processor samples; because every processor runs the
    // same SPMD workload, pooling quantiles is a good estimator of the
    // global 90th percentile.
    Distribution size = mergeProcDist(sys, [](const auto &s) -> const
                                      Distribution & {
        return s.txnInstructions;
    });
    Distribution ws = mergeProcDist(sys, [](const auto &s) -> const
                                    Distribution & {
        return s.txnWriteSetKB;
    });
    Distribution rs = mergeProcDist(sys, [](const auto &s) -> const
                                    Distribution & {
        return s.txnReadSetKB;
    });
    Distribution opw = mergeProcDist(sys, [](const auto &s) -> const
                                     Distribution & {
        return s.opsPerWordWritten;
    });
    Distribution dpc = mergeProcDist(sys, [](const auto &s) -> const
                                     Distribution & {
        return s.dirsPerCommit;
    });

    c.txnSize90 = size.percentile(90);
    c.writeSetKB90 = ws.percentile(90);
    c.readSetKB90 = rs.percentile(90);
    c.opsPerWordWritten90 = opw.percentile(90);
    c.dirsPerCommit90 = dpc.percentile(90);

    Distribution working, occ;
    for (NodeId d = 0; d < sys.numProcs(); ++d) {
        const auto &ds = sys.directory(d).stats();
        if (ds.workingSet.count() > 0)
            working.sample(ds.workingSet.percentile(90));
        if (ds.commitOccupancy.count() > 0)
            occ.sample(ds.commitOccupancy.percentile(90));
    }
    c.dirWorkingSet90 = working.percentile(90);
    c.dirOccupancy90 = occ.percentile(90);
    return c;
}

std::string
table3Header()
{
    return "application      txn_size  wr_set_KB  rd_set_KB  ops/word "
           " dirs/commit  dir_wset  dir_occupancy\n"
           "                 (90th %)   (90th %)   (90th %)  (90th %) "
           "    (90th %)  (90th %)       (90th %)";
}

std::string
table3Row(const AppCharacterization &c)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%-16s %8.0f %10.2f %10.2f %9.1f %12.1f %9.0f %14.0f",
                  c.name.c_str(), c.txnSize90, c.writeSetKB90,
                  c.readSetKB90, c.opsPerWordWritten90,
                  c.dirsPerCommit90, c.dirWorkingSet90,
                  c.dirOccupancy90);
    return buf;
}

std::string
breakdownHeader()
{
    return "label                 useful%   miss%   idle% commit% "
           "violation%";
}

std::string
breakdownRow(const std::string &label, const Breakdown &bd)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "%-20s %8.1f %7.1f %7.1f %7.1f %10.1f",
                  label.c_str(), 100.0 * bd.fraction(bd.useful),
                  100.0 * bd.fraction(bd.miss),
                  100.0 * bd.fraction(bd.idle),
                  100.0 * bd.fraction(bd.commit),
                  100.0 * bd.fraction(bd.violation));
    return buf;
}

TrafficRow
trafficPerInstr(const System &sys, const std::string &name)
{
    TrafficRow row;
    row.name = name;
    const auto &ns = sys.network().stats();
    const double instr =
        static_cast<double>(sys.committedInstructions());
    if (instr <= 0)
        return row;
    row.overhead =
        ns.classBytes[(int)TrafficClass::Overhead] / instr;
    row.miss = ns.classBytes[(int)TrafficClass::Miss] / instr;
    row.writeBack =
        ns.classBytes[(int)TrafficClass::WriteBack] / instr;
    row.shared = ns.classBytes[(int)TrafficClass::Shared] / instr;
    return row;
}

std::string
trafficHeader()
{
    return "application       overhead      miss  writeback    shared "
           "    total  (bytes/instr)";
}

std::string
trafficRowText(const TrafficRow &row)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "%-16s %9.4f %9.4f %10.4f %9.4f %9.4f",
                  row.name.c_str(), row.overhead, row.miss,
                  row.writeBack, row.shared, row.total());
    return buf;
}

std::vector<ConflictHotspot>
conflictHotspots(const System &sys, std::size_t top_n)
{
    FlatMap<Addr, std::uint64_t> merged;
    for (NodeId p = 0; p < sys.numProcs(); ++p)
        for (const auto &[addr, n] :
             sys.proc(p).stats().violationAddrs)
            merged[addr] += n;
    std::vector<ConflictHotspot> all;
    all.reserve(merged.size());
    for (const auto &[addr, n] : merged)
        all.push_back(ConflictHotspot{addr, n});
    // Tie-break on address so the report is independent of container
    // iteration order.
    std::sort(all.begin(), all.end(),
              [](const ConflictHotspot &a, const ConflictHotspot &b) {
                  if (a.violations != b.violations)
                      return a.violations > b.violations;
                  return a.lineAddr < b.lineAddr;
              });
    if (all.size() > top_n)
        all.resize(top_n);
    return all;
}

} // namespace tcc
