#include "core/stats_dump.hh"

#include <string>

namespace tcc {

namespace {

void
line(std::ostream &os, const std::string &name, std::uint64_t v)
{
    os << name << " " << v << "\n";
}

void
lined(std::ostream &os, const std::string &name, double v)
{
    os << name << " " << v << "\n";
}

void
dumpDistribution(std::ostream &os, const std::string &prefix,
                 const Distribution &d)
{
    line(os, prefix + ".count", d.count());
    if (d.count() == 0)
        return;
    lined(os, prefix + ".mean", d.mean());
    lined(os, prefix + ".p50", d.percentile(50));
    lined(os, prefix + ".p90", d.percentile(90));
    lined(os, prefix + ".max", d.max());
}

} // namespace

void
dumpStats(const System &sys, std::ostream &os)
{
    os << "---------- begin tcc stats ----------\n";

    // --- system-level ------------------------------------------------
    const Breakdown bd = sys.breakdown();
    line(os, "system.procs", sys.numProcs());
    line(os, "system.committed_instructions",
         sys.committedInstructions());
    line(os, "system.useful_cycles", bd.useful);
    line(os, "system.miss_cycles", bd.miss);
    line(os, "system.commit_cycles", bd.commit);
    line(os, "system.idle_cycles", bd.idle);
    line(os, "system.violation_cycles", bd.violation);
    line(os, "system.tids_issued", sys.vendor().issued());
    line(os, "system.quiesced", sys.protocolQuiesced() ? 1 : 0);
    const Arena::Stats as = sys.arenaStats();
    line(os, "system.arena_peak_bytes", as.peakBytes);
    line(os, "system.arena_chunks", as.chunks);

    // --- network -------------------------------------------------------
    const auto &ns = sys.network().stats();
    line(os, "network.messages", ns.messages);
    line(os, "network.bytes", ns.totalBytes);
    line(os, "network.hops", ns.totalHops);
    line(os, "network.bytes.overhead",
         ns.classBytes[(int)TrafficClass::Overhead]);
    line(os, "network.bytes.miss",
         ns.classBytes[(int)TrafficClass::Miss]);
    line(os, "network.bytes.writeback",
         ns.classBytes[(int)TrafficClass::WriteBack]);
    line(os, "network.bytes.shared",
         ns.classBytes[(int)TrafficClass::Shared]);

    // --- per processor ---------------------------------------------------
    for (NodeId p = 0; p < sys.numProcs(); ++p) {
        const auto &s = sys.proc(p).stats();
        const std::string pre = "proc" + std::to_string(p);
        line(os, pre + ".useful_cycles", s.usefulCycles);
        line(os, pre + ".miss_cycles", s.missCycles);
        line(os, pre + ".commit_cycles", s.commitCycles);
        line(os, pre + ".idle_cycles", s.idleCycles);
        line(os, pre + ".violation_cycles", s.violationCycles);
        line(os, pre + ".txns_committed", s.txnsCommitted);
        line(os, pre + ".violations", s.violations);
        line(os, pre + ".overflows", s.overflows);
        line(os, pre + ".solo_commits", s.soloCommits);
        line(os, pre + ".drains", s.drains);
        line(os, pre + ".tid_requests", s.tidRequests);
        line(os, pre + ".value_validation_failures",
             s.valueValidationFailures);
        dumpDistribution(os, pre + ".txn_instructions",
                         s.txnInstructions);
        dumpDistribution(os, pre + ".commit_latency", s.commitLatency);

        const auto &cs = sys.proc(p).cache().stats();
        line(os, pre + ".cache.loads", cs.loads);
        line(os, pre + ".cache.stores", cs.stores);
        line(os, pre + ".cache.l1_hits", cs.l1Hits);
        line(os, pre + ".cache.l2_hits", cs.l2Hits);
        line(os, pre + ".cache.misses", cs.misses);
        line(os, pre + ".cache.fills", cs.fills);
        line(os, pre + ".cache.dirty_evictions", cs.dirtyEvictions);
        line(os, pre + ".cache.overflows", cs.overflows);
        line(os, pre + ".cache.ghosts", cs.ghostsCreated);
    }

    // --- per directory ---------------------------------------------------
    for (NodeId d = 0; d < sys.numProcs(); ++d) {
        const auto &s = sys.directory(d).stats();
        const std::string pre = "dir" + std::to_string(d);
        line(os, pre + ".nstid", sys.directory(d).nstid());
        line(os, pre + ".loads_served", s.loadsServed);
        line(os, pre + ".loads_stalled", s.loadsStalled);
        line(os, pre + ".loads_forwarded", s.loadsForwarded);
        line(os, pre + ".skips", s.skipsReceived);
        line(os, pre + ".commits", s.commitsServed);
        line(os, pre + ".partial_commits", s.partialCommitsServed);
        line(os, pre + ".aborts", s.abortsServed);
        line(os, pre + ".invalidations", s.invalidationsSent);
        line(os, pre + ".writebacks_accepted", s.writeBacksAccepted);
        line(os, pre + ".writebacks_dropped", s.writeBacksDropped);
        line(os, pre + ".marks", s.marksReceived);
        line(os, pre + ".probes_deferred", s.probesDeferred);
        line(os, pre + ".dir_cache_misses", s.dirCacheMisses);
        line(os, pre + ".busy_cycles", s.busyCycles);
        line(os, pre + ".entries", sys.directory(d).numEntries());
        dumpDistribution(os, pre + ".commit_occupancy",
                         s.commitOccupancy);
        dumpDistribution(os, pre + ".working_set", s.workingSet);
    }

    os << "---------- end tcc stats ----------\n";
}

} // namespace tcc
