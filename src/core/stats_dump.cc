#include "core/stats_dump.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "common/flat_map.hh"
#include "obs/contention.hh"
#include "obs/metrics.hh"
#include "obs/tx_ledger.hh"

namespace tcc {

namespace {

void
line(std::ostream &os, const std::string &name, std::uint64_t v)
{
    os << name << " " << v << "\n";
}

void
lined(std::ostream &os, const std::string &name, double v)
{
    os << name << " " << v << "\n";
}

void
dumpDistribution(std::ostream &os, const std::string &prefix,
                 const Distribution &d)
{
    line(os, prefix + ".count", d.count());
    if (d.count() == 0)
        return;
    lined(os, prefix + ".mean", d.mean());
    lined(os, prefix + ".min", d.min());
    lined(os, prefix + ".p50", d.percentile(50));
    lined(os, prefix + ".p90", d.percentile(90));
    lined(os, prefix + ".max", d.max());
    lined(os, prefix + ".stddev", d.stddev());
}

/**
 * Minimal structural JSON writer: tracks "does the current scope need
 * a comma" so emission order alone determines the output. Doubles use
 * "%.6g" so dumps are byte-stable across platforms.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os_) : os(os_) {}

    void
    beginObj(const char *key = nullptr)
    {
        sep();
        tag(key);
        os << "{";
        needComma = false;
    }

    void
    endObj()
    {
        os << "}";
        needComma = true;
    }

    void
    beginArr(const char *key = nullptr)
    {
        sep();
        tag(key);
        os << "[";
        needComma = false;
    }

    void
    endArr()
    {
        os << "]";
        needComma = true;
    }

    void
    kv(const char *key, std::uint64_t v)
    {
        sep();
        tag(key);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
        os << buf;
        needComma = true;
    }

    void
    kv(const char *key, double v)
    {
        sep();
        tag(key);
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        os << buf;
        needComma = true;
    }

    void
    kvBool(const char *key, bool v)
    {
        sep();
        tag(key);
        os << (v ? "true" : "false");
        needComma = true;
    }

    /** String values are known identifiers; no escaping needed. */
    void
    kvStr(const char *key, const char *v)
    {
        sep();
        tag(key);
        os << "\"" << v << "\"";
        needComma = true;
    }

  private:
    void
    sep()
    {
        if (needComma)
            os << ",";
    }

    void
    tag(const char *key)
    {
        if (key != nullptr)
            os << "\"" << key << "\":";
    }

    std::ostream &os;
    bool needComma = false;
};

void
jsonDistribution(JsonWriter &j, const char *key, const Distribution &d)
{
    j.beginObj(key);
    j.kv("count", static_cast<std::uint64_t>(d.count()));
    if (d.count() != 0) {
        j.kv("mean", d.mean());
        j.kv("min", d.min());
        j.kv("p50", d.percentile(50));
        j.kv("p90", d.percentile(90));
        j.kv("max", d.max());
        j.kv("stddev", d.stddev());
    }
    j.endObj();
}

/** Aggregate per-entry violation causes across the whole ledger:
 *  (address, count) sorted by count descending, address ascending. */
std::vector<std::pair<Addr, std::uint64_t>>
aggregateCauses(const std::vector<TxLedgerEntry> &ledger)
{
    FlatMap<Addr, std::uint64_t> agg;
    for (const TxLedgerEntry &e : ledger) {
        for (const auto &[addr, n] : e.causes)
            agg[addr] += n;
    }
    std::vector<std::pair<Addr, std::uint64_t>> out;
    out.reserve(agg.size());
    for (const auto &kv : agg)
        out.emplace_back(kv.first, kv.second);
    std::sort(out.begin(), out.end(), [](const auto &a, const auto &b) {
        if (a.second != b.second)
            return a.second > b.second;
        return a.first < b.first;
    });
    return out;
}

void
dumpLedgerText(std::ostream &os,
               const std::vector<TxLedgerEntry> &ledger)
{
    line(os, "tx_ledger.count", ledger.size());
    for (std::size_t i = 0; i < ledger.size(); ++i) {
        const TxLedgerEntry &e = ledger[i];
        const std::string pre = "tx_ledger." + std::to_string(i);
        line(os, pre + ".tid", e.tid);
        line(os, pre + ".node", e.node);
        line(os, pre + ".begin_tick", e.beginTick);
        line(os, pre + ".exec_cycles", e.execCycles());
        line(os, pre + ".commit_cycles", e.commitCycles());
        line(os, pre + ".retries", e.retries);
        line(os, pre + ".probes", e.probeCount);
        lined(os, pre + ".probe_rtt_mean", e.probeRttMean());
        line(os, pre + ".probe_rtt_max", e.probeRttMax);
        line(os, pre + ".mark_to_commit", e.markToCommitCycles());
        line(os, pre + ".skip_to_commit", e.skipToCommitCycles());
        line(os, pre + ".directories_touched", e.directoriesTouched);
        line(os, pre + ".multicast_events", e.multicastEvents);
        if (e.hasViolation) {
            line(os, pre + ".violation_addr", e.violationAddr);
            line(os, pre + ".violation_writer", e.violationWriter);
            line(os, pre + ".causes", e.causes.size());
            for (std::size_t c = 0; c < e.causes.size(); ++c) {
                const std::string cp =
                    pre + ".cause" + std::to_string(c);
                line(os, cp + ".addr", e.causes[c].first);
                line(os, cp + ".count", e.causes[c].second);
            }
        }
    }
    // Ledger-wide violation-cause histogram: which addresses caused
    // retries, not just each transaction's *last* cause.
    const auto causes = aggregateCauses(ledger);
    line(os, "tx_ledger.violation_causes.count", causes.size());
    for (std::size_t c = 0; c < causes.size(); ++c) {
        const std::string cp =
            "tx_ledger.violation_causes." + std::to_string(c);
        line(os, cp + ".addr", causes[c].first);
        line(os, cp + ".count", causes[c].second);
    }
    // Cross-commit distributions (mean/p50/p99) of the fan-out shape:
    // how many directories a commit touches and what it cost in
    // NIC-serialized multicast injections.
    Distribution dirs, mcast;
    for (const TxLedgerEntry &e : ledger) {
        dirs.sample(static_cast<double>(e.directoriesTouched));
        mcast.sample(static_cast<double>(e.multicastEvents));
    }
    if (dirs.count() != 0) {
        lined(os, "tx_ledger.directories_touched.mean", dirs.mean());
        lined(os, "tx_ledger.directories_touched.p50",
              dirs.percentile(50));
        lined(os, "tx_ledger.directories_touched.p99",
              dirs.percentile(99));
        lined(os, "tx_ledger.multicast_events.mean", mcast.mean());
        lined(os, "tx_ledger.multicast_events.p50",
              mcast.percentile(50));
        lined(os, "tx_ledger.multicast_events.p99",
              mcast.percentile(99));
    }
}

} // namespace

void
dumpStats(const System &sys, std::ostream &os)
{
    os << "---------- begin tcc stats ----------\n";

    // --- system-level ------------------------------------------------
    const Breakdown bd = sys.computeBreakdown();
    line(os, "system.procs", sys.numProcs());
    line(os, "system.committed_instructions",
         sys.committedInstructions());
    line(os, "system.useful_cycles", bd.useful);
    line(os, "system.miss_cycles", bd.miss);
    line(os, "system.commit_cycles", bd.commit);
    line(os, "system.idle_cycles", bd.idle);
    line(os, "system.violation_cycles", bd.violation);
    line(os, "system.tids_issued", sys.vendor().issued());
    line(os, "system.quiesced", sys.protocolQuiesced() ? 1 : 0);
    const Arena::Stats as = sys.arenaStats();
    line(os, "system.arena_peak_bytes", as.peakBytes);
    line(os, "system.arena_chunks", as.chunks);
    line(os, "system.trace_events_captured",
         sys.traceRecorder().captured());

    // --- network -------------------------------------------------------
    const auto &ns = sys.network().stats();
    line(os, "network.messages", ns.messages);
    line(os, "network.bytes", ns.totalBytes);
    line(os, "network.hops", ns.totalHops);
    line(os, "network.multicasts", ns.multicasts);
    line(os, "network.multicast_nic_events", ns.multicastNicEvents);
    line(os, "network.bytes.overhead",
         ns.classBytes[(int)TrafficClass::Overhead]);
    line(os, "network.bytes.miss",
         ns.classBytes[(int)TrafficClass::Miss]);
    line(os, "network.bytes.writeback",
         ns.classBytes[(int)TrafficClass::WriteBack]);
    line(os, "network.bytes.shared",
         ns.classBytes[(int)TrafficClass::Shared]);

    // --- pdes (only populated by parallel runs) ----------------------
    const auto &ps = sys.pdesStats();
    if (ps.domains != 0) {
        line(os, "pdes.domains", ps.domains);
        line(os, "pdes.jobs", ps.jobs);
        line(os, "pdes.sync_adaptive", ps.adaptive ? 1 : 0);
        line(os, "pdes.lookahead", ps.lookahead);
        line(os, "pdes.windows", ps.windows);
        line(os, "pdes.phases", ps.phases);
        line(os, "pdes.mailbox_messages", ps.mailboxMessages);
        line(os, "pdes.idle_domain_skips", ps.idleDomainSkips);
        line(os, "pdes.empty_broadcasts_skipped",
             ps.emptyBroadcastsSkipped);
        lined(os, "pdes.window_width.mean", ps.windowWidth.mean());
        lined(os, "pdes.window_width.p50",
              ps.windowWidth.percentile(50));
        lined(os, "pdes.window_width.p99",
              ps.windowWidth.percentile(99));
    }

    // --- per processor ---------------------------------------------------
    for (NodeId p = 0; p < sys.numProcs(); ++p) {
        const auto &s = sys.proc(p).stats();
        const std::string pre = "proc" + std::to_string(p);
        line(os, pre + ".useful_cycles", s.usefulCycles);
        line(os, pre + ".miss_cycles", s.missCycles);
        line(os, pre + ".commit_cycles", s.commitCycles);
        line(os, pre + ".idle_cycles", s.idleCycles);
        line(os, pre + ".violation_cycles", s.violationCycles);
        line(os, pre + ".txns_committed", s.txnsCommitted);
        line(os, pre + ".violations", s.violations);
        line(os, pre + ".overflows", s.overflows);
        line(os, pre + ".solo_commits", s.soloCommits);
        line(os, pre + ".drains", s.drains);
        line(os, pre + ".tid_requests", s.tidRequests);
        line(os, pre + ".value_validation_failures",
             s.valueValidationFailures);
        dumpDistribution(os, pre + ".txn_instructions",
                         s.txnInstructions);
        dumpDistribution(os, pre + ".commit_latency", s.commitLatency);
        dumpDistribution(os, pre + ".dirs_per_commit", s.dirsPerCommit);
        dumpDistribution(os, pre + ".dirs_touched_per_commit",
                         s.dirsTouchedPerCommit);
        dumpDistribution(os, pre + ".multicast_nic_per_commit",
                         s.multicastNicPerCommit);

        const auto &cs = sys.proc(p).cache().stats();
        line(os, pre + ".cache.loads", cs.loads);
        line(os, pre + ".cache.stores", cs.stores);
        line(os, pre + ".cache.l1_hits", cs.l1Hits);
        line(os, pre + ".cache.l2_hits", cs.l2Hits);
        line(os, pre + ".cache.misses", cs.misses);
        line(os, pre + ".cache.fills", cs.fills);
        line(os, pre + ".cache.dirty_evictions", cs.dirtyEvictions);
        line(os, pre + ".cache.overflows", cs.overflows);
        line(os, pre + ".cache.ghosts", cs.ghostsCreated);
    }

    // --- per directory ---------------------------------------------------
    for (NodeId d = 0; d < sys.numProcs(); ++d) {
        const auto &s = sys.directory(d).stats();
        const std::string pre = "dir" + std::to_string(d);
        line(os, pre + ".nstid", sys.directory(d).nstid());
        line(os, pre + ".loads_served", s.loadsServed);
        line(os, pre + ".loads_stalled", s.loadsStalled);
        line(os, pre + ".loads_forwarded", s.loadsForwarded);
        line(os, pre + ".skips", s.skipsReceived);
        line(os, pre + ".commits", s.commitsServed);
        line(os, pre + ".partial_commits", s.partialCommitsServed);
        line(os, pre + ".aborts", s.abortsServed);
        line(os, pre + ".invalidations", s.invalidationsSent);
        line(os, pre + ".writebacks_accepted", s.writeBacksAccepted);
        line(os, pre + ".writebacks_dropped", s.writeBacksDropped);
        line(os, pre + ".marks", s.marksReceived);
        line(os, pre + ".probes_deferred", s.probesDeferred);
        line(os, pre + ".dir_cache_misses", s.dirCacheMisses);
        line(os, pre + ".busy_cycles", s.busyCycles);
        line(os, pre + ".entries", sys.directory(d).numEntries());
        dumpDistribution(os, pre + ".commit_occupancy",
                         s.commitOccupancy);
        dumpDistribution(os, pre + ".working_set", s.workingSet);
    }

    // --- epoch metrics (summary; the series lives in --stats-json and
    // --- the --metrics-out CSV) --------------------------------------
    if (const MetricsSampler *m = sys.metricsSampler()) {
        line(os, "metrics.epoch", m->epochLength());
        line(os, "metrics.epochs_closed", m->closed());
        line(os, "metrics.epochs_dropped", m->dropped());
        line(os, "metrics.probes", m->probeCount());
    }

    // --- conflict attribution ----------------------------------------
    if (const ContentionProfiler *c = sys.contentionProfiler()) {
        line(os, "contention.top_k", c->topK());
        line(os, "contention.conflicts", c->conflictsRecorded());
        line(os, "contention.evictions", c->evictions());
        const auto words = c->hotWords();
        line(os, "contention.hot_words.count", words.size());
        for (std::size_t i = 0; i < words.size(); ++i) {
            const std::string pre =
                "contention.hot_word." + std::to_string(i);
            line(os, pre + ".addr", words[i].addr);
            line(os, pre + ".sr_conflicts", words[i].s.srConflicts);
            line(os, pre + ".sm_conflicts", words[i].s.smConflicts);
            line(os, pre + ".aborts", words[i].s.aborts);
            line(os, pre + ".wasted_cycles", words[i].s.wasted);
        }
        const auto edges = c->blameEdges();
        line(os, "contention.blame_edges.count", edges.size());
        for (std::size_t i = 0; i < edges.size(); ++i) {
            const std::string pre =
                "contention.blame_edge." + std::to_string(i);
            line(os, pre + ".killer", edges[i].killer);
            line(os, pre + ".victim", edges[i].victim);
            line(os, pre + ".count", edges[i].count);
        }
    }

    // --- transaction ledger (only when something was traced) ----------
    if (sys.traceRecorder().captured() != 0)
        dumpLedgerText(os, buildTxLedger(sys.traceRecorder()));

    os << "---------- end tcc stats ----------\n";
}

void
dumpStatsJson(const System &sys, std::ostream &os)
{
    JsonWriter j(os);
    j.beginObj();

    // --- resolved configuration --------------------------------------
    {
        const SystemConfig &cfg = sys.cfg();
        j.beginObj("config");
        j.kv("procs", static_cast<std::uint64_t>(cfg.numProcs));
        j.beginObj("network");
        const char *model =
            cfg.network.model == NetworkConfig::Model::Mesh ? "mesh"
            : cfg.network.model == NetworkConfig::Model::Ideal
                ? "ideal"
                : "chaos";
        j.kvStr("model", model);
        if (cfg.network.model == NetworkConfig::Model::Chaos) {
            const ChaosConfig &c = cfg.network.chaos;
            j.kvStr("base", c.overIdeal ? "ideal" : "mesh");
            j.kv("seed", c.seed);
            j.kv("jitter", c.jitter);
            j.kv("reorder_prob", c.reorderProb);
            j.kv("reorder_window", c.reorderWindow);
            j.kv("duplicate_prob", c.duplicateProb);
            j.kv("duplicate_lag", c.duplicateLag);
        }
        if (cfg.network.model == NetworkConfig::Model::Ideal ||
            (cfg.network.model == NetworkConfig::Model::Chaos &&
             cfg.network.chaos.overIdeal)) {
            j.kv("ideal_latency", cfg.network.idealLatency);
        } else {
            j.kv("hop_latency", cfg.network.mesh.hopLatency);
            j.kv("link_bytes_per_cycle",
                 static_cast<std::uint64_t>(
                     cfg.network.mesh.linkBytesPerCycle));
        }
        j.endObj();
        j.beginObj("check");
        j.kvBool("serial", cfg.check.serial);
        j.kvBool("invariants", cfg.check.invariants);
        j.endObj();
        j.kvBool("write_through_commit", cfg.writeThroughCommit);
        j.endObj();
    }

    const Breakdown bd = sys.computeBreakdown();
    j.beginObj("system");
    j.kv("procs", static_cast<std::uint64_t>(sys.numProcs()));
    j.kv("committed_instructions", sys.committedInstructions());
    j.kv("useful_cycles", bd.useful);
    j.kv("miss_cycles", bd.miss);
    j.kv("commit_cycles", bd.commit);
    j.kv("idle_cycles", bd.idle);
    j.kv("violation_cycles", bd.violation);
    j.kv("tids_issued", sys.vendor().issued());
    j.kvBool("quiesced", sys.protocolQuiesced());
    const Arena::Stats as = sys.arenaStats();
    j.kv("arena_peak_bytes", as.peakBytes);
    j.kv("arena_chunks", static_cast<std::uint64_t>(as.chunks));
    j.kv("trace_events_captured", sys.traceRecorder().captured());
    j.kv("trace_events_dropped", sys.traceRecorder().dropped());
    j.endObj();

    const auto &ns = sys.network().stats();
    j.beginObj("network");
    j.kv("messages", ns.messages);
    j.kv("bytes", ns.totalBytes);
    j.kv("hops", ns.totalHops);
    j.kv("multicasts", ns.multicasts);
    j.kv("multicast_nic_events", ns.multicastNicEvents);
    j.beginObj("bytes_by_class");
    j.kv("overhead", ns.classBytes[(int)TrafficClass::Overhead]);
    j.kv("miss", ns.classBytes[(int)TrafficClass::Miss]);
    j.kv("writeback", ns.classBytes[(int)TrafficClass::WriteBack]);
    j.kv("shared", ns.classBytes[(int)TrafficClass::Shared]);
    j.endObj();
    j.endObj();

    const auto &ps = sys.pdesStats();
    if (ps.domains != 0) {
        j.beginObj("pdes");
        j.kv("domains", static_cast<std::uint64_t>(ps.domains));
        j.kv("jobs", static_cast<std::uint64_t>(ps.jobs));
        j.kvStr("sync", ps.adaptive ? "adaptive" : "fixed");
        j.kv("lookahead", ps.lookahead);
        j.kv("windows", ps.windows);
        j.kv("phases", ps.phases);
        j.kv("mailbox_messages", ps.mailboxMessages);
        j.kv("idle_domain_skips", ps.idleDomainSkips);
        j.kv("empty_broadcasts_skipped", ps.emptyBroadcastsSkipped);
        jsonDistribution(j, "window_width", ps.windowWidth);
        j.endObj();
    }

    // Epoch time series: one parallel array per probe plus the derived
    // nstid_lag (tids issued minus the slowest directory's NSTID - the
    // commit pipeline's depth over time).
    if (const MetricsSampler *m = sys.metricsSampler()) {
        j.beginObj("metrics");
        j.kv("epoch", m->epochLength());
        j.kv("epochs_closed", m->closed());
        j.kv("epochs_dropped", m->dropped());
        j.kv("first_epoch", m->firstEpoch());
        j.beginObj("series");
        for (std::size_t p = 0; p < m->probeCount(); ++p) {
            j.beginArr(m->probeName(p));
            for (std::size_t r = 0; r < m->rows(); ++r)
                j.kv(nullptr, m->at(r, p));
            j.endArr();
        }
        const int issued = m->probeIndex("tids_issued");
        const int nstid = m->probeIndex("nstid_min");
        if (issued >= 0 && nstid >= 0) {
            j.beginArr("nstid_lag");
            for (std::size_t r = 0; r < m->rows(); ++r) {
                const std::uint64_t hi =
                    m->at(r, static_cast<std::size_t>(issued));
                const std::uint64_t lo =
                    m->at(r, static_cast<std::size_t>(nstid));
                j.kv(nullptr, hi > lo ? hi - lo : 0);
            }
            j.endArr();
        }
        j.endObj();
        j.endObj();
    }

    // Conflict attribution: hot words and the abort blame graph.
    if (const ContentionProfiler *c = sys.contentionProfiler()) {
        j.beginObj("contention");
        j.kv("top_k", static_cast<std::uint64_t>(c->topK()));
        j.kv("conflicts", c->conflictsRecorded());
        j.kv("evictions", c->evictions());
        j.beginArr("hot_words");
        for (const auto &w : c->hotWords()) {
            j.beginObj();
            j.kv("addr", w.addr);
            j.kv("sr_conflicts", w.s.srConflicts);
            j.kv("sm_conflicts", w.s.smConflicts);
            j.kv("aborts", w.s.aborts);
            j.kv("wasted_cycles", w.s.wasted);
            j.endObj();
        }
        j.endArr();
        j.beginArr("blame_edges");
        for (const auto &e : c->blameEdges()) {
            j.beginObj();
            j.kv("killer", static_cast<std::uint64_t>(e.killer));
            j.kv("victim", static_cast<std::uint64_t>(e.victim));
            j.kv("count", e.count);
            j.endObj();
        }
        j.endArr();
        j.endObj();
    }

    j.beginArr("procs");
    for (NodeId p = 0; p < sys.numProcs(); ++p) {
        const auto &s = sys.proc(p).stats();
        j.beginObj();
        j.kv("node", static_cast<std::uint64_t>(p));
        j.kv("useful_cycles", s.usefulCycles);
        j.kv("miss_cycles", s.missCycles);
        j.kv("commit_cycles", s.commitCycles);
        j.kv("idle_cycles", s.idleCycles);
        j.kv("violation_cycles", s.violationCycles);
        j.kv("txns_committed", s.txnsCommitted);
        j.kv("violations", s.violations);
        j.kv("overflows", s.overflows);
        j.kv("solo_commits", s.soloCommits);
        j.kv("drains", s.drains);
        j.kv("tid_requests", s.tidRequests);
        j.kv("value_validation_failures", s.valueValidationFailures);
        jsonDistribution(j, "txn_instructions", s.txnInstructions);
        jsonDistribution(j, "commit_latency", s.commitLatency);
        jsonDistribution(j, "dirs_per_commit", s.dirsPerCommit);
        jsonDistribution(j, "dirs_touched_per_commit",
                         s.dirsTouchedPerCommit);
        jsonDistribution(j, "multicast_nic_per_commit",
                         s.multicastNicPerCommit);

        const auto &cs = sys.proc(p).cache().stats();
        j.beginObj("cache");
        j.kv("loads", cs.loads);
        j.kv("stores", cs.stores);
        j.kv("l1_hits", cs.l1Hits);
        j.kv("l2_hits", cs.l2Hits);
        j.kv("misses", cs.misses);
        j.kv("fills", cs.fills);
        j.kv("dirty_evictions", cs.dirtyEvictions);
        j.kv("overflows", cs.overflows);
        j.kv("ghosts", cs.ghostsCreated);
        j.endObj();
        j.endObj();
    }
    j.endArr();

    j.beginArr("dirs");
    for (NodeId d = 0; d < sys.numProcs(); ++d) {
        const auto &s = sys.directory(d).stats();
        j.beginObj();
        j.kv("node", static_cast<std::uint64_t>(d));
        j.kv("nstid", sys.directory(d).nstid());
        j.kv("loads_served", s.loadsServed);
        j.kv("loads_stalled", s.loadsStalled);
        j.kv("loads_forwarded", s.loadsForwarded);
        j.kv("skips", s.skipsReceived);
        j.kv("commits", s.commitsServed);
        j.kv("partial_commits", s.partialCommitsServed);
        j.kv("aborts", s.abortsServed);
        j.kv("invalidations", s.invalidationsSent);
        j.kv("writebacks_accepted", s.writeBacksAccepted);
        j.kv("writebacks_dropped", s.writeBacksDropped);
        j.kv("marks", s.marksReceived);
        j.kv("probes_deferred", s.probesDeferred);
        j.kv("dir_cache_misses", s.dirCacheMisses);
        j.kv("busy_cycles", s.busyCycles);
        j.kv("entries",
             static_cast<std::uint64_t>(sys.directory(d).numEntries()));
        jsonDistribution(j, "commit_occupancy", s.commitOccupancy);
        jsonDistribution(j, "working_set", s.workingSet);
        j.endObj();
    }
    j.endArr();

    std::vector<TxLedgerEntry> ledger;
    if (sys.traceRecorder().captured() != 0)
        ledger = buildTxLedger(sys.traceRecorder());

    j.beginArr("tx_ledger");
    for (const TxLedgerEntry &e : ledger) {
        j.beginObj();
        j.kv("tid", e.tid);
        j.kv("node", static_cast<std::uint64_t>(e.node));
        j.kv("begin_tick", e.beginTick);
        j.kv("exec_cycles", e.execCycles());
        j.kv("commit_cycles", e.commitCycles());
        j.kv("retries", static_cast<std::uint64_t>(e.retries));
        j.kv("probes", e.probeCount);
        j.kv("probe_rtt_mean", e.probeRttMean());
        j.kv("probe_rtt_max", e.probeRttMax);
        j.kv("mark_to_commit", e.markToCommitCycles());
        j.kv("skip_to_commit", e.skipToCommitCycles());
        j.kv("directories_touched", e.directoriesTouched);
        j.kv("multicast_events", e.multicastEvents);
        j.kvBool("has_violation", e.hasViolation);
        if (e.hasViolation) {
            j.kv("violation_addr", e.violationAddr);
            j.kv("violation_writer", e.violationWriter);
            j.beginArr("causes");
            for (const auto &[addr, n] : e.causes) {
                j.beginObj();
                j.kv("addr", addr);
                j.kv("count", static_cast<std::uint64_t>(n));
                j.endObj();
            }
            j.endArr();
        }
        j.endObj();
    }
    j.endArr();

    // Cross-commit fan-out distributions: directories touched per
    // commit and NIC-serialized multicast cost per commit.
    {
        Distribution dirs, mcast;
        for (const TxLedgerEntry &e : ledger) {
            dirs.sample(static_cast<double>(e.directoriesTouched));
            mcast.sample(static_cast<double>(e.multicastEvents));
        }
        j.beginObj("tx_ledger_summary");
        j.beginObj("directories_touched");
        j.kv("count", static_cast<std::uint64_t>(dirs.count()));
        if (dirs.count() != 0) {
            j.kv("mean", dirs.mean());
            j.kv("p50", dirs.percentile(50));
            j.kv("p99", dirs.percentile(99));
        }
        j.endObj();
        j.beginObj("multicast_events");
        j.kv("count", static_cast<std::uint64_t>(mcast.count()));
        if (mcast.count() != 0) {
            j.kv("mean", mcast.mean());
            j.kv("p50", mcast.percentile(50));
            j.kv("p99", mcast.percentile(99));
        }
        j.endObj();
        // Ledger-wide violation-cause histogram (count desc, addr asc).
        j.beginArr("violation_causes");
        for (const auto &[addr, n] : aggregateCauses(ledger)) {
            j.beginObj();
            j.kv("addr", addr);
            j.kv("count", n);
            j.endObj();
        }
        j.endArr();
        j.endObj();
    }

    j.endObj();
    os << "\n";
}

} // namespace tcc
