/**
 * @file
 * TxProgram: a closure-based transactional programming model on top of
 * the Scalable TCC simulator - the programmer-facing "atomic { ... }"
 * abstraction the TCC papers advocate.
 *
 * Users enqueue C++ lambdas that manipulate shared memory through a
 * TxContext:
 *
 *   TxProgramSource src(sys.memory());
 *   src.atomic([](TxContext &tx) {
 *       auto head = tx.load(kHead);           // transactional read
 *       if (head != kNil) {
 *           auto next = tx.load(nodeNext(head));
 *           tx.store(kHead, next);            // transactional write
 *           tx.compute(120);                  // process the element
 *       }
 *   });
 *
 * Execution model: the body runs *at transaction-generation time*
 * against the committed state, recording an operation stream. Every
 * value the body observed is embedded as a validated load
 * (TxOp::loadExpect): if, by the time the processor consumes the load,
 * a conflicting commit changed the value, the transaction rolls back
 * and the body is re-run against the newer state (regenerateOps).
 * Combined with the protocol's own conflict detection this gives the
 * closure true serializable semantics, including data-dependent
 * control flow and computed addresses. Livelock freedom is inherited
 * from the protocol: repeated rollbacks trigger TID aging, which
 * stalls younger commits until the victim completes.
 */

#ifndef TCC_WORKLOAD_TX_PROGRAM_HH
#define TCC_WORKLOAD_TX_PROGRAM_HH

#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "common/flat_map.hh"
#include "mem/global_store.hh"
#include "workload/transaction_source.hh"

namespace tcc {

/** The handle a transaction body uses to touch shared memory. */
class TxContext
{
  public:
    /**
     * Transactional read of the word at @p addr. Returns the
     * transaction's own pending write if any, else the committed
     * value, and records a validated load.
     */
    std::uint64_t
    load(Addr addr)
    {
        const Addr w = GlobalStore::wordAlign(addr);
        auto it = localWrites.find(w);
        if (it != localWrites.end()) {
            // Reading our own pending write needs no validation.
            ops.push_back(TxOp::load(w));
            return it->second;
        }
        const std::uint64_t v = mem.read(w);
        ops.push_back(TxOp::loadExpect(w, v));
        return v;
    }

    /** Transactional write of @p value to the word at @p addr. */
    void
    store(Addr addr, std::uint64_t value)
    {
        const Addr w = GlobalStore::wordAlign(addr);
        localWrites[w] = value;
        ops.push_back(TxOp::store(w, value));
    }

    /** Model @p cycles of computation inside the transaction. */
    void
    compute(std::uint32_t cycles)
    {
        if (cycles > 0)
            ops.push_back(TxOp::compute(cycles));
    }

  private:
    friend class TxProgramSource;

    explicit TxContext(const GlobalStore &m) : mem(m) {}

    const GlobalStore &mem;
    FlatMap<Addr, std::uint64_t> localWrites;
    std::vector<TxOp> ops;
};

/**
 * A TransactionSource fed by atomic closures. Bodies are executed
 * lazily (at dispatch and on every rollback) against the current
 * committed state.
 */
class TxProgramSource : public TransactionSource
{
  public:
    using Body = std::function<void(TxContext &)>;

    explicit TxProgramSource(const GlobalStore &mem) : memory(mem) {}

    /** Enqueue one atomic region. */
    TxProgramSource &
    atomic(Body body, bool barrier_before = false)
    {
        queue.push_back(Entry{std::move(body), barrier_before});
        return *this;
    }

    std::optional<Transaction>
    nextTransaction() override
    {
        if (queue.empty()) {
            current = nullptr;
            return std::nullopt;
        }
        Entry &e = queue.front();
        current = &e;
        Transaction txn;
        txn.barrierBefore = e.barrierBefore;
        txn.ops = runBody(e.body);
        return txn;
    }

    std::optional<std::vector<TxOp>>
    regenerateOps() override
    {
        if (!current)
            return std::nullopt;
        ++regenerations;
        return runBody(current->body);
    }

    void
    transactionCommitted() override
    {
        ++commits;
        current = nullptr;
        if (!queue.empty())
            queue.pop_front();
    }

    void transactionViolated() override { ++violations; }

    std::uint64_t committed() const { return commits; }
    std::uint64_t violated() const { return violations; }
    std::uint64_t regenerated() const { return regenerations; }

  private:
    struct Entry {
        Body body;
        bool barrierBefore;
    };

    std::vector<TxOp>
    runBody(const Body &body)
    {
        TxContext ctx(memory);
        body(ctx);
        return std::move(ctx.ops);
    }

    const GlobalStore &memory;
    std::deque<Entry> queue;
    Entry *current = nullptr;
    std::uint64_t commits = 0;
    std::uint64_t violations = 0;
    std::uint64_t regenerations = 0;
};

} // namespace tcc

#endif // TCC_WORKLOAD_TX_PROGRAM_HH
