/**
 * @file
 * The workload interface: a TransactionSource feeds one processor a
 * stream of transactions. Each transaction is a replayable list of
 * abstract operations; on a violation the processor re-executes the
 * same list (lazy TM semantics: the transaction restarts from its
 * checkpoint and re-observes the now-newer committed state).
 *
 * The operation vocabulary is deliberately tiny but expressive enough
 * for read-modify-write workloads (so the serializability checker has
 * real data dependences to verify):
 *
 *   Compute n        burn n cycles (CPI=1 instructions)
 *   Load a           read word a; remembers the value ("last loaded")
 *   Store a, v       speculatively write immediate v to word a
 *   StoreAdd a, d    speculatively write (lastLoaded + d) to word a
 */

#ifndef TCC_WORKLOAD_TRANSACTION_SOURCE_HH
#define TCC_WORKLOAD_TRANSACTION_SOURCE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace tcc {

/** One abstract operation inside a transaction. */
struct TxOp {
    enum class Kind : std::uint8_t { Compute, Load, Store, StoreAdd };

    Kind kind = Kind::Compute;
    /** Compute: cycle count. */
    std::uint32_t cycles = 0;
    /** Load/Store/StoreAdd: word address. */
    Addr addr = 0;
    /** Store: immediate value; StoreAdd: delta added to lastLoaded. */
    std::uint64_t value = 0;
    /**
     * Load: when set, the load's observed value must equal @ref value;
     * a mismatch rolls the transaction back so its source can
     * regenerate the operation stream against the newer state. Used by
     * TxProgramSource (closure-based transactions whose control flow
     * depends on loaded values).
     */
    bool validateValue = false;

    static TxOp
    compute(std::uint32_t n)
    {
        TxOp op;
        op.kind = Kind::Compute;
        op.cycles = n;
        return op;
    }

    static TxOp
    load(Addr a)
    {
        TxOp op;
        op.kind = Kind::Load;
        op.addr = a;
        return op;
    }

    /** Load that self-violates unless it observes @p expect. */
    static TxOp
    loadExpect(Addr a, std::uint64_t expect)
    {
        TxOp op;
        op.kind = Kind::Load;
        op.addr = a;
        op.value = expect;
        op.validateValue = true;
        return op;
    }

    static TxOp
    store(Addr a, std::uint64_t v)
    {
        TxOp op;
        op.kind = Kind::Store;
        op.addr = a;
        op.value = v;
        return op;
    }

    static TxOp
    storeAdd(Addr a, std::uint64_t delta)
    {
        TxOp op;
        op.kind = Kind::StoreAdd;
        op.addr = a;
        op.value = delta;
        return op;
    }
};

/** A replayable transaction. */
struct Transaction {
    std::vector<TxOp> ops;
    /** Wait at the phase barrier before starting this transaction. */
    bool barrierBefore = false;
};

/**
 * Per-processor transaction stream. Implementations must be
 * deterministic: the processor may request each transaction exactly
 * once and replays the returned op list on every violation.
 */
class TransactionSource
{
  public:
    virtual ~TransactionSource() = default;

    /** Next transaction, or std::nullopt when this thread is done. */
    virtual std::optional<Transaction> nextTransaction() = 0;

    /** Notification that the last transaction committed. */
    virtual void transactionCommitted() {}

    /** Notification that the current transaction violated (will rerun). */
    virtual void transactionViolated() {}

    /**
     * Called by the processor before re-running a violated
     * transaction. Sources whose operation streams depend on loaded
     * values (TxProgramSource) return a fresh op list generated
     * against the current committed state; plain sources return
     * std::nullopt and the processor replays the original list.
     */
    virtual std::optional<std::vector<TxOp>> regenerateOps()
    {
        return std::nullopt;
    }
};

} // namespace tcc

#endif // TCC_WORKLOAD_TRANSACTION_SOURCE_HH
