#include "workload/trace_source.hh"

#include <cstdint>
#include <sstream>

namespace tcc {

namespace {

bool
fail(std::string *error, std::size_t line_no, const std::string &what)
{
    if (error) {
        *error = "trace line " + std::to_string(line_no) + ": " + what;
    }
    return false;
}

} // namespace

bool
TraceSource::parse(std::istream &in, std::string *error)
{
    transactions.clear();
    next = 0;

    std::string raw;
    std::size_t line_no = 0;
    bool in_txn = false;

    while (std::getline(in, raw)) {
        ++line_no;
        // Strip comments and surrounding whitespace.
        const auto hash = raw.find('#');
        if (hash != std::string::npos)
            raw.resize(hash);
        std::istringstream ls(raw);
        std::string op;
        if (!(ls >> op))
            continue; // blank line

        if (op == "txn") {
            Transaction t;
            std::string flag;
            if (ls >> flag) {
                if (flag != "barrier")
                    return fail(error, line_no,
                                "expected 'barrier', got '" + flag +
                                    "'");
                t.barrierBefore = true;
            }
            transactions.push_back(std::move(t));
            in_txn = true;
            continue;
        }
        if (!in_txn)
            return fail(error, line_no, "directive before first 'txn'");

        auto &ops = transactions.back().ops;
        if (op == "c") {
            std::uint64_t n;
            if (!(ls >> n) || n == 0)
                return fail(error, line_no, "bad compute count");
            ops.push_back(TxOp::compute(
                static_cast<std::uint32_t>(n)));
        } else if (op == "l") {
            Addr a;
            if (!(ls >> std::hex >> a))
                return fail(error, line_no, "bad load address");
            ops.push_back(TxOp::load(a));
        } else if (op == "s") {
            Addr a;
            std::uint64_t v;
            if (!(ls >> std::hex >> a >> std::dec >> v))
                return fail(error, line_no, "bad store");
            ops.push_back(TxOp::store(a, v));
        } else if (op == "a") {
            Addr a;
            std::uint64_t d;
            if (!(ls >> std::hex >> a >> std::dec >> d))
                return fail(error, line_no, "bad add-store");
            ops.push_back(TxOp::storeAdd(a, d));
        } else {
            return fail(error, line_no,
                        "unknown directive '" + op + "'");
        }
    }
    return true;
}

bool
TraceSource::parseString(const std::string &text, std::string *error)
{
    std::istringstream in(text);
    return parse(in, error);
}

std::optional<Transaction>
TraceSource::nextTransaction()
{
    if (next >= transactions.size())
        return std::nullopt;
    return transactions[next++];
}

} // namespace tcc
