/**
 * @file
 * The workload registry: every workload - the paper's Table-3
 * synthetic apps and the data-structure engine's map/set/queue/bank
 * streams - is constructed uniformly by name:
 *
 *   WorkloadBundle b = makeWorkload("ds_map", params, seed, procs);
 *   b.attach(sys);            // or b.attach(bus) for the baseline
 *   RunResult res = sys.run();
 *
 * A bundle is self-contained and detached: per-processor
 * TransactionSources, the memory/page layout (home bindings), initial
 * memory words, and expected-footprint metadata. attach() binds the
 * layout and sources into a System (or a BusTcc baseline, which has
 * no page homing); the bundle must outlive the run.
 *
 * Parameters are uniform key=value string overrides applied on top of
 * the named workload's defaults (e.g. {"theta","0.99"},
 * {"mix","write_heavy"}, {"txns_per_phase","64"}), so CLI flags and
 * bench sweeps need no per-workload structs. Unknown keys are fatal.
 *
 * The legacy construction path - appProfile() + setupApp() in
 * workload/synthetic_app.hh - remains as a thin compatibility layer
 * for one release; new code selects workloads by name through here.
 */

#ifndef TCC_WORKLOAD_REGISTRY_HH
#define TCC_WORKLOAD_REGISTRY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "workload/datastruct.hh"
#include "workload/transaction_source.hh"

namespace tcc {

class System;
class BusTcc;

/** Ordered key=value overrides on a workload's default knobs. */
struct WorkloadParams {
    std::vector<std::pair<std::string, std::string>> overrides;

    WorkloadParams &
    set(std::string key, std::string value)
    {
        overrides.emplace_back(std::move(key), std::move(value));
        return *this;
    }

    /** Parse "key=val,key=val" (empty string -> no overrides;
     *  fatal on malformed pairs). */
    static WorkloadParams parse(const std::string &list);
};

/** One contiguous memory region of a workload's layout. */
struct MemRegion {
    std::string label;
    Addr base = 0;
    std::uint64_t bytes = 0;
    /** Home node (ignored when pageRoundRobin). */
    NodeId home = 0;
    /** Bind pages round-robin across all nodes instead. */
    bool pageRoundRobin = false;
};

/** Expected-footprint metadata of a constructed workload. */
struct WorkloadFootprint {
    std::vector<MemRegion> regions;
    /** Committed transactions the run should retire. */
    std::uint64_t expectedTxns = 0;
    /** Logical data-structure ops (0 for synthetic apps). */
    std::uint64_t expectedOps = 0;
    /** Total words across all regions. */
    std::uint64_t dataWords = 0;
};

/** A constructed workload, detached from any machine. */
class WorkloadBundle
{
  public:
    std::string name;
    WorkloadFootprint footprint;
    /** Non-transactional initial memory image. */
    std::vector<std::pair<Addr, std::uint64_t>> initialWords;
    /** One source per processor. */
    std::vector<std::unique_ptr<TransactionSource>> sources;

    /** Bind regions/pages, write initial words, attach sources. */
    void attach(System &sys) const;
    /** Baseline variant: no page homing (single shared bus). */
    void attach(BusTcc &bus) const;

    /** Committed logical ops across all sources (0 for synthetic). */
    std::uint64_t committedOps() const;
    /** Per-phase commit/abort tallies summed across sources (empty
     *  for synthetic apps). */
    std::vector<PhaseTally> phaseTallies() const;
    /** Word address -> key index, or -1 (synthetic apps, control
     *  words). Bench hot-word attribution. */
    std::int64_t keyOf(Addr addr) const;
    /** The data-structure layout, or null for synthetic apps. */
    const DsLayout *layout() const { return dsLayout.get(); }

  private:
    friend WorkloadBundle makeWorkload(const std::string &,
                                       const WorkloadParams &,
                                       std::uint64_t, std::uint32_t);
    static WorkloadBundle makeDs(const std::string &name,
                                 const DataStructParams &prm,
                                 std::uint64_t seed,
                                 std::uint32_t numProcs);
    std::shared_ptr<const DsLayout> dsLayout;
    std::vector<DataStructSource *> dsSources;
};

/** Registry entry metadata. */
struct WorkloadInfo {
    std::string name;
    /** "table3" (synthetic app) or "datastruct". */
    std::string kind;
    std::string description;
};

/** Every registered workload, Table-3 apps first (paper order). */
const std::vector<WorkloadInfo> &workloadInfos();

/** All registered names, in workloadInfos() order. */
std::vector<std::string> workloadNames();

/** Whether @p name is registered. */
bool isWorkload(const std::string &name);

/**
 * Construct workload @p name for @p numProcs processors with
 * @p params overrides applied to its defaults (fatal on unknown
 * name or key). Deterministic in (name, params, seed, numProcs).
 */
WorkloadBundle makeWorkload(const std::string &name,
                            const WorkloadParams &params,
                            std::uint64_t seed,
                            std::uint32_t numProcs);

} // namespace tcc

#endif // TCC_WORKLOAD_REGISTRY_HH
