/**
 * @file
 * Transactional data-structure workload engine.
 *
 * The Table-3 synthetic apps (workload/synthetic_app.hh) reproduce the
 * paper's scientific kernels: uniform-ish footprints, partitioned
 * sharing, barrier phases. This engine generates the other regime -
 * the skewed, hot-key traffic shapes of transactional services - which
 * is where optimistic schemes like lazy TCC either shine or collapse:
 *
 *   - keys drawn uniformly or Zipfian (workload/keydist.hh), with the
 *     rank->key mapping optionally scrambled by a seeded permutation
 *     so hot keys scatter across the key array (and therefore across
 *     home directories) instead of clustering on one page;
 *   - map / set / queue operation mixes (lookup / insert / erase /
 *     range-scan) over keyed word arrays with deterministic page
 *     homing (key pages round-robin across nodes);
 *   - a bank-transfer macrobench (read-modify-write pairs that
 *     conserve the total balance - an end-to-end correctness gate);
 *   - phased schedules: each phase has its own skew, mix, and
 *     optional flash-crowd override (a cold key becomes hot at the
 *     phase flip), separated by exact barrier boundaries.
 *
 * All streams are replayable static op lists (addresses never depend
 * on loaded values), so the lazy-TM replay contract holds. The queue
 * is modeled as hot head/tail counter RMWs plus slot traffic at
 * deterministically generated indices: the protocol observes the same
 * contention structure as a real ring buffer without value-dependent
 * addressing.
 *
 * Sources also count *logical operations* and per-phase commit/abort
 * tallies, so benches can report goodput (committed ops/cycle, the
 * headline metric: raw commit throughput counts aborted work, and
 * cycles alone hide that a skewed run commits mostly cheap retries)
 * and flash-crowd abort-rate flips.
 */

#ifndef TCC_WORKLOAD_DATASTRUCT_HH
#define TCC_WORKLOAD_DATASTRUCT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/random.hh"
#include "workload/keydist.hh"
#include "workload/transaction_source.hh"

namespace tcc {

/** Which transactional data structure the stream exercises. */
enum class DsStructure : std::uint8_t { Map, Set, Queue, Bank };

const char *dsStructureName(DsStructure s);

/**
 * Operation mix, as fractions summing to <= 1 (remainder goes to
 * lookup). Interpretation per structure:
 *   Map/Set : lookup / insert / erase / range-scan
 *   Queue   : insert = enqueue, erase = dequeue, lookup = peek,
 *             scan = head-tail occupancy check
 *   Bank    : insert and erase = transfer (two-account RMW),
 *             lookup and scan = audit (read scanLen accounts)
 */
struct DsMix {
    std::string name = "read_mostly";
    double lookup = 0.90;
    double insert = 0.05;
    double erase = 0.03;
    double scan = 0.02;
};

/** Look up a mix preset: read_mostly, mixed, write_heavy,
 *  update_only (fatal if unknown). */
const DsMix &dsMixPreset(const std::string &name);

/** One barrier-separated schedule phase. */
struct DsPhase {
    /** Transactions in this phase, totalled across all processors
     *  (fixed work, divided like the synthetic apps). */
    std::uint32_t txns = 4096;
    /** Zipfian exponent in [0, 1); 0 = uniform. */
    double theta = 0.0;
    DsMix mix;
    /** Flash crowd: when >= 0, each key draw is redirected to this
     *  key with probability flashFrac (the cold key turns hot). */
    std::int64_t flashKey = -1;
    double flashFrac = 0.0;
};

/** Full parameterization of one data-structure workload. */
struct DataStructParams {
    DsStructure structure = DsStructure::Map;
    /** Keys (Map/Set), slots (Queue), or accounts (Bank). */
    std::uint32_t numKeys = 8192;
    /** Logical data-structure operations per transaction. */
    std::uint32_t opsPerTxn = 8;
    /** Keys touched by one range-scan / audit. */
    std::uint32_t scanLen = 16;
    /** Compute cycles preceding each operation (think: hashing,
     *  comparison, marshalling). */
    std::uint32_t computePerOp = 40;
    /** Scatter Zipfian ranks over the key space with a seeded
     *  permutation (hot keys land on distinct pages/directories). */
    bool scrambleKeys = true;
    /** Starting balance per account (Bank). */
    std::uint64_t initialBalance = 1000;
    std::vector<DsPhase> phases{DsPhase{}};
};

/**
 * Key -> address mapping and the seeded rank permutation, shared by
 * all processors of one workload instance. Word addresses:
 *
 *   keyAddr(k) = kvBase() + k * strideWords * 4
 *     Map: stride 2 (header word + value word); Set/Queue/Bank:
 *     stride 1 (membership / slot / balance word).
 *   ctrlBase(): queue head (+0) and tail (+4) counters - the global
 *     hot spot of the queue workload.
 *
 * Pages of the key array are bound round-robin across nodes by
 * WorkloadBundle::attach, so key residency is deterministic and every
 * directory serves a slice of the key space.
 */
class DsLayout
{
  public:
    DsLayout(const DataStructParams &params, std::uint64_t seed);

    static Addr kvBase() { return 0x2'0000'0000ull; }
    static Addr ctrlBase() { return 0x3'0000'0000ull; }

    std::uint32_t strideWords() const { return stride; }
    std::uint32_t numKeys() const { return keys; }

    Addr
    keyAddr(std::uint32_t key) const
    {
        return kvBase() +
               static_cast<Addr>(key) * stride * 4;
    }

    /** Map a word address back to its key, or -1 if outside the
     *  key array (bench hot-word attribution). */
    std::int64_t
    keyOf(Addr addr) const
    {
        const Addr lo = kvBase();
        const Addr hi =
            lo + static_cast<Addr>(keys) * stride * 4;
        if (addr < lo || addr >= hi)
            return -1;
        return static_cast<std::int64_t>((addr - lo) / (stride * 4));
    }

    /** Seeded bijection rank -> key (identity when scrambling is
     *  off): rank 0 is the hottest key under Zipfian draws. */
    std::uint32_t
    keyForRank(std::uint32_t rank) const
    {
        return perm.empty() ? rank : perm[rank];
    }

  private:
    std::uint32_t keys;
    std::uint32_t stride;
    std::vector<std::uint32_t> perm;
};

/** Per-phase commit/abort tally (flash-crowd gate input). */
struct PhaseTally {
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
};

/**
 * The transaction stream of one processor running one data-structure
 * workload. Deterministic in (params, layout seed, seed, proc,
 * numProcs); fixed total work divided among processors, with a
 * barrier exactly at each phase boundary.
 */
class DataStructSource : public TransactionSource
{
  public:
    DataStructSource(const DataStructParams &params,
                     std::shared_ptr<const DsLayout> layout,
                     std::uint64_t seed, NodeId proc,
                     std::uint32_t num_procs);

    std::optional<Transaction> nextTransaction() override;
    void transactionCommitted() override;
    void transactionViolated() override;

    /** Logical data-structure ops inside committed transactions
     *  (goodput numerator). */
    std::uint64_t committedOps() const { return committedOps_; }
    /** Commit/abort counts per schedule phase. */
    const std::vector<PhaseTally> &phaseTallies() const
    {
        return tallies;
    }
    std::uint64_t generated() const { return txnsGenerated; }

  private:
    std::uint32_t drawKey(const DsPhase &ph);
    void emitOp(std::vector<TxOp> &ops, const DsPhase &ph);
    void emitMapSetOp(std::vector<TxOp> &ops, const DsPhase &ph);
    void emitQueueOp(std::vector<TxOp> &ops, const DsPhase &ph);
    void emitBankOp(std::vector<TxOp> &ops, const DsPhase &ph);

    DataStructParams prm;
    std::shared_ptr<const DsLayout> lay;
    Rng rng;
    NodeId nodeId;
    std::uint32_t numProcs;

    std::vector<std::uint32_t> myTxns; ///< my share, per phase
    std::vector<KeyDist> dists;        ///< per-phase rank generators
    std::uint32_t phaseIdx = 0;
    std::uint32_t txnInPhase = 0;
    std::uint32_t lastPhase = 0;   ///< phase of the txn in flight
    std::uint32_t lastOps = 0;     ///< its logical op count
    std::uint64_t txnsGenerated = 0;
    std::uint64_t committedOps_ = 0;
    std::vector<PhaseTally> tallies;

    std::uint64_t enqCount = 0; ///< queue slot cursors
    std::uint64_t deqCount = 0;
};

} // namespace tcc

#endif // TCC_WORKLOAD_DATASTRUCT_HH
