/**
 * @file
 * Trace-driven transaction source: replays transactions from a simple
 * text format, so users can drive the simulator with traces captured
 * elsewhere (e.g., from an instrumented application) without writing
 * C++.
 *
 * Format (one directive per line; '#' starts a comment):
 *
 *   txn [barrier]      start a new transaction (optionally preceded
 *                      by a phase barrier)
 *   c <cycles>         compute
 *   l <hex-addr>       load
 *   s <hex-addr> <val> store immediate
 *   a <hex-addr> <delta> store (last loaded + delta)
 *
 * Example:
 *   txn
 *   c 120
 *   l 0x1000
 *   a 0x1000 1
 *   txn barrier
 *   s 0x2000 42
 */

#ifndef TCC_WORKLOAD_TRACE_SOURCE_HH
#define TCC_WORKLOAD_TRACE_SOURCE_HH

#include <istream>
#include <string>
#include <vector>

#include "workload/transaction_source.hh"

namespace tcc {

/** Parses and replays the text trace format. */
class TraceSource : public TransactionSource
{
  public:
    /**
     * Parse a trace from @p in.
     * @param error receives a description on parse failure.
     * @return true on success.
     */
    bool parse(std::istream &in, std::string *error = nullptr);

    /** Convenience: parse from a string (tests). */
    bool parseString(const std::string &text,
                     std::string *error = nullptr);

    std::optional<Transaction> nextTransaction() override;

    std::size_t numTransactions() const { return transactions.size(); }

  private:
    std::vector<Transaction> transactions;
    std::size_t next = 0;
};

} // namespace tcc

#endif // TCC_WORKLOAD_TRACE_SOURCE_HH
