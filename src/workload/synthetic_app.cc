#include "workload/synthetic_app.hh"

#include <algorithm>

#include "common/log.hh"

namespace tcc {

namespace {

/** Build the eleven Table 3 application profiles. The numeric targets
 *  are reconstructions calibrated to the published 90th-percentile
 *  characteristics and the qualitative behaviour of Section 4.2 (see
 *  EXPERIMENTS.md for the paper-vs-measured comparison). */
std::vector<AppProfile>
buildProfiles()
{
    std::vector<AppProfile> apps;

    {
        // barnes: N-body octree; mid-size transactions, moderate
        // sharing, scales well.
        AppProfile a;
        a.name = "barnes";
        a.instrMedian = 3200;
        a.instrSigma = 0.6;
        a.readWords = 280;
        a.writeWords = 56;
        a.sharedReadFrac = 0.18;
        a.sharedWriteFrac = 0.35;
        a.writeSpreadDirs = 2;
        a.conflictProb = 0.02;
        a.phases = 4;
        a.txnsPerPhase = 640;
        apps.push_back(a);
    }
    {
        // Cluster GA (CEARCH): genetics algorithm; clustered conflicts
        // that hurt at low processor counts.
        AppProfile a;
        a.name = "cluster_ga";
        a.instrMedian = 4200;
        a.instrSigma = 0.5;
        a.readWords = 150;
        a.writeWords = 40;
        a.sharedReadFrac = 0.40;
        a.sharedWriteFrac = 0.50;
        a.writeSpreadDirs = 2;
        a.conflictProb = 0.12;
        a.hotWords = 48;
        a.phases = 4;
        a.txnsPerPhase = 512;
        apps.push_back(a);
    }
    {
        // equake: small transactions (limited parallelism, heavy
        // communication); commit overhead shows at high counts.
        AppProfile a;
        a.name = "equake";
        a.instrMedian = 1100;
        a.instrSigma = 0.4;
        a.readWords = 90;
        a.writeWords = 36;
        a.sharedReadFrac = 0.50;
        a.sharedWriteFrac = 0.50;
        a.writeSpreadDirs = 2;
        a.conflictProb = 0.02;
        a.phases = 6;
        a.txnsPerPhase = 2048;
        apps.push_back(a);
    }
    {
        // radix: large transactions whose writes scatter across every
        // directory (histogram permutation), still scales.
        AppProfile a;
        a.name = "radix";
        a.instrMedian = 30000;
        a.instrSigma = 0.3;
        a.readWords = 600;
        a.writeWords = 560;
        a.sharedReadFrac = 0.12;
        a.sharedWriteFrac = 0.75;
        a.writeSpreadDirs = 0; // all directories
        a.conflictProb = 0.004;
        a.phases = 4;
        a.txnsPerPhase = 256;
        apps.push_back(a);
    }
    {
        // SPECjbb2000: warehouse-local transactions, highest ops per
        // written word, near-linear scaling.
        AppProfile a;
        a.name = "specjbb";
        a.instrMedian = 5200;
        a.instrSigma = 0.4;
        a.readWords = 110;
        a.writeWords = 22;
        a.sharedReadFrac = 0.04;
        a.sharedWriteFrac = 0.15;
        a.writeSpreadDirs = 1;
        a.conflictProb = 0.004;
        a.phases = 2;
        a.txnsPerPhase = 768;
        apps.push_back(a);
    }
    {
        // SVM Classify (CEARCH): large read-mostly transactions,
        // the best-scaling application.
        AppProfile a;
        a.name = "svm_classify";
        a.instrMedian = 36000;
        a.instrSigma = 0.3;
        a.readWords = 750;
        a.writeWords = 80;
        a.sharedReadFrac = 0.10;
        a.sharedWriteFrac = 0.15;
        a.writeSpreadDirs = 1;
        a.conflictProb = 0.002;
        a.phases = 2;
        a.txnsPerPhase = 256;
        apps.push_back(a);
    }
    {
        // swim: stencil with big local write sets, almost no remote
        // communication.
        AppProfile a;
        a.name = "swim";
        a.instrMedian = 42000;
        a.instrSigma = 0.25;
        a.readWords = 850;
        a.writeWords = 320;
        a.sharedReadFrac = 0.04;
        a.sharedWriteFrac = 0.10;
        a.writeSpreadDirs = 1;
        a.conflictProb = 0.0;
        a.phases = 3;
        a.txnsPerPhase = 192;
        apps.push_back(a);
    }
    {
        // tomcatv: mesh generation; like swim with somewhat smaller
        // transactions.
        AppProfile a;
        a.name = "tomcatv";
        a.instrMedian = 19000;
        a.instrSigma = 0.3;
        a.readWords = 550;
        a.writeWords = 230;
        a.sharedReadFrac = 0.07;
        a.sharedWriteFrac = 0.12;
        a.writeSpreadDirs = 1;
        a.conflictProb = 0.0;
        a.phases = 3;
        a.txnsPerPhase = 256;
        apps.push_back(a);
    }
    {
        // volrend: tiny transactions communicating flag variables;
        // lowest ops/word, commit-time limited.
        AppProfile a;
        a.name = "volrend";
        a.instrMedian = 900;
        a.instrSigma = 0.5;
        a.readWords = 70;
        a.writeWords = 90;
        a.sharedReadFrac = 0.50;
        a.sharedWriteFrac = 0.60;
        a.writeSpreadDirs = 2;
        a.conflictProb = 0.05;
        a.hotWords = 64;
        a.phases = 6;
        a.txnsPerPhase = 1536;
        apps.push_back(a);
    }
    {
        // water-nsquared: all-pairs interactions, more communication
        // and synchronization than water-spatial.
        AppProfile a;
        a.name = "water_nsquared";
        a.instrMedian = 2100;
        a.instrSigma = 0.4;
        a.readWords = 130;
        a.writeWords = 32;
        a.sharedReadFrac = 0.40;
        a.sharedWriteFrac = 0.45;
        a.writeSpreadDirs = 2;
        a.conflictProb = 0.04;
        a.phases = 6;
        a.txnsPerPhase = 768;
        apps.push_back(a);
    }
    {
        // water-spatial: spatial decomposition; larger transactions,
        // inherently less communication, scales better.
        AppProfile a;
        a.name = "water_spatial";
        a.instrMedian = 5400;
        a.instrSigma = 0.4;
        a.readWords = 170;
        a.writeWords = 36;
        a.sharedReadFrac = 0.12;
        a.sharedWriteFrac = 0.25;
        a.writeSpreadDirs = 1;
        a.conflictProb = 0.012;
        a.phases = 4;
        a.txnsPerPhase = 640;
        apps.push_back(a);
    }
    return apps;
}

} // namespace

const std::vector<AppProfile> &
appProfiles()
{
    static const std::vector<AppProfile> apps = buildProfiles();
    return apps;
}

const AppProfile &
appProfile(const std::string &name)
{
    for (const auto &a : appProfiles())
        if (a.name == name)
            return a;
    fatal("unknown application profile '%s'", name.c_str());
}

// ---------------------------------------------------------------------
// Address layout (byte addresses; regions are page-bound in setupApp)
// ---------------------------------------------------------------------

Addr
SyntheticSource::privateBase(NodeId proc)
{
    return 0x1'0000'0000ull + static_cast<Addr>(proc) * 0x0100'0000ull;
}

Addr
SyntheticSource::sharedBase(NodeId proc)
{
    return 0x8'0000'0000ull + static_cast<Addr>(proc) * 0x0100'0000ull;
}

Addr
SyntheticSource::hotBase()
{
    return 0xF'0000'0000ull;
}

// ---------------------------------------------------------------------
// SyntheticSource
// ---------------------------------------------------------------------

SyntheticSource::SyntheticSource(const AppProfile &profile,
                                 std::uint64_t seed, NodeId proc,
                                 std::uint32_t num_procs)
    : prof(profile),
      rng(seed * 0x9e3779b97f4a7c15ull + proc + 1),
      nodeId(proc), numProcs(num_procs)
{
    const std::uint32_t base = prof.txnsPerPhase / num_procs;
    const std::uint32_t extra =
        proc < (prof.txnsPerPhase % num_procs) ? 1 : 0;
    myTxnsPerPhase = std::max<std::uint32_t>(base + extra, 0);
}

void
SyntheticSource::emitReadRun(std::vector<TxOp> &ops, Addr base,
                             std::uint32_t pool_words,
                             std::uint32_t words)
{
    if (pool_words <= words)
        return;
    const std::uint64_t start = rng.below(pool_words - words);
    for (std::uint32_t i = 0; i < words; ++i)
        ops.push_back(TxOp::load(base + (start + i) * 4));
}

void
SyntheticSource::emitWriteRun(std::vector<TxOp> &ops, Addr base,
                              std::uint32_t pool_words,
                              std::uint32_t words)
{
    if (pool_words <= words)
        return;
    const std::uint64_t start = rng.below(pool_words - words);
    for (std::uint32_t i = 0; i < words; ++i)
        ops.push_back(TxOp::store(base + (start + i) * 4, rng.next()));
}

std::optional<Transaction>
SyntheticSource::nextTransaction()
{
    if (phase >= prof.phases)
        return std::nullopt;

    Transaction txn;
    txn.barrierBefore = (txnInPhase == 0 && phase > 0);

    // --- draw the transaction shape ---------------------------------
    const double raw =
        rng.logNormal(prof.instrMedian, prof.instrSigma);
    const auto instr = static_cast<std::uint64_t>(
        std::clamp(raw, 30.0, 400000.0));
    const auto jitter = [&](std::uint32_t mean) {
        const double v = rng.logNormal(mean, 0.25);
        return static_cast<std::uint32_t>(
            std::clamp(v, 1.0, 4.0 * mean));
    };
    const std::uint32_t reads = jitter(prof.readWords);
    const std::uint32_t writes = jitter(prof.writeWords);
    const std::uint32_t run = std::max<std::uint32_t>(1, prof.runLength);

    const std::uint32_t read_runs = (reads + run - 1) / run;
    const std::uint32_t write_runs = (writes + run - 1) / run;
    const std::uint32_t total_runs = read_runs + write_runs;
    const std::uint64_t mem_ops = reads + writes;
    const std::uint64_t compute_budget =
        instr > mem_ops ? instr - mem_ops : 0;
    const std::uint32_t chunk = static_cast<std::uint32_t>(
        compute_budget / (total_runs + 1));

    // --- choose this transaction's write-spread slice set ------------
    std::vector<NodeId> write_slices;
    std::uint32_t spread = prof.writeSpreadDirs == 0
                               ? numProcs
                               : std::min(prof.writeSpreadDirs,
                                          numProcs);
    write_slices.push_back(nodeId);
    for (std::uint32_t i = 1; i < spread; ++i)
        write_slices.push_back(
            static_cast<NodeId>((nodeId + 1 + rng.below(numProcs)) %
                                numProcs));

    // --- interleave compute chunks with read/write runs --------------
    std::uint32_t reads_left = reads;
    std::uint32_t writes_left = writes;
    std::uint32_t w_slice_idx = 0;
    std::uint64_t compute_emitted = 0;
    while (reads_left > 0 || writes_left > 0) {
        if (chunk > 0 && compute_emitted + chunk <= compute_budget) {
            txn.ops.push_back(TxOp::compute(chunk));
            compute_emitted += chunk;
        }
        // Reads first (typical gather-compute-scatter structure), but
        // interleave so both kinds appear throughout.
        const bool do_read =
            reads_left > 0 &&
            (writes_left == 0 ||
             rng.uniform() <
                 static_cast<double>(reads_left) /
                     static_cast<double>(reads_left + writes_left));
        if (do_read) {
            const std::uint32_t n =
                std::min(run, reads_left);
            if (rng.chance(prof.sharedReadFrac)) {
                // Producer-consumer: read a shifting neighbour's
                // shared slice.
                const NodeId owner = static_cast<NodeId>(
                    (nodeId + 1 + phase + rng.below(numProcs)) %
                    numProcs);
                emitReadRun(txn.ops, sharedBase(owner),
                            prof.sharedWords, n);
            } else if (rng.chance(prof.privateReuse)) {
                emitReadRun(txn.ops, privateBase(nodeId),
                            prof.privateWindow, n);
            } else {
                emitReadRun(txn.ops, privateBase(nodeId),
                            prof.privateWords, n);
            }
            reads_left -= n;
        } else {
            const std::uint32_t n = std::min(run, writes_left);
            if (rng.chance(prof.sharedWriteFrac)) {
                const NodeId slice =
                    write_slices[w_slice_idx++ % write_slices.size()];
                emitWriteRun(txn.ops, sharedBase(slice),
                             prof.sharedWords, n);
            } else if (rng.chance(prof.privateReuse)) {
                emitWriteRun(txn.ops, privateBase(nodeId),
                             prof.privateWindow, n);
            } else {
                emitWriteRun(txn.ops, privateBase(nodeId),
                             prof.privateWords, n);
            }
            writes_left -= n;
        }
    }

    // Contended read-modify-write (reduction variable / flag / lock
    // word equivalent).
    if (prof.hotWords > 0 && rng.chance(prof.conflictProb)) {
        const Addr hot = hotBase() + rng.below(prof.hotWords) * 4;
        txn.ops.push_back(TxOp::load(hot));
        txn.ops.push_back(TxOp::storeAdd(hot, 1));
    }

    if (compute_budget > compute_emitted) {
        txn.ops.push_back(TxOp::compute(static_cast<std::uint32_t>(
            compute_budget - compute_emitted)));
    }

    ++txnsGenerated;
    ++txnInPhase;
    if (txnInPhase >= myTxnsPerPhase) {
        txnInPhase = 0;
        ++phase;
    }
    return txn;
}

// ---------------------------------------------------------------------
// System setup
// ---------------------------------------------------------------------

std::vector<std::unique_ptr<SyntheticSource>>
setupApp(System &sys, const AppProfile &profile, std::uint64_t seed)
{
    const std::uint32_t procs = sys.numProcs();

    // Region placement: private and shared slices live on their
    // owning node; the hot words round-robin across nodes.
    for (NodeId p = 0; p < procs; ++p) {
        sys.bindRegion(SyntheticSource::privateBase(p),
                       static_cast<std::uint64_t>(profile.privateWords) *
                           4,
                       p);
        sys.bindRegion(SyntheticSource::sharedBase(p),
                       static_cast<std::uint64_t>(profile.sharedWords) *
                           4,
                       p);
    }
    const std::uint32_t page = sys.cfg().pageBytes;
    const std::uint64_t hot_bytes =
        static_cast<std::uint64_t>(profile.hotWords) * 4;
    std::uint32_t hp = 0;
    for (Addr a = SyntheticSource::hotBase();
         a < SyntheticSource::hotBase() + hot_bytes; a += page)
        sys.bindRegion(a, page, hp++ % procs);

    std::vector<std::unique_ptr<SyntheticSource>> sources;
    sources.reserve(procs);
    for (NodeId p = 0; p < procs; ++p) {
        sources.push_back(std::make_unique<SyntheticSource>(
            profile, seed, p, procs));
        sys.setSource(p, sources.back().get());
    }
    return sources;
}

} // namespace tcc
