/**
 * @file
 * Synthetic application suite.
 *
 * The paper evaluates Scalable TCC with SPLASH-2 (barnes, radix,
 * volrend, water-nsquared, water-spatial), SPEC CPU2000 FP (equake,
 * swim, tomcatv), SPECjbb2000 on a JVM, and two CEARCH codes (Cluster
 * GA, SVM Classify). We do not have those binaries or an ISA
 * simulator, so each application is substituted by a *replayable
 * transaction-stream generator* calibrated to the per-application TM
 * characteristics the paper publishes in Table 3: transaction size in
 * instructions, read-/write-set sizes, operations per word written,
 * directories touched per commit, plus qualitative behaviour described
 * in Section 4.2 (communication pattern, conflict frequency, barrier
 * structure). The protocol observes an application only through this
 * footprint, so matching it exercises the same protocol paths.
 *
 * Memory layout (word addresses; pages explicitly bound so homing is
 * deterministic, modeling the paper's first-touch placement):
 *   - a private slice per processor (stack/local arrays),
 *   - a shared slice per processor (the partition of the shared data
 *     this processor owns and mostly writes),
 *   - a small hot region of contended words (locks/reductions/flags).
 */

#ifndef TCC_WORKLOAD_SYNTHETIC_APP_HH
#define TCC_WORKLOAD_SYNTHETIC_APP_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/system.hh"
#include "sim/random.hh"
#include "workload/transaction_source.hh"

namespace tcc {

/** Calibration knobs for one synthetic application. */
struct AppProfile {
    std::string name;

    // --- transaction shape (Table 3 columns) -------------------------
    /** Median transaction size in instructions (lognormal). */
    double instrMedian = 4000;
    /** Lognormal sigma for the size distribution. */
    double instrSigma = 0.5;
    /** Mean words read per transaction. */
    std::uint32_t readWords = 200;
    /** Mean words written per transaction. */
    std::uint32_t writeWords = 48;
    /** Spatial run length for reads/writes (words per contiguous
     *  burst; larger runs -> fewer lines per KB of set). */
    std::uint32_t runLength = 8;

    // --- sharing / communication --------------------------------------
    /** Fraction of reads that target other processors' shared slices
     *  (producer-consumer communication; drives remote misses). */
    double sharedReadFrac = 0.3;
    /** Fraction of writes that go to the shared slices (the rest hit
     *  the private slice). */
    double sharedWriteFrac = 0.5;
    /** Number of distinct home directories the shared writes of one
     *  transaction scatter across; 0 means "all nodes" (radix). */
    std::uint32_t writeSpreadDirs = 1;
    /** Probability a transaction does a read-modify-write on a hot
     *  contended word (violations). */
    double conflictProb = 0.02;
    /** Number of hot contended words. */
    std::uint32_t hotWords = 128;

    // --- structure ------------------------------------------------------
    /** Barrier-separated phases. */
    std::uint32_t phases = 4;
    /** Total transactions per phase across all processors (fixed work:
     *  speedup = T1 / Tp). */
    std::uint32_t txnsPerPhase = 512;

    // --- footprints -----------------------------------------------------
    /** Private-slice size per processor, in words. */
    std::uint32_t privateWords = 1u << 15;
    /** Shared-slice size per processor, in words. */
    std::uint32_t sharedWords = 1u << 13;
    /** Fraction of private accesses confined to a hot working window
     *  (cache reuse). */
    double privateReuse = 0.9;
    /** Hot working-window size in words. */
    std::uint32_t privateWindow = 1u << 11;
};

/** The eleven applications of the paper's Table 3. */
const std::vector<AppProfile> &appProfiles();

/** Look up a profile by name (fatal if unknown). */
const AppProfile &appProfile(const std::string &name);

/**
 * The transaction generator for one processor running one application.
 * Deterministic in (profile, seed, proc, numProcs); scaling runs keep
 * total work constant and divide transactions among processors.
 */
class SyntheticSource : public TransactionSource
{
  public:
    SyntheticSource(const AppProfile &profile, std::uint64_t seed,
                    NodeId proc, std::uint32_t num_procs);

    std::optional<Transaction> nextTransaction() override;

    /** Address-layout helpers shared with the setup code. */
    static Addr privateBase(NodeId proc);
    static Addr sharedBase(NodeId proc);
    static Addr hotBase();

    std::uint64_t generated() const { return txnsGenerated; }

  private:
    void emitReadRun(std::vector<TxOp> &ops, Addr base,
                     std::uint32_t pool_words, std::uint32_t words);
    void emitWriteRun(std::vector<TxOp> &ops, Addr base,
                      std::uint32_t pool_words, std::uint32_t words);

    AppProfile prof;
    Rng rng;
    NodeId nodeId;
    std::uint32_t numProcs;
    std::uint32_t myTxnsPerPhase;
    std::uint32_t phase = 0;
    std::uint32_t txnInPhase = 0;
    std::uint64_t txnsGenerated = 0;
};

/**
 * Bind the workload's memory regions to their home nodes and build one
 * SyntheticSource per processor, attached to the system.
 */
std::vector<std::unique_ptr<SyntheticSource>>
setupApp(System &sys, const AppProfile &profile, std::uint64_t seed);

} // namespace tcc

#endif // TCC_WORKLOAD_SYNTHETIC_APP_HH
