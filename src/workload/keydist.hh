/**
 * @file
 * Seeded key-distribution generators for the data-structure workload
 * engine (workload/datastruct.hh).
 *
 * KeyDist draws key *ranks* in [0, n): rank 0 is the hottest key,
 * rank 1 the next, and so on. Two families:
 *
 *   theta == 0   uniform over [0, n)
 *   theta  > 0   Zipfian with exponent theta, P(rank r) proportional
 *                to 1 / (r+1)^theta
 *
 * Zipfian sampling uses Gray's inversion method ("Quickly Generating
 * Billion-Record Synthetic Databases", SIGMOD'94; the same scheme YCSB
 * ships): the harmonic normalizer zeta(n, theta) is computed once in
 * O(n) at construction, after which each draw is O(1) and consumes
 * exactly one value from the caller's Rng - so streams are
 * deterministic per seed, and two generators with equal (n, theta)
 * fed equal Rngs produce identical rank sequences.
 */

#ifndef TCC_WORKLOAD_KEYDIST_HH
#define TCC_WORKLOAD_KEYDIST_HH

#include <cmath>
#include <cstdint>

#include "common/log.hh"
#include "sim/random.hh"

namespace tcc {

/** Rank generator: uniform (theta == 0) or Zipfian (theta > 0). */
class KeyDist
{
  public:
    KeyDist() = default;

    KeyDist(std::uint32_t n, double theta) : n_(n), theta_(theta)
    {
        if (n == 0)
            fatal("KeyDist: key-space size must be nonzero");
        if (theta < 0.0 || theta >= 1.0)
            fatal("KeyDist: exponent must be in [0, 1), got %f", theta);
        if (theta_ == 0.0)
            return;
        double zetan = 0.0;
        for (std::uint32_t i = 1; i <= n; ++i)
            zetan += 1.0 / std::pow(static_cast<double>(i), theta_);
        zetan_ = zetan;
        const double zeta2 =
            1.0 + 1.0 / std::pow(2.0, theta_);
        alpha_ = 1.0 / (1.0 - theta_);
        eta_ = (1.0 -
                std::pow(2.0 / static_cast<double>(n), 1.0 - theta_)) /
               (1.0 - zeta2 / zetan_);
        thr1_ = 1.0 / zetan_;
        thr2_ = (1.0 + std::pow(0.5, theta_)) / zetan_;
    }

    /** Draw one rank in [0, n); consumes one Rng value. */
    std::uint32_t
    next(Rng &rng) const
    {
        const double u = rng.uniform();
        if (theta_ == 0.0)
            return static_cast<std::uint32_t>(
                u * static_cast<double>(n_)) % n_;
        if (u < thr1_)
            return 0;
        if (u < thr2_)
            return 1;
        const double r =
            static_cast<double>(n_) *
            std::pow(eta_ * u - eta_ + 1.0, alpha_);
        auto rank = static_cast<std::uint32_t>(r);
        return rank >= n_ ? n_ - 1 : rank;
    }

    std::uint32_t size() const { return n_; }
    double theta() const { return theta_; }

    /** Exact probability mass of rank @p r under this distribution. */
    double
    mass(std::uint32_t r) const
    {
        if (theta_ == 0.0)
            return 1.0 / static_cast<double>(n_);
        return 1.0 /
               (std::pow(static_cast<double>(r + 1), theta_) * zetan_);
    }

  private:
    std::uint32_t n_ = 1;
    double theta_ = 0.0;
    // Gray's-method constants (theta > 0 only).
    double zetan_ = 1.0;
    double alpha_ = 1.0;
    double eta_ = 0.0;
    double thr1_ = 1.0; ///< cumulative mass of rank 0
    double thr2_ = 1.0; ///< cumulative mass of ranks {0, 1}
};

} // namespace tcc

#endif // TCC_WORKLOAD_KEYDIST_HH
