/**
 * @file
 * ScriptedSource: a TransactionSource that plays back an explicit,
 * pre-built list of transactions. Used by unit tests (protocol
 * walk-throughs scripting the paper's Figure 2/3 scenarios) and by the
 * example applications for hand-written transactional kernels.
 */

#ifndef TCC_WORKLOAD_SCRIPTED_SOURCE_HH
#define TCC_WORKLOAD_SCRIPTED_SOURCE_HH

#include <utility>
#include <vector>

#include "workload/transaction_source.hh"

namespace tcc {

/** Plays a fixed list of transactions, then reports done. */
class ScriptedSource : public TransactionSource
{
  public:
    ScriptedSource() = default;

    explicit ScriptedSource(std::vector<Transaction> txns)
        : transactions(std::move(txns))
    {}

    /** Append a transaction built from an op list. */
    ScriptedSource &
    add(std::vector<TxOp> ops, bool barrier_before = false)
    {
        Transaction t;
        t.ops = std::move(ops);
        t.barrierBefore = barrier_before;
        transactions.push_back(std::move(t));
        return *this;
    }

    std::optional<Transaction>
    nextTransaction() override
    {
        if (next >= transactions.size())
            return std::nullopt;
        return transactions[next++];
    }

    void transactionCommitted() override { ++commits; }
    void transactionViolated() override { ++violations; }

    std::size_t committed() const { return commits; }
    std::size_t violated() const { return violations; }

  private:
    std::vector<Transaction> transactions;
    std::size_t next = 0;
    std::size_t commits = 0;
    std::size_t violations = 0;
};

} // namespace tcc

#endif // TCC_WORKLOAD_SCRIPTED_SOURCE_HH
