#include "workload/datastruct.hh"

#include <algorithm>

#include "common/log.hh"

namespace tcc {

const char *
dsStructureName(DsStructure s)
{
    switch (s) {
    case DsStructure::Map: return "map";
    case DsStructure::Set: return "set";
    case DsStructure::Queue: return "queue";
    case DsStructure::Bank: return "bank";
    }
    return "?";
}

const DsMix &
dsMixPreset(const std::string &name)
{
    static const std::vector<DsMix> presets = {
        {"read_mostly", 0.90, 0.05, 0.03, 0.02},
        {"mixed", 0.60, 0.20, 0.15, 0.05},
        {"write_heavy", 0.30, 0.35, 0.30, 0.05},
        {"update_only", 0.00, 0.50, 0.50, 0.00},
    };
    for (const auto &m : presets)
        if (m.name == name)
            return m;
    fatal("unknown op-mix preset '%s' (want read_mostly, mixed, "
          "write_heavy, or update_only)",
          name.c_str());
}

// ---------------------------------------------------------------------
// DsLayout
// ---------------------------------------------------------------------

DsLayout::DsLayout(const DataStructParams &params, std::uint64_t seed)
    : keys(params.numKeys),
      stride(params.structure == DsStructure::Map ? 2 : 1)
{
    if (keys == 0)
        fatal("data-structure workload needs at least one key");
    if (!params.scrambleKeys)
        return;
    // Seeded Fisher-Yates permutation: an exact bijection for any key
    // count (a multiplicative hash is only bijective for power-of-two
    // spaces), deterministic in the workload seed alone so every
    // processor agrees on the rank -> key mapping.
    perm.resize(keys);
    for (std::uint32_t i = 0; i < keys; ++i)
        perm[i] = i;
    Rng prng(seed ^ 0xD5D5'D5D5'D5D5'D5D5ull);
    for (std::uint32_t i = keys - 1; i > 0; --i) {
        const auto j =
            static_cast<std::uint32_t>(prng.below(i + 1));
        std::swap(perm[i], perm[j]);
    }
}

// ---------------------------------------------------------------------
// DataStructSource
// ---------------------------------------------------------------------

DataStructSource::DataStructSource(
    const DataStructParams &params,
    std::shared_ptr<const DsLayout> layout, std::uint64_t seed,
    NodeId proc, std::uint32_t num_procs)
    : prm(params), lay(std::move(layout)),
      rng(seed * 0x9e3779b97f4a7c15ull + proc + 1), nodeId(proc),
      numProcs(num_procs)
{
    if (prm.phases.empty())
        fatal("data-structure workload needs at least one phase");
    myTxns.reserve(prm.phases.size());
    dists.reserve(prm.phases.size());
    tallies.resize(prm.phases.size());
    for (const auto &ph : prm.phases) {
        if (ph.txns < num_procs) {
            fatal("phase txns (%u) must be >= processors (%u) so "
                  "every source crosses every barrier boundary",
                  ph.txns, num_procs);
        }
        const std::uint32_t base = ph.txns / num_procs;
        const std::uint32_t extra =
            proc < (ph.txns % num_procs) ? 1 : 0;
        myTxns.push_back(base + extra);
        dists.emplace_back(prm.numKeys, ph.theta);
    }
}

std::uint32_t
DataStructSource::drawKey(const DsPhase &ph)
{
    if (ph.flashKey >= 0 && rng.chance(ph.flashFrac))
        return static_cast<std::uint32_t>(ph.flashKey) %
               prm.numKeys;
    return lay->keyForRank(dists[phaseIdx].next(rng));
}

void
DataStructSource::emitMapSetOp(std::vector<TxOp> &ops,
                               const DsPhase &ph)
{
    const bool is_map = prm.structure == DsStructure::Map;
    const std::uint32_t key = drawKey(ph);
    const Addr hdr = lay->keyAddr(key);
    const double u = rng.uniform();
    const DsMix &mix = ph.mix;
    if (u < mix.insert) {
        // insert: mark present, (maps) publish a fresh value.
        ops.push_back(TxOp::load(hdr));
        ops.push_back(TxOp::store(hdr, 1));
        if (is_map)
            ops.push_back(TxOp::store(hdr + 4, rng.next()));
    } else if (u < mix.insert + mix.erase) {
        // erase: mark absent.
        ops.push_back(TxOp::load(hdr));
        ops.push_back(TxOp::store(hdr, 0));
    } else if (u < mix.insert + mix.erase + mix.scan) {
        // range scan: read scanLen consecutive headers (wrapping).
        for (std::uint32_t i = 0; i < prm.scanLen; ++i) {
            const std::uint32_t k = (key + i) % prm.numKeys;
            ops.push_back(TxOp::load(lay->keyAddr(k)));
        }
    } else {
        // lookup: header, and (maps) the value when present-agnostic.
        ops.push_back(TxOp::load(hdr));
        if (is_map)
            ops.push_back(TxOp::load(hdr + 4));
    }
}

void
DataStructSource::emitQueueOp(std::vector<TxOp> &ops,
                              const DsPhase &ph)
{
    const Addr head = DsLayout::ctrlBase();
    const Addr tail = DsLayout::ctrlBase() + 4;
    const double u = rng.uniform();
    const DsMix &mix = ph.mix;
    const std::uint32_t part =
        std::max<std::uint32_t>(1, prm.numKeys / numProcs);
    if (u < mix.insert) {
        // enqueue: bump the shared tail counter (the hot RMW every
        // producer fights over), then publish into my slot partition.
        const std::uint32_t slot = static_cast<std::uint32_t>(
            (nodeId * part + enqCount++ % part) % prm.numKeys);
        ops.push_back(TxOp::load(tail));
        ops.push_back(TxOp::storeAdd(tail, 1));
        ops.push_back(TxOp::store(lay->keyAddr(slot), rng.next()));
    } else if (u < mix.insert + mix.erase) {
        // dequeue: bump the shared head counter, consume a slot.
        const std::uint32_t slot = static_cast<std::uint32_t>(
            (deqCount++ * 7 + nodeId) % prm.numKeys);
        ops.push_back(TxOp::load(head));
        ops.push_back(TxOp::storeAdd(head, 1));
        ops.push_back(TxOp::load(lay->keyAddr(slot)));
    } else if (u < mix.insert + mix.erase + mix.scan) {
        // occupancy check: read both counters.
        ops.push_back(TxOp::load(head));
        ops.push_back(TxOp::load(tail));
    } else {
        // peek: head counter plus the slot it points at (modeled).
        const std::uint32_t slot = static_cast<std::uint32_t>(
            (deqCount * 7 + nodeId) % prm.numKeys);
        ops.push_back(TxOp::load(head));
        ops.push_back(TxOp::load(lay->keyAddr(slot)));
    }
}

void
DataStructSource::emitBankOp(std::vector<TxOp> &ops,
                             const DsPhase &ph)
{
    const DsMix &mix = ph.mix;
    const double u = rng.uniform();
    if (u < mix.insert + mix.erase) {
        // transfer: debit a, credit b; the two StoreAdds cancel, so
        // the total balance is conserved (wrap-exact in uint64) - an
        // end-to-end serializability witness the bench checks.
        const std::uint32_t a = drawKey(ph);
        std::uint32_t b = drawKey(ph);
        if (b == a)
            b = (a + 1) % prm.numKeys;
        const std::uint64_t amount = 1 + rng.below(64);
        ops.push_back(TxOp::load(lay->keyAddr(a)));
        ops.push_back(
            TxOp::storeAdd(lay->keyAddr(a), 0 - amount));
        ops.push_back(TxOp::load(lay->keyAddr(b)));
        ops.push_back(TxOp::storeAdd(lay->keyAddr(b), amount));
    } else {
        // audit: read a run of account balances.
        const std::uint32_t start = drawKey(ph);
        for (std::uint32_t i = 0; i < prm.scanLen; ++i) {
            const std::uint32_t k = (start + i) % prm.numKeys;
            ops.push_back(TxOp::load(lay->keyAddr(k)));
        }
    }
}

void
DataStructSource::emitOp(std::vector<TxOp> &ops, const DsPhase &ph)
{
    if (prm.computePerOp > 0)
        ops.push_back(TxOp::compute(prm.computePerOp));
    switch (prm.structure) {
    case DsStructure::Map:
    case DsStructure::Set:
        emitMapSetOp(ops, ph);
        break;
    case DsStructure::Queue:
        emitQueueOp(ops, ph);
        break;
    case DsStructure::Bank:
        emitBankOp(ops, ph);
        break;
    }
}

std::optional<Transaction>
DataStructSource::nextTransaction()
{
    if (phaseIdx >= prm.phases.size())
        return std::nullopt;

    Transaction txn;
    txn.barrierBefore = (txnInPhase == 0 && phaseIdx > 0);

    const DsPhase &ph = prm.phases[phaseIdx];
    lastPhase = phaseIdx;
    lastOps = prm.opsPerTxn;
    for (std::uint32_t i = 0; i < prm.opsPerTxn; ++i)
        emitOp(txn.ops, ph);

    ++txnsGenerated;
    ++txnInPhase;
    if (txnInPhase >= myTxns[phaseIdx]) {
        txnInPhase = 0;
        ++phaseIdx;
    }
    return txn;
}

void
DataStructSource::transactionCommitted()
{
    committedOps_ += lastOps;
    ++tallies[lastPhase].commits;
}

void
DataStructSource::transactionViolated()
{
    ++tallies[lastPhase].aborts;
}

} // namespace tcc
