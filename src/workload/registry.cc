#include "workload/registry.hh"

#include <algorithm>
#include <cstdlib>

#include "busbaseline/bus_tcc.hh"
#include "common/log.hh"
#include "core/system.hh"
#include "workload/synthetic_app.hh"

namespace tcc {

namespace {

std::uint64_t
parseU64(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        fatal("workload override %s: bad integer '%s'", key.c_str(),
              value.c_str());
    return v;
}

std::uint32_t
parseU32(const std::string &key, const std::string &value)
{
    return static_cast<std::uint32_t>(parseU64(key, value));
}

double
parseF64(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        fatal("workload override %s: bad number '%s'", key.c_str(),
              value.c_str());
    return v;
}

/** Overrides on a Table-3 synthetic profile. */
void
applySynthetic(AppProfile &p, const std::string &key,
               const std::string &value)
{
    if (key == "instr_median")
        p.instrMedian = parseF64(key, value);
    else if (key == "instr_sigma")
        p.instrSigma = parseF64(key, value);
    else if (key == "read_words")
        p.readWords = parseU32(key, value);
    else if (key == "write_words")
        p.writeWords = parseU32(key, value);
    else if (key == "run_length")
        p.runLength = parseU32(key, value);
    else if (key == "shared_read_frac")
        p.sharedReadFrac = parseF64(key, value);
    else if (key == "shared_write_frac")
        p.sharedWriteFrac = parseF64(key, value);
    else if (key == "write_spread_dirs")
        p.writeSpreadDirs = parseU32(key, value);
    else if (key == "conflict_prob")
        p.conflictProb = parseF64(key, value);
    else if (key == "hot_words")
        p.hotWords = parseU32(key, value);
    else if (key == "phases")
        p.phases = parseU32(key, value);
    else if (key == "txns_per_phase")
        p.txnsPerPhase = parseU32(key, value);
    else if (key == "max_txns_per_phase")
        p.txnsPerPhase =
            std::min(p.txnsPerPhase, parseU32(key, value));
    else if (key == "private_words")
        p.privateWords = parseU32(key, value);
    else if (key == "shared_words")
        p.sharedWords = parseU32(key, value);
    else if (key == "private_reuse")
        p.privateReuse = parseF64(key, value);
    else if (key == "private_window")
        p.privateWindow = parseU32(key, value);
    else
        fatal("workload '%s': unknown override key '%s'",
              p.name.c_str(), key.c_str());
}

/** Overrides on a data-structure workload. */
void
applyDataStruct(DataStructParams &p, const std::string &name,
                const std::string &key, const std::string &value,
                std::uint32_t num_procs)
{
    if (key == "keys")
        p.numKeys = parseU32(key, value);
    else if (key == "ops_per_txn")
        p.opsPerTxn = parseU32(key, value);
    else if (key == "scan_len")
        p.scanLen = parseU32(key, value);
    else if (key == "compute_per_op")
        p.computePerOp = parseU32(key, value);
    else if (key == "scramble")
        p.scrambleKeys = parseU64(key, value) != 0;
    else if (key == "initial_balance")
        p.initialBalance = parseU64(key, value);
    else if (key == "theta")
        for (auto &ph : p.phases)
            ph.theta = parseF64(key, value);
    else if (key == "mix")
        for (auto &ph : p.phases)
            ph.mix = dsMixPreset(value);
    else if (key == "txns" || key == "txns_per_phase")
        for (auto &ph : p.phases)
            ph.txns = parseU32(key, value);
    else if (key == "max_txns_per_phase")
        for (auto &ph : p.phases)
            ph.txns = std::max(
                std::min(ph.txns, parseU32(key, value)), num_procs);
    else if (key == "phases") {
        const std::uint32_t n = parseU32(key, value);
        if (n == 0)
            fatal("workload '%s': phases must be nonzero",
                  name.c_str());
        // Grow by replicating the last phase's schedule.
        while (p.phases.size() < n)
            p.phases.push_back(p.phases.back());
        p.phases.resize(n);
    } else if (key == "flash_key") {
        p.phases.back().flashKey =
            static_cast<std::int64_t>(parseU64(key, value));
    } else if (key == "flash_frac")
        p.phases.back().flashFrac = parseF64(key, value);
    else
        fatal("workload '%s': unknown override key '%s'",
              name.c_str(), key.c_str());
}

/** Default DataStructParams for each registered ds workload. */
DataStructParams
dsDefaults(const std::string &name)
{
    DataStructParams p;
    if (name == "ds_map") {
        p.structure = DsStructure::Map;
        p.numKeys = 8192;
        p.phases = {
            {4096, 0.8, dsMixPreset("read_mostly"), -1, 0.0}};
    } else if (name == "ds_set") {
        p.structure = DsStructure::Set;
        p.numKeys = 8192;
        p.phases = {{4096, 0.8, dsMixPreset("mixed"), -1, 0.0}};
    } else if (name == "ds_queue") {
        p.structure = DsStructure::Queue;
        p.numKeys = 4096;
        p.opsPerTxn = 4;
        DsMix m;
        m.name = "queue_5050";
        m.lookup = 0.08;
        m.insert = 0.45;
        m.erase = 0.45;
        m.scan = 0.02;
        p.phases = {{4096, 0.0, m, -1, 0.0}};
    } else if (name == "ds_bank") {
        p.structure = DsStructure::Bank;
        p.numKeys = 2048;
        p.opsPerTxn = 2;
        p.scanLen = 8;
        DsMix m;
        m.name = "transfer_heavy";
        m.lookup = 0.10;
        m.insert = 0.85; // transfer
        m.erase = 0.0;
        m.scan = 0.05; // audit
        p.phases = {{4096, 0.9, m, -1, 0.0}};
    } else if (name == "ds_flash") {
        // Phase 0: calm, read-mostly, mild skew. Phase 1: the mix
        // flips write-heavy AND key 17 turns hot (flash crowd) - the
        // abort rate must jump at the barrier.
        p.structure = DsStructure::Map;
        p.numKeys = 8192;
        p.phases = {
            {2048, 0.2, dsMixPreset("read_mostly"), -1, 0.0},
            {2048, 0.2, dsMixPreset("write_heavy"), 17, 0.6},
        };
    } else {
        fatal("unknown data-structure workload '%s'", name.c_str());
    }
    return p;
}

const char *
dsDescription(const std::string &name)
{
    if (name == "ds_map")
        return "Zipfian transactional map, read-mostly";
    if (name == "ds_set")
        return "Zipfian transactional set, mixed ops";
    if (name == "ds_queue")
        return "shared queue: hot head/tail counters";
    if (name == "ds_bank")
        return "bank transfers, skewed hot accounts";
    return "flash crowd: read-mostly flips write-heavy + hot key";
}

const std::vector<std::string> &
dsNames()
{
    static const std::vector<std::string> names = {
        "ds_map", "ds_set", "ds_queue", "ds_bank", "ds_flash"};
    return names;
}

WorkloadBundle
makeSynthetic(const AppProfile &prof, std::uint64_t seed,
              std::uint32_t num_procs)
{
    WorkloadBundle b;
    b.name = prof.name;
    // Region order mirrors the legacy setupApp() binding order so a
    // registry-built run is bit-identical to the legacy path.
    for (NodeId p = 0; p < num_procs; ++p) {
        b.footprint.regions.push_back(
            {"private" + std::to_string(p),
             SyntheticSource::privateBase(p),
             static_cast<std::uint64_t>(prof.privateWords) * 4, p,
             false});
        b.footprint.regions.push_back(
            {"shared" + std::to_string(p),
             SyntheticSource::sharedBase(p),
             static_cast<std::uint64_t>(prof.sharedWords) * 4, p,
             false});
    }
    if (prof.hotWords > 0) {
        b.footprint.regions.push_back(
            {"hot", SyntheticSource::hotBase(),
             static_cast<std::uint64_t>(prof.hotWords) * 4, 0, true});
    }
    b.footprint.expectedTxns =
        static_cast<std::uint64_t>(prof.phases) * prof.txnsPerPhase;
    b.footprint.dataWords =
        static_cast<std::uint64_t>(num_procs) *
            (prof.privateWords + prof.sharedWords) +
        prof.hotWords;
    for (NodeId p = 0; p < num_procs; ++p)
        b.sources.push_back(std::make_unique<SyntheticSource>(
            prof, seed, p, num_procs));
    return b;
}

} // namespace

WorkloadBundle
WorkloadBundle::makeDs(const std::string &name,
                       const DataStructParams &prm,
                       std::uint64_t seed, std::uint32_t num_procs)
{
    WorkloadBundle b;
    b.name = name;
    b.dsLayout = std::make_shared<const DsLayout>(prm, seed);

    const std::uint64_t kv_words =
        static_cast<std::uint64_t>(prm.numKeys) *
        b.dsLayout->strideWords();
    b.footprint.regions.push_back(
        {"kv", DsLayout::kvBase(), kv_words * 4, 0, true});
    b.footprint.dataWords = kv_words;
    if (prm.structure == DsStructure::Queue) {
        b.footprint.regions.push_back(
            {"ctrl", DsLayout::ctrlBase(), 8, 0, false});
        b.footprint.dataWords += 2;
    }
    for (const auto &ph : prm.phases)
        b.footprint.expectedTxns += ph.txns;
    b.footprint.expectedOps =
        b.footprint.expectedTxns * prm.opsPerTxn;

    if (prm.structure == DsStructure::Bank) {
        for (std::uint32_t k = 0; k < prm.numKeys; ++k)
            b.initialWords.emplace_back(b.dsLayout->keyAddr(k),
                                        prm.initialBalance);
    }

    for (NodeId p = 0; p < num_procs; ++p) {
        auto src = std::make_unique<DataStructSource>(
            prm, b.dsLayout, seed, p, num_procs);
        b.dsSources.push_back(src.get());
        b.sources.push_back(std::move(src));
    }
    return b;
}

WorkloadParams
WorkloadParams::parse(const std::string &list)
{
    WorkloadParams p;
    std::size_t pos = 0;
    while (pos < list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string pair = list.substr(pos, comma - pos);
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0)
            fatal("bad workload override '%s' (want key=value)",
                  pair.c_str());
        p.set(pair.substr(0, eq), pair.substr(eq + 1));
        pos = comma + 1;
    }
    return p;
}

const std::vector<WorkloadInfo> &
workloadInfos()
{
    static const std::vector<WorkloadInfo> infos = [] {
        std::vector<WorkloadInfo> v;
        for (const auto &a : appProfiles())
            v.push_back({a.name, "table3",
                         "Table-3 synthetic application"});
        for (const auto &n : dsNames())
            v.push_back({n, "datastruct", dsDescription(n)});
        return v;
    }();
    return infos;
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto &i : workloadInfos())
        names.push_back(i.name);
    return names;
}

bool
isWorkload(const std::string &name)
{
    for (const auto &i : workloadInfos())
        if (i.name == name)
            return true;
    return false;
}

WorkloadBundle
makeWorkload(const std::string &name, const WorkloadParams &params,
             std::uint64_t seed, std::uint32_t numProcs)
{
    if (numProcs == 0)
        fatal("makeWorkload: numProcs must be nonzero");
    for (const auto &a : appProfiles()) {
        if (a.name == name) {
            AppProfile prof = a;
            for (const auto &[k, v] : params.overrides)
                applySynthetic(prof, k, v);
            return makeSynthetic(prof, seed, numProcs);
        }
    }
    if (std::find(dsNames().begin(), dsNames().end(), name) ==
        dsNames().end())
        fatal("unknown workload '%s' (see workloadNames())",
              name.c_str());
    DataStructParams prm = dsDefaults(name);
    for (const auto &[k, v] : params.overrides)
        applyDataStruct(prm, name, k, v, numProcs);
    return WorkloadBundle::makeDs(name, prm, seed, numProcs);
}

// ---------------------------------------------------------------------
// WorkloadBundle
// ---------------------------------------------------------------------

void
WorkloadBundle::attach(System &sys) const
{
    const std::uint32_t procs = sys.numProcs();
    const std::uint32_t page = sys.cfg().pageBytes;
    for (const auto &r : footprint.regions) {
        if (r.pageRoundRobin) {
            std::uint32_t i = 0;
            for (Addr a = r.base; a < r.base + r.bytes; a += page)
                sys.bindRegion(a, page, i++ % procs);
        } else {
            sys.bindRegion(r.base, r.bytes, r.home);
        }
    }
    for (const auto &[addr, value] : initialWords)
        sys.initializeWord(addr, value);
    for (NodeId p = 0; p < procs; ++p)
        sys.setSource(p, sources.at(p).get());
}

void
WorkloadBundle::attach(BusTcc &bus) const
{
    for (const auto &[addr, value] : initialWords)
        bus.initializeWord(addr, value);
    for (NodeId p = 0;
         p < static_cast<NodeId>(sources.size()); ++p)
        bus.setSource(p, sources.at(p).get());
}

std::uint64_t
WorkloadBundle::committedOps() const
{
    std::uint64_t ops = 0;
    for (const auto *s : dsSources)
        ops += s->committedOps();
    return ops;
}

std::vector<PhaseTally>
WorkloadBundle::phaseTallies() const
{
    std::vector<PhaseTally> sum;
    for (const auto *s : dsSources) {
        const auto &t = s->phaseTallies();
        if (sum.size() < t.size())
            sum.resize(t.size());
        for (std::size_t i = 0; i < t.size(); ++i) {
            sum[i].commits += t[i].commits;
            sum[i].aborts += t[i].aborts;
        }
    }
    return sum;
}

std::int64_t
WorkloadBundle::keyOf(Addr addr) const
{
    return dsLayout ? dsLayout->keyOf(addr) : -1;
}

} // namespace tcc
