/**
 * @file
 * Conservative parallel discrete-event execution (PDES) of one System
 * run: domains, the per-domain network shim, and the window crew.
 *
 * The simulated machine is partitioned into per-worker *domains*, each
 * owning a private arena, EventQueue, GlobalStore replica, trace ring,
 * and network endpoint shim for a contiguous NodeId range. All domains
 * advance in lockstep windows of width equal to the minimum
 * cross-domain message latency (the conservative lookahead): within a
 * window every domain executes its own events with no locks and no
 * shared mutable state; at the window barrier a single coordinator
 * exchanges the buffered cross-domain effects in a canonical order
 * (mailbox parcels, store write logs, SPMD barrier arrivals) and the
 * next window begins.
 *
 * Determinism contract: a PDES run is a pure function of
 * (SystemConfig, seeds, domain count). The worker-thread count only
 * decides which OS thread executes a domain's window - it never
 * reorders events, randomness draws, or barrier-phase merges - so
 * jobs=1 and jobs=N produce bit-identical RunResults by construction.
 * PDES is its own execution model, distinct from the legacy serial
 * engine (which remains byte-for-byte unchanged): cross-domain values
 * and messages become visible at window granularity, so fingerprints
 * are comparable across jobs counts and domain counts are part of the
 * model, not across engines. See DESIGN.md section 11.
 *
 * Lookahead derivation (DESIGN.md section 11.2): every cross-domain
 * message crosses at least one mesh link, so its end-to-end latency is
 * at least routerDelay + serialization(>=1) + hopLatency + routerDelay;
 * jitter, chaos delays, and link contention only ever add to that. On
 * an ideal network the latency is exactly idealLatency. Messages sent
 * inside window [W, W+L) therefore always arrive at or after W+L, and
 * parking them in a mailbox until the barrier loses nothing.
 */

#ifndef TCC_SIM_DOMAIN_HH
#define TCC_SIM_DOMAIN_HH

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "check/invariant_checker.hh"
#include "common/arena.hh"
#include "common/types.hh"
#include "mem/global_store.hh"
#include "noc/chaos_network.hh"
#include "noc/network.hh"
#include "obs/contention.hh"
#include "obs/metrics.hh"
#include "obs/trace_recorder.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "sim/random.hh"

namespace tcc {

/** One domain's slice of the machine: a contiguous NodeId range. */
struct DomainSpec {
    std::uint32_t id = 0;
    NodeId firstNode = 0;
    std::uint32_t numNodes = 0;
};

/**
 * The partition: domain specs, node/row ownership maps, and the
 * lookahead window width. Computed once per System by
 * computePdesPlan() and shared read-only by every domain.
 */
struct PdesPlan {
    std::vector<DomainSpec> domains;
    /** Window width in cycles (the conservative lookahead). */
    Tick lookahead = 1;
    /** Mesh-based transport (Mesh, or Chaos over a mesh). */
    bool meshBased = false;
    std::uint32_t gridCols = 0;
    std::uint32_t gridRows = 0;
    /** NodeId -> owning domain (size numProcs). */
    std::vector<std::uint32_t> nodeDomain;
    /** Mesh row -> owning domain (size gridRows; covers the phantom
     *  grid slots ragged node counts route through). */
    std::vector<std::uint32_t> rowDomain;
};

/**
 * Partition @p num_procs nodes into at most @p requested_domains
 * domains and derive the lookahead.
 *
 * Mesh partitions are whole-row blocks: row-major node numbering makes
 * each domain a contiguous NodeId range, and XY routing then crosses
 * domains only on vertical links, so the horizontal phase of every
 * route stays inside the sender's domain. The request is clamped to
 * the row count (mesh) or node count (ideal): the effective domain
 * count is a deterministic function of the topology, never of the
 * worker count.
 *
 * @p window_override, when nonzero, narrows the window below the
 * derived lookahead (it may never widen it - that would be a
 * causality violation, and SystemConfig::validate() rejects it).
 */
PdesPlan computePdesPlan(std::uint32_t num_procs,
                         std::uint32_t requested_domains,
                         Tick window_override, bool mesh_based,
                         const MeshConfig &mesh, Tick ideal_latency);

/** End of a window starting at @p start with lookahead @p lookahead,
 *  saturating at kTickMax (the overflow clamp near the end of time). */
constexpr Tick
pdesWindowEnd(Tick start, Tick lookahead)
{
    return start > kTickMax - lookahead ? kTickMax : start + lookahead;
}

/**
 * Conservative earliest-output-time (EOT) bound: a domain whose next
 * runnable event is at @p next cannot make any cross-domain effect
 * (message arrival, store write, barrier arrival) visible before
 * next + lookahead, because every cross-domain message pays at least
 * the lookahead in latency and store writes publish at the barrier
 * that ends the window containing them. kTickMax (no events) maps to
 * kTickMax: an empty domain emits nothing until something reaches it.
 */
constexpr Tick
pdesEot(Tick next, Tick lookahead)
{
    return next >= kTickMax - lookahead ? kTickMax : next + lookahead;
}

/** Transport parameters a DomainNet needs (translated from the
 *  System's NetworkConfig by the constructor site). */
struct DomainNetConfig {
    bool meshBased = true;
    MeshConfig mesh;
    Tick idealLatency = 1;
    /** Chaos fault layer on top of the base transport. */
    bool chaos = false;
    ChaosConfig chaosCfg;
};

/**
 * One domain's network endpoint: routes intra-domain messages through
 * the domain's own EventQueue and parks cross-domain messages (with
 * their already-computed arrival tick) in per-destination-domain
 * mailboxes for the coordinator to flush at the window barrier.
 *
 * Mesh timing matches MeshNetwork's analytic store-and-forward model
 * with one refinement: a directed link is owned by the domain of the
 * row its source grid slot lies in. Owned links model contention
 * exactly (depart at max(arrival, linkFree), then occupy the link);
 * foreign links add the uncontended crossing cost without touching
 * any state, keeping the window race-free. With whole-row domains and
 * XY routing, a route's horizontal phase and its first vertical link
 * are always owned by the sender's domain.
 *
 * Chaos faults draw from a per-domain Rng stream at *send* time (the
 * serial ChaosNetwork draws jitter at delivery), so a parcel's arrival
 * tick is final when it enters the mailbox.
 */
class DomainNet : public Network
{
  public:
    /** A cross-domain message waiting for the window barrier. */
    struct Parcel {
        Message msg;
        Tick when; ///< absolute arrival tick at the destination
    };

    DomainNet(EventQueue &eq, std::uint32_t num_nodes,
              const DomainSpec &spec, const PdesPlan &plan,
              const DomainNetConfig &cfg, Arena *arena = nullptr);

    void send(Message msg) override;

    /** Cross-domain messages parked so far (mailbox traffic stat). */
    std::uint64_t crossMessages() const { return crossCount; }

    /** Any parcels parked since the last flush? O(1): the park path
     *  maintains dirtyDests, so the coordinator never scans the
     *  mailboxes of domains that sent nothing. */
    bool hasParcels() const { return !dirtyDests.empty(); }

    /** Per-destination-domain mailboxes, drained by the coordinator
     *  (PdesState::flushMailboxes) between windows. The vectors keep
     *  their capacity across flushes, so steady-state parking does no
     *  allocation (the parcel-node pool). */
    std::vector<std::vector<Parcel>> outbox;

    /** Destination domains whose mailbox gained parcels since the last
     *  flush, in first-park order; flushMailboxes sorts them into
     *  canonical destination order before draining. */
    std::vector<std::uint32_t> dirtyDests;

  protected:
    /**
     * Combining-tree staging under PDES. The whole tree is resolved
     * analytically in the *sending* domain's timeline at multicast
     * time (owned links with contention, foreign links additive -
     * the same ownership rule as point-to-point routes), so relays
     * never need forwarding events in foreign domains. Each copy is
     * then delivered locally or parked in its destination domain's
     * mailbox with its final arrival tick; every cross-domain copy
     * crosses at least one full link, so the lookahead bound holds.
     */
    MulticastReceipt doMulticast(const Message &proto,
                                 std::span<const NodeId> dsts) override;

  private:
    void route(Message msg);
    Tick meshDelay(const Message &msg, unsigned &hops);
    /** XY-route arrival tick from @p from (injected >= @p start) to
     *  @p to; shared by meshDelay and the tree multicast. */
    Tick meshArrival(NodeId from, NodeId to, std::uint32_t bytes,
                     Tick start, unsigned &hops);
    Tick chaosExtra();

    DomainSpec spec;
    const PdesPlan &plan;
    DomainNetConfig config;
    /** Next-free tick per directed link; only owned links are touched. */
    std::vector<Tick> linkFree;
    Rng jitterRng;
    Rng chaosRng;
    /** Parking slab for lagged chaos duplicates. */
    ObjectPool<Message> dupPool;
    std::uint64_t crossCount = 0;
    /** Tree-multicast scratch (see MeshNetwork; unused when flat). */
    std::vector<Tick> mcArrival;
    std::vector<Tick> mcNicFree;
    std::vector<std::uint32_t> mcNicPath;
    std::vector<std::uint32_t> mcDepth;
};

/**
 * Everything one domain owns. Arena is declared first so every other
 * member (event-queue slabs, store tables, trace ring, net pools) may
 * point into it; members destroy in reverse order.
 */
struct PdesDomain {
    PdesDomain(const DomainSpec &spec_, std::size_t trace_capacity)
        : spec(spec_), eq(&arena), store(&arena),
          tracer(eq, &arena, trace_capacity)
    {
        store.setWriteLog(&storeLog);
        // Tag log records with the commit tick: the barrier merge
        // replays them in (tick, domain) order, making the realized
        // window width invisible to the replicated memory image.
        store.setClock(eq.nowRef());
    }

    PdesDomain(const PdesDomain &) = delete;
    PdesDomain &operator=(const PdesDomain &) = delete;

    DomainSpec spec;
    Arena arena;
    EventQueue eq;
    /** Domain-private replica of the committed memory state; writes
     *  are logged and broadcast at the window barrier. */
    GlobalStore store;
    TraceRecorder tracer;
    std::unique_ptr<DomainNet> net;
    /** Per-domain invariant checker (nullptr unless armed); finalize
     *  is restricted to this domain's node range. */
    std::unique_ptr<InvariantChecker> checker;
    /** Per-domain epoch sampler (nullptr unless metricsEpoch != 0);
     *  sampled by this domain's worker inside its window, merged at
     *  finalize (obs/metrics.hh). */
    std::unique_ptr<MetricsSampler> metrics;
    /** Per-domain conflict profiler (nullptr unless contentionTopK
     *  != 0); fed by this domain's processors only, merged at finalize
     *  in (domain, address) order (obs/contention.hh). */
    std::unique_ptr<ContentionProfiler> contention;

    // --- effects deferred to the window barrier ----------------------
    /** write() records since the last barrier. */
    GlobalStore::WriteLog storeLog;
    /** SPMD barrier arrivals since the last barrier. */
    std::vector<std::pair<NodeId, std::function<void()>>>
        barrierArrivals;
    /** Processors that drained their source since the last barrier. */
    std::uint32_t newlyDone = 0;

    /** Buffered serializability-checker commit records (merged in TID
     *  order at finalize; replay order is TID order anyway). */
    struct CommitRec {
        Tid tid;
        NodeId proc;
        std::vector<std::pair<Addr, std::uint64_t>> reads;
        std::vector<std::pair<Addr, std::uint64_t>> writes;
    };
    std::vector<CommitRec> commits;
};

/**
 * A fixed crew of worker threads executing one parallel phase per
 * window. Domains are assigned statically (domain d runs on worker
 * d % jobs), and with jobs == 1 no threads are created at all - the
 * phase body runs inline, which doubles as the reference execution
 * the threaded runs must match bit-for-bit.
 *
 * Memory ordering: runPhase() publishes everything the coordinator
 * wrote (window limit, flushed mailboxes, store replicas) to the
 * workers through the crew mutex, and collects everything the workers
 * wrote back the same way. TSan-clean by construction: during a phase
 * a domain is touched by exactly one thread, and between phases only
 * by the coordinator.
 */
class WindowCrew
{
  public:
    /** @param jobs worker count (>= 1); @param body runs as body(w)
     *  for each worker index w in [0, jobs) every phase. */
    WindowCrew(unsigned jobs, std::function<void(unsigned)> body);
    ~WindowCrew();

    WindowCrew(const WindowCrew &) = delete;
    WindowCrew &operator=(const WindowCrew &) = delete;

    /** Run one phase; returns when every worker finished. Rethrows
     *  the first exception a worker raised, if any. */
    void runPhase();

    unsigned jobs() const { return n; }

  private:
    unsigned n;
    std::function<void(unsigned)> work;
    std::vector<std::thread> threads;
    std::mutex mtx;
    std::condition_variable cvStart;
    std::condition_variable cvDone;
    std::uint64_t gen = 0;
    unsigned running = 0;
    bool stopping = false;
    std::exception_ptr firstError;
};

/**
 * The per-run PDES state the System drives: the plan, the domains,
 * and the coordinator's barrier-phase operations. All methods run
 * single-threaded between windows.
 */
struct PdesState {
    explicit PdesState(PdesPlan p) : plan(std::move(p)) {}

    /**
     * One domain's coordination summary, written by the domain's own
     * worker at the end of each sub-phase (while the domain's state is
     * hot in that worker's cache) and consumed by the coordinator.
     * The coordinator steers entirely off this contiguous array: a
     * quiet or idle domain's queues, mailboxes, and logs are never
     * touched between phases. Cacheline-aligned so workers on
     * different domains never share a line.
     */
    struct alignas(64) DomainPulse {
        /** eq.nextWhen() after the last phase, min-updated by the
         *  coordinator when it injects (mailbox flush, barrier
         *  release). kTickMax = domain fully drained. */
        Tick next = kTickMax;
        /** kPulse* bits describing the effects of the last phase. */
        std::uint32_t flags = 0;
    };

    /** Parcels were parked (outbox dirty). */
    static constexpr std::uint32_t kPulseParcels = 1;
    /** Store write log is nonempty. */
    static constexpr std::uint32_t kPulseStore = 2;
    /** Barrier arrivals, done transitions, or a checker failure -
     *  anything the coordinator's barrier phase must consume. */
    static constexpr std::uint32_t kPulseSync = 4;

    PdesPlan plan;
    std::vector<std::unique_ptr<PdesDomain>> domains;
    /** Per-domain coordination summaries (size domains.size()). */
    std::vector<DomainPulse> pulse;
    /** Current window's inclusive execution limit (window end - 1,
     *  clamped to max_ticks); set by the coordinator before each
     *  phase, read by the workers. */
    Tick curLimit = 0;

    /** Earliest pending event across all domains (kTickMax if none).
     *  Exact scan of every domain's queue; the window loop uses the
     *  pulse-based earliestNext() instead. */
    Tick earliestEvent() const;

    /** Populate pulse from a full scan of every domain (run setup;
     *  afterwards the workers and coordinator keep it current). */
    void initPulse();

    /** Earliest pending event according to the pulse array. */
    Tick
    earliestNext() const
    {
        Tick next = kTickMax;
        for (const DomainPulse &pu : pulse)
            next = std::min(next, pu.next);
        return next;
    }

    /** min over domains of EOT(d) = pulse[d].next + lookahead: no
     *  cross-domain effect can become visible before this tick. */
    Tick
    eotBound() const
    {
        Tick bound = kTickMax;
        for (const DomainPulse &pu : pulse)
            bound = std::min(bound, pdesEot(pu.next, plan.lookahead));
        return bound;
    }

    /**
     * Move every parked parcel to its destination domain's queue, in
     * canonical (source domain, destination domain, FIFO) order.
     * Only domains whose pulse reported parcels are visited, and only
     * their dirty destination mailboxes are drained (batched
     * injection per destination); pulse[dst].next is min-updated with
     * the earliest injected arrival. Panics if a parcel would arrive
     * before @p window_end - that would mean the lookahead bound is
     * wrong.
     * @return parcels moved.
     */
    std::uint64_t flushMailboxes(Tick window_end);

    /**
     * Broadcast every domain's store write log to every replica
     * (including the writer's own - replaying identical values keeps
     * all replicas convergent), then clear the logs. Records are
     * replayed in (tick, writer domain, log order) across domains, so
     * conflicting writes to the same word resolve exactly as a
     * barrier-per-tick execution would - the realized window width is
     * invisible to the merged image. Domains whose pulse did not
     * report kPulseStore are never touched.
     */
    void applyStoreLogs();

    /** Merge the per-domain trace rings into @p into, ordered by
     *  (tick, domain id); within a domain, ring order is kept. */
    void mergeTraces(TraceRecorder &into) const;

  private:
    /** Reused (tick, domain) merge scratch for applyStoreLogs. */
    std::vector<GlobalStore::WriteRec> mergeScratch;
};

} // namespace tcc

#endif // TCC_SIM_DOMAIN_HH
