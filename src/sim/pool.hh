/**
 * @file
 * Slab-backed object pool with an intrusive free list. Used to recycle
 * hot-path objects (in-flight Messages, event nodes) so the simulator's
 * steady state performs no heap allocation: slabs are only allocated
 * when the pool grows past every previous high-water mark.
 *
 * Slabs come from the owning System's Arena when one is supplied, so a
 * run's pooled objects live in run-private memory (no malloc-arena
 * contention between concurrent sweep workers); without an arena the
 * pool falls back to the global heap.
 */

#ifndef TCC_SIM_POOL_HH
#define TCC_SIM_POOL_HH

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/arena.hh"

namespace tcc {

/**
 * Pool of default-constructible T. Objects are handed out constructed;
 * free() returns them for reuse (the object's state persists until the
 * next alloc overwrites it, so callers must not rely on freshness).
 */
template <typename T, std::size_t SlabObjects = 128>
class ObjectPool
{
    static_assert(SlabObjects > 0);

  public:
    ObjectPool() = default;
    explicit ObjectPool(Arena *a) : arena(a) {}
    ObjectPool(const ObjectPool &) = delete;
    ObjectPool &operator=(const ObjectPool &) = delete;

    ~ObjectPool()
    {
        // Arena slabs are placement-new'd into raw arena memory: run
        // the destructors here; the arena reclaims the bytes itself.
        for (Slot *slab : arenaSlabs) {
            for (std::size_t i = 0; i < SlabObjects; ++i)
                slab[i].~Slot();
        }
    }

    /** Take an object from the pool (grows by one slab when empty). */
    T *
    alloc()
    {
        if (!freeHead)
            grow();
        Slot *s = freeHead;
        freeHead = s->next;
        ++liveObjects;
        return &s->value;
    }

    /** Take an object and assign @p init into it. */
    T *
    alloc(T init)
    {
        T *p = alloc();
        *p = std::move(init);
        return p;
    }

    /** Return an object obtained from alloc(). */
    void
    free(T *p)
    {
        Slot *s = reinterpret_cast<Slot *>(
            reinterpret_cast<char *>(p) - offsetof(Slot, value));
        s->next = freeHead;
        freeHead = s;
        --liveObjects;
    }

    /** Objects currently handed out (diagnostics / leak checks). */
    std::size_t live() const { return liveObjects; }

    /** Total objects ever materialized (capacity high-water mark). */
    std::size_t
    capacity() const
    {
        return (slabs.size() + arenaSlabs.size()) * SlabObjects;
    }

  private:
    struct Slot {
        T value{};
        Slot *next = nullptr;
    };

    void
    grow()
    {
        Slot *slab;
        if (arena) {
            void *raw = arena->allocate(sizeof(Slot) * SlabObjects,
                                        alignof(Slot));
            slab = static_cast<Slot *>(raw);
            for (std::size_t i = 0; i < SlabObjects; ++i)
                new (&slab[i]) Slot();
            arenaSlabs.push_back(slab);
        } else {
            slabs.push_back(std::make_unique<Slot[]>(SlabObjects));
            slab = slabs.back().get();
        }
        for (std::size_t i = 0; i < SlabObjects; ++i) {
            slab[i].next = freeHead;
            freeHead = &slab[i];
        }
    }

    Arena *arena = nullptr;
    std::vector<std::unique_ptr<Slot[]>> slabs;
    /// Slabs living in the arena (destroyed, not deleted, by ~ObjectPool).
    std::vector<Slot *> arenaSlabs;
    Slot *freeHead = nullptr;
    std::size_t liveObjects = 0;
};

} // namespace tcc

#endif // TCC_SIM_POOL_HH
