/**
 * @file
 * Slab-backed object pool with an intrusive free list. Used to recycle
 * hot-path objects (in-flight Messages, event nodes) so the simulator's
 * steady state performs no heap allocation: slabs are only allocated
 * when the pool grows past every previous high-water mark.
 */

#ifndef TCC_SIM_POOL_HH
#define TCC_SIM_POOL_HH

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace tcc {

/**
 * Pool of default-constructible T. Objects are handed out constructed;
 * free() returns them for reuse (the object's state persists until the
 * next alloc overwrites it, so callers must not rely on freshness).
 */
template <typename T, std::size_t SlabObjects = 128>
class ObjectPool
{
    static_assert(SlabObjects > 0);

  public:
    ObjectPool() = default;
    ObjectPool(const ObjectPool &) = delete;
    ObjectPool &operator=(const ObjectPool &) = delete;

    /** Take an object from the pool (grows by one slab when empty). */
    T *
    alloc()
    {
        if (!freeHead)
            grow();
        Slot *s = freeHead;
        freeHead = s->next;
        ++liveObjects;
        return &s->value;
    }

    /** Take an object and assign @p init into it. */
    T *
    alloc(T init)
    {
        T *p = alloc();
        *p = std::move(init);
        return p;
    }

    /** Return an object obtained from alloc(). */
    void
    free(T *p)
    {
        Slot *s = reinterpret_cast<Slot *>(
            reinterpret_cast<char *>(p) - offsetof(Slot, value));
        s->next = freeHead;
        freeHead = s;
        --liveObjects;
    }

    /** Objects currently handed out (diagnostics / leak checks). */
    std::size_t live() const { return liveObjects; }

    /** Total objects ever materialized (capacity high-water mark). */
    std::size_t capacity() const { return slabs.size() * SlabObjects; }

  private:
    struct Slot {
        T value{};
        Slot *next = nullptr;
    };

    void
    grow()
    {
        slabs.push_back(std::make_unique<Slot[]>(SlabObjects));
        Slot *slab = slabs.back().get();
        for (std::size_t i = 0; i < SlabObjects; ++i) {
            slab[i].next = freeHead;
            freeHead = &slab[i];
        }
    }

    std::vector<std::unique_ptr<Slot[]>> slabs;
    Slot *freeHead = nullptr;
    std::size_t liveObjects = 0;
};

} // namespace tcc

#endif // TCC_SIM_POOL_HH
