/**
 * @file
 * Deterministic per-component random number generator. Each workload
 * source and each stochastic component gets its own stream so that
 * changing one component never perturbs another (a standard simulator
 * reproducibility idiom).
 */

#ifndef TCC_SIM_RANDOM_HH
#define TCC_SIM_RANDOM_HH

#include <cmath>
#include <cstdint>

namespace tcc {

/**
 * SplitMix64-seeded xorshift-star generator: tiny, fast, and good enough
 * for workload synthesis (we are not doing cryptography).
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) { reseed(seed); }

    /** Re-seed the stream (SplitMix64 whitening so seed=0,1,2 differ). */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t z = seed + 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        state = z ^ (z >> 31);
        if (state == 0)
            state = 0x2545f4914f6cdd1dull;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Log-normal-ish positive draw with the given median and spread.
     * Used to produce heavy-tailed transaction sizes whose 90th
     * percentile matches a calibration target.
     */
    double
    logNormal(double median, double sigma)
    {
        // Box-Muller from two uniforms.
        double u1 = uniform();
        double u2 = uniform();
        if (u1 < 1e-12)
            u1 = 1e-12;
        const double z =
            std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530718 * u2);
        return median * std::exp(sigma * z);
    }

  private:
    std::uint64_t state;
};

} // namespace tcc

#endif // TCC_SIM_RANDOM_HH
