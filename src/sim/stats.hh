/**
 * @file
 * Lightweight statistics: named scalar counters and sampled
 * distributions with percentile queries. Components own their stats as
 * plain members; a StatDump helper renders them for reports.
 */

#ifndef TCC_SIM_STATS_HH
#define TCC_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace tcc {

/**
 * A sampled distribution supporting mean and percentile queries.
 * Stores every sample; our runs are small enough (tens of thousands of
 * transactions) that this is the simplest correct choice. Percentile
 * queries select into a local copy, so const readers never mutate
 * shared state and a Distribution can be read from several sweep
 * threads at once.
 */
class Distribution
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        samples.push_back(v);
    }

    /** Number of samples recorded. */
    std::size_t count() const { return samples.size(); }

    /** Arithmetic mean, or 0 with no samples. */
    double
    mean() const
    {
        if (samples.empty())
            return 0.0;
        double s = 0.0;
        for (double v : samples)
            s += v;
        return s / static_cast<double>(samples.size());
    }

    /** Sum of all samples. */
    double
    sum() const
    {
        double s = 0.0;
        for (double v : samples)
            s += v;
        return s;
    }

    /**
     * The @p p percentile (p in [0,100]) using nearest-rank, or 0 with
     * no samples. p=90 gives the "90th %" columns of the paper's
     * Table 3.
     */
    double
    percentile(double p) const
    {
        if (samples.empty())
            return 0.0;
        const double rank = p / 100.0 *
            static_cast<double>(samples.size() - 1);
        auto idx = static_cast<std::size_t>(rank + 0.5);
        if (idx >= samples.size())
            idx = samples.size() - 1;
        // Select into a scratch copy: percentile() stays genuinely
        // const, so concurrent readers need no synchronization.
        std::vector<double> scratch = samples;
        std::nth_element(scratch.begin(), scratch.begin() + idx,
                         scratch.end());
        return scratch[idx];
    }

    /** Largest sample, or 0 with no samples. */
    double
    max() const
    {
        if (samples.empty())
            return 0.0;
        return *std::max_element(samples.begin(), samples.end());
    }

    /** Discard all samples. */
    void
    reset()
    {
        samples.clear();
    }

    /** Merge all samples of @p other into this distribution. */
    void
    merge(const Distribution &other)
    {
        samples.insert(samples.end(), other.samples.begin(),
                       other.samples.end());
    }

  private:
    std::vector<double> samples;
};

} // namespace tcc

#endif // TCC_SIM_STATS_HH
