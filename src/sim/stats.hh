/**
 * @file
 * Lightweight statistics: named scalar counters and sampled
 * distributions with percentile queries. Components own their stats as
 * plain members; a StatDump helper renders them for reports.
 */

#ifndef TCC_SIM_STATS_HH
#define TCC_SIM_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace tcc {

/**
 * A sampled distribution supporting mean and percentile queries.
 * Stores every sample; our runs are small enough (tens of thousands of
 * transactions) that this is the simplest correct choice. Percentile
 * queries sort a cached copy once and reuse it until the next
 * sample()/merge()/reset(), so a stats dump that asks for several
 * percentiles pays for one sort, not one copy per query. The cache
 * makes percentile() logically-but-not-physically const: queries are
 * safe from the single thread that owns the Distribution (dumps run
 * post-run on the owning thread; sweep workers own disjoint Systems
 * per DESIGN.md section 7), but not from concurrent readers.
 */
class Distribution
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        samples.push_back(v);
        sortedValid = false;
    }

    /** Number of samples recorded. */
    std::size_t count() const { return samples.size(); }

    /** Arithmetic mean, or 0 with no samples. */
    double
    mean() const
    {
        if (samples.empty())
            return 0.0;
        double s = 0.0;
        for (double v : samples)
            s += v;
        return s / static_cast<double>(samples.size());
    }

    /** Sum of all samples. */
    double
    sum() const
    {
        double s = 0.0;
        for (double v : samples)
            s += v;
        return s;
    }

    /**
     * The @p p percentile (p in [0,100]) using nearest-rank, or 0 with
     * no samples. p=90 gives the "90th %" columns of the paper's
     * Table 3.
     */
    double
    percentile(double p) const
    {
        if (samples.empty())
            return 0.0;
        const double rank = p / 100.0 *
            static_cast<double>(samples.size() - 1);
        auto idx = static_cast<std::size_t>(rank + 0.5);
        if (idx >= samples.size())
            idx = samples.size() - 1;
        ensureSorted();
        return sorted[idx];
    }

    /** Largest sample, or 0 with no samples. */
    double
    max() const
    {
        if (samples.empty())
            return 0.0;
        return *std::max_element(samples.begin(), samples.end());
    }

    /** Smallest sample, or 0 with no samples. */
    double
    min() const
    {
        if (samples.empty())
            return 0.0;
        return *std::min_element(samples.begin(), samples.end());
    }

    /** Population standard deviation, or 0 with < 2 samples. */
    double
    stddev() const
    {
        if (samples.size() < 2)
            return 0.0;
        const double m = mean();
        double acc = 0.0;
        for (double v : samples) {
            const double d = v - m;
            acc += d * d;
        }
        return std::sqrt(acc / static_cast<double>(samples.size()));
    }

    /** Discard all samples. */
    void
    reset()
    {
        samples.clear();
        sorted.clear();
        sortedValid = false;
    }

    /** Merge all samples of @p other into this distribution. */
    void
    merge(const Distribution &other)
    {
        samples.insert(samples.end(), other.samples.begin(),
                       other.samples.end());
        sortedValid = false;
    }

  private:
    void
    ensureSorted() const
    {
        if (sortedValid)
            return;
        sorted = samples;
        std::sort(sorted.begin(), sorted.end());
        sortedValid = true;
    }

    std::vector<double> samples;
    /** percentile() cache; rebuilt lazily after any mutation. */
    mutable std::vector<double> sorted;
    mutable bool sortedValid = false;
};

} // namespace tcc

#endif // TCC_SIM_STATS_HH
