#include "sim/domain.hh"

#include <algorithm>

#include "common/log.hh"

namespace tcc {

namespace {

/** Smallest near-square grid that holds @p n nodes (must match
 *  MeshNetwork's construction-time choice, noc/network.cc). */
std::uint32_t
gridSideOf(std::uint32_t n)
{
    std::uint32_t c = 1;
    while (c * c < n)
        ++c;
    return c;
}

enum Dir : unsigned { East = 0, West = 1, North = 2, South = 3 };

/** Decorrelate one seeded stream per domain. */
std::uint64_t
domainSeed(std::uint64_t seed, std::uint32_t domain)
{
    return seed + 0x9E3779B97F4A7C15ull * (domain + 1);
}

} // namespace

PdesPlan
computePdesPlan(std::uint32_t num_procs, std::uint32_t requested_domains,
                Tick window_override, bool mesh_based,
                const MeshConfig &mesh, Tick ideal_latency)
{
    PdesPlan plan;
    plan.meshBased = mesh_based;
    std::uint32_t d = std::max<std::uint32_t>(1, requested_domains);
    if (mesh_based) {
        const std::uint32_t cols = gridSideOf(num_procs);
        const std::uint32_t rows = (num_procs + cols - 1) / cols;
        plan.gridCols = cols;
        plan.gridRows = rows;
        d = std::min(d, rows);
        plan.rowDomain.assign(rows, 0);
        for (std::uint32_t i = 0; i < d; ++i) {
            const std::uint32_t r0 = i * rows / d;
            const std::uint32_t r1 = (i + 1) * rows / d;
            for (std::uint32_t r = r0; r < r1; ++r)
                plan.rowDomain[r] = i;
            const NodeId first = r0 * cols;
            const NodeId end =
                std::min<NodeId>(r1 * cols, num_procs);
            plan.domains.push_back(DomainSpec{i, first, end - first});
        }
        // Minimum cross-domain latency: one link crossing at least -
        // router in, >= 1 cycle serialization, the hop, router out.
        plan.lookahead = 2 * mesh.routerDelay + mesh.hopLatency + 1;
    } else {
        d = std::min(d, num_procs);
        for (std::uint32_t i = 0; i < d; ++i) {
            const NodeId first = i * num_procs / d;
            const NodeId end = (i + 1) * num_procs / d;
            plan.domains.push_back(DomainSpec{i, first, end - first});
        }
        plan.lookahead = std::max<Tick>(1, ideal_latency);
    }
    if (window_override != 0 && window_override < plan.lookahead)
        plan.lookahead = window_override;
    plan.nodeDomain.assign(num_procs, 0);
    for (const DomainSpec &s : plan.domains) {
        for (NodeId n = s.firstNode; n < s.firstNode + s.numNodes; ++n)
            plan.nodeDomain[n] = s.id;
    }
    return plan;
}

DomainNet::DomainNet(EventQueue &eq_, std::uint32_t num_nodes,
                     const DomainSpec &spec_, const PdesPlan &plan_,
                     const DomainNetConfig &cfg, Arena *arena)
    : Network(eq_, num_nodes, arena), outbox(plan_.domains.size()),
      spec(spec_), plan(plan_), config(cfg),
      jitterRng(domainSeed(cfg.mesh.seed, spec_.id)),
      chaosRng(domainSeed(cfg.chaosCfg.seed, spec_.id)),
      dupPool(arena)
{
    if (config.meshBased) {
        if (config.mesh.linkBytesPerCycle == 0)
            fatal("mesh linkBytesPerCycle must be nonzero");
        linkFree.assign(static_cast<std::size_t>(plan.gridCols) *
                            plan.gridRows * 4,
                        0);
    }
}

void
DomainNet::send(Message msg)
{
    if (msg.src >= numNodes() || msg.dst >= numNodes())
        panic("domain send with bad endpoint %u->%u", msg.src, msg.dst);
    if (config.chaos && config.chaosCfg.duplicateProb > 0.0 &&
        chaosDuplicable(msg.type) &&
        chaosRng.chance(config.chaosCfg.duplicateProb)) {
        // The copy re-routes duplicateLag cycles later with fresh
        // draws, so it and the original contend and jitter
        // independently (mirrors ChaosNetwork::send).
        Message *slot = dupPool.alloc(msg);
        eventq.schedule(config.chaosCfg.duplicateLag, [this, slot]() {
            route(*slot);
            dupPool.free(slot);
        });
    }
    route(std::move(msg));
}

void
DomainNet::route(Message msg)
{
    unsigned hops = 1;
    Tick delay;
    if (config.meshBased)
        delay = meshDelay(msg, hops);
    else
        delay = config.idealLatency;
    if (config.chaos)
        delay += chaosExtra();
    const std::uint32_t dst_dom = plan.nodeDomain[msg.dst];
    if (dst_dom == spec.id) {
        deliver(std::move(msg), delay, hops);
        return;
    }
    accountSend(msg, hops);
    ++crossCount;
    auto &box = outbox[dst_dom];
    if (box.empty())
        dirtyDests.push_back(dst_dom);
    box.push_back(Parcel{std::move(msg), eventq.now() + delay});
}

Tick
DomainNet::meshDelay(const Message &msg, unsigned &hops)
{
    const Tick arrive =
        meshArrival(msg.src, msg.dst, msg.bytes, eventq.now(), hops);
    Tick delay = arrive - eventq.now();
    if (hops != 0 && config.mesh.reorderJitter > 0)
        delay += jitterRng.below(config.mesh.reorderJitter + 1);
    return delay;
}

Tick
DomainNet::meshArrival(NodeId from, NodeId to, std::uint32_t bytes,
                       Tick start, unsigned &hops)
{
    hops = 0;
    if (from == to)
        return start + 1; // local loopback: one-cycle turnaround

    const MeshConfig &m = config.mesh;
    const Tick ser = std::max<Tick>(
        1, (bytes + m.linkBytesPerCycle - 1) / m.linkBytesPerCycle);

    // Walk the XY route exactly as MeshNetwork does, except that only
    // links owned by this domain (by source grid row) model contention
    // through linkFree; foreign links contribute the uncontended
    // crossing cost without touching shared state.
    Tick t = start + m.routerDelay;
    int x = static_cast<int>(from % plan.gridCols);
    int y = static_cast<int>(from / plan.gridCols);
    const int dx = static_cast<int>(to % plan.gridCols);
    const int dy = static_cast<int>(to / plan.gridCols);
    NodeId cur = from;

    auto cross = [&](unsigned dir, NodeId next) {
        if (plan.rowDomain[cur / plan.gridCols] == spec.id) {
            const std::size_t li =
                static_cast<std::size_t>(cur) * 4 + dir;
            const Tick depart = std::max(t, linkFree[li]);
            linkFree[li] = depart + ser;
            t = depart + ser + m.hopLatency + m.routerDelay;
        } else {
            t += ser + m.hopLatency + m.routerDelay;
        }
        cur = next;
        ++hops;
    };

    while (x != dx) {
        if (x < dx) {
            cross(East, cur + 1);
            ++x;
        } else {
            cross(West, cur - 1);
            --x;
        }
    }
    while (y != dy) {
        if (y < dy) {
            cross(South, cur + plan.gridCols);
            ++y;
        } else {
            cross(North, cur - plan.gridCols);
            --y;
        }
    }
    return t;
}

MulticastReceipt
DomainNet::doMulticast(const Message &proto,
                       std::span<const NodeId> dsts)
{
    // The tree engages only on a plain mesh (validate() rejects it
    // combined with chaos or an ideal base), and only past the
    // destination-count threshold.
    if (mcastCfg.topology != MulticastConfig::Topology::Tree ||
        !config.meshBased || config.chaos ||
        dsts.size() < mcastCfg.minDests) {
        return Network::doMulticast(proto, dsts);
    }

    // Same k-ary layout and one-pass schedule as
    // MeshNetwork::doMulticast (see that function and DESIGN.md sec.
    // 12); the only difference is each copy's disposition: own-domain
    // destinations deliver through this domain's queue, cross-domain
    // destinations park in the mailbox with their final arrival tick.
    const std::uint32_t k = std::max<std::uint32_t>(2, mcastCfg.fanout);
    const std::size_t n = dsts.size();
    const MeshConfig &m = config.mesh;
    const Tick ser = std::max<Tick>(
        1, (proto.bytes + m.linkBytesPerCycle - 1) /
               m.linkBytesPerCycle);

    mcArrival.assign(n, 0);
    mcNicFree.assign(n + 1, 0); // slot 0 = source, i+1 = dsts[i]
    mcNicPath.assign(n, 0);
    mcDepth.assign(n, 0);

    MulticastReceipt r;
    r.dests = static_cast<std::uint32_t>(n);
    const Tick now = eventq.now();
    for (std::size_t i = 0; i < n; ++i) {
        const bool root = i < k;
        const std::size_t pi = root ? 0 : i / k - 1;
        const NodeId parent = root ? proto.src : dsts[pi];
        const Tick ready = root ? now : mcArrival[pi] + m.routerDelay;
        const std::size_t slot = root ? 0 : pi + 1;
        const Tick inject = std::max(ready, mcNicFree[slot]);
        mcNicFree[slot] = inject + ser;
        unsigned hops = 0;
        const Tick arrive =
            meshArrival(parent, dsts[i], proto.bytes, inject, hops);
        mcArrival[i] = arrive;
        const std::uint32_t rank = static_cast<std::uint32_t>(
            root ? i : i - (pi + 1) * k);
        mcNicPath[i] = (root ? 0 : mcNicPath[pi]) + rank + 1;
        mcDepth[i] = (root ? 0 : mcDepth[pi]) + 1;
        if (mcNicPath[i] > r.nicSerialized)
            r.nicSerialized = mcNicPath[i];
        if (mcDepth[i] > r.depth)
            r.depth = mcDepth[i];

        Message copy = proto;
        copy.dst = dsts[i];
        Tick delay = arrive - now;
        if (hops != 0 && m.reorderJitter > 0)
            delay += jitterRng.below(m.reorderJitter + 1);
        const std::uint32_t dst_dom = plan.nodeDomain[copy.dst];
        if (dst_dom == spec.id) {
            deliver(std::move(copy), delay, hops);
            continue;
        }
        accountSend(copy, hops);
        ++crossCount;
        auto &box = outbox[dst_dom];
        if (box.empty())
            dirtyDests.push_back(dst_dom);
        box.push_back(Parcel{std::move(copy), now + delay});
    }
    return r;
}

Tick
DomainNet::chaosExtra()
{
    const ChaosConfig &c = config.chaosCfg;
    Tick extra = c.jitter != 0 ? chaosRng.below(c.jitter + 1) : 0;
    if (c.reorderProb > 0.0 && chaosRng.chance(c.reorderProb)) {
        if (c.reorderWindow != 0)
            extra += chaosRng.below(c.reorderWindow + 1);
    }
    return extra;
}

WindowCrew::WindowCrew(unsigned jobs, std::function<void(unsigned)> body)
    : n(jobs == 0 ? 1 : jobs), work(std::move(body))
{
    if (n == 1)
        return;
    threads.reserve(n);
    for (unsigned w = 0; w < n; ++w) {
        threads.emplace_back([this, w]() {
            std::uint64_t seen = 0;
            for (;;) {
                {
                    std::unique_lock<std::mutex> lk(mtx);
                    cvStart.wait(lk, [&]() {
                        return stopping || gen != seen;
                    });
                    if (stopping)
                        return;
                    seen = gen;
                }
                try {
                    work(w);
                } catch (...) {
                    std::lock_guard<std::mutex> lk(mtx);
                    if (!firstError)
                        firstError = std::current_exception();
                }
                {
                    std::lock_guard<std::mutex> lk(mtx);
                    if (--running == 0)
                        cvDone.notify_one();
                }
            }
        });
    }
}

WindowCrew::~WindowCrew()
{
    if (n == 1)
        return;
    {
        std::lock_guard<std::mutex> lk(mtx);
        stopping = true;
    }
    cvStart.notify_all();
    for (std::thread &t : threads)
        t.join();
}

void
WindowCrew::runPhase()
{
    if (n == 1) {
        work(0);
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mtx);
        ++gen;
        running = n;
    }
    cvStart.notify_all();
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lk(mtx);
        cvDone.wait(lk, [&]() { return running == 0; });
        err = firstError;
        firstError = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

Tick
PdesState::earliestEvent() const
{
    Tick next = kTickMax;
    for (const auto &d : domains)
        next = std::min(next, d->eq.nextWhen());
    return next;
}

void
PdesState::initPulse()
{
    pulse.assign(domains.size(), DomainPulse{});
    for (std::size_t i = 0; i < domains.size(); ++i) {
        const PdesDomain &d = *domains[i];
        DomainPulse pu;
        pu.next = d.eq.nextWhen();
        if (d.net->hasParcels())
            pu.flags |= kPulseParcels;
        if (!d.storeLog.empty())
            pu.flags |= kPulseStore;
        if (!d.barrierArrivals.empty() || d.newlyDone != 0 ||
            (d.checker && d.checker->failed()))
            pu.flags |= kPulseSync;
        pulse[i] = pu;
    }
}

std::uint64_t
PdesState::flushMailboxes(Tick window_end)
{
    std::uint64_t moved = 0;
    for (std::size_t s = 0; s < domains.size(); ++s) {
        if ((pulse[s].flags & kPulseParcels) == 0)
            continue;
        DomainNet &net = *domains[s]->net;
        // First-park order -> canonical ascending destination order,
        // so delivery (and the FIFO sequence numbers it assigns)
        // matches a full (src, dst) scan exactly.
        std::sort(net.dirtyDests.begin(), net.dirtyDests.end());
        for (std::uint32_t t : net.dirtyDests) {
            auto &box = net.outbox[t];
            DomainNet &dst = *domains[t]->net;
            Tick first = kTickMax;
            for (DomainNet::Parcel &p : box) {
                if (p.when < window_end) {
                    panic("PDES lookahead violated: cross-domain "
                          "message %u->%u arrives at %llu inside the "
                          "window ending at %llu",
                          p.msg.src, p.msg.dst,
                          (unsigned long long)p.when,
                          (unsigned long long)window_end);
                }
                first = std::min(first, p.when);
                dst.deliverAt(std::move(p.msg), p.when);
                ++moved;
            }
            box.clear();
            pulse[t].next = std::min(pulse[t].next, first);
        }
        net.dirtyDests.clear();
    }
    return moved;
}

void
PdesState::applyStoreLogs()
{
    // Gather the domains that logged writes (per the pulse flags, so
    // clean domains are never touched).
    std::size_t first_src = 0;
    std::uint32_t nsrc = 0;
    for (std::size_t s = 0; s < domains.size(); ++s) {
        if ((pulse[s].flags & kPulseStore) == 0)
            continue;
        if (nsrc == 0)
            first_src = s;
        ++nsrc;
    }
    if (nsrc == 0)
        return;
    if (nsrc == 1) {
        // One writer: its log is already in (tick, log order).
        GlobalStore::WriteLog &log = domains[first_src]->storeLog;
        for (auto &dst : domains) {
            for (const GlobalStore::WriteRec &w : log)
                dst->store.apply(w.addr, w.value);
        }
        log.clear();
        return;
    }
    // Several writers: k-way merge by (tick, domain id, log order).
    // Each domain's log is tick-sorted (its clock never runs
    // backwards), so a pointer-per-log merge suffices.
    mergeScratch.clear();
    std::vector<std::size_t> at(domains.size(), 0);
    for (;;) {
        std::size_t pick = domains.size();
        Tick best = kTickMax;
        for (std::size_t s = 0; s < domains.size(); ++s) {
            if ((pulse[s].flags & kPulseStore) == 0)
                continue;
            const GlobalStore::WriteLog &log = domains[s]->storeLog;
            if (at[s] >= log.size())
                continue;
            const Tick t = log[at[s]].tick;
            // Strict < keeps equal ticks in domain-id order.
            if (pick == domains.size() || t < best) {
                pick = s;
                best = t;
            }
        }
        if (pick == domains.size())
            break;
        mergeScratch.push_back(domains[pick]->storeLog[at[pick]++]);
    }
    for (auto &dst : domains) {
        for (const GlobalStore::WriteRec &w : mergeScratch)
            dst->store.apply(w.addr, w.value);
    }
    for (std::size_t s = 0; s < domains.size(); ++s) {
        if (pulse[s].flags & kPulseStore)
            domains[s]->storeLog.clear();
    }
}

void
PdesState::mergeTraces(TraceRecorder &into) const
{
    std::vector<std::size_t> idx(domains.size(), 0);
    for (;;) {
        std::size_t pick = domains.size();
        Tick best = kTickMax;
        for (std::size_t d = 0; d < domains.size(); ++d) {
            const TraceRecorder &ring = domains[d]->tracer;
            if (idx[d] >= ring.size())
                continue;
            const Tick tick = ring.at(idx[d]).tick;
            // Strict < keeps equal ticks in domain-id order.
            if (pick == domains.size() || tick < best) {
                pick = d;
                best = tick;
            }
        }
        if (pick == domains.size())
            break;
        into.pushRaw(domains[pick]->tracer.at(idx[pick]++));
    }
}

} // namespace tcc
