/**
 * @file
 * Discrete-event simulation kernel. A single EventQueue drives the whole
 * simulated machine: processors, directories, network links, and memory
 * controllers all schedule callbacks on it.
 *
 * Determinism: events scheduled for the same tick fire in the order they
 * were scheduled (FIFO tie-break via a monotonically increasing sequence
 * number), so a simulation is exactly reproducible for a given seed.
 */

#ifndef TCC_SIM_EVENT_QUEUE_HH
#define TCC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace tcc {

/**
 * The central event queue.
 *
 * Components schedule std::function callbacks at absolute or relative
 * ticks. The queue never runs backwards; scheduling in the past is a
 * simulator bug (panic).
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in cycles. */
    Tick now() const { return curTick; }

    /** Schedule @p fn to run @p delay cycles from now. */
    void
    schedule(Tick delay, std::function<void()> fn)
    {
        scheduleAt(curTick + delay, std::move(fn));
    }

    /** Schedule @p fn to run at absolute tick @p when. */
    void
    scheduleAt(Tick when, std::function<void()> fn)
    {
        if (when < curTick)
            panic("event scheduled in the past (%llu < %llu)",
                  (unsigned long long)when, (unsigned long long)curTick);
        heap.push(Entry{when, nextSeq++, std::move(fn)});
    }

    /** @return true iff no events remain. */
    bool empty() const { return heap.empty(); }

    /** Number of pending events (diagnostics). */
    std::size_t pending() const { return heap.size(); }

    /**
     * Run the earliest event, advancing time to it.
     * @return false if the queue was empty.
     */
    bool
    step()
    {
        if (heap.empty())
            return false;
        // Move the entry out before popping so the callback may schedule.
        Entry e = std::move(const_cast<Entry &>(heap.top()));
        heap.pop();
        curTick = e.when;
        e.fn();
        ++executedEvents;
        return true;
    }

    /**
     * Run events until the queue drains or time would pass @p limit.
     * Events at exactly @p limit still execute.
     * @return number of events executed.
     */
    std::uint64_t
    runUntil(Tick limit)
    {
        std::uint64_t n = 0;
        while (!heap.empty() && heap.top().when <= limit) {
            step();
            ++n;
        }
        if (curTick < limit && heap.empty())
            curTick = limit;
        return n;
    }

    /** Run until the queue is completely drained. */
    std::uint64_t
    run()
    {
        std::uint64_t n = 0;
        while (step())
            ++n;
        return n;
    }

    /** Total events executed so far (diagnostics / tests). */
    std::uint64_t executed() const { return executedEvents; }

  private:
    struct Entry {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executedEvents = 0;
};

} // namespace tcc

#endif // TCC_SIM_EVENT_QUEUE_HH
