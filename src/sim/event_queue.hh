/**
 * @file
 * Discrete-event simulation kernel. A single EventQueue drives the whole
 * simulated machine: processors, directories, network links, and memory
 * controllers all schedule callbacks on it.
 *
 * Determinism: events scheduled for the same tick fire in the order they
 * were scheduled (FIFO tie-break via a monotonically increasing sequence
 * number), so a simulation is exactly reproducible for a given seed.
 *
 * Implementation: a two-level calendar queue tuned for the simulator's
 * event-density profile (almost every delay is under a few hundred
 * cycles):
 *
 *  - The near level is a timing wheel of kWheelSize per-tick FIFO
 *    buckets covering the sliding window [windowStart, windowStart +
 *    kWheelSize). Any delay below kWheelSize lands here. The earliest
 *    bucket is found by scanning a 256-bit occupancy bitmap rotated to
 *    the window cursor - a handful of word operations, no comparisons
 *    against other events.
 *  - Events beyond the window go to a far-future overflow heap ordered
 *    by (when, seq). Whenever the window slides forward (time advances
 *    to the next event, or past the whole window), newly covered
 *    overflow events migrate into their wheel buckets in (when, seq)
 *    order before anything else can enter those buckets, preserving
 *    the FIFO guarantee.
 *
 * Event nodes are recycled through an intrusive free list and carry an
 * InlineFunction callback (captures <= 48 bytes stored in place), so
 * the steady state performs no heap allocation: memory is only
 * allocated when the number of simultaneously pending events exceeds
 * every previous high-water mark.
 */

#ifndef TCC_SIM_EVENT_QUEUE_HH
#define TCC_SIM_EVENT_QUEUE_HH

#include <bit>
#include <cstdint>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <vector>

#include "common/arena.hh"
#include "common/log.hh"
#include "common/types.hh"
#include "sim/inline_function.hh"

namespace tcc {

/**
 * The central event queue.
 *
 * Components schedule callbacks at absolute or relative ticks. The
 * queue never runs backwards; scheduling in the past is a simulator
 * bug (panic).
 */
class EventQueue
{
  public:
    /** Event callback: inline up to 48 bytes of capture. */
    using Callback = InlineFunction<48>;

    // The whole point of Callback is that popping an event moves it -
    // a copying pop would silently reintroduce per-event allocations.
    static_assert(!std::is_copy_constructible_v<Callback> &&
                      !std::is_copy_assignable_v<Callback>,
                  "event callbacks must be move-only");

    /** @param arena node slabs come from here (nullptr = heap). */
    explicit EventQueue(Arena *arena = nullptr) : nodeArena(arena) {}
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue()
    {
        // Arena-backed slabs were placement-new'd into raw memory; run
        // the node destructors (a pending InlineFunction may own
        // out-of-line state). The arena reclaims the bytes itself.
        for (Node *slab : arenaSlabs) {
            for (std::size_t i = 0; i < kSlabNodes; ++i)
                slab[i].~Node();
        }
    }

    /** Current simulated time in cycles. */
    Tick now() const { return curTick; }

    /** Stable pointer to the current tick, valid for the queue's
     *  lifetime. Lets low layers (e.g. the functional store's
     *  write-log clock) read the time without depending on this
     *  header. */
    const Tick *nowRef() const { return &curTick; }

    /** Schedule @p fn to run @p delay cycles from now. */
    void
    schedule(Tick delay, Callback fn)
    {
        scheduleAt(curTick + delay, std::move(fn));
    }

    /** Schedule @p fn to run at absolute tick @p when. */
    void
    scheduleAt(Tick when, Callback fn)
    {
        if (when < curTick)
            panic("event scheduled in the past (%llu < %llu)",
                  (unsigned long long)when, (unsigned long long)curTick);
        Node *n = allocNode();
        n->when = when;
        n->seq = nextSeq++;
        n->next = nullptr;
        n->fn = std::move(fn);
        if (when - windowStart < kWheelSize)
            pushBucket(n);
        else
            overflow.push(n);
    }

    /** @return true iff no events remain. */
    bool empty() const { return wheelCount == 0 && overflow.empty(); }

    /** Number of pending events (diagnostics). */
    std::size_t pending() const { return wheelCount + overflow.size(); }

    /**
     * Run the earliest event, advancing time to it.
     * @return false if the queue was empty.
     */
    bool
    step()
    {
        Node *n = popEarliest();
        if (!n)
            return false;
        curTick = n->when;
        // Slide the window up to now *before* running the callback:
        // newly covered overflow events enter their buckets first, so
        // a callback scheduling at the same tick still queues behind
        // them (FIFO by sequence number).
        if (windowStart < curTick) {
            windowStart = curTick;
            migrateOverflow();
        }
        n->fn();
        ++executedEvents;
        freeNode(n);
        return true;
    }

    /**
     * Run events until the queue drains or time would pass @p limit.
     * Events at exactly @p limit still execute. On return, now() has
     * advanced to @p limit even when later events remain, so callers
     * that time-slice the simulation observe contiguous time.
     * @return number of events executed.
     */
    std::uint64_t
    runUntil(Tick limit)
    {
        std::uint64_t n = 0;
        while (nextWhen() <= limit) {
            step();
            ++n;
        }
        if (curTick < limit)
            curTick = limit;
        return n;
    }

    /** Run until the queue is completely drained. */
    std::uint64_t
    run()
    {
        std::uint64_t n = 0;
        while (step())
            ++n;
        return n;
    }

    /** Total events executed so far (diagnostics / tests). */
    std::uint64_t executed() const { return executedEvents; }

    /** Tick of the earliest pending event (kTickMax when empty). */
    Tick
    nextWhen() const
    {
        if (wheelCount != 0)
            return wheel[earliestBucket()].head->when;
        if (!overflow.empty())
            return overflow.top()->when;
        return kTickMax;
    }

    /** Event-node capacity high-water mark (allocation diagnostics). */
    std::size_t
    nodeCapacity() const
    {
        return (slabs.size() + arenaSlabs.size()) * kSlabNodes;
    }

  private:
    /// Per-tick buckets; covers a sliding kWheelSize-tick window.
    static constexpr std::size_t kWheelBits = 8;
    static constexpr std::size_t kWheelSize = std::size_t{1} << kWheelBits;
    static constexpr Tick kWheelMask = kWheelSize - 1;
    static constexpr std::size_t kWheelWords = kWheelSize / 64;
    static constexpr std::size_t kSlabNodes = 256;

    struct Node {
        Tick when = 0;
        std::uint64_t seq = 0;
        Node *next = nullptr; ///< bucket FIFO chain / free list
        Callback fn;
    };

    /** Per-tick FIFO bucket (intrusive singly-linked list). */
    struct Bucket {
        Node *head = nullptr;
        Node *tail = nullptr;
    };

    /** Overflow heap order: earliest (when, seq) on top. */
    struct Later {
        bool
        operator()(const Node *a, const Node *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            return a->seq > b->seq;
        }
    };

    Node *
    allocNode()
    {
        if (!freeList) {
            Node *slab;
            if (nodeArena) {
                void *raw = nodeArena->allocate(
                    sizeof(Node) * kSlabNodes, alignof(Node));
                slab = static_cast<Node *>(raw);
                for (std::size_t i = 0; i < kSlabNodes; ++i)
                    new (&slab[i]) Node();
                arenaSlabs.push_back(slab);
            } else {
                slabs.push_back(std::make_unique<Node[]>(kSlabNodes));
                slab = slabs.back().get();
            }
            for (std::size_t i = 0; i < kSlabNodes; ++i) {
                slab[i].next = freeList;
                freeList = &slab[i];
            }
        }
        Node *n = freeList;
        freeList = n->next;
        return n;
    }

    void
    freeNode(Node *n)
    {
        n->fn.reset(); // run the callable's destructor eagerly
        n->next = freeList;
        freeList = n;
    }

    void
    pushBucket(Node *n)
    {
        const std::size_t idx = n->when & kWheelMask;
        Bucket &b = wheel[idx];
        if (b.tail)
            b.tail->next = n;
        else
            b.head = n;
        b.tail = n;
        occupied[idx >> 6] |= std::uint64_t{1} << (idx & 63);
        ++wheelCount;
    }

    /**
     * Move every overflow event now covered by the window into its
     * wheel bucket. The heap pops in (when, seq) order and buckets
     * append at the tail, so same-tick FIFO survives migration.
     */
    void
    migrateOverflow()
    {
        while (!overflow.empty() &&
               overflow.top()->when - windowStart < kWheelSize) {
            Node *n = overflow.top();
            overflow.pop();
            n->next = nullptr;
            pushBucket(n);
        }
    }

    /**
     * Index of the earliest non-empty bucket. Within the window the
     * rotated index (idx - windowStart) mod kWheelSize is monotonic in
     * `when`, so this scans the occupancy bitmap starting at the
     * window cursor and wrapping once. Pre: wheelCount != 0.
     */
    std::size_t
    earliestBucket() const
    {
        const std::size_t cw = (windowStart & kWheelMask) >> 6;
        const std::size_t cb = windowStart & 63;
        // Cursor word, bits at or after the cursor.
        std::uint64_t w = occupied[cw] & (~std::uint64_t{0} << cb);
        if (w)
            return cw * 64 + static_cast<std::size_t>(std::countr_zero(w));
        // Following words, wrapping; the cursor word's low bits come
        // last (they are one revolution ahead).
        for (std::size_t i = 1; i <= kWheelWords; ++i) {
            const std::size_t k = (cw + i) & (kWheelWords - 1);
            std::uint64_t ww = occupied[k];
            if (k == cw)
                ww &= ~(~std::uint64_t{0} << cb);
            if (ww) {
                return k * 64 +
                       static_cast<std::size_t>(std::countr_zero(ww));
            }
        }
        panic("event wheel count/bitmap out of sync");
    }

    /** Detach and return the earliest pending event, or nullptr. */
    Node *
    popEarliest()
    {
        if (wheelCount == 0) {
            if (overflow.empty())
                return nullptr;
            // Jump the window forward to the next far-future event.
            windowStart = overflow.top()->when;
            migrateOverflow();
        }
        const std::size_t idx = earliestBucket();
        Bucket &b = wheel[idx];
        Node *n = b.head;
        b.head = n->next;
        if (!b.head) {
            b.tail = nullptr;
            occupied[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
        }
        --wheelCount;
        return n;
    }

    Bucket wheel[kWheelSize];
    std::uint64_t occupied[kWheelWords] = {};
    std::size_t wheelCount = 0;
    /**
     * Start of the sliding window the wheel covers. Invariants: every
     * wheel event is in [windowStart, windowStart + kWheelSize); every
     * overflow event is at or beyond windowStart + kWheelSize;
     * windowStart <= the earliest pending event and never decreases.
     */
    Tick windowStart = 0;

    std::priority_queue<Node *, std::vector<Node *>, Later> overflow;

    /// Node storage: slabs own the nodes; freeList threads spares.
    /// With an arena, slabs live there instead (see allocNode).
    Arena *nodeArena = nullptr;
    std::vector<std::unique_ptr<Node[]>> slabs;
    std::vector<Node *> arenaSlabs;
    Node *freeList = nullptr;

    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executedEvents = 0;
};

} // namespace tcc

#endif // TCC_SIM_EVENT_QUEUE_HH
