/**
 * @file
 * InlineFunction: a move-only, small-buffer-optimized alternative to
 * std::function<void()> for the simulation hot path. Callables whose
 * captures fit the inline buffer (and are nothrow-move-constructible)
 * are stored in place, so scheduling an event performs no heap
 * allocation; larger callables transparently fall back to the heap.
 *
 * libstdc++'s std::function inlines only ~16 bytes of capture, which
 * means almost every simulator callback ([this, msg], [this, gen], ...)
 * allocates. The event queue's steady state must be allocation-free,
 * hence this type.
 */

#ifndef TCC_SIM_INLINE_FUNCTION_HH
#define TCC_SIM_INLINE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tcc {

/**
 * Move-only callable with @p Capacity bytes of inline storage.
 * Only the void() signature is supported (all simulator events are
 * nullary; results flow through captured state).
 */
template <std::size_t Capacity = 48>
class InlineFunction
{
    static_assert(Capacity >= sizeof(void *),
                  "buffer must at least hold a heap pointer");

  public:
    InlineFunction() noexcept = default;

    ~InlineFunction() { reset(); }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    InlineFunction(InlineFunction &&other) noexcept { moveFrom(other); }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    /** Wrap any callable object (lambda, std::function, ...). */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InlineFunction(F &&f)
    {
        emplace(std::forward<F>(f));
    }

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InlineFunction &
    operator=(F &&f)
    {
        reset();
        emplace(std::forward<F>(f));
        return *this;
    }

    /** Invoke. Undefined if empty (the event queue never stores an
     *  empty callback). */
    void operator()() { ops->invoke(storage); }

    explicit operator bool() const noexcept { return ops != nullptr; }

    /** Destroy the held callable, leaving the function empty. */
    void
    reset() noexcept
    {
        if (ops) {
            ops->destroy(storage);
            ops = nullptr;
        }
    }

    /** True iff the held callable lives in the inline buffer (tests /
     *  allocation-freedom assertions). */
    bool
    isInline() const noexcept
    {
        return ops != nullptr && ops->inlineStored;
    }

    static constexpr std::size_t capacity() { return Capacity; }

  private:
    struct Ops {
        void (*invoke)(void *);
        void (*destroy)(void *) noexcept;
        /** Move the callable from @p src storage into @p dst storage
         *  and destroy the source (trivial pointer copy when heap). */
        void (*relocate)(void *dst, void *src) noexcept;
        bool inlineStored;
    };

    template <typename Fn>
    static constexpr bool fitsInline =
        sizeof(Fn) <= Capacity &&
        alignof(Fn) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<Fn>;

    template <typename Fn>
    static const Ops *
    inlineOps()
    {
        static constexpr Ops ops = {
            [](void *s) { (*std::launder(reinterpret_cast<Fn *>(s)))(); },
            [](void *s) noexcept {
                std::launder(reinterpret_cast<Fn *>(s))->~Fn();
            },
            [](void *dst, void *src) noexcept {
                Fn *from = std::launder(reinterpret_cast<Fn *>(src));
                ::new (dst) Fn(std::move(*from));
                from->~Fn();
            },
            true,
        };
        return &ops;
    }

    template <typename Fn>
    static const Ops *
    heapOps()
    {
        static constexpr Ops ops = {
            [](void *s) { (**static_cast<Fn **>(s))(); },
            [](void *s) noexcept { delete *static_cast<Fn **>(s); },
            [](void *dst, void *src) noexcept {
                *static_cast<Fn **>(dst) = *static_cast<Fn **>(src);
            },
            false,
        };
        return &ops;
    }

    template <typename F>
    void
    emplace(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>) {
            ::new (static_cast<void *>(storage)) Fn(std::forward<F>(f));
            ops = inlineOps<Fn>();
        } else {
            *reinterpret_cast<Fn **>(storage) = new Fn(std::forward<F>(f));
            ops = heapOps<Fn>();
        }
    }

    void
    moveFrom(InlineFunction &other) noexcept
    {
        ops = other.ops;
        if (ops) {
            ops->relocate(storage, other.storage);
            other.ops = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage[Capacity];
    const Ops *ops = nullptr;
};

} // namespace tcc

#endif // TCC_SIM_INLINE_FUNCTION_HH
