#include "obs/tx_ledger.hh"

#include <algorithm>

#include "common/flat_map.hh"

namespace tcc {

namespace {

/** Folding state for one processor's in-flight transaction. */
struct NodeFold {
    bool open = false;
    Tick begin = 0;
    Tick commitStart = 0;
    std::uint32_t retries = 0;
    bool hasViolation = false;
    Addr violationAddr = 0;
    Tid violationWriter = kInvalidTid;
    std::uint64_t probeCount = 0;
    Tick probeRttTotal = 0;
    Tick probeRttMax = 0;
    Tick firstSkip = 0;
    Tick firstMark = 0;
    std::uint64_t dirsTouched = 0;
    std::uint64_t mcastEvents = 0;
    /** Outstanding probe send tick per target directory. */
    FlatMap<NodeId, Tick> probeSent;
    /** Violation causes across all attempts: address -> count.
     *  Cleared only when the transaction commits (resetTxn), not per
     *  attempt - retries keep accumulating their causes. */
    FlatMap<Addr, std::uint32_t> causeCounts;

    /** Reset attempt-scoped fields, keeping the retry/violation
     *  history that spans attempts. */
    void
    resetAttempt()
    {
        commitStart = 0;
        firstSkip = 0;
        firstMark = 0;
        dirsTouched = 0;
        mcastEvents = 0;
        probeSent.clear();
    }

    /** Reset everything after a commit finalizes the transaction. */
    void
    resetTxn()
    {
        open = false;
        begin = 0;
        retries = 0;
        hasViolation = false;
        violationAddr = 0;
        violationWriter = kInvalidTid;
        probeCount = 0;
        probeRttTotal = 0;
        probeRttMax = 0;
        causeCounts.clear();
        resetAttempt();
    }
};

} // namespace

std::vector<TxLedgerEntry>
buildTxLedger(const TraceRecorder &rec)
{
    std::vector<TxLedgerEntry> out;
    // Node-indexed fold state; nodes appear as they emit.
    std::vector<NodeFold> folds;
    auto fold = [&folds](NodeId n) -> NodeFold & {
        if (n >= folds.size())
            folds.resize(n + 1);
        return folds[n];
    };

    rec.forEach([&](const TraceEvent &e) {
        if (e.node == kInvalidNode)
            return;
        NodeFold &f = fold(e.node);
        switch (e.kind) {
          case TraceEventKind::TxBegin:
            // Each attempt restarts the clock: the ledger reports the
            // committing attempt's execution time (violated attempts
            // are summarized by the retry counter).
            f.open = true;
            f.begin = e.tick;
            f.resetAttempt();
            break;
          case TraceEventKind::CommitStart:
            f.commitStart = e.tick;
            break;
          case TraceEventKind::ProbeSend:
            f.probeSent[static_cast<NodeId>(e.arg0)] = e.tick;
            break;
          case TraceEventKind::ProbeReplyRecv: {
            auto it = f.probeSent.find(static_cast<NodeId>(e.arg0));
            if (it != f.probeSent.end()) {
                const Tick rtt = e.tick - it->second;
                ++f.probeCount;
                f.probeRttTotal += rtt;
                f.probeRttMax = std::max(f.probeRttMax, rtt);
                f.probeSent.erase(it);
            }
            break;
          }
          case TraceEventKind::SkipSend:
            if (f.firstSkip == 0)
                f.firstSkip = e.tick;
            break;
          case TraceEventKind::MarkSend:
            if (f.firstMark == 0)
                f.firstMark = e.tick;
            break;
          case TraceEventKind::CommitFanout:
            // Emitted just before TxCommit by both commit paths.
            f.dirsTouched = e.arg0;
            f.mcastEvents = e.arg1;
            break;
          case TraceEventKind::ViolationCause:
            f.hasViolation = true;
            f.violationAddr = e.arg0;
            f.violationWriter = e.tid;
            ++f.causeCounts[e.arg0];
            break;
          case TraceEventKind::TxViolation:
            ++f.retries;
            f.resetAttempt();
            break;
          case TraceEventKind::TxCommit: {
            TxLedgerEntry entry;
            entry.tid = e.tid;
            entry.node = e.node;
            entry.commitEndTick = e.tick;
            entry.commitStartTick =
                f.commitStart != 0 ? f.commitStart : e.tick;
            entry.beginTick =
                f.open ? f.begin : entry.commitStartTick;
            entry.retries = f.retries;
            entry.hasViolation = f.hasViolation;
            entry.violationAddr = f.violationAddr;
            entry.violationWriter = f.violationWriter;
            entry.probeCount = f.probeCount;
            entry.probeRttTotal = f.probeRttTotal;
            entry.probeRttMax = f.probeRttMax;
            entry.firstSkipTick = f.firstSkip;
            entry.firstMarkTick = f.firstMark;
            entry.directoriesTouched = f.dirsTouched;
            entry.multicastEvents = f.mcastEvents;
            entry.causes.reserve(f.causeCounts.size());
            for (const auto &kv : f.causeCounts)
                entry.causes.emplace_back(kv.first, kv.second);
            // FlatMap iterates in slot order; sort for determinism.
            std::sort(entry.causes.begin(), entry.causes.end());
            out.push_back(entry);
            f.resetTxn();
            break;
          }
          default:
            break; // directory / network events carry no ledger state
        }
    });
    return out;
}

} // namespace tcc
