/**
 * @file
 * Conflict attribution: a top-K hot-word table and an abort blame
 * graph, fed by the processor's invalidation path.
 *
 * A violation today tells you *that* a transaction died; this profiler
 * tells you *which word* and *which writer* keep killing the system -
 * the per-address attribution the ROADMAP's hot-key/Zipfian work and
 * the timestamp-granularity OCC comparison both need.
 *
 * Two structures:
 *  - Hot words: address -> {SR conflicts, SM conflicts, aborts caused,
 *    wasted cycles attributed}. Bounded at top-K entries with a
 *    deterministic space-saving policy: when full, the minimum-weight
 *    entry is evicted (weight = SR + SM conflicts; ties evict the
 *    larger address, so lower addresses win) and the newcomer starts
 *    fresh. Eviction count is reported so saturation is visible.
 *  - Blame edges: killer proc -> victim proc abort counts. The
 *    invalidation carries only the writer's TID (the ViolationCause
 *    plumbing), so edges are keyed by (writer TID, victim) at record
 *    time and resolved to the killer's node at export via an owner map
 *    populated from TID grants.
 *
 * Recording is pure observation (never touches sim state), so
 * fingerprints stay bit-identical with the profiler armed. Off
 * (TraceConfig::contentionTopK == 0) no profiler exists and the
 * processor's null-pointer gate costs one predictable branch per
 * invalidation - same discipline as TraceRecorder.
 *
 * Under PDES each domain owns a private instance touched only by its
 * own processors (TSan-clean); at finalize they merge into a
 * system-level instance in deterministic (domain id, ascending
 * address) order through the same bounded-insert path, so jobs=1 and
 * jobs=N produce identical tables.
 */

#ifndef TCC_OBS_CONTENTION_HH
#define TCC_OBS_CONTENTION_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/arena.hh"
#include "common/flat_map.hh"
#include "common/types.hh"

namespace tcc {

class ContentionProfiler
{
  public:
    struct WordStats {
        std::uint64_t srConflicts = 0; ///< speculatively-read overlaps
        std::uint64_t smConflicts = 0; ///< speculatively-modified overlaps
        std::uint64_t aborts = 0;      ///< violations this word caused
        std::uint64_t wasted = 0;      ///< cycles discarded by those aborts

        std::uint64_t weight() const { return srConflicts + smConflicts; }
    };

    struct HotWord {
        Addr addr;
        WordStats s;
    };

    struct Edge {
        NodeId killer; ///< kInvalidNode when the writer TID was never
                       ///< seen granted (e.g. truncated trace)
        NodeId victim;
        std::uint64_t count;
    };

    static constexpr std::size_t kDefaultTopK = 32;

    /** @param top_k  hot-word table bound (clamped to >= 1)
     *  @param arena  backing store for the maps (nullptr = heap) */
    explicit ContentionProfiler(std::size_t top_k, Arena *arena = nullptr);

    ContentionProfiler(const ContentionProfiler &) = delete;
    ContentionProfiler &operator=(const ContentionProfiler &) = delete;

    // --- recording (hot path, called from Processor) ------------------
    /** TID @p tid was granted to @p owner (from the TidAcquire site in
     *  onTidReply; every grant is unique system-wide). */
    void
    recordTidOwner(Tid tid, NodeId owner)
    {
        tidOwners[tid] = owner;
    }

    /**
     * An invalidation for @p addr from committer @p writer_tid overlapped
     * @p victim's speculative state. @p sr / @p sm say which set
     * overlapped; @p aborted is true when the overlap actually violated
     * the victim (SR overlap from an older TID), in which case
     * @p wasted_cycles is the work being discarded (attempt cycles +
     * restart penalty, the same quantity violate() charges).
     */
    void recordConflict(NodeId victim, Tid writer_tid, Addr addr, bool sr,
                        bool sm, bool aborted, std::uint64_t wasted_cycles);

    // --- PDES finalize merge -----------------------------------------
    /** Fold @p other into this profiler: hot words replayed in
     *  ascending-address order through the bounded-insert path, owner
     *  map and raw edges unioned. Call once per domain in domain-id
     *  order for a deterministic merged table. */
    void mergeFrom(const ContentionProfiler &other);

    // --- results ------------------------------------------------------
    std::size_t topK() const { return topK_; }
    std::uint64_t conflictsRecorded() const { return conflicts_; }
    std::uint64_t evictions() const { return evictions_; }

    /** Hot-word table sorted by weight descending, address ascending. */
    std::vector<HotWord> hotWords() const;

    /** Blame edges with killers resolved through the owner map, sorted
     *  by (killer, victim) ascending; unresolvable writers collapse
     *  into one kInvalidNode killer. */
    std::vector<Edge> blameEdges() const;

    /** Emit the blame graph as GraphViz DOT: one node per processor
     *  seen, one edge per killer->victim pair labeled with the abort
     *  count (and penwidth scaled by it). */
    void writeDot(std::ostream &os) const;

  private:
    void noteWord(Addr addr, const WordStats &delta);

    std::size_t topK_;
    FlatMap<Addr, WordStats> table;
    FlatMap<Tid, NodeId> tidOwners;
    /** (writer TID << 12 | victim node) -> abort count. Node ids fit
     *  in 12 bits (SystemConfig caps procs at 4096). */
    FlatMap<std::uint64_t, std::uint64_t> rawEdges;
    std::uint64_t conflicts_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace tcc

#endif // TCC_OBS_CONTENTION_HH
