/**
 * @file
 * Per-System structured protocol event recorder.
 *
 * An arena-backed, append-only binary ring of fixed-size TraceEvent
 * records: simulated tick, node, TID, event kind, and two payload
 * words. Emit sites are threaded through the processor's transaction
 * lifecycle and commit engine, the directory's NSTID machinery, and
 * the network's send/deliver path; every site is gated by the
 * existing Trace category flags (common/log.hh), so with tracing off
 * the total cost per site is one relaxed atomic load and one
 * predictably-not-taken branch - golden run fingerprints are
 * bit-identical whether the recorder exists or not, because
 * recording is purely observational (it never schedules events or
 * touches simulated state).
 *
 * On top of the raw ring sit three consumers:
 *   - obs/chrome_trace.hh: Perfetto/Chrome trace_event JSON export;
 *   - obs/tx_ledger.hh: per-transaction lifecycle ledger;
 *   - core/stats_dump.cc: tx_ledger sections in the stats dump.
 *
 * Thread confinement: a recorder belongs to one System and inherits
 * its confinement invariant (DESIGN.md section 7) - concurrent sweep
 * workers each append to their own ring, sharing only the global
 * Trace flags (atomics).
 */

#ifndef TCC_OBS_TRACE_RECORDER_HH
#define TCC_OBS_TRACE_RECORDER_HH

#include <cstddef>
#include <cstdint>

#include "common/arena.hh"
#include "common/log.hh"
#include "common/types.hh"
#include "sim/event_queue.hh"

namespace tcc {

/**
 * What happened. Payload word meanings are per-kind (documented
 * inline); unused words are zero.
 */
enum class TraceEventKind : std::uint16_t {
    // --- processor: transaction lifecycle (TraceCat::Proc) ----------
    TxBegin = 0,   ///< attempt starts; a0 = consecutive prior
                   ///< violations, a1 = ops in the transaction
    TxViolation,   ///< rollback; a0 = consecutive violations (incl.
                   ///< this one), tid = held TID (may be invalid)
    ViolationCause,///< conflicting invalidation; a0 = line address,
                   ///< tid = the *writer's* TID
    SoloDrain,     ///< solo-mode write-set drain; a0 = batches sent

    // --- processor: commit engine (TraceCat::Commit) ----------------
    TidAcquire,    ///< TID granted; tid = the acquired TID
    ProbeSend,     ///< a0 = target directory, a1 = wantWrite
    ProbeReplyRecv,///< a0 = replying directory, a1 = observed NSTID
    SkipSend,      ///< a0 = target directory
    MarkSend,      ///< a0 = target directory, a1 = lines marked
    CommitStart,   ///< commit phase entered; a0 = writing dirs,
                   ///< a1 = sharing-only dirs
    TxCommit,      ///< validated + published; a0 = words read,
                   ///< a1 = words written

    // --- directory (TraceCat::Dir) -----------------------------------
    DirSkip,        ///< skip received; tid = skipped TID, a0 = sender
    DirProbeDefer,  ///< probe deferred; tid = prober's TID,
                    ///< a0 = prober, a1 = wantWrite
    DirNstidAdvance,///< a0 = new NSTID, a1 = TIDs consumed from the
                    ///< skip window
    DirInvalidate,  ///< a0 = line address, a1 = invalidations sent,
                    ///< tid = committing TID

    // --- network (TraceCat::Net) -------------------------------------
    NetSend,    ///< node = src; a0 = address; a1 = packed route info
    NetDeliver, ///< node = dst; a0 = address; a1 = packed route info

    CommitFanout, ///< a0 = directories touched (write + share-only),
                  ///< a1 = NIC-serialized multicast events this attempt

    NumKinds,
};

/** Human-readable kind name (exporters, tests). */
const char *traceEventKindName(TraceEventKind k);

/** Pack (dst, opcode, traffic class, bytes) into a Net* payload word. */
inline std::uint64_t
packNetInfo(NodeId dst, std::uint8_t msg_type, std::uint8_t traffic_class,
            std::uint32_t bytes)
{
    return static_cast<std::uint64_t>(dst) |
           (static_cast<std::uint64_t>(msg_type) << 32) |
           (static_cast<std::uint64_t>(traffic_class) << 40) |
           (static_cast<std::uint64_t>(bytes & 0xffff) << 48);
}

inline NodeId
netInfoDst(std::uint64_t a1)
{
    return static_cast<NodeId>(a1 & 0xffffffffu);
}

inline std::uint8_t
netInfoType(std::uint64_t a1)
{
    return static_cast<std::uint8_t>(a1 >> 32);
}

inline std::uint8_t
netInfoClass(std::uint64_t a1)
{
    return static_cast<std::uint8_t>(a1 >> 40);
}

inline std::uint32_t
netInfoBytes(std::uint64_t a1)
{
    return static_cast<std::uint32_t>(a1 >> 48);
}

/** One fixed-size binary record in the ring. */
struct TraceEvent {
    Tick tick = 0;          ///< simulated cycle of the event
    std::uint64_t arg0 = 0; ///< first payload word (per-kind)
    std::uint64_t arg1 = 0; ///< second payload word (per-kind)
    Tid tid = kInvalidTid;  ///< transaction the event belongs to
    NodeId node = kInvalidNode; ///< emitting node
    TraceEventKind kind = TraceEventKind::NumKinds;
    std::uint16_t pad = 0;
};
static_assert(sizeof(TraceEvent) == 40,
              "TraceEvent must stay a fixed-size binary record");

/**
 * The per-System ring. Capacity is fixed at construction; when the
 * ring is full the oldest record is overwritten (captured() keeps
 * counting, so dropped() reports how much history was lost). Storage
 * is allocated from the System's arena lazily on the first emit, so
 * runs that never trace pay nothing.
 */
class TraceRecorder
{
  public:
    static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

    /**
     * @param eq       timestamps come from this queue's now()
     * @param arena    ring storage (nullptr = heap)
     * @param capacity ring size in events (clamped to >= 1)
     */
    TraceRecorder(const EventQueue &eq, Arena *arena,
                  std::size_t capacity = kDefaultCapacity);

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    ~TraceRecorder();

    /**
     * Unconditionally append one record (the gate lives in
     * traceEmit() below). Out-of-line: the hot path only ever inlines
     * the category check.
     */
    void push(TraceEventKind kind, NodeId node, Tid tid,
              std::uint64_t arg0, std::uint64_t arg1);

    /** Append a pre-built record verbatim, keeping its original tick
     *  (PDES merges per-domain rings into the System ring at finalize
     *  in canonical (tick, domain) order; see sim/domain.hh). */
    void pushRaw(const TraceEvent &src);

    /** Total events emitted, including any lost to ring wrap. */
    std::uint64_t captured() const { return total; }

    /** Events currently held (min(captured, capacity)). */
    std::size_t
    size() const
    {
        return total < cap ? static_cast<std::size_t>(total) : cap;
    }

    /** Ring capacity in events. */
    std::size_t capacity() const { return cap; }

    /** Events lost to ring wrap. */
    std::uint64_t
    dropped() const
    {
        return total > cap ? total - cap : 0;
    }

    /** The @p i-th stored event, oldest first (i in [0, size())). */
    const TraceEvent &
    at(std::size_t i) const
    {
        const std::size_t base =
            total > cap ? static_cast<std::size_t>(total % cap) : 0;
        std::size_t idx = base + i;
        if (idx >= cap)
            idx -= cap;
        return buf[idx];
    }

    /** Visit every stored event, oldest first. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        const std::size_t n = size();
        for (std::size_t i = 0; i < n; ++i)
            fn(at(i));
    }

    /** Forget everything recorded so far (storage is retained). */
    void
    clear()
    {
        total = 0;
    }

  private:
    const EventQueue &eventq;
    Arena *arena;
    TraceEvent *buf = nullptr; ///< lazily allocated ring storage
    std::size_t cap;
    std::uint64_t total = 0;   ///< events ever pushed
    bool heapStorage = false;  ///< buf came from ::operator new
};

/**
 * The one emit gate every instrumentation site goes through. With the
 * category off this is a single relaxed load and a predictable branch
 * - the null recorder check is only reached when tracing is on.
 */
inline void
traceEmit(TraceRecorder *rec, TraceCat cat, TraceEventKind kind,
          NodeId node, Tid tid, std::uint64_t arg0 = 0,
          std::uint64_t arg1 = 0)
{
    if (!Trace::on(cat)) [[likely]]
        return;
    if (rec != nullptr)
        rec->push(kind, node, tid, arg0, arg1);
}

} // namespace tcc

#endif // TCC_OBS_TRACE_RECORDER_HH
