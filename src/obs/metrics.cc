#include "obs/metrics.hh"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <ostream>

namespace tcc {

namespace {

/** First epoch boundary at or above tick 0, saturating at kTickMax. */
Tick
saturatingAdd(Tick a, Tick b)
{
    return a > kTickMax - b ? kTickMax : a + b;
}

} // namespace

MetricsSampler::MetricsSampler(Tick epoch_len, std::size_t capacity,
                               Arena *arena)
    : ring(ArenaAllocator<std::uint64_t>(arena)),
      epochLen(epoch_len < 1 ? 1 : epoch_len),
      epochEnd(epochLen),
      cap(capacity < 1 ? 1 : capacity)
{
}

void
MetricsSampler::addProbe(const char *name, Kind kind, Merge merge,
                         std::function<std::uint64_t()> fn)
{
    assert(total == 0 && "probes must be registered before sampling");
    probes.push_back(Probe{name, kind, merge, std::move(fn), 0});
}

int
MetricsSampler::probeIndex(const char *name) const
{
    for (std::size_t p = 0; p < probes.size(); ++p) {
        if (std::strcmp(probes[p].name, name) == 0)
            return static_cast<int>(p);
    }
    return -1;
}

void
MetricsSampler::closeEpoch()
{
    if (ring.empty())
        ring.resize(cap * probes.size(), 0);
    std::uint64_t *row =
        &ring[static_cast<std::size_t>(total % cap) * probes.size()];
    for (std::size_t p = 0; p < probes.size(); ++p) {
        Probe &pr = probes[p];
        const std::uint64_t cur = pr.fn();
        row[p] = pr.kind == Kind::Delta ? cur - pr.last : cur;
        pr.last = cur;
    }
    ++total;
}

void
MetricsSampler::closeUpTo(Tick next)
{
    // An empty queue reports kTickMax; the tail closes via finish().
    if (next == kTickMax)
        return;
    while (next >= epochEnd && epochEnd != kTickMax) {
        closeEpoch();
        epochEnd = saturatingAdd(epochEnd, epochLen);
    }
}

void
MetricsSampler::finish(Tick final_tick)
{
    if (finished)
        return;
    finished = true;
    closeUpTo(final_tick);
    // One final (possibly partial) epoch containing final_tick. Every
    // PDES domain finishes with the same tick, so all end up with the
    // same closed() count - the merge precondition.
    closeEpoch();
    epochEnd = saturatingAdd(epochEnd, epochLen);
}

void
MetricsSampler::adoptMerged(const std::vector<const MetricsSampler *> &parts)
{
    assert(!parts.empty());
    const std::size_t np = probes.size();
    total = parts[0]->total;
    finished = true;
    for (const MetricsSampler *part : parts) {
        assert(part->probes.size() == np && "schema mismatch");
        assert(part->total == total && "unequal epoch counts");
        (void)part;
    }
    const std::size_t nrows =
        total < cap ? static_cast<std::size_t>(total) : cap;
    ring.assign(cap * np, 0);
    // Write each merged row at the ring index at() will read it from
    // (rotated when the per-domain rings wrapped).
    const std::size_t base =
        total > cap ? static_cast<std::size_t>(total % cap) : 0;
    for (std::size_t r = 0; r < nrows; ++r) {
        std::size_t dst = base + r;
        if (dst >= cap)
            dst -= cap;
        std::uint64_t *row = &ring[dst * np];
        for (std::size_t p = 0; p < np; ++p) {
            std::uint64_t acc = parts[0]->at(r, p);
            for (std::size_t d = 1; d < parts.size(); ++d) {
                const std::uint64_t v = parts[d]->at(r, p);
                switch (probes[p].merge) {
                  case Merge::Sum:
                    acc += v;
                    break;
                  case Merge::Min:
                    acc = std::min(acc, v);
                    break;
                  case Merge::Max:
                    acc = std::max(acc, v);
                    break;
                }
            }
            row[p] = acc;
        }
    }
}

void
writeMetricsCsv(const MetricsSampler &m, std::ostream &os)
{
    const int issued = m.probeIndex("tids_issued");
    const int nstid = m.probeIndex("nstid_min");
    os << "epoch,start_tick";
    for (std::size_t p = 0; p < m.probeCount(); ++p)
        os << ',' << m.probeName(p);
    if (issued >= 0 && nstid >= 0)
        os << ",nstid_lag";
    os << '\n';
    const std::uint64_t first = m.firstEpoch();
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const std::uint64_t epoch = first + r;
        os << epoch << ',' << epoch * m.epochLength();
        for (std::size_t p = 0; p < m.probeCount(); ++p)
            os << ',' << m.at(r, p);
        if (issued >= 0 && nstid >= 0) {
            const std::uint64_t hi = m.at(r, static_cast<std::size_t>(issued));
            const std::uint64_t lo = m.at(r, static_cast<std::size_t>(nstid));
            os << ',' << (hi > lo ? hi - lo : 0);
        }
        os << '\n';
    }
}

} // namespace tcc
