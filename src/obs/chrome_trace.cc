#include "obs/chrome_trace.hh"

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "noc/message.hh"

namespace tcc {

namespace {

/// Synthetic Chrome "thread ids" for the non-processor tracks.
constexpr std::uint32_t kDirTidBase = 1000;
constexpr std::uint32_t kNetTid = 2000;

/// Stream one JSON event object, comma-separated from its predecessor.
class EventSink
{
  public:
    explicit EventSink(std::ostream &os_) : os(os_) {}

    void
    meta(std::uint32_t tid, const char *name)
    {
        sep();
        char line[192];
        std::snprintf(line, sizeof(line),
                      "{\"ph\":\"M\",\"pid\":0,\"tid\":%" PRIu32
                      ",\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                      tid, name);
        os << line;
    }

    /// Complete ("X") duration slice; args is a pre-built JSON object
    /// ("{...}") or empty for none.
    void
    slice(std::uint32_t tid, Tick ts, Tick dur, const std::string &name,
          const std::string &args)
    {
        sep();
        char line[160];
        std::snprintf(line, sizeof(line),
                      "{\"ph\":\"X\",\"pid\":0,\"tid\":%" PRIu32
                      ",\"ts\":%" PRIu64 ",\"dur\":%" PRIu64 ",\"name\":\"",
                      tid, ts, dur);
        os << line << name << '"';
        if (!args.empty())
            os << ",\"args\":" << args;
        os << '}';
    }

    /// Thread-scoped instant ("i") event.
    void
    instant(std::uint32_t tid, Tick ts, const char *name,
            const std::string &args)
    {
        sep();
        char line[160];
        std::snprintf(line, sizeof(line),
                      "{\"ph\":\"i\",\"pid\":0,\"tid\":%" PRIu32
                      ",\"ts\":%" PRIu64 ",\"s\":\"t\",\"name\":\"",
                      tid, ts);
        os << line << name << '"';
        if (!args.empty())
            os << ",\"args\":" << args;
        os << '}';
    }

  private:
    void
    sep()
    {
        if (any)
            os << ",\n";
        any = true;
    }

    std::ostream &os;
    bool any = false;
};

std::string
u64Arg(const char *key, std::uint64_t v)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64, key, v);
    return buf;
}

std::string
hexArg(const char *key, std::uint64_t v)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\":\"0x%" PRIx64 "\"", key, v);
    return buf;
}

std::string
wrapObj(std::initializer_list<std::string> fields)
{
    std::string out = "{";
    bool first = true;
    for (const std::string &f : fields) {
        if (!first)
            out += ',';
        first = false;
        out += f;
    }
    out += '}';
    return out;
}

/// Per-processor slice-building state.
struct ProcTrack {
    bool txOpen = false;      ///< a transaction slice is in progress
    Tick txBegin = 0;         ///< committing-attempt begin
    Tick attemptBegin = 0;    ///< current attempt begin
    bool inCommit = false;
    Tick commitBegin = 0;
    std::uint32_t retries = 0;
};

} // namespace

void
exportChromeTrace(const TraceRecorder &rec, std::uint32_t num_nodes,
                  std::ostream &os)
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    EventSink sink(os);

    for (std::uint32_t n = 0; n < num_nodes; ++n) {
        char name[32];
        std::snprintf(name, sizeof(name), "proc %" PRIu32, n);
        sink.meta(n, name);
        std::snprintf(name, sizeof(name), "dir %" PRIu32, n);
        sink.meta(kDirTidBase + n, name);
    }
    sink.meta(kNetTid, "net");

    std::vector<ProcTrack> tracks(num_nodes);
    auto track = [&tracks](NodeId n) -> ProcTrack * {
        if (n >= tracks.size())
            return nullptr;
        return &tracks[n];
    };

    rec.forEach([&](const TraceEvent &e) {
        switch (e.kind) {
          case TraceEventKind::TxBegin: {
            ProcTrack *t = track(e.node);
            if (t == nullptr)
                break;
            if (!t->txOpen) {
                t->txOpen = true;
                t->txBegin = e.tick;
                t->retries = 0;
            }
            t->attemptBegin = e.tick;
            t->inCommit = false;
            break;
          }
          case TraceEventKind::CommitStart: {
            ProcTrack *t = track(e.node);
            if (t == nullptr)
                break;
            if (t->txOpen && e.tick >= t->attemptBegin) {
                sink.slice(e.node, t->attemptBegin,
                           e.tick - t->attemptBegin, "exec", "");
            }
            t->inCommit = true;
            t->commitBegin = e.tick;
            break;
          }
          case TraceEventKind::TxCommit: {
            ProcTrack *t = track(e.node);
            if (t == nullptr)
                break;
            if (t->inCommit && e.tick >= t->commitBegin) {
                sink.slice(e.node, t->commitBegin,
                           e.tick - t->commitBegin, "commit", "");
            }
            const Tick begin = t->txOpen ? t->txBegin
                               : t->inCommit ? t->commitBegin
                                             : e.tick;
            char name[48];
            std::snprintf(name, sizeof(name), "tx %" PRIu64,
                          static_cast<std::uint64_t>(e.tid));
            sink.slice(e.node, begin, e.tick - begin, name,
                       wrapObj({u64Arg("retries", t->retries),
                                u64Arg("read_words", e.arg0),
                                u64Arg("write_words", e.arg1)}));
            *t = ProcTrack{};
            break;
          }
          case TraceEventKind::TxViolation: {
            ProcTrack *t = track(e.node);
            if (t != nullptr) {
                // The violated attempt's exec slice (commit slice too,
                // when it got that far) ends here.
                const Tick from = t->inCommit ? t->commitBegin
                                              : t->attemptBegin;
                if (t->txOpen && e.tick >= from) {
                    sink.slice(e.node, from, e.tick - from,
                               t->inCommit ? "commit (violated)"
                                           : "exec (violated)",
                               "");
                }
                t->inCommit = false;
                ++t->retries;
            }
            sink.instant(e.node, e.tick, "violation",
                         wrapObj({u64Arg("consecutive", e.arg0)}));
            break;
          }
          case TraceEventKind::ViolationCause:
            sink.instant(e.node, e.tick, "violation_cause",
                         wrapObj({hexArg("addr", e.arg0),
                                  u64Arg("writer_tid", e.tid)}));
            break;
          case TraceEventKind::SoloDrain:
            sink.instant(e.node, e.tick, "solo_drain",
                         wrapObj({u64Arg("batches", e.arg0)}));
            break;
          case TraceEventKind::TidAcquire:
            sink.instant(e.node, e.tick, "tid_acquire",
                         wrapObj({u64Arg("tid", e.tid)}));
            break;
          case TraceEventKind::ProbeSend:
            sink.instant(e.node, e.tick, "probe_send",
                         wrapObj({u64Arg("dir", e.arg0),
                                  u64Arg("want_write", e.arg1)}));
            break;
          case TraceEventKind::ProbeReplyRecv:
            sink.instant(e.node, e.tick, "probe_reply",
                         wrapObj({u64Arg("dir", e.arg0),
                                  u64Arg("nstid", e.arg1)}));
            break;
          case TraceEventKind::SkipSend:
            sink.instant(e.node, e.tick, "skip_send",
                         wrapObj({u64Arg("dir", e.arg0)}));
            break;
          case TraceEventKind::MarkSend:
            sink.instant(e.node, e.tick, "mark_send",
                         wrapObj({u64Arg("dir", e.arg0),
                                  u64Arg("lines", e.arg1)}));
            break;
          case TraceEventKind::DirSkip:
            sink.instant(kDirTidBase + e.node, e.tick, "skip",
                         wrapObj({u64Arg("tid", e.tid),
                                  u64Arg("from", e.arg0)}));
            break;
          case TraceEventKind::DirProbeDefer:
            sink.instant(kDirTidBase + e.node, e.tick, "probe_defer",
                         wrapObj({u64Arg("tid", e.tid),
                                  u64Arg("from", e.arg0)}));
            break;
          case TraceEventKind::DirNstidAdvance:
            sink.instant(kDirTidBase + e.node, e.tick, "nstid_advance",
                         wrapObj({u64Arg("nstid", e.arg0),
                                  u64Arg("consumed", e.arg1)}));
            break;
          case TraceEventKind::DirInvalidate:
            sink.instant(kDirTidBase + e.node, e.tick, "invalidate",
                         wrapObj({hexArg("addr", e.arg0),
                                  u64Arg("count", e.arg1),
                                  u64Arg("tid", e.tid)}));
            break;
          case TraceEventKind::NetSend:
          case TraceEventKind::NetDeliver: {
            const bool send = e.kind == TraceEventKind::NetSend;
            const auto type =
                static_cast<MsgType>(netInfoType(e.arg1));
            char name[64];
            std::snprintf(name, sizeof(name), "%s %s",
                          send ? "send" : "deliver", msgTypeName(type));
            sink.instant(kNetTid, e.tick, name,
                         wrapObj({u64Arg(send ? "src" : "dst",
                                         e.node),
                                  u64Arg(send ? "dst" : "src",
                                         netInfoDst(e.arg1)),
                                  hexArg("addr", e.arg0),
                                  u64Arg("bytes", netInfoBytes(e.arg1)),
                                  u64Arg("class", netInfoClass(e.arg1))}));
            break;
          }
          default:
            break;
        }
    });

    os << "\n]}\n";
}

} // namespace tcc
