/**
 * @file
 * Per-transaction lifecycle ledger: folds the TraceRecorder ring into
 * one record per *committed* TID - where its cycles went (execution
 * vs commit phase), how its commit-protocol round trips behaved
 * (probe send -> reply, first skip / first mark -> validation), how
 * many attempts it took, and what violated it (conflicting line
 * address + the writer's TID).
 *
 * This is the machine-readable companion to the paper's Figures 6-7
 * breakdown and Table 3 latencies: instead of aggregate counters it
 * answers "why did *this* transaction take that long". Entries are
 * produced in commit order, which is deterministic, so ledgers are
 * golden-testable.
 *
 * Building a ledger requires the Proc and Commit trace categories to
 * have been enabled during the run (tccsim --trace-out enables all).
 */

#ifndef TCC_OBS_TX_LEDGER_HH
#define TCC_OBS_TX_LEDGER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "obs/trace_recorder.hh"

namespace tcc {

/** One committed transaction's lifecycle. */
struct TxLedgerEntry {
    Tid tid = kInvalidTid;
    NodeId node = kInvalidNode;

    Tick beginTick = 0;       ///< final (committing) attempt began
    Tick commitStartTick = 0; ///< commit phase entered
    Tick commitEndTick = 0;   ///< validated + published

    /** Violated attempts before the committing one. */
    std::uint32_t retries = 0;
    /** True when a conflicting invalidation was observed. */
    bool hasViolation = false;
    /** Cause of the last violation: conflicting line address. */
    Addr violationAddr = 0;
    /** Cause of the last violation: the committing writer's TID. */
    Tid violationWriter = kInvalidTid;
    /** Every violation cause this transaction saw across all its
     *  attempts: (conflicting line address, count), sorted by address
     *  ascending. violationAddr above is only the *last* cause; a
     *  transaction retried by several hot words lists them all here. */
    std::vector<std::pair<Addr, std::uint32_t>> causes;

    /** Probe round trips (send -> reply) observed for this commit. */
    std::uint64_t probeCount = 0;
    Tick probeRttTotal = 0;
    Tick probeRttMax = 0;

    /** First Skip / first Mark of the committing attempt (0 = none). */
    Tick firstSkipTick = 0;
    Tick firstMarkTick = 0;

    /** Directories this commit touched (write + share-only). */
    std::uint64_t directoriesTouched = 0;
    /** NIC-serialized multicast injections the committing attempt
     *  charged (probe / skip fan-out; O(N) flat, O(k log N) tree). */
    std::uint64_t multicastEvents = 0;

    Tick
    execCycles() const
    {
        return commitStartTick >= beginTick
                   ? commitStartTick - beginTick
                   : 0;
    }

    Tick
    commitCycles() const
    {
        return commitEndTick >= commitStartTick
                   ? commitEndTick - commitStartTick
                   : 0;
    }

    double
    probeRttMean() const
    {
        return probeCount == 0 ? 0.0
                               : static_cast<double>(probeRttTotal) /
                                     static_cast<double>(probeCount);
    }

    /** First mark to validation (0 when no marks were sent). */
    Tick
    markToCommitCycles() const
    {
        return firstMarkTick == 0 || commitEndTick < firstMarkTick
                   ? 0
                   : commitEndTick - firstMarkTick;
    }

    /** First skip to validation (0 when no skips were recorded). */
    Tick
    skipToCommitCycles() const
    {
        return firstSkipTick == 0 || commitEndTick < firstSkipTick
                   ? 0
                   : commitEndTick - firstSkipTick;
    }
};

/**
 * Fold the recorder's stored events into per-TID records, in commit
 * order. Tolerant of ring wrap: transactions whose begin fell off the
 * ring get beginTick == commitStartTick (exec cycles read as 0).
 */
std::vector<TxLedgerEntry> buildTxLedger(const TraceRecorder &rec);

} // namespace tcc

#endif // TCC_OBS_TX_LEDGER_HH
