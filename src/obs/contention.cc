#include "obs/contention.hh"

#include <algorithm>
#include <ostream>

namespace tcc {

namespace {

constexpr unsigned kVictimBits = 12; // SystemConfig caps procs at 4096

std::uint64_t
edgeKey(Tid writer, NodeId victim)
{
    return (writer << kVictimBits) | victim;
}

} // namespace

ContentionProfiler::ContentionProfiler(std::size_t top_k, Arena *arena)
    : topK_(top_k < 1 ? 1 : top_k),
      table(arena),
      tidOwners(arena),
      rawEdges(arena)
{
    table.reserve(topK_);
}

void
ContentionProfiler::noteWord(Addr addr, const WordStats &delta)
{
    auto it = table.find(addr);
    if (it != table.end()) {
        WordStats &s = it->second;
        s.srConflicts += delta.srConflicts;
        s.smConflicts += delta.smConflicts;
        s.aborts += delta.aborts;
        s.wasted += delta.wasted;
        return;
    }
    if (table.size() >= topK_) {
        // Space-saving eviction: drop the minimum-weight entry; ties
        // evict the larger address so lower addresses win. Scanning
        // the table is O(K) but only runs when a *new* address arrives
        // with the table full - steady-state hot words hit the
        // accumulate path above.
        Addr victim = 0;
        bool have = false;
        std::uint64_t min_w = 0;
        for (const auto &kv : table) {
            const std::uint64_t w = kv.second.weight();
            if (!have || w < min_w || (w == min_w && kv.first > victim)) {
                victim = kv.first;
                min_w = w;
                have = true;
            }
        }
        table.erase(victim);
        ++evictions_;
    }
    table[addr] = delta;
}

void
ContentionProfiler::recordConflict(NodeId victim, Tid writer_tid, Addr addr,
                                   bool sr, bool sm, bool aborted,
                                   std::uint64_t wasted_cycles)
{
    ++conflicts_;
    WordStats d;
    d.srConflicts = sr ? 1 : 0;
    d.smConflicts = sm ? 1 : 0;
    if (aborted) {
        d.aborts = 1;
        d.wasted = wasted_cycles;
        ++rawEdges[edgeKey(writer_tid, victim)];
    }
    noteWord(addr, d);
}

void
ContentionProfiler::mergeFrom(const ContentionProfiler &other)
{
    // Replay the other table in ascending-address order so the merged
    // result is independent of FlatMap slot order (and of the worker
    // count that produced it).
    std::vector<HotWord> words;
    words.reserve(other.table.size());
    for (const auto &kv : other.table)
        words.push_back(HotWord{kv.first, kv.second});
    std::sort(words.begin(), words.end(),
              [](const HotWord &a, const HotWord &b) {
                  return a.addr < b.addr;
              });
    for (const HotWord &w : words)
        noteWord(w.addr, w.s);
    for (const auto &kv : other.tidOwners)
        tidOwners[kv.first] = kv.second;
    for (const auto &kv : other.rawEdges)
        rawEdges[kv.first] += kv.second;
    conflicts_ += other.conflicts_;
    evictions_ += other.evictions_;
}

std::vector<ContentionProfiler::HotWord>
ContentionProfiler::hotWords() const
{
    std::vector<HotWord> out;
    out.reserve(table.size());
    for (const auto &kv : table)
        out.push_back(HotWord{kv.first, kv.second});
    std::sort(out.begin(), out.end(), [](const HotWord &a, const HotWord &b) {
        if (a.s.weight() != b.s.weight())
            return a.s.weight() > b.s.weight();
        return a.addr < b.addr;
    });
    return out;
}

std::vector<ContentionProfiler::Edge>
ContentionProfiler::blameEdges() const
{
    // Resolve writer TIDs to their owning node, folding edges that
    // share a (killer, victim) pair.
    FlatMap<std::uint64_t, std::uint64_t> folded;
    for (const auto &kv : rawEdges) {
        const Tid writer = kv.first >> kVictimBits;
        const NodeId victim =
            static_cast<NodeId>(kv.first & ((1u << kVictimBits) - 1));
        auto it = tidOwners.find(writer);
        const NodeId killer = it != tidOwners.end() ? it->second
                                                    : kInvalidNode;
        folded[(static_cast<std::uint64_t>(killer) << kVictimBits) |
               victim] += kv.second;
    }
    std::vector<Edge> out;
    out.reserve(folded.size());
    for (const auto &kv : folded) {
        Edge e;
        e.killer = static_cast<NodeId>(kv.first >> kVictimBits);
        e.victim = static_cast<NodeId>(kv.first & ((1u << kVictimBits) - 1));
        e.count = kv.second;
        out.push_back(e);
    }
    std::sort(out.begin(), out.end(), [](const Edge &a, const Edge &b) {
        if (a.killer != b.killer)
            return a.killer < b.killer;
        return a.victim < b.victim;
    });
    return out;
}

void
ContentionProfiler::writeDot(std::ostream &os) const
{
    const std::vector<Edge> edges = blameEdges();
    std::uint64_t max_count = 1;
    for (const Edge &e : edges)
        max_count = std::max(max_count, e.count);
    os << "digraph blame {\n"
       << "  // killer proc -> victim proc, label = aborts caused\n"
       << "  rankdir=LR;\n"
       << "  node [shape=circle];\n";
    for (const Edge &e : edges) {
        os << "  ";
        if (e.killer == kInvalidNode)
            os << "\"?\"";
        else
            os << "p" << e.killer;
        os << " -> p" << e.victim << " [label=" << e.count << " penwidth="
           << (1 + (4 * e.count) / max_count) << "];\n";
    }
    os << "}\n";
}

} // namespace tcc
