/**
 * @file
 * Perfetto / Chrome trace_event JSON exporter for the TraceRecorder.
 *
 * Mapping (JSON Array Format of the trace_event spec, loadable by
 * both chrome://tracing and ui.perfetto.dev):
 *   - the whole System is pid 0;
 *   - processor n is thread n ("proc n"), directory n is thread
 *     1000+n ("dir n"), and the interconnect is thread 2000 ("net");
 *   - transactions become nested duration slices on their processor's
 *     track: an enclosing "tx <tid>" slice from the committing
 *     attempt's begin to validation, containing an "exec" and a
 *     "commit" phase slice;
 *   - violations, probe/skip/mark traffic, NSTID advances, and
 *     invalidations are instant events with their payloads in args;
 *   - one simulated cycle is rendered as one microsecond (the formats
 *     have no native "cycles" unit).
 *
 * The export is a pure function of the recorder's contents, so traces
 * of deterministic runs are byte-identical and golden-testable.
 */

#ifndef TCC_OBS_CHROME_TRACE_HH
#define TCC_OBS_CHROME_TRACE_HH

#include <ostream>

#include "obs/trace_recorder.hh"

namespace tcc {

/**
 * Write the recorder's stored events as Chrome trace JSON to @p os.
 * @p num_nodes bounds the thread-name metadata (pass the System's
 * processor count).
 */
void exportChromeTrace(const TraceRecorder &rec, std::uint32_t num_nodes,
                       std::ostream &os);

} // namespace tcc

#endif // TCC_OBS_CHROME_TRACE_HH
