#include "obs/trace_recorder.hh"

#include <new>

namespace tcc {

const char *
traceEventKindName(TraceEventKind k)
{
    switch (k) {
      case TraceEventKind::TxBegin: return "tx_begin";
      case TraceEventKind::TxViolation: return "tx_violation";
      case TraceEventKind::ViolationCause: return "violation_cause";
      case TraceEventKind::SoloDrain: return "solo_drain";
      case TraceEventKind::TidAcquire: return "tid_acquire";
      case TraceEventKind::ProbeSend: return "probe_send";
      case TraceEventKind::ProbeReplyRecv: return "probe_reply";
      case TraceEventKind::SkipSend: return "skip_send";
      case TraceEventKind::MarkSend: return "mark_send";
      case TraceEventKind::CommitStart: return "commit_start";
      case TraceEventKind::TxCommit: return "tx_commit";
      case TraceEventKind::DirSkip: return "dir_skip";
      case TraceEventKind::DirProbeDefer: return "dir_probe_defer";
      case TraceEventKind::DirNstidAdvance: return "dir_nstid_advance";
      case TraceEventKind::DirInvalidate: return "dir_invalidate";
      case TraceEventKind::NetSend: return "net_send";
      case TraceEventKind::NetDeliver: return "net_deliver";
      case TraceEventKind::CommitFanout: return "commit_fanout";
      default: return "?";
    }
}

TraceRecorder::TraceRecorder(const EventQueue &eq, Arena *arena_,
                             std::size_t capacity)
    : eventq(eq), arena(arena_), cap(capacity ? capacity : 1)
{}

TraceRecorder::~TraceRecorder()
{
    // Arena storage dies with the arena; only heap fallback is ours.
    if (heapStorage)
        ::operator delete(buf, std::align_val_t{alignof(TraceEvent)});
}

void
TraceRecorder::push(TraceEventKind kind, NodeId node, Tid tid,
                    std::uint64_t arg0, std::uint64_t arg1)
{
    if (buf == nullptr) {
        // First event of the run: claim the ring storage now, so
        // runs that never trace cost no memory at all.
        if (arena != nullptr) {
            buf = static_cast<TraceEvent *>(arena->allocate(
                cap * sizeof(TraceEvent), alignof(TraceEvent)));
        } else {
            buf = static_cast<TraceEvent *>(::operator new(
                cap * sizeof(TraceEvent),
                std::align_val_t{alignof(TraceEvent)}));
            heapStorage = true;
        }
    }
    TraceEvent &e = buf[static_cast<std::size_t>(total % cap)];
    e.tick = eventq.now();
    e.arg0 = arg0;
    e.arg1 = arg1;
    e.tid = tid;
    e.node = node;
    e.kind = kind;
    e.pad = 0;
    ++total;
}

void
TraceRecorder::pushRaw(const TraceEvent &src)
{
    if (buf == nullptr) {
        if (arena != nullptr) {
            buf = static_cast<TraceEvent *>(arena->allocate(
                cap * sizeof(TraceEvent), alignof(TraceEvent)));
        } else {
            buf = static_cast<TraceEvent *>(::operator new(
                cap * sizeof(TraceEvent),
                std::align_val_t{alignof(TraceEvent)}));
            heapStorage = true;
        }
    }
    buf[static_cast<std::size_t>(total % cap)] = src;
    ++total;
}

} // namespace tcc
