/**
 * @file
 * Time-resolved metrics: an epoch sampler that snapshots a registry of
 * counter probes every N simulated cycles into an arena-backed ring.
 *
 * Every end-of-run aggregate (RunResult::Breakdown, the stats dump)
 * collapses phase behavior - flash crowds, NSTID stalls, commit-storm
 * bursts - into one number. The sampler recovers the time axis: the
 * run loop peeks the next event's tick before executing it and closes
 * every epoch whose boundary has passed, so each closed epoch holds
 * exactly the activity of events with tick inside [k*N, (k+1)*N).
 *
 * Sampling is purely observational: it never schedules events and
 * never touches simulated state, so run fingerprints are bit-identical
 * whether the sampler is armed or not (the observability-is-free gate
 * in bench_sweep enforces this). With metrics off
 * (TraceConfig::metricsEpoch == 0) no sampler exists and the run loop
 * is byte-for-byte the legacy loop - zero overhead, like the
 * TraceRecorder's off path.
 *
 * Two probe kinds cover the registry:
 *  - Delta: the probe reads a cumulative counter (commits, network
 *    bytes); the closed epoch stores the increment since the previous
 *    close. Robust to ring wrap: each row is self-contained.
 *  - Gauge: the probe reads a point-in-time value (NSTID, TIDs
 *    issued); the closed epoch stores the value at the boundary.
 *
 * Under PDES each domain owns a private sampler fed only by its own
 * events, with epoch closing clamped to the window end (cross-domain
 * parcels always arrive at or after it, so epochs ending inside the
 * window are final). At finalize every domain closes through the same
 * final tick - equal epoch counts by construction - and the per-epoch
 * rows fold element-wise with each probe's merge op (Sum / Min / Max)
 * in domain-id order. The worker-thread count never changes any of
 * this, so jobs=1 and jobs=N merge bit-identically.
 *
 * Thread confinement: a sampler belongs to one System (or one PDES
 * domain) and inherits its confinement invariant - concurrent
 * SweepRunner workers each drive their own sampler with no shared
 * state.
 */

#ifndef TCC_OBS_METRICS_HH
#define TCC_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "common/arena.hh"
#include "common/types.hh"

namespace tcc {

class MetricsSampler
{
  public:
    static constexpr std::size_t kDefaultCapacity = 4096;

    /** How a probe's raw reading becomes a per-epoch value. */
    enum class Kind : std::uint8_t {
        Delta, ///< cumulative counter: store the increment per epoch
        Gauge, ///< point value: store the reading at the boundary
    };

    /** How per-domain rows fold at the PDES finalize merge. */
    enum class Merge : std::uint8_t { Sum, Min, Max };

    /**
     * @param epoch_len epoch width in cycles (>= 1)
     * @param capacity  ring size in epochs (clamped to >= 1); when it
     *                  fills the oldest row is overwritten and
     *                  dropped() counts the loss, like TraceRecorder
     * @param arena     ring storage (nullptr = heap)
     */
    MetricsSampler(Tick epoch_len, std::size_t capacity, Arena *arena);

    MetricsSampler(const MetricsSampler &) = delete;
    MetricsSampler &operator=(const MetricsSampler &) = delete;

    /** Register one probe. All probes must be registered before the
     *  first epoch closes; registration order defines column order
     *  (and must match across PDES domains - registerMetricProbes in
     *  core/system.cc is the single authority). @p name must outlive
     *  the sampler (string literals). */
    void addProbe(const char *name, Kind kind, Merge merge,
                  std::function<std::uint64_t()> fn);

    // --- sampling (driven by the run loop) ---------------------------
    /**
     * The next event to execute is at @p next: close every epoch whose
     * end boundary is <= next. Called before each event executes, so a
     * closed epoch reflects exactly the events with tick below its
     * boundary. kTickMax (empty queue) is a no-op - the final partial
     * epoch closes via finish(). Inline: the steady-state cost is one
     * compare and one predictable branch.
     */
    void
    advanceTo(Tick next)
    {
        if (next < epochEnd) [[likely]]
            return;
        closeUpTo(next);
    }

    /** End of run at @p final_tick: close every full epoch before it,
     *  then one final (possibly partial) epoch containing it. Under
     *  PDES every domain finishes with the same tick, which equalizes
     *  epoch counts across domains for the merge. */
    void finish(Tick final_tick);

    // --- PDES finalize merge -----------------------------------------
    /** Replace this sampler's rows with the element-wise fold of
     *  @p parts (per-domain samplers, identical schema and epoch
     *  count), applying each probe's merge op across domains in the
     *  order given (domain-id order at the call site). */
    void adoptMerged(const std::vector<const MetricsSampler *> &parts);

    // --- results ------------------------------------------------------
    Tick epochLength() const { return epochLen; }
    std::size_t probeCount() const { return probes.size(); }
    const char *probeName(std::size_t p) const { return probes[p].name; }
    Kind probeKind(std::size_t p) const { return probes[p].kind; }
    Merge probeMerge(std::size_t p) const { return probes[p].merge; }

    /** Column index of @p name, or -1 when absent. */
    int probeIndex(const char *name) const;

    /** Epochs ever closed (including any lost to ring wrap). */
    std::uint64_t closed() const { return total; }

    /** Epochs lost to ring wrap. */
    std::uint64_t
    dropped() const
    {
        return total > cap ? total - cap : 0;
    }

    /** Rows currently held (min(closed, capacity)). */
    std::size_t
    rows() const
    {
        return total < cap ? static_cast<std::size_t>(total) : cap;
    }

    /** Absolute epoch number of kept row 0 (row i covers ticks
     *  [(firstEpoch()+i) * epochLength(), ... + epochLength())). */
    std::uint64_t firstEpoch() const { return total - rows(); }

    /** Value of probe @p p in kept row @p row (oldest first). */
    std::uint64_t
    at(std::size_t row, std::size_t p) const
    {
        const std::size_t base =
            total > cap ? static_cast<std::size_t>(total % cap) : 0;
        std::size_t idx = base + row;
        if (idx >= cap)
            idx -= cap;
        return ring[idx * probes.size() + p];
    }

  private:
    void closeUpTo(Tick next);
    void closeEpoch();

    struct Probe {
        const char *name;
        Kind kind;
        Merge merge;
        std::function<std::uint64_t()> fn;
        std::uint64_t last = 0; ///< previous raw reading (Delta)
    };

    std::vector<Probe> probes;
    /** Row-major ring: cap rows of probeCount() values; allocated
     *  lazily on the first close, so armed-but-idle costs nothing. */
    std::vector<std::uint64_t, ArenaAllocator<std::uint64_t>> ring;
    Tick epochLen;
    /** End boundary of the next epoch to close (saturates at
     *  kTickMax near the end of time). */
    Tick epochEnd;
    std::size_t cap;
    std::uint64_t total = 0; ///< epochs ever closed
    bool finished = false;
};

/**
 * Write the sampler's kept rows as a CSV time series: one row per
 * epoch with columns epoch, start_tick, then one column per probe,
 * plus a derived nstid_lag column (tids_issued - nstid_min) when both
 * probes exist - the paper's commit-pipeline depth over time.
 */
void writeMetricsCsv(const MetricsSampler &m, std::ostream &os);

} // namespace tcc

#endif // TCC_OBS_METRICS_HH
