/**
 * @file
 * Bank example: concurrent transfers between accounts, the canonical
 * atomicity demo. Each transfer is one transaction (read both
 * balances, debit one, credit the other); the invariant is that the
 * total balance is conserved no matter how transfers conflict.
 *
 * Also demonstrates livelock-freedom under heavy contention: a few
 * "hot" accounts receive most transfers, yet every transfer commits.
 */

#include <cstdio>
#include <vector>

#include "core/report.hh"
#include "core/system.hh"
#include "sim/random.hh"
#include "workload/scripted_source.hh"

using namespace tcc;

namespace {

constexpr std::uint32_t kProcs = 16;
constexpr std::uint32_t kAccounts = 64;
constexpr std::uint32_t kHotAccounts = 4; // most transfers hit these
constexpr std::uint32_t kTransfersPerProc = 40;
constexpr std::uint64_t kInitialBalance = 1000;

Addr
account(std::uint32_t idx)
{
    // Spread accounts across the machine, one page apart, so their
    // home directories differ (parallel commit across directories).
    return 0x80000000ull + static_cast<Addr>(idx) * 4096;
}

ScriptedSource
makeTeller(NodeId proc, std::uint64_t seed)
{
    Rng rng(seed * 131 + proc);
    ScriptedSource src;
    for (std::uint32_t t = 0; t < kTransfersPerProc; ++t) {
        // Pick two distinct accounts, biased toward the hot set.
        auto pick = [&]() -> std::uint32_t {
            if (rng.chance(0.7))
                return static_cast<std::uint32_t>(
                    rng.below(kHotAccounts));
            return static_cast<std::uint32_t>(rng.below(kAccounts));
        };
        std::uint32_t from = pick();
        std::uint32_t to = pick();
        while (to == from)
            to = static_cast<std::uint32_t>(rng.below(kAccounts));
        const std::uint64_t amount = 1 + rng.below(10);

        // One atomic transfer: balance checks and both updates.
        src.add({
            TxOp::compute(20),
            TxOp::load(account(from)),
            TxOp::storeAdd(account(from),
                           static_cast<std::uint64_t>(-amount)),
            TxOp::load(account(to)),
            TxOp::storeAdd(account(to), amount),
        });
    }
    return src;
}

} // namespace

int
main()
{
    SystemConfig cfg;
    cfg.numProcs = kProcs;
    cfg.check.serial = true;
    System sys(cfg);

    for (std::uint32_t a = 0; a < kAccounts; ++a)
        sys.initializeWord(account(a), kInitialBalance);

    std::vector<ScriptedSource> tellers;
    tellers.reserve(kProcs);
    for (NodeId p = 0; p < kProcs; ++p)
        tellers.push_back(makeTeller(p, 7));
    for (NodeId p = 0; p < kProcs; ++p)
        sys.setSource(p, &tellers[p]);

    const RunResult res = sys.run();
    std::printf("completed: %s in %llu cycles\n",
                res.completed ? "yes" : "NO",
                (unsigned long long)res.cycles);

    // Conservation invariant.
    std::uint64_t total = 0;
    for (std::uint32_t a = 0; a < kAccounts; ++a)
        total += sys.memory().read(account(a));
    const std::uint64_t expected =
        static_cast<std::uint64_t>(kAccounts) * kInitialBalance;
    std::printf("total balance: %llu (expected %llu) -> %s\n",
                (unsigned long long)total,
                (unsigned long long)expected,
                total == expected ? "CONSERVED" : "LOST MONEY");

    std::printf("transfers committed: %llu, conflicts retried: %llu "
                "(livelock-free, no contention manager)\n",
                (unsigned long long)res.committedTxns,
                (unsigned long long)res.violations);

    // TAPE-style conflict profiling: which accounts cause the retries?
    auto hotspots = conflictHotspots(sys, 5);
    std::puts("conflict hotspots (TAPE-style):");
    for (const auto &h : hotspots) {
        const auto idx =
            (h.lineAddr - account(0)) / 4096; // account index
        std::printf("  account %llu: %llu violations%s\n",
                    (unsigned long long)idx,
                    (unsigned long long)h.violations,
                    idx < kHotAccounts ? "  <- hot account" : "");
    }

    std::printf("serializability check: %s\n",
                res.serial.ok ? "PASS" : res.serial.error.c_str());
    return (res.serial.ok && total == expected) ? 0 : 1;
}
