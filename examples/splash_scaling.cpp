/**
 * @file
 * Scaling study example: run one of the paper's application profiles
 * across processor counts and print speedups and execution-time
 * breakdowns - a miniature version of the Figure 7 harness, intended
 * as the template for your own scaling experiments.
 *
 * Usage: splash_scaling [app] [max_procs]
 *   app        any registry workload name - Table-3 apps or ds_*
 *              data-structure workloads (default barnes)
 *   max_procs  largest power-of-two processor count (default 32)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/report.hh"
#include "core/system.hh"
#include "workload/registry.hh"

using namespace tcc;

int
main(int argc, char **argv)
{
    const std::string app_name = argc > 1 ? argv[1] : "barnes";
    const std::uint32_t max_procs =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 32;

    if (!isWorkload(app_name)) {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     app_name.c_str());
        return 1;
    }
    {
        const WorkloadBundle probe =
            makeWorkload(app_name, {}, /*seed=*/1, 1);
        std::printf("workload: %s (%llu expected txns, %llu data "
                    "words, %zu regions)\n",
                    app_name.c_str(),
                    (unsigned long long)probe.footprint.expectedTxns,
                    (unsigned long long)probe.footprint.dataWords,
                    probe.footprint.regions.size());
    }

    double t1 = 0;
    std::printf("%5s %12s %9s | %s\n", "cpus", "cycles", "speedup",
                breakdownHeader().c_str());
    for (std::uint32_t p = 1; p <= max_procs; p *= 2) {
        SystemConfig cfg;
        cfg.numProcs = p;
        System sys(cfg);
        const WorkloadBundle bundle =
            makeWorkload(app_name, {}, /*seed=*/1, p);
        bundle.attach(sys);
        const RunResult res = sys.run();
        if (!res.completed) {
            std::printf("%5u DID NOT COMPLETE\n", p);
            continue;
        }
        if (p == 1)
            t1 = static_cast<double>(res.cycles);
        std::printf("%5u %12llu %8.1fx | %s\n", p,
                    (unsigned long long)res.cycles,
                    t1 / static_cast<double>(res.cycles),
                    breakdownRow(app_name, res.breakdown).c_str());
    }

    std::puts("\nTable 3-style characterization at the largest size:");
    {
        SystemConfig cfg;
        cfg.numProcs = max_procs;
        System sys(cfg);
        const WorkloadBundle bundle =
            makeWorkload(app_name, {}, /*seed=*/1, max_procs);
        bundle.attach(sys);
        sys.run();
        std::puts(table3Header().c_str());
        std::puts(table3Row(characterize(sys, app_name)).c_str());
        std::puts(trafficHeader().c_str());
        std::puts(
            trafficRowText(trafficPerInstr(sys, app_name)).c_str());
    }
    return 0;
}
