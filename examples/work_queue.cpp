/**
 * @file
 * Work-queue example using the closure-based TxProgram API: the
 * "atomic { ... }" programming model the TCC papers advocate. A shared
 * task list is drained by all processors; each claim-and-process step
 * is one atomic region with data-dependent control flow (the addresses
 * touched depend on values read), which the op-list API cannot
 * express. Conflicting claims are resolved by violation + closure
 * regeneration; every task runs exactly once.
 */

#include <cstdio>
#include <vector>

#include "core/report.hh"
#include "core/system.hh"
#include "workload/tx_program.hh"

using namespace tcc;

namespace {

constexpr std::uint32_t kProcs = 8;
constexpr std::uint64_t kTasks = 96;

constexpr Addr kNextTask = 0x1000; // shared claim counter

Addr
taskResult(std::uint64_t i)
{
    return 0x100000 + i * 4;
}

/** "Process" task i: a deterministic pseudo-result. */
std::uint64_t
taskWork(std::uint64_t i)
{
    return i * i + 7;
}

} // namespace

int
main()
{
    SystemConfig cfg;
    cfg.numProcs = kProcs;
    cfg.check.serial = true;
    System sys(cfg);

    std::vector<TxProgramSource> workers;
    workers.reserve(kProcs);
    for (NodeId p = 0; p < kProcs; ++p)
        workers.emplace_back(sys.memory());

    // Each worker repeatedly claims the next task; extra attempts on a
    // drained queue commit as read-only transactions.
    for (NodeId p = 0; p < kProcs; ++p) {
        for (std::uint64_t t = 0; t < kTasks; ++t) {
            workers[p].atomic([](TxContext &tx) {
                const auto idx = tx.load(kNextTask);
                if (idx >= kTasks)
                    return;                    // queue drained
                tx.store(kNextTask, idx + 1);  // claim it
                tx.compute(200);               // do the work
                tx.store(taskResult(idx), taskWork(idx));
            });
        }
        sys.setSource(p, &workers[p]);
    }

    const RunResult res = sys.run();
    std::printf("completed: %s in %llu cycles\n",
                res.completed ? "yes" : "NO",
                (unsigned long long)res.cycles);

    // Every task processed exactly once, with the right result.
    std::uint64_t ok = 0;
    for (std::uint64_t i = 0; i < kTasks; ++i)
        if (sys.memory().read(taskResult(i)) == taskWork(i))
            ++ok;
    std::printf("tasks completed correctly: %llu / %llu\n",
                (unsigned long long)ok, (unsigned long long)kTasks);

    std::uint64_t regens = 0, violations = 0;
    for (auto &w : workers) {
        regens += w.regenerated();
        violations += w.violated();
    }
    std::printf("claim conflicts: %llu violations, %llu closure "
                "regenerations\n",
                (unsigned long long)violations,
                (unsigned long long)regens);

    std::printf("serializability check: %s\n",
                res.serial.ok ? "PASS" : res.serial.error.c_str());
    return (res.serial.ok && ok == kTasks) ? 0 : 1;
}
