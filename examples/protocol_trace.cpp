/**
 * @file
 * Protocol walk-through example: re-creates the paper's Figure 2
 * scenario (two processors, one successful commit, one violation) with
 * full protocol tracing enabled so every message and state change is
 * visible. Useful for understanding - or teaching - the two-phase
 * parallel commit.
 *
 * Run:  ./build/examples/protocol_trace 2> trace.log
 */

#include <cstdio>

#include "common/log.hh"
#include "core/system.hh"
#include "workload/scripted_source.hh"

using namespace tcc;

int
main()
{
    // Print every protocol event to stderr.
    Trace::enableAll(true);

    SystemConfig cfg;
    cfg.numProcs = 2;
    cfg.enableChecker = true;
    cfg.homePolicy = HomePolicy::Interleave; // deterministic homes
    System sys(cfg);

    // Address X is homed at directory 0 (page 0 of the region).
    const Addr x = 0x100000;

    // P0: writes X and commits first (lower TID).
    ScriptedSource p0;
    p0.add({TxOp::compute(100), TxOp::store(x, 42)});

    // P1: reads X early, computes for a long time - long enough for
    // P0's commit to invalidate it - then uses the value. It violates,
    // re-executes, and commits with P0's value.
    ScriptedSource p1;
    p1.add({TxOp::load(x), TxOp::compute(4000),
            TxOp::storeAdd(x + 4096, 0)});

    sys.setSource(0, &p0);
    sys.setSource(1, &p1);

    std::puts("running the Figure 2 scenario "
              "(see stderr for the message trace)...");
    auto res = sys.run();

    std::printf("\ncompleted in %llu cycles\n",
                (unsigned long long)res.cycles);
    std::printf("P1 violations: %llu (expected 1: it had read X before "
                "P0 committed)\n",
                (unsigned long long)sys.proc(1).stats().violations);
    std::printf("X = %llu, copy = %llu\n",
                (unsigned long long)sys.memory().read(x),
                (unsigned long long)sys.memory().read(x + 4096));
    auto check = sys.checker().verify();
    std::printf("serializability: %s\n",
                check.ok ? "PASS" : check.error.c_str());
    return check.ok ? 0 : 1;
}
