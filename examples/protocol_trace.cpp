/**
 * @file
 * Protocol walk-through example: re-creates the paper's Figure 2
 * scenario (two processors, one successful commit, one violation) with
 * full protocol tracing enabled so every message and state change is
 * visible. Useful for understanding - or teaching - the two-phase
 * parallel commit.
 *
 * Run:  ./build/examples/protocol_trace 2> trace.log
 *
 * Options:
 *   --trace-out FILE   also write the structured trace as
 *                      Chrome/Perfetto trace JSON
 *   --stats-json FILE  write the full stats tree (including the
 *                      tx_ledger) as JSON
 *   --quiet            suppress the stderr text trace (recording for
 *                      the two files above still happens)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/log.hh"
#include "core/stats_dump.hh"
#include "core/system.hh"
#include "obs/chrome_trace.hh"
#include "obs/tx_ledger.hh"
#include "workload/scripted_source.hh"

using namespace tcc;

int
main(int argc, char **argv)
{
    std::string trace_out_path;
    std::string stats_json_path;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--trace-out" && i + 1 < argc) {
            trace_out_path = argv[++i];
        } else if (arg == "--stats-json" && i + 1 < argc) {
            stats_json_path = argv[++i];
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--trace-out FILE] "
                         "[--stats-json FILE] [--quiet]\n",
                         argv[0]);
            return 1;
        }
    }

    // Record every protocol event; print to stderr unless --quiet.
    Trace::enableAll(true);
    Trace::setTextOutput(!quiet);

    SystemConfig cfg;
    cfg.numProcs = 2;
    cfg.check.serial = true;
    cfg.homePolicy = HomePolicy::Interleave; // deterministic homes
    System sys(cfg);

    // Address X is homed at directory 0 (page 0 of the region).
    const Addr x = 0x100000;

    // P0: writes X and commits first (lower TID).
    ScriptedSource p0;
    p0.add({TxOp::compute(100), TxOp::store(x, 42)});

    // P1: reads X early, computes for a long time - long enough for
    // P0's commit to invalidate it - then uses the value. It violates,
    // re-executes, and commits with P0's value.
    ScriptedSource p1;
    p1.add({TxOp::load(x), TxOp::compute(4000),
            TxOp::storeAdd(x + 4096, 0)});

    sys.setSource(0, &p0);
    sys.setSource(1, &p1);

    if (!quiet) {
        std::puts("running the Figure 2 scenario "
                  "(see stderr for the message trace)...");
    }
    const RunResult res = sys.run();

    std::printf("\ncompleted in %llu cycles\n",
                (unsigned long long)res.cycles);
    std::printf("P1 violations: %llu (expected 1: it had read X before "
                "P0 committed)\n",
                (unsigned long long)sys.proc(1).stats().violations);
    std::printf("X = %llu, copy = %llu\n",
                (unsigned long long)sys.memory().read(x),
                (unsigned long long)sys.memory().read(x + 4096));

    // The structured trace tells the same story as the text log: show
    // the ledger's view of each transaction's lifecycle.
    std::printf("trace: %llu events captured\n",
                (unsigned long long)sys.traceRecorder().captured());
    for (const auto &e : buildTxLedger(sys.traceRecorder())) {
        std::printf("  tx %llu @ proc %u: exec=%llu commit=%llu "
                    "retries=%u",
                    (unsigned long long)e.tid, e.node,
                    (unsigned long long)e.execCycles(),
                    (unsigned long long)e.commitCycles(), e.retries);
        if (e.hasViolation) {
            std::printf(" (violated at %llx by tid %llu)",
                        (unsigned long long)e.violationAddr,
                        (unsigned long long)e.violationWriter);
        }
        std::printf("\n");
    }

    if (!trace_out_path.empty()) {
        std::ofstream f(trace_out_path);
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n",
                         trace_out_path.c_str());
            return 1;
        }
        exportChromeTrace(sys.traceRecorder(), cfg.numProcs, f);
        std::printf("trace JSON written to %s\n",
                    trace_out_path.c_str());
    }
    if (!stats_json_path.empty()) {
        std::ofstream f(stats_json_path);
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n",
                         stats_json_path.c_str());
            return 1;
        }
        dumpStatsJson(sys, f);
        std::printf("stats JSON written to %s\n",
                    stats_json_path.c_str());
    }

    std::printf("serializability: %s\n",
                res.serial.ok ? "PASS" : res.serial.error.c_str());
    return res.serial.ok ? 0 : 1;
}
