/**
 * @file
 * tccsim: command-line driver for the Scalable TCC simulator. Runs one
 * of the paper's application profiles on a configurable machine and
 * prints every report the library produces - the tool you reach for
 * when exploring a configuration without writing code.
 *
 * Usage:
 *   tccsim [options]              (--flag=V and --flag V both work)
 *     --app NAME        workload name from the registry: Table-3 apps
 *                       and ds_* data-structure workloads (default
 *                       barnes; "list" prints the available names)
 *     --wl K=V[,K=V...] workload knob overrides (repeatable), e.g.
 *                       --wl theta=0.99,mix=write_heavy
 *     --procs N         processors/nodes (default 16)
 *     --network M       mesh | ideal | chaos:<preset>  (default mesh;
 *                       "chaos:list" prints the preset names)
 *     --chaos PRESET    shorthand for --network=chaos:<preset>
 *     --multicast M     commit fan-out strategy: flat | tree | tree:kN
 *                       (tree stages Skip/probe fan-out through a
 *                       k-ary combining tree; default flat, tree
 *                       defaults to k4, mesh network only)
 *     --hop N           mesh cycles per hop (default 3)
 *     --line-gran       line-granularity conflict detection
 *     --interleave      page-interleaved homes (default first-touch)
 *     --jitter N        random reorder jitter (unordered network)
 *     --aging N         violations before TID aging (0 = off)
 *     --domains D       PDES: partition the run into D domains (>= 2
 *                       engages the parallel engine; needs
 *                       --interleave). Part of the model: results
 *                       depend on D, never on --jobs.
 *     --jobs N          PDES: worker threads driving the domains
 *                       (default: one per domain; any N gives
 *                       bit-identical results)
 *     --seed N          workload + chaos seed (default 1)
 *     --check LIST      comma list of checkers: serial, invariants
 *                       (bare --check arms the serial checker)
 *     --trace           dump the full protocol trace to stderr
 *     --trace-out FILE  record the structured protocol trace and write
 *                       it as Chrome/Perfetto trace JSON to FILE (open
 *                       in ui.perfetto.dev or chrome://tracing)
 *     --stats FILE      write a full gem5-style stats dump to FILE
 *     --stats-json FILE write the stats tree as JSON to FILE (includes
 *                       the resolved configuration)
 *     --metrics-epoch N arm the epoch sampler: snapshot commits,
 *                       violations, cycles, NSTID lag, directory and
 *                       network counters every N cycles (series land
 *                       in --stats-json and --metrics-out)
 *     --metrics-out FILE write the epoch time series as CSV to FILE
 *                       (arms the sampler with a 1000-cycle epoch if
 *                       --metrics-epoch was not given)
 *     --contention K    arm the conflict profiler: top-K hot-word
 *                       table + abort blame graph (in --stats /
 *                       --stats-json)
 *     --contention-dot FILE
 *                       write the abort blame graph as GraphViz DOT to
 *                       FILE (arms the profiler with K=32 if
 *                       --contention was not given)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/log.hh"
#include "core/stats_dump.hh"
#include "core/report.hh"
#include "core/system.hh"
#include "obs/chrome_trace.hh"
#include "obs/contention.hh"
#include "obs/metrics.hh"
#include "workload/registry.hh"

using namespace tcc;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--app NAME] [--wl K=V,...] [--procs N] "
                 "[--network mesh|ideal|chaos:<preset>] "
                 "[--chaos PRESET] [--multicast flat|tree:kN] "
                 "[--hop N] [--line-gran] "
                 "[--interleave] [--jitter N] [--aging N] "
                 "[--domains D] [--jobs N] "
                 "[--pdes-sync fixed|adaptive] [--seed N] "
                 "[--check serial,invariants] [--trace] "
                 "[--trace-out FILE] [--stats FILE] "
                 "[--stats-json FILE] [--metrics-epoch N] "
                 "[--metrics-out FILE] [--contention K] "
                 "[--contention-dot FILE]\n",
                 argv0);
    std::exit(1);
}

/** Apply one --network value; exits on an unknown model/preset. */
void
parseNetwork(const std::string &val, NetworkConfig &net,
             const char *argv0)
{
    if (val == "mesh") {
        net.model = NetworkConfig::Model::Mesh;
    } else if (val == "ideal") {
        net.model = NetworkConfig::Model::Ideal;
    } else if (val.rfind("chaos:", 0) == 0) {
        const std::string preset = val.substr(6);
        if (preset == "list") {
            for (const auto &name : chaosPresetNames())
                std::puts(name.c_str());
            std::exit(0);
        }
        net.model = NetworkConfig::Model::Chaos;
        net.chaos = chaosPreset(preset);
    } else if (val == "chaos") {
        net.model = NetworkConfig::Model::Chaos;
        net.chaos = chaosPreset("heavy");
    } else {
        std::fprintf(stderr, "%s: unknown network '%s'\n", argv0,
                     val.c_str());
        std::exit(1);
    }
}

/** Apply one --multicast value (flat | tree | tree:kN). */
void
parseMulticast(const std::string &val, MulticastConfig &mc,
               const char *argv0)
{
    if (val == "flat") {
        mc.topology = MulticastConfig::Topology::Flat;
    } else if (val == "tree") {
        mc.topology = MulticastConfig::Topology::Tree;
    } else if (val.rfind("tree:k", 0) == 0) {
        mc.topology = MulticastConfig::Topology::Tree;
        mc.fanout = static_cast<std::uint32_t>(
            std::atoi(val.c_str() + 6));
    } else {
        std::fprintf(stderr, "%s: unknown multicast '%s'\n", argv0,
                     val.c_str());
        std::exit(1);
    }
}

/** Apply one --check list ("serial,invariants"); exits on junk. */
void
parseCheck(const std::string &val, CheckConfig &check,
           const char *argv0)
{
    std::size_t pos = 0;
    while (pos <= val.size()) {
        const std::size_t comma = val.find(',', pos);
        const std::string item =
            val.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
        if (item == "serial") {
            check.serial = true;
        } else if (item == "invariants") {
            check.invariants = true;
        } else if (!item.empty()) {
            std::fprintf(stderr, "%s: unknown checker '%s'\n", argv0,
                         item.c_str());
            std::exit(1);
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app_name = "barnes";
    WorkloadParams wl;
    std::string stats_path;
    std::string stats_json_path;
    std::string trace_out_path;
    std::string metrics_out_path;
    std::string contention_dot_path;
    bool trace_text = false;
    SystemConfig cfg;
    cfg.numProcs = 16;
    std::uint64_t seed = 1;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // --flag=VALUE and --flag VALUE are both accepted.
        std::string inline_val;
        bool has_inline = false;
        if (const std::size_t eq = arg.find('=');
            eq != std::string::npos) {
            inline_val = arg.substr(eq + 1);
            arg.resize(eq);
            has_inline = true;
        }
        auto next = [&]() -> std::string {
            if (has_inline)
                return inline_val;
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--app") {
            app_name = next();
        } else if (arg == "--wl") {
            for (auto &kv : WorkloadParams::parse(next()).overrides)
                wl.overrides.push_back(std::move(kv));
        } else if (arg == "--procs") {
            cfg.numProcs =
                static_cast<std::uint32_t>(std::atoi(next().c_str()));
        } else if (arg == "--network") {
            parseNetwork(next(), cfg.network, argv[0]);
        } else if (arg == "--chaos") {
            parseNetwork("chaos:" + next(), cfg.network, argv[0]);
        } else if (arg == "--multicast") {
            parseMulticast(next(), cfg.network.multicast, argv[0]);
        } else if (arg == "--hop") {
            cfg.network.mesh.hopLatency =
                static_cast<Tick>(std::atoi(next().c_str()));
        } else if (arg == "--line-gran") {
            cfg.cache.granularity = Granularity::Line;
        } else if (arg == "--interleave") {
            cfg.homePolicy = HomePolicy::Interleave;
        } else if (arg == "--ideal-net") {
            // Legacy spelling of --network=ideal.
            cfg.network.model = NetworkConfig::Model::Ideal;
        } else if (arg == "--jitter") {
            cfg.network.mesh.reorderJitter =
                static_cast<Tick>(std::atoi(next().c_str()));
        } else if (arg == "--aging") {
            cfg.processor.agingThreshold =
                static_cast<std::uint32_t>(std::atoi(next().c_str()));
        } else if (arg == "--domains") {
            cfg.pdes.domains =
                static_cast<std::uint32_t>(std::atoi(next().c_str()));
        } else if (arg == "--jobs") {
            cfg.pdes.jobs =
                static_cast<std::uint32_t>(std::atoi(next().c_str()));
        } else if (arg == "--pdes-sync") {
            const std::string val = next();
            if (val == "fixed") {
                cfg.pdes.sync = PdesConfig::Sync::Fixed;
            } else if (val == "adaptive") {
                cfg.pdes.sync = PdesConfig::Sync::Adaptive;
            } else {
                std::fprintf(stderr, "%s: unknown --pdes-sync '%s'\n",
                             argv[0], val.c_str());
                usage(argv[0]);
            }
        } else if (arg == "--seed") {
            seed = static_cast<std::uint64_t>(
                std::atoll(next().c_str()));
        } else if (arg == "--check") {
            // Bare --check arms the serial checker (legacy); the
            // value form picks the set: --check=serial,invariants.
            if (has_inline)
                parseCheck(inline_val, cfg.check, argv[0]);
            else
                cfg.check.serial = true;
        } else if (arg == "--trace") {
            trace_text = true;
        } else if (arg == "--trace-out") {
            trace_out_path = next();
        } else if (arg == "--stats") {
            stats_path = next();
        } else if (arg == "--stats-json") {
            stats_json_path = next();
        } else if (arg == "--metrics-epoch") {
            cfg.trace.metricsEpoch =
                static_cast<Tick>(std::atoll(next().c_str()));
        } else if (arg == "--metrics-out") {
            metrics_out_path = next();
        } else if (arg == "--contention") {
            cfg.trace.contentionTopK =
                static_cast<std::size_t>(std::atoi(next().c_str()));
        } else if (arg == "--contention-dot") {
            contention_dot_path = next();
        } else {
            usage(argv[0]);
        }
    }
    // Requesting an output file arms the matching layer with a sane
    // default if the knob itself was not given.
    if (!metrics_out_path.empty() && cfg.trace.metricsEpoch == 0)
        cfg.trace.metricsEpoch = 1000;
    if (!contention_dot_path.empty() && cfg.trace.contentionTopK == 0)
        cfg.trace.contentionTopK = ContentionProfiler::kDefaultTopK;
    // One seed drives both the workload and the fault injection, so a
    // chaos run is reproduced by its (preset, seed) pair alone.
    cfg.network.chaos.seed = seed;

    if (trace_text || !trace_out_path.empty()) {
        Trace::enableAll(true);
        // Recording to a file does not imply flooding stderr.
        Trace::setTextOutput(trace_text);
    }
    if (!trace_out_path.empty()) {
        // A full application run overflows the default ring fast; give
        // the exporter more history to slice.
        cfg.trace.capacity = std::size_t{1} << 18;
    }

    if (app_name == "list") {
        for (const auto &info : workloadInfos())
            std::printf("%-16s %-10s %s\n", info.name.c_str(),
                        info.kind.c_str(), info.description.c_str());
        return 0;
    }

    std::string net_desc;
    switch (cfg.network.model) {
      case NetworkConfig::Model::Mesh:
        net_desc = "mesh";
        break;
      case NetworkConfig::Model::Ideal:
        net_desc = "ideal network";
        break;
      case NetworkConfig::Model::Chaos:
        net_desc = std::string("chaos over ") +
                   (cfg.network.chaos.overIdeal ? "ideal" : "mesh") +
                   ", seed " + std::to_string(cfg.network.chaos.seed);
        break;
    }
    if (cfg.network.multicast.topology ==
        MulticastConfig::Topology::Tree) {
        net_desc += ", tree-k" +
                    std::to_string(cfg.network.multicast.fanout) +
                    " multicast";
    }
    std::printf("tccsim: %s on %u processors (hop=%llu, %s, %s, %s)\n",
                app_name.c_str(), cfg.numProcs,
                (unsigned long long)cfg.network.mesh.hopLatency,
                cfg.cache.granularity == Granularity::Word
                    ? "word-granularity"
                    : "line-granularity",
                cfg.homePolicy == HomePolicy::FirstTouch
                    ? "first-touch"
                    : "interleaved",
                net_desc.c_str());

    System sys(cfg);
    const WorkloadBundle bundle =
        makeWorkload(app_name, wl, seed, cfg.numProcs);
    bundle.attach(sys);
    std::printf("workload: %zu regions, %llu expected txns%s\n",
                bundle.footprint.regions.size(),
                (unsigned long long)bundle.footprint.expectedTxns,
                bundle.layout() ? " (data-structure engine)" : "");
    const RunResult res = sys.run();
    if (res.invariants.checked && !res.invariants.ok) {
        std::printf("INVARIANT VIOLATION\n%s\n",
                    res.invariants.error.c_str());
        return 1;
    }
    if (!res.completed) {
        std::puts("DID NOT COMPLETE (livelock or lost message?)");
        for (NodeId p = 0; p < cfg.numProcs; ++p)
            if (!sys.proc(p).done())
                std::fputs(sys.proc(p).debugDump().c_str(), stdout);
        return 1;
    }

    std::printf("\ncompleted in %llu cycles (%llu events)\n",
                (unsigned long long)res.cycles,
                (unsigned long long)res.events);
    if (res.pdes.domains != 0) {
        std::printf("pdes: %u domains x %u jobs (%s sync), "
                    "lookahead %llu, %llu windows / %llu phases, "
                    "%llu mailbox messages\n",
                    res.pdes.domains, res.pdes.jobs,
                    res.pdes.adaptive ? "adaptive" : "fixed",
                    (unsigned long long)res.pdes.lookahead,
                    (unsigned long long)res.pdes.windows,
                    (unsigned long long)res.pdes.phases,
                    (unsigned long long)res.pdes.mailboxMessages);
        std::printf("pdes: window width mean %.1f p50 %.0f p99 %.0f, "
                    "%llu idle-domain skips, "
                    "%llu empty broadcasts skipped\n",
                    res.pdes.windowWidth.mean(),
                    res.pdes.windowWidth.percentile(50),
                    res.pdes.windowWidth.percentile(99),
                    (unsigned long long)res.pdes.idleDomainSkips,
                    (unsigned long long)res.pdes.emptyBroadcastsSkipped);
    }

    std::puts("\n-- execution time breakdown --");
    std::puts(breakdownHeader().c_str());
    std::puts(breakdownRow(app_name, res.breakdown).c_str());

    std::puts("\n-- transaction characteristics (Table 3 style) --");
    std::puts(table3Header().c_str());
    std::puts(table3Row(characterize(sys, app_name)).c_str());

    std::puts("\n-- network traffic (Figure 9 style) --");
    std::puts(trafficHeader().c_str());
    std::puts(trafficRowText(trafficPerInstr(sys, app_name)).c_str());

    std::printf("\ncommits=%llu violations=%llu overflows=%llu "
                "quiesced=%s\n",
                (unsigned long long)res.committedTxns,
                (unsigned long long)res.violations,
                (unsigned long long)res.overflows,
                res.quiesced ? "yes" : "NO");
    if (bundle.layout() != nullptr) {
        const double goodput =
            res.cycles == 0
                ? 0.0
                : static_cast<double>(bundle.committedOps()) /
                      static_cast<double>(res.cycles);
        std::printf("goodput=%.4f committed ops/cycle "
                    "(%llu logical ops)\n",
                    goodput,
                    (unsigned long long)bundle.committedOps());
        const auto tallies = bundle.phaseTallies();
        for (std::size_t i = 0; i < tallies.size(); ++i) {
            const double rate =
                tallies[i].commits + tallies[i].aborts == 0
                    ? 0.0
                    : static_cast<double>(tallies[i].aborts) /
                          static_cast<double>(tallies[i].commits +
                                              tallies[i].aborts);
            std::printf("phase %zu: commits=%llu aborts=%llu "
                        "abort_rate=%.3f\n",
                        i, (unsigned long long)tallies[i].commits,
                        (unsigned long long)tallies[i].aborts, rate);
        }
    }

    if (const auto *chaos =
            dynamic_cast<const ChaosNetwork *>(&sys.network())) {
        const ChaosNetwork::ChaosStats &cs = chaos->chaosStats();
        std::printf("\nchaos: %llu messages, %llu duplicated, "
                    "%llu held for reorder, max extra delay %llu\n",
                    (unsigned long long)cs.messages,
                    (unsigned long long)cs.duplicates,
                    (unsigned long long)cs.reordersHeld,
                    (unsigned long long)cs.maxExtraDelay);
    }

    auto hotspots = conflictHotspots(sys, 5);
    if (!hotspots.empty()) {
        std::puts("\n-- conflict hotspots (TAPE style) --");
        for (const auto &h : hotspots)
            std::printf("  line %llx: %llu violations\n",
                        (unsigned long long)h.lineAddr,
                        (unsigned long long)h.violations);
    }

    if (!stats_path.empty()) {
        std::ofstream f(stats_path);
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n",
                         stats_path.c_str());
            return 1;
        }
        dumpStats(sys, f);
        std::printf("\nfull stats written to %s\n",
                    stats_path.c_str());
    }

    if (!stats_json_path.empty()) {
        std::ofstream f(stats_json_path);
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n",
                         stats_json_path.c_str());
            return 1;
        }
        dumpStatsJson(sys, f);
        std::printf("\nstats JSON written to %s\n",
                    stats_json_path.c_str());
    }

    if (!trace_out_path.empty()) {
        std::ofstream f(trace_out_path);
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n",
                         trace_out_path.c_str());
            return 1;
        }
        exportChromeTrace(sys.traceRecorder(), cfg.numProcs, f);
        std::printf("\ntrace written to %s (%llu events captured, "
                    "%llu dropped) - open in ui.perfetto.dev\n",
                    trace_out_path.c_str(),
                    (unsigned long long)sys.traceRecorder().captured(),
                    (unsigned long long)sys.traceRecorder().dropped());
    }

    if (!metrics_out_path.empty()) {
        const MetricsSampler *m = sys.metricsSampler();
        std::ofstream f(metrics_out_path);
        if (!f || m == nullptr) {
            std::fprintf(stderr, "cannot open %s\n",
                         metrics_out_path.c_str());
            return 1;
        }
        writeMetricsCsv(*m, f);
        std::printf("\nmetrics CSV written to %s (%llu epochs of %llu "
                    "cycles, %llu dropped)\n",
                    metrics_out_path.c_str(),
                    (unsigned long long)m->closed(),
                    (unsigned long long)m->epochLength(),
                    (unsigned long long)m->dropped());
    }

    if (!contention_dot_path.empty()) {
        const ContentionProfiler *c = sys.contentionProfiler();
        std::ofstream f(contention_dot_path);
        if (!f || c == nullptr) {
            std::fprintf(stderr, "cannot open %s\n",
                         contention_dot_path.c_str());
            return 1;
        }
        c->writeDot(f);
        std::printf("\nblame graph written to %s (%llu conflicts "
                    "recorded) - render with dot -Tsvg\n",
                    contention_dot_path.c_str(),
                    (unsigned long long)c->conflictsRecorded());
    }

    // The ring silently overwrites its oldest records when full; make
    // the loss loud so a truncated ledger/trace is never mistaken for
    // a complete one.
    if (sys.traceRecorder().dropped() != 0) {
        std::fprintf(stderr,
                     "warning: protocol trace ring dropped %llu of "
                     "%llu events (oldest overwritten); raise the "
                     "ring capacity to keep the full history\n",
                     (unsigned long long)sys.traceRecorder().dropped(),
                     (unsigned long long)sys.traceRecorder().captured());
    }

    if (res.serial.checked) {
        std::printf("\nserializability: %s\n",
                    res.serial.ok ? "PASS" : res.serial.error.c_str());
    }
    if (res.invariants.checked) {
        std::printf("protocol invariants: %s (%llu checks)\n",
                    res.invariants.ok ? "PASS"
                                      : res.invariants.error.c_str(),
                    (unsigned long long)res.invariants.checks);
    }
    return res.checksPassed() ? 0 : 1;
}
