/**
 * @file
 * tccsim: command-line driver for the Scalable TCC simulator. Runs one
 * of the paper's application profiles on a configurable machine and
 * prints every report the library produces - the tool you reach for
 * when exploring a configuration without writing code.
 *
 * Usage:
 *   tccsim [options]
 *     --app NAME        application profile (default barnes; "list"
 *                       prints the available names)
 *     --procs N         processors/nodes (default 16)
 *     --hop N           mesh cycles per hop (default 3)
 *     --line-gran       line-granularity conflict detection
 *     --interleave      page-interleaved homes (default first-touch)
 *     --ideal-net       fixed-latency network instead of the mesh
 *     --jitter N        random reorder jitter (unordered network)
 *     --aging N         violations before TID aging (0 = off)
 *     --seed N          workload seed (default 1)
 *     --check           enable the serializability checker
 *     --trace           dump the full protocol trace to stderr
 *     --trace-out FILE  record the structured protocol trace and write
 *                       it as Chrome/Perfetto trace JSON to FILE (open
 *                       in ui.perfetto.dev or chrome://tracing)
 *     --stats FILE      write a full gem5-style stats dump to FILE
 *     --stats-json FILE write the stats tree as JSON to FILE
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/log.hh"
#include "core/stats_dump.hh"
#include "core/report.hh"
#include "core/system.hh"
#include "obs/chrome_trace.hh"
#include "workload/synthetic_app.hh"

using namespace tcc;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--app NAME] [--procs N] [--hop N] "
                 "[--line-gran] [--interleave] [--ideal-net] "
                 "[--jitter N] [--aging N] [--seed N] [--check] "
                 "[--trace] [--trace-out FILE] [--stats FILE] "
                 "[--stats-json FILE]\n",
                 argv0);
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app_name = "barnes";
    std::string stats_path;
    std::string stats_json_path;
    std::string trace_out_path;
    bool trace_text = false;
    SystemConfig cfg;
    cfg.numProcs = 16;
    std::uint64_t seed = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--app") {
            app_name = next();
        } else if (arg == "--procs") {
            cfg.numProcs =
                static_cast<std::uint32_t>(std::atoi(next()));
        } else if (arg == "--hop") {
            cfg.mesh.hopLatency =
                static_cast<Tick>(std::atoi(next()));
        } else if (arg == "--line-gran") {
            cfg.cache.granularity = Granularity::Line;
        } else if (arg == "--interleave") {
            cfg.homePolicy = HomePolicy::Interleave;
        } else if (arg == "--ideal-net") {
            cfg.idealNetwork = true;
        } else if (arg == "--jitter") {
            cfg.mesh.reorderJitter =
                static_cast<Tick>(std::atoi(next()));
        } else if (arg == "--aging") {
            cfg.processor.agingThreshold =
                static_cast<std::uint32_t>(std::atoi(next()));
        } else if (arg == "--seed") {
            seed = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (arg == "--check") {
            cfg.enableChecker = true;
        } else if (arg == "--trace") {
            trace_text = true;
        } else if (arg == "--trace-out") {
            trace_out_path = next();
        } else if (arg == "--stats") {
            stats_path = next();
        } else if (arg == "--stats-json") {
            stats_json_path = next();
        } else {
            usage(argv[0]);
        }
    }

    if (trace_text || !trace_out_path.empty()) {
        Trace::enableAll(true);
        // Recording to a file does not imply flooding stderr.
        Trace::setTextOutput(trace_text);
    }
    if (!trace_out_path.empty()) {
        // A full application run overflows the default ring fast; give
        // the exporter more history to slice.
        cfg.traceCapacity = std::size_t{1} << 18;
    }

    if (app_name == "list") {
        for (const auto &a : appProfiles())
            std::puts(a.name.c_str());
        return 0;
    }

    const AppProfile &app = appProfile(app_name);
    std::printf("tccsim: %s on %u processors (hop=%llu, %s, %s%s)\n",
                app.name.c_str(), cfg.numProcs,
                (unsigned long long)cfg.mesh.hopLatency,
                cfg.cache.granularity == Granularity::Word
                    ? "word-granularity"
                    : "line-granularity",
                cfg.homePolicy == HomePolicy::FirstTouch
                    ? "first-touch"
                    : "interleaved",
                cfg.idealNetwork ? ", ideal network" : "");

    System sys(cfg);
    auto sources = setupApp(sys, app, seed);
    auto res = sys.run();
    if (!res.completed) {
        std::puts("DID NOT COMPLETE (livelock or lost message?)");
        for (NodeId p = 0; p < cfg.numProcs; ++p)
            if (!sys.proc(p).done())
                std::fputs(sys.proc(p).debugDump().c_str(), stdout);
        return 1;
    }

    std::printf("\ncompleted in %llu cycles (%llu events)\n",
                (unsigned long long)res.cycles,
                (unsigned long long)res.events);

    std::puts("\n-- execution time breakdown --");
    std::puts(breakdownHeader().c_str());
    std::puts(breakdownRow(app.name, sys.breakdown()).c_str());

    std::puts("\n-- transaction characteristics (Table 3 style) --");
    std::puts(table3Header().c_str());
    std::puts(table3Row(characterize(sys, app.name)).c_str());

    std::puts("\n-- network traffic (Figure 9 style) --");
    std::puts(trafficHeader().c_str());
    std::puts(trafficRowText(trafficPerInstr(sys, app.name)).c_str());

    std::uint64_t commits = 0, violations = 0, overflows = 0;
    for (NodeId p = 0; p < cfg.numProcs; ++p) {
        commits += sys.proc(p).stats().txnsCommitted;
        violations += sys.proc(p).stats().violations;
        overflows += sys.proc(p).stats().overflows;
    }
    std::printf("\ncommits=%llu violations=%llu overflows=%llu "
                "quiesced=%s\n",
                (unsigned long long)commits,
                (unsigned long long)violations,
                (unsigned long long)overflows,
                sys.protocolQuiesced() ? "yes" : "NO");

    auto hotspots = conflictHotspots(sys, 5);
    if (!hotspots.empty()) {
        std::puts("\n-- conflict hotspots (TAPE style) --");
        for (const auto &h : hotspots)
            std::printf("  line %llx: %llu violations\n",
                        (unsigned long long)h.lineAddr,
                        (unsigned long long)h.violations);
    }

    if (!stats_path.empty()) {
        std::ofstream f(stats_path);
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n",
                         stats_path.c_str());
            return 1;
        }
        dumpStats(sys, f);
        std::printf("\nfull stats written to %s\n",
                    stats_path.c_str());
    }

    if (!stats_json_path.empty()) {
        std::ofstream f(stats_json_path);
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n",
                         stats_json_path.c_str());
            return 1;
        }
        dumpStatsJson(sys, f);
        std::printf("\nstats JSON written to %s\n",
                    stats_json_path.c_str());
    }

    if (!trace_out_path.empty()) {
        std::ofstream f(trace_out_path);
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n",
                         trace_out_path.c_str());
            return 1;
        }
        exportChromeTrace(sys.traceRecorder(), cfg.numProcs, f);
        std::printf("\ntrace written to %s (%llu events captured, "
                    "%llu dropped) - open in ui.perfetto.dev\n",
                    trace_out_path.c_str(),
                    (unsigned long long)sys.traceRecorder().captured(),
                    (unsigned long long)sys.traceRecorder().dropped());
    }

    if (cfg.enableChecker) {
        auto check = sys.checker().verify();
        std::printf("\nserializability: %s\n",
                    check.ok ? "PASS" : check.error.c_str());
        if (!check.ok)
            return 1;
    }
    return 0;
}
