/**
 * @file
 * Quickstart: build a small Scalable TCC machine, run a transactional
 * parallel-histogram kernel on it, and print the results.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <vector>

#include "core/report.hh"
#include "core/system.hh"
#include "workload/scripted_source.hh"

using namespace tcc;

namespace {

constexpr std::uint32_t kProcs = 8;
constexpr std::uint32_t kBins = 16;
constexpr std::uint32_t kItemsPerProc = 64;

/** Histogram bins live in one shared page. */
Addr
binAddr(std::uint32_t bin)
{
    return 0x90000000ull + bin * 4;
}

/**
 * Each processor classifies its items into bins, updating the shared
 * histogram transactionally: one transaction per item performing
 * load-increment-store on the bin counter (the classic TM quickstart).
 */
ScriptedSource
makeWorker(NodeId proc)
{
    ScriptedSource src;
    for (std::uint32_t i = 0; i < kItemsPerProc; ++i) {
        // "Classify" the item (some compute), then bump its bin.
        const std::uint32_t bin = (proc * 31 + i * 17) % kBins;
        src.add({
            TxOp::compute(50),          // classification work
            TxOp::load(binAddr(bin)),   // read the bin counter
            TxOp::storeAdd(binAddr(bin), 1), // counter + 1
        });
    }
    return src;
}

} // namespace

int
main()
{
    // 1. Configure the machine (defaults follow the paper's Table 2:
    //    32 KB L1 / 512 KB L2, 2D mesh with 3-cycle links, 100-cycle
    //    memory, directory per node, first-touch page placement).
    SystemConfig cfg;
    cfg.numProcs = kProcs;
    cfg.check.serial = true; // verify serializability afterwards

    System sys(cfg);

    // 2. Attach one transaction stream per processor.
    std::vector<ScriptedSource> workers;
    workers.reserve(kProcs);
    for (NodeId p = 0; p < kProcs; ++p)
        workers.push_back(makeWorker(p));
    for (NodeId p = 0; p < kProcs; ++p)
        sys.setSource(p, &workers[p]);

    // 3. Run to completion. The RunResult carries the cycle count,
    //    the execution-time breakdown, and the checker verdict.
    const RunResult res = sys.run();
    std::printf("completed: %s in %llu cycles (%llu events)\n",
                res.completed ? "yes" : "NO",
                (unsigned long long)res.cycles,
                (unsigned long long)res.events);

    // 4. Check the histogram: every increment must have survived the
    //    conflicts (TCC serializes the read-modify-writes).
    std::uint64_t total = 0;
    std::printf("histogram:");
    for (std::uint32_t b = 0; b < kBins; ++b) {
        const auto v = sys.memory().read(binAddr(b));
        total += v;
        std::printf(" %llu", (unsigned long long)v);
    }
    std::printf("\ntotal = %llu (expected %u)\n",
                (unsigned long long)total, kProcs * kItemsPerProc);

    // 5. Execution-time breakdown and protocol health.
    std::puts(breakdownHeader().c_str());
    std::puts(breakdownRow("histogram", res.breakdown).c_str());

    std::printf("violations: %llu (conflicting bin updates retried)\n",
                (unsigned long long)res.violations);

    std::printf("serializability check: %s\n",
                res.serial.ok ? "PASS" : res.serial.error.c_str());
    return res.serial.ok && total == kProcs * kItemsPerProc ? 0 : 1;
}
