/**
 * @file
 * Reproduces Figure 7: scaling of every application from 8 to 64
 * processors. For each (app, p) the harness prints the execution-time
 * breakdown normalized to the single-processor run of the same app,
 * with the speedup on top of each bar exactly as the paper annotates.
 *
 * Shape targets (the paper's testbed constants differ from ours):
 * near-linear scaling for SPECjbb / SVM Classify / swim / tomcatv /
 * barnes / radix; commit-limited volrend / equake; violation-limited
 * Cluster GA at low processor counts.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tccbench;
    const BenchArgs args = parseBenchArgs(argc, argv);
    const auto apps = benchApps(args);
    const auto procList = benchProcs(args, {8u, 16u, 32u, 64u});

    std::puts("=== Figure 7: execution time vs processor count "
              "(normalized to 1 CPU) ===");
    std::printf("%-16s %5s %9s %9s | %7s %7s %7s %7s %9s  (%% of 1-CPU "
                "time)\n",
                "application", "cpus", "speedup", "norm_time", "useful",
                "miss", "idle", "commit", "violation");

    // One job per grid cell; cell 0 of each app row is the 1-CPU
    // baseline the rest normalize against.
    struct Cell {
        std::size_t app;
        std::uint32_t procs;
    };
    std::vector<Cell> cells;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        cells.push_back({a, 1});
        for (std::uint32_t p : procList)
            cells.push_back({a, p});
    }
    SweepRunner runner(args.jobs);
    auto outs = sweepIndex<RunOutcome>(
        runner, cells.size(), [&](std::size_t i) {
            RunOptions opt;
            opt.procs = cells[i].procs;
            return runWorkload(apps[cells[i].app], opt);
        });

    const std::size_t stride = 1 + procList.size();
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const auto &uni = outs[a * stride];
        if (!uni.completed) {
            std::printf("%-16s 1-CPU run DID NOT COMPLETE\n",
                        apps[a].c_str());
            continue;
        }
        const double t1 = static_cast<double>(uni.cycles);

        for (std::size_t j = 0; j < procList.size(); ++j) {
            const auto &out = outs[a * stride + 1 + j];
            if (!out.completed) {
                std::printf("%-16s %5u DID NOT COMPLETE\n",
                            apps[a].c_str(), procList[j]);
                continue;
            }
            const double tp = static_cast<double>(out.cycles);
            const double speedup = t1 / tp;
            // Per-bucket fractions of total busy time, scaled to the
            // normalized bar height (tp/t1 * 100%).
            const double height = 100.0 * tp / t1;
            const auto &bd = out.breakdown;
            std::printf("%-16s %5u %8.1fx %8.1f%% | %6.1f%% %6.1f%% "
                        "%6.1f%% %6.1f%% %8.1f%%\n",
                        apps[a].c_str(), out.procs, speedup,
                        height, height * bd.fraction(bd.useful),
                        height * bd.fraction(bd.miss),
                        height * bd.fraction(bd.idle),
                        height * bd.fraction(bd.commit),
                        height * bd.fraction(bd.violation));
        }
    }
    return 0;
}
