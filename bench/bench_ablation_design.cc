/**
 * @file
 * Ablations of the design choices DESIGN.md calls out, at 32 CPUs:
 *
 *  1. Conflict-detection granularity: per-word SR/SM bits vs per-line
 *     bits (Section 3.1 - word-level tracking avoids false sharing
 *     violations at the cost of wider tags).
 *  2. TID aging (starvation mitigation, Section 3.3): on vs off under
 *     a high-conflict workload.
 *  3. Home mapping: first-touch placement (paper's policy) vs page
 *     interleaving - locality is what makes parallel commit cheap.
 */

#include <cstdio>

#include "bench_common.hh"

namespace {

using namespace tccbench;

/** A/B sweep: run @p variants.size() options per app concurrently. */
std::vector<tccbench::RunOutcome>
abSweep(tccbench::SweepRunner &runner,
        const std::vector<std::string> &names,
        const std::vector<tccbench::RunOptions> &variants)
{
    return tccbench::sweepIndex<tccbench::RunOutcome>(
        runner, names.size() * variants.size(), [&](std::size_t i) {
            return tccbench::runWorkload(
                names[i / variants.size()],
                variants[i % variants.size()]);
        });
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tccbench;
    const BenchArgs args = parseBenchArgs(argc, argv);
    const std::uint32_t kProcs =
        args.procs.empty() ? 32u : args.procs.front();
    SweepRunner runner(args.jobs);

    std::puts("=== Ablation 1: word vs line conflict granularity "
              "(32 CPUs) ===");
    std::printf("%-16s %14s %14s %12s %12s\n", "application",
                "word_cycles", "line_cycles", "word_viol",
                "line_viol");
    {
        const std::vector<std::string> names = {
            "cluster_ga", "water_nsquared", "volrend", "barnes"};
        RunOptions w;
        w.procs = kProcs;
        w.granularity = Granularity::Word;
        RunOptions l = w;
        l.granularity = Granularity::Line;
        auto outs = abSweep(runner, names, {w, l});
        for (std::size_t a = 0; a < names.size(); ++a) {
            const auto &word = outs[a * 2];
            const auto &line = outs[a * 2 + 1];
            std::printf("%-16s %14llu %14llu %12llu %12llu\n",
                        names[a].c_str(),
                        (unsigned long long)word.cycles,
                        (unsigned long long)line.cycles,
                        (unsigned long long)word.violations,
                        (unsigned long long)line.violations);
        }
    }

    std::puts("\n=== Ablation 2: TID aging under high conflict "
              "(32 CPUs) ===");
    std::printf("%-16s %14s %14s %12s %12s\n", "config", "cycles",
                "violations", "committed", "completed");
    {
        WorkloadParams hot;
        hot.set("conflict_prob", "0.6")
            .set("hot_words", "8")
            .set("txns_per_phase", "256")
            .set("phases", "2");
        const std::vector<std::uint32_t> agings = {3u, 0u};
        auto outs = sweepIndex<RunOutcome>(
            runner, agings.size(), [&](std::size_t i) {
                RunOptions opt;
                opt.procs = kProcs;
                opt.agingThreshold = agings[i];
                opt.wl = hot;
                return runWorkload("cluster_ga", opt);
            });
        for (std::size_t i = 0; i < agings.size(); ++i) {
            const auto &out = outs[i];
            std::printf("aging=%-10u %14llu %14llu %12llu %12s\n",
                        agings[i], (unsigned long long)out.cycles,
                        (unsigned long long)out.violations,
                        (unsigned long long)out.committedTxns,
                        out.completed ? "yes" : "NO");
        }
    }

    std::puts("\n=== Ablation 3: write-back vs write-through commit "
              "(32 CPUs) ===");
    std::printf("%-16s %14s %14s %16s %16s\n", "application",
                "wb_cycles", "wt_cycles", "wb_bytes/instr",
                "wt_bytes/instr");
    {
        const std::vector<std::string> names = {"swim", "radix",
                                                "barnes", "tomcatv"};
        RunOptions wb;
        wb.procs = kProcs;
        RunOptions wt = wb;
        wt.writeThroughCommit = true;
        auto outs = abSweep(runner, names, {wb, wt});
        for (std::size_t i = 0; i < names.size(); ++i) {
            const auto &a = outs[i * 2];
            const auto &b = outs[i * 2 + 1];
            std::printf("%-16s %14llu %14llu %16.4f %16.4f\n",
                        names[i].c_str(),
                        (unsigned long long)a.cycles,
                        (unsigned long long)b.cycles,
                        a.traffic.total(), b.traffic.total());
        }
    }

    std::puts("\n=== Ablation 4: directory cache size (32 CPUs) ===");
    std::printf("%-16s %12s %14s %14s\n", "application", "entries",
                "cycles", "dcache_misses");
    {
        const std::vector<std::string> names = {"barnes", "swim"};
        const std::vector<std::uint32_t> sizes = {0u, 8192u, 512u,
                                                  64u};
        auto outs = sweepIndex<RunOutcome>(
            runner, names.size() * sizes.size(), [&](std::size_t i) {
                RunOptions opt;
                opt.procs = kProcs;
                opt.dirCacheEntries = sizes[i % sizes.size()];
                return runWorkload(names[i / sizes.size()], opt);
            });
        for (std::size_t a = 0; a < names.size(); ++a) {
            for (std::size_t s = 0; s < sizes.size(); ++s) {
                const auto &out = outs[a * sizes.size() + s];
                std::printf("%-16s %12u %14llu %14llu%s\n",
                            names[a].c_str(), sizes[s],
                            (unsigned long long)out.cycles,
                            (unsigned long long)out.dirCacheMisses,
                            out.completed ? "" : " INCOMPLETE");
            }
        }
    }

    std::puts("\n=== Ablation 5: first-touch vs interleaved homes "
              "(32 CPUs) ===");
    std::printf("%-16s %16s %16s %10s\n", "application", "firsttouch",
                "interleave", "slowdown");
    {
        const std::vector<std::string> names = {"swim", "specjbb",
                                                "barnes", "equake"};
        RunOptions ft;
        ft.procs = kProcs;
        ft.homePolicy = HomePolicy::FirstTouch;
        RunOptions il = ft;
        il.homePolicy = HomePolicy::Interleave;
        auto outs = abSweep(runner, names, {ft, il});
        for (std::size_t i = 0; i < names.size(); ++i) {
            const auto &a = outs[i * 2];
            const auto &b = outs[i * 2 + 1];
            std::printf("%-16s %16llu %16llu %9.2fx\n",
                        names[i].c_str(),
                        (unsigned long long)a.cycles,
                        (unsigned long long)b.cycles,
                        static_cast<double>(b.cycles) /
                            static_cast<double>(a.cycles));
        }
    }
    return 0;
}
