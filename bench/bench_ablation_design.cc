/**
 * @file
 * Ablations of the design choices DESIGN.md calls out, at 32 CPUs:
 *
 *  1. Conflict-detection granularity: per-word SR/SM bits vs per-line
 *     bits (Section 3.1 - word-level tracking avoids false sharing
 *     violations at the cost of wider tags).
 *  2. TID aging (starvation mitigation, Section 3.3): on vs off under
 *     a high-conflict workload.
 *  3. Home mapping: first-touch placement (paper's policy) vs page
 *     interleaving - locality is what makes parallel commit cheap.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace tccbench;
    constexpr std::uint32_t kProcs = 32;

    std::puts("=== Ablation 1: word vs line conflict granularity "
              "(32 CPUs) ===");
    std::printf("%-16s %14s %14s %12s %12s\n", "application",
                "word_cycles", "line_cycles", "word_viol",
                "line_viol");
    for (const char *name :
         {"cluster_ga", "water_nsquared", "volrend", "barnes"}) {
        const auto &app = appProfile(name);
        RunOptions w;
        w.procs = kProcs;
        w.granularity = Granularity::Word;
        auto word = runApp(app, w);
        RunOptions l = w;
        l.granularity = Granularity::Line;
        auto line = runApp(app, l);
        std::printf("%-16s %14llu %14llu %12llu %12llu\n", name,
                    (unsigned long long)word.cycles,
                    (unsigned long long)line.cycles,
                    (unsigned long long)word.violations,
                    (unsigned long long)line.violations);
    }

    std::puts("\n=== Ablation 2: TID aging under high conflict "
              "(32 CPUs) ===");
    std::printf("%-16s %14s %14s %12s %12s\n", "config", "cycles",
                "violations", "committed", "completed");
    {
        AppProfile hot = appProfile("cluster_ga");
        hot.conflictProb = 0.6;
        hot.hotWords = 8;
        hot.txnsPerPhase = 256;
        hot.phases = 2;
        for (std::uint32_t aging : {3u, 0u}) {
            RunOptions opt;
            opt.procs = kProcs;
            opt.agingThreshold = aging;
            auto out = runApp(hot, opt);
            std::printf("aging=%-10u %14llu %14llu %12llu %12s\n",
                        aging, (unsigned long long)out.cycles,
                        (unsigned long long)out.violations,
                        (unsigned long long)out.committedTxns,
                        out.completed ? "yes" : "NO");
        }
    }

    std::puts("\n=== Ablation 3: write-back vs write-through commit "
              "(32 CPUs) ===");
    std::printf("%-16s %14s %14s %16s %16s\n", "application",
                "wb_cycles", "wt_cycles", "wb_bytes/instr",
                "wt_bytes/instr");
    for (const char *name : {"swim", "radix", "barnes", "tomcatv"}) {
        const auto &app = appProfile(name);
        RunOptions wb;
        wb.procs = kProcs;
        auto a = runApp(app, wb);
        RunOptions wt = wb;
        wt.writeThroughCommit = true;
        auto b = runApp(app, wt);
        std::printf("%-16s %14llu %14llu %16.4f %16.4f\n", name,
                    (unsigned long long)a.cycles,
                    (unsigned long long)b.cycles, a.traffic.total(),
                    b.traffic.total());
    }

    std::puts("\n=== Ablation 4: directory cache size (32 CPUs) ===");
    std::printf("%-16s %12s %14s %14s\n", "application", "entries",
                "cycles", "dcache_misses");
    for (const char *name : {"barnes", "swim"}) {
        const auto &app = appProfile(name);
        for (std::uint32_t entries : {0u, 8192u, 512u, 64u}) {
            RunOptions opt;
            opt.procs = kProcs;
            opt.dirCacheEntries = entries;
            auto out = runApp(app, opt);
            std::printf("%-16s %12u %14llu %14llu%s\n", name,
                        entries, (unsigned long long)out.cycles,
                        (unsigned long long)out.dirCacheMisses,
                        out.completed ? "" : " INCOMPLETE");
        }
    }

    std::puts("\n=== Ablation 5: first-touch vs interleaved homes "
              "(32 CPUs) ===");
    std::printf("%-16s %16s %16s %10s\n", "application", "firsttouch",
                "interleave", "slowdown");
    for (const char *name : {"swim", "specjbb", "barnes", "equake"}) {
        const auto &app = appProfile(name);
        RunOptions ft;
        ft.procs = kProcs;
        ft.homePolicy = HomePolicy::FirstTouch;
        auto a = runApp(app, ft);
        RunOptions il = ft;
        il.homePolicy = HomePolicy::Interleave;
        auto b = runApp(app, il);
        std::printf("%-16s %16llu %16llu %9.2fx\n", name,
                    (unsigned long long)a.cycles,
                    (unsigned long long)b.cycles,
                    static_cast<double>(b.cycles) /
                        static_cast<double>(a.cycles));
    }
    return 0;
}
