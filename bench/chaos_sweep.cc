/**
 * @file
 * Adversarial-network sweep: every chaos preset x a slice of the
 * paper's applications x processor counts, each point under its own
 * fault seed with BOTH correctness checkers armed (the serializability
 * replay and the online protocol-invariant engine). The protocol must
 * shrug the faults off: any violation, stall, or incompleteness fails
 * the sweep.
 *
 * The grid runs twice - serially and through SweepRunner with N
 * workers - and the two passes must be bit-identical, proving the
 * chaos stream is a pure function of (seed, config) even under
 * parallel evaluation.
 *
 * Usage: chaos_sweep [--smoke] [--out PATH] [--jobs=<n>]
 *   --smoke   presets x one application (CI wiring check)
 *   --out     JSON output path (default BENCH_chaos.json)
 *   --jobs    parallel worker count (default: TCC_JOBS env, else
 *             hardware threads)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "noc/chaos_network.hh"

#ifndef TCC_GIT_REV
#define TCC_GIT_REV "unknown"
#endif

namespace {

using namespace tccbench;

struct ChaosCell {
    std::string preset;
    std::string app;
    std::uint32_t procs;
    std::uint64_t seed;
};

std::string
cellName(const ChaosCell &c)
{
    return c.preset + "/" + c.app + "/" + std::to_string(c.procs) +
           "/s" + std::to_string(c.seed);
}

bool gSmoke = false;

RunOutcome
runCell(const ChaosCell &c)
{
    RunOptions opt;
    opt.procs = c.procs;
    opt.seed = c.seed;
    opt.network.model = NetworkConfig::Model::Chaos;
    opt.network.chaos = chaosPreset(c.preset);
    // Every grid point gets its own fault stream, decorrelated from
    // the workload seed by an odd multiplier.
    opt.network.chaos.seed = c.seed * 0x9E3779B97F4A7C15ull + 1;
    opt.check.serial = true;
    opt.check.invariants = true;
    if (gSmoke) {
        // Sanitizer builds run this fixture too: keep each point to a
        // few hundred transactions while touching every fault path.
        opt.wl.set("phases", "1").set("max_txns_per_phase", "64");
    }
    return runWorkload(c.app, opt);
}

struct Fingerprint {
    Tick cycles;
    std::uint64_t committedTxns;
    std::uint64_t violations;
    bool completed;

    bool
    operator==(const Fingerprint &o) const
    {
        return cycles == o.cycles &&
               committedTxns == o.committedTxns &&
               violations == o.violations && completed == o.completed;
    }
};

Fingerprint
fingerprint(const RunOutcome &out)
{
    return Fingerprint{out.cycles, out.committedTxns, out.violations,
                       out.completed};
}

bool
cellClean(const RunOutcome &out)
{
    return out.completed && out.serial.ok && out.invariants.ok;
}

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string outPath = "BENCH_chaos.json";
    unsigned jobs = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            jobs = static_cast<unsigned>(
                std::strtoul(argv[i] + 7, nullptr, 10));
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--smoke] [--out PATH] [--jobs=<n>]\n",
                argv[0]);
            return 2;
        }
    }
    if (jobs == 0)
        jobs = SweepRunner::defaultJobs();
    gSmoke = smoke;

    // The grid: every fault preset x applications x machine sizes,
    // 40 points (the acceptance floor is 32). Smoke trims to the
    // presets x one small application - still every fault model,
    // fast enough for sanitizer CI.
    const std::vector<std::string> apps =
        smoke ? std::vector<std::string>{"radix"}
              : std::vector<std::string>{"barnes", "radix",
                                         "water_spatial", "tomcatv"};
    const std::vector<std::uint32_t> procs =
        smoke ? std::vector<std::uint32_t>{4}
              : std::vector<std::uint32_t>{8, 16};

    std::vector<ChaosCell> grid;
    std::uint64_t seed = 1;
    for (const auto &preset : chaosPresetNames())
        for (const auto &app : apps)
            for (std::uint32_t p : procs)
                grid.push_back(ChaosCell{preset, app, p, seed++});

    std::printf("== chaos sweep: %zu fault-config x workload points, "
                "both checkers armed ==\n",
                grid.size());

    const auto s0 = std::chrono::steady_clock::now();
    SweepRunner serialRunner(1);
    const auto serial = sweepIndex<RunOutcome>(
        serialRunner, grid.size(),
        [&](std::size_t i) { return runCell(grid[i]); });
    const auto s1 = std::chrono::steady_clock::now();

    SweepRunner parallelRunner(jobs);
    const auto parallel = sweepIndex<RunOutcome>(
        parallelRunner, grid.size(),
        [&](std::size_t i) { return runCell(grid[i]); });
    const auto s2 = std::chrono::steady_clock::now();

    std::size_t passed = 0;
    bool deterministic = true;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const RunOutcome &out = serial[i];
        if (cellClean(out)) {
            ++passed;
        } else {
            std::fprintf(
                stderr, "FAIL %s: %s\n", cellName(grid[i]).c_str(),
                !out.completed         ? "did not complete"
                : !out.serial.ok      ? out.serial.error.c_str()
                                       : out.invariants.error.c_str());
        }
        if (!(fingerprint(serial[i]) == fingerprint(parallel[i]))) {
            deterministic = false;
            std::fprintf(stderr,
                         "MISMATCH %s: parallel run not bit-identical "
                         "to serial\n",
                         cellName(grid[i]).c_str());
        }
    }

    std::printf("passed             : %zu / %zu points\n", passed,
                grid.size());
    std::printf("determinism        : serial vs %u-job sweep %s\n",
                jobs, deterministic ? "bit-identical" : "MISMATCH");
    std::printf("serial   (1 job)   : %8.3f sec\n", seconds(s0, s1));
    std::printf("parallel (%u jobs) : %8.3f sec\n", jobs,
                seconds(s1, s2));

    std::FILE *f = std::fopen(outPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     outPath.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"chaos_configs_passed\": %zu,\n"
                 "  \"chaos_configs_total\": %zu,\n"
                 "  \"deterministic\": %d,\n"
                 "  \"jobs\": %u,\n"
                 "  \"serial_sec\": %.6f,\n"
                 "  \"parallel_sec\": %.6f,\n"
                 "  \"git_rev\": \"%s\",\n"
                 "  \"config\": {\n"
                 "    \"smoke\": %s,\n"
                 "    \"presets\": %zu,\n"
                 "    \"apps\": %zu,\n"
                 "    \"proc_counts\": %zu\n"
                 "  }\n"
                 "}\n",
                 passed, grid.size(), deterministic ? 1 : 0, jobs,
                 seconds(s0, s1), seconds(s1, s2), TCC_GIT_REV,
                 smoke ? "true" : "false", chaosPresetNames().size(),
                 apps.size(), procs.size());
    std::fclose(f);
    std::printf("wrote %s\n", outPath.c_str());

    return (passed == grid.size() && deterministic) ? 0 : 1;
}
