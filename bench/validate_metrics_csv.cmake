# Validate a --metrics-out CSV time series: a header starting with
# epoch,start_tick followed by at least one data row, every row with
# the header's column count. Run as
#   cmake -DCSV_FILE=<path> -P validate_metrics_csv.cmake
if(NOT DEFINED CSV_FILE)
  message(FATAL_ERROR "pass -DCSV_FILE=<path>")
endif()
file(STRINGS "${CSV_FILE}" lines)
list(LENGTH lines nlines)
if(nlines LESS 2)
  message(FATAL_ERROR
          "${CSV_FILE}: expected a header plus data rows, got "
          "${nlines} line(s)")
endif()
list(GET lines 0 header)
if(NOT header MATCHES "^epoch,start_tick,")
  message(FATAL_ERROR
          "${CSV_FILE}: header must start with 'epoch,start_tick,': "
          "'${header}'")
endif()
string(REPLACE "," ";" header_cols "${header}")
list(LENGTH header_cols ncols)
math(EXPR last "${nlines} - 1")
foreach(i RANGE 1 ${last})
  list(GET lines ${i} row)
  string(REPLACE "," ";" row_cols "${row}")
  list(LENGTH row_cols row_ncols)
  if(NOT row_ncols EQUAL ncols)
    message(FATAL_ERROR
            "${CSV_FILE}: row ${i} has ${row_ncols} columns, header "
            "has ${ncols}")
  endif()
endforeach()
message(STATUS "${CSV_FILE}: ${nlines} lines, ${ncols} columns OK")
