/**
 * @file
 * Shared driver for the benchmark harness. Each bench binary
 * regenerates one table or figure of the paper (see DESIGN.md's
 * per-experiment index); this header provides the run-one-configuration
 * plumbing they share.
 */

#ifndef TCC_BENCH_COMMON_HH
#define TCC_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/report.hh"
#include "core/sweep.hh"
#include "core/system.hh"
#include "obs/metrics.hh"
#include "workload/registry.hh"

namespace tccbench {

using namespace tcc;

/** Everything a figure needs from one finished run. */
struct RunOutcome {
    std::string app;
    std::uint32_t procs = 0;
    Tick cycles = 0;
    bool completed = false;
    Breakdown breakdown;
    AppCharacterization characterization;
    TrafficRow traffic;
    std::uint64_t committedTxns = 0;
    std::uint64_t violations = 0;
    std::uint64_t committedInstructions = 0;
    std::uint64_t dirCacheMisses = 0;
    /** Memory footprint of the run's arena (see common/arena.hh). */
    std::uint64_t arenaPeakBytes = 0;
    std::uint64_t arenaChunks = 0;
    /** Verdicts of any checkers armed via RunOptions::check. */
    CheckVerdict serial;
    CheckVerdict invariants;
    /** Epochs the metrics sampler closed (0 when not armed via
     *  RunOptions::trace). */
    std::uint64_t metricsEpochs = 0;
    /** Committed logical data-structure ops (0 for synthetic apps). */
    std::uint64_t committedOps = 0;
};

/** Tweaks applied on top of the default Table 2 configuration. */
struct RunOptions {
    std::uint32_t procs = 8;
    std::uint64_t seed = 1;
    Tick hopLatency = 3;
    Granularity granularity = Granularity::Word;
    HomePolicy homePolicy = HomePolicy::FirstTouch;
    std::uint32_t agingThreshold = 3;
    /** Interconnect (model + parameters); hopLatency above overrides
     *  network.mesh.hopLatency for the mesh-based models. */
    NetworkConfig network;
    /** Checkers to arm (chaos_sweep runs with both on). */
    CheckConfig check;
    /** Directory cache entries (0 = perfectly sized). */
    std::uint32_t dirCacheEntries = 0;
    /** Write-through commit ablation. */
    bool writeThroughCommit = false;
    /** Observability (metricsEpoch / contentionTopK arm the epoch
     *  sampler and conflict profiler; default all-off). */
    TraceConfig trace;
    /** Workload knob overrides (registry key=value pairs, e.g.
     *  {"txns_per_phase","64"} for smoke clamps). */
    WorkloadParams wl;
};

/** Run registry workload @p name once under @p opt. */
inline RunOutcome
runWorkload(const std::string &name, const RunOptions &opt)
{
    SystemConfig cfg;
    cfg.numProcs = opt.procs;
    cfg.network = opt.network;
    cfg.network.mesh.hopLatency = opt.hopLatency;
    cfg.cache.granularity = opt.granularity;
    cfg.homePolicy = opt.homePolicy;
    cfg.processor.agingThreshold = opt.agingThreshold;
    cfg.check = opt.check;
    cfg.directory.dirCacheEntries = opt.dirCacheEntries;
    cfg.writeThroughCommit = opt.writeThroughCommit;
    cfg.trace = opt.trace;

    System sys(cfg);
    const WorkloadBundle bundle =
        makeWorkload(name, opt.wl, opt.seed, opt.procs);
    bundle.attach(sys);
    const RunResult res = sys.run();

    RunOutcome out;
    out.app = name;
    out.procs = opt.procs;
    out.cycles = res.cycles;
    out.completed = res.completed;
    out.breakdown = res.breakdown;
    out.characterization = characterize(sys, name);
    out.traffic = trafficPerInstr(sys, name);
    out.committedTxns = res.committedTxns;
    out.violations = res.violations;
    for (NodeId p = 0; p < sys.numProcs(); ++p)
        out.dirCacheMisses += sys.directory(p).stats().dirCacheMisses;
    out.committedInstructions = res.committedInstructions;
    const Arena::Stats as = sys.arenaStats();
    out.arenaPeakBytes = as.peakBytes;
    out.arenaChunks = as.chunks;
    out.serial = res.serial;
    out.invariants = res.invariants;
    if (const MetricsSampler *m = sys.metricsSampler())
        out.metricsEpochs = m->closed();
    out.committedOps = bundle.committedOps();
    return out;
}

/** The paper's application ordering for every figure (Table-3
 *  workload names from the registry). */
inline std::vector<std::string>
benchApps()
{
    std::vector<std::string> names;
    for (const auto &info : workloadInfos())
        if (info.kind == "table3")
            names.push_back(info.name);
    return names;
}

/**
 * Command-line options shared by every figure driver:
 *   --filter=<app>   only run applications whose name contains <app>
 *   --procs=<list>   comma-separated processor counts, replacing the
 *                    figure's default sweep (e.g. --procs=8,16)
 *   --jobs=<n>       concurrent simulations (default: TCC_JOBS env,
 *                    else hardware threads; 1 = serial)
 */
struct BenchArgs {
    std::string filter;
    std::vector<std::uint32_t> procs;
    unsigned jobs = 0; ///< 0 = SweepRunner::defaultJobs()
};

/** Parse @p argv into a BenchArgs; exits with usage on bad input. */
inline BenchArgs
parseBenchArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--filter=", 9) == 0) {
            args.filter = a + 9;
        } else if (std::strncmp(a, "--procs=", 8) == 0) {
            const char *s = a + 8;
            while (*s) {
                char *end = nullptr;
                const unsigned long v = std::strtoul(s, &end, 10);
                if (end == s || v == 0 ||
                    (*end != '\0' && *end != ',')) {
                    std::fprintf(stderr,
                                 "bad --procs list: '%s'\n", a + 8);
                    std::exit(2);
                }
                args.procs.push_back(
                    static_cast<std::uint32_t>(v));
                s = *end == ',' ? end + 1 : end;
            }
        } else if (std::strncmp(a, "--jobs=", 7) == 0) {
            char *end = nullptr;
            const unsigned long v = std::strtoul(a + 7, &end, 10);
            if (end == a + 7 || *end != '\0' || v == 0) {
                std::fprintf(stderr, "bad --jobs value: '%s'\n",
                             a + 7);
                std::exit(2);
            }
            args.jobs = static_cast<unsigned>(v);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--filter=<app>] "
                         "[--procs=<n,n,...>] [--jobs=<n>]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    return args;
}

/** The figure's application list after applying --filter. */
inline std::vector<std::string>
benchApps(const BenchArgs &args)
{
    std::vector<std::string> apps;
    for (const auto &app : benchApps()) {
        if (args.filter.empty() ||
            app.find(args.filter) != std::string::npos) {
            apps.push_back(app);
        }
    }
    if (apps.empty())
        std::fprintf(stderr,
                     "warning: --filter=%s matches no application\n",
                     args.filter.c_str());
    return apps;
}

/** The figure's processor sweep: --procs if given, else @p defaults. */
inline std::vector<std::uint32_t>
benchProcs(const BenchArgs &args,
           std::initializer_list<std::uint32_t> defaults)
{
    if (!args.procs.empty())
        return args.procs;
    return std::vector<std::uint32_t>(defaults);
}

} // namespace tccbench

#endif // TCC_BENCH_COMMON_HH
