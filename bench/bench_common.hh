/**
 * @file
 * Shared driver for the benchmark harness. Each bench binary
 * regenerates one table or figure of the paper (see DESIGN.md's
 * per-experiment index); this header provides the run-one-configuration
 * plumbing they share.
 */

#ifndef TCC_BENCH_COMMON_HH
#define TCC_BENCH_COMMON_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/report.hh"
#include "core/system.hh"
#include "workload/synthetic_app.hh"

namespace tccbench {

using namespace tcc;

/** Everything a figure needs from one finished run. */
struct RunOutcome {
    std::string app;
    std::uint32_t procs = 0;
    Tick cycles = 0;
    bool completed = false;
    Breakdown breakdown;
    AppCharacterization characterization;
    TrafficRow traffic;
    std::uint64_t committedTxns = 0;
    std::uint64_t violations = 0;
    std::uint64_t committedInstructions = 0;
    std::uint64_t dirCacheMisses = 0;
};

/** Tweaks applied on top of the default Table 2 configuration. */
struct RunOptions {
    std::uint32_t procs = 8;
    std::uint64_t seed = 1;
    Tick hopLatency = 3;
    Granularity granularity = Granularity::Word;
    HomePolicy homePolicy = HomePolicy::FirstTouch;
    std::uint32_t agingThreshold = 3;
    bool idealNetwork = false;
    /** Directory cache entries (0 = perfectly sized). */
    std::uint32_t dirCacheEntries = 0;
    /** Write-through commit ablation. */
    bool writeThroughCommit = false;
};

/** Run @p profile once under @p opt and collect the outcome. */
inline RunOutcome
runApp(const AppProfile &profile, const RunOptions &opt)
{
    SystemConfig cfg;
    cfg.numProcs = opt.procs;
    cfg.mesh.hopLatency = opt.hopLatency;
    cfg.cache.granularity = opt.granularity;
    cfg.homePolicy = opt.homePolicy;
    cfg.processor.agingThreshold = opt.agingThreshold;
    cfg.idealNetwork = opt.idealNetwork;
    cfg.directory.dirCacheEntries = opt.dirCacheEntries;
    cfg.writeThroughCommit = opt.writeThroughCommit;

    System sys(cfg);
    auto sources = setupApp(sys, profile, opt.seed);
    auto res = sys.run();

    RunOutcome out;
    out.app = profile.name;
    out.procs = opt.procs;
    out.cycles = res.cycles;
    out.completed = res.completed;
    out.breakdown = sys.breakdown();
    out.characterization = characterize(sys, profile.name);
    out.traffic = trafficPerInstr(sys, profile.name);
    for (NodeId p = 0; p < sys.numProcs(); ++p) {
        out.committedTxns += sys.proc(p).stats().txnsCommitted;
        out.violations += sys.proc(p).stats().violations;
        out.dirCacheMisses += sys.directory(p).stats().dirCacheMisses;
    }
    out.committedInstructions = sys.committedInstructions();
    return out;
}

/** The paper's application ordering for every figure. */
inline const std::vector<AppProfile> &
benchApps()
{
    return appProfiles();
}

} // namespace tccbench

#endif // TCC_BENCH_COMMON_HH
