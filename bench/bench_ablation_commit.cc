/**
 * @file
 * Ablation: scalable (directory, parallel-commit) TCC vs. the original
 * small-scale (bus, serialized-commit) TCC - the comparison motivating
 * the paper (Section 2.2: "the sum of all commit times places a lower
 * bound on execution time" for the bus design).
 *
 * Expected shape: the bus design is competitive at low processor
 * counts (where the paper says TCC "works well within a CMP") but
 * flattens as commit serialization saturates the bus, while Scalable
 * TCC keeps scaling. The effect is strongest for commit-bound
 * applications (volrend, equake).
 */

#include <cstdio>

#include "bench_common.hh"
#include "busbaseline/bus_tcc.hh"

namespace {

using namespace tccbench;

/**
 * Cycles of one bus-baseline run, with completion reported
 * separately: an incomplete run must never be conflated with a
 * 0-cycle one (which would read as an infinitely fast bus).
 */
struct BusResult {
    Tick cycles = 0;
    bool completed = false;
};

/** Run the bus baseline on the same workload bundle (the registry
 *  attaches to either machine - the drop-in interchange the shared
 *  RunResult surface buys). */
BusResult
runBus(const std::string &app, std::uint32_t procs,
       std::uint64_t seed)
{
    BusConfig cfg;
    cfg.numProcs = procs;
    BusTcc bus(cfg);
    const WorkloadBundle bundle =
        makeWorkload(app, {}, seed, procs);
    bundle.attach(bus);
    const RunResult res = bus.run();
    return BusResult{res.cycles, res.completed};
}

/** Both designs on one (app, procs) grid cell. */
struct Cell {
    BusResult bus;
    RunOutcome scal;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace tccbench;
    const BenchArgs args = parseBenchArgs(argc, argv);
    const auto procList = benchProcs(args, {4u, 8u, 16u, 32u, 64u});

    std::vector<std::string> names;
    for (const char *name : {"volrend", "equake", "barnes", "specjbb"})
        if (args.filter.empty() ||
            std::string(name).find(args.filter) != std::string::npos)
            names.push_back(name);

    std::puts("=== Ablation: parallel commit (Scalable TCC) vs "
              "serialized commit (bus TCC) ===");
    std::printf("%-16s %5s %14s %14s %12s\n", "application", "cpus",
                "bus_speedup", "scal_speedup", "scal/bus");

    // Grid cell 0 of each app row is the 1-CPU baseline.
    const std::size_t stride = 1 + procList.size();
    SweepRunner runner(args.jobs);
    auto cells = sweepIndex<Cell>(
        runner, names.size() * stride, [&](std::size_t i) {
            const std::string &app = names[i / stride];
            const std::size_t j = i % stride;
            const std::uint32_t p =
                j == 0 ? 1u : procList[j - 1];
            Cell cell;
            cell.bus = runBus(app, p, 1);
            RunOptions opt;
            opt.procs = p;
            cell.scal = runWorkload(app, opt);
            return cell;
        });

    for (std::size_t a = 0; a < names.size(); ++a) {
        const char *name = names[a].c_str();
        const Cell &base = cells[a * stride];
        for (std::size_t j = 0; j < procList.size(); ++j) {
            const std::uint32_t p = procList[j];
            const Cell &cell = cells[a * stride + 1 + j];
            const bool busOk =
                base.bus.completed && cell.bus.completed;
            const bool scalOk =
                base.scal.completed && cell.scal.completed;
            if (!busOk || !scalOk) {
                std::printf("%-16s %5u %14s %14s %12s\n", name, p,
                            busOk ? "-" : "DID NOT COMPLETE",
                            scalOk ? "-" : "DID NOT COMPLETE", "-");
                continue;
            }
            const double bus_speedup =
                static_cast<double>(base.bus.cycles) /
                static_cast<double>(cell.bus.cycles);
            const double scal_speedup =
                static_cast<double>(base.scal.cycles) /
                static_cast<double>(cell.scal.cycles);
            std::printf("%-16s %5u %13.1fx %13.1fx %11.2fx\n", name, p,
                        bus_speedup, scal_speedup,
                        scal_speedup / bus_speedup);
        }
    }
    return 0;
}
