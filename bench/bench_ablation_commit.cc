/**
 * @file
 * Ablation: scalable (directory, parallel-commit) TCC vs. the original
 * small-scale (bus, serialized-commit) TCC - the comparison motivating
 * the paper (Section 2.2: "the sum of all commit times places a lower
 * bound on execution time" for the bus design).
 *
 * Expected shape: the bus design is competitive at low processor
 * counts (where the paper says TCC "works well within a CMP") but
 * flattens as commit serialization saturates the bus, while Scalable
 * TCC keeps scaling. The effect is strongest for commit-bound
 * applications (volrend, equake).
 */

#include <cstdio>

#include "bench_common.hh"
#include "busbaseline/bus_tcc.hh"

namespace {

using namespace tccbench;

/** Run the bus baseline on the same workload and report cycles. */
Tick
runBus(const AppProfile &profile, std::uint32_t procs,
       std::uint64_t seed)
{
    BusConfig cfg;
    cfg.numProcs = procs;
    BusTcc bus(cfg);
    std::vector<std::unique_ptr<SyntheticSource>> sources;
    for (NodeId p = 0; p < procs; ++p) {
        sources.push_back(std::make_unique<SyntheticSource>(
            profile, seed, p, procs));
        bus.setSource(p, sources.back().get());
    }
    auto res = bus.run();
    return res.completed ? res.cycles : 0;
}

} // namespace

int
main()
{
    using namespace tccbench;

    std::puts("=== Ablation: parallel commit (Scalable TCC) vs "
              "serialized commit (bus TCC) ===");
    std::printf("%-16s %5s %14s %14s %12s\n", "application", "cpus",
                "bus_speedup", "scal_speedup", "scal/bus");

    for (const char *name : {"volrend", "equake", "barnes", "specjbb"}) {
        const auto &app = appProfile(name);

        const Tick bus1 = runBus(app, 1, 1);
        RunOptions uni;
        uni.procs = 1;
        const auto scal1 = runApp(app, uni);

        for (std::uint32_t p : {4u, 8u, 16u, 32u, 64u}) {
            const Tick busp = runBus(app, p, 1);
            RunOptions opt;
            opt.procs = p;
            const auto scalp = runApp(app, opt);
            if (busp == 0 || !scalp.completed) {
                std::printf("%-16s %5u DID NOT COMPLETE\n", name, p);
                continue;
            }
            const double bus_speedup =
                static_cast<double>(bus1) / static_cast<double>(busp);
            const double scal_speedup =
                static_cast<double>(scal1.cycles) /
                static_cast<double>(scalp.cycles);
            std::printf("%-16s %5u %13.1fx %13.1fx %11.2fx\n", name, p,
                        bus_speedup, scal_speedup,
                        scal_speedup / bus_speedup);
        }
    }
    return 0;
}
