# Validate the schema of a machine-readable JSON artifact (the
# BENCH_*.json bench outputs and the observability JSONs emitted by
# --stats-json / --trace-out): required numeric fields, optional
# required string fields, optional required non-empty arrays, plus a
# config object. Run as
#   cmake -DJSON_FILE=<path> [-DREQUIRED_KEYS=a,b.c] \
#         [-DREQUIRED_STRING_KEYS=d,e] \
#         [-DREQUIRED_ARRAY_KEYS=f,g.h] \
#         [-DREQUIRED_PRESENT_KEYS=i,j] [-DSERIES_OBJECT=k.series] \
#         [-DREQUIRE_CONFIG=OFF] -P validate_bench_json.cmake
# Key lists are comma-separated; a dot inside a key descends into
# nested objects ("system.procs" checks doc.system.procs). No emitted
# key contains a literal dot, so the split is unambiguous.
# REQUIRED_KEYS defaults to the bench_kernel schema for backward
# compatibility; pass an explicitly empty value to skip numeric checks.
if(NOT DEFINED JSON_FILE)
  message(FATAL_ERROR "pass -DJSON_FILE=<path>")
endif()
if(NOT DEFINED REQUIRED_KEYS)
  set(REQUIRED_KEYS "events_per_sec,cycles_per_sec")
endif()
if(NOT DEFINED REQUIRE_CONFIG)
  set(REQUIRE_CONFIG ON)
endif()
string(REPLACE "," ";" key_list "${REQUIRED_KEYS}")
string(REPLACE "," ";" string_key_list "${REQUIRED_STRING_KEYS}")
string(REPLACE "," ";" array_key_list "${REQUIRED_ARRAY_KEYS}")
string(REPLACE "," ";" present_key_list "${REQUIRED_PRESENT_KEYS}")

file(READ "${JSON_FILE}" doc)

foreach(key IN LISTS key_list)
  string(REPLACE "." ";" path "${key}")
  string(JSON val ERROR_VARIABLE err GET "${doc}" ${path})
  if(err)
    message(FATAL_ERROR "${JSON_FILE}: missing key '${key}': ${err}")
  endif()
  if(NOT val MATCHES "^-?[0-9]+(\\.[0-9]+)?([eE][-+]?[0-9]+)?$")
    message(FATAL_ERROR
            "${JSON_FILE}: key '${key}' is not numeric: '${val}'")
  endif()
endforeach()

foreach(key IN LISTS string_key_list)
  string(REPLACE "." ";" path "${key}")
  string(JSON ktype ERROR_VARIABLE err TYPE "${doc}" ${path})
  if(err)
    message(FATAL_ERROR "${JSON_FILE}: missing key '${key}': ${err}")
  endif()
  if(NOT ktype STREQUAL "STRING")
    message(FATAL_ERROR
            "${JSON_FILE}: key '${key}' is not a string (${ktype})")
  endif()
  string(JSON val GET "${doc}" ${path})
  if(val STREQUAL "")
    message(FATAL_ERROR "${JSON_FILE}: key '${key}' is empty")
  endif()
endforeach()

foreach(key IN LISTS array_key_list)
  string(REPLACE "." ";" path "${key}")
  string(JSON ktype ERROR_VARIABLE err TYPE "${doc}" ${path})
  if(err)
    message(FATAL_ERROR "${JSON_FILE}: missing key '${key}': ${err}")
  endif()
  if(NOT ktype STREQUAL "ARRAY")
    message(FATAL_ERROR
            "${JSON_FILE}: key '${key}' is not an array (${ktype})")
  endif()
  string(JSON len LENGTH "${doc}" ${path})
  if(len EQUAL 0)
    message(FATAL_ERROR "${JSON_FILE}: array '${key}' is empty")
  endif()
endforeach()

# Present-with-any-type keys: the key must exist but may hold an empty
# array or any JSON type (e.g. contention.blame_edges on a run that saw
# no aborts).
foreach(key IN LISTS present_key_list)
  string(REPLACE "." ";" path "${key}")
  string(JSON ktype ERROR_VARIABLE err TYPE "${doc}" ${path})
  if(err)
    message(FATAL_ERROR "${JSON_FILE}: missing key '${key}': ${err}")
  endif()
endforeach()

# Time-series object check: with -DSERIES_OBJECT=<key> every member of
# doc.<key> must be an array and all members must have equal length -
# the column contract of the metrics epoch series (one value per probe
# per closed epoch; a ragged series means a probe skipped an epoch).
if(DEFINED SERIES_OBJECT)
  string(REPLACE "." ";" spath "${SERIES_OBJECT}")
  string(JSON stype ERROR_VARIABLE err TYPE "${doc}" ${spath})
  if(err OR NOT stype STREQUAL "OBJECT")
    message(FATAL_ERROR
            "${JSON_FILE}: '${SERIES_OBJECT}' must be an object: ${err}")
  endif()
  string(JSON series GET "${doc}" ${spath})
  string(JSON nmember LENGTH "${series}")
  if(nmember EQUAL 0)
    message(FATAL_ERROR
            "${JSON_FILE}: series object '${SERIES_OBJECT}' is empty")
  endif()
  set(series_len "")
  math(EXPR last "${nmember} - 1")
  foreach(i RANGE ${last})
    string(JSON member MEMBER "${series}" ${i})
    string(JSON mtype TYPE "${series}" "${member}")
    if(NOT mtype STREQUAL "ARRAY")
      message(FATAL_ERROR
              "${JSON_FILE}: series member '${SERIES_OBJECT}.${member}' "
              "is not an array (${mtype})")
    endif()
    string(JSON mlen LENGTH "${series}" "${member}")
    if(series_len STREQUAL "")
      set(series_len "${mlen}")
    elseif(NOT mlen EQUAL series_len)
      message(FATAL_ERROR
              "${JSON_FILE}: ragged series: '${SERIES_OBJECT}.${member}' "
              "has ${mlen} entries, expected ${series_len}")
    endif()
  endforeach()
endif()

if(REQUIRE_CONFIG)
  string(JSON cfg_type ERROR_VARIABLE err TYPE "${doc}" config)
  if(err OR NOT cfg_type STREQUAL "OBJECT")
    message(FATAL_ERROR "${JSON_FILE}: 'config' must be an object")
  endif()
endif()

# Optional per-point schema check: with -DPOINTS_ARRAY=<key> and
# -DPOINT_REQUIRED_KEYS=a,b every element of doc.<key> must contain
# each listed key. Guards against one sweep leg emitting rows with a
# narrower schema than the others (e.g. a sync mode that forgets its
# cadence counters).
if(DEFINED POINTS_ARRAY AND DEFINED POINT_REQUIRED_KEYS)
  string(REPLACE "," ";" point_key_list "${POINT_REQUIRED_KEYS}")
  string(JSON npts LENGTH "${doc}" ${POINTS_ARRAY})
  math(EXPR last "${npts} - 1")
  foreach(i RANGE ${last})
    foreach(key IN LISTS point_key_list)
      string(JSON val ERROR_VARIABLE err GET
             "${doc}" ${POINTS_ARRAY} ${i} ${key})
      if(err)
        message(FATAL_ERROR
                "${JSON_FILE}: point ${i} of '${POINTS_ARRAY}' is "
                "missing key '${key}': ${err}")
      endif()
    endforeach()
  endforeach()
endif()

# Optional duplicate-point check: with -DPOINTS_ARRAY=<key> and
# -DUNIQUE_POINT_KEYS=a,b each element of doc.<key> must have a unique
# (a, b, ...) tuple. Guards against a sweep emitting the same measured
# point twice under different requested parameters (e.g. a jobs value
# clamped to the domain count).
if(DEFINED POINTS_ARRAY AND DEFINED UNIQUE_POINT_KEYS)
  string(REPLACE "," ";" unique_key_list "${UNIQUE_POINT_KEYS}")
  string(JSON npts LENGTH "${doc}" ${POINTS_ARRAY})
  set(seen_tuples "")
  math(EXPR last "${npts} - 1")
  foreach(i RANGE ${last})
    set(tuple "")
    foreach(key IN LISTS unique_key_list)
      string(JSON val GET "${doc}" ${POINTS_ARRAY} ${i} ${key})
      string(APPEND tuple "${key}=${val}/")
    endforeach()
    list(FIND seen_tuples "${tuple}" dup_idx)
    if(NOT dup_idx EQUAL -1)
      message(FATAL_ERROR
              "${JSON_FILE}: duplicate point ${tuple} in "
              "'${POINTS_ARRAY}'")
    endif()
    list(APPEND seen_tuples "${tuple}")
  endforeach()
endif()

message(STATUS "${JSON_FILE}: schema OK")
