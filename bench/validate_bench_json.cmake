# Validate the schema of a machine-readable bench JSON (BENCH_kernel,
# BENCH_sweep, ...): required top-level numeric fields, optional
# required string fields, plus a config object. Run as
#   cmake -DJSON_FILE=<path> [-DREQUIRED_KEYS=a,b,c] \
#         [-DREQUIRED_STRING_KEYS=d,e] -P validate_bench_json.cmake
# Both key lists are comma-separated; REQUIRED_KEYS defaults to the
# bench_kernel schema for backward compatibility.
if(NOT DEFINED JSON_FILE)
  message(FATAL_ERROR "pass -DJSON_FILE=<path>")
endif()
if(NOT DEFINED REQUIRED_KEYS)
  set(REQUIRED_KEYS "events_per_sec,cycles_per_sec")
endif()
string(REPLACE "," ";" key_list "${REQUIRED_KEYS}")
string(REPLACE "," ";" string_key_list "${REQUIRED_STRING_KEYS}")

file(READ "${JSON_FILE}" doc)

foreach(key IN LISTS key_list)
  string(JSON val ERROR_VARIABLE err GET "${doc}" "${key}")
  if(err)
    message(FATAL_ERROR "${JSON_FILE}: missing key '${key}': ${err}")
  endif()
  if(NOT val MATCHES "^[0-9]+(\\.[0-9]+)?$")
    message(FATAL_ERROR
            "${JSON_FILE}: key '${key}' is not numeric: '${val}'")
  endif()
endforeach()

foreach(key IN LISTS string_key_list)
  string(JSON ktype ERROR_VARIABLE err TYPE "${doc}" "${key}")
  if(err)
    message(FATAL_ERROR "${JSON_FILE}: missing key '${key}': ${err}")
  endif()
  if(NOT ktype STREQUAL "STRING")
    message(FATAL_ERROR
            "${JSON_FILE}: key '${key}' is not a string (${ktype})")
  endif()
  string(JSON val GET "${doc}" "${key}")
  if(val STREQUAL "")
    message(FATAL_ERROR "${JSON_FILE}: key '${key}' is empty")
  endif()
endforeach()

string(JSON cfg_type ERROR_VARIABLE err TYPE "${doc}" config)
if(err OR NOT cfg_type STREQUAL "OBJECT")
  message(FATAL_ERROR "${JSON_FILE}: 'config' must be an object")
endif()

message(STATUS "${JSON_FILE}: schema OK")
