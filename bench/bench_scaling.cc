/**
 * @file
 * Paper-scale commit-path benchmark with a machine-readable result
 * (BENCH_scaling.json): the same constant-work barnes run swept across
 * processor counts {64, 256, 1024} and commit fan-out strategies
 * {flat, tree-k4, tree-k8}.
 *
 * The paper evaluates up to 64 processors; this sweep asks what the
 * commit path costs beyond that. Flat fan-out serializes every Skip /
 * Probe / Inv copy through the sender's NIC, so a commit at N nodes
 * pays O(N) serialized injections. The combining tree (noc/network.hh,
 * DESIGN.md section 12) relays copies through the first destinations,
 * cutting the critical path to O(k log_k N).
 *
 * Three gates, all hard failures:
 *  - every point must complete, quiesce, and pass the online
 *    protocol-invariant checker;
 *  - at each processor count, tree runs must commit exactly the same
 *    transaction count and produce a bit-identical final-memory
 *    fingerprint as the flat run (timing changes, outcomes do not);
 *  - at the largest processor count, the tree's per-commit
 *    NIC-serialized multicast cost must be at most 1/4 of flat's
 *    (in practice it is ~1/40 at 1024 nodes).
 *
 * Per point the JSON records commit-latency percentiles and the
 * per-commit directories-touched / multicast-cost distributions (all
 * from the transaction ledger), merged directory commit-occupancy, and
 * the network's multicast counters.
 *
 * Usage: bench_scaling [--smoke] [--out PATH]
 *   --smoke   procs {16, 64} x {flat, tree-k4}, tiny workload
 *   --out     JSON output path (default BENCH_scaling.json)
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "core/system.hh"
#include "obs/tx_ledger.hh"
#include "sim/stats.hh"
#include "workload/registry.hh"

#ifndef TCC_GIT_REV
#define TCC_GIT_REV "unknown"
#endif

namespace {

using namespace tcc;

struct Topo {
    const char *name;
    MulticastConfig mc;
};

/** Everything one (procs, topology) point reports and gates on. */
struct Point {
    std::uint32_t procs = 0;
    std::string topo;
    double wallSec = 0;
    Tick cycles = 0;
    std::uint64_t committedTxns = 0;
    std::uint64_t violations = 0;
    std::uint64_t fingerprint = 0;
    std::uint64_t ledgerEntries = 0;
    // Commit latency (cycles), per committed transaction.
    double latP50 = 0, latP90 = 0, latP99 = 0;
    // Directories touched per commit.
    double dirsMean = 0, dirsP50 = 0, dirsP99 = 0;
    // NIC-serialized multicast injections per commit.
    double nicMean = 0, nicP50 = 0, nicP99 = 0;
    // Directory single-server occupancy per served commit, merged
    // across all directories.
    double occMean = 0, occP99 = 0;
    std::uint64_t netMulticasts = 0;
    std::uint64_t netMulticastNic = 0;
};

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

bool
runPoint(std::uint32_t procs, const Topo &topo, bool smoke, Point *out)
{
    SystemConfig cfg;
    cfg.numProcs = procs;
    cfg.homePolicy = HomePolicy::Interleave;
    cfg.network.multicast = topo.mc;
    cfg.check.invariants = true;
    // A commit's Skip fan-out emits one SkipSend per non-writing
    // directory, so Commit-category traffic grows with the node count
    // (~procs records per commit at 1024 nodes). Scale the ring with
    // the sweep point so the ledger keeps every commit's start tick;
    // 8k slots per node is ~320 MB of 40-byte records at 1024 procs.
    cfg.trace.capacity =
        std::max(std::size_t{1} << 18, std::size_t{procs} * 8192);

    System sys(cfg);
    // Pin every plain store to a single writer (each proc's own shared
    // slice; hot-word RMWs stay commutative increments). The final
    // memory image is then a pure function of the committed
    // transaction set - independent of commit interleaving - which is
    // what makes the flat-vs-tree fingerprint gate sound: the tree may
    // reorder commits (timing feeds back into TID acquisition), but a
    // lost, duplicated, or corrupted delivery changes the image.
    WorkloadParams wl;
    wl.set("write_spread_dirs", "1");
    if (smoke)
        wl.set("phases", "1").set("max_txns_per_phase", "64");
    const WorkloadBundle bundle =
        makeWorkload("barnes", wl, /*seed=*/1, procs);
    bundle.attach(sys);

    const auto t0 = std::chrono::steady_clock::now();
    RunResult res = sys.run();
    const auto t1 = std::chrono::steady_clock::now();

    out->procs = procs;
    out->topo = topo.name;
    out->wallSec = seconds(t0, t1);
    out->cycles = res.cycles;
    out->committedTxns = res.committedTxns;
    out->violations = res.violations;
    out->fingerprint = sys.memory().fingerprint();

    if (!res.completed || !res.quiesced) {
        std::fprintf(stderr,
                     "FAIL: procs=%u topo=%s did not %s\n", procs,
                     topo.name,
                     res.completed ? "quiesce" : "complete");
        return false;
    }
    if (!res.invariants.ok) {
        std::fprintf(stderr,
                     "FAIL: procs=%u topo=%s invariant checker: %s\n",
                     procs, topo.name, res.invariants.error.c_str());
        return false;
    }

    Distribution lat, dirs, nic;
    const auto ledger = buildTxLedger(sys.traceRecorder());
    out->ledgerEntries = ledger.size();
    for (const TxLedgerEntry &e : ledger) {
        lat.sample(static_cast<double>(e.commitCycles()));
        dirs.sample(static_cast<double>(e.directoriesTouched));
        nic.sample(static_cast<double>(e.multicastEvents));
    }
    out->latP50 = lat.percentile(50);
    out->latP90 = lat.percentile(90);
    out->latP99 = lat.percentile(99);
    out->dirsMean = dirs.mean();
    out->dirsP50 = dirs.percentile(50);
    out->dirsP99 = dirs.percentile(99);
    out->nicMean = nic.mean();
    out->nicP50 = nic.percentile(50);
    out->nicP99 = nic.percentile(99);

    Distribution occ;
    for (NodeId d = 0; d < sys.numProcs(); ++d)
        occ.merge(sys.directory(d).stats().commitOccupancy);
    out->occMean = occ.mean();
    out->occP99 = occ.percentile(99);

    const auto &ns = sys.network().stats();
    out->netMulticasts = ns.multicasts;
    out->netMulticastNic = ns.multicastNicEvents;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string outPath = "BENCH_scaling.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    // The ledger needs the Proc + Commit categories recorded
    // (structured ring only; no stderr text).
    Trace::setTextOutput(false);
    Trace::enable(TraceCat::Proc);
    Trace::enable(TraceCat::Commit);

    const std::vector<std::uint32_t> procsList =
        smoke ? std::vector<std::uint32_t>{16, 64}
              : std::vector<std::uint32_t>{64, 256, 1024};
    std::vector<Topo> topos = {
        {"flat", {}},
        {"tree-k4",
         {MulticastConfig::Topology::Tree, /*fanout=*/4,
          /*minDests=*/8}},
    };
    if (!smoke) {
        topos.push_back({"tree-k8",
                         {MulticastConfig::Topology::Tree,
                          /*fanout=*/8, /*minDests=*/8}});
    }

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("== commit-path scaling, 64 -> 1024 nodes "
                "(hw threads: %u) ==\n",
                hw);

    std::vector<Point> points;
    bool outcomesMatch = true;
    for (std::uint32_t procs : procsList) {
        // Held by value: `points` reallocates as the row fills in.
        Point flat;
        bool haveFlat = false;
        for (const Topo &topo : topos) {
            Point pt;
            if (!runPoint(procs, topo, smoke, &pt))
                return 1;
            std::printf(
                "procs=%-5u %-8s : %8.3f sec  %9llu cycles  "
                "commits=%-5llu  lat p50/p99 %7.0f/%7.0f  "
                "nic/commit p50 %6.0f  dirs/commit p50 %4.0f\n",
                procs, topo.name, pt.wallSec,
                (unsigned long long)pt.cycles,
                (unsigned long long)pt.committedTxns, pt.latP50,
                pt.latP99, pt.nicP50, pt.dirsP50);
            points.push_back(pt);
            if (!haveFlat) {
                flat = pt;
                haveFlat = true;
                continue;
            }
            // Gate: the tree reshapes timing, never protocol outcomes.
            if (pt.committedTxns != flat.committedTxns ||
                pt.fingerprint != flat.fingerprint) {
                std::fprintf(
                    stderr,
                    "MISMATCH at procs=%u %s vs flat: commits "
                    "%llu vs %llu, fingerprint %016llx vs %016llx\n",
                    procs, pt.topo.c_str(),
                    (unsigned long long)pt.committedTxns,
                    (unsigned long long)flat.committedTxns,
                    (unsigned long long)pt.fingerprint,
                    (unsigned long long)flat.fingerprint);
                outcomesMatch = false;
            }
        }
    }

    // Sublinearity gate at the largest processor count: the tree's
    // median per-commit NIC cost must beat flat by at least 4x (the
    // analytic ratio N / (k log_k N) is ~40x at 1024, k=4).
    double flatNicP50 = 0, treeNicP50 = 0;
    for (const Point &pt : points) {
        if (pt.procs != procsList.back())
            continue;
        if (pt.topo == "flat")
            flatNicP50 = pt.nicP50;
        else if (pt.topo == "tree-k4")
            treeNicP50 = pt.nicP50;
    }
    const bool sublinear =
        flatNicP50 > 0 && treeNicP50 > 0 &&
        treeNicP50 * 4.0 <= flatNicP50;
    std::printf("outcome identity   : %s\n",
                outcomesMatch ? "tree == flat (commits, memory image)"
                              : "MISMATCH");
    std::printf("nic sublinearity   : p50 %.0f (flat) vs %.0f "
                "(tree-k4) at %u procs -> %s\n",
                flatNicP50, treeNicP50, procsList.back(),
                sublinear ? "OK"
                : smoke   ? "not armed (smoke grid stops at 64)"
                          : "FAIL");

    std::FILE *f = std::fopen(outPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     outPath.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"outcomes_match\": %d,\n"
                 "  \"nic_sublinear\": %d,\n"
                 "  \"flat_nic_p50_largest\": %.1f,\n"
                 "  \"tree_k4_nic_p50_largest\": %.1f,\n"
                 "  \"points_total\": %zu,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"git_rev\": \"%s\",\n"
                 "  \"points\": [\n",
                 outcomesMatch ? 1 : 0, sublinear ? 1 : 0, flatNicP50,
                 treeNicP50, points.size(), hw, TCC_GIT_REV);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &pt = points[i];
        std::fprintf(
            f,
            "    {\"procs\": %u, \"topology\": \"%s\", "
            "\"wall_sec\": %.6f, \"cycles\": %llu, "
            "\"commits\": %llu, \"violations\": %llu, "
            "\"ledger_entries\": %llu, "
            "\"fingerprint\": \"%016llx\", "
            "\"commit_latency_p50\": %.1f, "
            "\"commit_latency_p90\": %.1f, "
            "\"commit_latency_p99\": %.1f, "
            "\"dirs_per_commit_mean\": %.2f, "
            "\"dirs_per_commit_p50\": %.1f, "
            "\"dirs_per_commit_p99\": %.1f, "
            "\"nic_per_commit_mean\": %.2f, "
            "\"nic_per_commit_p50\": %.1f, "
            "\"nic_per_commit_p99\": %.1f, "
            "\"dir_occupancy_mean\": %.2f, "
            "\"dir_occupancy_p99\": %.1f, "
            "\"net_multicasts\": %llu, "
            "\"net_multicast_nic_events\": %llu}%s\n",
            pt.procs, pt.topo.c_str(), pt.wallSec,
            (unsigned long long)pt.cycles,
            (unsigned long long)pt.committedTxns,
            (unsigned long long)pt.violations,
            (unsigned long long)pt.ledgerEntries,
            (unsigned long long)pt.fingerprint, pt.latP50, pt.latP90,
            pt.latP99, pt.dirsMean, pt.dirsP50, pt.dirsP99, pt.nicMean,
            pt.nicP50, pt.nicP99, pt.occMean, pt.occP99,
            (unsigned long long)pt.netMulticasts,
            (unsigned long long)pt.netMulticastNic,
            i + 1 == points.size() ? "" : ",");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"config\": {\n"
                 "    \"smoke\": %s,\n"
                 "    \"app\": \"barnes\",\n"
                 "    \"write_spread_dirs\": 1,\n"
                 "    \"topologies\": %zu,\n"
                 "    \"procs_swept\": %zu\n"
                 "  }\n"
                 "}\n",
                 smoke ? "true" : "false", topos.size(),
                 procsList.size());
    std::fclose(f);
    std::printf("wrote %s\n", outPath.c_str());

    if (!outcomesMatch)
        return 1;
    // The smoke grid stops at 64 nodes where the analytic margin is
    // thin; the sublinearity gate arms on the full sweep only.
    if (!smoke && !sublinear)
        return 1;
    return 0;
}
