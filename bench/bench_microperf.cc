/**
 * @file
 * Simulator micro-performance benchmarks (google-benchmark). These do
 * not reproduce paper results; they track the speed of the simulator's
 * hot paths (event queue, cache accesses, mesh routing, end-to-end
 * simulated-cycles-per-second) so regressions are visible when the
 * model is extended.
 */

#include <benchmark/benchmark.h>

#include "cache/spec_cache.hh"
#include "core/system.hh"
#include "noc/network.hh"
#include "sim/event_queue.hh"
#include "workload/scripted_source.hh"
#include "workload/registry.hh"

namespace {

using namespace tcc;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(i % 7, [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_CacheLoadHit(benchmark::State &state)
{
    CacheConfig cfg;
    SpecCache cache(cfg);
    cache.fill(0x1000);
    for (auto _ : state) {
        auto out = cache.load(0x1000);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLoadHit);

void
BM_MeshSend(benchmark::State &state)
{
    EventQueue eq;
    MeshNetwork net(eq, 64);
    for (NodeId n = 0; n < 64; ++n)
        net.connect(n, [](const Message &) {});
    Message m;
    m.type = MsgType::Skip;
    m.src = 0;
    m.dst = 63;
    m.bytes = 16;
    for (auto _ : state) {
        net.send(m);
        eq.run();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeshSend);

void
BM_EndToEndSimulation(benchmark::State &state)
{
    for (auto _ : state) {
        SystemConfig cfg;
        cfg.numProcs = 8;
        System sys(cfg);
        WorkloadParams wl;
        wl.set("txns_per_phase", "64").set("phases", "1");
        const WorkloadBundle bundle =
            makeWorkload("water_spatial", wl, /*seed=*/1, cfg.numProcs);
        bundle.attach(sys);
        auto res = sys.run();
        benchmark::DoNotOptimize(res.cycles);
        state.counters["sim_cycles"] =
            static_cast<double>(res.cycles);
    }
}
BENCHMARK(BM_EndToEndSimulation)->Unit(benchmark::kMillisecond);

} // namespace
