/**
 * @file
 * Data-structure / hot-key workload benchmark with a machine-readable
 * result (BENCH_datastruct.json): the ds_map engine swept across
 * Zipfian skew {0, 0.8, 0.99} x operation mix {read_mostly,
 * write_heavy} x processor count, plus one point each for the
 * flash-crowd schedule (ds_flash), the bank-transfer macrobench
 * (ds_bank), and the hot-counter queue (ds_queue).
 *
 * Per point the JSON records goodput (committed logical ops per
 * cycle - the headline metric: raw commit throughput counts aborted
 * work), the abort rate, commit-latency p50/p99 from the transaction
 * ledger, the final-memory fingerprint, and the contention profiler's
 * top-K hot words resolved back to key indices (which keys are
 * killing the system).
 *
 * Gates, all hard failures:
 *  - every point must complete, quiesce, and pass the online
 *    protocol-invariant checker;
 *  - seeded determinism: re-running a point yields a bit-identical
 *    fingerprint and cycle count;
 *  - SweepRunner identity: the whole grid re-run under jobs=N is
 *    bit-identical (cycles, commits, violations, ops, fingerprint)
 *    to the serial pass;
 *  - the flash-crowd point's abort rate must rise after the phase
 *    flip (the cold key turned hot);
 *  - the bank point must conserve the total balance: the sum over
 *    account words of the final memory image equals the initial sum.
 *
 * Usage: bench_datastruct [--smoke] [--out PATH] [--jobs=N]
 *   --smoke   procs {8} only, transactions clamped per phase
 *   --out     JSON output path (default BENCH_datastruct.json)
 *   --jobs    parallel-pass worker count (default: TCC_JOBS env,
 *             else hardware threads)
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "core/sweep.hh"
#include "core/system.hh"
#include "obs/contention.hh"
#include "obs/tx_ledger.hh"
#include "sim/stats.hh"
#include "workload/registry.hh"

#ifndef TCC_GIT_REV
#define TCC_GIT_REV "unknown"
#endif

namespace {

using namespace tcc;

/** One requested grid point. */
struct Spec {
    std::string workload;
    double theta = 0.0;
    std::string mix;
    std::uint32_t procs = 0;
    /** Apply theta/mix as registry overrides (the ds_map grid);
     *  the special points keep their registry defaults. */
    bool overrideKnobs = false;
};

/** A hot word resolved to its key index. */
struct HotKey {
    Addr addr = 0;
    std::int64_t key = -1; ///< -1: outside the key array (e.g. queue
                           ///< head/tail counters)
    std::uint64_t conflicts = 0;
    std::uint64_t aborts = 0;
};

/** Everything one point reports and gates on. */
struct Point {
    Spec spec;
    Tick cycles = 0;
    std::uint64_t committedTxns = 0;
    std::uint64_t violations = 0;
    std::uint64_t committedOps = 0;
    std::uint64_t fingerprint = 0;
    std::uint64_t ledgerEntries = 0;
    double goodput = 0;   ///< committed ops / cycle
    double abortRate = 0; ///< violations / (commits + violations)
    double latP50 = 0, latP99 = 0;
    std::vector<HotKey> hotKeys;
    std::vector<PhaseTally> phases;
    bool bankConserved = true; ///< only meaningful for ds_bank
    bool ok = false;
};

constexpr std::uint64_t kSeed = 1;
constexpr std::size_t kTopK = 16;
constexpr std::size_t kHotKeysReported = 5;

Point
runPoint(const Spec &spec, bool smoke)
{
    SystemConfig cfg;
    cfg.numProcs = spec.procs;
    cfg.check.invariants = true;
    cfg.trace.contentionTopK = kTopK;
    // The ledger needs every commit's Proc/Commit records resident;
    // ds write-sets are small, so a fixed ring with per-node headroom
    // is plenty.
    cfg.trace.capacity =
        std::max(std::size_t{1} << 18,
                 std::size_t{spec.procs} * 8192);

    System sys(cfg);
    WorkloadParams wl;
    if (spec.overrideKnobs) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", spec.theta);
        wl.set("theta", buf).set("mix", spec.mix);
    }
    if (smoke)
        wl.set("max_txns_per_phase", "256");
    const WorkloadBundle bundle =
        makeWorkload(spec.workload, wl, kSeed, spec.procs);
    bundle.attach(sys);

    const RunResult res = sys.run();

    Point pt;
    pt.spec = spec;
    pt.cycles = res.cycles;
    pt.committedTxns = res.committedTxns;
    pt.violations = res.violations;
    pt.committedOps = bundle.committedOps();
    pt.fingerprint = sys.memory().fingerprint();
    pt.phases = bundle.phaseTallies();

    if (!res.completed || !res.quiesced) {
        std::fprintf(stderr, "FAIL: %s procs=%u did not %s\n",
                     spec.workload.c_str(), spec.procs,
                     res.completed ? "quiesce" : "complete");
        return pt;
    }
    if (!res.invariants.ok) {
        std::fprintf(stderr,
                     "FAIL: %s procs=%u invariant checker: %s\n",
                     spec.workload.c_str(), spec.procs,
                     res.invariants.error.c_str());
        return pt;
    }

    pt.goodput = pt.cycles
                     ? static_cast<double>(pt.committedOps) /
                           static_cast<double>(pt.cycles)
                     : 0.0;
    const std::uint64_t attempts = pt.committedTxns + pt.violations;
    pt.abortRate = attempts ? static_cast<double>(pt.violations) /
                                  static_cast<double>(attempts)
                            : 0.0;

    Distribution lat;
    const auto ledger = buildTxLedger(sys.traceRecorder());
    pt.ledgerEntries = ledger.size();
    for (const TxLedgerEntry &e : ledger)
        lat.sample(static_cast<double>(e.commitCycles()));
    pt.latP50 = lat.percentile(50);
    pt.latP99 = lat.percentile(99);

    if (const ContentionProfiler *prof = sys.contentionProfiler()) {
        for (const auto &hw : prof->hotWords()) {
            if (pt.hotKeys.size() >= kHotKeysReported)
                break;
            HotKey hk;
            hk.addr = hw.addr;
            hk.key = bundle.keyOf(hw.addr);
            hk.conflicts = hw.s.weight();
            hk.aborts = hw.s.aborts;
            pt.hotKeys.push_back(hk);
        }
    }

    // Bank conservation: transfers move balance, never create it. The
    // expected total is the initial image's sum over account words.
    if (spec.workload == "ds_bank") {
        std::uint64_t expected = 0, actual = 0;
        for (const auto &[addr, value] : bundle.initialWords) {
            if (bundle.keyOf(addr) < 0)
                continue;
            expected += value;
            actual += sys.memory().read(addr);
        }
        pt.bankConserved = expected == actual;
        if (!pt.bankConserved)
            std::fprintf(stderr,
                         "FAIL: ds_bank balance not conserved: "
                         "%llu != %llu\n",
                         (unsigned long long)actual,
                         (unsigned long long)expected);
    }

    pt.ok = pt.bankConserved;
    return pt;
}

bool
samePoint(const Point &a, const Point &b)
{
    return a.cycles == b.cycles &&
           a.committedTxns == b.committedTxns &&
           a.violations == b.violations &&
           a.committedOps == b.committedOps &&
           a.fingerprint == b.fingerprint;
}

std::vector<Spec>
buildGrid(bool smoke)
{
    const std::vector<double> thetas =
        smoke ? std::vector<double>{0.0, 0.99}
              : std::vector<double>{0.0, 0.8, 0.99};
    const std::vector<std::string> mixes = {"read_mostly",
                                            "write_heavy"};
    const std::vector<std::uint32_t> procsList =
        smoke ? std::vector<std::uint32_t>{8}
              : std::vector<std::uint32_t>{8, 16, 32};

    std::vector<Spec> grid;
    for (std::uint32_t procs : procsList)
        for (double theta : thetas)
            for (const auto &mix : mixes)
                grid.push_back({"ds_map", theta, mix, procs, true});

    // Special points: registry defaults, one processor count each.
    const std::uint32_t sp = smoke ? 8 : 16;
    grid.push_back({"ds_flash", 0.2, "phased", sp, false});
    grid.push_back({"ds_bank", 0.9, "transfer_heavy", sp, false});
    grid.push_back({"ds_queue", 0.0, "queue_5050", sp, false});
    return grid;
}

void
writeJson(std::FILE *f, const std::vector<Point> &points,
          bool deterministic, bool jobsIdentical, double flashPre,
          double flashPost, bool flashRising, bool bankConserved,
          unsigned jobs, bool smoke)
{
    std::fprintf(f,
                 "{\n"
                 "  \"deterministic\": %d,\n"
                 "  \"jobs_identical\": %d,\n"
                 "  \"flash_abort_pre\": %.4f,\n"
                 "  \"flash_abort_post\": %.4f,\n"
                 "  \"flash_abort_rising\": %d,\n"
                 "  \"bank_conserved\": %d,\n"
                 "  \"points_total\": %zu,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"git_rev\": \"%s\",\n"
                 "  \"points\": [\n",
                 deterministic ? 1 : 0, jobsIdentical ? 1 : 0,
                 flashPre, flashPost, flashRising ? 1 : 0,
                 bankConserved ? 1 : 0, points.size(),
                 std::thread::hardware_concurrency(), TCC_GIT_REV);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &pt = points[i];
        std::fprintf(
            f,
            "    {\"workload\": \"%s\", \"theta\": %.2f, "
            "\"mix\": \"%s\", \"procs\": %u, "
            "\"cycles\": %llu, \"commits\": %llu, "
            "\"violations\": %llu, \"committed_ops\": %llu, "
            "\"goodput\": %.6f, \"abort_rate\": %.4f, "
            "\"commit_latency_p50\": %.1f, "
            "\"commit_latency_p99\": %.1f, "
            "\"ledger_entries\": %llu, "
            "\"fingerprint\": \"%016llx\",\n"
            "     \"phase_tallies\": [",
            pt.spec.workload.c_str(), pt.spec.theta,
            pt.spec.mix.c_str(), pt.spec.procs,
            (unsigned long long)pt.cycles,
            (unsigned long long)pt.committedTxns,
            (unsigned long long)pt.violations,
            (unsigned long long)pt.committedOps, pt.goodput,
            pt.abortRate, pt.latP50, pt.latP99,
            (unsigned long long)pt.ledgerEntries,
            (unsigned long long)pt.fingerprint);
        for (std::size_t p = 0; p < pt.phases.size(); ++p)
            std::fprintf(f, "{\"commits\": %llu, \"aborts\": %llu}%s",
                         (unsigned long long)pt.phases[p].commits,
                         (unsigned long long)pt.phases[p].aborts,
                         p + 1 == pt.phases.size() ? "" : ", ");
        std::fprintf(f, "],\n     \"hot_keys\": [");
        for (std::size_t k = 0; k < pt.hotKeys.size(); ++k) {
            const HotKey &hk = pt.hotKeys[k];
            std::fprintf(f,
                         "{\"addr\": \"%llx\", \"key\": %lld, "
                         "\"conflicts\": %llu, \"aborts\": %llu}%s",
                         (unsigned long long)hk.addr,
                         (long long)hk.key,
                         (unsigned long long)hk.conflicts,
                         (unsigned long long)hk.aborts,
                         k + 1 == pt.hotKeys.size() ? "" : ", ");
        }
        std::fprintf(f, "]}%s\n",
                     i + 1 == points.size() ? "" : ",");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"config\": {\n"
                 "    \"smoke\": %s,\n"
                 "    \"seed\": %llu,\n"
                 "    \"jobs\": %u,\n"
                 "    \"contention_top_k\": %zu\n"
                 "  }\n"
                 "}\n",
                 smoke ? "true" : "false",
                 (unsigned long long)kSeed, jobs, kTopK);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string outPath = "BENCH_datastruct.json";
    unsigned jobs = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            jobs = static_cast<unsigned>(
                std::strtoul(argv[i] + 7, nullptr, 10));
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--out PATH] "
                         "[--jobs=N]\n",
                         argv[0]);
            return 2;
        }
    }

    // The ledger needs the Proc + Commit categories recorded
    // (structured ring only; no stderr text).
    Trace::setTextOutput(false);
    Trace::enable(TraceCat::Proc);
    Trace::enable(TraceCat::Commit);

    const std::vector<Spec> grid = buildGrid(smoke);
    std::printf("== data-structure / hot-key sweep: %zu points ==\n",
                grid.size());

    // Serial reference pass.
    std::vector<Point> points;
    for (const Spec &spec : grid) {
        Point pt = runPoint(spec, smoke);
        if (!pt.ok)
            return 1;
        std::printf("%-9s th=%.2f %-12s procs=%-3u : %9llu cycles  "
                    "goodput %.4f  abort %.3f  lat p50/p99 "
                    "%5.0f/%5.0f\n",
                    pt.spec.workload.c_str(), pt.spec.theta,
                    pt.spec.mix.c_str(), pt.spec.procs,
                    (unsigned long long)pt.cycles, pt.goodput,
                    pt.abortRate, pt.latP50, pt.latP99);
        points.push_back(std::move(pt));
    }

    // Gate: seeded determinism (same spec, same seed, same machine
    // state -> bit-identical outcome).
    const Point rerun = runPoint(grid.front(), smoke);
    const bool deterministic = rerun.ok && samePoint(rerun, points[0]);
    std::printf("determinism        : %s\n",
                deterministic ? "rerun bit-identical" : "MISMATCH");

    // Gate: the SweepRunner pass (jobs=N) is bit-identical to the
    // serial loop above, point by point.
    SweepRunner runner(jobs);
    const auto parPoints = sweepIndex<Point>(
        runner, grid.size(),
        [&](std::size_t i) { return runPoint(grid[i], smoke); });
    bool jobsIdentical = true;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (!parPoints[i].ok || !samePoint(parPoints[i], points[i])) {
            std::fprintf(stderr,
                         "MISMATCH: jobs=%u pass differs at %s "
                         "th=%.2f %s procs=%u\n",
                         runner.jobs(),
                         grid[i].workload.c_str(), grid[i].theta,
                         grid[i].mix.c_str(), grid[i].procs);
            jobsIdentical = false;
        }
    }
    std::printf("jobs=%u identity    : %s\n", runner.jobs(),
                jobsIdentical ? "bit-identical to serial"
                              : "MISMATCH");

    // Gate: the flash crowd raises the abort rate after the phase
    // flip (phase 0 read-mostly/no flash, phase 1 write-heavy with
    // the flash override).
    double flashPre = 0, flashPost = 0;
    bool flashRising = false;
    for (const Point &pt : points) {
        if (pt.spec.workload != "ds_flash" || pt.phases.size() < 2)
            continue;
        const auto rate = [](const PhaseTally &t) {
            const std::uint64_t n = t.commits + t.aborts;
            return n ? static_cast<double>(t.aborts) /
                           static_cast<double>(n)
                     : 0.0;
        };
        flashPre = rate(pt.phases.front());
        flashPost = rate(pt.phases.back());
        flashRising = flashPost > flashPre;
    }
    std::printf("flash crowd        : abort %.3f -> %.3f  %s\n",
                flashPre, flashPost,
                flashRising ? "(rising, OK)" : "FAIL");

    bool bankConserved = true;
    for (const Point &pt : points)
        if (pt.spec.workload == "ds_bank")
            bankConserved = bankConserved && pt.bankConserved;
    std::printf("bank conservation  : %s\n",
                bankConserved ? "total balance preserved" : "FAIL");

    std::FILE *f = std::fopen(outPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     outPath.c_str());
        return 1;
    }
    writeJson(f, points, deterministic, jobsIdentical, flashPre,
              flashPost, flashRising, bankConserved, runner.jobs(),
              smoke);
    std::fclose(f);
    std::printf("wrote %s\n", outPath.c_str());

    return deterministic && jobsIdentical && flashRising &&
                   bankConserved
               ? 0
               : 1;
}
