/**
 * @file
 * Simulation-kernel throughput benchmark with a machine-readable
 * result (BENCH_kernel.json), giving the repo a perf trajectory
 * across PRs.
 *
 * Two measurements:
 *
 *  1. Raw kernel events/sec on a steady-state event mix modeled on the
 *     simulator's real call sites: mostly small-capture continuation
 *     events ([this, gen]-style) plus a slice of message-delivery
 *     events carrying a Message-sized payload (the Network::deliver
 *     path). The same mix also runs on a reference kernel that
 *     replicates the seed implementation (std::priority_queue of
 *     std::function entries, payload captured in the closure), so the
 *     reported speedup is self-contained and reproducible on any
 *     machine.
 *
 *  2. End-to-end simulated cycles/sec on a Table 2 configuration
 *     (16 processors, 2D mesh, synthetic SPLASH-2 profile).
 *
 * Usage: bench_kernel [--smoke] [--out PATH]
 *   --smoke   tiny iteration counts (CI wiring check, not a benchmark)
 *   --out     JSON output path (default BENCH_kernel.json)
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "core/system.hh"
#include "noc/message.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "sim/random.hh"
#include "workload/scripted_source.hh"
#include "workload/registry.hh"

// Configure-time git revision (set by bench/CMakeLists.txt) so each
// BENCH_*.json records what code produced it.
#ifndef TCC_GIT_REV
#define TCC_GIT_REV "unknown"
#endif

namespace {

using namespace tcc;

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/**
 * Reference kernel: byte-for-byte the seed EventQueue (binary heap of
 * std::function entries with a FIFO sequence tie-break). Kept here so
 * the benchmark always reports the speedup against the pre-rewrite
 * design, not against a moving target.
 */
class ReferenceHeapKernel
{
  public:
    Tick now() const { return curTick; }

    void
    schedule(Tick delay, std::function<void()> fn)
    {
        heap.push(Entry{curTick + delay, nextSeq++, std::move(fn)});
    }

    bool
    step()
    {
        if (heap.empty())
            return false;
        Entry e = std::move(const_cast<Entry &>(heap.top()));
        heap.pop();
        curTick = e.when;
        e.fn();
        ++executedEvents;
        return true;
    }

    std::uint64_t
    run()
    {
        std::uint64_t n = 0;
        while (step())
            ++n;
        return n;
    }

    std::uint64_t executed() const { return executedEvents; }

  private:
    struct Entry {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
    };
    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };
    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executedEvents = 0;
};

/**
 * The steady-state event mix, shaped like the simulator's real traffic:
 *  - kChains concurrent self-rescheduling actors (the in-flight event
 *    population of a 64-processor machine);
 *  - half the events behave like Network::deliver / the directory's
 *    deferred dispatch and ship a Message-sized payload to a consumer,
 *    the other half are small continuations with a generation check
 *    (resumeAfter-style);
 *  - delays drawn from [1, 180] plus an occasional far event past the
 *    256-tick wheel window (memory round trips, mesh congestion).
 * The delay sequence is precomputed so the timed region measures the
 * kernel, not the random-number generator.
 */
template <typename Kernel, bool UsePool>
struct MixWorkload {
    Kernel kernel;
    ObjectPool<Message> pool;
    std::vector<Tick> delays;
    std::uint64_t fired = 0;
    std::uint64_t payloadWords = 0;
    std::uint64_t target;

    explicit MixWorkload(std::uint64_t total_events) : target(total_events)
    {
        Rng rng(12345);
        delays.resize(4096);
        for (auto &d : delays) {
            // 1-in-32 events jump past the wheel window (overflow).
            if (rng.below(32) == 0)
                d = 300 + rng.below(700);
            else
                d = 1 + rng.below(180);
        }
    }

    Tick nextDelay() { return delays[fired & (delays.size() - 1)]; }

    void
    consume(const Message &m)
    {
        payloadWords += m.addr + m.tid; // touch the payload
    }

    void
    post()
    {
        if (fired >= target)
            return;
        ++fired;
        if (fired % 2 == 0) {
            // Message-delivery event. The pooled variant parks the
            // payload in a slab and captures {this, slot}; the
            // reference variant captures the Message in the closure,
            // exactly like the seed Network::deliver.
            Message m;
            m.type = MsgType::LoadReply;
            m.addr = fired;
            m.tid = fired >> 1;
            m.bytes = 48;
            if constexpr (UsePool) {
                Message *slot = pool.alloc(m);
                kernel.schedule(nextDelay(), [this, slot]() {
                    consume(*slot);
                    pool.free(slot);
                    post();
                });
            } else {
                kernel.schedule(nextDelay(), [this, m]() {
                    consume(m);
                    post();
                });
            }
        } else {
            // Continuation event with a generation check.
            const std::uint64_t my_gen = fired;
            kernel.schedule(nextDelay(), [this, my_gen]() {
                if (my_gen <= target)
                    post();
            });
        }
    }

    /** @return events/sec. */
    double
    run(int chains)
    {
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < chains; ++i)
            post();
        kernel.run();
        const auto t1 = std::chrono::steady_clock::now();
        return static_cast<double>(kernel.executed()) / seconds(t0, t1);
    }
};

struct EndToEndResult {
    double cyclesPerSec = 0;
    double eventsPerSec = 0;
    std::uint64_t simCycles = 0;
    std::uint64_t events = 0;
    std::uint64_t arenaPeakBytes = 0;
    std::uint64_t arenaChunks = 0;
};

/** Table 2 machine: 16 CPUs, 2D mesh, SPLASH-2-calibrated workload. */
EndToEndResult
endToEnd(std::uint32_t txns_per_phase)
{
    SystemConfig cfg;
    cfg.numProcs = 16;
    System sys(cfg);
    WorkloadParams wl;
    wl.set("txns_per_phase", std::to_string(txns_per_phase));
    wl.set("phases", "2");
    const WorkloadBundle bundle =
        makeWorkload("water_spatial", wl, /*seed=*/1, cfg.numProcs);
    bundle.attach(sys);
    const auto t0 = std::chrono::steady_clock::now();
    auto res = sys.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = seconds(t0, t1);
    EndToEndResult out;
    out.simCycles = res.cycles;
    out.events = res.events;
    out.cyclesPerSec = static_cast<double>(res.cycles) / s;
    out.eventsPerSec = static_cast<double>(res.events) / s;
    const Arena::Stats as = sys.arenaStats();
    out.arenaPeakBytes = as.peakBytes;
    out.arenaChunks = as.chunks;
    return out;
}

/**
 * Observability wiring check: run the 2-processor scripted-conflict
 * scenario with every trace category enabled (text output off) and
 * report how many structured events the recorder captured. A zero
 * here means the instrumentation went dark.
 */
std::uint64_t
tracedEventCount()
{
    Trace::setTextOutput(false);
    Trace::enableAll(true);
    std::uint64_t captured = 0;
    {
        SystemConfig cfg;
        cfg.numProcs = 2;
        cfg.homePolicy = HomePolicy::Interleave;
        System sys(cfg);
        const Addr x = 0x100000;
        ScriptedSource p0;
        p0.add({TxOp::compute(100), TxOp::store(x, 42)});
        ScriptedSource p1;
        p1.add({TxOp::load(x), TxOp::compute(4000),
                TxOp::storeAdd(x + 4096, 0)});
        sys.setSource(0, &p0);
        sys.setSource(1, &p1);
        sys.run();
        captured = sys.traceRecorder().captured();
    }
    Trace::enableAll(false);
    Trace::setTextOutput(true);
    return captured;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string outPath = "BENCH_kernel.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--out PATH]\n", argv[0]);
            return 2;
        }
    }

    const std::uint64_t kernelEvents = smoke ? 20'000 : 20'000'000;
    const std::uint32_t txnsPerPhase = smoke ? 32 : 1024;
    const int kChains = 256;

    std::printf("== simulation-kernel throughput ==\n");

    MixWorkload<EventQueue, /*UsePool=*/true> wheel(kernelEvents);
    const double newRate = wheel.run(kChains);
    std::printf("timing-wheel kernel : %12.0f events/sec\n", newRate);

    MixWorkload<ReferenceHeapKernel, /*UsePool=*/false> ref(kernelEvents);
    const double refRate = ref.run(kChains);
    std::printf("seed heap kernel    : %12.0f events/sec\n", refRate);
    std::printf("speedup             : %12.2fx\n", newRate / refRate);

    const EndToEndResult e2e = endToEnd(txnsPerPhase);
    std::printf("end-to-end          : %12.0f sim-cycles/sec "
                "(%llu cycles, %llu events)\n",
                e2e.cyclesPerSec, (unsigned long long)e2e.simCycles,
                (unsigned long long)e2e.events);
    std::printf("arena               : %12llu peak bytes in %llu "
                "chunks\n",
                (unsigned long long)e2e.arenaPeakBytes,
                (unsigned long long)e2e.arenaChunks);

    const std::uint64_t traceEvents = tracedEventCount();
    std::printf("trace wiring        : %12llu events captured "
                "(scripted conflict)\n",
                (unsigned long long)traceEvents);

    std::FILE *f = std::fopen(outPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     outPath.c_str());
        return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"events_per_sec\": %.0f,\n"
        "  \"cycles_per_sec\": %.0f,\n"
        "  \"reference_events_per_sec\": %.0f,\n"
        "  \"speedup_vs_seed_kernel\": %.3f,\n"
        "  \"end_to_end_events_per_sec\": %.0f,\n"
        "  \"arena_peak_bytes\": %llu,\n"
        "  \"arena_chunks\": %llu,\n"
        "  \"trace_events_captured\": %llu,\n"
        "  \"hardware_concurrency\": %u,\n"
        "  \"git_rev\": \"%s\",\n"
        "  \"config\": {\n"
        "    \"smoke\": %s,\n"
        "    \"kernel_events\": %llu,\n"
        "    \"chains\": %d,\n"
        "    \"num_procs\": 16,\n"
        "    \"app\": \"water_spatial\",\n"
        "    \"txns_per_phase\": %u\n"
        "  }\n"
        "}\n",
        newRate, e2e.cyclesPerSec, refRate, newRate / refRate,
        e2e.eventsPerSec, (unsigned long long)e2e.arenaPeakBytes,
        (unsigned long long)e2e.arenaChunks,
        (unsigned long long)traceEvents,
        std::thread::hardware_concurrency(), TCC_GIT_REV,
        smoke ? "true" : "false", (unsigned long long)kernelEvents,
        kChains, txnsPerPhase);
    std::fclose(f);
    std::printf("wrote %s\n", outPath.c_str());
    return 0;
}
