/**
 * @file
 * Reproduces Table 3: the TM characteristics of every application at
 * 64 processors - 90th-percentile transaction size (instructions),
 * write-/read-set sizes (KB), operations per word written, directories
 * touched per commit, directory working set (entries with remote
 * sharers), and directory occupancy (busy cycles per commit).
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tccbench;
    const BenchArgs args = parseBenchArgs(argc, argv);
    const auto apps = benchApps(args);
    const std::uint32_t procs =
        args.procs.empty() ? 64u : args.procs.front();

    std::puts("=== Table 3: application TM characteristics "
              "(64 processors) ===");
    std::puts(table3Header().c_str());

    SweepRunner runner(args.jobs);
    auto outs = sweepIndex<RunOutcome>(
        runner, apps.size(), [&](std::size_t i) {
            RunOptions opt;
            opt.procs = procs;
            return runWorkload(apps[i], opt);
        });

    for (const auto &out : outs) {
        if (!out.completed) {
            std::printf("%-16s DID NOT COMPLETE\n", out.app.c_str());
            continue;
        }
        std::puts(table3Row(out.characterization).c_str());
    }
    return 0;
}
