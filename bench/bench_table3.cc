/**
 * @file
 * Reproduces Table 3: the TM characteristics of every application at
 * 64 processors - 90th-percentile transaction size (instructions),
 * write-/read-set sizes (KB), operations per word written, directories
 * touched per commit, directory working set (entries with remote
 * sharers), and directory occupancy (busy cycles per commit).
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace tccbench;

    std::puts("=== Table 3: application TM characteristics "
              "(64 processors) ===");
    std::puts(table3Header().c_str());

    for (const auto &app : benchApps()) {
        RunOptions opt;
        opt.procs = 64;
        auto out = runApp(app, opt);
        if (!out.completed) {
            std::printf("%-16s DID NOT COMPLETE\n", app.name.c_str());
            continue;
        }
        std::puts(table3Row(out.characterization).c_str());
    }
    return 0;
}
