/**
 * @file
 * Reproduces Figure 6: normalized execution-time breakdown of every
 * application on a single processor. The paper's point: with one
 * processor, TCC overhead (commit) is insignificant (~1-2%), so a TCC
 * uniprocessor is equivalent to a conventional one.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tccbench;
    const BenchArgs args = parseBenchArgs(argc, argv);
    const auto apps = benchApps(args);
    const std::uint32_t procs =
        args.procs.empty() ? 1u : args.procs.front();

    std::puts("=== Figure 6: single-processor execution time "
              "breakdown ===");
    std::puts(breakdownHeader().c_str());

    SweepRunner runner(args.jobs);
    auto outs = sweepIndex<RunOutcome>(
        runner, apps.size(), [&](std::size_t i) {
            RunOptions opt;
            opt.procs = procs;
            return runWorkload(apps[i], opt);
        });

    double worst_commit = 0;
    for (const auto &out : outs) {
        std::puts(breakdownRow(out.app, out.breakdown).c_str());
        worst_commit = std::max(
            worst_commit,
            out.breakdown.fraction(out.breakdown.commit));
    }
    std::printf("\nmax commit overhead on 1 CPU: %.1f%% (paper: ~1%% "
                "on average)\n",
                100.0 * worst_commit);
    return 0;
}
