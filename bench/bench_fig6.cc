/**
 * @file
 * Reproduces Figure 6: normalized execution-time breakdown of every
 * application on a single processor. The paper's point: with one
 * processor, TCC overhead (commit) is insignificant (~1-2%), so a TCC
 * uniprocessor is equivalent to a conventional one.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace tccbench;

    std::puts("=== Figure 6: single-processor execution time "
              "breakdown ===");
    std::puts(breakdownHeader().c_str());

    double worst_commit = 0;
    for (const auto &app : benchApps()) {
        RunOptions opt;
        opt.procs = 1;
        auto out = runApp(app, opt);
        std::puts(breakdownRow(out.app, out.breakdown).c_str());
        worst_commit = std::max(
            worst_commit,
            out.breakdown.fraction(out.breakdown.commit));
    }
    std::printf("\nmax commit overhead on 1 CPU: %.1f%% (paper: ~1%% "
                "on average)\n",
                100.0 * worst_commit);
    return 0;
}
