/**
 * @file
 * Parallel single-run (PDES) engine benchmark with a machine-readable
 * result (BENCH_pdes.json): simulated events/sec of one System run
 * across processor counts and worker-thread counts.
 *
 * The grid is procs x jobs with the domain count fixed per processor
 * count (the partition is part of the simulation model; jobs is not).
 * Before any timing is reported, every jobs > 1 point is checked
 * bit-identical to the jobs = 1 point of the same row - a mismatch
 * fails the benchmark: a PDES run's result must be a pure function of
 * (config, seeds, domain count), never of the thread count.
 *
 * The speedup gate only arms on hardware that can actually run the
 * workers side by side (>= 4 hardware threads); single-core machines
 * still run the full determinism gate. The JSON records
 * hardware_concurrency so a trend reader knows which case produced
 * each file.
 *
 * Usage: bench_pdes [--smoke] [--out PATH]
 *   --smoke   16 procs, jobs {1,2}, tiny workload (CI wiring check)
 *   --out     JSON output path (default BENCH_pdes.json)
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/system.hh"
#include "workload/synthetic_app.hh"

// Configure-time git revision (set by bench/CMakeLists.txt) so each
// BENCH_*.json records what code produced it.
#ifndef TCC_GIT_REV
#define TCC_GIT_REV "unknown"
#endif

namespace {

using namespace tcc;

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Everything the determinism gate compares, plus the timing. */
struct Point {
    std::uint32_t procs = 0;
    std::uint32_t domains = 0;
    std::uint32_t jobs = 0;
    double wallSec = 0;
    double eventsPerSec = 0;
    RunResult res;
};

/** The jobs = 1 result every jobs > 1 run of the same row must
 *  reproduce bit for bit. pdes.jobs is the one excluded field: it
 *  records the thread count itself. */
bool
sameResult(const RunResult &a, const RunResult &b, std::string *why)
{
#define CMP(field)                                                     \
    do {                                                               \
        if (a.field != b.field) {                                      \
            *why = #field;                                             \
            return false;                                              \
        }                                                              \
    } while (0)
    CMP(cycles);
    CMP(completed);
    CMP(events);
    CMP(quiesced);
    CMP(committedTxns);
    CMP(violations);
    CMP(overflows);
    CMP(committedInstructions);
    CMP(breakdown.useful);
    CMP(breakdown.miss);
    CMP(breakdown.commit);
    CMP(breakdown.idle);
    CMP(breakdown.violation);
    CMP(pdes.domains);
    CMP(pdes.lookahead);
    CMP(pdes.windows);
    CMP(pdes.mailboxMessages);
    if (a.procs.size() != b.procs.size() ||
        a.dirs.size() != b.dirs.size()) {
        *why = "stats vector size";
        return false;
    }
    for (std::size_t p = 0; p < a.procs.size(); ++p) {
        CMP(procs[p].txnsCommitted);
        CMP(procs[p].violations);
        CMP(procs[p].overflows);
        CMP(procs[p].committedInstructions);
    }
    for (std::size_t d = 0; d < a.dirs.size(); ++d) {
        CMP(dirs[d].nstid);
        CMP(dirs[d].commitsServed);
        CMP(dirs[d].invalidationsSent);
    }
#undef CMP
    return true;
}

Point
runPoint(const std::string &app, std::uint32_t procs,
         std::uint32_t domains, std::uint32_t jobs, bool smoke)
{
    SystemConfig cfg;
    cfg.numProcs = procs;
    cfg.homePolicy = HomePolicy::Interleave;
    cfg.pdes.domains = domains;
    cfg.pdes.jobs = jobs;
    System sys(cfg);
    AppProfile prof = appProfile(app);
    if (smoke) {
        prof.phases = 1;
        prof.txnsPerPhase =
            std::min<std::uint32_t>(prof.txnsPerPhase, 64);
    }
    auto sources = setupApp(sys, prof, /*seed=*/1);
    const auto t0 = std::chrono::steady_clock::now();
    RunResult res = sys.run();
    const auto t1 = std::chrono::steady_clock::now();
    Point pt;
    pt.procs = procs;
    pt.domains = domains;
    pt.jobs = jobs;
    pt.wallSec = seconds(t0, t1);
    pt.eventsPerSec = static_cast<double>(res.events) / pt.wallSec;
    pt.res = std::move(res);
    return pt;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string outPath = "BENCH_pdes.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    // Domain count per processor count: one domain per mesh-row block
    // of 2 rows (16 procs: 4x4 grid -> 4 domains of one row each is
    // too fine; 4 strikes the balance measured in DESIGN.md sec. 11).
    struct Row {
        const char *app;
        std::uint32_t procs;
        std::uint32_t domains;
    };
    const std::vector<Row> rows =
        smoke ? std::vector<Row>{{"barnes", 16, 4}}
              : std::vector<Row>{{"barnes", 16, 4},
                                 {"barnes", 64, 8},
                                 {"swim", 256, 16}};
    const std::vector<std::uint32_t> jobsList =
        smoke ? std::vector<std::uint32_t>{1, 2}
              : std::vector<std::uint32_t>{1, 2, 4, 8};

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("== PDES single-run throughput (hw threads: %u) ==\n",
                hw);

    std::vector<Point> points;
    bool deterministic = true;
    double speedupJ4 = 0.0; // largest-procs row, jobs 4 vs jobs 1
    for (const Row &row : rows) {
        RunResult baseRes;
        double baseWall = 0;
        for (std::uint32_t jobs : jobsList) {
            // The engine clamps jobs to the domain count, so a request
            // beyond it reruns an already-measured point and would
            // emit a duplicate JSON row (same procs + effective jobs).
            if (jobs > row.domains) {
                const std::uint32_t effective = row.domains;
                bool dup = false;
                for (std::uint32_t j : jobsList) {
                    if (j < jobs &&
                        std::min(j, row.domains) == effective) {
                        dup = true;
                        break;
                    }
                }
                if (dup) {
                    std::printf("%-8s procs=%-4u domains=%-3u "
                                "jobs=%-2u : skipped (clamps to "
                                "jobs=%u, already measured)\n",
                                row.app, row.procs, row.domains, jobs,
                                effective);
                    continue;
                }
            }
            points.push_back(
                runPoint(row.app, row.procs, row.domains, jobs, smoke));
            const Point &pt = points.back();
            std::printf("%-8s procs=%-4u domains=%-3u jobs=%-2u : "
                        "%9.3f sec  %12.0f events/sec  "
                        "(%llu windows, %llu mailbox msgs)\n",
                        row.app, row.procs, row.domains, jobs,
                        pt.wallSec, pt.eventsPerSec,
                        (unsigned long long)pt.res.pdes.windows,
                        (unsigned long long)pt.res.pdes.mailboxMessages);
            if (!pt.res.completed) {
                std::fprintf(stderr, "FAIL: run did not complete\n");
                return 1;
            }
            if (jobs == 1) {
                baseRes = pt.res;
                baseWall = pt.wallSec;
                continue;
            }
            std::string why;
            if (!sameResult(baseRes, pt.res, &why)) {
                std::fprintf(stderr,
                             "MISMATCH at procs=%u jobs=%u: '%s' "
                             "differs from the jobs=1 run - PDES "
                             "result depends on the thread count\n",
                             row.procs, jobs, why.c_str());
                deterministic = false;
            }
            if (&row == &rows.back() && jobs == 4)
                speedupJ4 = baseWall / pt.wallSec;
        }
    }
    std::printf("determinism        : %s\n",
                deterministic ? "jobs>1 bit-identical to jobs=1"
                              : "MISMATCH");
    if (speedupJ4 != 0.0)
        std::printf("speedup (jobs=4)   : %8.2fx at %u procs\n",
                    speedupJ4, rows.back().procs);

    std::FILE *f = std::fopen(outPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     outPath.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"deterministic\": %d,\n"
                 "  \"points_total\": %zu,\n"
                 "  \"events_per_sec_jobs1\": %.0f,\n"
                 "  \"speedup_jobs4\": %.3f,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"git_rev\": \"%s\",\n"
                 "  \"points\": [\n",
                 deterministic ? 1 : 0, points.size(),
                 points.empty() ? 0.0 : points.front().eventsPerSec,
                 speedupJ4, hw, TCC_GIT_REV);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &pt = points[i];
        std::fprintf(
            f,
            "    {\"procs\": %u, \"domains\": %u, \"jobs\": %u, "
            "\"wall_sec\": %.6f, \"events_per_sec\": %.0f, "
            "\"cycles\": %llu, \"events\": %llu, "
            "\"lookahead\": %llu, \"windows\": %llu, "
            "\"mailbox_messages\": %llu}%s\n",
            pt.procs, pt.domains, pt.res.pdes.jobs, pt.wallSec,
            pt.eventsPerSec, (unsigned long long)pt.res.cycles,
            (unsigned long long)pt.res.events,
            (unsigned long long)pt.res.pdes.lookahead,
            (unsigned long long)pt.res.pdes.windows,
            (unsigned long long)pt.res.pdes.mailboxMessages,
            i + 1 == points.size() ? "" : ",");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"config\": {\n"
                 "    \"smoke\": %s,\n"
                 "    \"jobs_swept\": %zu,\n"
                 "    \"rows\": %zu\n"
                 "  }\n"
                 "}\n",
                 smoke ? "true" : "false", jobsList.size(),
                 rows.size());
    std::fclose(f);
    std::printf("wrote %s\n", outPath.c_str());

    if (!deterministic)
        return 1;
    // Speedup gate: only meaningful where the OS can actually schedule
    // 4 workers concurrently.
    if (!smoke && hw >= 4 && speedupJ4 != 0.0 && speedupJ4 < 1.5) {
        std::fprintf(stderr,
                     "FAIL: jobs=4 speedup %.2fx < 1.5x on %u "
                     "hardware threads\n",
                     speedupJ4, hw);
        return 1;
    }
    return 0;
}
