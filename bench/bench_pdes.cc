/**
 * @file
 * Parallel single-run (PDES) engine benchmark with a machine-readable
 * result (BENCH_pdes.json): simulated events/sec of one System run
 * across processor counts, worker-thread counts, and barrier sync
 * modes (fixed lookahead grid vs adaptive variable-width windows).
 *
 * The grid is procs x jobs x sync with the domain count fixed per
 * processor count (the partition is part of the simulation model; jobs
 * and sync are not). Before any timing is reported, two identity gates
 * run:
 *  - every jobs > 1 point must be bit-identical to the jobs = 1 point
 *    of the same (row, sync) - the result is a pure function of
 *    (config, seeds, domain count), never of the thread count;
 *  - the adaptive jobs = 1 point must be bit-identical to the fixed
 *    jobs = 1 point of the same row in everything except the barrier
 *    cadence counters (windows, empty broadcasts, window widths) -
 *    deferring a barrier that had nothing to publish must not change
 *    the simulation.
 *
 * Perf gates: adaptive must close at least 5x fewer windows than fixed
 * (every row), and on the headline row the adaptive jobs = 1 run must
 * beat the fixed jobs = 1 throughput (full runs only; the smoke
 * workload is too short to time). The in-binary ratio understates the
 * PR that introduced adaptive sync - its barrier micro-fixes (idle
 * domain skip, empty-broadcast skip, pulse-array coordination) apply
 * under fixed sync too - so the JSON also records the throughput
 * relative to the pre-adaptive engine (kSeedEventsPerSecJobs1, the
 * bench_kernel speedup_vs_seed_kernel idiom; recorded, not gated,
 * since an absolute rate is machine-specific). The jobs = 4 speedup
 * gate only arms on hardware that can actually run the workers side
 * by side (>= 4 hardware threads). The JSON records
 * hardware_concurrency so a trend reader knows which case produced
 * each file.
 *
 * Usage: bench_pdes [--smoke] [--sync fixed|adaptive|both] [--out PATH]
 *   --smoke   16 procs, jobs {1,2}, tiny workload (CI wiring check)
 *   --sync    which barrier modes to sweep (default both)
 *   --out     JSON output path (default BENCH_pdes.json)
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/system.hh"
#include "workload/registry.hh"

// Configure-time git revision (set by bench/CMakeLists.txt) so each
// BENCH_*.json records what code produced it.
#ifndef TCC_GIT_REV
#define TCC_GIT_REV "unknown"
#endif

namespace {

using namespace tcc;

/** Headline-row (barnes, 16 procs, 4 domains) jobs = 1 events/sec of
 *  the engine before variable lookahead landed: every sub-phase closed
 *  a window, touched every domain, and broadcast every (mostly empty)
 *  write log. Measured on the machine that produced the committed
 *  BENCH_pdes.json; only meaningful relative to rates measured there. */
constexpr double kSeedEventsPerSecJobs1 = 2.56e6;

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Everything the determinism gates compare, plus the timing. */
struct Point {
    std::uint32_t procs = 0;
    std::uint32_t domains = 0;
    std::uint32_t jobs = 0;
    const char *sync = "";
    double wallSec = 0;
    double eventsPerSec = 0;
    RunResult res;
};

/**
 * The jobs = 1 result every jobs > 1 run of the same (row, sync) must
 * reproduce bit for bit; pdes.jobs is the one excluded field (it
 * records the thread count itself). With @p cross_sync the same
 * comparison runs across barrier modes: only the cadence bookkeeping
 * (windows, empty-broadcast count, window widths, the mode flag) may
 * differ - simulated time, events, commits, traffic, phase count, and
 * idle-domain skips must all match.
 */
bool
sameResult(const RunResult &a, const RunResult &b, bool cross_sync,
           std::string *why)
{
#define CMP(field)                                                     \
    do {                                                               \
        if (a.field != b.field) {                                      \
            *why = #field;                                             \
            return false;                                              \
        }                                                              \
    } while (0)
    CMP(cycles);
    CMP(completed);
    CMP(events);
    CMP(quiesced);
    CMP(committedTxns);
    CMP(violations);
    CMP(overflows);
    CMP(committedInstructions);
    CMP(breakdown.useful);
    CMP(breakdown.miss);
    CMP(breakdown.commit);
    CMP(breakdown.idle);
    CMP(breakdown.violation);
    CMP(pdes.domains);
    CMP(pdes.lookahead);
    CMP(pdes.phases);
    CMP(pdes.mailboxMessages);
    CMP(pdes.idleDomainSkips);
    if (!cross_sync) {
        CMP(pdes.adaptive);
        CMP(pdes.windows);
        CMP(pdes.emptyBroadcastsSkipped);
    }
    if (a.procs.size() != b.procs.size() ||
        a.dirs.size() != b.dirs.size()) {
        *why = "stats vector size";
        return false;
    }
    for (std::size_t p = 0; p < a.procs.size(); ++p) {
        CMP(procs[p].txnsCommitted);
        CMP(procs[p].violations);
        CMP(procs[p].overflows);
        CMP(procs[p].committedInstructions);
    }
    for (std::size_t d = 0; d < a.dirs.size(); ++d) {
        CMP(dirs[d].nstid);
        CMP(dirs[d].commitsServed);
        CMP(dirs[d].invalidationsSent);
    }
#undef CMP
    return true;
}

Point
runPoint(const std::string &app, std::uint32_t procs,
         std::uint32_t domains, std::uint32_t jobs,
         PdesConfig::Sync sync, bool smoke)
{
    SystemConfig cfg;
    cfg.numProcs = procs;
    cfg.homePolicy = HomePolicy::Interleave;
    cfg.pdes.domains = domains;
    cfg.pdes.jobs = jobs;
    cfg.pdes.sync = sync;
    System sys(cfg);
    WorkloadParams wl;
    if (smoke)
        wl.set("phases", "1").set("max_txns_per_phase", "64");
    const WorkloadBundle bundle =
        makeWorkload(app, wl, /*seed=*/1, procs);
    bundle.attach(sys);
    const auto t0 = std::chrono::steady_clock::now();
    RunResult res = sys.run();
    const auto t1 = std::chrono::steady_clock::now();
    Point pt;
    pt.procs = procs;
    pt.domains = domains;
    pt.jobs = jobs;
    pt.sync = sync == PdesConfig::Sync::Adaptive ? "adaptive" : "fixed";
    pt.wallSec = seconds(t0, t1);
    pt.eventsPerSec = static_cast<double>(res.events) / pt.wallSec;
    pt.res = std::move(res);
    return pt;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string outPath = "BENCH_pdes.json";
    std::string syncArg = "both";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--sync") == 0 && i + 1 < argc) {
            syncArg = argv[++i];
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] "
                         "[--sync fixed|adaptive|both] [--out PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    std::vector<PdesConfig::Sync> syncs;
    if (syncArg == "fixed" || syncArg == "both")
        syncs.push_back(PdesConfig::Sync::Fixed);
    if (syncArg == "adaptive" || syncArg == "both")
        syncs.push_back(PdesConfig::Sync::Adaptive);
    if (syncs.empty()) {
        std::fprintf(stderr, "unknown --sync '%s'\n", syncArg.c_str());
        return 2;
    }
    const bool bothSyncs = syncs.size() == 2;

    // Domain count per processor count: one domain per mesh-row block
    // of 2 rows (16 procs: 4x4 grid -> 4 domains of one row each is
    // too fine; 4 strikes the balance measured in DESIGN.md sec. 11).
    struct Row {
        const char *app;
        std::uint32_t procs;
        std::uint32_t domains;
    };
    const std::vector<Row> rows =
        smoke ? std::vector<Row>{{"barnes", 16, 4}}
              : std::vector<Row>{{"barnes", 16, 4},
                                 {"barnes", 64, 8},
                                 {"swim", 256, 16}};
    const std::vector<std::uint32_t> jobsList =
        smoke ? std::vector<std::uint32_t>{1, 2}
              : std::vector<std::uint32_t>{1, 2, 4, 8};

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("== PDES single-run throughput (hw threads: %u) ==\n",
                hw);

    std::vector<Point> points;
    bool deterministic = true;
    bool crossSyncIdentical = true;
    double speedupJ4 = 0.0; // largest-procs row, jobs 4 vs jobs 1
    double epsJobs1Fixed = 0.0;    // headline row
    double epsJobs1Adaptive = 0.0; // headline row
    double windowReduction = 0.0;  // min over rows, jobs = 1
    for (const Row &row : rows) {
        RunResult fixedBase; // fixed-sync jobs = 1 of this row
        bool haveFixedBase = false;
        for (PdesConfig::Sync sync : syncs) {
            RunResult baseRes;
            double baseWall = 0;
            for (std::uint32_t jobs : jobsList) {
                // The engine clamps jobs to the domain count, so a
                // request beyond it reruns an already-measured point
                // and would emit a duplicate JSON row (same procs +
                // effective jobs + sync).
                if (jobs > row.domains) {
                    const std::uint32_t effective = row.domains;
                    bool dup = false;
                    for (std::uint32_t j : jobsList) {
                        if (j < jobs &&
                            std::min(j, row.domains) == effective) {
                            dup = true;
                            break;
                        }
                    }
                    if (dup) {
                        std::printf("%-8s procs=%-4u domains=%-3u "
                                    "jobs=%-2u %-8s : skipped (clamps "
                                    "to jobs=%u, already measured)\n",
                                    row.app, row.procs, row.domains,
                                    jobs,
                                    sync == PdesConfig::Sync::Adaptive
                                        ? "adaptive"
                                        : "fixed",
                                    effective);
                        continue;
                    }
                }
                points.push_back(runPoint(row.app, row.procs,
                                          row.domains, jobs, sync,
                                          smoke));
                const Point &pt = points.back();
                std::printf(
                    "%-8s procs=%-4u domains=%-3u jobs=%-2u %-8s : "
                    "%9.3f sec  %12.0f events/sec  "
                    "(%llu windows, %llu mailbox msgs)\n",
                    row.app, row.procs, row.domains, jobs, pt.sync,
                    pt.wallSec, pt.eventsPerSec,
                    (unsigned long long)pt.res.pdes.windows,
                    (unsigned long long)pt.res.pdes.mailboxMessages);
                if (!pt.res.completed) {
                    std::fprintf(stderr,
                                 "FAIL: run did not complete\n");
                    return 1;
                }
                if (jobs == 1) {
                    baseRes = pt.res;
                    baseWall = pt.wallSec;
                    if (sync == PdesConfig::Sync::Fixed) {
                        fixedBase = pt.res;
                        haveFixedBase = true;
                        if (&row == &rows.front())
                            epsJobs1Fixed = pt.eventsPerSec;
                    } else {
                        if (&row == &rows.front())
                            epsJobs1Adaptive = pt.eventsPerSec;
                        std::string why;
                        if (haveFixedBase &&
                            !sameResult(fixedBase, pt.res,
                                        /*cross_sync=*/true, &why)) {
                            std::fprintf(
                                stderr,
                                "MISMATCH at procs=%u: '%s' differs "
                                "between fixed and adaptive sync - "
                                "deferred barriers changed the "
                                "simulation\n",
                                row.procs, why.c_str());
                            crossSyncIdentical = false;
                        }
                        if (haveFixedBase &&
                            pt.res.pdes.windows != 0) {
                            const double r =
                                static_cast<double>(
                                    fixedBase.pdes.windows) /
                                static_cast<double>(
                                    pt.res.pdes.windows);
                            if (windowReduction == 0.0 ||
                                r < windowReduction)
                                windowReduction = r;
                        }
                    }
                    continue;
                }
                std::string why;
                if (!sameResult(baseRes, pt.res, /*cross_sync=*/false,
                                &why)) {
                    std::fprintf(
                        stderr,
                        "MISMATCH at procs=%u jobs=%u sync=%s: '%s' "
                        "differs from the jobs=1 run - PDES result "
                        "depends on the thread count\n",
                        row.procs, jobs, pt.sync, why.c_str());
                    deterministic = false;
                }
                if (&row == &rows.back() && jobs == 4 &&
                    sync == syncs.back())
                    speedupJ4 = baseWall / pt.wallSec;
            }
        }
    }
    std::printf("determinism        : %s\n",
                deterministic ? "jobs>1 bit-identical to jobs=1"
                              : "MISMATCH");
    if (bothSyncs) {
        std::printf("cross-sync         : %s\n",
                    crossSyncIdentical
                        ? "adaptive bit-identical to fixed "
                          "(modulo barrier cadence)"
                        : "MISMATCH");
        std::printf("window reduction   : %8.2fx fewer barrier "
                    "windows (worst row, jobs=1)\n",
                    windowReduction);
        if (epsJobs1Fixed > 0.0 && epsJobs1Adaptive > 0.0)
            std::printf("adaptive speedup   : %8.2fx at jobs=1 "
                        "(headline row)\n",
                        epsJobs1Adaptive / epsJobs1Fixed);
    }
    if (speedupJ4 != 0.0)
        std::printf("speedup (jobs=4)   : %8.2fx at %u procs\n",
                    speedupJ4, rows.back().procs);

    const double adaptiveSpeedupJ1 =
        epsJobs1Fixed > 0.0 && epsJobs1Adaptive > 0.0
            ? epsJobs1Adaptive / epsJobs1Fixed
            : 0.0;
    const double speedupVsSeed =
        !smoke && epsJobs1Adaptive > 0.0
            ? epsJobs1Adaptive / kSeedEventsPerSecJobs1
            : 0.0;
    if (speedupVsSeed != 0.0)
        std::printf("speedup vs seed    : %8.2fx at jobs=1 "
                    "(headline row, adaptive)\n",
                    speedupVsSeed);

    std::FILE *f = std::fopen(outPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     outPath.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"deterministic\": %d,\n"
                 "  \"cross_sync_identical\": %d,\n"
                 "  \"points_total\": %zu,\n"
                 "  \"events_per_sec_jobs1\": %.0f,\n"
                 "  \"events_per_sec_jobs1_adaptive\": %.0f,\n"
                 "  \"adaptive_speedup_jobs1\": %.3f,\n"
                 "  \"adaptive_window_reduction\": %.3f,\n"
                 "  \"seed_events_per_sec_jobs1\": %.0f,\n"
                 "  \"adaptive_speedup_vs_seed\": %.3f,\n"
                 "  \"speedup_jobs4\": %.3f,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"git_rev\": \"%s\",\n"
                 "  \"points\": [\n",
                 deterministic ? 1 : 0, crossSyncIdentical ? 1 : 0,
                 points.size(),
                 points.empty() ? 0.0 : points.front().eventsPerSec,
                 epsJobs1Adaptive, adaptiveSpeedupJ1, windowReduction,
                 kSeedEventsPerSecJobs1, speedupVsSeed,
                 speedupJ4, hw, TCC_GIT_REV);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &pt = points[i];
        const double epw =
            pt.res.pdes.windows == 0
                ? 0.0
                : static_cast<double>(pt.res.events) /
                      static_cast<double>(pt.res.pdes.windows);
        std::fprintf(
            f,
            "    {\"procs\": %u, \"domains\": %u, \"jobs\": %u, "
            "\"sync\": \"%s\", "
            "\"wall_sec\": %.6f, \"events_per_sec\": %.0f, "
            "\"cycles\": %llu, \"events\": %llu, "
            "\"lookahead\": %llu, \"windows\": %llu, \"phases\": %llu, "
            "\"events_per_window\": %.1f, "
            "\"mailbox_messages\": %llu, "
            "\"idle_domain_skips\": %llu, "
            "\"empty_broadcasts_skipped\": %llu}%s\n",
            pt.procs, pt.domains, pt.res.pdes.jobs, pt.sync, pt.wallSec,
            pt.eventsPerSec, (unsigned long long)pt.res.cycles,
            (unsigned long long)pt.res.events,
            (unsigned long long)pt.res.pdes.lookahead,
            (unsigned long long)pt.res.pdes.windows,
            (unsigned long long)pt.res.pdes.phases, epw,
            (unsigned long long)pt.res.pdes.mailboxMessages,
            (unsigned long long)pt.res.pdes.idleDomainSkips,
            (unsigned long long)pt.res.pdes.emptyBroadcastsSkipped,
            i + 1 == points.size() ? "" : ",");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"config\": {\n"
                 "    \"smoke\": %s,\n"
                 "    \"sync_modes\": %zu,\n"
                 "    \"jobs_swept\": %zu,\n"
                 "    \"rows\": %zu\n"
                 "  }\n"
                 "}\n",
                 smoke ? "true" : "false", syncs.size(),
                 jobsList.size(), rows.size());
    std::fclose(f);
    std::printf("wrote %s\n", outPath.c_str());

    if (!deterministic)
        return 1;
    if (!crossSyncIdentical)
        return 1;
    // Window-reduction gate: the whole point of adaptive sync. Armed
    // in smoke too - the reduction is a property of the event pattern,
    // not of wall-clock timing.
    if (bothSyncs && windowReduction < 5.0) {
        std::fprintf(stderr,
                     "FAIL: adaptive closed only %.2fx fewer windows "
                     "than fixed (< 5x)\n",
                     windowReduction);
        return 1;
    }
    // Throughput gate: full runs only (the smoke workload finishes in
    // milliseconds and its timing is noise). jobs=1 on the headline
    // row, so it is meaningful on any core count. The bar is a
    // regression guard - adaptive must beat fixed *in this binary*,
    // where both legs already carry the barrier micro-fixes; the
    // speedup over the pre-adaptive engine is the recorded
    // adaptive_speedup_vs_seed.
    if (!smoke && bothSyncs && adaptiveSpeedupJ1 != 0.0 &&
        adaptiveSpeedupJ1 < 1.05) {
        std::fprintf(stderr,
                     "FAIL: adaptive jobs=1 throughput %.2fx fixed "
                     "(< 1.05x)\n",
                     adaptiveSpeedupJ1);
        return 1;
    }
    // Speedup gate: only meaningful where the OS can actually schedule
    // 4 workers concurrently.
    if (!smoke && hw >= 4 && speedupJ4 != 0.0 && speedupJ4 < 1.5) {
        std::fprintf(stderr,
                     "FAIL: jobs=4 speedup %.2fx < 1.5x on %u "
                     "hardware threads\n",
                     speedupJ4, hw);
        return 1;
    }
    return 0;
}
