/**
 * @file
 * Benchmark of the evaluation harness itself, with a machine-readable
 * result (BENCH_sweep.json):
 *
 *  1. Wall-clock of a representative figure-style grid (every
 *     application at 8 and 16 processors) run serially vs through
 *     SweepRunner with N workers. The parallel pass is checked
 *     bit-identical to the serial pass before any number is reported;
 *     a mismatch fails the benchmark.
 *  2. End-to-end simulated events/sec of a single Table 2 run - the
 *     figure that tracks the FlatMap/FlatSet hot-path containers
 *     (directory entries, store words, processor write buffers).
 *
 * Usage: bench_sweep [--smoke] [--out PATH] [--jobs=<n>]
 *   --smoke   tiny grid (CI wiring check, not a benchmark)
 *   --out     JSON output path (default BENCH_sweep.json)
 *   --jobs    parallel worker count (default: TCC_JOBS env, else
 *             hardware threads)
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "common/log.hh"
#include "noc/chaos_network.hh"
#include "workload/scripted_source.hh"

// Configure-time git revision (set by bench/CMakeLists.txt) so each
// BENCH_*.json records what code produced it.
#ifndef TCC_GIT_REV
#define TCC_GIT_REV "unknown"
#endif

namespace {

using namespace tccbench;

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Mean / min / relative standard deviation of repeated wall times.
 *  The minimum feeds the speedup (least-noise estimate); the relative
 *  stddev tells the gate whether this machine's timings are stable
 *  enough to fail on. */
struct WallStats {
    double minSec = 0;
    double meanSec = 0;
    double relStddev = 0;
};

WallStats
wallStats(const std::vector<double> &times)
{
    WallStats w;
    w.minSec = times[0];
    double sum = 0;
    for (double t : times) {
        sum += t;
        w.minSec = std::min(w.minSec, t);
    }
    w.meanSec = sum / static_cast<double>(times.size());
    double var = 0;
    for (double t : times)
        var += (t - w.meanSec) * (t - w.meanSec);
    var /= static_cast<double>(times.size());
    if (w.meanSec > 0)
        w.relStddev = std::sqrt(var) / w.meanSec;
    return w;
}

struct GridCell {
    std::string app;
    std::uint32_t procs;
};

/** The run fingerprint that must match between serial and parallel. */
struct Fingerprint {
    Tick cycles;
    std::uint64_t committedTxns;
    std::uint64_t violations;
    std::uint64_t committedInstructions;
    bool completed;

    bool
    operator==(const Fingerprint &o) const
    {
        return cycles == o.cycles &&
               committedTxns == o.committedTxns &&
               violations == o.violations &&
               committedInstructions == o.committedInstructions &&
               completed == o.completed;
    }
};

Fingerprint
fingerprint(const RunOutcome &out)
{
    return Fingerprint{out.cycles, out.committedTxns, out.violations,
                       out.committedInstructions, out.completed};
}

std::vector<RunOutcome>
runGrid(const std::vector<GridCell> &grid, unsigned jobs)
{
    SweepRunner runner(jobs);
    return sweepIndex<RunOutcome>(
        runner, grid.size(), [&](std::size_t i) {
            RunOptions opt;
            opt.procs = grid[i].procs;
            return runWorkload(grid[i].app, opt);
        });
}

struct FlatMapResult {
    double eventsPerSec = 0;
    std::uint64_t arenaPeakBytes = 0;
    std::uint64_t arenaChunks = 0;
};

/** One timed end-to-end run; events/sec exercises the flat maps. */
FlatMapResult
flatMapEventsPerSec(std::uint32_t txns_per_phase)
{
    SystemConfig cfg;
    cfg.numProcs = 16;
    System sys(cfg);
    WorkloadParams wl;
    wl.set("txns_per_phase", std::to_string(txns_per_phase));
    wl.set("phases", "2");
    const WorkloadBundle bundle =
        makeWorkload("water_spatial", wl, /*seed=*/1, cfg.numProcs);
    bundle.attach(sys);
    const auto t0 = std::chrono::steady_clock::now();
    auto res = sys.run();
    const auto t1 = std::chrono::steady_clock::now();
    FlatMapResult out;
    out.eventsPerSec = static_cast<double>(res.events) / seconds(t0, t1);
    const Arena::Stats as = sys.arenaStats();
    out.arenaPeakBytes = as.peakBytes;
    out.arenaChunks = as.chunks;
    return out;
}

/**
 * Chaos gate: run every fault preset over one application with both
 * checkers armed; returns how many presets came back clean. Recorded
 * in BENCH_sweep.json as chaos_configs_passed so the trend file shows
 * when a protocol change stops tolerating an adversarial network.
 */
std::size_t
chaosConfigsPassed(bool smoke, unsigned jobs, std::size_t *total)
{
    const auto &presets = tcc::chaosPresetNames();
    *total = presets.size();
    SweepRunner runner(jobs);
    const auto outcomes = sweepIndex<RunOutcome>(
        runner, presets.size(), [&](std::size_t i) {
            RunOptions opt;
            opt.procs = smoke ? 4u : 8u;
            opt.seed = 1 + i;
            opt.network.model = NetworkConfig::Model::Chaos;
            opt.network.chaos = tcc::chaosPreset(presets[i]);
            opt.network.chaos.seed = 0xC7A05 + i;
            opt.check.serial = true;
            opt.check.invariants = true;
            if (smoke)
                opt.wl.set("phases", "1")
                    .set("max_txns_per_phase", "64");
            return runWorkload("radix", opt);
        });
    std::size_t passed = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const RunOutcome &out = outcomes[i];
        if (out.completed && out.serial.ok && out.invariants.ok) {
            ++passed;
        } else {
            std::fprintf(stderr, "chaos preset '%s' FAILED: %s\n",
                         presets[i].c_str(),
                         !out.completed    ? "did not complete"
                         : !out.serial.ok ? out.serial.error.c_str()
                                          : out.invariants.error.c_str());
        }
    }
    return passed;
}

/**
 * Observability wiring check (same scenario as bench_kernel's): the
 * 2-processor scripted conflict with all trace categories on, text
 * output off. Zero captured events means the instrumentation broke.
 */
std::uint64_t
tracedEventCount()
{
    using namespace tcc;
    Trace::setTextOutput(false);
    Trace::enableAll(true);
    std::uint64_t captured = 0;
    {
        SystemConfig cfg;
        cfg.numProcs = 2;
        cfg.homePolicy = HomePolicy::Interleave;
        System sys(cfg);
        const Addr x = 0x100000;
        ScriptedSource p0;
        p0.add({TxOp::compute(100), TxOp::store(x, 42)});
        ScriptedSource p1;
        p1.add({TxOp::load(x), TxOp::compute(4000),
                TxOp::storeAdd(x + 4096, 0)});
        sys.setSource(0, &p0);
        sys.setSource(1, &p1);
        sys.run();
        captured = sys.traceRecorder().captured();
    }
    Trace::enableAll(false);
    Trace::setTextOutput(true);
    return captured;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tccbench;

    bool smoke = false;
    std::string outPath = "BENCH_sweep.json";
    unsigned jobs = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            jobs = static_cast<unsigned>(
                std::strtoul(argv[i] + 7, nullptr, 10));
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--smoke] [--out PATH] [--jobs=<n>]\n",
                argv[0]);
            return 2;
        }
    }
    if (jobs == 0)
        jobs = SweepRunner::defaultJobs();

    // The grid: every application at 8 and 16 CPUs (a slice of the
    // Figure 7 sweep). Smoke keeps two applications so CI only checks
    // the wiring.
    std::vector<GridCell> grid;
    std::size_t nApps = 0;
    for (const auto &app : benchApps()) {
        if (smoke && nApps >= 2)
            break;
        ++nApps;
        for (std::uint32_t p : {8u, 16u})
            grid.push_back(GridCell{app, p});
    }

    std::printf("== sweep-engine throughput (%zu runs) ==\n",
                grid.size());

    // Repeat each timed pass so the JSON carries per-run wall times
    // and the speedup gate can tell a real regression from scheduler
    // noise. The grid results are deterministic, so only the first
    // pass's outcomes are kept for the bit-identity check.
    const int passes = smoke ? 1 : 3;
    std::vector<double> serialTimes, parallelTimes;
    std::vector<RunOutcome> serial, parallel;
    for (int p = 0; p < passes; ++p) {
        const auto s0 = std::chrono::steady_clock::now();
        auto out = runGrid(grid, 1);
        const auto s1 = std::chrono::steady_clock::now();
        serialTimes.push_back(seconds(s0, s1));
        if (p == 0)
            serial = std::move(out);
    }
    for (int p = 0; p < passes; ++p) {
        const auto p0 = std::chrono::steady_clock::now();
        auto out = runGrid(grid, jobs);
        const auto p1 = std::chrono::steady_clock::now();
        parallelTimes.push_back(seconds(p0, p1));
        if (p == 0)
            parallel = std::move(out);
    }
    const WallStats serialW = wallStats(serialTimes);
    const WallStats parallelW = wallStats(parallelTimes);
    const double serialSec = serialW.minSec;
    const double parallelSec = parallelW.minSec;
    std::printf("serial   (1 job%s) : %8.3f sec "
                "(min of %d, +/-%.1f%%)\n",
                "", serialSec, passes, serialW.relStddev * 100.0);
    std::printf("parallel (%u jobs) : %8.3f sec "
                "(min of %d, +/-%.1f%%)\n",
                jobs, parallelSec, passes,
                parallelW.relStddev * 100.0);

    // Determinism gate: the parallel sweep must reproduce the serial
    // sweep bit for bit, or its timing is meaningless.
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (!(fingerprint(serial[i]) == fingerprint(parallel[i]))) {
            std::fprintf(stderr,
                         "MISMATCH at %s/%u: parallel run is not "
                         "bit-identical to serial\n",
                         grid[i].app.c_str(), grid[i].procs);
            return 1;
        }
    }
    std::printf("determinism        : parallel == serial "
                "(%zu/%zu runs bit-identical)\n",
                grid.size(), grid.size());

    const double speedup = serialSec / parallelSec;
    std::printf("speedup            : %8.2fx\n", speedup);

    // Observability-is-free gate: re-run one grid point with the
    // epoch sampler and the contention profiler armed. Sampling is
    // purely observational, so the fingerprint must match the plain
    // run bit for bit - any divergence means the metrics layer leaked
    // into the simulation.
    RunOptions armedOpt;
    armedOpt.procs = grid[0].procs;
    armedOpt.trace.metricsEpoch = 500;
    armedOpt.trace.contentionTopK = 16;
    const RunOutcome armed = runWorkload(grid[0].app, armedOpt);
    if (!(fingerprint(armed) == fingerprint(serial[0]))) {
        std::fprintf(stderr,
                     "MISMATCH at %s/%u: run with metrics sampler "
                     "armed is not bit-identical to the plain run\n",
                     grid[0].app.c_str(), grid[0].procs);
        return 1;
    }
    const std::uint64_t metricsEpochs = armed.metricsEpochs;
    std::printf("observability gate : armed == off (fingerprint "
                "identical, %llu epochs sampled)\n",
                (unsigned long long)metricsEpochs);

    const FlatMapResult flat =
        flatMapEventsPerSec(smoke ? 32u : 1024u);
    std::printf("flat-map e2e       : %12.0f events/sec\n",
                flat.eventsPerSec);
    std::printf("arena              : %12llu peak bytes in %llu "
                "chunks\n",
                (unsigned long long)flat.arenaPeakBytes,
                (unsigned long long)flat.arenaChunks);

    const std::uint64_t traceEvents = tracedEventCount();
    std::printf("trace wiring       : %12llu events captured "
                "(scripted conflict)\n",
                (unsigned long long)traceEvents);

    std::size_t chaosTotal = 0;
    const std::size_t chaosPassed =
        chaosConfigsPassed(smoke, jobs, &chaosTotal);
    std::printf("chaos gate         : %zu / %zu presets clean "
                "(serial + invariant checkers)\n",
                chaosPassed, chaosTotal);

    std::FILE *f = std::fopen(outPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     outPath.c_str());
        return 1;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    auto printTimes = [f](const char *key,
                          const std::vector<double> &times) {
        std::fprintf(f, "  \"%s\": [", key);
        for (std::size_t i = 0; i < times.size(); ++i)
            std::fprintf(f, "%s%.6f", i ? ", " : "", times[i]);
        std::fprintf(f, "],\n");
    };
    std::fprintf(f, "{\n");
    printTimes("serial_runs_sec", serialTimes);
    printTimes("parallel_runs_sec", parallelTimes);
    std::fprintf(f,
                 "  \"serial_sec\": %.6f,\n"
                 "  \"parallel_sec\": %.6f,\n"
                 "  \"wall_time_rel_stddev\": %.4f,\n"
                 "  \"jobs\": %u,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"flatmap_events_per_sec\": %.0f,\n"
                 "  \"arena_peak_bytes\": %llu,\n"
                 "  \"arena_chunks\": %llu,\n"
                 "  \"trace_events_captured\": %llu,\n"
                 "  \"metrics_epochs\": %llu,\n"
                 "  \"chaos_configs_passed\": %zu,\n"
                 "  \"chaos_configs_total\": %zu,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"git_rev\": \"%s\",\n"
                 "  \"config\": {\n"
                 "    \"smoke\": %s,\n"
                 "    \"apps\": %zu,\n"
                 "    \"runs\": %zu,\n"
                 "    \"procs\": [8, 16]\n"
                 "  }\n"
                 "}\n",
                 serialSec, parallelSec,
                 std::max(serialW.relStddev, parallelW.relStddev),
                 jobs, speedup,
                 flat.eventsPerSec,
                 (unsigned long long)flat.arenaPeakBytes,
                 (unsigned long long)flat.arenaChunks,
                 (unsigned long long)traceEvents,
                 (unsigned long long)metricsEpochs, chaosPassed,
                 chaosTotal, hw, TCC_GIT_REV,
                 smoke ? "true" : "false", nApps, grid.size());
    std::fclose(f);
    std::printf("wrote %s\n", outPath.c_str());

    // Regression gate: on a machine with real parallelism, a parallel
    // sweep that loses to the serial loop means the workers are
    // contending on something (allocator, false sharing) and the
    // parallel engine has regressed. Machines with one hardware
    // thread can't speed up by oversubscribing, so the gate only
    // arms when the hardware can actually run workers side by side
    // (the JSON's hardware_concurrency key says which case this was).
    if (chaosPassed != chaosTotal) {
        std::fprintf(stderr,
                     "FAIL: %zu of %zu chaos presets broke the "
                     "protocol checkers\n",
                     chaosTotal - chaosPassed, chaosTotal);
        return 1;
    }
    if (!smoke && jobs > 1 && hw > 1 && speedup < 1.0) {
        // On a noisy machine (high run-to-run variance) a sub-1.0
        // ratio is as likely to be scheduler interference as a real
        // regression: warn, record, and let the trend file decide.
        const double noise =
            std::max(serialW.relStddev, parallelW.relStddev);
        if (noise > 0.10) {
            std::fprintf(stderr,
                         "WARN: parallel sweep slower than serial "
                         "(%.2fx with %u jobs on %u hardware threads) "
                         "but wall times vary +/-%.0f%% - not failing "
                         "on a noisy machine\n",
                         speedup, jobs, hw, noise * 100.0);
            return 0;
        }
        std::fprintf(stderr,
                     "FAIL: parallel sweep slower than serial "
                     "(%.2fx with %u jobs on %u hardware threads)\n",
                     speedup, jobs, hw);
        return 1;
    }
    return 0;
}
