/**
 * @file
 * Reproduces Figure 9: remote traffic bandwidth at 64 processors, in
 * bytes per committed instruction, broken into overhead (protocol
 * control), miss (load requests + data), write-back, and shared
 * (cache-to-cache) components. The paper reports 0.01-0.6
 * bytes/instruction total, i.e., well within commodity cluster
 * interconnect bandwidth at 2 GHz.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tccbench;
    const BenchArgs args = parseBenchArgs(argc, argv);
    const auto apps = benchApps(args);
    const std::uint32_t procs =
        args.procs.empty() ? 64u : args.procs.front();

    std::puts("=== Figure 9: remote traffic (bytes/instr, "
              "64 processors) ===");
    std::puts(trafficHeader().c_str());

    SweepRunner runner(args.jobs);
    auto outs = sweepIndex<RunOutcome>(
        runner, apps.size(), [&](std::size_t i) {
            RunOptions opt;
            opt.procs = procs;
            return runWorkload(apps[i], opt);
        });

    for (const auto &out : outs) {
        if (!out.completed) {
            std::printf("%-16s DID NOT COMPLETE\n", out.app.c_str());
            continue;
        }
        std::puts(trafficRowText(out.traffic).c_str());
        // The paper also quotes the implied MB/s at 2 GHz per node.
        const double mbps =
            out.traffic.total() * 2e9 / static_cast<double>(procs) /
            1e6;
        std::printf("%-16s   -> %.1f MB/s per node at 2 GHz\n",
                    out.app.c_str(), mbps);
    }
    return 0;
}
