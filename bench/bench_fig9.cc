/**
 * @file
 * Reproduces Figure 9: remote traffic bandwidth at 64 processors, in
 * bytes per committed instruction, broken into overhead (protocol
 * control), miss (load requests + data), write-back, and shared
 * (cache-to-cache) components. The paper reports 0.01-0.6
 * bytes/instruction total, i.e., well within commodity cluster
 * interconnect bandwidth at 2 GHz.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace tccbench;

    std::puts("=== Figure 9: remote traffic (bytes/instr, "
              "64 processors) ===");
    std::puts(trafficHeader().c_str());

    for (const auto &app : benchApps()) {
        RunOptions opt;
        opt.procs = 64;
        auto out = runApp(app, opt);
        if (!out.completed) {
            std::printf("%-16s DID NOT COMPLETE\n", app.name.c_str());
            continue;
        }
        std::puts(trafficRowText(out.traffic).c_str());
        // The paper also quotes the implied MB/s at 2 GHz per node.
        const double mbps = out.traffic.total() * 2e9 / 64.0 / 1e6;
        std::printf("%-16s   -> %.1f MB/s per node at 2 GHz\n",
                    app.name.c_str(), mbps);
    }
    return 0;
}
