/**
 * @file
 * Reproduces Figure 8: the impact of interconnect communication
 * latency at 32 processors. The x-axis sweeps cycles-per-hop over
 * {2, 4, 8}; bars are normalized to each application's run at the
 * lowest latency. The paper's finding: applications with significant
 * remote misses (equake) or commit time (volrend) degrade by up to
 * ~50% at 8 cycles/hop, while low-communication applications
 * (SPECjbb, swim) are nearly flat.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace tccbench;
    constexpr std::uint32_t kProcs = 32;

    std::puts("=== Figure 8: communication latency sensitivity "
              "(32 processors) ===");
    std::printf("%-16s %10s %11s | %7s %7s %7s %7s %9s\n", "application",
                "cyc/hop", "norm_time", "useful", "miss", "idle",
                "commit", "violation");

    for (const auto &app : benchApps()) {
        double t_base = 0;
        for (Tick hop : {2u, 4u, 8u}) {
            RunOptions opt;
            opt.procs = kProcs;
            opt.hopLatency = hop;
            auto out = runApp(app, opt);
            if (!out.completed) {
                std::printf("%-16s %10llu DID NOT COMPLETE\n",
                            app.name.c_str(),
                            (unsigned long long)hop);
                continue;
            }
            if (hop == 2)
                t_base = static_cast<double>(out.cycles);
            const double height =
                100.0 * static_cast<double>(out.cycles) / t_base;
            const auto &bd = out.breakdown;
            std::printf("%-16s %10llu %10.1f%% | %6.1f%% %6.1f%% "
                        "%6.1f%% %6.1f%% %8.1f%%\n",
                        app.name.c_str(), (unsigned long long)hop,
                        height, height * bd.fraction(bd.useful),
                        height * bd.fraction(bd.miss),
                        height * bd.fraction(bd.idle),
                        height * bd.fraction(bd.commit),
                        height * bd.fraction(bd.violation));
        }
    }
    return 0;
}
