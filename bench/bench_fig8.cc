/**
 * @file
 * Reproduces Figure 8: the impact of interconnect communication
 * latency at 32 processors. The x-axis sweeps cycles-per-hop over
 * {2, 4, 8}; bars are normalized to each application's run at the
 * lowest latency. The paper's finding: applications with significant
 * remote misses (equake) or commit time (volrend) degrade by up to
 * ~50% at 8 cycles/hop, while low-communication applications
 * (SPECjbb, swim) are nearly flat.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tccbench;
    const BenchArgs args = parseBenchArgs(argc, argv);
    const auto apps = benchApps(args);
    const std::uint32_t procs =
        args.procs.empty() ? 32u : args.procs.front();
    const std::vector<Tick> hops = {2, 4, 8};

    std::puts("=== Figure 8: communication latency sensitivity "
              "(32 processors) ===");
    std::printf("%-16s %10s %11s | %7s %7s %7s %7s %9s\n", "application",
                "cyc/hop", "norm_time", "useful", "miss", "idle",
                "commit", "violation");

    SweepRunner runner(args.jobs);
    auto outs = sweepIndex<RunOutcome>(
        runner, apps.size() * hops.size(), [&](std::size_t i) {
            RunOptions opt;
            opt.procs = procs;
            opt.hopLatency = hops[i % hops.size()];
            return runWorkload(apps[i / hops.size()], opt);
        });

    for (std::size_t a = 0; a < apps.size(); ++a) {
        double t_base = 0;
        for (std::size_t h = 0; h < hops.size(); ++h) {
            const Tick hop = hops[h];
            const auto &out = outs[a * hops.size() + h];
            if (!out.completed) {
                std::printf("%-16s %10llu DID NOT COMPLETE\n",
                            apps[a].c_str(),
                            (unsigned long long)hop);
                continue;
            }
            if (h == 0)
                t_base = static_cast<double>(out.cycles);
            const double height =
                100.0 * static_cast<double>(out.cycles) / t_base;
            const auto &bd = out.breakdown;
            std::printf("%-16s %10llu %10.1f%% | %6.1f%% %6.1f%% "
                        "%6.1f%% %6.1f%% %8.1f%%\n",
                        apps[a].c_str(), (unsigned long long)hop,
                        height, height * bd.fraction(bd.useful),
                        height * bd.fraction(bd.miss),
                        height * bd.fraction(bd.idle),
                        height * bd.fraction(bd.commit),
                        height * bd.fraction(bd.violation));
        }
    }
    return 0;
}
