/**
 * @file
 * Tests for the closure-based transactional programming model
 * (TxProgram): data-dependent control flow, computed addresses,
 * value-based validation and regeneration on conflicts, and
 * serializability of closure workloads under contention.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "workload/tx_program.hh"

namespace tcc {
namespace {

SystemConfig
txCfg(std::uint32_t procs)
{
    SystemConfig cfg;
    cfg.numProcs = procs;
    cfg.check.serial = true;
    cfg.check.invariants = true;
    return cfg;
}

TEST(TxProgram, SimpleAtomicWrite)
{
    System sys(txCfg(1));
    TxProgramSource src(sys.memory());
    src.atomic([](TxContext &tx) {
        tx.compute(100);
        tx.store(0x1000, 42);
    });
    sys.setSource(0, &src);
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(sys.memory().read(0x1000), 42u);
    EXPECT_EQ(src.committed(), 1u);
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
}

TEST(TxProgram, ReadModifyWriteChainsAcrossTransactions)
{
    System sys(txCfg(1));
    TxProgramSource src(sys.memory());
    for (int i = 0; i < 10; ++i) {
        src.atomic([](TxContext &tx) {
            tx.store(0x1000, tx.load(0x1000) + 3);
        });
    }
    sys.setSource(0, &src);
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(sys.memory().read(0x1000), 30u);
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
}

TEST(TxProgram, ReadOwnWriteInsideTransaction)
{
    System sys(txCfg(1));
    TxProgramSource src(sys.memory());
    src.atomic([](TxContext &tx) {
        tx.store(0x1000, 5);
        const auto v = tx.load(0x1000); // must see our own 5
        tx.store(0x2000, v * 2);
    });
    sys.setSource(0, &src);
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(sys.memory().read(0x2000), 10u);
}

TEST(TxProgram, DataDependentControlFlow)
{
    // A linked-stack pop: the addresses touched depend on the values
    // read - impossible to express as a static op list.
    System sys(txCfg(1));
    const Addr head = 0x1000;
    auto node = [](std::uint64_t id) { return 0x10000 + id * 64; };

    // Build stack 3 -> 2 -> 1 (0 = nil) non-transactionally.
    sys.initializeWord(head, 3);
    sys.initializeWord(node(3), 2); // next pointers
    sys.initializeWord(node(2), 1);
    sys.initializeWord(node(1), 0);

    TxProgramSource src(sys.memory());
    std::vector<std::uint64_t> popped;
    for (int i = 0; i < 4; ++i) {
        src.atomic([&, head, node](TxContext &tx) {
            const auto h = tx.load(head);
            if (h == 0)
                return; // empty
            const auto next = tx.load(node(h));
            tx.store(head, next);
        });
    }
    sys.setSource(0, &src);
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(sys.memory().read(head), 0u); // fully drained
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
}

TEST(TxProgram, ConcurrentCountersExact)
{
    constexpr std::uint32_t kProcs = 8;
    constexpr int kIters = 15;
    System sys(txCfg(kProcs));
    std::vector<TxProgramSource> srcs;
    srcs.reserve(kProcs);
    for (NodeId p = 0; p < kProcs; ++p)
        srcs.emplace_back(sys.memory());
    for (NodeId p = 0; p < kProcs; ++p) {
        for (int i = 0; i < kIters; ++i) {
            srcs[p].atomic([](TxContext &tx) {
                tx.compute(25);
                tx.store(0x5000, tx.load(0x5000) + 1);
            });
        }
        sys.setSource(p, &srcs[p]);
    }
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(sys.memory().read(0x5000), kProcs * kIters);
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
    EXPECT_TRUE(sys.protocolQuiesced());
}

TEST(TxProgram, ConflictsTriggerRegeneration)
{
    // Two processors pop from the same stack: both generate against
    // the same head, one must regenerate.
    System sys(txCfg(2));
    const Addr head = 0x1000;
    auto node = [](std::uint64_t id) { return 0x10000 + id * 64; };
    sys.initializeWord(head, 2);
    sys.initializeWord(node(2), 1);
    sys.initializeWord(node(1), 0);

    TxProgramSource a(sys.memory()), b(sys.memory());
    auto pop = [&, head, node](TxContext &tx) {
        const auto h = tx.load(head);
        tx.compute(2000); // widen the conflict window
        if (h != 0)
            tx.store(head, tx.load(node(h)));
    };
    a.atomic(pop);
    b.atomic(pop);
    sys.setSource(0, &a);
    sys.setSource(1, &b);
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    // Both pops committed: the stack is empty, nothing popped twice.
    EXPECT_EQ(sys.memory().read(head), 0u);
    EXPECT_GE(a.regenerated() + b.regenerated(), 1u);
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
}

TEST(TxProgram, WorkQueueDrainsExactlyOnce)
{
    // The motivating use: a shared work list consumed by many
    // processors; every element processed exactly once.
    constexpr std::uint32_t kProcs = 4;
    constexpr std::uint64_t kItems = 24;
    System sys(txCfg(kProcs));
    const Addr next_item = 0x1000; // shared "next index" counter
    auto done_flag = [](std::uint64_t i) { return 0x20000 + i * 4; };

    std::vector<TxProgramSource> srcs;
    srcs.reserve(kProcs);
    for (NodeId p = 0; p < kProcs; ++p)
        srcs.emplace_back(sys.memory());
    for (NodeId p = 0; p < kProcs; ++p) {
        for (std::uint64_t t = 0; t < kItems; ++t) {
            srcs[p].atomic([&, done_flag](TxContext &tx) {
                const auto idx = tx.load(next_item);
                if (idx >= kItems)
                    return; // queue drained
                tx.store(next_item, idx + 1);
                tx.compute(60); // "process" the item
                tx.store(done_flag(idx),
                         tx.load(done_flag(idx)) + 1);
            });
        }
        sys.setSource(p, &srcs[p]);
    }
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(sys.memory().read(next_item), kItems);
    for (std::uint64_t i = 0; i < kItems; ++i)
        EXPECT_EQ(sys.memory().read(done_flag(i)), 1u) << "item " << i;
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
}

} // namespace
} // namespace tcc
