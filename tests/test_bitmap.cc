/**
 * @file
 * Property tests for the packed bitmap structures that replaced
 * element-at-a-time containers on the protocol hot paths:
 *
 *  - SkipVector (the directory's Skip Vector) against a reference
 *    std::deque<bool> model - the representation the seed used - under
 *    randomized set/test/pop sequences;
 *  - the NodeSet operations the commit/violation paths now lean on
 *    (anyBesides, intersects).
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "common/arena.hh"
#include "common/nodeset.hh"
#include "common/skip_vector.hh"
#include "sim/random.hh"

namespace tcc {
namespace {

/** The seed's Skip Vector representation: a deque of retired flags
 *  indexed by offset from the NSTID. */
struct DequeModel {
    std::deque<bool> window;

    bool
    test(std::size_t idx) const
    {
        return idx < window.size() && window[idx];
    }

    void
    set(std::size_t idx)
    {
        if (idx >= window.size())
            window.resize(idx + 1, false);
        window[idx] = true;
    }

    std::size_t
    popLeadingRun()
    {
        std::size_t n = 0;
        while (!window.empty() && window.front()) {
            window.pop_front();
            ++n;
        }
        return n;
    }

    std::size_t
    count() const
    {
        std::size_t n = 0;
        for (bool b : window)
            n += b;
        return n;
    }
};

TEST(SkipVector, StartsEmpty)
{
    SkipVector sv;
    EXPECT_TRUE(sv.empty());
    EXPECT_EQ(sv.count(), 0u);
    EXPECT_FALSE(sv.test(0));
    EXPECT_EQ(sv.popLeadingRun(), 0u);
}

TEST(SkipVector, SetTestPopBasics)
{
    SkipVector sv;
    sv.set(0);
    sv.set(1);
    sv.set(3);
    EXPECT_TRUE(sv.test(0));
    EXPECT_TRUE(sv.test(1));
    EXPECT_FALSE(sv.test(2));
    EXPECT_TRUE(sv.test(3));
    EXPECT_EQ(sv.count(), 3u);

    // The leading run is {0, 1}; offset 3 becomes offset 1.
    EXPECT_EQ(sv.popLeadingRun(), 2u);
    EXPECT_FALSE(sv.test(0));
    EXPECT_TRUE(sv.test(1));
    EXPECT_EQ(sv.count(), 1u);
}

TEST(SkipVector, SetIsIdempotent)
{
    SkipVector sv;
    sv.set(5);
    sv.set(5);
    EXPECT_EQ(sv.count(), 1u);
    EXPECT_EQ(sv.popLeadingRun(), 0u);
    sv.set(0);
    sv.set(1);
    sv.set(2);
    sv.set(3);
    sv.set(4);
    EXPECT_EQ(sv.popLeadingRun(), 6u);
    EXPECT_TRUE(sv.empty());
}

TEST(SkipVector, RunsSpanWordBoundaries)
{
    SkipVector sv;
    // 130 contiguous retirements cross two 64-bit word boundaries.
    for (std::size_t i = 0; i < 130; ++i)
        sv.set(i);
    EXPECT_EQ(sv.popLeadingRun(), 130u);
    EXPECT_TRUE(sv.empty());
}

TEST(SkipVector, MatchesDequeModelRandomized)
{
    Rng rng(20070212); // HPCA 2007 paper week
    SkipVector sv;
    DequeModel model;
    for (int step = 0; step < 20000; ++step) {
        const std::uint64_t what = rng.below(4);
        if (what < 2) {
            // Retire a TID in a window shaped like a real directory's
            // (bounded by processors in flight + skew).
            const std::size_t idx =
                static_cast<std::size_t>(rng.below(200));
            sv.set(idx);
            model.set(idx);
        } else if (what == 2) {
            EXPECT_EQ(sv.popLeadingRun(), model.popLeadingRun());
        } else {
            const std::size_t idx =
                static_cast<std::size_t>(rng.below(256));
            EXPECT_EQ(sv.test(idx), model.test(idx)) << "idx " << idx;
        }
        ASSERT_EQ(sv.count(), model.count()) << "step " << step;
    }
    // Drain whatever is left the way Directory::advance() does.
    while (sv.count() > 0) {
        const std::size_t moved = sv.popLeadingRun();
        ASSERT_EQ(moved, model.popLeadingRun());
        if (moved == 0) {
            sv.set(0);
            model.set(0);
        }
    }
}

TEST(SkipVector, ArenaBackedBehavesTheSame)
{
    Arena arena;
    SkipVector sv(&arena);
    for (std::size_t i = 0; i < 100; i += 2)
        sv.set(i);
    EXPECT_EQ(sv.count(), 50u);
    EXPECT_EQ(sv.popLeadingRun(), 1u);
    EXPECT_GT(arena.stats().liveBytes, 0u);
}

TEST(NodeSetAlgebra, AnyBesides)
{
    NodeSet s(64);
    EXPECT_FALSE(s.anyBesides(3));
    s.set(3);
    // Only the caller itself: no *remote* sharer.
    EXPECT_FALSE(s.anyBesides(3));
    s.set(40);
    EXPECT_TRUE(s.anyBesides(3));
    EXPECT_TRUE(s.anyBesides(40));
    s.clear(40);
    EXPECT_FALSE(s.anyBesides(3));
    // A sharer that is not the caller counts even when alone.
    EXPECT_TRUE(s.anyBesides(7));
}

TEST(NodeSetAlgebra, AnyBesidesMatchesCountDefinition)
{
    Rng rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        NodeSet s(130);
        const int pop = static_cast<int>(rng.below(6));
        for (int i = 0; i < pop; ++i)
            s.set(static_cast<NodeId>(rng.below(130)));
        for (NodeId self = 0; self < 130; ++self) {
            const bool expect =
                s.count() > (s.test(self) ? 1u : 0u);
            ASSERT_EQ(s.anyBesides(self), expect)
                << "trial " << trial << " self " << self;
        }
    }
}

TEST(NodeSetAlgebra, Intersects)
{
    NodeSet a(128), b(128);
    EXPECT_FALSE(a.intersects(b));
    a.set(5);
    a.set(127);
    b.set(64);
    EXPECT_FALSE(a.intersects(b));
    b.set(127);
    EXPECT_TRUE(a.intersects(b));
    EXPECT_TRUE(b.intersects(a));
}

} // namespace
} // namespace tcc
