/**
 * @file
 * Tests for the workload registry: name catalog, parameter parsing
 * and overrides, bundle round-trips, equivalence with the legacy
 * appProfile()+setupApp() construction path, and attaching a
 * data-structure workload to the bus baseline.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "busbaseline/bus_tcc.hh"
#include "core/system.hh"
#include "workload/registry.hh"
#include "workload/synthetic_app.hh"

namespace tcc {
namespace {

TEST(Registry, CatalogHasAllWorkloads)
{
    const auto names = workloadNames();
    // Eleven Table-3 apps plus the five data-structure workloads.
    EXPECT_EQ(names.size(), 16u);
    for (const char *name :
         {"barnes", "cluster_ga", "equake", "radix", "specjbb",
          "svm_classify", "swim", "tomcatv", "volrend",
          "water_nsquared", "water_spatial", "ds_map", "ds_set",
          "ds_queue", "ds_bank", "ds_flash"}) {
        EXPECT_TRUE(isWorkload(name)) << name;
        EXPECT_NE(std::find(names.begin(), names.end(), name),
                  names.end())
            << name;
    }
    EXPECT_FALSE(isWorkload("no_such_workload"));
    EXPECT_FALSE(isWorkload(""));
}

TEST(Registry, CatalogMatchesAppProfiles)
{
    // Every legacy profile is reachable by name through the registry,
    // under the "table3" kind.
    std::size_t table3 = 0;
    for (const auto &info : workloadInfos())
        if (info.kind == "table3") {
            EXPECT_NO_FATAL_FAILURE(appProfile(info.name));
            ++table3;
        }
    EXPECT_EQ(table3, appProfiles().size());
}

TEST(Registry, ParamsParse)
{
    const WorkloadParams p =
        WorkloadParams::parse("theta=0.99,mix=write_heavy");
    ASSERT_EQ(p.overrides.size(), 2u);
    EXPECT_EQ(p.overrides[0].first, "theta");
    EXPECT_EQ(p.overrides[0].second, "0.99");
    EXPECT_EQ(p.overrides[1].first, "mix");
    EXPECT_EQ(p.overrides[1].second, "write_heavy");
    EXPECT_TRUE(WorkloadParams::parse("").overrides.empty());
}

TEST(RegistryDeathTest, UnknownNameAndKeyAreFatal)
{
    EXPECT_DEATH(makeWorkload("no_such_workload", {}, 1, 4),
                 "unknown workload");
    WorkloadParams bad;
    bad.set("definitely_not_a_knob", "1");
    EXPECT_DEATH(makeWorkload("ds_map", bad, 1, 4),
                 "unknown override key");
}

TEST(Registry, BundleRoundTripAllNames)
{
    WorkloadParams clamp;
    clamp.set("max_txns_per_phase", "16");
    for (const auto &name : workloadNames()) {
        const WorkloadBundle b = makeWorkload(name, clamp, 1, 4);
        EXPECT_EQ(b.name, name);
        EXPECT_EQ(b.sources.size(), 4u) << name;
        EXPECT_FALSE(b.footprint.regions.empty()) << name;
        EXPECT_GT(b.footprint.expectedTxns, 0u) << name;
        EXPECT_GT(b.footprint.dataWords, 0u) << name;
    }
}

TEST(Registry, OverridesReachTheWorkload)
{
    WorkloadParams wl;
    wl.set("keys", "64").set("txns_per_phase", "32");
    const WorkloadBundle b = makeWorkload("ds_map", wl, 1, 4);
    ASSERT_NE(b.layout(), nullptr);
    EXPECT_EQ(b.layout()->numKeys(), 64u);
    EXPECT_EQ(b.footprint.expectedTxns, 32u);
    // Synthetic apps have no key layout.
    EXPECT_EQ(makeWorkload("radix", {}, 1, 4).layout(), nullptr);
}

TEST(Registry, MatchesLegacySetupAppExactly)
{
    // The registry path must reproduce the legacy construction
    // bit-for-bit: same regions in the same bind order, same
    // per-processor sources, so the run is identical.
    constexpr std::uint32_t procs = 8;
    constexpr std::uint64_t seed = 1;
    AppProfile prof = appProfile("radix");
    prof.phases = 1;
    prof.txnsPerPhase = 64;

    SystemConfig cfg;
    cfg.numProcs = procs;
    System legacy(cfg);
    const auto sources = setupApp(legacy, prof, seed);
    const RunResult a = legacy.run();

    System fresh(cfg);
    WorkloadParams wl;
    wl.set("phases", "1").set("txns_per_phase", "64");
    const WorkloadBundle b = makeWorkload("radix", wl, seed, procs);
    b.attach(fresh);
    const RunResult r = fresh.run();

    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.cycles, a.cycles);
    EXPECT_EQ(r.committedTxns, a.committedTxns);
    EXPECT_EQ(r.violations, a.violations);
    EXPECT_EQ(fresh.memory().fingerprint(),
              legacy.memory().fingerprint());
}

TEST(Registry, DataStructOnBusBaseline)
{
    // The bundle attaches to the bus baseline unchanged (no page
    // homing) and the bank invariant holds there too.
    BusConfig cfg;
    cfg.numProcs = 4;
    BusTcc bus(cfg);
    WorkloadParams wl;
    wl.set("max_txns_per_phase", "64");
    const WorkloadBundle b = makeWorkload("ds_bank", wl, 3, 4);
    b.attach(bus);

    std::uint64_t expected = 0;
    for (const auto &[addr, value] : b.initialWords)
        if (b.keyOf(addr) >= 0)
            expected += value;

    const RunResult res = bus.run();
    EXPECT_TRUE(res.completed);
    EXPECT_TRUE(res.quiesced);
    EXPECT_GT(res.committedTxns, 0u);
    EXPECT_GT(b.committedOps(), 0u);

    std::uint64_t actual = 0;
    for (const auto &[addr, value] : b.initialWords)
        if (b.keyOf(addr) >= 0)
            actual += bus.memory().read(addr);
    EXPECT_EQ(actual, expected);
}

TEST(Registry, SameInputsSameBundle)
{
    WorkloadParams wl;
    wl.set("max_txns_per_phase", "16");
    const WorkloadBundle a = makeWorkload("ds_set", wl, 5, 4);
    const WorkloadBundle b = makeWorkload("ds_set", wl, 5, 4);
    ASSERT_EQ(a.initialWords.size(), b.initialWords.size());
    for (std::size_t i = 0; i < a.initialWords.size(); ++i)
        EXPECT_EQ(a.initialWords[i], b.initialWords[i]);
    ASSERT_EQ(a.sources.size(), b.sources.size());
    for (std::size_t p = 0; p < a.sources.size(); ++p) {
        auto ta = a.sources[p]->nextTransaction();
        auto tb = b.sources[p]->nextTransaction();
        ASSERT_EQ(ta.has_value(), tb.has_value());
        if (!ta)
            continue;
        ASSERT_EQ(ta->ops.size(), tb->ops.size());
        for (std::size_t k = 0; k < ta->ops.size(); ++k)
            EXPECT_EQ(ta->ops[k].addr, tb->ops[k].addr);
    }
}

} // namespace
} // namespace tcc
