/**
 * @file
 * SystemConfig::validate() tests: every nonsense combination is
 * rejected with a descriptive error before a System is built, and
 * every supported configuration - including ragged mesh grids, which
 * the router handles - passes.
 */

#include <gtest/gtest.h>

#include "core/system.hh"

namespace tcc {
namespace {

TEST(ConfigValidate, DefaultsAreValid)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.validate(), "");
}

TEST(ConfigValidate, ZeroProcsRejected)
{
    SystemConfig cfg;
    cfg.numProcs = 0;
    EXPECT_NE(cfg.validate(), "");
}

TEST(ConfigValidate, MeshNeedsLinkBandwidth)
{
    SystemConfig cfg;
    cfg.network.mesh.linkBytesPerCycle = 0;
    EXPECT_NE(cfg.validate(), "");
    cfg.network.model = NetworkConfig::Model::Ideal;
    EXPECT_EQ(cfg.validate(), "")
        << "ideal network should not care about mesh knobs";
}

TEST(ConfigValidate, RaggedMeshAllowedForPlainRuns)
{
    // The mesh routes around unpopulated grid slots; in-tree protocol
    // tests use 3-processor meshes.
    SystemConfig cfg;
    cfg.numProcs = 3;
    EXPECT_EQ(cfg.validate(), "");
}

TEST(ConfigValidate, ChaosOverRaggedMeshRejected)
{
    SystemConfig cfg;
    cfg.numProcs = 6;
    cfg.network.model = NetworkConfig::Model::Chaos;
    cfg.network.chaos.overIdeal = false;
    EXPECT_NE(cfg.validate(), "");
    cfg.numProcs = 8;
    EXPECT_EQ(cfg.validate(), "");
    cfg.numProcs = 6;
    cfg.network.chaos.overIdeal = true; // documented escape hatch
    EXPECT_EQ(cfg.validate(), "");
}

TEST(ConfigValidate, ChaosOverZeroLatencyIdealRejected)
{
    SystemConfig cfg;
    cfg.network.model = NetworkConfig::Model::Chaos;
    cfg.network.chaos.overIdeal = true;
    cfg.network.idealLatency = 0;
    EXPECT_NE(cfg.validate(), "");
    cfg.network.idealLatency = 1;
    EXPECT_EQ(cfg.validate(), "");
    // A plain ideal network may still be zero-latency.
    cfg.network.model = NetworkConfig::Model::Ideal;
    cfg.network.idealLatency = 0;
    EXPECT_EQ(cfg.validate(), "");
}

TEST(ConfigValidate, ChaosProbabilitiesBounded)
{
    SystemConfig cfg;
    cfg.network.model = NetworkConfig::Model::Chaos;
    cfg.network.chaos.reorderProb = 1.5;
    EXPECT_NE(cfg.validate(), "");
    cfg.network.chaos.reorderProb = 0.5;
    cfg.network.chaos.duplicateProb = -0.1;
    EXPECT_NE(cfg.validate(), "");
}

TEST(ConfigValidate, ReorderNeedsWindow)
{
    SystemConfig cfg;
    cfg.network.model = NetworkConfig::Model::Chaos;
    cfg.network.chaos.reorderProb = 0.2;
    cfg.network.chaos.reorderWindow = 0;
    EXPECT_NE(cfg.validate(), "");
    cfg.network.chaos.reorderWindow = 16;
    EXPECT_EQ(cfg.validate(), "");
}

TEST(ConfigValidate, DuplicationNeedsLag)
{
    SystemConfig cfg;
    cfg.network.model = NetworkConfig::Model::Chaos;
    cfg.network.chaos.duplicateProb = 0.2;
    cfg.network.chaos.duplicateLag = 0;
    EXPECT_NE(cfg.validate(), "");
    cfg.network.chaos.duplicateLag = 4;
    EXPECT_EQ(cfg.validate(), "");
}

TEST(ConfigValidate, ProcCountCappedAt4096)
{
    // The wide NodeSet scales arbitrarily, but the cap keeps an
    // accidental numProcs typo from allocating a city block of
    // directories. 4096 itself is allowed (it is a power of two).
    SystemConfig cfg;
    cfg.numProcs = 4096;
    EXPECT_EQ(cfg.validate(), "");
    cfg.numProcs = 8192;
    EXPECT_NE(cfg.validate().find("4096"), std::string::npos);
}

TEST(ConfigValidate, TreeMulticastNeedsPlainMesh)
{
    SystemConfig cfg;
    cfg.network.multicast.topology = MulticastConfig::Topology::Tree;
    EXPECT_EQ(cfg.validate(), "");
    cfg.network.model = NetworkConfig::Model::Ideal;
    EXPECT_NE(cfg.validate(), "");
    cfg.network.model = NetworkConfig::Model::Chaos;
    EXPECT_NE(cfg.validate(), "");
    cfg.network.model = NetworkConfig::Model::Mesh;
    cfg.network.multicast.topology = MulticastConfig::Topology::Flat;
    EXPECT_EQ(cfg.validate(), ""); // flat works everywhere
}

TEST(ConfigValidate, TreeFanoutAtLeastTwo)
{
    SystemConfig cfg;
    cfg.network.multicast.topology = MulticastConfig::Topology::Tree;
    cfg.network.multicast.fanout = 1;
    EXPECT_NE(cfg.validate().find("fanout"), std::string::npos);
    cfg.network.multicast.fanout = 2;
    EXPECT_EQ(cfg.validate(), "");
    // Flat mode never reads the fanout, so a bad value is harmless.
    cfg.network.multicast.topology = MulticastConfig::Topology::Flat;
    cfg.network.multicast.fanout = 0;
    EXPECT_EQ(cfg.validate(), "");
}

TEST(ConfigValidate, ErrorsAreDescriptive)
{
    SystemConfig cfg;
    cfg.numProcs = 0;
    EXPECT_NE(cfg.validate().find("processor"), std::string::npos);
    cfg.numProcs = 4;
    cfg.network.model = NetworkConfig::Model::Chaos;
    cfg.network.chaos.overIdeal = true;
    cfg.network.idealLatency = 0;
    EXPECT_NE(cfg.validate().find("idealLatency"), std::string::npos);
}

} // namespace
} // namespace tcc
