/**
 * @file
 * FlatMap / FlatSet correctness: a randomized property test against
 * the std::unordered_map / std::unordered_set reference for every
 * operation the simulator uses, plus golden end-to-end runs proving
 * the container swap left the protocol's observable behavior
 * bit-identical to the seed implementation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/flat_map.hh"
#include "core/system.hh"
#include "sim/random.hh"
#include "workload/scripted_source.hh"
#include "workload/synthetic_app.hh"

namespace tcc {
namespace {

// ---------------------------------------------------------------------
// Property tests vs the standard containers.
// ---------------------------------------------------------------------

class FlatMapProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FlatMapProperty, MatchesUnorderedMap)
{
    Rng rng(GetParam());
    FlatMap<std::uint64_t, std::uint64_t> fm;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;

    // Key space small enough that erases and overwrites actually hit,
    // large enough to force several rehashes.
    const std::uint64_t keySpace = 512;
    for (int step = 0; step < 20000; ++step) {
        const std::uint64_t key = rng.below(keySpace) * 4;
        const double roll = rng.uniform();
        if (roll < 0.45) {
            const std::uint64_t val = rng.next();
            fm[key] = val;
            ref[key] = val;
        } else if (roll < 0.6) {
            const std::uint64_t val = rng.next();
            auto [it, inserted] = fm.emplace(key, val);
            auto [rit, rinserted] = ref.emplace(key, val);
            ASSERT_EQ(inserted, rinserted) << "key " << key;
            ASSERT_EQ(it->second, rit->second);
        } else if (roll < 0.75) {
            ASSERT_EQ(fm.erase(key), ref.erase(key)) << "key " << key;
        } else if (roll < 0.9) {
            auto it = fm.find(key);
            auto rit = ref.find(key);
            ASSERT_EQ(it != fm.end(), rit != ref.end())
                << "key " << key;
            if (it != fm.end()) {
                ASSERT_EQ(it->second, rit->second);
            }
            ASSERT_EQ(fm.contains(key), ref.count(key) == 1);
        } else if (roll < 0.97) {
            // += through operator[], the directory/write-buffer idiom.
            fm[key] += 3;
            ref[key] += 3;
        } else {
            fm.clear();
            ref.clear();
        }
        ASSERT_EQ(fm.size(), ref.size());
    }

    // Full-content comparison in both directions.
    std::unordered_map<std::uint64_t, std::uint64_t> seen;
    for (const auto &[k, v] : fm)
        ASSERT_TRUE(seen.emplace(k, v).second)
            << "duplicate key in iteration: " << k;
    ASSERT_EQ(seen.size(), ref.size());
    for (const auto &[k, v] : ref) {
        auto it = seen.find(k);
        ASSERT_NE(it, seen.end()) << "missing key " << k;
        ASSERT_EQ(it->second, v) << "wrong value for key " << k;
    }
}

TEST_P(FlatMapProperty, SetMatchesUnorderedSet)
{
    Rng rng(GetParam() + 977);
    FlatSet<std::uint32_t> fs;
    std::unordered_set<std::uint32_t> ref;

    for (int step = 0; step < 20000; ++step) {
        const std::uint32_t key =
            static_cast<std::uint32_t>(rng.below(256));
        const double roll = rng.uniform();
        if (roll < 0.5) {
            ASSERT_EQ(fs.insert(key), ref.insert(key).second);
        } else if (roll < 0.75) {
            ASSERT_EQ(fs.erase(key), ref.erase(key));
        } else if (roll < 0.95) {
            ASSERT_EQ(fs.contains(key), ref.count(key) == 1);
        } else {
            fs.clear();
            ref.clear();
        }
        ASSERT_EQ(fs.size(), ref.size());
    }
    std::size_t visited = 0;
    fs.forEach([&](std::uint32_t k) {
        ++visited;
        EXPECT_EQ(ref.count(k), 1u) << "stray key " << k;
    });
    EXPECT_EQ(visited, ref.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatMapProperty,
                         ::testing::Values(1, 2, 3, 42));

TEST(FlatMap, EraseDuringIteration)
{
    FlatMap<std::uint64_t, int> fm;
    for (std::uint64_t k = 0; k < 100; ++k)
        fm[k] = static_cast<int>(k);
    // Erase every even key through the iterator-returning erase.
    for (auto it = fm.begin(); it != fm.end();) {
        if (it->first % 2 == 0)
            it = fm.erase(it);
        else
            ++it;
    }
    EXPECT_EQ(fm.size(), 50u);
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_EQ(fm.contains(k), k % 2 == 1) << "key " << k;
}

TEST(FlatMap, ReserveAndGrowth)
{
    FlatMap<std::uint64_t, std::uint64_t> fm;
    fm.reserve(1000);
    for (std::uint64_t k = 0; k < 1000; ++k)
        fm[k * 64] = k;
    EXPECT_EQ(fm.size(), 1000u);
    for (std::uint64_t k = 0; k < 1000; ++k) {
        auto it = fm.find(k * 64);
        ASSERT_NE(it, fm.end());
        EXPECT_EQ(it->second, k);
    }
}

// ---------------------------------------------------------------------
// Golden runs: the container swap must not move a single simulated
// cycle, message, or byte relative to the seed (std::unordered_map)
// implementation. The constants below were captured from the seed
// build immediately before the swap.
// ---------------------------------------------------------------------

struct GoldenFingerprint {
    std::uint64_t cycles, events, commits, violations;
    std::uint64_t messages, bytes, hops, dirEntries, footprint;
};

GoldenFingerprint
fingerprint(System &sys, const System::RunResult &res)
{
    GoldenFingerprint fp{};
    fp.cycles = res.cycles;
    fp.events = res.events;
    for (NodeId n = 0; n < sys.numProcs(); ++n) {
        fp.commits += sys.proc(n).stats().txnsCommitted;
        fp.violations += sys.proc(n).stats().violations;
        fp.dirEntries += sys.directory(n).numEntries();
    }
    const auto &ns = sys.network().stats();
    fp.messages = ns.messages;
    fp.bytes = ns.totalBytes;
    fp.hops = ns.totalHops;
    fp.footprint = sys.memory().footprint();
    return fp;
}

void
expectFingerprint(const GoldenFingerprint &got,
                  const GoldenFingerprint &want)
{
    EXPECT_EQ(got.cycles, want.cycles);
    EXPECT_EQ(got.events, want.events);
    EXPECT_EQ(got.commits, want.commits);
    EXPECT_EQ(got.violations, want.violations);
    EXPECT_EQ(got.messages, want.messages);
    EXPECT_EQ(got.bytes, want.bytes);
    EXPECT_EQ(got.hops, want.hops);
    EXPECT_EQ(got.dirEntries, want.dirEntries);
    EXPECT_EQ(got.footprint, want.footprint);
}

TEST(FlatMapGolden, ScriptedConflictRunUnchanged)
{
    SystemConfig cfg;
    cfg.numProcs = 4;
    cfg.check.serial = true;
    cfg.check.invariants = true;
    System sys(cfg);
    std::vector<std::unique_ptr<ScriptedSource>> srcs;
    constexpr Addr kShared = 0x9000;
    for (std::uint32_t p = 0; p < cfg.numProcs; ++p) {
        auto src = std::make_unique<ScriptedSource>();
        const Addr priv = 0x100000 + static_cast<Addr>(p) * 0x10000;
        for (int t = 0; t < 6; ++t) {
            src->add({TxOp::compute(20 + 7 * p), TxOp::load(kShared),
                      TxOp::storeAdd(kShared, 1),
                      TxOp::store(priv + 8 * t, p * 100 + t)});
        }
        const Addr other =
            0x100000 +
            static_cast<Addr>((p + 1) % cfg.numProcs) * 0x10000;
        src->add({TxOp::compute(10), TxOp::load(other),
                  TxOp::load(other + 8),
                  TxOp::store(priv + 0x800, p)},
                 true);
        srcs.push_back(std::move(src));
    }
    for (NodeId p = 0; p < cfg.numProcs; ++p)
        sys.setSource(p, srcs[p].get());
    const RunResult res = sys.run();

    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
    EXPECT_TRUE(res.quiesced);
    EXPECT_EQ(sys.memory().read(kShared), 24u);
    expectFingerprint(fingerprint(sys, res),
                      GoldenFingerprint{5047, 2005, 28, 25, 1011,
                                        13944, 750, 13, 29});
}

TEST(FlatMapGolden, SyntheticAppRunUnchanged)
{
    SystemConfig cfg;
    cfg.numProcs = 8;
    System sys(cfg);
    AppProfile prof = appProfile("water_spatial");
    prof.txnsPerPhase = 64;
    prof.phases = 2;
    auto sources = setupApp(sys, prof, 7);
    auto res = sys.run();

    ASSERT_TRUE(res.completed);
    expectFingerprint(fingerprint(sys, res),
                      GoldenFingerprint{185080, 50811, 128, 0, 10439,
                                        257016, 6670, 3277, 4265});
}

TEST(FlatMapGolden, SoloModeRunUnchanged)
{
    // Tiny caches force overflow virtualization; this run exercises
    // the canonical ascending-directory drain ordering in solo mode.
    SystemConfig cfg;
    cfg.numProcs = 4;
    cfg.check.serial = true;
    cfg.check.invariants = true;
    cfg.cache.l1Bytes = 128;
    cfg.cache.l1Assoc = 2;
    cfg.cache.l2Bytes = 1024;
    cfg.cache.l2Assoc = 4;
    System sys(cfg);
    std::vector<std::unique_ptr<ScriptedSource>> srcs;
    for (NodeId p = 0; p < 4; ++p) {
        auto src = std::make_unique<ScriptedSource>();
        for (int t = 0; t < 4; ++t) {
            std::vector<TxOp> ops;
            for (int k = 0; k < 20; ++k) {
                const Addr a =
                    0x90000000ull + 0x20 * ((t * 20 + k * 7) % 64) +
                    4 * p;
                ops.push_back(TxOp::load(a));
                ops.push_back(TxOp::storeAdd(a, 1));
            }
            src->add(std::move(ops));
        }
        srcs.push_back(std::move(src));
    }
    for (NodeId p = 0; p < 4; ++p)
        sys.setSource(p, srcs[p].get());
    const RunResult res = sys.run(2'000'000'000ull);

    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
    expectFingerprint(fingerprint(sys, res),
                      GoldenFingerprint{17896, 4901, 16, 0, 2510,
                                        51056, 2618, 56, 224});
}

} // namespace
} // namespace tcc
