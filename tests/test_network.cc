/**
 * @file
 * Unit tests for the interconnect models: delivery, routing distance,
 * serialization, contention, traffic accounting, and reorder jitter.
 */

#include <gtest/gtest.h>

#include <vector>

#include "noc/network.hh"
#include "sim/event_queue.hh"

namespace tcc {
namespace {

Message
mkMsg(NodeId src, NodeId dst, MsgType t = MsgType::Skip,
      std::uint32_t bytes = 16)
{
    Message m;
    m.type = t;
    m.src = src;
    m.dst = dst;
    m.bytes = bytes;
    return m;
}

TEST(IdealNetwork, DeliversWithFixedLatency)
{
    EventQueue eq;
    IdealNetwork net(eq, 4, 7);
    Tick arrival = 0;
    net.connect(2, [&](const Message &) { arrival = eq.now(); });
    net.send(mkMsg(0, 2));
    eq.run();
    EXPECT_EQ(arrival, 7u);
}

TEST(IdealNetwork, NeverDeliversInline)
{
    EventQueue eq;
    IdealNetwork net(eq, 2, 0);
    bool delivered = false;
    net.connect(1, [&](const Message &) { delivered = true; });
    net.send(mkMsg(0, 1));
    EXPECT_FALSE(delivered); // asynchronous even at zero latency
    eq.run();
    EXPECT_TRUE(delivered);
}

TEST(MeshNetwork, GridIsSquareish)
{
    EventQueue eq;
    MeshNetwork net16(eq, 16);
    EXPECT_EQ(net16.cols(), 4u);
    EXPECT_EQ(net16.rows(), 4u);
    MeshNetwork net8(eq, 8);
    EXPECT_EQ(net8.cols(), 3u);
}

TEST(MeshNetwork, HopCountIsManhattan)
{
    EventQueue eq;
    MeshNetwork net(eq, 16); // 4x4
    EXPECT_EQ(net.hopCount(0, 0), 0u);
    EXPECT_EQ(net.hopCount(0, 3), 3u);
    EXPECT_EQ(net.hopCount(0, 15), 6u);
    EXPECT_EQ(net.hopCount(5, 6), 1u);
}

TEST(MeshNetwork, LatencyScalesWithHops)
{
    EventQueue eq;
    MeshConfig cfg;
    cfg.hopLatency = 3;
    cfg.linkBytesPerCycle = 8;
    cfg.routerDelay = 1;
    // Use separate meshes so the two sends do not contend for the
    // shared 0->east link.
    MeshNetwork near_net(eq, 16, cfg);
    MeshNetwork far_net(eq, 16, cfg);

    Tick t_near = 0, t_far = 0;
    near_net.connect(1, [&](const Message &) { t_near = eq.now(); });
    far_net.connect(15, [&](const Message &) { t_far = eq.now(); });
    near_net.send(mkMsg(0, 1, MsgType::Skip, 16));
    far_net.send(mkMsg(0, 15, MsgType::Skip, 16));
    eq.run();
    // 1 hop: router + ser(2) + hop(3) + router = 7.
    EXPECT_EQ(t_near, 7u);
    // 6 hops of the same per-hop cost.
    EXPECT_EQ(t_far, 1u + 6 * (2 + 3 + 1));
}

TEST(MeshNetwork, LocalLoopbackIsOneCycle)
{
    EventQueue eq;
    MeshNetwork net(eq, 4);
    Tick arrival = 0;
    net.connect(0, [&](const Message &) { arrival = eq.now(); });
    net.send(mkMsg(0, 0));
    eq.run();
    EXPECT_EQ(arrival, 1u);
}

TEST(MeshNetwork, ContentionSerializesOnSharedLink)
{
    EventQueue eq;
    MeshConfig cfg;
    cfg.hopLatency = 1;
    cfg.linkBytesPerCycle = 1; // 16-byte message = 16 cycles per link
    cfg.routerDelay = 0;
    MeshNetwork net(eq, 4, cfg); // 2x2
    std::vector<Tick> arrivals;
    net.connect(1, [&](const Message &) {
        arrivals.push_back(eq.now());
    });
    // Two messages fighting for the same 0->1 link.
    net.send(mkMsg(0, 1));
    net.send(mkMsg(0, 1));
    eq.run();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[1] - arrivals[0], 16u); // one serialization gap
}

TEST(MeshNetwork, HigherBandwidthShrinksSerialization)
{
    EventQueue eq;
    MeshConfig wide;
    wide.hopLatency = 1;
    wide.linkBytesPerCycle = 16;
    wide.routerDelay = 0;
    MeshNetwork net(eq, 4, wide);
    std::vector<Tick> arrivals;
    net.connect(1, [&](const Message &) {
        arrivals.push_back(eq.now());
    });
    net.send(mkMsg(0, 1));
    net.send(mkMsg(0, 1));
    eq.run();
    EXPECT_EQ(arrivals[1] - arrivals[0], 1u);
}

TEST(MeshNetwork, TrafficAccounting)
{
    EventQueue eq;
    MeshNetwork net(eq, 4);
    net.connect(1, [](const Message &) {});
    net.send(mkMsg(0, 1, MsgType::LoadReq, 24));
    net.send(mkMsg(0, 1, MsgType::WriteBack, 48));
    eq.run();
    const auto &s = net.stats();
    EXPECT_EQ(s.messages, 2u);
    EXPECT_EQ(s.totalBytes, 72u);
    EXPECT_EQ(s.classBytes[(int)TrafficClass::Miss], 24u);
    EXPECT_EQ(s.classBytes[(int)TrafficClass::WriteBack], 48u);
    EXPECT_EQ(s.nodeBytes[1], 72u);
    net.resetStats();
    EXPECT_EQ(net.stats().totalBytes, 0u);
}

TEST(MeshNetwork, SameRouteIsFifoWithoutJitter)
{
    EventQueue eq;
    MeshNetwork net(eq, 16);
    std::vector<int> order;
    net.connect(15, [&](const Message &m) {
        order.push_back(static_cast<int>(m.tid));
    });
    for (int i = 0; i < 10; ++i) {
        auto m = mkMsg(0, 15);
        m.tid = i;
        net.send(m);
    }
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(MeshNetwork, JitterReordersSometimes)
{
    EventQueue eq;
    MeshConfig cfg;
    cfg.reorderJitter = 50;
    cfg.seed = 99;
    MeshNetwork net(eq, 16, cfg);
    std::vector<int> order;
    net.connect(15, [&](const Message &m) {
        order.push_back(static_cast<int>(m.tid));
    });
    for (int i = 0; i < 50; ++i) {
        auto m = mkMsg(0, 15);
        m.tid = i;
        net.send(m);
    }
    eq.run();
    bool reordered = false;
    for (std::size_t i = 1; i < order.size(); ++i)
        if (order[i] < order[i - 1])
            reordered = true;
    EXPECT_TRUE(reordered);
}

} // namespace
} // namespace tcc
