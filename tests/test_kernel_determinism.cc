/**
 * @file
 * Kernel-swap determinism guarantees: a full System run is a pure
 * function of its configuration and workload. Two identical runs must
 * produce bit-identical cycle counts, commit/violation counts, and
 * network statistics. This pins the simulation kernel's event
 * ordering: any change to the queue (timing wheel, bucket migration,
 * message pooling) that perturbs same-tick FIFO order shows up here as
 * a diff between runs or against the protocol invariants.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/system.hh"
#include "workload/scripted_source.hh"
#include "workload/synthetic_app.hh"

namespace tcc {
namespace {

/** Everything observable about one completed run, for bit-comparison. */
struct RunFingerprint {
    Tick cycles = 0;
    std::uint64_t events = 0;
    std::uint64_t commits = 0;
    std::uint64_t violations = 0;
    std::uint64_t messages = 0;
    std::uint64_t totalBytes = 0;
    std::uint64_t totalHops = 0;
    std::vector<std::uint64_t> classBytes;
    std::vector<std::uint64_t> nodeBytes;
    std::vector<std::uint64_t> perProcCommits;
    std::vector<Tick> perProcDone;
    Breakdown breakdown;

    bool
    operator==(const RunFingerprint &o) const
    {
        return cycles == o.cycles && events == o.events &&
               commits == o.commits && violations == o.violations &&
               messages == o.messages && totalBytes == o.totalBytes &&
               totalHops == o.totalHops && classBytes == o.classBytes &&
               nodeBytes == o.nodeBytes &&
               perProcCommits == o.perProcCommits &&
               perProcDone == o.perProcDone &&
               breakdown.useful == o.breakdown.useful &&
               breakdown.miss == o.breakdown.miss &&
               breakdown.commit == o.breakdown.commit &&
               breakdown.idle == o.breakdown.idle &&
               breakdown.violation == o.breakdown.violation;
    }
};

RunFingerprint
fingerprint(System &sys, const System::RunResult &res)
{
    RunFingerprint fp;
    fp.cycles = res.cycles;
    fp.events = res.events;
    const NetworkStats &ns = sys.network().stats();
    fp.messages = ns.messages;
    fp.totalBytes = ns.totalBytes;
    fp.totalHops = ns.totalHops;
    for (int c = 0; c < static_cast<int>(TrafficClass::NumClasses); ++c)
        fp.classBytes.push_back(ns.classBytes[c]);
    fp.nodeBytes = ns.nodeBytes;
    for (NodeId n = 0; n < sys.numProcs(); ++n) {
        const auto &s = sys.proc(n).stats();
        fp.commits += s.txnsCommitted;
        fp.violations += s.violations;
        fp.perProcCommits.push_back(s.txnsCommitted);
        fp.perProcDone.push_back(sys.proc(n).doneTick());
    }
    fp.breakdown = res.breakdown;
    return fp;
}

/**
 * A 4-proc scripted workload with deliberate cross-processor conflicts
 * (all procs read-modify-write a shared counter) plus disjoint work
 * and a barrier, so the run exercises violations, commit ordering,
 * invalidations, and idle accounting.
 */
std::vector<std::unique_ptr<ScriptedSource>>
conflictWorkload(std::uint32_t procs)
{
    std::vector<std::unique_ptr<ScriptedSource>> srcs;
    constexpr Addr kShared = 0x9000;
    for (std::uint32_t p = 0; p < procs; ++p) {
        auto src = std::make_unique<ScriptedSource>();
        const Addr priv = 0x100000 + static_cast<Addr>(p) * 0x10000;
        for (int t = 0; t < 6; ++t) {
            src->add({TxOp::compute(20 + 7 * p),
                      TxOp::load(kShared),
                      TxOp::storeAdd(kShared, 1),
                      TxOp::store(priv + 8 * t, p * 100 + t)});
        }
        // Barrier, then a read-heavy transaction over others' data.
        const Addr other =
            0x100000 + static_cast<Addr>((p + 1) % procs) * 0x10000;
        src->add({TxOp::compute(10), TxOp::load(other),
                  TxOp::load(other + 8), TxOp::store(priv + 0x800, p)},
                 /*barrier_before=*/true);
        srcs.push_back(std::move(src));
    }
    return srcs;
}

RunFingerprint
runScripted(bool jitter)
{
    SystemConfig cfg;
    cfg.numProcs = 4;
    cfg.check.serial = true;
    cfg.check.invariants = true;
    if (jitter) {
        cfg.network.mesh.reorderJitter = 7; // unordered network
        cfg.network.mesh.seed = 99;
    }
    System sys(cfg);
    auto srcs = conflictWorkload(cfg.numProcs);
    for (NodeId p = 0; p < cfg.numProcs; ++p)
        sys.setSource(p, srcs[p].get());
    const RunResult res = sys.run();
    EXPECT_TRUE(res.completed);
    EXPECT_TRUE(res.quiesced);
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
    // The shared counter saw every committed increment exactly once.
    EXPECT_EQ(sys.memory().read(0x9000),
              static_cast<std::uint64_t>(cfg.numProcs) * 6);
    return fingerprint(sys, res);
}

TEST(KernelDeterminism, GoldenScriptedRunsAreBitIdentical)
{
    const RunFingerprint a = runScripted(false);
    const RunFingerprint b = runScripted(false);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.commits, b.commits);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.totalBytes, b.totalBytes);
    EXPECT_TRUE(a == b);
    EXPECT_GT(a.violations + a.commits, 0u);
}

TEST(KernelDeterminism, GoldenRunsWithReorderJitterAreBitIdentical)
{
    const RunFingerprint a = runScripted(true);
    const RunFingerprint b = runScripted(true);
    EXPECT_TRUE(a == b);
}

// Same property through the synthetic-app path (seeded Rng workload,
// 8 procs, mesh contention): the heavier event population exercises
// wheel wraparound and overflow migration.
TEST(KernelDeterminism, SyntheticAppRunsAreBitIdentical)
{
    auto once = [] {
        SystemConfig cfg;
        cfg.numProcs = 8;
        System sys(cfg);
        AppProfile prof = appProfile("water_spatial");
        prof.txnsPerPhase = 64;
        prof.phases = 2;
        auto sources = setupApp(sys, prof, /*seed=*/7);
        auto res = sys.run();
        EXPECT_TRUE(res.completed);
        return fingerprint(sys, res);
    };
    const RunFingerprint a = once();
    const RunFingerprint b = once();
    EXPECT_TRUE(a == b);
    EXPECT_GT(a.commits, 0u);
}

} // namespace
} // namespace tcc
