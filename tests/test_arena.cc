/**
 * @file
 * Unit tests for the per-System arena (common/arena.hh): alignment
 * guarantees, chunk growth, reset-and-reuse, the stats surface, and
 * the ArenaAllocator adapter (including its nullptr fallback and the
 * propagation traits the container conversions rely on).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/arena.hh"
#include "common/flat_map.hh"

namespace tcc {
namespace {

bool
alignedTo(const void *p, std::size_t align)
{
    return (reinterpret_cast<std::uintptr_t>(p) & (align - 1)) == 0;
}

TEST(Arena, RespectsRequestedAlignment)
{
    Arena a;
    for (std::size_t align : {1u, 2u, 8u, 16u, 64u, 128u}) {
        // Offset the cursor by an odd amount first so the alignment
        // actually has to do work.
        a.allocate(3, 1);
        void *p = a.allocate(32, align);
        EXPECT_TRUE(alignedTo(p, align)) << "align=" << align;
    }
}

TEST(Arena, AllocationsDoNotOverlap)
{
    Arena a;
    char *p = static_cast<char *>(a.allocate(100, 8));
    char *q = static_cast<char *>(a.allocate(100, 8));
    std::memset(p, 0xaa, 100);
    std::memset(q, 0x55, 100);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(static_cast<unsigned char>(p[i]), 0xaa);
}

TEST(Arena, GrowsByAppendingChunks)
{
    Arena a(/*first_chunk_bytes=*/1024);
    EXPECT_EQ(a.stats().chunks, 0u);
    a.allocate(512, 8);
    EXPECT_EQ(a.stats().chunks, 1u);
    // Exceed the first chunk: a second (larger) chunk appears.
    a.allocate(1024, 8);
    const Arena::Stats s = a.stats();
    EXPECT_EQ(s.chunks, 2u);
    EXPECT_GE(s.chunkBytes, 1024u + 1024u);
}

TEST(Arena, OversizedRequestGetsDedicatedChunk)
{
    Arena a(/*first_chunk_bytes=*/1024);
    const std::size_t huge = Arena::kMaxChunkBytes + 4096;
    void *p = a.allocate(huge, 64);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(alignedTo(p, 64));
    // The whole allocation must be writable.
    std::memset(p, 0, huge);
    EXPECT_GE(a.stats().chunkBytes, huge);
}

TEST(Arena, StatsTrackLiveAndPeak)
{
    Arena a;
    EXPECT_EQ(a.stats().liveBytes, 0u);
    a.allocate(100, 1);
    a.allocate(200, 1);
    const Arena::Stats before = a.stats();
    EXPECT_GE(before.liveBytes, 300u);
    EXPECT_GE(before.peakBytes, before.liveBytes);

    a.reset();
    const Arena::Stats after = a.stats();
    EXPECT_EQ(after.liveBytes, 0u);
    // Peak survives reset; chunk memory is retained for reuse.
    EXPECT_EQ(after.peakBytes, before.peakBytes);
    EXPECT_EQ(after.chunks, before.chunks);
}

TEST(Arena, ResetReusesTheSameMemory)
{
    Arena a;
    void *first = a.allocate(64, 64);
    a.reset();
    void *again = a.allocate(64, 64);
    // Monotonic rewind: the first post-reset allocation lands exactly
    // where the first pre-reset allocation did. (Under ASan this also
    // proves reset() unpoisons-on-reallocate cleanly.)
    EXPECT_EQ(first, again);
    std::memset(again, 0x5a, 64);
}

TEST(Arena, ResetReusesRetainedOverflowChunks)
{
    Arena a(/*first_chunk_bytes=*/1024);
    a.allocate(900, 8);
    a.allocate(4096, 8); // forces chunk 2
    const std::size_t chunks_before = a.stats().chunks;
    a.reset();
    a.allocate(900, 8);
    a.allocate(4096, 8); // must fit in the retained chunk 2
    EXPECT_EQ(a.stats().chunks, chunks_before);
}

TEST(ArenaAllocator, NullptrFallsBackToGlobalHeap)
{
    // A default-constructed allocator must behave like std::allocator:
    // this is what keeps default-constructed containers (Stats
    // members, unit-test locals) working.
    std::vector<int, ArenaAllocator<int>> v;
    for (int i = 0; i < 1000; ++i)
        v.push_back(i);
    EXPECT_EQ(v.size(), 1000u);
    EXPECT_EQ(v[999], 999);
}

TEST(ArenaAllocator, VectorDrawsFromArena)
{
    Arena a;
    const std::size_t live0 = a.stats().liveBytes;
    std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&a)};
    v.reserve(1000);
    EXPECT_GE(a.stats().liveBytes, live0 + 1000 * sizeof(int));
}

TEST(ArenaAllocator, EqualityComparesArenaIdentity)
{
    Arena a, b;
    ArenaAllocator<int> pa(&a), pa2(&a), pb(&b), none;
    EXPECT_EQ(pa, pa2);
    EXPECT_NE(pa, pb);
    EXPECT_NE(pa, none);
    // Rebind preserves the arena.
    ArenaAllocator<long> rebound(pa);
    EXPECT_EQ(rebound.arena, &a);
}

TEST(ArenaAllocator, FlatMapOnArenaMatchesDefault)
{
    Arena a;
    FlatMap<std::uint64_t, std::uint64_t> plain;
    FlatMap<std::uint64_t, std::uint64_t> backed(&a);
    for (std::uint64_t k = 0; k < 500; ++k) {
        plain[k * 977] = k;
        backed[k * 977] = k;
    }
    EXPECT_EQ(plain.size(), backed.size());
    for (std::uint64_t k = 0; k < 500; ++k) {
        ASSERT_TRUE(backed.contains(k * 977));
        EXPECT_EQ(backed[k * 977], k);
    }
    EXPECT_GT(a.stats().liveBytes, 0u);
}

} // namespace
} // namespace tcc
