/**
 * @file
 * Unit tests for the fault-injection network decorator: deterministic
 * per (seed, config), delay bounded by jitter + reorderWindow, and
 * duplication restricted to idempotent reply types. A system-level
 * section runs real workloads over every chaos preset with both
 * checkers armed.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "noc/chaos_network.hh"
#include "core/system.hh"
#include "workload/synthetic_app.hh"

namespace tcc {
namespace {

/** One observed delivery at an endpoint. */
struct Delivery {
    Tick tick;
    MsgType type;
    NodeId src;
    std::uint32_t seq;

    bool
    operator==(const Delivery &o) const
    {
        return tick == o.tick && type == o.type && src == o.src &&
               seq == o.seq;
    }
};

/** Chaos over a 1-cycle ideal base with recording endpoints. */
struct Harness {
    EventQueue eq;
    std::unique_ptr<ChaosNetwork> net;
    std::vector<std::vector<Delivery>> inbox;

    explicit Harness(const ChaosConfig &cfg, std::uint32_t nodes = 4,
                     Tick base_latency = 1)
        : inbox(nodes)
    {
        net = std::make_unique<ChaosNetwork>(
            eq, nodes,
            std::make_unique<IdealNetwork>(eq, nodes, base_latency),
            cfg);
        for (NodeId n = 0; n < nodes; ++n)
            net->connect(n, [this, n](const Message &m) {
                inbox[n].push_back(
                    {eq.now(), m.type, m.src, m.seq});
            });
    }

    void
    post(MsgType t, NodeId src, NodeId dst, std::uint32_t seq = 0)
    {
        Message m;
        m.type = t;
        m.src = src;
        m.dst = dst;
        m.seq = seq;
        m.bytes = 8;
        net->send(m);
    }
};

ChaosConfig
noisyConfig(std::uint64_t seed)
{
    ChaosConfig cfg;
    cfg.jitter = 6;
    cfg.reorderProb = 0.5;
    cfg.reorderWindow = 20;
    cfg.duplicateProb = 0.3;
    cfg.duplicateLag = 5;
    cfg.seed = seed;
    return cfg;
}

std::vector<std::vector<Delivery>>
runBurst(const ChaosConfig &cfg)
{
    Harness h(cfg);
    for (std::uint32_t i = 0; i < 40; ++i) {
        h.post(MsgType::LoadReply, i % 4,
               static_cast<NodeId>((i + 1) % 4), i);
        h.post(MsgType::Skip, (i + 2) % 4,
               static_cast<NodeId>((i + 3) % 4), i);
    }
    h.eq.run();
    return h.inbox;
}

TEST(ChaosNetwork, DeterministicPerSeed)
{
    const auto a = runBurst(noisyConfig(7));
    const auto b = runBurst(noisyConfig(7));
    EXPECT_EQ(a, b) << "same (seed, config) must replay identically";
}

TEST(ChaosNetwork, DifferentSeedsPerturbDifferently)
{
    const auto a = runBurst(noisyConfig(7));
    const auto b = runBurst(noisyConfig(8));
    EXPECT_NE(a, b)
        << "distinct seeds should produce distinct fault schedules";
}

TEST(ChaosNetwork, ExtraDelayBoundedByJitterPlusWindow)
{
    ChaosConfig cfg = noisyConfig(11);
    cfg.duplicateProb = 0.0; // duplicates would confuse the census
    constexpr Tick kBase = 1;
    Harness h(cfg, 4, kBase);

    // All messages posted at tick 0: the delivery tick IS the latency.
    for (std::uint32_t i = 0; i < 200; ++i)
        h.post(MsgType::Probe, 0, static_cast<NodeId>(1 + i % 3), i);
    h.eq.run();

    std::size_t seen = 0;
    bool any_late = false;
    for (const auto &box : h.inbox)
        for (const auto &d : box) {
            ++seen;
            EXPECT_GE(d.tick, kBase);
            EXPECT_LE(d.tick,
                      kBase + cfg.jitter + cfg.reorderWindow);
            if (d.tick > kBase + cfg.jitter)
                any_late = true; // a reorder hold actually fired
        }
    EXPECT_EQ(seen, 200u) << "chaos must never drop messages";
    EXPECT_TRUE(any_late);
    EXPECT_GT(h.net->chaosStats().reordersHeld, 0u);
    EXPECT_LE(h.net->chaosStats().maxExtraDelay,
              cfg.jitter + cfg.reorderWindow);
}

TEST(ChaosNetwork, DuplicatesOnlyIdempotentReplies)
{
    ChaosConfig cfg;
    cfg.jitter = 0;
    cfg.reorderProb = 0.0;
    cfg.reorderWindow = 0;
    cfg.duplicateProb = 1.0; // every eligible message duplicates
    cfg.duplicateLag = 5;
    cfg.seed = 3;
    Harness h(cfg);

    h.post(MsgType::LoadReply, 0, 1, 42);
    h.post(MsgType::ProbeReply, 0, 2);
    h.post(MsgType::TidReply, 0, 3); // gap-free TIDs: never duplicated
    h.eq.run();

    EXPECT_EQ(h.inbox[1].size(), 2u)
        << "LoadReply is idempotent and must arrive twice";
    EXPECT_EQ(h.inbox[2].size(), 2u)
        << "ProbeReply is idempotent and must arrive twice";
    EXPECT_EQ(h.inbox[3].size(), 1u)
        << "TidReply duplication would mint two transactions";
    // The copy carries the same sequence tag as the original.
    EXPECT_EQ(h.inbox[1][0].seq, 42u);
    EXPECT_EQ(h.inbox[1][1].seq, 42u);
    EXPECT_EQ(h.net->chaosStats().duplicates, 2u);
}

TEST(ChaosNetwork, DuplicablePredicate)
{
    EXPECT_TRUE(chaosDuplicable(MsgType::LoadReply));
    EXPECT_TRUE(chaosDuplicable(MsgType::ProbeReply));
    EXPECT_FALSE(chaosDuplicable(MsgType::TidReply));
    EXPECT_FALSE(chaosDuplicable(MsgType::Inv));
    EXPECT_FALSE(chaosDuplicable(MsgType::InvAck));
    EXPECT_FALSE(chaosDuplicable(MsgType::Commit));
    EXPECT_FALSE(chaosDuplicable(MsgType::Mark));
    EXPECT_FALSE(chaosDuplicable(MsgType::Skip));
    EXPECT_FALSE(chaosDuplicable(MsgType::WriteBack));
}

TEST(ChaosNetwork, PresetsAllParse)
{
    for (const auto &name : chaosPresetNames()) {
        const ChaosConfig cfg = chaosPreset(name);
        SystemConfig sys_cfg;
        sys_cfg.numProcs = 4;
        sys_cfg.network.model = NetworkConfig::Model::Chaos;
        sys_cfg.network.chaos = cfg;
        EXPECT_EQ(sys_cfg.validate(), "") << "preset " << name;
    }
}

// --- system-level: real workloads survive every preset --------------

RunResult
runChaosApp(const std::string &preset, std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.numProcs = 8;
    cfg.network.model = NetworkConfig::Model::Chaos;
    cfg.network.chaos = chaosPreset(preset);
    cfg.network.chaos.seed = seed;
    cfg.check.serial = true;
    cfg.check.invariants = true;
    System sys(cfg);
    auto sources = setupApp(sys, appProfile("radix"), seed);
    return sys.run(2'000'000'000ull);
}

TEST(ChaosSystem, EveryPresetRunsCleanWithBothCheckers)
{
    for (const auto &preset : chaosPresetNames()) {
        SCOPED_TRACE(preset);
        const RunResult res = runChaosApp(preset, 1234);
        ASSERT_TRUE(res.completed);
        EXPECT_TRUE(res.quiesced);
        EXPECT_TRUE(res.serial.ok) << res.serial.error;
        EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
        EXPECT_GT(res.invariants.checks, 0u)
            << "checker hooks never fired - observer not attached?";
    }
}

TEST(ChaosSystem, RunFingerprintIsAFunctionOfSeed)
{
    const RunResult a = runChaosApp("heavy", 99);
    const RunResult b = runChaosApp("heavy", 99);
    const RunResult c = runChaosApp("heavy", 100);
    ASSERT_TRUE(a.completed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.events, b.events);
    EXPECT_TRUE(a.cycles != c.cycles || a.events != c.events)
        << "different chaos seeds should not collide exactly";
}

} // namespace
} // namespace tcc
