/**
 * @file
 * Structured protocol tracing: TraceRecorder ring semantics,
 * category gating, the golden event sequence of the Figure 2
 * two-processor conflict, the transaction ledger folded from it, and
 * the determinism of the Chrome-trace / stats-JSON exporters.
 *
 * The trace flags are process-global, so every test that enables them
 * uses the RAII guard below to restore the default (all off, text on)
 * - other tests in this binary must keep seeing a quiet switchboard.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "core/stats_dump.hh"
#include "core/sweep.hh"
#include "core/system.hh"
#include "obs/chrome_trace.hh"
#include "obs/trace_recorder.hh"
#include "obs/tx_ledger.hh"
#include "workload/scripted_source.hh"

namespace tcc {
namespace {

/** Restore the global trace switchboard on scope exit. */
struct TraceFlagsGuard {
    TraceFlagsGuard()
    {
        Trace::enableAll(false);
        Trace::setTextOutput(false); // tests never spam stderr
    }
    ~TraceFlagsGuard()
    {
        Trace::enableAll(false);
        Trace::setTextOutput(true);
    }
};

/** The Figure 2 scenario: P0 commits, P1 reads early and violates. */
struct ConflictScenario {
    static constexpr Addr kX = 0x100000;

    SystemConfig cfg;
    System sys;
    ScriptedSource p0, p1;

    ConflictScenario() : cfg(makeCfg()), sys(cfg)
    {
        p0.add({TxOp::compute(100), TxOp::store(kX, 42)});
        p1.add({TxOp::load(kX), TxOp::compute(4000),
                TxOp::storeAdd(kX + 4096, 0)});
        sys.setSource(0, &p0);
        sys.setSource(1, &p1);
    }

    static SystemConfig
    makeCfg()
    {
        SystemConfig cfg;
        cfg.numProcs = 2;
        cfg.homePolicy = HomePolicy::Interleave;
        return cfg;
    }
};

// ---------------------------------------------------------------------
// Ring semantics
// ---------------------------------------------------------------------

TEST(TraceRecorder, RingWrapKeepsNewestEvents)
{
    EventQueue eq;
    TraceRecorder rec(eq, /*arena=*/nullptr, /*capacity=*/8);
    EXPECT_EQ(rec.capacity(), 8u);
    EXPECT_EQ(rec.size(), 0u);

    for (std::uint64_t i = 0; i < 20; ++i)
        rec.push(TraceEventKind::TxBegin, /*node=*/0, /*tid=*/i, i, 0);

    EXPECT_EQ(rec.captured(), 20u);
    EXPECT_EQ(rec.size(), 8u);
    EXPECT_EQ(rec.dropped(), 12u);
    // Oldest retained event is #12; at() walks oldest -> newest.
    for (std::size_t i = 0; i < rec.size(); ++i)
        EXPECT_EQ(rec.at(i).arg0, 12u + i);

    std::uint64_t seen = 0;
    rec.forEach([&](const TraceEvent &e) {
        EXPECT_EQ(e.arg0, 12u + seen);
        ++seen;
    });
    EXPECT_EQ(seen, 8u);

    rec.clear();
    EXPECT_EQ(rec.captured(), 0u);
    EXPECT_EQ(rec.size(), 0u);
}

TEST(TraceRecorder, EventsCarryTheQueueTimestamp)
{
    EventQueue eq;
    TraceRecorder rec(eq, nullptr, 16);
    rec.push(TraceEventKind::TxBegin, 1, 7, 0, 0);
    eq.schedule(25, [&]() {
        rec.push(TraceEventKind::TxCommit, 1, 7, 0, 0);
    });
    while (eq.step()) {}
    ASSERT_EQ(rec.size(), 2u);
    EXPECT_EQ(rec.at(0).tick, 0u);
    EXPECT_EQ(rec.at(1).tick, 25u);
    EXPECT_EQ(rec.at(1).kind, TraceEventKind::TxCommit);
}

// ---------------------------------------------------------------------
// Gating: off by default, per-category when on
// ---------------------------------------------------------------------

TEST(TraceRecorder, DisabledTracingRecordsNothing)
{
    TraceFlagsGuard guard;
    // All categories off (the default): a full run must not record a
    // single event - the recorder should not even allocate its ring.
    ConflictScenario s;
    ASSERT_TRUE(s.sys.run().completed);
    EXPECT_EQ(s.sys.traceRecorder().captured(), 0u);
}

TEST(TraceRecorder, CategoryGatingIsSelective)
{
    TraceFlagsGuard guard;
    Trace::enable(TraceCat::Dir, true);

    ConflictScenario s;
    ASSERT_TRUE(s.sys.run().completed);
    const TraceRecorder &rec = s.sys.traceRecorder();
    EXPECT_GT(rec.captured(), 0u);
    rec.forEach([](const TraceEvent &e) {
        EXPECT_GE(static_cast<unsigned>(e.kind),
                  static_cast<unsigned>(TraceEventKind::DirSkip));
        EXPECT_LE(static_cast<unsigned>(e.kind),
                  static_cast<unsigned>(TraceEventKind::DirInvalidate));
    });
}

// ---------------------------------------------------------------------
// Golden event sequence + ledger for the scripted conflict
// ---------------------------------------------------------------------

TEST(TraceRecorder, GoldenConflictSequence)
{
    TraceFlagsGuard guard;
    Trace::enableAll(true);

    ConflictScenario s;
    ASSERT_TRUE(s.sys.run().completed);
    const TraceRecorder &rec = s.sys.traceRecorder();
    ASSERT_GT(rec.captured(), 0u);
    ASSERT_EQ(rec.dropped(), 0u) << "scenario must fit the ring";

    // Project out the lifecycle events (skip net/dir noise).
    struct Lc {
        TraceEventKind kind;
        NodeId node;
        Tid tid;
        std::uint64_t a0;
    };
    std::vector<Lc> lc;
    rec.forEach([&](const TraceEvent &e) {
        switch (e.kind) {
          case TraceEventKind::TxBegin:
          case TraceEventKind::TxViolation:
          case TraceEventKind::ViolationCause:
          case TraceEventKind::TxCommit:
            lc.push_back({e.kind, e.node, e.tid, e.arg0});
            break;
          default:
            break;
        }
    });

    // Both processors begin; P0 commits with TID 0; P1 is invalidated
    // (cause: line X written by TID 0), violates, re-begins, commits
    // with TID 1.
    ASSERT_GE(lc.size(), 7u);
    EXPECT_EQ(lc[0].kind, TraceEventKind::TxBegin);
    EXPECT_EQ(lc[1].kind, TraceEventKind::TxBegin);

    std::vector<Lc> p1;
    for (const Lc &e : lc)
        if (e.node == 1)
            p1.push_back(e);
    ASSERT_EQ(p1.size(), 5u);
    EXPECT_EQ(p1[0].kind, TraceEventKind::TxBegin);
    EXPECT_EQ(p1[1].kind, TraceEventKind::ViolationCause);
    EXPECT_EQ(p1[1].a0, ConflictScenario::kX); // conflicting line
    EXPECT_EQ(p1[1].tid, 0u);                  // the writer's TID
    EXPECT_EQ(p1[2].kind, TraceEventKind::TxViolation);
    EXPECT_EQ(p1[3].kind, TraceEventKind::TxBegin);
    EXPECT_EQ(p1[3].a0, 1u); // one prior violation
    EXPECT_EQ(p1[4].kind, TraceEventKind::TxCommit);
    EXPECT_EQ(p1[4].tid, 1u);

    std::vector<Lc> p0;
    for (const Lc &e : lc)
        if (e.node == 0)
            p0.push_back(e);
    ASSERT_EQ(p0.size(), 2u);
    EXPECT_EQ(p0[1].kind, TraceEventKind::TxCommit);
    EXPECT_EQ(p0[1].tid, 0u);
}

TEST(TxLedger, NamesTheConflictAddressAndWriter)
{
    TraceFlagsGuard guard;
    Trace::enableAll(true);

    ConflictScenario s;
    ASSERT_TRUE(s.sys.run().completed);
    const auto ledger = buildTxLedger(s.sys.traceRecorder());

    // One entry per committed transaction, in commit order.
    ASSERT_EQ(ledger.size(), 2u);
    EXPECT_EQ(ledger[0].tid, 0u);
    EXPECT_EQ(ledger[0].node, 0u);
    EXPECT_EQ(ledger[0].retries, 0u);
    EXPECT_FALSE(ledger[0].hasViolation);
    EXPECT_GT(ledger[0].execCycles(), 0u);
    EXPECT_GT(ledger[0].commitCycles(), 0u);

    EXPECT_EQ(ledger[1].tid, 1u);
    EXPECT_EQ(ledger[1].node, 1u);
    EXPECT_EQ(ledger[1].retries, 1u);
    EXPECT_TRUE(ledger[1].hasViolation);
    EXPECT_EQ(ledger[1].violationAddr, ConflictScenario::kX);
    EXPECT_EQ(ledger[1].violationWriter, 0u);
    // The committing attempt sent probes and observed round trips.
    EXPECT_GT(ledger[1].probeCount + ledger[0].probeCount, 0u);
}

// ---------------------------------------------------------------------
// Exporters: Perfetto JSON + stats JSON, deterministic and well-formed
// ---------------------------------------------------------------------

std::string
runAndExportChrome()
{
    ConflictScenario s;
    if (!s.sys.run().completed)
        return {};
    std::ostringstream os;
    exportChromeTrace(s.sys.traceRecorder(), s.cfg.numProcs, os);
    return os.str();
}

TEST(ChromeTrace, ExportIsDeterministicAndStructured)
{
    TraceFlagsGuard guard;
    Trace::enableAll(true);

    const std::string a = runAndExportChrome();
    const std::string b = runAndExportChrome();
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "export must be a pure function of the run";

    // Structural spot checks (full JSON parsing happens in the
    // obs_smoke ctest fixture via cmake's JSON support).
    EXPECT_NE(a.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(a.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(a.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(a.find("\"name\":\"proc 0\""), std::string::npos);
    EXPECT_NE(a.find("\"name\":\"dir 1\""), std::string::npos);
    EXPECT_NE(a.find("\"name\":\"commit\""), std::string::npos);
    EXPECT_NE(a.find("\"name\":\"tx 0\""), std::string::npos);
    EXPECT_NE(a.find("violation_cause"), std::string::npos);
}

TEST(ChromeTrace, QuietWhenNothingRecorded)
{
    TraceFlagsGuard guard; // everything off
    ConflictScenario s;
    ASSERT_TRUE(s.sys.run().completed);
    std::ostringstream os;
    exportChromeTrace(s.sys.traceRecorder(), s.cfg.numProcs, os);
    // Metadata only - no slices, no instants.
    EXPECT_NE(os.str().find("\"traceEvents\":["), std::string::npos);
    EXPECT_EQ(os.str().find("\"ph\":\"X\""), std::string::npos);
}

TEST(StatsJson, SchemaAndDeterminism)
{
    TraceFlagsGuard guard;
    Trace::enableAll(true);

    auto run = []() {
        ConflictScenario s;
        EXPECT_TRUE(s.sys.run().completed);
        std::ostringstream os;
        dumpStatsJson(s.sys, os);
        return os.str();
    };
    const std::string a = run();
    const std::string b = run();
    EXPECT_EQ(a, b);

    for (const char *key :
         {"\"system\":{", "\"procs\":", "\"dirs\":", "\"network\":{",
          "\"bytes_by_class\":{", "\"trace_events_captured\":",
          "\"tx_ledger\":[", "\"violation_addr\":1048576",
          "\"violation_writer\":0", "\"txn_instructions\":{",
          "\"stddev\":", "\"min\":", "\"quiesced\":true"}) {
        EXPECT_NE(a.find(key), std::string::npos)
            << "missing JSON fragment: " << key;
    }
    // JSON must not leak the text dump's dotted key style.
    EXPECT_EQ(a.find("\"network.messages\""), std::string::npos);
}

TEST(StatsText, LedgerSectionAppearsWhenTraced)
{
    TraceFlagsGuard guard;
    Trace::enableAll(true);

    ConflictScenario s;
    ASSERT_TRUE(s.sys.run().completed);
    std::ostringstream os;
    dumpStats(s.sys, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("tx_ledger.count 2"), std::string::npos);
    EXPECT_NE(out.find("tx_ledger.1.retries 1"), std::string::npos);
    EXPECT_NE(out.find("tx_ledger.1.violation_addr 1048576"),
              std::string::npos);
    EXPECT_NE(out.find("system.trace_events_captured"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Fingerprint neutrality: recording must never perturb the simulation
// ---------------------------------------------------------------------

struct RunFp {
    Tick cycles;
    std::uint64_t events;
    std::uint64_t violations;

    bool
    operator==(const RunFp &o) const
    {
        return cycles == o.cycles && events == o.events &&
               violations == o.violations;
    }
};

RunFp
runConflict()
{
    ConflictScenario s;
    auto res = s.sys.run();
    EXPECT_TRUE(res.completed);
    return RunFp{res.cycles, res.events,
                 s.sys.proc(1).stats().violations};
}

TEST(TraceRecorder, TracingDoesNotChangeTheRun)
{
    TraceFlagsGuard guard;
    const RunFp off = runConflict();
    Trace::enableAll(true);
    const RunFp on = runConflict();
    EXPECT_EQ(off, on)
        << "recording is observational; fingerprints must match";
}

// ---------------------------------------------------------------------
// Sweep concurrency: one ring per System, shared flags only
// ---------------------------------------------------------------------

TEST(TraceRecorder, ParallelSweepRecordsPerSystem)
{
    TraceFlagsGuard guard;
    Trace::enableAll(true);

    constexpr std::size_t kRuns = 8;
    auto one = [](std::size_t) {
        ConflictScenario s;
        auto res = s.sys.run();
        std::uint64_t captured = s.sys.traceRecorder().captured();
        return std::make_pair(RunFp{res.cycles, res.events,
                                    s.sys.proc(1).stats().violations},
                              captured);
    };

    SweepRunner serial(1);
    const auto want =
        sweepIndex<std::pair<RunFp, std::uint64_t>>(serial, kRuns, one);
    SweepRunner pool(4);
    const auto got =
        sweepIndex<std::pair<RunFp, std::uint64_t>>(pool, kRuns, one);

    ASSERT_EQ(got.size(), kRuns);
    for (std::size_t i = 0; i < kRuns; ++i) {
        EXPECT_TRUE(want[i].first == got[i].first) << "run " << i;
        EXPECT_EQ(want[i].second, got[i].second) << "run " << i;
        EXPECT_GT(got[i].second, 0u);
    }
}

} // namespace
} // namespace tcc
