/**
 * @file
 * Edge-case tests for the TID vendor and System run control: gap-free
 * TID issue under bursts, vendor serialization latency, tick-limited
 * runs, and multi-run determinism.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/system.hh"
#include "proc/tid_vendor.hh"
#include "workload/scripted_source.hh"

namespace tcc {
namespace {

TEST(TidVendor, IssuesGapFreeSequence)
{
    EventQueue eq;
    IdealNetwork net(eq, 4, 1);
    TidVendor vendor(0, eq, net, 5);
    std::set<Tid> got;
    for (NodeId n = 1; n < 4; ++n) {
        net.connect(n, [&](const Message &m) {
            ASSERT_EQ(m.type, MsgType::TidReply);
            got.insert(m.tid);
        });
    }
    net.connect(0, [&](const Message &m) { vendor.receive(m); });
    for (int i = 0; i < 12; ++i) {
        Message req;
        req.type = MsgType::TidReq;
        req.src = static_cast<NodeId>(1 + i % 3);
        req.dst = 0;
        req.bytes = 8;
        net.send(req);
    }
    eq.run();
    ASSERT_EQ(got.size(), 12u);
    EXPECT_EQ(*got.begin(), 0u);
    EXPECT_EQ(*got.rbegin(), 11u); // gap-free 0..11
    EXPECT_EQ(vendor.issued(), 12u);
}

TEST(TidVendor, SerializesBurstRequests)
{
    // 10 simultaneous requests with 5-cycle service: the last reply
    // leaves the vendor no earlier than 10 * 5 cycles in.
    EventQueue eq;
    IdealNetwork net(eq, 2, 1);
    TidVendor vendor(0, eq, net, 5);
    Tick last_arrival = 0;
    net.connect(1, [&](const Message &) { last_arrival = eq.now(); });
    net.connect(0, [&](const Message &m) { vendor.receive(m); });
    for (int i = 0; i < 10; ++i) {
        Message req;
        req.type = MsgType::TidReq;
        req.src = 1;
        req.dst = 0;
        req.bytes = 8;
        net.send(req);
    }
    eq.run();
    EXPECT_GE(last_arrival, 50u);
}

TEST(SystemRun, TickLimitStopsEarly)
{
    SystemConfig cfg;
    cfg.numProcs = 1;
    System sys(cfg);
    ScriptedSource src;
    src.add({TxOp::compute(1'000'000)});
    sys.setSource(0, &src);
    auto res = sys.run(/*max_ticks=*/1000);
    EXPECT_FALSE(res.completed);
    EXPECT_LE(sys.eventQueue().now(), 1'000'001u);
}

TEST(SystemRun, DeterministicAcrossIdenticalRuns)
{
    auto run_once = []() {
        SystemConfig cfg;
        cfg.numProcs = 4;
        System sys(cfg);
        std::vector<ScriptedSource> srcs(4);
        for (NodeId p = 0; p < 4; ++p) {
            for (int t = 0; t < 8; ++t)
                srcs[p].add({TxOp::load(0xA000),
                             TxOp::compute(17 + p),
                             TxOp::storeAdd(0xA000, 1)});
            sys.setSource(p, &srcs[p]);
        }
        auto res = sys.run();
        EXPECT_TRUE(res.completed);
        return std::make_pair(res.cycles, res.events);
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

TEST(SystemRun, ZeroTransactionSourcesFinishImmediately)
{
    SystemConfig cfg;
    cfg.numProcs = 2;
    System sys(cfg);
    ScriptedSource a, b; // empty
    sys.setSource(0, &a);
    sys.setSource(1, &b);
    auto res = sys.run();
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.cycles, 0u);
    EXPECT_TRUE(sys.protocolQuiesced());
}

} // namespace
} // namespace tcc
