/**
 * @file
 * Tests for the commit fan-out multicast layer (noc/network.hh):
 * flat-mode bit-identity with the per-destination send loop it
 * replaced, combining-tree delivery correctness and determinism, the
 * NIC-serialization sublinearity the tree exists for, and the
 * system-level gate that flat and tree runs commit the same
 * transactions and produce the same memory image.
 */

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/system.hh"
#include "noc/network.hh"
#include "sim/event_queue.hh"
#include "workload/synthetic_app.hh"

namespace tcc {
namespace {

Message
mkMsg(NodeId src, MsgType t = MsgType::Skip, std::uint32_t bytes = 16)
{
    Message m;
    m.type = t;
    m.src = src;
    m.bytes = bytes;
    return m;
}

std::vector<NodeId>
allExcept(std::uint32_t nodes, NodeId src)
{
    std::vector<NodeId> dsts;
    for (NodeId n = 0; n < nodes; ++n)
        if (n != src)
            dsts.push_back(n);
    return dsts;
}

MulticastConfig
treeCfg(std::uint32_t fanout)
{
    MulticastConfig mc;
    mc.topology = MulticastConfig::Topology::Tree;
    mc.fanout = fanout;
    return mc;
}

/** Per-destination arrival ticks for one fan-out on a fresh mesh. */
std::map<NodeId, Tick>
arrivalsFor(std::uint32_t nodes, const MulticastConfig &mc,
            std::span<const NodeId> dsts, MulticastReceipt *receipt)
{
    EventQueue eq;
    MeshNetwork net(eq, nodes);
    net.setMulticast(mc);
    std::map<NodeId, Tick> arrivals;
    for (NodeId n = 0; n < nodes; ++n)
        net.connect(n, [&, n](const Message &) {
            EXPECT_EQ(arrivals.count(n), 0u)
                << "duplicate delivery to node " << n;
            arrivals[n] = eq.now();
        });
    *receipt = net.multicast(mkMsg(0), dsts);
    eq.run();
    return arrivals;
}

TEST(Multicast, FlatMatchesSendLoopBitForBit)
{
    // The flat strategy must reproduce the exact per-destination send()
    // loop it replaced: same arrival tick at every destination, same
    // traffic counters, because golden trace fingerprints are gated on
    // that identity.
    const std::uint32_t nodes = 16;
    const auto dsts = allExcept(nodes, 0);

    EventQueue eqLoop;
    MeshNetwork loopNet(eqLoop, nodes);
    std::map<NodeId, Tick> loopArrivals;
    for (NodeId n = 0; n < nodes; ++n)
        loopNet.connect(n, [&, n](const Message &) {
            loopArrivals[n] = eqLoop.now();
        });
    for (NodeId d : dsts) {
        Message m = mkMsg(0);
        m.dst = d;
        loopNet.send(std::move(m));
    }
    eqLoop.run();

    MulticastReceipt r;
    const auto mcArrivals =
        arrivalsFor(nodes, MulticastConfig{}, dsts, &r);

    EXPECT_EQ(mcArrivals, loopArrivals);
    EXPECT_EQ(r.dests, dsts.size());
    EXPECT_EQ(r.nicSerialized, dsts.size()); // O(N) at one NIC
    EXPECT_EQ(r.depth, 1u);
}

TEST(Multicast, TreeDeliversEveryDestinationExactlyOnce)
{
    const std::uint32_t nodes = 64;
    const auto dsts = allExcept(nodes, 0);
    MulticastReceipt r;
    const auto arrivals = arrivalsFor(nodes, treeCfg(4), dsts, &r);
    ASSERT_EQ(arrivals.size(), dsts.size());
    for (NodeId d : dsts)
        EXPECT_TRUE(arrivals.count(d)) << "node " << d << " missed";
    EXPECT_EQ(arrivals.count(0), 0u); // source gets no copy
    EXPECT_EQ(r.dests, dsts.size());
    EXPECT_GT(r.depth, 1u);
}

TEST(Multicast, TreeStagingIsDeterministic)
{
    // Two fresh meshes, same configuration, same fan-out: identical
    // receipt and identical per-destination arrival schedule. The
    // combining tree is resolved analytically at multicast() time, so
    // nothing about it may depend on incidental state.
    const std::uint32_t nodes = 256;
    const auto dsts = allExcept(nodes, 3);
    MulticastReceipt r1, r2;
    const auto a1 = arrivalsFor(nodes, treeCfg(4), dsts, &r1);
    const auto a2 = arrivalsFor(nodes, treeCfg(4), dsts, &r2);
    EXPECT_EQ(a1, a2);
    EXPECT_EQ(r1.dests, r2.dests);
    EXPECT_EQ(r1.nicSerialized, r2.nicSerialized);
    EXPECT_EQ(r1.depth, r2.depth);
}

TEST(Multicast, TreeRelayOrderFollowsAscendingRanks)
{
    // Relays forward in destination-list order: a child fed by relay
    // rank p can never arrive before its parent's copy did (each tree
    // edge pays a full XY route plus the relay's router delay).
    const std::uint32_t nodes = 64;
    const std::uint32_t k = 4;
    const auto dsts = allExcept(nodes, 0);
    MulticastReceipt r;
    const auto arrivals = arrivalsFor(nodes, treeCfg(k), dsts, &r);
    for (std::size_t i = k; i < dsts.size(); ++i) {
        const std::size_t parent = i / k - 1;
        EXPECT_GT(arrivals.at(dsts[i]), arrivals.at(dsts[parent]))
            << "child " << dsts[i] << " beat parent " << dsts[parent];
    }
}

TEST(Multicast, TreeFallsBackToFlatBelowMinDests)
{
    const std::uint32_t nodes = 64;
    MulticastConfig mc = treeCfg(4);
    mc.minDests = 8;
    const std::vector<NodeId> few{1, 2, 3, 4};
    MulticastReceipt rTree, rFlat;
    const auto aTree = arrivalsFor(nodes, mc, few, &rTree);
    const auto aFlat =
        arrivalsFor(nodes, MulticastConfig{}, few, &rFlat);
    EXPECT_EQ(aTree, aFlat);
    EXPECT_EQ(rTree.nicSerialized, rFlat.nicSerialized);
    EXPECT_EQ(rTree.depth, 1u);
}

TEST(Multicast, TreeNicSerializationIsSublinear)
{
    // The reason the tree exists: a broadcast's critical path must cost
    // O(k log_k N) serialized injections at any one NIC, not O(N).
    const std::uint32_t nodes = 1024;
    const auto dsts = allExcept(nodes, 0);
    MulticastReceipt rFlat, rTree;
    arrivalsFor(nodes, MulticastConfig{}, dsts, &rFlat);
    arrivalsFor(nodes, treeCfg(4), dsts, &rTree);
    EXPECT_EQ(rFlat.nicSerialized, dsts.size());
    EXPECT_LT(rTree.nicSerialized, dsts.size() / 8);
    EXPECT_GT(rTree.depth, 1u);
}

TEST(Multicast, NetworkStatsCountFanouts)
{
    EventQueue eq;
    MeshNetwork net(eq, 16);
    for (NodeId n = 0; n < 16; ++n)
        net.connect(n, [](const Message &) {});
    const auto dsts = allExcept(16, 0);
    net.multicast(mkMsg(0), dsts);
    net.multicast(mkMsg(0), dsts);
    eq.run();
    EXPECT_EQ(net.stats().multicasts, 2u);
    EXPECT_EQ(net.stats().multicastNicEvents, 2 * dsts.size());
}

// ---------------------------------------------------------------------
// System-level outcome gate: the tree changes message timing only.
// A flat and a tree run of the same workload must commit the same
// number of transactions and leave bit-identical memory images, with
// the online invariant checker clean in both. The workload pins
// writeSpreadDirs=1 so every plain store has a single writer and the
// final image is a pure function of the committed set (commit order
// legitimately shifts under the tree).
// ---------------------------------------------------------------------

struct Outcome {
    std::uint64_t commits = 0;
    std::uint64_t fingerprint = 0;
};

Outcome
runOutcome(const MulticastConfig &mc, std::uint32_t domains = 0)
{
    SystemConfig cfg;
    cfg.numProcs = 64;
    cfg.homePolicy = HomePolicy::Interleave;
    cfg.network.multicast = mc;
    cfg.check.invariants = true;
    if (domains) {
        cfg.pdes.domains = domains;
        cfg.pdes.jobs = 1;
    }
    System sys(cfg);
    AppProfile prof = appProfile("barnes");
    prof.writeSpreadDirs = 1;
    prof.phases = 1;
    prof.txnsPerPhase = 128;
    auto sources = setupApp(sys, prof, /*seed=*/7);
    RunResult res = sys.run();
    EXPECT_TRUE(res.completed);
    EXPECT_TRUE(res.quiesced);
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
    return {res.committedTxns, sys.memory().fingerprint()};
}

TEST(MulticastSystem, TreeMatchesFlatOutcome)
{
    const Outcome flat = runOutcome(MulticastConfig{});
    const Outcome tree4 = runOutcome(treeCfg(4));
    const Outcome tree8 = runOutcome(treeCfg(8));
    EXPECT_GT(flat.commits, 0u);
    EXPECT_EQ(tree4.commits, flat.commits);
    EXPECT_EQ(tree4.fingerprint, flat.fingerprint);
    EXPECT_EQ(tree8.commits, flat.commits);
    EXPECT_EQ(tree8.fingerprint, flat.fingerprint);
}

TEST(MulticastSystem, TreeUnderPdesMatchesSequentialTree)
{
    // Domain decomposition is invisible to the model: a tree-multicast
    // run split across PDES domains must reproduce the sequential
    // tree run exactly, not merely a valid serialization.
    const Outcome seq = runOutcome(treeCfg(4));
    const Outcome pdes = runOutcome(treeCfg(4), /*domains=*/4);
    EXPECT_EQ(pdes.commits, seq.commits);
    EXPECT_EQ(pdes.fingerprint, seq.fingerprint);
}

} // namespace
} // namespace tcc
