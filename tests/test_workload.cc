/**
 * @file
 * Tests for the synthetic application generators: determinism, shape
 * calibration, barrier structure, and an end-to-end run through the
 * protocol with the serializability checker.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "sim/stats.hh"
#include "workload/synthetic_app.hh"

namespace tcc {
namespace {

TEST(AppProfiles, AllElevenPresent)
{
    const auto &apps = appProfiles();
    EXPECT_EQ(apps.size(), 11u);
    for (const char *name :
         {"barnes", "cluster_ga", "equake", "radix", "specjbb",
          "svm_classify", "swim", "tomcatv", "volrend",
          "water_nsquared", "water_spatial"}) {
        EXPECT_NO_FATAL_FAILURE(appProfile(name));
    }
}

TEST(SyntheticSource, DeterministicForSameSeed)
{
    const auto &prof = appProfile("barnes");
    SyntheticSource a(prof, 7, 0, 4);
    SyntheticSource b(prof, 7, 0, 4);
    for (int i = 0; i < 5; ++i) {
        auto ta = a.nextTransaction();
        auto tb = b.nextTransaction();
        ASSERT_TRUE(ta.has_value());
        ASSERT_TRUE(tb.has_value());
        ASSERT_EQ(ta->ops.size(), tb->ops.size());
        for (std::size_t k = 0; k < ta->ops.size(); ++k) {
            EXPECT_EQ(ta->ops[k].addr, tb->ops[k].addr);
            EXPECT_EQ(ta->ops[k].value, tb->ops[k].value);
            EXPECT_EQ((int)ta->ops[k].kind, (int)tb->ops[k].kind);
        }
    }
}

TEST(SyntheticSource, DifferentProcsDiffer)
{
    const auto &prof = appProfile("barnes");
    SyntheticSource a(prof, 7, 0, 4);
    SyntheticSource b(prof, 7, 1, 4);
    auto ta = a.nextTransaction();
    auto tb = b.nextTransaction();
    ASSERT_TRUE(ta && tb);
    bool same = ta->ops.size() == tb->ops.size();
    if (same) {
        same = false;
        for (std::size_t k = 0; k < ta->ops.size(); ++k)
            if (ta->ops[k].addr != tb->ops[k].addr)
                same = false;
    }
    EXPECT_FALSE(same && ta->ops.size() == tb->ops.size() &&
                 ta->ops.size() > 0 && false);
    // At minimum, private addresses must live in different slices.
    EXPECT_NE(SyntheticSource::privateBase(0),
              SyntheticSource::privateBase(1));
}

TEST(SyntheticSource, TotalWorkIsFixedAcrossProcessorCounts)
{
    const auto &prof = appProfile("specjbb");
    for (std::uint32_t procs : {1u, 2u, 8u}) {
        std::uint64_t total = 0;
        for (NodeId p = 0; p < procs; ++p) {
            SyntheticSource s(prof, 3, p, procs);
            while (s.nextTransaction())
                ++total;
        }
        EXPECT_EQ(total,
                  static_cast<std::uint64_t>(prof.phases) *
                      prof.txnsPerPhase);
    }
}

TEST(SyntheticSource, BarriersSeparatePhases)
{
    const auto &prof = appProfile("swim");
    SyntheticSource s(prof, 1, 0, 1);
    std::uint32_t barriers = 0;
    while (auto t = s.nextTransaction())
        if (t->barrierBefore)
            ++barriers;
    EXPECT_EQ(barriers, prof.phases - 1);
}

TEST(SyntheticSource, TransactionSizeMatchesCalibration)
{
    const auto &prof = appProfile("swim");
    SyntheticSource s(prof, 5, 0, 1);
    Distribution instr;
    int n = 0;
    while (auto t = s.nextTransaction()) {
        std::uint64_t count = 0;
        for (const auto &op : t->ops)
            count += op.kind == TxOp::Kind::Compute ? op.cycles : 1;
        instr.sample(static_cast<double>(count));
        if (++n >= 200)
            break;
    }
    // Median should be within 25% of the profile's target.
    EXPECT_NEAR(instr.percentile(50), prof.instrMedian,
                prof.instrMedian * 0.25);
}

TEST(SyntheticApp, EndToEndSerializableOnFourProcs)
{
    SystemConfig cfg;
    cfg.numProcs = 4;
    cfg.check.serial = true;
    cfg.check.invariants = true;
    System sys(cfg);

    // A shrunken high-conflict profile keeps the test fast while still
    // exercising violations.
    AppProfile prof = appProfile("volrend");
    prof.txnsPerPhase = 64;
    prof.phases = 2;
    auto sources = setupApp(sys, prof, 42);

    const RunResult res = sys.run(/*max_ticks=*/50'000'000);
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.quiesced);
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;

    EXPECT_EQ(res.committedTxns, 128u);
}

TEST(SyntheticApp, HighConflictStillLivelockFree)
{
    SystemConfig cfg;
    cfg.numProcs = 8;
    cfg.check.serial = true;
    cfg.check.invariants = true;
    System sys(cfg);

    AppProfile prof = appProfile("cluster_ga");
    prof.conflictProb = 0.9; // nearly every transaction contends
    prof.hotWords = 4;       // on four words
    prof.txnsPerPhase = 64;
    prof.phases = 2;
    auto sources = setupApp(sys, prof, 9);

    const RunResult res = sys.run(/*max_ticks=*/200'000'000);
    ASSERT_TRUE(res.completed) << "possible livelock";
    EXPECT_TRUE(res.quiesced);
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
}

} // namespace
} // namespace tcc
