/**
 * @file
 * Unit tests for the remaining support modules: home mapping
 * (first-touch, interleave, explicit binding), the global store, the
 * serializability checker itself, message helpers, and the report
 * renderers.
 */

#include <gtest/gtest.h>

#include "check/serial_checker.hh"
#include "core/report.hh"
#include "mem/global_store.hh"
#include "mem/home_map.hh"
#include "noc/message.hh"

namespace tcc {
namespace {

// ---------------------------------------------------------------------
// HomeMap
// ---------------------------------------------------------------------

TEST(HomeMap, InterleaveIsPageModulo)
{
    HomeMap hm(4, HomePolicy::Interleave, 4096);
    EXPECT_EQ(hm.homeOf(0x0000, 9), 0u);
    EXPECT_EQ(hm.homeOf(0x1000, 9), 1u);
    EXPECT_EQ(hm.homeOf(0x4000, 9), 0u);
    EXPECT_EQ(hm.homeOf(0x1FFF, 9), 1u); // same page as 0x1000
}

TEST(HomeMap, FirstTouchBindsToToucher)
{
    HomeMap hm(4, HomePolicy::FirstTouch, 4096);
    EXPECT_EQ(hm.homeOf(0x5000, 2), 2u);
    // Later touches by other nodes see the original binding.
    EXPECT_EQ(hm.homeOf(0x5004, 3), 2u);
    EXPECT_EQ(hm.homeOf(0x5000), 2u);
}

TEST(HomeMap, ExplicitBindOverridesFirstTouch)
{
    HomeMap hm(4, HomePolicy::FirstTouch, 4096);
    hm.bind(0x8000, 3);
    EXPECT_EQ(hm.homeOf(0x8000, 0), 3u);
}

TEST(HomeMap, BindIsNoopUnderInterleave)
{
    HomeMap hm(4, HomePolicy::Interleave, 4096);
    hm.bind(0x1000, 3);
    EXPECT_EQ(hm.homeOf(0x1000, 0), 1u);
}

// ---------------------------------------------------------------------
// GlobalStore
// ---------------------------------------------------------------------

TEST(GlobalStore, DefaultsToZero)
{
    GlobalStore gs;
    EXPECT_EQ(gs.read(0x1234), 0u);
}

TEST(GlobalStore, WordAlignedReadWrite)
{
    GlobalStore gs;
    gs.write(0x1000, 99);
    EXPECT_EQ(gs.read(0x1000), 99u);
    EXPECT_EQ(gs.read(0x1002), 99u); // same word
    EXPECT_EQ(gs.read(0x1004), 0u);  // next word
    EXPECT_EQ(gs.footprint(), 1u);
}

// ---------------------------------------------------------------------
// SerialChecker
// ---------------------------------------------------------------------

TEST(SerialChecker, EmptyLogVerifies)
{
    SerialChecker c;
    EXPECT_TRUE(c.verify().ok);
}

TEST(SerialChecker, ConsistentChainPasses)
{
    SerialChecker c;
    c.record(0, 0, {}, {{0x100, 1}});
    c.record(1, 1, {{0x100, 1}}, {{0x100, 2}});
    c.record(2, 0, {{0x100, 2}}, {{0x200, 7}});
    auto r = c.verify();
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.txnsChecked, 3u);
}

TEST(SerialChecker, StaleReadDetected)
{
    SerialChecker c;
    c.record(0, 0, {}, {{0x100, 1}});
    c.record(1, 1, {{0x100, 0}}, {{0x100, 2}}); // read missed TID 0
    EXPECT_FALSE(c.verify().ok);
}

TEST(SerialChecker, DuplicateTidDetected)
{
    SerialChecker c;
    c.record(5, 0, {}, {{0x100, 1}});
    c.record(5, 1, {}, {{0x100, 2}});
    auto r = c.verify();
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("duplicate"), std::string::npos);
}

TEST(SerialChecker, OutOfOrderRecordingIsFine)
{
    // Commits are recorded in wall-clock order, which need not match
    // TID order; the checker must sort.
    SerialChecker c;
    c.record(1, 1, {{0x100, 1}}, {{0x100, 2}});
    c.record(0, 0, {}, {{0x100, 1}});
    EXPECT_TRUE(c.verify().ok);
}

TEST(SerialChecker, InitialStateRespected)
{
    SerialChecker c;
    c.setInitial(0x100, 50);
    c.record(0, 0, {{0x100, 50}}, {{0x100, 51}});
    EXPECT_TRUE(c.verify().ok);
    auto final_state = c.replayFinalState();
    EXPECT_EQ(final_state[0x100], 51u);
}

TEST(SerialChecker, GapsInTidsAreFine)
{
    // Aborted attempts consume TIDs; the committed sequence has gaps.
    SerialChecker c;
    c.record(0, 0, {}, {{0x100, 1}});
    c.record(7, 1, {{0x100, 1}}, {{0x100, 2}});
    EXPECT_TRUE(c.verify().ok);
}

// ---------------------------------------------------------------------
// Message helpers
// ---------------------------------------------------------------------

TEST(Message, SizesDependOnClass)
{
    EXPECT_EQ(msgBytes(MsgType::Skip, 32), 8u);
    EXPECT_EQ(msgBytes(MsgType::LoadReq, 32), 16u);
    EXPECT_EQ(msgBytes(MsgType::LoadReply, 32), 48u);
    EXPECT_EQ(msgBytes(MsgType::WriteBack, 64), 80u);
}

TEST(Message, TrafficClassMapping)
{
    EXPECT_EQ(trafficClassOf(MsgType::LoadReq), TrafficClass::Miss);
    EXPECT_EQ(trafficClassOf(MsgType::LoadReply), TrafficClass::Miss);
    EXPECT_EQ(trafficClassOf(MsgType::WriteBack),
              TrafficClass::WriteBack);
    EXPECT_EQ(trafficClassOf(MsgType::DataReq), TrafficClass::Shared);
    EXPECT_EQ(trafficClassOf(MsgType::FlushData),
              TrafficClass::Shared);
    EXPECT_EQ(trafficClassOf(MsgType::Skip), TrafficClass::Overhead);
    EXPECT_EQ(trafficClassOf(MsgType::Probe), TrafficClass::Overhead);
}

TEST(Message, NamesAreStable)
{
    EXPECT_STREQ(msgTypeName(MsgType::Commit), "Commit");
    EXPECT_STREQ(msgTypeName(MsgType::PartialCommit), "PartialCommit");
    Message m;
    m.type = MsgType::Mark;
    m.src = 1;
    m.dst = 2;
    m.addr = 0x40;
    m.tid = 7;
    EXPECT_NE(m.toString().find("Mark"), std::string::npos);
}

// ---------------------------------------------------------------------
// Report renderers
// ---------------------------------------------------------------------

TEST(Report, BreakdownFractionsSumToOne)
{
    Breakdown bd;
    bd.useful = 50;
    bd.miss = 30;
    bd.commit = 10;
    bd.idle = 5;
    bd.violation = 5;
    EXPECT_EQ(bd.total(), 100u);
    const double sum =
        bd.fraction(bd.useful) + bd.fraction(bd.miss) +
        bd.fraction(bd.commit) + bd.fraction(bd.idle) +
        bd.fraction(bd.violation);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Report, EmptyBreakdownIsSafe)
{
    Breakdown bd;
    EXPECT_EQ(bd.total(), 0u);
    EXPECT_DOUBLE_EQ(bd.fraction(bd.useful), 0.0);
    // Renders without dividing by zero.
    auto row = breakdownRow("empty", bd);
    EXPECT_FALSE(row.empty());
}

TEST(Report, RowsContainAppName)
{
    AppCharacterization c;
    c.name = "myapp";
    c.txnSize90 = 1234;
    auto row = table3Row(c);
    EXPECT_NE(row.find("myapp"), std::string::npos);

    TrafficRow t;
    t.name = "myapp";
    t.miss = 0.5;
    EXPECT_NE(trafficRowText(t).find("myapp"), std::string::npos);
    EXPECT_DOUBLE_EQ(t.total(), 0.5);
}

} // namespace
} // namespace tcc
