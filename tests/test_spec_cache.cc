/**
 * @file
 * Unit tests for the speculative cache hierarchy: SR/SM tracking,
 * write-back triggering, commit/abort semantics, ghost lines,
 * eviction, and overflow.
 */

#include <gtest/gtest.h>

#include "cache/spec_cache.hh"

namespace tcc {
namespace {

CacheConfig
tinyConfig()
{
    CacheConfig cfg;
    cfg.lineBytes = 32;
    cfg.l1Bytes = 256;  // 8 lines, 4-way -> 2 sets
    cfg.l1Assoc = 4;
    cfg.l1Latency = 1;
    cfg.l2Bytes = 1024; // 32 lines, 8-way -> 4 sets
    cfg.l2Assoc = 8;
    cfg.l2Latency = 16;
    return cfg;
}

TEST(SpecCache, LoadMissesWhenEmpty)
{
    SpecCache c(tinyConfig());
    auto out = c.load(0x1000);
    EXPECT_FALSE(out.hit);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(SpecCache, FillThenLoadHitsAndSetsSr)
{
    SpecCache c(tinyConfig());
    ASSERT_TRUE(c.fill(0x1000).ok);
    auto out = c.load(0x1004);
    EXPECT_TRUE(out.hit);
    EXPECT_EQ(c.srMask(0x1000), WordMask(1) << 1);
    EXPECT_EQ(c.readSetLines(), 1u);
}

TEST(SpecCache, FirstAccessIsL2HitThenL1Hit)
{
    SpecCache c(tinyConfig());
    c.fill(0x1000);
    // fill() touches the L1, so the first access is already an L1 hit.
    EXPECT_EQ(c.load(0x1000).latency, 1u);
    EXPECT_EQ(c.load(0x1000).latency, 1u);
}

TEST(SpecCache, StoreSetsSmAndWriteSet)
{
    SpecCache c(tinyConfig());
    c.fill(0x2000);
    auto out = c.store(0x2008);
    EXPECT_TRUE(out.hit);
    EXPECT_FALSE(out.needsWriteBack);
    EXPECT_EQ(c.smMask(0x2000), WordMask(1) << 2);
    auto ws = c.writeSet();
    ASSERT_EQ(ws.size(), 1u);
    EXPECT_EQ(ws[0].lineAddr, 0x2000u);
    EXPECT_EQ(ws[0].smMask, WordMask(1) << 2);
}

TEST(SpecCache, StoreMissesWithoutTag)
{
    SpecCache c(tinyConfig());
    EXPECT_FALSE(c.store(0x3000).hit);
}

TEST(SpecCache, DirtyLineDemandsWriteBackOnFirstSpecWrite)
{
    SpecCache c(tinyConfig());
    c.fill(0x1000);
    c.store(0x1000);
    c.commitSpec(0); // line is now committed dirty (owned)
    EXPECT_TRUE(c.isDirty(0x1000));

    auto out = c.store(0x1004);
    EXPECT_TRUE(out.needsWriteBack);
    EXPECT_FALSE(c.isDirty(0x1000)); // dirty data handed to memory

    // Second speculative write to the same line: no more write-back.
    EXPECT_FALSE(c.store(0x1008).needsWriteBack);
}

TEST(SpecCache, CommitClearsSpecBitsAndMarksDirty)
{
    SpecCache c(tinyConfig());
    c.fill(0x1000);
    c.load(0x1000);
    c.store(0x1004);
    c.commitSpec(0);
    EXPECT_EQ(c.srMask(0x1000), 0u);
    EXPECT_EQ(c.smMask(0x1000), 0u);
    EXPECT_TRUE(c.isDirty(0x1000));
    EXPECT_TRUE(c.writeSet().empty());
    EXPECT_EQ(c.readSetLines(), 0u);
}

TEST(SpecCache, AbortDropsSpeculativeWords)
{
    SpecCache c(tinyConfig());
    c.fill(0x1000);
    c.store(0x1004);
    c.abortSpec();
    EXPECT_EQ(c.smMask(0x1000), 0u);
    // The speculatively written word is no longer valid, but the rest
    // of the line still is.
    EXPECT_TRUE(c.load(0x1000).hit);
    EXPECT_FALSE(c.load(0x1004).hit);
}

TEST(SpecCache, AbortInvalidatesSpecOnlyLine)
{
    SpecCache c(tinyConfig());
    c.fill(0x1000);
    c.store(0x1004);
    c.abortSpec();
    // Word 1 was speculative-only: reading it now must miss.
    auto out = c.load(0x1004);
    EXPECT_FALSE(out.hit);
}

TEST(SpecCache, InvalidateReportsSrOverlap)
{
    SpecCache c(tinyConfig());
    c.fill(0x1000);
    c.load(0x1004);
    auto out = c.invalidate(0x1000, WordMask(1) << 1);
    EXPECT_TRUE(out.srOverlap);
}

TEST(SpecCache, InvalidateNoOverlapOnDisjointWords)
{
    SpecCache c(tinyConfig());
    c.fill(0x1000);
    c.load(0x1004); // word 1
    auto out = c.invalidate(0x1000, WordMask(1) << 3);
    EXPECT_FALSE(out.srOverlap);
    // Ghost: SR bits survive the invalidation.
    EXPECT_EQ(c.srMask(0x1000), WordMask(1) << 1);
    // A later invalidation hitting word 1 still sees the read set.
    auto out2 = c.invalidate(0x1000, WordMask(1) << 1);
    EXPECT_TRUE(out2.srOverlap);
}

TEST(SpecCache, InvalidateKeepsOwnSpeculativeWords)
{
    SpecCache c(tinyConfig());
    c.fill(0x1000);
    c.store(0x1004);
    c.invalidate(0x1000, WordMask(1) << 0);
    // Our own speculative word is still there.
    EXPECT_TRUE(c.load(0x1004).hit);
    // The invalidated (committed) word is gone.
    EXPECT_FALSE(c.load(0x1000).hit);
}

TEST(SpecCache, InvalidateUnknownLineIsNoop)
{
    SpecCache c(tinyConfig());
    auto out = c.invalidate(0x9000, ~WordMask(0));
    EXPECT_FALSE(out.srOverlap);
    EXPECT_FALSE(out.smOverlap);
}

TEST(SpecCache, FlushLineClearsDirtyKeepsGhost)
{
    SpecCache c(tinyConfig());
    c.fill(0x1000);
    c.store(0x1000);
    c.commitSpec(0);
    // New transaction reads the line, then the directory requests it.
    c.load(0x1004);
    EXPECT_TRUE(c.flushLine(0x1000));
    EXPECT_FALSE(c.isDirty(0x1000));
    EXPECT_EQ(c.srMask(0x1000), WordMask(1) << 1); // ghost SR kept
    EXPECT_FALSE(c.flushLine(0x1000));             // nothing left
}

TEST(SpecCache, EvictionPrefersNonSpeculativeVictims)
{
    auto cfg = tinyConfig();
    SpecCache c(cfg);
    // Fill one full set (4 sets, so stride = 4 * 32 = 128 bytes).
    const Addr stride = 128;
    for (unsigned i = 0; i < cfg.l2Assoc; ++i)
        ASSERT_TRUE(c.fill(0x10000 + i * stride).ok);
    // Make way 0's line speculative.
    c.load(0x10000);
    // Fill a conflicting line: must evict a non-speculative way.
    auto out = c.fill(0x10000 + cfg.l2Assoc * stride);
    ASSERT_TRUE(out.ok);
    EXPECT_TRUE(c.present(0x10000)); // speculative line survived
}

TEST(SpecCache, OverflowWhenAllWaysSpeculative)
{
    auto cfg = tinyConfig();
    SpecCache c(cfg);
    const Addr stride = 128;
    for (unsigned i = 0; i < cfg.l2Assoc; ++i) {
        ASSERT_TRUE(c.fill(0x10000 + i * stride).ok);
        c.load(0x10000 + i * stride);
    }
    auto out = c.fill(0x10000 + cfg.l2Assoc * stride);
    EXPECT_FALSE(out.ok);
    EXPECT_TRUE(out.overflow);
    EXPECT_EQ(c.stats().overflows, 1u);
}

TEST(SpecCache, DirtyEvictionReportsAddress)
{
    auto cfg = tinyConfig();
    SpecCache c(cfg);
    const Addr stride = 128;
    c.fill(0x10000);
    c.store(0x10000);
    c.commitSpec(0); // dirty
    for (unsigned i = 1; i < cfg.l2Assoc; ++i)
        c.fill(0x10000 + i * stride);
    // Victim selection is LRU among non-speculative lines; the dirty
    // line is the oldest.
    auto out = c.fill(0x10000 + cfg.l2Assoc * stride);
    ASSERT_TRUE(out.ok);
    EXPECT_TRUE(out.evictedDirty);
    EXPECT_EQ(out.evictedAddr, 0x10000u);
}

TEST(SpecCache, LineGranularityUsesFullMask)
{
    auto cfg = tinyConfig();
    cfg.granularity = Granularity::Line;
    SpecCache c(cfg);
    c.fill(0x1000);
    c.load(0x1004);
    EXPECT_EQ(c.srMask(0x1000), c.fullMask());
}

TEST(SpecCache, WordGranularityOwnWriteDoesNotSetSr)
{
    SpecCache c(tinyConfig());
    c.fill(0x1000);
    c.store(0x1004);
    c.load(0x1004); // reading our own speculative word
    EXPECT_EQ(c.srMask(0x1000), 0u);
}

TEST(SpecCache, GhostRefillRestoresData)
{
    SpecCache c(tinyConfig());
    c.fill(0x1000);
    c.load(0x1004);
    c.invalidate(0x1000, ~WordMask(0)); // ghost with SR
    EXPECT_FALSE(c.load(0x1000).hit);
    ASSERT_TRUE(c.fill(0x1000).ok);     // refill in place
    EXPECT_TRUE(c.load(0x1000).hit);
    // SR from before is still tracked.
    EXPECT_NE(c.srMask(0x1000) & (WordMask(1) << 1), 0u);
}

TEST(SpecCache, MaskForRespectesGranularity)
{
    SpecCache w(tinyConfig());
    EXPECT_EQ(w.maskFor(0x1008), WordMask(1) << 2);
    auto cfg = tinyConfig();
    cfg.granularity = Granularity::Line;
    SpecCache l(cfg);
    EXPECT_EQ(l.maskFor(0x1008), l.fullMask());
}

TEST(SpecCache, StatsCountAccesses)
{
    SpecCache c(tinyConfig());
    c.load(0x1000);              // miss
    c.fill(0x1000);
    c.load(0x1000);              // hit
    c.store(0x1004);             // hit
    EXPECT_EQ(c.stats().loads, 2u);
    EXPECT_EQ(c.stats().stores, 1u);
    EXPECT_EQ(c.stats().misses, 1u);
    EXPECT_EQ(c.stats().fills, 1u);
}

} // namespace
} // namespace tcc
