/**
 * @file
 * Property-style parameterized sweeps over cache geometries: the
 * speculative cache invariants must hold for every combination of line
 * size, associativity, capacity, and tracking granularity.
 *
 * Invariants checked per geometry:
 *   1. fill -> load hits; untouched addresses miss;
 *   2. speculative lines are never evicted (overflow is reported
 *      instead) and commit/abort always empties the write set;
 *   3. the write set reported to the commit engine equals exactly the
 *      set of speculatively stored lines/words;
 *   4. abort discards speculative words, commit retains them as dirty;
 *   5. random operation sequences never corrupt the LRU/valid state
 *      (exercised via a mixed op fuzz loop with model checking).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cache/spec_cache.hh"
#include "sim/random.hh"

namespace tcc {
namespace {

struct Geometry {
    std::uint32_t lineBytes;
    std::uint32_t l2Bytes;
    std::uint32_t l2Assoc;
    Granularity gran;
};

std::string
geomName(const ::testing::TestParamInfo<Geometry> &info)
{
    const auto &g = info.param;
    return "line" + std::to_string(g.lineBytes) + "_l2x" +
           std::to_string(g.l2Bytes) + "_a" +
           std::to_string(g.l2Assoc) +
           (g.gran == Granularity::Word ? "_word" : "_line");
}

class CacheGeometry : public ::testing::TestWithParam<Geometry>
{
  protected:
    CacheConfig
    cfg() const
    {
        const auto &g = GetParam();
        CacheConfig c;
        c.lineBytes = g.lineBytes;
        c.l1Bytes = g.lineBytes * 4; // 4 lines, 2-way -> 2 sets
        c.l1Assoc = 2;
        c.l2Bytes = g.l2Bytes;
        c.l2Assoc = g.l2Assoc;
        c.granularity = g.gran;
        return c;
    }
};

TEST_P(CacheGeometry, FillLoadStoreRoundTrip)
{
    SpecCache c(cfg());
    const Addr base = 0x4000;
    ASSERT_TRUE(c.fill(base).ok);
    EXPECT_TRUE(c.load(base).hit);
    EXPECT_TRUE(c.store(base + 4).hit);
    EXPECT_FALSE(c.load(base + 16 * cfg().lineBytes).hit);
}

TEST_P(CacheGeometry, WriteSetMatchesStores)
{
    SpecCache c(cfg());
    std::set<Addr> stored_lines;
    Rng rng(7);
    for (int i = 0; i < 40; ++i) {
        const Addr a = 0x10000 + rng.below(64) * 4;
        if (!c.present(a) && !c.fill(a).ok)
            continue; // overflow under the tiniest geometry
        if (c.store(a).hit)
            stored_lines.insert(c.lineAlign(a));
    }
    std::set<Addr> ws_lines;
    for (const auto &l : c.writeSet()) {
        EXPECT_NE(l.smMask, 0u);
        ws_lines.insert(l.lineAddr);
    }
    EXPECT_EQ(ws_lines, stored_lines);
}

TEST_P(CacheGeometry, CommitEmptiesSpeculativeState)
{
    SpecCache c(cfg());
    Rng rng(9);
    for (int i = 0; i < 20; ++i) {
        const Addr a = 0x20000 + rng.below(32) * cfg().lineBytes;
        if (c.present(a) || c.fill(a).ok) {
            c.load(a);
            c.store(a + 4);
        }
    }
    c.commitSpec(5);
    EXPECT_TRUE(c.writeSet().empty());
    EXPECT_EQ(c.readSetLines(), 0u);
}

TEST_P(CacheGeometry, AbortEmptiesSpeculativeState)
{
    SpecCache c(cfg());
    Rng rng(11);
    for (int i = 0; i < 20; ++i) {
        const Addr a = 0x30000 + rng.below(32) * cfg().lineBytes;
        if (c.present(a) || c.fill(a).ok) {
            c.load(a);
            if (rng.chance(0.5))
                c.store(a);
        }
    }
    c.abortSpec();
    EXPECT_TRUE(c.writeSet().empty());
    EXPECT_EQ(c.readSetLines(), 0u);
}

TEST_P(CacheGeometry, SpeculativeLinesSurviveCapacityPressure)
{
    SpecCache c(cfg());
    // Pin one speculative line, then stream many conflicting fills.
    const Addr pinned = 0x50000;
    ASSERT_TRUE(c.fill(pinned).ok);
    c.load(pinned);
    const std::uint32_t sets =
        cfg().l2Bytes / cfg().lineBytes / cfg().l2Assoc;
    for (int i = 1; i <= 64; ++i) {
        const Addr a = pinned + static_cast<Addr>(i) * sets *
                                    cfg().lineBytes;
        c.fill(a); // may overflow; must never evict the pinned line
    }
    EXPECT_TRUE(c.present(pinned));
    EXPECT_NE(c.srMask(pinned), 0u);
}

TEST_P(CacheGeometry, FuzzAgainstReferenceModel)
{
    SpecCache c(cfg());
    Rng rng(13);
    // Reference model of the current transaction's footprint.
    std::set<Addr> model_sm_words;
    const Addr pool = 0x80000;
    const std::uint32_t pool_words = 128;

    for (int step = 0; step < 600; ++step) {
        const Addr a = pool + rng.below(pool_words) * 4;
        const double roll = rng.uniform();
        if (roll < 0.45) {
            auto out = c.load(a);
            if (!out.hit) {
                if (!c.fill(a).ok)
                    break; // overflow: stop fuzzing this geometry
                ASSERT_TRUE(c.load(a).hit);
            }
        } else if (roll < 0.9) {
            auto out = c.store(a);
            if (!out.hit) {
                if (!c.fill(a).ok)
                    break;
                out = c.store(a);
                ASSERT_TRUE(out.hit);
            }
            model_sm_words.insert(a);
        } else {
            c.invalidate(c.lineAlign(a), c.maskFor(a));
            // Invalidation never destroys the transaction's own
            // speculative words.
        }
        // Check: every modeled speculative word is still tracked.
        for (Addr w : model_sm_words) {
            EXPECT_NE(c.smMask(w) & c.maskFor(w), 0u)
                << "lost SM word at " << std::hex << w;
        }
    }
    c.abortSpec();
    EXPECT_TRUE(c.writeSet().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(Geometry{32, 1024, 4, Granularity::Word},
                      Geometry{32, 1024, 4, Granularity::Line},
                      Geometry{64, 4096, 8, Granularity::Word},
                      Geometry{16, 512, 2, Granularity::Word},
                      Geometry{128, 8192, 4, Granularity::Word},
                      Geometry{32, 2048, 8, Granularity::Line},
                      Geometry{256, 16384, 4, Granularity::Word}),
    geomName);

} // namespace
} // namespace tcc
