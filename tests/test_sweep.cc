/**
 * @file
 * SweepRunner: scheduling semantics (completion, ordering, errors,
 * reuse, TCC_JOBS) and the determinism contract - a batch of
 * simulations run through the pool must be bit-identical to the same
 * batch run serially, because every System is thread-confined.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/sweep.hh"
#include "core/system.hh"
#include "workload/scripted_source.hh"
#include "workload/synthetic_app.hh"

namespace tcc {
namespace {

TEST(SweepRunner, RunsEveryJob)
{
    SweepRunner runner(4);
    EXPECT_EQ(runner.jobs(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        runner.submit([&count]() { ++count; });
    runner.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(SweepRunner, SingleJobRunsInline)
{
    SweepRunner runner(1);
    EXPECT_EQ(runner.jobs(), 1u);
    // Inline mode: submission order IS execution order, observable
    // without synchronization because everything runs on this thread.
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        runner.submit([&order, i]() { order.push_back(i); });
    runner.wait();
    std::vector<int> want(10);
    std::iota(want.begin(), want.end(), 0);
    EXPECT_EQ(order, want);
}

TEST(SweepRunner, WaitRethrowsJobException)
{
    SweepRunner runner(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i) {
        runner.submit([&count, i]() {
            if (i == 3)
                throw std::runtime_error("job 3 failed");
            ++count;
        });
    }
    EXPECT_THROW(runner.wait(), std::runtime_error);
    // The other jobs still ran; the runner is reusable afterwards.
    EXPECT_EQ(count.load(), 7);
    runner.submit([&count]() { ++count; });
    EXPECT_NO_THROW(runner.wait());
    EXPECT_EQ(count.load(), 8);
}

TEST(SweepRunner, ReusableAcrossWaves)
{
    SweepRunner runner(3);
    std::atomic<int> count{0};
    for (int wave = 0; wave < 5; ++wave) {
        for (int i = 0; i < 20; ++i)
            runner.submit([&count]() { ++count; });
        runner.wait();
        EXPECT_EQ(count.load(), (wave + 1) * 20);
    }
}

TEST(SweepRunner, SweepIndexReturnsSubmissionOrder)
{
    SweepRunner runner(4);
    auto out = sweepIndex<std::size_t>(
        runner, 200, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 200u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(SweepRunner, DefaultJobsHonorsEnv)
{
    ASSERT_EQ(setenv("TCC_JOBS", "3", 1), 0);
    EXPECT_EQ(SweepRunner::defaultJobs(), 3u);
    ASSERT_EQ(setenv("TCC_JOBS", "0", 1), 0); // malformed: ignored
    EXPECT_GE(SweepRunner::defaultJobs(), 1u);
    ASSERT_EQ(unsetenv("TCC_JOBS"), 0);
    EXPECT_GE(SweepRunner::defaultJobs(), 1u);
}

// ---------------------------------------------------------------------
// Determinism: parallel == serial, bit for bit.
// ---------------------------------------------------------------------

struct SimResult {
    std::uint64_t cycles = 0;
    std::uint64_t events = 0;
    std::uint64_t commits = 0;
    std::uint64_t violations = 0;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    bool completed = false;
    bool checkerOk = false;
    bool quiesced = false;

    bool
    operator==(const SimResult &o) const
    {
        return cycles == o.cycles && events == o.events &&
               commits == o.commits && violations == o.violations &&
               messages == o.messages && bytes == o.bytes &&
               completed == o.completed && checkerOk == o.checkerOk &&
               quiesced == o.quiesced;
    }
};

struct SimConfig {
    std::uint64_t seed;
    std::uint32_t procs;
    Granularity gran;
    Tick jitter;
};

/** One self-contained simulation; safe to run on any worker thread. */
SimResult
runOne(const SimConfig &c)
{
    SystemConfig cfg;
    cfg.numProcs = c.procs;
    cfg.check.serial = true;
    cfg.check.invariants = true;
    cfg.cache.granularity = c.gran;
    cfg.network.mesh.reorderJitter = c.jitter;
    cfg.network.mesh.seed = c.seed;
    System sys(cfg);

    std::vector<ScriptedSource> srcs(c.procs);
    Rng rng(c.seed);
    for (NodeId p = 0; p < c.procs; ++p) {
        for (int t = 0; t < 12; ++t) {
            std::vector<TxOp> ops;
            ops.push_back(TxOp::compute(
                1 + static_cast<std::uint32_t>(rng.below(30))));
            const Addr hot = 0xA0000000ull + 4 * rng.below(4);
            ops.push_back(TxOp::load(hot));
            ops.push_back(TxOp::storeAdd(hot, 1));
            ops.push_back(TxOp::store(
                0x1000000ull * (p + 1) + 4 * rng.below(32),
                rng.next()));
            srcs[p].add(std::move(ops));
        }
        sys.setSource(p, &srcs[p]);
    }

    const RunResult res = sys.run(1'000'000'000ull);
    SimResult out;
    out.cycles = res.cycles;
    out.events = res.events;
    out.completed = res.completed;
    for (NodeId p = 0; p < c.procs; ++p) {
        out.commits += sys.proc(p).stats().txnsCommitted;
        out.violations += sys.proc(p).stats().violations;
    }
    out.messages = sys.network().stats().messages;
    out.bytes = sys.network().stats().totalBytes;
    out.checkerOk = res.serial.ok && res.invariants.ok;
    out.quiesced = res.quiesced;
    return out;
}

TEST(SweepDeterminism, ParallelBitIdenticalToSerial)
{
    std::vector<SimConfig> configs;
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull, 6ull}) {
        configs.push_back({seed, 4, Granularity::Word, 0});
        configs.push_back({seed, 8, Granularity::Line, 0});
        configs.push_back({seed, 4, Granularity::Word, 25});
    }

    SweepRunner serial(1);
    const auto serialResults = sweepIndex<SimResult>(
        serial, configs.size(),
        [&](std::size_t i) { return runOne(configs[i]); });

    SweepRunner pool(4);
    const auto poolResults = sweepIndex<SimResult>(
        pool, configs.size(),
        [&](std::size_t i) { return runOne(configs[i]); });

    ASSERT_EQ(serialResults.size(), poolResults.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        SCOPED_TRACE("config " + std::to_string(i) + " (seed " +
                     std::to_string(configs[i].seed) + ", procs " +
                     std::to_string(configs[i].procs) + ")");
        EXPECT_TRUE(serialResults[i].completed);
        EXPECT_TRUE(serialResults[i].checkerOk);
        EXPECT_TRUE(serialResults[i].quiesced);
        EXPECT_TRUE(serialResults[i] == poolResults[i])
            << "parallel run diverged from serial run";
    }

    // And a second parallel pass reproduces the first (run-to-run
    // determinism, not just serial-vs-parallel).
    SweepRunner pool2(3);
    const auto again = sweepIndex<SimResult>(
        pool2, configs.size(),
        [&](std::size_t i) { return runOne(configs[i]); });
    for (std::size_t i = 0; i < configs.size(); ++i)
        EXPECT_TRUE(again[i] == poolResults[i]) << "config " << i;
}

} // namespace
} // namespace tcc
