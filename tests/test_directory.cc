/**
 * @file
 * Direct unit tests of the Directory controller: NSTID / Skip Vector
 * sequencing (the paper's Figure 5 walk-through), probe deferral,
 * mark/commit/invalidate/ack flow, aborts, stale write-back dropping
 * (Section 3.3 race elimination), and load stalling on marked lines.
 *
 * The directory is driven by hand-crafted messages over an
 * IdealNetwork; a test fixture captures everything the directory sends
 * to each node.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "directory/directory.hh"
#include "noc/network.hh"
#include "sim/event_queue.hh"

namespace tcc {
namespace {

class DirectoryTest : public ::testing::Test
{
  protected:
    static constexpr std::uint32_t kNodes = 4;
    static constexpr NodeId kDir = 0;

    DirectoryTest()
        : net(eq, kNodes),
          dir(kDir, kNodes, eq, net, DirectoryConfig{})
    {
        for (NodeId n = 0; n < kNodes; ++n) {
            net.connect(n, [this, n](const Message &m) {
                if (n == kDir) {
                    dir.receive(m);
                } else {
                    inbox[n].push_back(m);
                }
            });
        }
    }

    /** Send @p msg to the directory and run the queue dry. */
    void
    send(Message msg)
    {
        msg.dst = kDir;
        msg.bytes = 16;
        net.send(msg);
        eq.run();
    }

    Message
    mk(MsgType t, NodeId src, Tid tid = kInvalidTid, Addr addr = 0)
    {
        Message m;
        m.type = t;
        m.src = src;
        m.tid = tid;
        m.addr = addr;
        m.wordMask = ~0ull;
        return m;
    }

    /** Pop all messages of a given type delivered to @p node. */
    std::vector<Message>
    take(NodeId node, MsgType t)
    {
        std::vector<Message> out;
        auto &box = inbox[node];
        for (auto it = box.begin(); it != box.end();) {
            if (it->type == t) {
                out.push_back(*it);
                it = box.erase(it);
            } else {
                ++it;
            }
        }
        return out;
    }

    EventQueue eq;
    IdealNetwork net;
    Directory dir;
    std::map<NodeId, std::vector<Message>> inbox;
};

TEST_F(DirectoryTest, StartsServingTidZero)
{
    EXPECT_EQ(dir.nstid(), 0u);
}

TEST_F(DirectoryTest, SkipAdvancesNstid)
{
    send(mk(MsgType::Skip, 1, 0));
    EXPECT_EQ(dir.nstid(), 1u);
}

TEST_F(DirectoryTest, SkipVectorBuffersOutOfOrderSkips)
{
    // Figure 5: skips for TIDs 1, 2, 4 arrive while 0 is outstanding.
    send(mk(MsgType::Skip, 1, 1));
    send(mk(MsgType::Skip, 2, 2));
    send(mk(MsgType::Skip, 3, 4));
    EXPECT_EQ(dir.nstid(), 0u);
    // When 0 is finally skipped the vector shifts through 1 and 2 but
    // stops at the hole at 3.
    send(mk(MsgType::Skip, 1, 0));
    EXPECT_EQ(dir.nstid(), 3u);
    send(mk(MsgType::Skip, 2, 3));
    EXPECT_EQ(dir.nstid(), 5u);
}

TEST_F(DirectoryTest, EarlyProbeAnswersImmediately)
{
    send(mk(MsgType::Probe, 1)); // tid == kInvalidTid
    auto replies = take(1, MsgType::ProbeReply);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].nstid, 0u);
}

TEST_F(DirectoryTest, WriteProbeDeferredUntilServed)
{
    auto p = mk(MsgType::Probe, 1, 2);
    p.wantWrite = true;
    send(p);
    EXPECT_TRUE(take(1, MsgType::ProbeReply).empty());
    EXPECT_EQ(dir.stats().probesDeferred, 1u);

    send(mk(MsgType::Skip, 2, 0));
    send(mk(MsgType::Skip, 2, 1));
    auto replies = take(1, MsgType::ProbeReply);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].nstid, 2u);
    EXPECT_EQ(replies[0].tid, 2u);
}

TEST_F(DirectoryTest, ReadProbeReleasedWhenNstidPasses)
{
    auto p = mk(MsgType::Probe, 1, 1);
    p.wantWrite = false;
    send(p);
    EXPECT_TRUE(take(1, MsgType::ProbeReply).empty());
    send(mk(MsgType::Skip, 2, 0));
    auto replies = take(1, MsgType::ProbeReply);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_GE(replies[0].nstid, 1u);
}

TEST_F(DirectoryTest, CommitUpgradesMarkedLinesAndInvalidatesSharers)
{
    // Nodes 1 and 2 load line 0x100 -> both become sharers.
    send(mk(MsgType::LoadReq, 1, kInvalidTid, 0x100));
    send(mk(MsgType::LoadReq, 2, kInvalidTid, 0x100));
    EXPECT_EQ(take(1, MsgType::LoadReply).size(), 1u);
    EXPECT_EQ(take(2, MsgType::LoadReply).size(), 1u);

    // Node 1 commits TID 0 writing line 0x100.
    send(mk(MsgType::Mark, 1, 0, 0x100));
    auto c = mk(MsgType::Commit, 1, 0);
    c.numMarks = 1;
    send(c);

    // Node 2 must be invalidated; NSTID must NOT advance until the
    // ack arrives (race elimination).
    auto invs = take(2, MsgType::Inv);
    ASSERT_EQ(invs.size(), 1u);
    EXPECT_EQ(invs[0].addr, 0x100u);
    EXPECT_EQ(invs[0].tid, 0u);
    EXPECT_EQ(dir.nstid(), 0u);

    send(mk(MsgType::InvAck, 2, 0, 0x100));
    EXPECT_EQ(dir.nstid(), 1u);
    EXPECT_EQ(dir.stats().commitsServed, 1u);
    EXPECT_TRUE(dir.quiesced());
}

TEST_F(DirectoryTest, CommitterIsNotInvalidated)
{
    send(mk(MsgType::LoadReq, 1, kInvalidTid, 0x100));
    take(1, MsgType::LoadReply);
    send(mk(MsgType::Mark, 1, 0, 0x100));
    auto c = mk(MsgType::Commit, 1, 0);
    c.numMarks = 1;
    send(c);
    EXPECT_TRUE(take(1, MsgType::Inv).empty());
    EXPECT_EQ(dir.nstid(), 1u); // no sharers to ack
}

TEST_F(DirectoryTest, CommitWaitsForLateMarks)
{
    // Commit arrives claiming 2 marks but only 1 has landed.
    send(mk(MsgType::Mark, 1, 0, 0x100));
    auto c = mk(MsgType::Commit, 1, 0);
    c.numMarks = 2;
    send(c);
    EXPECT_EQ(dir.nstid(), 0u);
    EXPECT_EQ(dir.stats().commitsServed, 0u);
    send(mk(MsgType::Mark, 1, 0, 0x120));
    EXPECT_EQ(dir.nstid(), 1u);
    EXPECT_EQ(dir.stats().commitsServed, 1u);
}

TEST_F(DirectoryTest, LoadToMarkedLineStallsUntilCommit)
{
    send(mk(MsgType::Mark, 1, 0, 0x100));
    send(mk(MsgType::LoadReq, 2, kInvalidTid, 0x100));
    EXPECT_TRUE(take(2, MsgType::LoadReply).empty());
    EXPECT_EQ(dir.stats().loadsStalled, 1u);

    auto c = mk(MsgType::Commit, 1, 0);
    c.numMarks = 1;
    send(c);
    // After the commit the line is owned by node 1, so the stalled
    // load is served through a DataReq to the new owner.
    auto reqs = take(1, MsgType::DataReq);
    ASSERT_EQ(reqs.size(), 1u);
    auto f = mk(MsgType::FlushData, 1, kInvalidTid, 0x100);
    f.hadData = true;
    send(f);
    EXPECT_EQ(take(2, MsgType::LoadReply).size(), 1u);
}

TEST_F(DirectoryTest, AbortClearsMarksAndRetiresTid)
{
    send(mk(MsgType::Mark, 1, 0, 0x100));
    send(mk(MsgType::LoadReq, 2, kInvalidTid, 0x100));
    EXPECT_TRUE(take(2, MsgType::LoadReply).empty());

    send(mk(MsgType::Abort, 1, 0));
    EXPECT_EQ(dir.nstid(), 1u);
    EXPECT_EQ(dir.stats().abortsServed, 1u);
    // The stalled load is released and served from memory.
    EXPECT_EQ(take(2, MsgType::LoadReply).size(), 1u);
    EXPECT_TRUE(dir.quiesced());
}

TEST_F(DirectoryTest, AbortForFutureTidActsAsSkip)
{
    send(mk(MsgType::Abort, 1, 2));
    EXPECT_EQ(dir.nstid(), 0u);
    send(mk(MsgType::Skip, 1, 0));
    send(mk(MsgType::Skip, 1, 1));
    EXPECT_EQ(dir.nstid(), 3u); // 2 was pre-retired by the abort
}

TEST_F(DirectoryTest, StaleWriteBackIsDropped)
{
    // Node 1 commits line 0x100 at TID 0, then node 2 commits the same
    // line at TID 1. A write-back tagged TID 0 arriving afterwards is
    // stale and must be dropped (Section 3.3).
    send(mk(MsgType::LoadReq, 1, kInvalidTid, 0x100));
    take(1, MsgType::LoadReply);
    send(mk(MsgType::Mark, 1, 0, 0x100));
    auto c0 = mk(MsgType::Commit, 1, 0);
    c0.numMarks = 1;
    send(c0);

    send(mk(MsgType::LoadReq, 2, kInvalidTid, 0x100));
    take(1, MsgType::DataReq);
    auto f = mk(MsgType::FlushData, 1, kInvalidTid, 0x100);
    f.hadData = true;
    send(f);
    take(2, MsgType::LoadReply);

    send(mk(MsgType::Mark, 2, 1, 0x100));
    auto c1 = mk(MsgType::Commit, 2, 1);
    c1.numMarks = 1;
    send(c1);
    // Node 1 still shares the line; ack its invalidation.
    take(1, MsgType::Inv);
    send(mk(MsgType::InvAck, 1, 1, 0x100));
    EXPECT_EQ(dir.nstid(), 2u);

    auto wb_stale = mk(MsgType::WriteBack, 1, 0, 0x100);
    send(wb_stale);
    EXPECT_EQ(dir.stats().writeBacksDropped, 1u);

    auto wb_fresh = mk(MsgType::WriteBack, 2, 1, 0x100);
    send(wb_fresh);
    EXPECT_EQ(dir.stats().writeBacksAccepted, 1u);
}

TEST_F(DirectoryTest, KeepSharerAckStaysInSharersList)
{
    // Nodes 1 and 2 share line 0x100; node 1 commits word 0 only.
    send(mk(MsgType::LoadReq, 1, kInvalidTid, 0x100));
    send(mk(MsgType::LoadReq, 2, kInvalidTid, 0x100));
    take(1, MsgType::LoadReply);
    take(2, MsgType::LoadReply);

    auto m = mk(MsgType::Mark, 1, 0, 0x100);
    m.wordMask = 0x1;
    send(m);
    auto c = mk(MsgType::Commit, 1, 0);
    c.numMarks = 1;
    send(c);
    take(2, MsgType::Inv);
    // Node 2 acks but asks to remain a sharer (it still reads word 3).
    auto ack = mk(MsgType::InvAck, 2, 0, 0x100);
    ack.keepSharer = true;
    send(ack);
    EXPECT_EQ(dir.nstid(), 1u);

    // A second commit by node 1 must invalidate node 2 again.
    auto m2 = mk(MsgType::Mark, 1, 1, 0x100);
    m2.wordMask = 0x8;
    send(m2);
    auto c2 = mk(MsgType::Commit, 1, 1);
    c2.numMarks = 1;
    send(c2);
    EXPECT_EQ(take(2, MsgType::Inv).size(), 1u);
    send(mk(MsgType::InvAck, 2, 1, 0x100));
    EXPECT_EQ(dir.nstid(), 2u);
}

TEST_F(DirectoryTest, DataReqHadNoDataWaitsForWriteBack)
{
    // Node 1 owns line 0x100.
    send(mk(MsgType::LoadReq, 1, kInvalidTid, 0x100));
    take(1, MsgType::LoadReply);
    send(mk(MsgType::Mark, 1, 0, 0x100));
    auto c = mk(MsgType::Commit, 1, 0);
    c.numMarks = 1;
    send(c);

    // Node 2 loads; directory forwards to the owner, who already
    // evicted (write-back in flight).
    send(mk(MsgType::LoadReq, 2, kInvalidTid, 0x100));
    take(1, MsgType::DataReq);
    auto f = mk(MsgType::FlushData, 1, kInvalidTid, 0x100);
    f.hadData = false;
    send(f);
    EXPECT_TRUE(take(2, MsgType::LoadReply).empty());

    // The write-back lands: the stalled load is finally served.
    send(mk(MsgType::WriteBack, 1, 0, 0x100));
    EXPECT_EQ(take(2, MsgType::LoadReply).size(), 1u);
    EXPECT_TRUE(dir.quiesced());
}

TEST_F(DirectoryTest, OwnerLoadOfPartialLineServedFromMemory)
{
    // Node 1 owns the line but lost some words to an unrelated
    // invalidation before committing; its own fill request must be
    // served from memory rather than deadlocking on a write-back.
    send(mk(MsgType::LoadReq, 1, kInvalidTid, 0x100));
    take(1, MsgType::LoadReply);
    send(mk(MsgType::Mark, 1, 0, 0x100));
    auto c = mk(MsgType::Commit, 1, 0);
    c.numMarks = 1;
    send(c);

    send(mk(MsgType::LoadReq, 1, kInvalidTid, 0x100));
    EXPECT_EQ(take(1, MsgType::LoadReply).size(), 1u);
    EXPECT_TRUE(dir.quiesced());
}

TEST_F(DirectoryTest, OccupancyAndWorkingSetAreSampled)
{
    send(mk(MsgType::LoadReq, 1, kInvalidTid, 0x100));
    take(1, MsgType::LoadReply);
    send(mk(MsgType::Mark, 1, 0, 0x100));
    auto c = mk(MsgType::Commit, 1, 0);
    c.numMarks = 1;
    send(c);
    EXPECT_EQ(dir.stats().commitOccupancy.count(), 1u);
    EXPECT_EQ(dir.stats().workingSet.count(), 1u);
    EXPECT_GT(dir.stats().commitOccupancy.mean(), 0.0);
}

TEST_F(DirectoryTest, SkipForRetiredTidPanics)
{
    send(mk(MsgType::Skip, 1, 0));
    EXPECT_DEATH(send(mk(MsgType::Skip, 1, 0)), "retired");
}

} // namespace
} // namespace tcc
