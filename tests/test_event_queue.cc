/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace tcc {
namespace {

TEST(EventQueue, StartsAtZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&]() {
        ++fired;
        if (fired < 5)
            eq.schedule(2, chain);
    };
    eq.schedule(1, chain);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 1u + 4 * 2u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ZeroDelayRunsAtCurrentTick)
{
    EventQueue eq;
    Tick seen = 12345;
    eq.schedule(7, [&] {
        eq.schedule(0, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 7u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 10; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 10u);
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.below(13);
        EXPECT_LT(v, 13u);
    }
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, LogNormalMedianRoughlyCorrect)
{
    Rng r(11);
    std::vector<double> v;
    for (int i = 0; i < 20001; ++i)
        v.push_back(r.logNormal(100.0, 0.5));
    std::sort(v.begin(), v.end());
    EXPECT_NEAR(v[10000], 100.0, 10.0);
}

TEST(Distribution, PercentilesAndMean)
{
    Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.sample(i);
    EXPECT_DOUBLE_EQ(d.mean(), 50.5);
    EXPECT_NEAR(d.percentile(90), 90.0, 1.0);
    EXPECT_NEAR(d.percentile(50), 50.0, 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
    EXPECT_EQ(d.count(), 100u);
}

TEST(Distribution, EmptyIsZero)
{
    Distribution d;
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(90), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
}

TEST(Distribution, SampleAfterPercentileQuery)
{
    Distribution d;
    d.sample(5);
    EXPECT_DOUBLE_EQ(d.percentile(50), 5.0);
    d.sample(100);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
}

} // namespace
} // namespace tcc
