/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/inline_function.hh"
#include "sim/pool.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace tcc {
namespace {

TEST(EventQueue, StartsAtZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&]() {
        ++fired;
        if (fired < 5)
            eq.schedule(2, chain);
    };
    eq.schedule(1, chain);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 1u + 4 * 2u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

// Regression: a caller that time-slices the simulation must see now()
// advance to the slice limit even when later events remain queued
// (previously now() stuck at the last executed event between slices).
TEST(EventQueue, RunUntilAdvancesNowToLimitWithEventsPending)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(500, [&] { ++fired; });
    eq.runUntil(100);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 100u);
    EXPECT_FALSE(eq.empty());

    // Relative scheduling between slices is anchored at the limit.
    eq.schedule(10, [&] { EXPECT_EQ(eq.now(), 110u); ++fired; });
    eq.runUntil(200);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 200u);

    // Events at exactly the limit still execute.
    eq.schedule(100, [&] { ++fired; });
    eq.runUntil(300);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 300u);

    eq.run();
    EXPECT_EQ(fired, 4);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, RunUntilOnEmptyQueueAdvancesTime)
{
    EventQueue eq;
    EXPECT_EQ(eq.runUntil(42), 0u);
    EXPECT_EQ(eq.now(), 42u);
}

// Same-tick FIFO must hold when some events reach the tick through the
// far-future overflow heap and others through the near wheel (the
// wheel window spans 256 ticks, so tick 1000 is "far" when scheduled
// at tick 0 and "near" when scheduled at tick 900).
TEST(EventQueue, SameTickFifoAcrossWheelAndOverflowPaths)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 4; ++i)
        eq.scheduleAt(1000, [&, i] { order.push_back(i); }); // overflow
    eq.scheduleAt(900, [&] {
        for (int i = 4; i < 8; ++i)
            eq.scheduleAt(1000, [&, i] { order.push_back(i); }); // wheel
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
    EXPECT_EQ(eq.now(), 1000u);
}

// Property test: under a random mix of near (wheel) and far (overflow)
// delays, events execute in exactly (when, scheduling-order) order.
TEST(EventQueue, PropertyRandomDelaysExecuteInScheduleOrder)
{
    Rng rng(2024);
    EventQueue eq;
    struct Rec {
        Tick when;
        int id;
    };
    std::vector<Rec> expected;
    std::vector<int> executed;
    int nextId = 0;

    // Seed events from the outside, then more from inside callbacks.
    std::function<void(int)> fire = [&](int id) {
        executed.push_back(id);
        if (nextId < 3000 && rng.below(2) == 0) {
            const int n = 1 + static_cast<int>(rng.below(3));
            for (int i = 0; i < n; ++i) {
                const Tick d = rng.below(16) == 0
                                   ? 200 + rng.below(2000) // far
                                   : rng.below(120);       // near
                const int id2 = nextId++;
                expected.push_back({eq.now() + d, id2});
                eq.schedule(d, [&fire, id2] { fire(id2); });
            }
        }
    };
    for (int i = 0; i < 200; ++i) {
        const Tick d = rng.below(4) == 0 ? 300 + rng.below(3000)
                                         : rng.below(250);
        const int id = nextId++;
        expected.push_back({d, id});
        eq.scheduleAt(d, [&fire, id] { fire(id); });
    }
    eq.run();

    // Stable sort by when == the exact required execution order, since
    // ids are assigned in scheduling order.
    std::stable_sort(expected.begin(), expected.end(),
                     [](const Rec &a, const Rec &b) {
                         return a.when < b.when;
                     });
    ASSERT_EQ(executed.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        ASSERT_EQ(executed[i], expected[i].id) << "at position " << i;
}

// The steady state must not allocate: once the pending-event
// population has hit its high-water mark, the node slab count stays
// fixed no matter how many more events flow through.
TEST(EventQueue, SteadyStateReusesNodes)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    std::function<void()> chain = [&] {
        if (++fired < 50000)
            eq.schedule(1 + fired % 97, chain);
    };
    for (int i = 0; i < 32; ++i)
        eq.schedule(i, chain);
    eq.runUntil(2000); // warm up past the high-water mark
    const std::size_t cap = eq.nodeCapacity();
    EXPECT_GT(cap, 0u);
    eq.run();
    EXPECT_EQ(eq.nodeCapacity(), cap);
    EXPECT_GE(fired, 50000u);
}

TEST(EventQueue, PendingCountsWheelAndOverflow)
{
    EventQueue eq;
    eq.schedule(1, [] {});    // wheel
    eq.schedule(10000, [] {}); // overflow
    EXPECT_EQ(eq.pending(), 2u);
    eq.step();
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 10000u);
}

TEST(EventQueue, LargeCaptureFallsBackToHeapAndStillRuns)
{
    EventQueue eq;
    char big[200];
    std::memset(big, 7, sizeof(big));
    int sum = 0;
    eq.schedule(3, [&sum, big] { sum = big[0] + big[199]; });
    eq.run();
    EXPECT_EQ(sum, 14);
}

TEST(InlineFunction, SmallCapturesStayInline)
{
    int x = 0;
    InlineFunction<48> f([&x] { x = 5; });
    EXPECT_TRUE(f.isInline());
    f();
    EXPECT_EQ(x, 5);
}

TEST(InlineFunction, LargeCapturesUseHeap)
{
    char big[64] = {};
    big[63] = 9;
    int out = 0;
    InlineFunction<48> f([&out, big] { out = big[63]; });
    EXPECT_FALSE(f.isInline());
    f();
    EXPECT_EQ(out, 9);
}

TEST(InlineFunction, MoveTransfersAndResetDestroys)
{
    auto counter = std::make_shared<int>(0);
    InlineFunction<48> a([counter] { ++*counter; });
    EXPECT_EQ(counter.use_count(), 2);

    InlineFunction<48> b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    EXPECT_EQ(counter.use_count(), 2); // moved, not copied
    b();
    EXPECT_EQ(*counter, 1);

    b.reset();
    EXPECT_FALSE(static_cast<bool>(b));
    EXPECT_EQ(counter.use_count(), 1); // capture destroyed
}

TEST(ObjectPool, RecyclesSlots)
{
    ObjectPool<int, 4> pool;
    int *a = pool.alloc(1);
    int *b = pool.alloc(2);
    EXPECT_EQ(pool.live(), 2u);
    EXPECT_EQ(*a, 1);
    pool.free(a);
    int *c = pool.alloc(3);
    EXPECT_EQ(c, a); // LIFO reuse of the freed slot
    EXPECT_EQ(*c, 3);
    EXPECT_EQ(*b, 2);
    pool.free(b);
    pool.free(c);
    EXPECT_EQ(pool.live(), 0u);
    EXPECT_EQ(pool.capacity(), 4u); // no second slab needed
}

TEST(EventQueue, ZeroDelayRunsAtCurrentTick)
{
    EventQueue eq;
    Tick seen = 12345;
    eq.schedule(7, [&] {
        eq.schedule(0, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 7u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 10; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 10u);
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.below(13);
        EXPECT_LT(v, 13u);
    }
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, LogNormalMedianRoughlyCorrect)
{
    Rng r(11);
    std::vector<double> v;
    for (int i = 0; i < 20001; ++i)
        v.push_back(r.logNormal(100.0, 0.5));
    std::sort(v.begin(), v.end());
    EXPECT_NEAR(v[10000], 100.0, 10.0);
}

TEST(Distribution, PercentilesAndMean)
{
    Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.sample(i);
    EXPECT_DOUBLE_EQ(d.mean(), 50.5);
    EXPECT_NEAR(d.percentile(90), 90.0, 1.0);
    EXPECT_NEAR(d.percentile(50), 50.0, 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
    EXPECT_EQ(d.count(), 100u);
}

TEST(Distribution, EmptyIsZero)
{
    Distribution d;
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(90), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
}

TEST(Distribution, SampleAfterPercentileQuery)
{
    Distribution d;
    d.sample(5);
    EXPECT_DOUBLE_EQ(d.percentile(50), 5.0);
    d.sample(100);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
}

TEST(Distribution, MinAndStddev)
{
    Distribution d;
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    d.sample(7);
    EXPECT_DOUBLE_EQ(d.min(), 7.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0); // < 2 samples
    d.sample(3);
    d.sample(11);
    EXPECT_DOUBLE_EQ(d.min(), 3.0);
    // Population stddev of {7, 3, 11}: mean 7, variance 32/3.
    EXPECT_NEAR(d.stddev(), std::sqrt(32.0 / 3.0), 1e-12);
}

TEST(Distribution, PercentileCacheInvalidation)
{
    // The sorted cache must be rebuilt after every mutation path:
    // sample(), merge(), and reset().
    Distribution d;
    for (int i = 1; i <= 10; ++i)
        d.sample(i);
    EXPECT_DOUBLE_EQ(d.percentile(100), 10.0); // cache built here
    d.sample(1000);
    EXPECT_DOUBLE_EQ(d.percentile(100), 1000.0);

    Distribution other;
    other.sample(-5);
    d.merge(other);
    EXPECT_DOUBLE_EQ(d.percentile(0), -5.0);
    EXPECT_DOUBLE_EQ(d.min(), -5.0);

    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.percentile(50), 0.0);
    d.sample(42);
    EXPECT_DOUBLE_EQ(d.percentile(50), 42.0);
}

} // namespace
} // namespace tcc
