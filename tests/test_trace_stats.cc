/**
 * @file
 * Tests for the trace-driven transaction source and the full
 * statistics dump.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/stats_dump.hh"
#include "core/system.hh"
#include "workload/scripted_source.hh"
#include "workload/trace_source.hh"

namespace tcc {
namespace {

// ---------------------------------------------------------------------
// TraceSource
// ---------------------------------------------------------------------

TEST(TraceSource, ParsesBasicTrace)
{
    TraceSource src;
    std::string err;
    ASSERT_TRUE(src.parseString("# a comment\n"
                                "txn\n"
                                "c 120\n"
                                "l 0x1000\n"
                                "a 0x1000 1\n"
                                "\n"
                                "txn barrier\n"
                                "s 0x2000 42\n",
                                &err))
        << err;
    EXPECT_EQ(src.numTransactions(), 2u);

    auto t1 = src.nextTransaction();
    ASSERT_TRUE(t1);
    EXPECT_FALSE(t1->barrierBefore);
    ASSERT_EQ(t1->ops.size(), 3u);
    EXPECT_EQ(t1->ops[0].kind, TxOp::Kind::Compute);
    EXPECT_EQ(t1->ops[0].cycles, 120u);
    EXPECT_EQ(t1->ops[1].kind, TxOp::Kind::Load);
    EXPECT_EQ(t1->ops[1].addr, 0x1000u);
    EXPECT_EQ(t1->ops[2].kind, TxOp::Kind::StoreAdd);
    EXPECT_EQ(t1->ops[2].value, 1u);

    auto t2 = src.nextTransaction();
    ASSERT_TRUE(t2);
    EXPECT_TRUE(t2->barrierBefore);
    ASSERT_EQ(t2->ops.size(), 1u);
    EXPECT_EQ(t2->ops[0].kind, TxOp::Kind::Store);
    EXPECT_EQ(t2->ops[0].value, 42u);

    EXPECT_FALSE(src.nextTransaction().has_value());
}

TEST(TraceSource, RejectsOpBeforeTxn)
{
    TraceSource src;
    std::string err;
    EXPECT_FALSE(src.parseString("c 5\n", &err));
    EXPECT_NE(err.find("before first"), std::string::npos);
}

TEST(TraceSource, RejectsUnknownDirective)
{
    TraceSource src;
    std::string err;
    EXPECT_FALSE(src.parseString("txn\nq 1\n", &err));
    EXPECT_NE(err.find("unknown"), std::string::npos);
}

TEST(TraceSource, RejectsBadBarrierFlag)
{
    TraceSource src;
    std::string err;
    EXPECT_FALSE(src.parseString("txn nope\n", &err));
}

TEST(TraceSource, RunsThroughTheSystem)
{
    System sys([] {
        SystemConfig cfg;
        cfg.numProcs = 2;
        cfg.check.serial = true;
        cfg.check.invariants = true;
        return cfg;
    }());

    TraceSource a, b;
    ASSERT_TRUE(a.parseString("txn\n"
                              "l 0x1000\n"
                              "a 0x1000 5\n"
                              "txn\n"
                              "l 0x1000\n"
                              "a 0x1000 5\n"));
    ASSERT_TRUE(b.parseString("txn\n"
                              "l 0x1000\n"
                              "a 0x1000 7\n"));
    sys.setSource(0, &a);
    sys.setSource(1, &b);
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(sys.memory().read(0x1000), 17u);
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
}

// ---------------------------------------------------------------------
// Stats dump
// ---------------------------------------------------------------------

TEST(StatsDump, ContainsAllComponentGroups)
{
    SystemConfig cfg;
    cfg.numProcs = 2;
    System sys(cfg);
    ScriptedSource a, b;
    a.add({TxOp::compute(50), TxOp::store(0x1000, 1)});
    b.add({TxOp::load(0x1000), TxOp::storeAdd(0x2000, 0)});
    sys.setSource(0, &a);
    sys.setSource(1, &b);
    ASSERT_TRUE(sys.run().completed);

    std::ostringstream os;
    dumpStats(sys, os);
    const std::string out = os.str();

    for (const char *key :
         {"system.procs 2", "system.quiesced 1", "network.messages",
          "proc0.txns_committed 1", "proc1.txns_committed 1",
          "dir0.nstid", "dir1.skips", "proc0.cache.loads",
          "dir0.commit_occupancy.count"}) {
        EXPECT_NE(out.find(key), std::string::npos)
            << "missing stat: " << key;
    }
}

TEST(StatsDump, ValuesAreConsistentWithAccessors)
{
    SystemConfig cfg;
    cfg.numProcs = 1;
    System sys(cfg);
    ScriptedSource a;
    for (int i = 0; i < 3; ++i)
        a.add({TxOp::compute(10), TxOp::store(0x1000 + 4 * i, i)});
    sys.setSource(0, &a);
    ASSERT_TRUE(sys.run().completed);

    std::ostringstream os;
    dumpStats(sys, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("proc0.txns_committed 3"), std::string::npos);
    EXPECT_NE(out.find("system.tids_issued 3"), std::string::npos);
}

} // namespace
} // namespace tcc
