/**
 * @file
 * Tests for solo-mode overflow virtualization: transactions whose
 * speculative footprint exceeds the cache must still commit exactly
 * once with serializable results, by draining their write-sets through
 * partial commits while holding the oldest TID.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "workload/scripted_source.hh"

namespace tcc {
namespace {

SystemConfig
tinyCacheConfig(std::uint32_t procs)
{
    SystemConfig cfg;
    cfg.numProcs = procs;
    cfg.check.serial = true;
    cfg.check.invariants = true;
    cfg.homePolicy = HomePolicy::Interleave;
    cfg.cache.l1Bytes = 128;
    cfg.cache.l1Assoc = 2;
    cfg.cache.l2Bytes = 1024; // 32 lines
    cfg.cache.l2Assoc = 4;
    return cfg;
}

TEST(SoloMode, HugeTransactionCommitsOnce)
{
    // One transaction writes 4x more lines than the cache holds.
    System sys(tinyCacheConfig(2));
    ScriptedSource big, small;
    {
        std::vector<TxOp> ops;
        for (int i = 0; i < 128; ++i) {
            ops.push_back(TxOp::load(0x100000ull + 0x20 * i));
            ops.push_back(
                TxOp::storeAdd(0x100000ull + 0x20 * i, i + 1));
        }
        big.add(std::move(ops));
    }
    small.add({TxOp::compute(100), TxOp::store(0x900000, 5)});
    sys.setSource(0, &big);
    sys.setSource(1, &small);

    auto res = sys.run(500'000'000ull);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(big.committed(), 1u);
    EXPECT_GE(sys.proc(0).stats().overflows, 1u);
    EXPECT_EQ(sys.proc(0).stats().soloCommits, 1u);
    EXPECT_GE(sys.proc(0).stats().drains, 1u);
    for (int i = 0; i < 128; ++i)
        EXPECT_EQ(sys.memory().read(0x100000ull + 0x20 * i),
                  static_cast<std::uint64_t>(i + 1));
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
    EXPECT_TRUE(sys.protocolQuiesced());
}

TEST(SoloMode, SoloTransactionBlocksYoungerCommitsButNotForever)
{
    // While the solo transaction runs, other processors keep
    // executing and eventually commit after it finishes.
    System sys(tinyCacheConfig(4));
    ScriptedSource big;
    {
        std::vector<TxOp> ops;
        for (int i = 0; i < 96; ++i) {
            ops.push_back(TxOp::load(0x100000ull + 0x20 * i));
            ops.push_back(TxOp::storeAdd(0x100000ull + 0x20 * i, 1));
        }
        big.add(std::move(ops));
    }
    std::vector<ScriptedSource> others(3);
    for (int k = 0; k < 3; ++k) {
        for (int t = 0; t < 10; ++t)
            others[k].add({TxOp::load(0xA00000),
                           TxOp::compute(40),
                           TxOp::storeAdd(0xA00000, 1)});
    }
    sys.setSource(0, &big);
    for (NodeId p = 1; p < 4; ++p)
        sys.setSource(p, &others[p - 1]);

    auto res = sys.run(500'000'000ull);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(sys.memory().read(0xA00000), 30u);
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
    EXPECT_TRUE(sys.protocolQuiesced());
}

TEST(SoloMode, DrainedValuesVisibleToLaterReaders)
{
    // A reader transaction that starts after the solo commit retires
    // must see every drained value.
    System sys(tinyCacheConfig(2));
    ScriptedSource big, reader;
    {
        std::vector<TxOp> ops;
        for (int i = 0; i < 96; ++i)
            ops.push_back(TxOp::store(0x100000ull + 0x20 * i, 7));
        // Write-allocate fetches make this overflow too.
        big.add(std::move(ops));
    }
    reader.add({TxOp::compute(200000)});
    {
        std::vector<TxOp> ops;
        for (int i = 0; i < 96; ++i) {
            ops.push_back(TxOp::load(0x100000ull + 0x20 * i));
            ops.push_back(TxOp::storeAdd(0x200000ull + 4 * i, 0));
        }
        reader.add(std::move(ops));
    }
    sys.setSource(0, &big);
    sys.setSource(1, &reader);

    auto res = sys.run(500'000'000ull);
    ASSERT_TRUE(res.completed);
    for (int i = 0; i < 96; ++i)
        EXPECT_EQ(sys.memory().read(0x200000ull + 4 * i), 7u)
            << "i=" << i;
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
}

TEST(SoloMode, DisabledFallbackKeepsViolating)
{
    // With the fallback off, an over-capacity transaction can never
    // commit; the run hits the tick limit (documented livelock - this
    // is exactly what the fallback exists to prevent).
    auto cfg = tinyCacheConfig(1);
    cfg.processor.soloOverflowThreshold = 0;
    cfg.processor.agingThreshold = 0;
    System sys(cfg);
    ScriptedSource big;
    {
        std::vector<TxOp> ops;
        for (int i = 0; i < 128; ++i)
            ops.push_back(TxOp::load(0x100000ull + 0x20 * i));
        big.add(std::move(ops));
    }
    sys.setSource(0, &big);
    auto res = sys.run(/*max_ticks=*/2'000'000);
    EXPECT_FALSE(res.completed);
    EXPECT_GT(sys.proc(0).stats().overflows, 1u);
}

} // namespace
} // namespace tcc
