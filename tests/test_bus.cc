/**
 * @file
 * Tests for the bus-based small-scale TCC baseline: functional
 * correctness (atomicity, serialization), token-based commit order,
 * snoop-violation behaviour, barriers, and bus-occupancy accounting.
 */

#include <gtest/gtest.h>

#include "busbaseline/bus_tcc.hh"
#include "workload/scripted_source.hh"

namespace tcc {
namespace {

BusConfig
smallBus(std::uint32_t procs)
{
    BusConfig cfg;
    cfg.numProcs = procs;
    cfg.enableChecker = true;
    return cfg;
}

TEST(BusTcc, SingleProcCommits)
{
    BusTcc bus(smallBus(1));
    ScriptedSource src;
    src.add({TxOp::compute(100), TxOp::store(0x1000, 5)});
    bus.setSource(0, &src);
    const RunResult res = bus.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(bus.memory().read(0x1000), 5u);
    EXPECT_EQ(src.committed(), 1u);
    EXPECT_EQ(res.committedTxns, 1u);
    EXPECT_TRUE(res.serial.checked);
    EXPECT_TRUE(res.serial.ok);
}

TEST(BusTcc, ConflictingIncrementsExact)
{
    constexpr int kIters = 15;
    BusTcc bus(smallBus(4));
    bus.initializeWord(0x1000, 0);
    std::vector<ScriptedSource> srcs(4);
    for (NodeId p = 0; p < 4; ++p) {
        for (int i = 0; i < kIters; ++i)
            srcs[p].add({TxOp::load(0x1000), TxOp::compute(30),
                         TxOp::storeAdd(0x1000, 1)});
        bus.setSource(p, &srcs[p]);
    }
    const RunResult res = bus.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(bus.memory().read(0x1000), 4u * kIters);
    EXPECT_EQ(res.committedTxns, 4u * kIters);
    EXPECT_TRUE(res.serial.ok);
}

TEST(BusTcc, SnoopViolatesOverlappingReader)
{
    BusTcc bus(smallBus(2));
    ScriptedSource writer, reader;
    writer.add({TxOp::compute(100), TxOp::store(0x2000, 9)});
    reader.add({TxOp::load(0x2000), TxOp::compute(5000),
                TxOp::storeAdd(0x3000, 0)});
    bus.setSource(0, &writer);
    bus.setSource(1, &reader);
    const RunResult res = bus.run();
    ASSERT_TRUE(res.completed);
    EXPECT_GE(reader.violated(), 1u);
    EXPECT_GE(res.violations, 1u);
    EXPECT_EQ(bus.memory().read(0x3000), 9u);
    EXPECT_TRUE(res.serial.ok);
}

TEST(BusTcc, CommitsAreSerialized)
{
    // With one-at-a-time commits, the bus must be busy for at least
    // the sum of all commit transfer times.
    BusTcc bus(smallBus(4));
    std::vector<ScriptedSource> srcs(4);
    for (NodeId p = 0; p < 4; ++p) {
        for (int t = 0; t < 10; ++t) {
            std::vector<TxOp> ops;
            for (int i = 0; i < 8; ++i)
                ops.push_back(TxOp::store(
                    0x10000ull * (p + 1) + 0x20 * (t * 8 + i), t));
            srcs[p].add(std::move(ops));
        }
        bus.setSource(p, &srcs[p]);
    }
    const RunResult res = bus.run();
    ASSERT_TRUE(res.completed);
    EXPECT_GT(bus.busBusyCycles(), 0u);
    EXPECT_TRUE(res.serial.ok);
}

TEST(BusTcc, BarrierPhasesWork)
{
    BusTcc bus(smallBus(2));
    ScriptedSource a, b;
    a.add({TxOp::store(0x1000, 7)});
    a.add({TxOp::compute(1)}, /*barrier=*/true);
    b.add({TxOp::compute(1)});
    b.add({TxOp::load(0x1000), TxOp::storeAdd(0x2000, 0)},
          /*barrier=*/true);
    bus.setSource(0, &a);
    bus.setSource(1, &b);
    ASSERT_TRUE(bus.run().completed);
    EXPECT_EQ(bus.memory().read(0x2000), 7u);
}

TEST(BusTcc, BreakdownBucketsPopulated)
{
    BusTcc bus(smallBus(2));
    ScriptedSource a, b;
    for (int i = 0; i < 5; ++i) {
        a.add({TxOp::compute(200), TxOp::store(0x1000 + 4 * i, i)});
        b.add({TxOp::compute(200), TxOp::store(0x9000 + 4 * i, i)});
    }
    bus.setSource(0, &a);
    bus.setSource(1, &b);
    const RunResult res = bus.run();
    ASSERT_TRUE(res.completed);
    EXPECT_GT(res.breakdown.useful, 0u);
    EXPECT_GT(res.breakdown.commit, 0u);
    EXPECT_GT(res.breakdown.total(), 0u);
    EXPECT_GT(res.committedInstructions, 0u);
    ASSERT_EQ(res.procs.size(), 2u);
    EXPECT_EQ(res.procs[0].txnsCommitted, 5u);
}

TEST(BusTcc, ManyProcsStressSerializable)
{
    constexpr std::uint32_t kProcs = 8;
    BusTcc bus(smallBus(kProcs));
    std::vector<ScriptedSource> srcs(kProcs);
    for (NodeId p = 0; p < kProcs; ++p) {
        for (int t = 0; t < 20; ++t) {
            srcs[p].add({TxOp::load(0xA000), TxOp::compute(10 + p),
                         TxOp::storeAdd(0xA000, 1),
                         TxOp::store(0x100000ull * (p + 1) + t * 4,
                                     t)});
        }
        bus.setSource(p, &srcs[p]);
    }
    const RunResult res = bus.run();
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.quiesced);
    EXPECT_EQ(bus.memory().read(0xA000), kProcs * 20u);
    EXPECT_TRUE(res.serial.ok);
    EXPECT_EQ(res.serial.checks, res.committedTxns);
}

} // namespace
} // namespace tcc
