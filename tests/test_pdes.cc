/**
 * @file
 * Tests for the conservative PDES engine (sim/domain.hh): partitioner
 * properties, the window-barrier message-ordering contract, and the
 * determinism gate - a PDES run is a pure function of (config, seeds,
 * domain count), never of the worker-thread count. A chaos section
 * replays every fault preset across jobs counts. Built under
 * -DTCC_TSAN=ON this file is also the data-race gate for the
 * parallel path (jobs >= 2 spawns real threads).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/system.hh"
#include "sim/domain.hh"
#include "workload/synthetic_app.hh"

namespace tcc {
namespace {

// --- partitioner properties -----------------------------------------

PdesPlan
meshPlan(std::uint32_t procs, std::uint32_t domains,
         Tick window_override = 0, MeshConfig mesh = MeshConfig{})
{
    return computePdesPlan(procs, domains, window_override,
                           /*mesh_based=*/true, mesh, /*ideal=*/1);
}

PdesPlan
idealPlan(std::uint32_t procs, std::uint32_t domains, Tick latency)
{
    return computePdesPlan(procs, domains, 0, /*mesh_based=*/false,
                           MeshConfig{}, latency);
}

TEST(PdesPartition, EveryNodeInExactlyOneDomain)
{
    // Square, ragged, and tiny node counts; over- and under-requests.
    const std::uint32_t cases[][2] = {{16, 4}, {10, 3}, {64, 8},
                                      {7, 2},  {256, 8}, {9, 9}};
    for (const auto &c : cases) {
        SCOPED_TRACE(std::to_string(c[0]) + " procs / " +
                     std::to_string(c[1]) + " domains");
        const PdesPlan plan = meshPlan(c[0], c[1]);
        std::vector<unsigned> owners(c[0], 0);
        for (const DomainSpec &s : plan.domains)
            for (NodeId n = s.firstNode; n < s.firstNode + s.numNodes;
                 ++n) {
                ASSERT_LT(n, c[0]);
                ++owners[n];
            }
        for (std::uint32_t n = 0; n < c[0]; ++n)
            EXPECT_EQ(owners[n], 1u) << "node " << n;
    }
}

TEST(PdesPartition, DomainsAreContiguousRowBlocks)
{
    const PdesPlan plan = meshPlan(64, 4); // 8x8 grid
    ASSERT_EQ(plan.gridCols, 8u);
    ASSERT_EQ(plan.gridRows, 8u);
    ASSERT_EQ(plan.domains.size(), 4u);
    NodeId expect_first = 0;
    for (const DomainSpec &s : plan.domains) {
        EXPECT_EQ(s.firstNode, expect_first)
            << "domains must tile the NodeId space in order";
        EXPECT_EQ(s.firstNode % plan.gridCols, 0u)
            << "domain boundaries must fall on row boundaries";
        expect_first = s.firstNode + s.numNodes;
    }
    EXPECT_EQ(expect_first, 64u);
    // nodeDomain and rowDomain agree with the specs.
    for (const DomainSpec &s : plan.domains)
        for (NodeId n = s.firstNode; n < s.firstNode + s.numNodes; ++n) {
            EXPECT_EQ(plan.nodeDomain[n], s.id);
            EXPECT_EQ(plan.rowDomain[n / plan.gridCols], s.id);
        }
}

TEST(PdesPartition, RaggedGridKeepsRowAlignment)
{
    // 10 nodes -> 4x3 grid with two phantom slots in the last row.
    const PdesPlan plan = meshPlan(10, 3);
    ASSERT_EQ(plan.gridCols, 4u);
    ASSERT_EQ(plan.gridRows, 3u);
    ASSERT_EQ(plan.rowDomain.size(), 3u);
    for (const DomainSpec &s : plan.domains)
        EXPECT_EQ(s.firstNode % plan.gridCols, 0u);
    // The last row's domain also owns its phantom slots' links.
    EXPECT_EQ(plan.rowDomain.back(),
              plan.domains.back().id);
}

TEST(PdesPartition, RequestClampedToTopology)
{
    // Mesh: a 4x4 grid has 4 rows; requesting 9 domains yields 4.
    EXPECT_EQ(meshPlan(16, 9).domains.size(), 4u);
    // Ideal: clamped to the node count.
    EXPECT_EQ(idealPlan(8, 99, 1).domains.size(), 8u);
    // The effective count never depends on a jobs value - the plan has
    // no jobs input at all (compile-time property of the signature).
}

TEST(PdesPartition, LookaheadFormula)
{
    MeshConfig m;
    m.routerDelay = 2;
    m.hopLatency = 5;
    // Minimum cross-domain crossing: router in + 1-cycle
    // serialization + hop + router out.
    EXPECT_EQ(meshPlan(16, 4, 0, m).lookahead, Tick{2 * 2 + 5 + 1});
    EXPECT_EQ(idealPlan(16, 4, 7).lookahead, Tick{7});
    EXPECT_EQ(idealPlan(16, 4, 0).lookahead, Tick{1})
        << "zero-latency ideal still needs a 1-cycle window";
    // A window override may narrow the window but never widen it.
    EXPECT_EQ(meshPlan(16, 4, 3, m).lookahead, Tick{3});
    EXPECT_EQ(meshPlan(16, 4, 1000, m).lookahead, Tick{2 * 2 + 5 + 1});
}

// --- window-barrier message ordering --------------------------------

/** Two ideal-network domains over 4 nodes; domain 0 owns {0,1},
 *  domain 1 owns {2,3}. Records deliveries at domain 1's endpoints. */
struct MailboxHarness {
    PdesState st;
    std::vector<std::vector<std::pair<Tick, std::uint32_t>>> inbox;

    explicit MailboxHarness(Tick latency)
        : st(idealPlan(4, 2, latency)), inbox(4)
    {
        DomainNetConfig ncfg;
        ncfg.meshBased = false;
        ncfg.idealLatency = latency;
        for (const DomainSpec &spec : st.plan.domains) {
            auto d = std::make_unique<PdesDomain>(
                spec, TraceRecorder::kDefaultCapacity);
            d->net = std::make_unique<DomainNet>(d->eq, 4, spec,
                                                 st.plan, ncfg,
                                                 &d->arena);
            for (NodeId n = spec.firstNode;
                 n < spec.firstNode + spec.numNodes; ++n)
                d->net->connect(n, [this, n](const Message &m) {
                    inbox[n].push_back(
                        {st.domains[st.plan.nodeDomain[n]]->eq.now(),
                         m.seq});
                });
            st.domains.push_back(std::move(d));
        }
    }

    void
    post(NodeId src, NodeId dst, std::uint32_t seq)
    {
        Message m;
        m.type = MsgType::Probe;
        m.src = src;
        m.dst = dst;
        m.seq = seq;
        m.bytes = 8;
        st.domains[st.plan.nodeDomain[src]]->net->send(m);
    }
};

TEST(PdesMailbox, FlushPreservesPerPairSendOrder)
{
    MailboxHarness h(/*latency=*/4);
    // Interleave two cross-domain pairs; all sends inside window 0.
    for (std::uint32_t i = 0; i < 16; ++i) {
        h.post(0, 2, i);       // pair A
        h.post(1, 3, 100 + i); // pair B
    }
    ASSERT_EQ(h.st.domains[0]->net->crossMessages(), 32u);

    const Tick window_end = h.st.plan.lookahead;
    EXPECT_EQ(h.st.flushMailboxes(window_end), 32u);
    h.st.domains[1]->eq.run();

    ASSERT_EQ(h.inbox[2].size(), 16u);
    ASSERT_EQ(h.inbox[3].size(), 16u);
    for (std::uint32_t i = 0; i < 16; ++i) {
        // Same per-(src,dst) FIFO order a serial network delivers.
        EXPECT_EQ(h.inbox[2][i].second, i);
        EXPECT_EQ(h.inbox[3][i].second, 100 + i);
        // Nothing may land inside the window it was sent in.
        EXPECT_GE(h.inbox[2][i].first, window_end);
    }
}

TEST(PdesMailbox, MeshParcelsRespectTheLookahead)
{
    // 16 nodes, 4 row-domains over the default mesh; every
    // cross-domain parcel sent at tick 0 must arrive at or after the
    // derived lookahead, or conservative execution is unsound.
    PdesState st(meshPlan(16, 4));
    DomainNetConfig ncfg;
    ncfg.meshBased = true;
    for (const DomainSpec &spec : st.plan.domains) {
        auto d = std::make_unique<PdesDomain>(
            spec, TraceRecorder::kDefaultCapacity);
        d->net = std::make_unique<DomainNet>(d->eq, 16, spec, st.plan,
                                             ncfg, &d->arena);
        st.domains.push_back(std::move(d));
    }
    // Saturate: every node sends to every foreign-domain node.
    for (NodeId s = 0; s < 16; ++s)
        for (NodeId t = 0; t < 16; ++t) {
            if (st.plan.nodeDomain[s] == st.plan.nodeDomain[t])
                continue;
            Message m;
            m.type = MsgType::Probe;
            m.src = s;
            m.dst = t;
            m.bytes = 64; // several serialization cycles
            st.domains[st.plan.nodeDomain[s]]->net->send(m);
        }
    std::uint64_t parcels = 0;
    for (const auto &d : st.domains)
        for (const auto &box : d->net->outbox)
            for (const DomainNet::Parcel &p : box) {
                EXPECT_GE(p.when, st.plan.lookahead)
                    << p.msg.src << "->" << p.msg.dst;
                ++parcels;
            }
    EXPECT_EQ(parcels, 16u * 12u);
    // flushMailboxes itself enforces the same bound (panics on
    // violation) - exercise the success path.
    EXPECT_EQ(st.flushMailboxes(st.plan.lookahead), parcels);
}

// --- determinism gate: jobs is invisible ----------------------------

RunResult
runPdes(const std::string &app, std::uint32_t procs,
        std::uint32_t domains, std::uint32_t jobs,
        const std::string &chaos_preset = "", std::uint64_t seed = 42)
{
    SystemConfig cfg;
    cfg.numProcs = procs;
    cfg.homePolicy = HomePolicy::Interleave;
    cfg.check.serial = true;
    cfg.check.invariants = true;
    cfg.pdes.domains = domains;
    cfg.pdes.jobs = jobs;
    if (!chaos_preset.empty()) {
        cfg.network.model = NetworkConfig::Model::Chaos;
        cfg.network.chaos = chaosPreset(chaos_preset);
        cfg.network.chaos.seed = seed;
    }
    System sys(cfg);
    auto sources = setupApp(sys, appProfile(app), seed);
    return sys.run(2'000'000'000ull);
}

/** Full-RunResult equality, excluding only pdes.jobs (the one field
 *  that records the thread count rather than the simulation). */
void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.quiesced, b.quiesced);
    EXPECT_EQ(a.breakdown.useful, b.breakdown.useful);
    EXPECT_EQ(a.breakdown.miss, b.breakdown.miss);
    EXPECT_EQ(a.breakdown.commit, b.breakdown.commit);
    EXPECT_EQ(a.breakdown.idle, b.breakdown.idle);
    EXPECT_EQ(a.breakdown.violation, b.breakdown.violation);
    EXPECT_EQ(a.committedTxns, b.committedTxns);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.overflows, b.overflows);
    EXPECT_EQ(a.committedInstructions, b.committedInstructions);
    ASSERT_EQ(a.procs.size(), b.procs.size());
    for (std::size_t p = 0; p < a.procs.size(); ++p) {
        EXPECT_EQ(a.procs[p].txnsCommitted, b.procs[p].txnsCommitted);
        EXPECT_EQ(a.procs[p].violations, b.procs[p].violations);
        EXPECT_EQ(a.procs[p].overflows, b.procs[p].overflows);
        EXPECT_EQ(a.procs[p].soloCommits, b.procs[p].soloCommits);
        EXPECT_EQ(a.procs[p].committedInstructions,
                  b.procs[p].committedInstructions);
    }
    ASSERT_EQ(a.dirs.size(), b.dirs.size());
    for (std::size_t d = 0; d < a.dirs.size(); ++d) {
        EXPECT_EQ(a.dirs[d].nstid, b.dirs[d].nstid);
        EXPECT_EQ(a.dirs[d].commitsServed, b.dirs[d].commitsServed);
        EXPECT_EQ(a.dirs[d].skipsReceived, b.dirs[d].skipsReceived);
        EXPECT_EQ(a.dirs[d].abortsServed, b.dirs[d].abortsServed);
        EXPECT_EQ(a.dirs[d].invalidationsSent,
                  b.dirs[d].invalidationsSent);
        EXPECT_EQ(a.dirs[d].writeBacksDropped,
                  b.dirs[d].writeBacksDropped);
    }
    EXPECT_EQ(a.serial.ok, b.serial.ok);
    EXPECT_EQ(a.serial.checks, b.serial.checks);
    EXPECT_EQ(a.serial.error, b.serial.error);
    EXPECT_EQ(a.invariants.ok, b.invariants.ok);
    EXPECT_EQ(a.invariants.checks, b.invariants.checks);
    EXPECT_EQ(a.invariants.error, b.invariants.error);
    EXPECT_EQ(a.pdes.domains, b.pdes.domains);
    EXPECT_EQ(a.pdes.lookahead, b.pdes.lookahead);
    EXPECT_EQ(a.pdes.windows, b.pdes.windows);
    EXPECT_EQ(a.pdes.mailboxMessages, b.pdes.mailboxMessages);
}

TEST(PdesDeterminism, JobsCountIsInvisible)
{
    const RunResult serial_crew = runPdes("barnes", 16, 4, 1);
    ASSERT_TRUE(serial_crew.completed);
    ASSERT_TRUE(serial_crew.checksPassed())
        << serial_crew.serial.error << serial_crew.invariants.error;
    ASSERT_EQ(serial_crew.pdes.domains, 4u);
    EXPECT_GT(serial_crew.pdes.windows, 0u);
    EXPECT_GT(serial_crew.pdes.mailboxMessages, 0u);
    for (std::uint32_t jobs : {2u, 3u, 4u, 8u}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        const RunResult threaded = runPdes("barnes", 16, 4, jobs);
        expectSameResult(serial_crew, threaded);
        EXPECT_EQ(threaded.pdes.jobs, std::min(jobs, 4u))
            << "jobs clamps to the domain count";
    }
}

TEST(PdesDeterminism, RepeatRunsAreIdentical)
{
    const RunResult a = runPdes("radix", 16, 4, 4);
    const RunResult b = runPdes("radix", 16, 4, 4);
    ASSERT_TRUE(a.completed);
    expectSameResult(a, b);
    EXPECT_EQ(a.pdes.jobs, b.pdes.jobs);
}

TEST(PdesDeterminism, DomainCountIsPartOfTheModel)
{
    // Different partitions are different (valid) executions: both
    // pass the checkers, but fingerprints may differ - the domain
    // count is a model parameter, unlike jobs.
    const RunResult d2 = runPdes("barnes", 16, 2, 2);
    const RunResult d4 = runPdes("barnes", 16, 4, 2);
    ASSERT_TRUE(d2.completed);
    ASSERT_TRUE(d4.completed);
    EXPECT_TRUE(d2.checksPassed());
    EXPECT_TRUE(d4.checksPassed());
    EXPECT_EQ(d2.pdes.domains, 2u);
    EXPECT_EQ(d4.pdes.domains, 4u);
    EXPECT_EQ(d2.committedTxns, d4.committedTxns)
        << "every partition must commit the same workload";
}

TEST(PdesDeterminism, PartitionCollapseFallsBackToSerialEngine)
{
    // 2 procs -> 2x1 grid -> one row -> one domain: the PDES request
    // silently collapses and the legacy serial engine runs.
    const RunResult pdes = runPdes("barnes", 2, 4, 4);
    SystemConfig cfg;
    cfg.numProcs = 2;
    cfg.homePolicy = HomePolicy::Interleave;
    cfg.check.serial = true;
    cfg.check.invariants = true;
    System sys(cfg);
    auto sources = setupApp(sys, appProfile("barnes"), 42);
    const RunResult serial = sys.run(2'000'000'000ull);
    ASSERT_TRUE(pdes.completed);
    EXPECT_EQ(pdes.pdes.domains, 0u) << "collapse reports no PDES";
    expectSameResult(pdes, serial);
}

TEST(PdesDeterminism, ValidateRejectsBadConfigs)
{
    SystemConfig cfg;
    cfg.numProcs = 16;
    cfg.pdes.domains = 4;
    // First-touch home assignment depends on a global access order
    // that domains do not share.
    cfg.homePolicy = HomePolicy::FirstTouch;
    EXPECT_NE(cfg.validate(), "");
    cfg.homePolicy = HomePolicy::Interleave;
    EXPECT_EQ(cfg.validate(), "");
    // A window wider than the lookahead would violate causality.
    cfg.pdes.window = 1000;
    EXPECT_NE(cfg.validate(), "");
    cfg.pdes.window = 1;
    EXPECT_EQ(cfg.validate(), "");
}

TEST(PdesDeterminism, NarrowedWindowIsItsOwnDeterministicModel)
{
    // The window width is a model parameter like the domain count:
    // barriers run more often, so cross-domain store writes become
    // visible earlier and the execution legitimately differs from the
    // full-lookahead run. What must hold: the narrowed run is still
    // valid (checkers pass, same workload committed) and still
    // jobs-invariant.
    SystemConfig cfg;
    cfg.numProcs = 16;
    cfg.homePolicy = HomePolicy::Interleave;
    cfg.check.serial = true;
    cfg.check.invariants = true;
    cfg.pdes.domains = 4;
    RunResult wide, narrow1, narrow4;
    {
        System sys(cfg);
        auto sources = setupApp(sys, appProfile("equake"), 7);
        wide = sys.run(2'000'000'000ull);
    }
    cfg.pdes.window = 2;
    cfg.pdes.jobs = 1;
    {
        System sys(cfg);
        auto sources = setupApp(sys, appProfile("equake"), 7);
        narrow1 = sys.run(2'000'000'000ull);
    }
    cfg.pdes.jobs = 4;
    {
        System sys(cfg);
        auto sources = setupApp(sys, appProfile("equake"), 7);
        narrow4 = sys.run(2'000'000'000ull);
    }
    ASSERT_TRUE(wide.completed);
    ASSERT_TRUE(narrow1.completed);
    EXPECT_EQ(narrow1.pdes.lookahead, Tick{2});
    EXPECT_GT(narrow1.pdes.windows, wide.pdes.windows);
    EXPECT_EQ(wide.committedTxns, narrow1.committedTxns)
        << "every window width must commit the same workload";
    EXPECT_TRUE(narrow1.checksPassed())
        << narrow1.serial.error << narrow1.invariants.error;
    expectSameResult(narrow1, narrow4);
}

// --- PDES x chaos ---------------------------------------------------

TEST(PdesChaos, EveryPresetDeterministicAcrossJobs)
{
    for (const auto &preset : chaosPresetNames()) {
        SCOPED_TRACE(preset);
        const RunResult one = runPdes("radix", 16, 4, 1, preset, 99);
        ASSERT_TRUE(one.completed);
        ASSERT_TRUE(one.checksPassed())
            << one.serial.error << one.invariants.error;
        const RunResult four = runPdes("radix", 16, 4, 4, preset, 99);
        expectSameResult(one, four);
    }
}

TEST(PdesChaos, SeedPerturbsTheRun)
{
    const RunResult a = runPdes("radix", 16, 4, 4, "heavy", 99);
    const RunResult b = runPdes("radix", 16, 4, 4, "heavy", 99);
    const RunResult c = runPdes("radix", 16, 4, 4, "heavy", 100);
    ASSERT_TRUE(a.completed);
    expectSameResult(a, b);
    EXPECT_TRUE(a.cycles != c.cycles || a.events != c.events)
        << "different chaos seeds should not collide exactly";
}

} // namespace
} // namespace tcc
