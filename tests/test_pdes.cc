/**
 * @file
 * Tests for the conservative PDES engine (sim/domain.hh): partitioner
 * properties, the window-barrier message-ordering contract, and the
 * determinism gate - a PDES run is a pure function of (config, seeds,
 * domain count), never of the worker-thread count. A chaos section
 * replays every fault preset across jobs counts. Built under
 * -DTCC_TSAN=ON this file is also the data-race gate for the
 * parallel path (jobs >= 2 spawns real threads).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/system.hh"
#include "sim/domain.hh"
#include "workload/scripted_source.hh"
#include "workload/synthetic_app.hh"

namespace tcc {
namespace {

// --- partitioner properties -----------------------------------------

PdesPlan
meshPlan(std::uint32_t procs, std::uint32_t domains,
         Tick window_override = 0, MeshConfig mesh = MeshConfig{})
{
    return computePdesPlan(procs, domains, window_override,
                           /*mesh_based=*/true, mesh, /*ideal=*/1);
}

PdesPlan
idealPlan(std::uint32_t procs, std::uint32_t domains, Tick latency)
{
    return computePdesPlan(procs, domains, 0, /*mesh_based=*/false,
                           MeshConfig{}, latency);
}

TEST(PdesPartition, EveryNodeInExactlyOneDomain)
{
    // Square, ragged, and tiny node counts; over- and under-requests.
    const std::uint32_t cases[][2] = {{16, 4}, {10, 3}, {64, 8},
                                      {7, 2},  {256, 8}, {9, 9}};
    for (const auto &c : cases) {
        SCOPED_TRACE(std::to_string(c[0]) + " procs / " +
                     std::to_string(c[1]) + " domains");
        const PdesPlan plan = meshPlan(c[0], c[1]);
        std::vector<unsigned> owners(c[0], 0);
        for (const DomainSpec &s : plan.domains)
            for (NodeId n = s.firstNode; n < s.firstNode + s.numNodes;
                 ++n) {
                ASSERT_LT(n, c[0]);
                ++owners[n];
            }
        for (std::uint32_t n = 0; n < c[0]; ++n)
            EXPECT_EQ(owners[n], 1u) << "node " << n;
    }
}

TEST(PdesPartition, DomainsAreContiguousRowBlocks)
{
    const PdesPlan plan = meshPlan(64, 4); // 8x8 grid
    ASSERT_EQ(plan.gridCols, 8u);
    ASSERT_EQ(plan.gridRows, 8u);
    ASSERT_EQ(plan.domains.size(), 4u);
    NodeId expect_first = 0;
    for (const DomainSpec &s : plan.domains) {
        EXPECT_EQ(s.firstNode, expect_first)
            << "domains must tile the NodeId space in order";
        EXPECT_EQ(s.firstNode % plan.gridCols, 0u)
            << "domain boundaries must fall on row boundaries";
        expect_first = s.firstNode + s.numNodes;
    }
    EXPECT_EQ(expect_first, 64u);
    // nodeDomain and rowDomain agree with the specs.
    for (const DomainSpec &s : plan.domains)
        for (NodeId n = s.firstNode; n < s.firstNode + s.numNodes; ++n) {
            EXPECT_EQ(plan.nodeDomain[n], s.id);
            EXPECT_EQ(plan.rowDomain[n / plan.gridCols], s.id);
        }
}

TEST(PdesPartition, RaggedGridKeepsRowAlignment)
{
    // 10 nodes -> 4x3 grid with two phantom slots in the last row.
    const PdesPlan plan = meshPlan(10, 3);
    ASSERT_EQ(plan.gridCols, 4u);
    ASSERT_EQ(plan.gridRows, 3u);
    ASSERT_EQ(plan.rowDomain.size(), 3u);
    for (const DomainSpec &s : plan.domains)
        EXPECT_EQ(s.firstNode % plan.gridCols, 0u);
    // The last row's domain also owns its phantom slots' links.
    EXPECT_EQ(plan.rowDomain.back(),
              plan.domains.back().id);
}

TEST(PdesPartition, RequestClampedToTopology)
{
    // Mesh: a 4x4 grid has 4 rows; requesting 9 domains yields 4.
    EXPECT_EQ(meshPlan(16, 9).domains.size(), 4u);
    // Ideal: clamped to the node count.
    EXPECT_EQ(idealPlan(8, 99, 1).domains.size(), 8u);
    // The effective count never depends on a jobs value - the plan has
    // no jobs input at all (compile-time property of the signature).
}

TEST(PdesPartition, LookaheadFormula)
{
    MeshConfig m;
    m.routerDelay = 2;
    m.hopLatency = 5;
    // Minimum cross-domain crossing: router in + 1-cycle
    // serialization + hop + router out.
    EXPECT_EQ(meshPlan(16, 4, 0, m).lookahead, Tick{2 * 2 + 5 + 1});
    EXPECT_EQ(idealPlan(16, 4, 7).lookahead, Tick{7});
    EXPECT_EQ(idealPlan(16, 4, 0).lookahead, Tick{1})
        << "zero-latency ideal still needs a 1-cycle window";
    // A window override may narrow the window but never widen it.
    EXPECT_EQ(meshPlan(16, 4, 3, m).lookahead, Tick{3});
    EXPECT_EQ(meshPlan(16, 4, 1000, m).lookahead, Tick{2 * 2 + 5 + 1});
}

// --- window-barrier message ordering --------------------------------

/** Two ideal-network domains over 4 nodes; domain 0 owns {0,1},
 *  domain 1 owns {2,3}. Records deliveries at domain 1's endpoints. */
struct MailboxHarness {
    PdesState st;
    std::vector<std::vector<std::pair<Tick, std::uint32_t>>> inbox;

    explicit MailboxHarness(Tick latency)
        : st(idealPlan(4, 2, latency)), inbox(4)
    {
        DomainNetConfig ncfg;
        ncfg.meshBased = false;
        ncfg.idealLatency = latency;
        for (const DomainSpec &spec : st.plan.domains) {
            auto d = std::make_unique<PdesDomain>(
                spec, TraceRecorder::kDefaultCapacity);
            d->net = std::make_unique<DomainNet>(d->eq, 4, spec,
                                                 st.plan, ncfg,
                                                 &d->arena);
            for (NodeId n = spec.firstNode;
                 n < spec.firstNode + spec.numNodes; ++n)
                d->net->connect(n, [this, n](const Message &m) {
                    inbox[n].push_back(
                        {st.domains[st.plan.nodeDomain[n]]->eq.now(),
                         m.seq});
                });
            st.domains.push_back(std::move(d));
        }
    }

    void
    post(NodeId src, NodeId dst, std::uint32_t seq)
    {
        Message m;
        m.type = MsgType::Probe;
        m.src = src;
        m.dst = dst;
        m.seq = seq;
        m.bytes = 8;
        st.domains[st.plan.nodeDomain[src]]->net->send(m);
    }
};

TEST(PdesMailbox, FlushPreservesPerPairSendOrder)
{
    MailboxHarness h(/*latency=*/4);
    // Interleave two cross-domain pairs; all sends inside window 0.
    for (std::uint32_t i = 0; i < 16; ++i) {
        h.post(0, 2, i);       // pair A
        h.post(1, 3, 100 + i); // pair B
    }
    ASSERT_EQ(h.st.domains[0]->net->crossMessages(), 32u);

    const Tick window_end = h.st.plan.lookahead;
    h.st.initPulse(); // flushMailboxes consults the parcel flags
    EXPECT_EQ(h.st.flushMailboxes(window_end), 32u);
    h.st.domains[1]->eq.run();

    ASSERT_EQ(h.inbox[2].size(), 16u);
    ASSERT_EQ(h.inbox[3].size(), 16u);
    for (std::uint32_t i = 0; i < 16; ++i) {
        // Same per-(src,dst) FIFO order a serial network delivers.
        EXPECT_EQ(h.inbox[2][i].second, i);
        EXPECT_EQ(h.inbox[3][i].second, 100 + i);
        // Nothing may land inside the window it was sent in.
        EXPECT_GE(h.inbox[2][i].first, window_end);
    }
}

TEST(PdesMailbox, MeshParcelsRespectTheLookahead)
{
    // 16 nodes, 4 row-domains over the default mesh; every
    // cross-domain parcel sent at tick 0 must arrive at or after the
    // derived lookahead, or conservative execution is unsound.
    PdesState st(meshPlan(16, 4));
    DomainNetConfig ncfg;
    ncfg.meshBased = true;
    for (const DomainSpec &spec : st.plan.domains) {
        auto d = std::make_unique<PdesDomain>(
            spec, TraceRecorder::kDefaultCapacity);
        d->net = std::make_unique<DomainNet>(d->eq, 16, spec, st.plan,
                                             ncfg, &d->arena);
        st.domains.push_back(std::move(d));
    }
    // Saturate: every node sends to every foreign-domain node.
    for (NodeId s = 0; s < 16; ++s)
        for (NodeId t = 0; t < 16; ++t) {
            if (st.plan.nodeDomain[s] == st.plan.nodeDomain[t])
                continue;
            Message m;
            m.type = MsgType::Probe;
            m.src = s;
            m.dst = t;
            m.bytes = 64; // several serialization cycles
            st.domains[st.plan.nodeDomain[s]]->net->send(m);
        }
    std::uint64_t parcels = 0;
    for (const auto &d : st.domains)
        for (const auto &box : d->net->outbox)
            for (const DomainNet::Parcel &p : box) {
                EXPECT_GE(p.when, st.plan.lookahead)
                    << p.msg.src << "->" << p.msg.dst;
                ++parcels;
            }
    EXPECT_EQ(parcels, 16u * 12u);
    // flushMailboxes itself enforces the same bound (panics on
    // violation) - exercise the success path.
    st.initPulse();
    EXPECT_EQ(st.flushMailboxes(st.plan.lookahead), parcels);
}

// --- determinism gate: jobs is invisible ----------------------------

RunResult
runPdes(const std::string &app, std::uint32_t procs,
        std::uint32_t domains, std::uint32_t jobs,
        const std::string &chaos_preset = "", std::uint64_t seed = 42,
        PdesConfig::Sync sync = PdesConfig::Sync::Adaptive,
        Tick max_ticks = 2'000'000'000ull)
{
    SystemConfig cfg;
    cfg.numProcs = procs;
    cfg.homePolicy = HomePolicy::Interleave;
    cfg.check.serial = true;
    cfg.check.invariants = true;
    cfg.pdes.domains = domains;
    cfg.pdes.jobs = jobs;
    cfg.pdes.sync = sync;
    if (!chaos_preset.empty()) {
        cfg.network.model = NetworkConfig::Model::Chaos;
        cfg.network.chaos = chaosPreset(chaos_preset);
        cfg.network.chaos.seed = seed;
    }
    System sys(cfg);
    auto sources = setupApp(sys, appProfile(app), seed);
    return sys.run(max_ticks);
}

/** Full-RunResult equality, excluding only pdes.jobs (the one field
 *  that records the thread count rather than the simulation). With
 *  @p cross_sync the same comparison runs between a fixed-cadence and
 *  an adaptive run: only the barrier-cadence bookkeeping (windows,
 *  empty-broadcast count) may differ - a deferred barrier that had
 *  nothing to publish must be invisible to the simulation. */
void
expectSameResult(const RunResult &a, const RunResult &b,
                 bool cross_sync = false)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.quiesced, b.quiesced);
    EXPECT_EQ(a.breakdown.useful, b.breakdown.useful);
    EXPECT_EQ(a.breakdown.miss, b.breakdown.miss);
    EXPECT_EQ(a.breakdown.commit, b.breakdown.commit);
    EXPECT_EQ(a.breakdown.idle, b.breakdown.idle);
    EXPECT_EQ(a.breakdown.violation, b.breakdown.violation);
    EXPECT_EQ(a.committedTxns, b.committedTxns);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.overflows, b.overflows);
    EXPECT_EQ(a.committedInstructions, b.committedInstructions);
    ASSERT_EQ(a.procs.size(), b.procs.size());
    for (std::size_t p = 0; p < a.procs.size(); ++p) {
        EXPECT_EQ(a.procs[p].txnsCommitted, b.procs[p].txnsCommitted);
        EXPECT_EQ(a.procs[p].violations, b.procs[p].violations);
        EXPECT_EQ(a.procs[p].overflows, b.procs[p].overflows);
        EXPECT_EQ(a.procs[p].soloCommits, b.procs[p].soloCommits);
        EXPECT_EQ(a.procs[p].committedInstructions,
                  b.procs[p].committedInstructions);
    }
    ASSERT_EQ(a.dirs.size(), b.dirs.size());
    for (std::size_t d = 0; d < a.dirs.size(); ++d) {
        EXPECT_EQ(a.dirs[d].nstid, b.dirs[d].nstid);
        EXPECT_EQ(a.dirs[d].commitsServed, b.dirs[d].commitsServed);
        EXPECT_EQ(a.dirs[d].skipsReceived, b.dirs[d].skipsReceived);
        EXPECT_EQ(a.dirs[d].abortsServed, b.dirs[d].abortsServed);
        EXPECT_EQ(a.dirs[d].invalidationsSent,
                  b.dirs[d].invalidationsSent);
        EXPECT_EQ(a.dirs[d].writeBacksDropped,
                  b.dirs[d].writeBacksDropped);
    }
    EXPECT_EQ(a.serial.ok, b.serial.ok);
    EXPECT_EQ(a.serial.checks, b.serial.checks);
    EXPECT_EQ(a.serial.error, b.serial.error);
    EXPECT_EQ(a.invariants.ok, b.invariants.ok);
    EXPECT_EQ(a.invariants.checks, b.invariants.checks);
    EXPECT_EQ(a.invariants.error, b.invariants.error);
    EXPECT_EQ(a.pdes.domains, b.pdes.domains);
    EXPECT_EQ(a.pdes.lookahead, b.pdes.lookahead);
    EXPECT_EQ(a.pdes.phases, b.pdes.phases);
    EXPECT_EQ(a.pdes.mailboxMessages, b.pdes.mailboxMessages);
    EXPECT_EQ(a.pdes.idleDomainSkips, b.pdes.idleDomainSkips);
    if (!cross_sync) {
        EXPECT_EQ(a.pdes.adaptive, b.pdes.adaptive);
        EXPECT_EQ(a.pdes.windows, b.pdes.windows);
        EXPECT_EQ(a.pdes.emptyBroadcastsSkipped,
                  b.pdes.emptyBroadcastsSkipped);
    }
}

TEST(PdesDeterminism, JobsCountIsInvisible)
{
    const RunResult serial_crew = runPdes("barnes", 16, 4, 1);
    ASSERT_TRUE(serial_crew.completed);
    ASSERT_TRUE(serial_crew.checksPassed())
        << serial_crew.serial.error << serial_crew.invariants.error;
    ASSERT_EQ(serial_crew.pdes.domains, 4u);
    EXPECT_GT(serial_crew.pdes.windows, 0u);
    EXPECT_GT(serial_crew.pdes.mailboxMessages, 0u);
    for (std::uint32_t jobs : {2u, 3u, 4u, 8u}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        const RunResult threaded = runPdes("barnes", 16, 4, jobs);
        expectSameResult(serial_crew, threaded);
        EXPECT_EQ(threaded.pdes.jobs, std::min(jobs, 4u))
            << "jobs clamps to the domain count";
    }
}

TEST(PdesDeterminism, RepeatRunsAreIdentical)
{
    const RunResult a = runPdes("radix", 16, 4, 4);
    const RunResult b = runPdes("radix", 16, 4, 4);
    ASSERT_TRUE(a.completed);
    expectSameResult(a, b);
    EXPECT_EQ(a.pdes.jobs, b.pdes.jobs);
}

TEST(PdesDeterminism, DomainCountIsPartOfTheModel)
{
    // Different partitions are different (valid) executions: both
    // pass the checkers, but fingerprints may differ - the domain
    // count is a model parameter, unlike jobs.
    const RunResult d2 = runPdes("barnes", 16, 2, 2);
    const RunResult d4 = runPdes("barnes", 16, 4, 2);
    ASSERT_TRUE(d2.completed);
    ASSERT_TRUE(d4.completed);
    EXPECT_TRUE(d2.checksPassed());
    EXPECT_TRUE(d4.checksPassed());
    EXPECT_EQ(d2.pdes.domains, 2u);
    EXPECT_EQ(d4.pdes.domains, 4u);
    EXPECT_EQ(d2.committedTxns, d4.committedTxns)
        << "every partition must commit the same workload";
}

TEST(PdesDeterminism, PartitionCollapseFallsBackToSerialEngine)
{
    // 2 procs -> 2x1 grid -> one row -> one domain: the PDES request
    // silently collapses and the legacy serial engine runs.
    const RunResult pdes = runPdes("barnes", 2, 4, 4);
    SystemConfig cfg;
    cfg.numProcs = 2;
    cfg.homePolicy = HomePolicy::Interleave;
    cfg.check.serial = true;
    cfg.check.invariants = true;
    System sys(cfg);
    auto sources = setupApp(sys, appProfile("barnes"), 42);
    const RunResult serial = sys.run(2'000'000'000ull);
    ASSERT_TRUE(pdes.completed);
    EXPECT_EQ(pdes.pdes.domains, 0u) << "collapse reports no PDES";
    expectSameResult(pdes, serial);
}

TEST(PdesDeterminism, ValidateRejectsBadConfigs)
{
    SystemConfig cfg;
    cfg.numProcs = 16;
    cfg.pdes.domains = 4;
    // First-touch home assignment depends on a global access order
    // that domains do not share.
    cfg.homePolicy = HomePolicy::FirstTouch;
    EXPECT_NE(cfg.validate(), "");
    cfg.homePolicy = HomePolicy::Interleave;
    EXPECT_EQ(cfg.validate(), "");
    // A window wider than the lookahead would violate causality.
    cfg.pdes.window = 1000;
    EXPECT_NE(cfg.validate(), "");
    cfg.pdes.window = 1;
    EXPECT_EQ(cfg.validate(), "");
}

TEST(PdesDeterminism, NarrowedWindowIsItsOwnDeterministicModel)
{
    // The window width is a model parameter like the domain count:
    // barriers run more often, so cross-domain store writes become
    // visible earlier and the execution legitimately differs from the
    // full-lookahead run. What must hold: the narrowed run is still
    // valid (checkers pass, same workload committed) and still
    // jobs-invariant.
    SystemConfig cfg;
    cfg.numProcs = 16;
    cfg.homePolicy = HomePolicy::Interleave;
    cfg.check.serial = true;
    cfg.check.invariants = true;
    cfg.pdes.domains = 4;
    RunResult wide, narrow1, narrow4;
    {
        System sys(cfg);
        auto sources = setupApp(sys, appProfile("equake"), 7);
        wide = sys.run(2'000'000'000ull);
    }
    cfg.pdes.window = 2;
    cfg.pdes.jobs = 1;
    {
        System sys(cfg);
        auto sources = setupApp(sys, appProfile("equake"), 7);
        narrow1 = sys.run(2'000'000'000ull);
    }
    cfg.pdes.jobs = 4;
    {
        System sys(cfg);
        auto sources = setupApp(sys, appProfile("equake"), 7);
        narrow4 = sys.run(2'000'000'000ull);
    }
    ASSERT_TRUE(wide.completed);
    ASSERT_TRUE(narrow1.completed);
    EXPECT_EQ(narrow1.pdes.lookahead, Tick{2});
    EXPECT_GT(narrow1.pdes.windows, wide.pdes.windows);
    EXPECT_EQ(wide.committedTxns, narrow1.committedTxns)
        << "every window width must commit the same workload";
    EXPECT_TRUE(narrow1.checksPassed())
        << narrow1.serial.error << narrow1.invariants.error;
    expectSameResult(narrow1, narrow4);
}

// --- variable lookahead (adaptive sync) -----------------------------

TEST(PdesAdaptive, WindowBoundHelpersClampAndStayMonotone)
{
    // Plain arithmetic away from the edge...
    EXPECT_EQ(pdesWindowEnd(0, 6), Tick{6});
    EXPECT_EQ(pdesWindowEnd(100, 250), Tick{350});
    EXPECT_EQ(pdesEot(10, 6), Tick{16});
    // ...and saturation instead of wraparound at kTickMax.
    EXPECT_EQ(pdesWindowEnd(kTickMax - 3, 6), kTickMax);
    EXPECT_EQ(pdesWindowEnd(kTickMax, 6), kTickMax);
    EXPECT_EQ(pdesEot(kTickMax - 3, 6), kTickMax);
    EXPECT_EQ(pdesEot(kTickMax, 6), kTickMax)
        << "an idle domain (next == kTickMax) must impose no bound";
    // EOT is monotone in the next-event tick - the property that makes
    // min-over-domains a safe window bound even as domains drain.
    for (Tick la : {Tick{1}, Tick{6}, Tick{250}}) {
        const Tick nexts[] = {0,           1,       5,
                              6,           1000,    kTickMax - 500,
                              kTickMax - 1, kTickMax};
        Tick prev = 0;
        for (Tick next : nexts) {
            const Tick eot = pdesEot(next, la);
            EXPECT_GE(eot, prev) << "next=" << next << " la=" << la;
            EXPECT_GT(eot, next - (next == kTickMax ? 1 : 0))
                << "EOT may never precede the event it bounds";
            prev = eot;
        }
    }
}

TEST(PdesAdaptive, MatchesFixedSyncAcrossJobsAndChaos)
{
    // The tentpole identity gate: for every (workload, chaos, jobs)
    // cell the adaptive run must reproduce the fixed-cadence run bit
    // for bit - fingerprints, commit counts, checker verdicts, phase
    // and mailbox counts - while closing far fewer windows.
    for (const char *preset : {"", "jitter", "heavy"}) {
        for (std::uint32_t jobs : {1u, 2u, 4u}) {
            SCOPED_TRACE(std::string("preset=") +
                         (*preset ? preset : "off") +
                         " jobs=" + std::to_string(jobs));
            const RunResult fixed =
                runPdes("barnes", 16, 4, jobs, preset, 42,
                        PdesConfig::Sync::Fixed);
            const RunResult adaptive =
                runPdes("barnes", 16, 4, jobs, preset, 42,
                        PdesConfig::Sync::Adaptive);
            ASSERT_TRUE(fixed.completed);
            ASSERT_TRUE(fixed.checksPassed())
                << fixed.serial.error << fixed.invariants.error;
            expectSameResult(fixed, adaptive, /*cross_sync=*/true);
            EXPECT_FALSE(fixed.pdes.adaptive);
            EXPECT_TRUE(adaptive.pdes.adaptive);
            EXPECT_EQ(fixed.pdes.windows, fixed.pdes.phases)
                << "fixed sync closes a window every sub-phase";
            EXPECT_LT(adaptive.pdes.windows * 5, fixed.pdes.windows)
                << "adaptive must cross sparse stretches in wide "
                   "windows";
        }
    }
}

TEST(PdesAdaptive, SpotCheckLargerGridsTruncatedMidWindow)
{
    // Larger partitions, capped at a tick limit that lands mid-window
    // for both cadences: the truncated prefix must still be identical
    // across sync modes and jobs counts (the max_ticks clamp cuts the
    // same sub-phase short either way).
    struct Cell {
        const char *app;
        std::uint32_t procs;
        std::uint32_t domains;
        Tick cap;
    };
    for (const Cell &c : {Cell{"barnes", 64, 8, 100'003},
                          Cell{"swim", 256, 16, 60'007}}) {
        SCOPED_TRACE(std::string(c.app) + " procs=" +
                     std::to_string(c.procs));
        const RunResult fixed =
            runPdes(c.app, c.procs, c.domains, 2, "", 42,
                    PdesConfig::Sync::Fixed, c.cap);
        const RunResult adaptive =
            runPdes(c.app, c.procs, c.domains, 2, "", 42,
                    PdesConfig::Sync::Adaptive, c.cap);
        EXPECT_FALSE(fixed.completed)
            << "cap chosen to truncate the run";
        expectSameResult(fixed, adaptive, /*cross_sync=*/true);
        const RunResult adaptive4 =
            runPdes(c.app, c.procs, c.domains, 4, "", 42,
                    PdesConfig::Sync::Adaptive, c.cap);
        expectSameResult(adaptive, adaptive4);
    }
}

TEST(PdesAdaptive, WindowWidthDistributionIsSound)
{
    const RunResult res = runPdes("barnes", 16, 4, 2);
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.pdes.adaptive) << "adaptive is the default";
    EXPECT_EQ(res.pdes.windowWidth.count(), res.pdes.windows);
    EXPECT_GE(res.pdes.windows, 1u);
    EXPECT_LE(res.pdes.windows, res.pdes.phases);
    // Every window spans at least one full sub-phase, and sub-phases
    // are exactly one lookahead wide away from the tick limit.
    EXPECT_GE(res.pdes.windowWidth.min(),
              static_cast<double>(res.pdes.lookahead));
    EXPECT_GE(res.pdes.windowWidth.percentile(99),
              res.pdes.windowWidth.percentile(50));
}

TEST(PdesAdaptive, IdleDomainsAreNeverDispatched)
{
    // Domain 0 (procs 0-3, directories 0-3 under Interleave) runs a
    // long scripted workload against its own directories; every other
    // processor commits one trivial transaction and finishes. Commits
    // still broadcast NSTID skips to every directory, so domains 1-3
    // see a trickle of parcels - but between arrivals they have no
    // events, and the idle fast path must skip them in those
    // sub-phases without touching their queues, invisibly to the
    // result.
    auto build = [](PdesConfig::Sync sync, std::uint32_t jobs,
                    std::vector<ScriptedSource> &srcs) {
        SystemConfig cfg;
        cfg.numProcs = 16;
        cfg.homePolicy = HomePolicy::Interleave;
        cfg.check.serial = true;
        cfg.check.invariants = true;
        cfg.pdes.domains = 4;
        cfg.pdes.jobs = jobs;
        cfg.pdes.sync = sync;
        auto sys = std::make_unique<System>(cfg);
        srcs.clear();
        srcs.resize(16);
        for (NodeId p = 0; p < 4; ++p) {
            // 64 transactions per busy proc, each writing one word of
            // the proc's own page (homed at directory p, domain 0).
            for (std::uint32_t t = 0; t < 64; ++t) {
                srcs[p].add({{TxOp::Kind::Compute, 10, 0, 0},
                             {TxOp::Kind::Store, 0,
                              static_cast<Addr>(p) * 4096 + t * 4,
                              t + 1}});
            }
        }
        for (NodeId p = 4; p < 16; ++p)
            srcs[p].add({{TxOp::Kind::Compute, 5, 0, 0}});
        for (NodeId p = 0; p < 16; ++p)
            sys->setSource(p, &srcs[p]);
        return sys;
    };

    std::vector<ScriptedSource> srcs;
    auto sys = build(PdesConfig::Sync::Adaptive, 1, srcs);
    const RunResult adaptive = sys->run(2'000'000'000ull);
    ASSERT_TRUE(adaptive.completed);
    ASSERT_TRUE(adaptive.checksPassed())
        << adaptive.serial.error << adaptive.invariants.error;
    EXPECT_GT(adaptive.pdes.idleDomainSkips, 0u);

    // The engine state is kept alive by the System: domains 1-3 ran
    // their short prologue plus the per-commit skip deliveries, a
    // small fraction of the busy domain's event count.
    const PdesState *st = sys->pdesInternals();
    ASSERT_NE(st, nullptr);
    ASSERT_EQ(st->domains.size(), 4u);
    const std::uint64_t busy = st->domains[0]->eq.executed();
    for (std::size_t d = 1; d < 4; ++d) {
        const std::uint64_t idle = st->domains[d]->eq.executed();
        EXPECT_LT(idle * 2, busy)
            << "domain " << d << " executed " << idle
            << " events vs " << busy << " on the busy domain";
        EXPECT_EQ(st->domains[d]->eq.pending(), 0u);
        EXPECT_TRUE(st->domains[d]->storeLog.empty());
        EXPECT_FALSE(st->domains[d]->net->hasParcels());
    }

    // Invisible: same run under fixed sync and under more workers.
    std::vector<ScriptedSource> srcsF;
    auto sysF = build(PdesConfig::Sync::Fixed, 1, srcsF);
    const RunResult fixed = sysF->run(2'000'000'000ull);
    expectSameResult(fixed, adaptive, /*cross_sync=*/true);
    std::vector<ScriptedSource> srcs4;
    auto sys4 = build(PdesConfig::Sync::Adaptive, 4, srcs4);
    const RunResult adaptive4 = sys4->run(2'000'000'000ull);
    expectSameResult(adaptive, adaptive4);
}

// --- PDES x chaos ---------------------------------------------------

TEST(PdesChaos, EveryPresetDeterministicAcrossJobs)
{
    for (const auto &preset : chaosPresetNames()) {
        SCOPED_TRACE(preset);
        const RunResult one = runPdes("radix", 16, 4, 1, preset, 99);
        ASSERT_TRUE(one.completed);
        ASSERT_TRUE(one.checksPassed())
            << one.serial.error << one.invariants.error;
        const RunResult four = runPdes("radix", 16, 4, 4, preset, 99);
        expectSameResult(one, four);
    }
}

TEST(PdesChaos, SeedPerturbsTheRun)
{
    const RunResult a = runPdes("radix", 16, 4, 4, "heavy", 99);
    const RunResult b = runPdes("radix", 16, 4, 4, "heavy", 99);
    const RunResult c = runPdes("radix", 16, 4, 4, "heavy", 100);
    ASSERT_TRUE(a.completed);
    expectSameResult(a, b);
    EXPECT_TRUE(a.cycles != c.cycles || a.events != c.events)
        << "different chaos seeds should not collide exactly";
}

} // namespace
} // namespace tcc
