/**
 * @file
 * Tests for the data-structure workload engine: Zipfian generator
 * statistics, source determinism, exact phase-barrier boundaries,
 * flash-crowd redirection, and end-to-end runs (bank conservation,
 * flash abort-rate flip) through the full protocol.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/system.hh"
#include "workload/datastruct.hh"
#include "workload/keydist.hh"
#include "workload/registry.hh"

namespace tcc {
namespace {

TEST(KeyDist, DeterministicPerSeed)
{
    const KeyDist d(1024, 0.8);
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(d.next(a), d.next(b));
}

TEST(KeyDist, DifferentSeedsDiffer)
{
    const KeyDist d(1024, 0.8);
    Rng a(1), b(2);
    bool differed = false;
    for (int i = 0; i < 100 && !differed; ++i)
        differed = d.next(a) != d.next(b);
    EXPECT_TRUE(differed);
}

TEST(KeyDist, UniformCoversRangeEvenly)
{
    const std::uint32_t n = 64;
    const KeyDist d(n, 0.0);
    Rng rng(7);
    std::vector<std::uint64_t> counts(n, 0);
    const std::uint64_t draws = 64000;
    for (std::uint64_t i = 0; i < draws; ++i) {
        const std::uint32_t r = d.next(rng);
        ASSERT_LT(r, n);
        ++counts[r];
    }
    const double expect = double(draws) / n;
    for (std::uint32_t r = 0; r < n; ++r) {
        EXPECT_GT(counts[r], expect * 0.7) << "rank " << r;
        EXPECT_LT(counts[r], expect * 1.3) << "rank " << r;
    }
}

TEST(KeyDist, MassSumsToOne)
{
    const std::uint32_t n = 512;
    const KeyDist d(n, 0.99);
    double sum = 0.0;
    for (std::uint32_t r = 0; r < n; ++r)
        sum += d.mass(r);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(KeyDist, EmpiricalTopRankMassMatchesAnalytic)
{
    const std::uint32_t n = 1024;
    const KeyDist d(n, 0.99);
    Rng rng(11);
    const std::uint64_t draws = 200000;
    std::uint64_t top = 0;
    for (std::uint64_t i = 0; i < draws; ++i)
        if (d.next(rng) == 0)
            ++top;
    const double emp = double(top) / double(draws);
    const double ana = d.mass(0);
    // Zipf(0.99) over 1024 keys puts ~13% of draws on rank 0; the
    // empirical estimate over 200k draws sits well within 10%.
    EXPECT_NEAR(emp, ana, ana * 0.10);
}

TEST(KeyDist, SkewRatioFollowsTheta)
{
    const std::uint32_t n = 1024;
    const double theta = 0.8;
    const KeyDist d(n, theta);
    Rng rng(5);
    std::uint64_t c0 = 0, c9 = 0;
    for (std::uint64_t i = 0; i < 400000; ++i) {
        const std::uint32_t r = d.next(rng);
        if (r == 0)
            ++c0;
        else if (r == 9)
            ++c9;
    }
    // mass(0)/mass(9) = 10^theta.
    const double want = std::pow(10.0, theta);
    const double got = double(c0) / double(c9);
    EXPECT_NEAR(got, want, want * 0.25);
}

TEST(KeyDist, CountsDecreaseWithRank)
{
    const std::uint32_t n = 256;
    const KeyDist d(n, 0.9);
    Rng rng(3);
    std::vector<std::uint64_t> counts(n, 0);
    for (std::uint64_t i = 0; i < 200000; ++i)
        ++counts[d.next(rng)];
    EXPECT_GT(counts[0], counts[4]);
    EXPECT_GT(counts[4], counts[32]);
    EXPECT_GT(counts[32], counts[200]);
}

DataStructParams
twoPhaseParams()
{
    DataStructParams prm;
    prm.structure = DsStructure::Map;
    prm.numKeys = 128;
    prm.opsPerTxn = 2;
    prm.phases.clear();
    prm.phases.push_back(DsPhase{8, 0.0, dsMixPreset("read_mostly"),
                                 -1, 0.0});
    prm.phases.push_back(DsPhase{8, 0.5, dsMixPreset("write_heavy"),
                                 -1, 0.0});
    return prm;
}

TEST(DataStructSource, DeterministicPerSeed)
{
    const DataStructParams prm = twoPhaseParams();
    auto lay = std::make_shared<const DsLayout>(prm, 9);
    DataStructSource a(prm, lay, 9, 0, 4);
    DataStructSource b(prm, lay, 9, 0, 4);
    for (int i = 0; i < 4; ++i) {
        auto ta = a.nextTransaction();
        auto tb = b.nextTransaction();
        ASSERT_TRUE(ta.has_value());
        ASSERT_TRUE(tb.has_value());
        EXPECT_EQ(ta->barrierBefore, tb->barrierBefore);
        ASSERT_EQ(ta->ops.size(), tb->ops.size());
        for (std::size_t k = 0; k < ta->ops.size(); ++k) {
            EXPECT_EQ(ta->ops[k].addr, tb->ops[k].addr);
            EXPECT_EQ((int)ta->ops[k].kind, (int)tb->ops[k].kind);
        }
    }
}

TEST(DataStructSource, BarrierExactlyAtPhaseBoundary)
{
    const DataStructParams prm = twoPhaseParams();
    auto lay = std::make_shared<const DsLayout>(prm, 1);
    // 8 txns per phase over 4 procs -> 2 per proc per phase; the
    // barrier must precede exactly the first transaction of phase 1
    // (transaction index 2) and nothing else.
    DataStructSource src(prm, lay, 1, 2, 4);
    int idx = 0;
    while (auto txn = src.nextTransaction()) {
        EXPECT_EQ(txn->barrierBefore, idx == 2) << "txn " << idx;
        ++idx;
    }
    EXPECT_EQ(idx, 4);
    EXPECT_FALSE(src.nextTransaction().has_value());
}

TEST(DataStructSource, FlashRedirectsEveryDraw)
{
    DataStructParams prm;
    prm.structure = DsStructure::Map;
    prm.numKeys = 256;
    prm.opsPerTxn = 4;
    prm.scanLen = 2;
    prm.phases.clear();
    // update_only: every op touches exactly the drawn key, and
    // flashFrac=1 redirects every draw to key 17.
    prm.phases.push_back(
        DsPhase{8, 0.5, dsMixPreset("update_only"), 17, 1.0});
    auto lay = std::make_shared<const DsLayout>(prm, 4);
    DataStructSource src(prm, lay, 4, 0, 4);
    int memOps = 0;
    while (auto txn = src.nextTransaction()) {
        for (const TxOp &op : txn->ops) {
            if (op.kind == TxOp::Kind::Compute)
                continue;
            EXPECT_EQ(lay->keyOf(op.addr), 17);
            ++memOps;
        }
    }
    EXPECT_GT(memOps, 0);
}

TEST(DataStructEndToEnd, BankConservesTotalBalance)
{
    SystemConfig cfg;
    cfg.numProcs = 4;
    cfg.check.invariants = true;
    System sys(cfg);
    WorkloadParams wl;
    wl.set("max_txns_per_phase", "64");
    const WorkloadBundle bundle = makeWorkload("ds_bank", wl, 3, 4);
    bundle.attach(sys);

    std::uint64_t expected = 0;
    for (const auto &[addr, value] : bundle.initialWords)
        if (bundle.keyOf(addr) >= 0)
            expected += value;

    const RunResult res = sys.run();
    EXPECT_TRUE(res.completed);
    EXPECT_TRUE(res.quiesced);
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
    EXPECT_GT(res.committedTxns, 0u);

    std::uint64_t actual = 0;
    for (const auto &[addr, value] : bundle.initialWords)
        if (bundle.keyOf(addr) >= 0)
            actual += sys.memory().read(addr);
    EXPECT_EQ(actual, expected);
}

TEST(DataStructEndToEnd, FlashCrowdRaisesAbortRate)
{
    SystemConfig cfg;
    cfg.numProcs = 8;
    System sys(cfg);
    WorkloadParams wl;
    wl.set("max_txns_per_phase", "256");
    const WorkloadBundle bundle = makeWorkload("ds_flash", wl, 1, 8);
    bundle.attach(sys);

    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    const auto tallies = bundle.phaseTallies();
    ASSERT_EQ(tallies.size(), 2u);
    const auto rate = [](const PhaseTally &t) {
        const std::uint64_t n = t.commits + t.aborts;
        return n ? double(t.aborts) / double(n) : 0.0;
    };
    EXPECT_GT(rate(tallies[1]), rate(tallies[0]));
}

TEST(DataStructEndToEnd, QueueCompletesAndCountsOps)
{
    SystemConfig cfg;
    cfg.numProcs = 4;
    System sys(cfg);
    WorkloadParams wl;
    wl.set("max_txns_per_phase", "64");
    const WorkloadBundle bundle = makeWorkload("ds_queue", wl, 2, 4);
    bundle.attach(sys);

    const RunResult res = sys.run();
    EXPECT_TRUE(res.completed);
    EXPECT_GT(bundle.committedOps(), 0u);
}

} // namespace
} // namespace tcc
